package racereplay

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// onlineComparableMetrics strips the metrics that are allowed to differ
// between online-on and online-off runs: the online detector's own
// detect.online.* counters and gauge (they only exist when the detector
// is wired in), the memo cache counters (concurrent workers can race to
// the same fingerprint, so hit/miss splits are not schedule-stable), and
// everything timing-dependent. Every remaining metric — the offline
// detect.*, classify.*, record.* and vproc.* families — must match
// exactly, because the online observer is passive and the offline pass
// still runs in full whenever a scenario races.
func onlineComparableMetrics(snap obs.Snapshot) (map[string]uint64, map[string]float64, map[string]obs.HistogramSnapshot) {
	skip := func(name string) bool {
		return strings.HasPrefix(name, "detect.online.") ||
			strings.HasPrefix(name, "classify.memo.") ||
			strings.HasPrefix(name, "record.keyframes.") ||
			strings.HasSuffix(name, "_ns")
	}
	counters := map[string]uint64{}
	for name, v := range snap.Counters {
		if skip(name) {
			continue
		}
		counters[name] = v
	}
	gauges := map[string]float64{}
	for name, v := range snap.Gauges {
		if skip(name) || strings.HasPrefix(name, "sched.") {
			continue
		}
		gauges[name] = v
	}
	hists := map[string]obs.HistogramSnapshot{}
	for name, h := range snap.Histograms {
		if skip(name) {
			continue
		}
		hists[name] = h
	}
	return counters, gauges, hists
}

// TestSuiteOnlineEquivalence is the tentpole's equivalence guarantee over
// the full suite: with the online detector fused into recording and
// without it, the rendered suite output is byte-identical and every
// metric except the detector's own detect.online.* family (and timing)
// matches, at one worker and at eight. Every suite scenario races, so
// this also pins that the online verdict never diverts a racy execution
// away from the offline pass.
func TestSuiteOnlineEquivalence(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			regOn := NewMetrics()
			on, err := RunSuiteOpts(SuiteOptions{Seeds: 2, Jobs: jobs, Registry: regOn, Online: true})
			if err != nil {
				t.Fatal(err)
			}
			regOff := NewMetrics()
			off, err := RunSuiteOpts(SuiteOptions{Seeds: 2, Jobs: jobs, Registry: regOff})
			if err != nil {
				t.Fatal(err)
			}

			gotOn, gotOff := renderSuiteRun(on), renderSuiteRun(off)
			if gotOn != gotOff {
				t.Errorf("rendered suite output differs online-on vs online-off:\n--- online-on ---\n%s\n--- online-off ---\n%s", gotOn, gotOff)
			}

			snapOn, snapOff := regOn.Snapshot(), regOff.Snapshot()
			cOn, gOn, hOn := onlineComparableMetrics(snapOn)
			cOff, gOff, hOff := onlineComparableMetrics(snapOff)
			diffMaps(t, "counter", cOn, cOff)
			diffMaps(t, "gauge", gOn, gOff)
			diffMaps(t, "histogram", hOn, hOff)

			// The equivalence must not be vacuous: the online detector ran on
			// every recording and flagged races, while the off run never
			// touched it. Every suite scenario races, so no execution may
			// have taken the race-free fast path.
			if got := snapOn.Counters["detect.online.executions"]; got == 0 {
				t.Error("online-on run recorded no online executions — equivalence test is vacuous")
			}
			if snapOn.Counters["detect.online.races"] == 0 {
				t.Error("online detector flagged no races across a suite where every scenario races")
			}
			if got := snapOn.Counters["detect.online.fastpath"]; got != 0 {
				t.Errorf("fast path engaged %d times on an all-racy suite", got)
			}
			for name, v := range snapOff.Counters {
				if strings.HasPrefix(name, "detect.online.") && v != 0 {
					t.Errorf("online-off run touched the online detector: %s = %d", name, v)
				}
			}
		})
	}
}

// TestChaosCorpusOnlineFastPathEquivalence extends the equivalence to the
// race-free fast path and degraded inputs. A race-free scenario recorded
// with the online detector carries an in-memory race-free annotation, so
// AnalyzeLogs skips the offline decode+HB pass for it; the same log
// round-tripped through the wire format loses the annotation (Marshal
// never serializes it) and takes the full offline pass. Batched with a
// racy log and a seeded corruption sweep over it, both routes must yield
// identical race sets, classifications, and quarantine decisions at one
// worker and at eight.
func TestChaosCorpusOnlineFastPathEquivalence(t *testing.T) {
	clean, err := workloads.FindScenario("service")
	if err != nil {
		t.Fatal(err)
	}
	cleanProg, err := clean.Program()
	if err != nil {
		t.Fatal(err)
	}
	fastLog, orep, err := RecordOnline(cleanProg, clean.Config(), OnlineConfig{Detect: true})
	if err != nil {
		t.Fatal(err)
	}
	if !orep.RaceFree {
		t.Fatalf("service scenario raced online (%d pairs); fast-path test needs a race-free workload", len(orep.Races))
	}
	if fastLog.Online == nil || !fastLog.Online.RaceFree {
		t.Fatal("online recording of a race-free run carries no race-free annotation")
	}
	// Round-trip the same log: byte-identical trace, no annotation —
	// the offline control for the fast path.
	var cleanWire bytes.Buffer
	if err := WriteLog(&cleanWire, fastLog); err != nil {
		t.Fatal(err)
	}
	slowLog, err := ReadLog(bytes.NewReader(cleanWire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if slowLog.Online != nil {
		t.Fatal("wire format leaked the in-memory online annotation")
	}

	racy, err := workloads.FindScenario("browse")
	if err != nil {
		t.Fatal(err)
	}
	racyProg, err := racy.Program()
	if err != nil {
		t.Fatal(err)
	}
	racyLog, err := Record(racyProg, racy.Config())
	if err != nil {
		t.Fatal(err)
	}
	var racyWire bytes.Buffer
	if err := WriteLog(&racyWire, racyLog); err != nil {
		t.Fatal(err)
	}

	// The shared tail of both batches: the racy log plus every corruption
	// of it that still decodes (structured corruptions often do, then
	// fail or degrade later — surface the fast path must not disturb).
	tail := []*Log{racyLog}
	labels := []string{"browse"}
	in := chaos.NewInjector(11)
	for trial := 0; trial < 32; trial++ {
		bad, kind := in.CorruptFile(racyWire.Bytes(), trial)
		if cl, err := ReadLog(bytes.NewReader(bad)); err == nil {
			tail = append(tail, cl)
			labels = append(labels, fmt.Sprintf("%s#%d", kind, trial))
		}
	}

	type outcome struct {
		sites      [][]string
		cls        []*Classification
		quarantine []string
	}
	run := func(head *Log, jobs int, reg *Metrics) outcome {
		logs := append([]*Log{head}, tail...)
		results, quarantined := AnalyzeLogsInstrumented(logs, func(i int) Options {
			if i == 0 {
				return Options{Scenario: "service"}
			}
			return Options{Scenario: labels[i-1]}
		}, jobs, reg)
		out := outcome{}
		for _, res := range results {
			if res == nil {
				out.sites = append(out.sites, nil)
				out.cls = append(out.cls, nil)
				continue
			}
			var sites []string
			for _, r := range res.Races.Races {
				sites = append(sites, r.Sites.A+" <-> "+r.Sites.B)
			}
			out.sites = append(out.sites, sites)
			out.cls = append(out.cls, res.Classification)
		}
		for _, q := range quarantined {
			out.quarantine = append(out.quarantine, q.String())
		}
		return out
	}

	regRef := NewMetrics()
	ref := run(slowLog, 1, regRef)
	if n := regRef.Snapshot().Counters["detect.online.fastpath"]; n != 0 {
		t.Fatalf("offline control took the fast path %d times", n)
	}
	for _, jobs := range []int{1, 8} {
		for _, fast := range []bool{false, true} {
			if jobs == 1 && !fast {
				continue // the reference itself
			}
			head := slowLog
			if fast {
				head = fastLog
			}
			reg := NewMetrics()
			got := run(head, jobs, reg)
			fp := reg.Snapshot().Counters["detect.online.fastpath"]
			if fast && fp != 1 {
				t.Errorf("jobs=%d: fast path engaged %d times, want exactly 1", jobs, fp)
			}
			if !fast && fp != 0 {
				t.Errorf("jobs=%d: offline route took the fast path %d times", jobs, fp)
			}
			if !reflect.DeepEqual(got.quarantine, ref.quarantine) {
				t.Errorf("jobs=%d fast=%v: quarantine %v, want %v", jobs, fast, got.quarantine, ref.quarantine)
			}
			if !reflect.DeepEqual(got.sites, ref.sites) {
				t.Errorf("jobs=%d fast=%v: race site sets diverge from offline serial run:\n got %v\nwant %v", jobs, fast, got.sites, ref.sites)
			}
			if !reflect.DeepEqual(got.cls, ref.cls) {
				t.Errorf("jobs=%d fast=%v: classifications diverge from offline serial run", jobs, fast)
			}
		}
	}
}
