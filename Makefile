# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench paper fuzz cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/paperbench -bench-out BENCH_5.json
	$(GO) run ./cmd/paperbench -check-bench BENCH_5.json

paper:
	$(GO) run ./cmd/paperbench

fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzAssemble -fuzztime=30s ./internal/asm
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/isa

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
