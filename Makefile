# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench trace paper fuzz cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/paperbench -bench-out BENCH_10.json -bench-rounds 5
	$(GO) run ./cmd/paperbench -check-bench BENCH_10.json

# Regenerate the flight-recorder artifacts: a parallel suite run with the
# timeline on (load racer-trace.json at https://ui.perfetto.dev) and the
# verdict-provenance audit trail. The suite exits 1 by design — it
# reports potentially harmful races — so only exit codes above 1 fail.
trace:
	$(GO) run ./cmd/racer suite -seeds 2 -jobs 4 \
		-trace-out racer-trace.json -audit-out racer-audit.json || test $$? -eq 1
	@echo "wrote racer-trace.json and racer-audit.json"

paper:
	$(GO) run ./cmd/paperbench

fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzDecodeV2 -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzAssemble -fuzztime=30s ./internal/asm
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/isa

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt racer-trace.json racer-audit.json
