package racereplay_test

import (
	"fmt"
	"log"

	racereplay "repro"
)

// Two workers store different values to the same global without
// synchronization; a third reads it. Everything below is deterministic:
// the machine, the recorder, and the analysis are all seeded.
const exampleSrc = `
.entry main
.word g 0
worker:
  ldi r2, g
  addi r3, r1, 10
wstore:
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

// ExampleAnalyzeSource runs the whole pipeline — record, replay, detect,
// classify — in one call.
func ExampleAnalyzeSource() {
	res, err := racereplay.AnalyzeSource("demo", exampleSrc, 6)
	if err != nil {
		log.Fatal(err)
	}
	for _, race := range res.Classification.Races {
		fmt.Printf("%s -> %v\n", race.Sites, race.Verdict)
	}
	// Output:
	// demo:wstore <-> demo:wstore -> potentially-harmful
}

// ExampleReplay shows the record/replay split: the log is self-contained
// and replays deterministically.
func ExampleReplay() {
	prog, err := racereplay.Assemble("demo", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	rlog, err := racereplay.Record(prog, racereplay.Config{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	exec, err := racereplay.Replay(rlog)
	if err != nil {
		log.Fatal(err)
	}
	races := racereplay.DetectRaces(exec)
	fmt.Printf("%d threads, %d unique races\n", len(exec.Threads), len(races.Races))
	// Output:
	// 3 threads, 1 unique races
}

// ExampleReplayTo demonstrates time travel: replaying a prefix of the
// region schedule reconstructs the state at that earlier point.
func ExampleReplayTo() {
	src := `
.word counter 0
main:
  ldi r2, counter
  ldi r3, 1
  st [r2+0], r3
  fence
  ldi r3, 2
  st [r2+0], r3
  fence
  halt
`
	prog, err := racereplay.Assemble("tt", src)
	if err != nil {
		log.Fatal(err)
	}
	rlog, err := racereplay.Record(prog, racereplay.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	full, _ := racereplay.Replay(rlog)
	counterAddr := uint64(0x1000)
	for _, n := range []int{len(full.Regions), 2, 1} {
		exec, err := racereplay.ReplayTo(rlog, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %d regions: counter = %d\n", n, exec.FinalMem[counterAddr])
	}
	// Output:
	// after 3 regions: counter = 2
	// after 2 regions: counter = 2
	// after 1 regions: counter = 1
}
