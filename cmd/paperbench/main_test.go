package main

import (
	"strings"
	"testing"
)

func TestTables(t *testing.T) {
	var b strings.Builder
	if err := realMain([]string{"-table", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "No State Change", "32", "68"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := realMain([]string{"-table", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{"Table 2", "Redundant Writes", "61"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigures(t *testing.T) {
	for _, fig := range []string{"3", "4", "5"} {
		var b strings.Builder
		if err := realMain([]string{"-figure", fig}, &b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "Figure "+fig) {
			t.Errorf("figure %s header missing", fig)
		}
		if !strings.Contains(b.String(), "#") {
			t.Errorf("figure %s has no bars", fig)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := realMain([]string{"-nonsense"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestPerfAndFullOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b strings.Builder
	if err := realMain([]string{"-perf"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Performance", "bits/instr", "native execution", "replay classification"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("perf output missing %q", want)
		}
	}

	b.Reset()
	if err := realMain(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 3", "Figure 4", "Figure 5",
		"Performance", "Ablations", "unique races: 68",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("full output missing %q", want)
		}
	}
}

func TestPerfReport(t *testing.T) {
	var b strings.Builder
	if err := realMain([]string{"-perf-report"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"overhead ladder (from spans",
		"native execution", "recording:", "replay:",
		"happens-before analysis", "replay classification",
		"x native", "bits/instruction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("perf-report output missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownFlag(t *testing.T) {
	var b strings.Builder
	if err := realMain([]string{"-md"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "## Table 1") || !strings.Contains(b.String(), "| **Total** |") {
		t.Errorf("markdown output incomplete")
	}
}
