package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestTables(t *testing.T) {
	var b strings.Builder
	if err := realMain([]string{"-table", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "No State Change", "32", "68"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := realMain([]string{"-table", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{"Table 2", "Redundant Writes", "61"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigures(t *testing.T) {
	for _, fig := range []string{"3", "4", "5"} {
		var b strings.Builder
		if err := realMain([]string{"-figure", fig}, &b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "Figure "+fig) {
			t.Errorf("figure %s header missing", fig)
		}
		if !strings.Contains(b.String(), "#") {
			t.Errorf("figure %s has no bars", fig)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := realMain([]string{"-nonsense"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestPerfAndFullOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b strings.Builder
	if err := realMain([]string{"-perf"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Performance", "bits/instr", "native execution", "replay classification"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("perf output missing %q", want)
		}
	}

	b.Reset()
	if err := realMain(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 3", "Figure 4", "Figure 5",
		"Performance", "Ablations", "unique races: 68",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("full output missing %q", want)
		}
	}
}

func TestPerfReport(t *testing.T) {
	var b strings.Builder
	if err := realMain([]string{"-perf-report"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"overhead ladder (from spans",
		"native execution", "recording:", "replay:",
		"happens-before analysis", "replay classification",
		"x native", "bits/instruction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("perf-report output missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownFlag(t *testing.T) {
	var b strings.Builder
	if err := realMain([]string{"-md"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "## Table 1") || !strings.Contains(b.String(), "| **Total** |") {
		t.Errorf("markdown output incomplete")
	}
}

// TestBenchRegressionGate drives the CI gate end to end: measure with
// rounds, pass against an identical baseline, fail against a faked-fast
// one.
func TestBenchRegressionGate(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "cur.json")
	var b strings.Builder
	if err := realMain([]string{"-bench-out", cur, "-bench-time", "0", "-bench-rounds", "3"}, &b); err != nil {
		t.Fatal(err)
	}

	// A file compared against itself never regresses.
	b.Reset()
	if err := realMain([]string{"-check-bench", cur, "-against", cur}, &b); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "no regressions past +25%") {
		t.Errorf("gate summary missing:\n%s", b.String())
	}

	// Shrink every baseline number 10x: the current run now regresses.
	f, err := bench.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Benchmarks {
		f.Benchmarks[i].NsPerOp /= 10
		for j := range f.Benchmarks[i].Samples {
			f.Benchmarks[i].Samples[j] /= 10
		}
	}
	base := filepath.Join(dir, "base.json")
	if err := f.WriteFile(base); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	err = realMain([]string{"-check-bench", cur, "-against", base}, &b)
	if err == nil || !strings.Contains(err.Error(), "regressed past +25%") {
		t.Fatalf("gate did not trip: err = %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Errorf("regression lines missing:\n%s", b.String())
	}

	// Rounds made it into the artifact.
	if got := len(f.Benchmarks[0].Samples); got != 3 {
		t.Errorf("benchmark has %d samples, want 3", got)
	}
}
