package main

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/workloads"

	racereplay "repro"
)

// runBenchOut measures the performance-critical paths of the offline
// pipeline with the machine-readable harness and writes the results to
// path — the BENCH_7.json artifact EXPERIMENTS.md §5.1 quotes and CI
// validates. Progress goes to out; the measurements only to the file.
func runBenchOut(path string, benchTime time.Duration, rounds int, out io.Writer) error {
	r := bench.Runner{BenchTime: benchTime, Rounds: rounds}
	file := bench.NewFile()

	s := workloads.BrowseScenario()
	prog, err := s.Program()
	if err != nil {
		return err
	}
	log, err := racereplay.Record(prog, s.Config())
	if err != nil {
		return err
	}
	exec, err := racereplay.Replay(log)
	if err != nil {
		return err
	}
	races := racereplay.DetectRaces(exec)

	// hitRate runs one instrumented, untimed pass and reads the memo
	// counters, so the timed loops stay free of registry overhead.
	hitRate := func(f func(reg *racereplay.Metrics)) float64 {
		reg := racereplay.NewMetrics()
		f(reg)
		snap := reg.Snapshot()
		h, m := snap.Counters["classify.memo.hits"], snap.Counters["classify.memo.misses"]
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}

	fmt.Fprintln(out, "bench: classification (browse, full offline pipeline)")
	for _, memo := range []bool{true, false} {
		name := fmt.Sprintf("classification/memo=%s", onOff(memo))
		res := r.Run(file, name, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := racereplay.AnalyzeLog(log, racereplay.Options{NoMemo: !memo}); err != nil {
					fatal(err)
				}
			}
		})
		if memo {
			res.Metrics = map[string]float64{"hitrate": hitRate(func(reg *racereplay.Metrics) {
				if _, err := racereplay.AnalyzeLogInstrumented(log, racereplay.Options{}, reg); err != nil {
					fatal(err)
				}
			})}
		}
	}

	fmt.Fprintln(out, "bench: memoized classification (memo on/off x workers 1/8)")
	for _, memo := range []bool{true, false} {
		for _, workers := range []int{1, 8} {
			memo, workers := memo, workers
			name := fmt.Sprintf("memoized-classification/memo=%s/workers=%d", onOff(memo), workers)
			opts := racereplay.Options{Parallel: workers, NoMemo: !memo}
			res := r.Run(file, name, func(n int) {
				for i := 0; i < n; i++ {
					racereplay.Classify(exec, races, opts)
				}
			})
			if memo {
				res.Metrics = map[string]float64{"hitrate": hitRate(func(reg *racereplay.Metrics) {
					o := opts
					o.Metrics = reg
					racereplay.Classify(exec, races, o)
				})}
			}
		}
	}

	fmt.Fprintln(out, "bench: happens-before analysis")
	r.Run(file, "hb-analysis", func(n int) {
		for i := 0; i < n; i++ {
			ex, err := racereplay.Replay(log)
			if err != nil {
				fatal(err)
			}
			racereplay.DetectRaces(ex)
		}
	})

	// The race-free fast path: the same race-free recording analyzed with
	// its online race-free verdict attached (offline decode+HB skipped)
	// and round-tripped through the wire format (annotation stripped, full
	// offline pass). The gap between the two rungs is the measured win the
	// online detector buys on clean executions.
	fmt.Fprintln(out, "bench: race-free fast path (service, online verdict on/off)")
	svc, err := workloads.FindScenario("service")
	if err != nil {
		return err
	}
	svcProg, err := svc.Program()
	if err != nil {
		return err
	}
	fastLog, orep, err := racereplay.RecordOnline(svcProg, svc.Config(), racereplay.OnlineConfig{Detect: true})
	if err != nil {
		return err
	}
	if !orep.RaceFree {
		return fmt.Errorf("service scenario raced online (%d pairs); fast-path benchmark needs a race-free workload", len(orep.Races))
	}
	var svcWire bytes.Buffer
	if err := racereplay.WriteLog(&svcWire, fastLog); err != nil {
		return err
	}
	slowLog, err := racereplay.ReadLog(bytes.NewReader(svcWire.Bytes()))
	if err != nil {
		return err
	}
	for _, online := range []bool{true, false} {
		benchLog := slowLog
		if online {
			benchLog = fastLog
		}
		r.Run(file, fmt.Sprintf("analyze-racefree/online=%s", onOff(online)), func(n int) {
			for i := 0; i < n; i++ {
				if _, err := racereplay.AnalyzeLog(benchLog, racereplay.Options{}); err != nil {
					fatal(err)
				}
			}
		})
	}

	fmt.Fprintln(out, "bench: online recording overhead (service, detect on/off)")
	for _, detect := range []bool{true, false} {
		oc := racereplay.OnlineConfig{Detect: detect}
		r.Run(file, fmt.Sprintf("record-online/detect=%s", onOff(detect)), func(n int) {
			for i := 0; i < n; i++ {
				if _, _, err := racereplay.RecordOnline(svcProg, svc.Config(), oc); err != nil {
					fatal(err)
				}
			}
		})
	}

	fmt.Fprintln(out, "bench: suite (seeds=2, jobs 1/8)")
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		res := r.Run(file, fmt.Sprintf("suite/jobs=%d", jobs), func(n int) {
			for i := 0; i < n; i++ {
				if _, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{Seeds: 2, Jobs: jobs}); err != nil {
					fatal(err)
				}
			}
		})
		res.Metrics = map[string]float64{"hitrate": hitRate(func(reg *racereplay.Metrics) {
			if _, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{Seeds: 2, Jobs: jobs, Registry: reg}); err != nil {
				fatal(err)
			}
		})}
	}

	// The prediction stage rides the same suite; the gap to the plain
	// suite rungs above is the windowed solver plus the second classify
	// pass over predicted-new pairs.
	fmt.Fprintln(out, "bench: predict-suite (seeds=2, prediction stage, jobs 1/8)")
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		r.Run(file, fmt.Sprintf("predict-suite/jobs=%d", jobs), func(n int) {
			for i := 0; i < n; i++ {
				if _, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{Seeds: 2, Jobs: jobs, Predict: true}); err != nil {
					fatal(err)
				}
			}
		})
	}

	if err := file.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: wrote %d benchmarks to %s\n", len(file.Benchmarks), path)
	return nil
}

// checkBench validates a bench file against the schema and, with a
// baseline, enforces the regression gate: any benchmark whose median
// ns/op slowed past the tolerance fails the command.
func checkBench(path, against string, tolerance float64, out io.Writer) error {
	f, err := bench.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: %s ok (%s, %s/%s, %d cpus, %d benchmarks)\n",
		path, f.Schema, f.GoOS, f.GoArch, f.CPUs, len(f.Benchmarks))
	if against == "" {
		return nil
	}
	base, err := bench.ReadFile(against)
	if err != nil {
		return err
	}
	cmp, err := bench.Compare(base, f, tolerance)
	if err != nil {
		return err
	}
	for _, name := range cmp.New {
		fmt.Fprintf(out, "bench: NEW %s (no baseline in %s; not gated)\n", name, against)
	}
	for _, r := range cmp.Regressions {
		fmt.Fprintf(out, "bench: REGRESSION %s: %.0f ns/op -> %.0f ns/op (%.2fx, tolerance %.2fx)\n",
			r.Name, r.Base, r.Current, r.Ratio, 1+tolerance)
	}
	if len(cmp.Regressions) > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed past +%.0f%% vs %s",
			len(cmp.Regressions), cmp.Compared, tolerance*100, against)
	}
	fmt.Fprintf(out, "bench: no regressions past +%.0f%% across %d benchmarks vs %s\n",
		tolerance*100, cmp.Compared, against)
	return nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
