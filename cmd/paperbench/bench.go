package main

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workloads"

	racereplay "repro"
)

// runBenchOut measures the performance-critical paths of the offline
// pipeline with the machine-readable harness and writes the results to
// path — the BENCH_7.json artifact EXPERIMENTS.md §5.1 quotes and CI
// validates. Progress goes to out; the measurements only to the file.
func runBenchOut(path string, benchTime time.Duration, rounds int, out io.Writer) error {
	r := bench.Runner{BenchTime: benchTime, Rounds: rounds}
	file := bench.NewFile()

	s := workloads.BrowseScenario()
	prog, err := s.Program()
	if err != nil {
		return err
	}
	log, err := racereplay.Record(prog, s.Config())
	if err != nil {
		return err
	}
	exec, err := racereplay.Replay(log)
	if err != nil {
		return err
	}
	races := racereplay.DetectRaces(exec)

	// hitRate runs one instrumented, untimed pass and reads the memo
	// counters, so the timed loops stay free of registry overhead.
	hitRate := func(f func(reg *racereplay.Metrics)) float64 {
		reg := racereplay.NewMetrics()
		f(reg)
		snap := reg.Snapshot()
		h, m := snap.Counters["classify.memo.hits"], snap.Counters["classify.memo.misses"]
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}

	fmt.Fprintln(out, "bench: classification (browse, full offline pipeline)")
	for _, memo := range []bool{true, false} {
		name := fmt.Sprintf("classification/memo=%s", onOff(memo))
		res := r.Run(file, name, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := racereplay.AnalyzeLog(log, racereplay.Options{NoMemo: !memo}); err != nil {
					fatal(err)
				}
			}
		})
		if memo {
			res.Metrics = map[string]float64{"hitrate": hitRate(func(reg *racereplay.Metrics) {
				if _, err := racereplay.AnalyzeLogInstrumented(log, racereplay.Options{}, reg); err != nil {
					fatal(err)
				}
			})}
		}
	}

	fmt.Fprintln(out, "bench: memoized classification (memo on/off x workers 1/8)")
	for _, memo := range []bool{true, false} {
		for _, workers := range []int{1, 8} {
			memo, workers := memo, workers
			name := fmt.Sprintf("memoized-classification/memo=%s/workers=%d", onOff(memo), workers)
			opts := racereplay.Options{Parallel: workers, NoMemo: !memo}
			res := r.Run(file, name, func(n int) {
				for i := 0; i < n; i++ {
					racereplay.Classify(exec, races, opts)
				}
			})
			if memo {
				res.Metrics = map[string]float64{"hitrate": hitRate(func(reg *racereplay.Metrics) {
					o := opts
					o.Metrics = reg
					racereplay.Classify(exec, races, o)
				})}
			}
		}
	}

	fmt.Fprintln(out, "bench: happens-before analysis")
	r.Run(file, "hb-analysis", func(n int) {
		for i := 0; i < n; i++ {
			ex, err := racereplay.Replay(log)
			if err != nil {
				fatal(err)
			}
			racereplay.DetectRaces(ex)
		}
	})

	// The race-free fast path: the same race-free recording analyzed with
	// its online race-free verdict attached (offline decode+HB skipped)
	// and round-tripped through the wire format (annotation stripped, full
	// offline pass). The gap between the two rungs is the measured win the
	// online detector buys on clean executions.
	fmt.Fprintln(out, "bench: race-free fast path (service, online verdict on/off)")
	svc, err := workloads.FindScenario("service")
	if err != nil {
		return err
	}
	svcProg, err := svc.Program()
	if err != nil {
		return err
	}
	fastLog, orep, err := racereplay.RecordOnline(svcProg, svc.Config(), racereplay.OnlineConfig{Detect: true})
	if err != nil {
		return err
	}
	if !orep.RaceFree {
		return fmt.Errorf("service scenario raced online (%d pairs); fast-path benchmark needs a race-free workload", len(orep.Races))
	}
	var svcWire bytes.Buffer
	if err := racereplay.WriteLog(&svcWire, fastLog); err != nil {
		return err
	}
	slowLog, err := racereplay.ReadLog(bytes.NewReader(svcWire.Bytes()))
	if err != nil {
		return err
	}
	for _, online := range []bool{true, false} {
		benchLog := slowLog
		if online {
			benchLog = fastLog
		}
		r.Run(file, fmt.Sprintf("analyze-racefree/online=%s", onOff(online)), func(n int) {
			for i := 0; i < n; i++ {
				if _, err := racereplay.AnalyzeLog(benchLog, racereplay.Options{}); err != nil {
					fatal(err)
				}
			}
		})
	}

	fmt.Fprintln(out, "bench: online recording overhead (service, detect on/off)")
	for _, detect := range []bool{true, false} {
		oc := racereplay.OnlineConfig{Detect: detect}
		r.Run(file, fmt.Sprintf("record-online/detect=%s", onOff(detect)), func(n int) {
			for i := 0; i < n; i++ {
				if _, _, err := racereplay.RecordOnline(svcProg, svc.Config(), oc); err != nil {
					fatal(err)
				}
			}
		})
	}

	fmt.Fprintln(out, "bench: suite (seeds=2, jobs 1/8)")
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		res := r.Run(file, fmt.Sprintf("suite/jobs=%d", jobs), func(n int) {
			for i := 0; i < n; i++ {
				if _, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{Seeds: 2, Jobs: jobs}); err != nil {
					fatal(err)
				}
			}
		})
		res.Metrics = map[string]float64{"hitrate": hitRate(func(reg *racereplay.Metrics) {
			if _, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{Seeds: 2, Jobs: jobs, Registry: reg}); err != nil {
				fatal(err)
			}
		})}
	}

	// The prediction stage rides the same suite; the gap to the plain
	// suite rungs above is the windowed solver plus the second classify
	// pass over predicted-new pairs.
	fmt.Fprintln(out, "bench: predict-suite (seeds=2, prediction stage, jobs 1/8)")
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		r.Run(file, fmt.Sprintf("predict-suite/jobs=%d", jobs), func(n int) {
			for i := 0; i < n; i++ {
				if _, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{Seeds: 2, Jobs: jobs, Predict: true}); err != nil {
					fatal(err)
				}
			}
		})
	}

	// Container decode throughput: the same synthetic 8-thread log is
	// decoded from the v1 whole-log flate container (serial by
	// construction — one compressed stream) and from the segmented v2
	// container at one and eight workers. mb_per_s is container bytes
	// over median wall time; raw_bits_per_instr is the §5.1 footprint
	// metric for each format's uncompressed layout.
	fmt.Fprintln(out, "bench: decode-suite (synthetic 8-thread log, v1 serial vs v2 parallel)")
	synth := syntheticLog(prog, 8, 30000)
	if err := trace.Validate(synth); err != nil {
		return fmt.Errorf("synthetic decode-suite log invalid: %w", err)
	}
	v1data := trace.Compress(trace.Marshal(synth))
	v2data := trace.MarshalV2(synth)
	v1Stats := trace.Stats(synth)
	v2Stats := trace.StatsV2(synth)
	resV1 := r.Run(file, "decode-suite/v1-serial", func(n int) {
		for i := 0; i < n; i++ {
			raw, err := trace.Decompress(v1data)
			if err != nil {
				fatal(err)
			}
			if _, err := trace.Unmarshal(raw); err != nil {
				fatal(err)
			}
		}
	})
	resV1.Metrics = map[string]float64{
		"mb_per_s":           mbPerS(len(v1data), resV1.Median()),
		"raw_bits_per_instr": v1Stats.RawBitsPerInstr(),
	}
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		res := r.Run(file, fmt.Sprintf("decode-suite/v2/jobs=%d", jobs), func(n int) {
			for i := 0; i < n; i++ {
				if _, _, err := trace.DecodeV2(v2data, trace.V2Options{Jobs: jobs}); err != nil {
					fatal(err)
				}
			}
		})
		res.Metrics = map[string]float64{
			"mb_per_s":           mbPerS(len(v2data), res.Median()),
			"raw_bits_per_instr": v2Stats.RawBitsPerInstr(),
		}
	}

	if err := file.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: wrote %d benchmarks to %s\n", len(file.Benchmarks), path)
	return nil
}

// checkBench validates a bench file against the schema and, with a
// baseline, enforces the regression gate: any benchmark whose median
// ns/op slowed past the tolerance fails the command.
func checkBench(path, against string, tolerance float64, out io.Writer) error {
	f, err := bench.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: %s ok (%s, %s/%s, %d cpus, %d benchmarks)\n",
		path, f.Schema, f.GoOS, f.GoArch, f.CPUs, len(f.Benchmarks))
	if against == "" {
		return nil
	}
	base, err := bench.ReadFile(against)
	if err != nil {
		return err
	}
	cmp, err := bench.Compare(base, f, tolerance)
	if err != nil {
		return err
	}
	for _, name := range cmp.New {
		fmt.Fprintf(out, "bench: NEW %s (no baseline in %s; not gated)\n", name, against)
	}
	for _, r := range cmp.Regressions {
		fmt.Fprintf(out, "bench: REGRESSION %s: %.0f ns/op -> %.0f ns/op (%.2fx, tolerance %.2fx)\n",
			r.Name, r.Base, r.Current, r.Ratio, 1+tolerance)
	}
	if len(cmp.Regressions) > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed past +%.0f%% vs %s",
			len(cmp.Regressions), cmp.Compared, tolerance*100, against)
	}
	fmt.Fprintf(out, "bench: no regressions past +%.0f%% across %d benchmarks vs %s\n",
		tolerance*100, cmp.Compared, against)
	return nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// syntheticLog builds a deterministic, Validate-clean log sized for the
// decode benchmarks: nThreads threads, each with loads unpredictable-load
// records and a sequencer spine, over prog. The access pattern comes from
// a fixed LCG so every run serializes to identical bytes.
func syntheticLog(prog *isa.Program, nThreads, loads int) *trace.Log {
	const seqEvery = 256 // one atomic sequencer per this many loads
	log := &trace.Log{Prog: prog, Seed: 42}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng
	}
	var clock uint64
	for tid := 0; tid < nThreads; tid++ {
		retired := uint64(4 * loads)
		t := &trace.ThreadLog{
			TID:       tid,
			Retired:   retired,
			EndReason: trace.EndHalted,
		}
		clock++
		t.StartTS = clock
		t.Seqs = append(t.Seqs, trace.Sequencer{Idx: 0, TS: clock, Kind: trace.SeqStart, Aux: -1})
		for i := 0; i < loads; i++ {
			idx := uint64(4*i + 1)
			t.Loads = append(t.Loads, trace.LoadRec{
				Idx:  idx,
				Addr: 0x1000 + next()%4096*8,
				Val:  next(),
			})
			if i%seqEvery == seqEvery-1 {
				clock++
				t.Seqs = append(t.Seqs, trace.Sequencer{Idx: idx + 1, TS: clock, Kind: trace.SeqAtomic, Aux: -1})
			}
		}
		clock++
		t.EndTS = clock
		t.Seqs = append(t.Seqs, trace.Sequencer{Idx: retired, TS: clock, Kind: trace.SeqEnd, Aux: -1})
		log.Threads = append(log.Threads, t)
		log.TotalSteps += retired
	}
	log.FinalClock = clock
	return log
}

// mbPerS converts a container size and a median ns/op into decode
// throughput in megabytes per second.
func mbPerS(bytes int, nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / (nsPerOp / 1e9)
}
