// Command paperbench regenerates every table and figure of the paper's
// evaluation section (§5) from the built-in workload suite:
//
//	paperbench            # everything
//	paperbench -table 1   # just Table 1
//	paperbench -figure 4  # just Figure 4
//	paperbench -perf      # just the §5.1 performance measurements
//	paperbench -perf-report  # the §5.1 ladder from instrumentation spans
//
// The output is the text EXPERIMENTS.md quotes; the numbers are
// deterministic for the tables/figures (fixed seeds) and hardware-
// dependent for the timing section.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/machine"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/workloads"

	racereplay "repro"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// realMain is the testable entry point.
func realMain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(out)
	table := fs.Int("table", 0, "render only this table (1 or 2)")
	figure := fs.Int("figure", 0, "render only this figure (3, 4, or 5)")
	perfOnly := fs.Bool("perf", false, "render only the performance section")
	perfReport := fs.Bool("perf-report", false, "render the overhead ladder from an instrumented suite run (spans, not stopwatches)")
	md := fs.Bool("md", false, "emit the tables and figures as GitHub markdown")
	seeds := fs.Int("seeds", 1, "scheduler seeds recorded per scenario (instances scale with coverage)")
	jobs := fs.Int("jobs", 0, "analysis workers (0 = GOMAXPROCS); output is identical at any count")
	benchOut := fs.String("bench-out", "", "measure the offline pipeline with the machine-readable harness and write JSON here (e.g. BENCH_7.json)")
	benchTime := fs.Duration("bench-time", 200*time.Millisecond, "per-benchmark measurement budget for -bench-out (0 = one iteration)")
	benchRounds := fs.Int("bench-rounds", 1, "measurement rounds per benchmark for -bench-out; medians over rounds feed -against")
	checkFile := fs.String("check-bench", "", "validate a -bench-out JSON file against the schema and exit")
	against := fs.String("against", "", "with -check-bench: baseline bench JSON to diff against; regressions past -tolerance fail")
	tolerance := fs.Float64("tolerance", 0.25, "allowed median ns/op slowdown vs -against before failing (0.25 = +25%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stdout = out

	if *checkFile != "" {
		return checkBench(*checkFile, *against, *tolerance, out)
	}
	if *benchOut != "" {
		return runBenchOut(*benchOut, *benchTime, *benchRounds, out)
	}

	all := *table == 0 && *figure == 0 && !*perfOnly && !*perfReport && !*md

	if *perfReport {
		// Unlike perf()'s best-of-three stopwatches over one scenario,
		// this ladder aggregates the instrumentation spans of a real
		// suite run — every scenario, every stage, plus a bare-machine
		// native baseline per execution.
		reg := racereplay.NewMetrics()
		if _, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{
			Seeds: *seeds, Jobs: *jobs, Registry: reg,
		}); err != nil {
			return err
		}
		fmt.Fprint(stdout, report.OverheadLadder(reg.Snapshot()))
		return nil
	}

	var run *workloads.SuiteRun
	needSuite := all || *table != 0 || *figure != 0 || *md
	if needSuite {
		var err error
		run, err = racereplay.RunSuiteOpts(racereplay.SuiteOptions{Seeds: *seeds, Jobs: *jobs})
		if err != nil {
			return err
		}
	}

	if *md {
		fmt.Fprint(stdout, report.Markdown(run.Merged, report.SuiteTruth))
		return nil
	}
	if all {
		fmt.Fprintln(stdout, "# Replay-based data race classification: evaluation")
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.Summary(run.Merged, report.SuiteTruth))
		fmt.Fprintln(stdout)
	}
	if all || *table == 1 {
		fmt.Fprint(stdout, report.BuildTable1(run.Merged, report.SuiteTruth).Render())
		fmt.Fprintln(stdout)
	}
	if all || *table == 2 {
		fmt.Fprint(stdout, report.BuildTable2(run.Merged, report.SuiteTruth).Render())
		fmt.Fprintln(stdout)
	}
	if all || *figure == 3 {
		fmt.Fprint(stdout, report.BuildFigure3(run.Merged, report.SuiteTruth).Render())
		fmt.Fprintln(stdout)
	}
	if all || *figure == 4 {
		fmt.Fprint(stdout, report.BuildFigure4(run.Merged, report.SuiteTruth).Render())
		fmt.Fprintln(stdout)
	}
	if all || *figure == 5 {
		fmt.Fprint(stdout, report.BuildFigure5(run.Merged, report.SuiteTruth).Render())
		fmt.Fprintln(stdout)
	}
	if all || *perfOnly {
		perf()
	}
	if all {
		ablation()
	}
	return nil
}

// stdout is the output sink, replaceable in tests.
var stdout io.Writer = os.Stdout

// perf reproduces §5.1: log sizes and the per-stage overhead ladder over
// the browse workload.
func perf() {
	fmt.Fprintln(stdout, "Performance (browse scenario, cf. paper section 5.1)")
	s := workloads.BrowseScenario()
	prog, err := s.Program()
	if err != nil {
		fatal(err)
	}
	cfg := s.Config()

	// Each stage is timed best-of-three to damp scheduler noise.
	tNative, steps := timeNative(prog, cfg)

	var log *racereplay.Log
	tRecord := best(func() {
		var err error
		log, err = racereplay.Record(prog, cfg)
		if err != nil {
			fatal(err)
		}
	})

	tReplay := best(func() {
		if _, err := replay.Run(log, replay.Options{SkipAccesses: true}); err != nil {
			fatal(err)
		}
	})

	var races *racereplay.RaceSet
	tHB := best(func() {
		exec, err := racereplay.Replay(log)
		if err != nil {
			fatal(err)
		}
		races = racereplay.DetectRaces(exec)
	})

	tClassify := best(func() {
		if _, err := racereplay.AnalyzeLog(log, racereplay.Options{}); err != nil {
			fatal(err)
		}
	})

	st := racereplay.LogStats(log)
	fmt.Fprintf(stdout, "  instructions executed:      %d across %d threads\n", steps, len(log.Threads))
	fmt.Fprintf(stdout, "  log size:                   %.2f bits/instr raw, %.2f bits/instr compressed\n",
		st.RawBitsPerInstr(), st.CompressedBitsPerInstr())
	fmt.Fprintf(stdout, "  storage per 10^9 instrs:    %.0f MB compressed (paper: ~96 MB raw)\n", st.BytesPerBillion()/1e6)
	fmt.Fprintf(stdout, "  races in this execution:    %d unique (%d instances)\n", len(races.Races), races.TotalInstances)
	fmt.Fprintf(stdout, "  native execution:           %v\n", tNative)
	fmt.Fprintf(stdout, "  recording:                  %v (%.1fx native; paper ~6x on x86)\n", tRecord, ratio(tRecord, tNative))
	fmt.Fprintf(stdout, "  replay:                     %v (%.1fx native; paper ~10x)\n", tReplay, ratio(tReplay, tNative))
	fmt.Fprintf(stdout, "  happens-before analysis:    %v (%.1fx native; paper ~45x)\n", tHB, ratio(tHB, tNative))
	fmt.Fprintf(stdout, "  replay classification:      %v (%.1fx native; paper ~280x)\n", tClassify, ratio(tClassify, tNative))
	fmt.Fprintln(stdout)
}

func timeNative(prog *racereplay.Program, cfg machine.Config) (time.Duration, uint64) {
	var steps uint64
	d := best(func() {
		m, err := machine.New(prog, cfg)
		if err != nil {
			fatal(err)
		}
		steps = m.Run().TotalSteps
	})
	return d, steps
}

// best runs f three times and returns the fastest wall time.
func best(f func()) time.Duration {
	min := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); min == 0 || d < min {
			min = d
		}
	}
	return min
}

// ablation renders A1 (interval vs vector-clock detector) and A2 (lockset
// baseline false positives) over the first scenario.
func ablation() {
	fmt.Fprintln(stdout, "Ablations (scenario exec01)")
	s := workloads.Scenarios()[0]
	prog, err := s.Program()
	if err != nil {
		fatal(err)
	}
	log, err := racereplay.Record(prog, s.Config())
	if err != nil {
		fatal(err)
	}
	exec, err := racereplay.Replay(log)
	if err != nil {
		fatal(err)
	}
	interval := hb.Detect(exec)
	vc, err := hb.DetectVC(exec)
	if err != nil {
		fatal(err)
	}
	ls := lockset.Detect(exec)
	fmt.Fprintf(stdout, "  A1 region-overlap detector:  %d races (%d instances)\n", len(interval.Races), interval.TotalInstances)
	fmt.Fprintf(stdout, "  A1 vector-clock detector:    %d races (%d instances)\n", len(vc.Races), vc.TotalInstances)
	fmt.Fprintf(stdout, "  A2 lockset (Eraser) baseline: %d warnings over %d shared addresses\n", len(ls.Warnings), ls.Checked)
	fmt.Fprintln(stdout, "  (the lockset baseline also fires on fork/join and user-constructed")
	fmt.Fprintln(stdout, "   synchronization: false positives the happens-before detector avoids)")
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
