package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/report"

	racereplay "repro"
)

// profileReady, when set, receives the bound address once the profile
// server is listening (test hook).
var profileReady func(addr string)

// cmdProfile runs the suite in a loop while serving live metrics and Go
// profiling data over HTTP — the operational mode for watching the
// pipeline under load:
//
//	/metrics        Prometheus exposition format
//	/metrics.json   the same snapshot as JSON
//	/trace          the flight-recorder timeline as Chrome trace JSON
//	/debug/pprof/   the standard Go profiler endpoints
//
// With -hold the server stays up after the iterations finish, so an
// external scraper (or a browser) can inspect the final state.
//
// SIGINT/SIGTERM shut the command down gracefully at any point: the
// loop stops after the in-flight operation, the final overhead ladder
// (and -trace-out timeline, if requested) is still written, the server
// drains, and the exit status is 0 — an operator stopping the process
// loses no observability data.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address for metrics + pprof")
	seeds := fs.Int("seeds", 1, "scheduler seeds per scenario per iteration")
	iterations := fs.Int("iterations", 1, "suite iterations to run")
	hold := fs.Duration("hold", 0, "keep serving this long after the last iteration")
	traceOut := fs.String("trace-out", "",
		"also write the final timeline as Chrome trace JSON to this file on exit")
	fs.Parse(args)

	ctx, stop := notifyShutdown()
	defer stop()

	reg := racereplay.NewMetrics()
	reg.EnableTimeline(0)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, reg.Snapshot().Prometheus())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, reg.Snapshot().JSON())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="racer-trace.json"`)
		reg.Timeline().WriteTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "profiling server on http://%s (metrics at /metrics, timeline at /trace, pprof at /debug/pprof/)\n",
		ln.Addr())
	if profileReady != nil {
		profileReady(ln.Addr().String())
	}

	interrupted := false
	for i := 0; i < *iterations && !interrupted; i++ {
		if _, err := racereplay.RunSuiteSeedsInstrumented(nil, *seeds, reg); err != nil {
			srv.Close()
			return err
		}
		fmt.Fprintf(stdout, "iteration %d/%d done\n", i+1, *iterations)
		if ctx.Err() != nil {
			interrupted = true
		}
	}
	if interrupted {
		fmt.Fprint(stdout, "interrupted: flushing and shutting down\n")
	}
	fmt.Fprint(stdout, report.OverheadLadder(reg.Snapshot()))
	if *traceOut != "" {
		if err := writeTraceFile(reg, *traceOut); err != nil {
			return err
		}
	}
	if *hold > 0 && !interrupted {
		fmt.Fprintf(stdout, "holding for %v...\n", *hold)
		select {
		case <-time.After(*hold):
		case <-ctx.Done():
			fmt.Fprint(stdout, "interrupted: shutting down\n")
		}
	}
	sctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	<-done
	return nil
}
