package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	racereplay "repro"
)

// extractJSON pulls the metrics JSON document out of captured output.
func extractJSON(t *testing.T, out string) racereplay.MetricsSnapshot {
	t.Helper()
	_, body, found := strings.Cut(out, "--- metrics ---")
	if !found {
		t.Fatalf("no metrics section in output:\n%s", out)
	}
	var snap racereplay.MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, body)
	}
	return snap
}

// TestSuiteMetricsJSON is the pipeline-wide acceptance check: one suite
// run must produce nonzero counters for every stage and span timings
// that reproduce the cumulative §5.1 ladder.
func TestSuiteMetricsJSON(t *testing.T) {
	out := capture(t, func() error { return cmdSuite([]string{"-metrics=json"}) })
	snap := extractJSON(t, out)

	// Every pipeline stage must have reported in.
	for _, c := range []string{
		"record.executions", "record.instructions", "record.loads_logged",
		"replay.executions", "replay.regions", "replay.loads_injected",
		"detect.executions", "detect.region_pairs_examined", "detect.races",
		"classify.executions", "classify.instances_total", "classify.races",
		"report.scenarios", "report.unique_races", "report.instances",
		"native.executions",
		"machine.loads", "machine.sequencers",
		"vproc.instances_analyzed", "vproc.order_replays",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s is zero after a suite run", c)
		}
	}
	if snap.Counters["record.loads_total"] !=
		snap.Counters["record.loads_logged"]+snap.Counters["record.loads_predicted"] {
		t.Error("loads_logged + loads_predicted != loads_total")
	}

	// Span ladder: every stage present, and the cumulative offline
	// stages dominate their parts (hb = replay+detect includes replay;
	// classification includes both). Absolute stage-vs-stage ratios are
	// hardware noise; the cumulative structure is not.
	native := snap.SpanNanos("native")
	record := snap.SpanNanos("record")
	replay := snap.SpanNanos("replay")
	detect := snap.SpanNanos("detect")
	classify := snap.SpanNanos("classify")
	for name, nanos := range map[string]int64{
		"native": native, "record": record, "replay": replay,
		"detect": detect, "classify": classify,
	} {
		if nanos <= 0 {
			t.Errorf("span %s has no accumulated time", name)
		}
	}
	if hb := replay + detect; hb <= replay {
		t.Errorf("hb-analysis ladder rung (%d) not above replay (%d)", hb, replay)
	}
	if cls := replay + detect + classify; cls <= replay+detect {
		t.Errorf("classification ladder rung (%d) not above hb analysis (%d)", cls, replay+detect)
	}
}

func TestRunMetricsText(t *testing.T) {
	path := writeProg(t)
	out := capture(t, func() error { return cmdRun([]string{"-metrics", path}) })
	for _, want := range []string{"spans:", "record", "counters:", "record.loads_logged", "machine.loads"} {
		if !strings.Contains(out, want) {
			t.Errorf("text metrics missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioMetricsPromToFile(t *testing.T) {
	dest := filepath.Join(t.TempDir(), "metrics.prom")
	out := capture(t, func() error {
		return cmdScenario([]string{"-name", "exec01", "-metrics=prom", "-metrics-out", dest})
	})
	if strings.Contains(out, "--- metrics ---") {
		t.Error("-metrics-out should divert metrics away from stdout")
	}
	body, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE racereplay_record_executions_total counter",
		"racereplay_span_seconds{span=",
		"racereplay_classify_instances_total_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsOffByDefault(t *testing.T) {
	path := writeProg(t)
	out := capture(t, func() error { return cmdRun([]string{path}) })
	if strings.Contains(out, "--- metrics ---") {
		t.Errorf("metrics emitted without -metrics:\n%s", out)
	}
}

func TestMetricsFormatFlag(t *testing.T) {
	var f metricsFormatFlag
	for _, tc := range []struct{ in, want string }{
		{"true", "text"}, {"text", "text"}, {"json", "json"}, {"prom", "prom"}, {"false", ""},
	} {
		if err := f.Set(tc.in); err != nil {
			t.Fatalf("Set(%q): %v", tc.in, err)
		}
		if string(f) != tc.want {
			t.Errorf("Set(%q) = %q, want %q", tc.in, f, tc.want)
		}
	}
	if err := f.Set("yaml"); err == nil {
		t.Error("bogus format accepted")
	}
}

// TestCmdProfile drives the live-metrics mode end to end: the HTTP
// endpoints must serve while the suite runs, and the command must print
// the span-derived ladder when done.
func TestCmdProfile(t *testing.T) {
	served := make(chan error, 1)
	profileReady = func(addr string) {
		served <- func() error {
			// The probe races the suite run, so the snapshot may still be
			// empty; the endpoint contract (status, content type, and
			// namespaced families once data exists) is what we check.
			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/metrics status = %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				t.Errorf("/metrics content type = %q", ct)
			}
			body, _ := io.ReadAll(resp.Body)
			if len(body) > 0 && !strings.Contains(string(body), "racereplay_") {
				t.Errorf("unexpected /metrics body:\n%s", body)
			}
			jr, err := http.Get("http://" + addr + "/metrics.json")
			if err != nil {
				return err
			}
			defer jr.Body.Close()
			var snap racereplay.MetricsSnapshot
			return json.NewDecoder(jr.Body).Decode(&snap)
		}()
	}
	defer func() { profileReady = nil }()

	out := capture(t, func() error {
		return cmdProfile([]string{"-addr", "127.0.0.1:0", "-iterations", "1"})
	})
	if err := <-served; err != nil {
		t.Fatalf("metrics endpoints: %v", err)
	}
	for _, want := range []string{"profiling server on http://", "iteration 1/1 done", "overhead ladder"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}
