package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"

	racereplay "repro"
)

// readTrace loads and schema-checks a trace file, returning the decoded
// events bucketed by phase for assertions.
func readTrace(t *testing.T, path string) (threads []string, slices, instants map[string]int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := obs.ValidateTrace(data)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	slices, instants = map[string]int{}, map[string]int{}
	for _, ev := range f.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				threads = append(threads, ev.Args["name"].(string))
			}
		case "X":
			slices[ev.Name]++
		case "i":
			instants[ev.Name]++
		}
	}
	return threads, slices, instants
}

// TestCmdSuiteTraceOut is the flight-recorder acceptance check: one
// parallel suite run must export a valid Chrome trace with per-worker
// lanes covering every pipeline stage plus the memo instants.
func TestCmdSuiteTraceOut(t *testing.T) {
	resetExit(t)
	dest := filepath.Join(t.TempDir(), "trace.json")
	capture(t, func() error {
		return cmdSuite([]string{"-seeds", "2", "-jobs", "4", "-trace-out", dest})
	})
	threads, slices, instants := readTrace(t, dest)

	if len(threads) < 2 {
		t.Fatalf("want a main lane plus worker lanes, got threads %v", threads)
	}
	if threads[0] != "main" {
		t.Errorf("lane 0 = %q, want main", threads[0])
	}
	workers := 0
	for _, name := range threads[1:] {
		if name != "main" {
			workers++
		}
	}
	if workers == 0 {
		t.Errorf("no worker lanes in trace: %v", threads)
	}
	for _, stage := range []string{"suite", "record", "native", "replay", "detect", "classify"} {
		if slices[stage] == 0 {
			t.Errorf("no %q slice in trace (slices: %v)", stage, slices)
		}
	}
	if instants["classify.memo.miss"] == 0 {
		t.Errorf("no memo-miss instants (instants: %v)", instants)
	}
	if instants["classify.memo.hit"] == 0 {
		t.Errorf("no memo-hit instants (instants: %v)", instants)
	}
}

// TestCmdSuiteAuditByteIdenticalAcrossJobs: the -audit-out file is a
// deterministic function of the inputs, independent of worker count.
func TestCmdSuiteAuditByteIdenticalAcrossJobs(t *testing.T) {
	resetExit(t)
	dir := t.TempDir()
	serial, parallel := filepath.Join(dir, "a1.json"), filepath.Join(dir, "a8.json")
	capture(t, func() error { return cmdSuite([]string{"-seeds", "2", "-jobs", "1", "-audit-out", serial}) })
	capture(t, func() error { return cmdSuite([]string{"-seeds", "2", "-jobs", "8", "-audit-out", parallel}) })
	a, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("audit trail diverges between -jobs 1 and -jobs 8:\n--- jobs 1 ---\n%s\n--- jobs 8 ---\n%s", a, b)
	}
	file, err := racereplay.ReadAuditFile(serial)
	if err != nil {
		t.Fatalf("audit file does not load: %v", err)
	}
	if len(file.Executions) == 0 {
		t.Fatal("audit file has no executions")
	}
	for _, ex := range file.Executions {
		if ex.Quarantined == "" && len(ex.LogSHA256) != 64 {
			t.Errorf("%s: log hash %q is not a sha256", ex.Scenario, ex.LogSHA256)
		}
	}
	if hits, _ := file.CacheHits(); hits == 0 {
		t.Error("audit trail records no cached replays")
	}

	// racer audit renders the trail for humans.
	out := capture(t, func() error { return cmdAudit([]string{serial}) })
	for _, want := range []string{"audit trail (racereplay-audit/v1)", "log sha256", "<->"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit rendering missing %q:\n%s", want, out)
		}
	}
	if err := cmdAudit([]string{serial, "extra"}); err == nil {
		t.Error("audit with two files accepted")
	}
	if err := cmdAudit([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("audit with a missing file accepted")
	}
}

// TestCmdAnalyzeDirAuditAndTrace: the offline path carries the same
// provenance — quarantined files appear in both the audit trail and the
// timeline, healthy files get decode instants and log hashes.
func TestCmdAnalyzeDirAuditAndTrace(t *testing.T) {
	resetExit(t)
	dir := filepath.Join(t.TempDir(), "logs")
	capture(t, func() error { return cmdRecordSuite([]string{"-dir", dir}) })
	bad, err := os.ReadFile(corruptCorpus(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz-bad.rlog"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	auditDest := filepath.Join(t.TempDir(), "audit.json")
	traceDest := filepath.Join(t.TempDir(), "trace.json")
	capture(t, func() error {
		return cmdAnalyzeDir([]string{"-dir", dir, "-jobs", "4",
			"-audit-out", auditDest, "-trace-out", traceDest})
	})

	_, slices, instants := readTrace(t, traceDest)
	if slices["decode"] == 0 {
		t.Errorf("no decode slice in trace (slices: %v)", slices)
	}
	if instants["decode"] == 0 {
		t.Errorf("no per-file decode instants (instants: %v)", instants)
	}
	if instants["quarantine"] == 0 {
		t.Errorf("corrupt log left no quarantine instant (instants: %v)", instants)
	}

	file, err := racereplay.ReadAuditFile(auditDest)
	if err != nil {
		t.Fatalf("audit file does not load: %v", err)
	}
	quarantined := 0
	for _, ex := range file.Executions {
		if ex.Quarantined != "" {
			quarantined++
			if ex.Scenario != "zz-bad.rlog" {
				t.Errorf("unexpected quarantined execution %q", ex.Scenario)
			}
		} else if len(ex.LogSHA256) != 64 {
			t.Errorf("%s: log hash %q is not a sha256", ex.Scenario, ex.LogSHA256)
		}
	}
	if quarantined != 1 {
		t.Errorf("audit trail has %d quarantined executions, want 1", quarantined)
	}
	if len(file.Executions) < 2 {
		t.Errorf("audit trail covers %d executions, want every input", len(file.Executions))
	}
}

// TestCmdValidateMetricsAndLogs: validate now participates in the
// observability layer — counters for the sweep, a structured log record
// per invalid file.
func TestCmdValidateMetricsAndLogs(t *testing.T) {
	resetExit(t)
	prog := writeProg(t)
	logPath := filepath.Join(t.TempDir(), "ok.rlog")
	capture(t, func() error { return cmdRecord([]string{"-o", logPath, prog}) })
	logDest := filepath.Join(t.TempDir(), "validate.jsonl")

	out := capture(t, func() error {
		return cmdValidate([]string{"-metrics=json", "-log-out", logDest, "-log-level", "warn",
			logPath, corruptCorpus(t)[0]})
	})
	snap := extractJSON(t, out)
	if snap.Counters["validate.files"] != 2 {
		t.Errorf("validate.files = %d, want 2", snap.Counters["validate.files"])
	}
	if snap.Counters["validate.invalid"] != 1 {
		t.Errorf("validate.invalid = %d, want 1", snap.Counters["validate.invalid"])
	}
	if snap.Counters["validate.instructions"] == 0 || snap.Counters["validate.threads"] == 0 {
		t.Errorf("healthy-log counters missing: %v", snap.Counters)
	}

	data, err := os.ReadFile(logDest)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec["msg"] == "invalid log" {
			found = true
			if rec["level"] != "WARN" || rec["file"] == "" || rec["err"] == "" {
				t.Errorf("invalid-log record incomplete: %v", rec)
			}
		}
	}
	if !found {
		t.Errorf("no structured record for the invalid log:\n%s", data)
	}
}

// TestCmdProfileGracefulSignal: SIGINT mid-run stops the loop, still
// flushes the ladder and the -trace-out timeline, and exits 0. The
// /trace endpoint serves a loadable trace while the run is live.
func TestCmdProfileGracefulSignal(t *testing.T) {
	resetExit(t)
	traceDest := filepath.Join(t.TempDir(), "trace.json")
	served := make(chan error, 1)
	profileReady = func(addr string) {
		served <- func() error {
			resp, err := http.Get("http://" + addr + "/trace")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("/trace content type = %q", ct)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			if _, err := obs.ValidateTrace(body); err != nil {
				return err
			}
			if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
				return err
			}
			// Give the notify goroutine a beat to flip the context before
			// the first iteration starts.
			time.Sleep(100 * time.Millisecond)
			return nil
		}()
	}
	defer func() { profileReady = nil }()

	out := capture(t, func() error {
		return cmdProfile([]string{"-addr", "127.0.0.1:0", "-iterations", "3",
			"-hold", "30s", "-trace-out", traceDest})
	})
	if err := <-served; err != nil {
		t.Fatalf("/trace endpoint: %v", err)
	}
	for _, want := range []string{"iteration 1/3 done", "interrupted: flushing and shutting down", "overhead ladder"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
	_, slices, _ := readTrace(t, traceDest)
	if slices["suite"] == 0 {
		t.Errorf("flushed trace has no suite slice (slices: %v)", slices)
	}
}
