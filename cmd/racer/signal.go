package main

import (
	"context"
	"os/signal"
	"syscall"
)

// notifyShutdown returns a context that ends on SIGINT or SIGTERM — the
// shared graceful-shutdown trigger for racer's long-running commands
// (profile, serve). A first signal cancels the context and the command
// winds down cleanly; a second signal restores default handling (i.e.
// kills the process), so a wedged shutdown can still be stopped. Callers
// must defer stop to release the signal handler.
func notifyShutdown() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
}
