package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	racereplay "repro"
	"repro/internal/obs"
)

// metricsOpts is the shared observability flag set: -metrics/-metrics-out
// (counters and spans), -trace-out (the flight-recorder timeline as
// Chrome trace_event JSON), and -log-out/-log-level (structured JSONL
// logs). The -metrics flag is bool-style with an optional value: a bare
// -metrics selects the text format, -metrics=json and -metrics=prom pick
// the machine-readable renderings.
type metricsOpts struct {
	format   string // "", "text", "json", "prom"
	out      string // "" = stdout
	traceOut string // "" = timeline off
	logOut   string // "" = logging off; "-" = stderr
	logLevel string // slog level name, default "info"

	logFile *os.File // owned when logOut names a file
}

// addMetricsFlags registers the observability flags on fs.
func addMetricsFlags(fs *flag.FlagSet) *metricsOpts {
	m := &metricsOpts{}
	fs.Var((*metricsFormatFlag)(&m.format), "metrics",
		"emit pipeline metrics: text (default), json, or prom")
	fs.StringVar(&m.out, "metrics-out", "", "write metrics to this file instead of stdout")
	fs.StringVar(&m.traceOut, "trace-out", "",
		"record an event timeline and write it as Chrome trace JSON (load in Perfetto) to this file")
	fs.StringVar(&m.logOut, "log-out", "",
		"write structured JSONL logs to this file (- for stderr)")
	fs.StringVar(&m.logLevel, "log-level", "info",
		"minimum structured log level: debug, info, warn, or error")
	return m
}

// metricsFormatFlag lets -metrics work both bare and with a value.
type metricsFormatFlag string

func (f *metricsFormatFlag) String() string { return string(*f) }

func (f *metricsFormatFlag) IsBoolFlag() bool { return true }

func (f *metricsFormatFlag) Set(v string) error {
	switch v {
	case "true", "text", "":
		*f = "text"
	case "false":
		*f = ""
	case "json", "prom":
		*f = metricsFormatFlag(v)
	default:
		return fmt.Errorf("unknown metrics format %q (want text, json, or prom)", v)
	}
	return nil
}

// enabled reports whether any observability output was requested.
func (m *metricsOpts) enabled() bool {
	return m.format != "" || m.traceOut != "" || m.logOut != ""
}

// registry returns the registry to thread through the pipeline: nil when
// every observability output is off, which keeps the instrumented entry
// points free. With -trace-out the registry carries a flight-recorder
// timeline; with -log-out it carries a leveled JSONL logger.
func (m *metricsOpts) registry() (*racereplay.Metrics, error) {
	if !m.enabled() {
		return nil, nil
	}
	reg := racereplay.NewMetrics()
	if m.traceOut != "" {
		reg.EnableTimeline(0)
	}
	if m.logOut != "" {
		var level slog.Level
		if err := level.UnmarshalText([]byte(m.logLevel)); err != nil {
			return nil, fmt.Errorf("-log-level: %w", err)
		}
		w := os.Stderr
		if m.logOut != "-" {
			f, err := os.Create(m.logOut)
			if err != nil {
				return nil, fmt.Errorf("-log-out: %w", err)
			}
			m.logFile, w = f, f
		}
		reg.SetLogger(obs.NewJSONLogger(w, level))
	}
	return reg, nil
}

// emit flushes every requested observability output: the metrics
// snapshot in the selected format, the timeline as Chrome trace JSON,
// and closes the log file. A nil registry (observability off) emits
// nothing.
func (m *metricsOpts) emit(reg *racereplay.Metrics) error {
	if reg == nil {
		return nil
	}
	if m.logFile != nil {
		defer func() {
			m.logFile.Close()
			m.logFile = nil
		}()
	}
	if m.traceOut != "" {
		if err := writeTraceFile(reg, m.traceOut); err != nil {
			return err
		}
	}
	if m.format == "" {
		return nil
	}
	snap := reg.Snapshot()
	var body string
	switch m.format {
	case "json":
		body = snap.JSON()
	case "prom":
		body = snap.Prometheus()
	default:
		body = snap.Text()
	}
	if m.out != "" {
		return os.WriteFile(m.out, []byte(body), 0o644)
	}
	fmt.Fprint(stdout, "\n--- metrics ---\n"+body)
	return nil
}

// writeTraceFile renders the registry's timeline as Chrome trace JSON.
func writeTraceFile(reg *racereplay.Metrics, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Timeline().WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
