package main

import (
	"flag"
	"fmt"
	"os"

	racereplay "repro"
)

// metricsOpts is the shared -metrics/-metrics-out flag pair. The
// -metrics flag is bool-style with an optional value: a bare -metrics
// selects the text format, -metrics=json and -metrics=prom pick the
// machine-readable renderings.
type metricsOpts struct {
	format string // "", "text", "json", "prom"
	out    string // "" = stdout
}

// addMetricsFlags registers -metrics and -metrics-out on fs.
func addMetricsFlags(fs *flag.FlagSet) *metricsOpts {
	m := &metricsOpts{}
	fs.Var((*metricsFormatFlag)(&m.format), "metrics",
		"emit pipeline metrics: text (default), json, or prom")
	fs.StringVar(&m.out, "metrics-out", "", "write metrics to this file instead of stdout")
	return m
}

// metricsFormatFlag lets -metrics work both bare and with a value.
type metricsFormatFlag string

func (f *metricsFormatFlag) String() string { return string(*f) }

func (f *metricsFormatFlag) IsBoolFlag() bool { return true }

func (f *metricsFormatFlag) Set(v string) error {
	switch v {
	case "true", "text", "":
		*f = "text"
	case "false":
		*f = ""
	case "json", "prom":
		*f = metricsFormatFlag(v)
	default:
		return fmt.Errorf("unknown metrics format %q (want text, json, or prom)", v)
	}
	return nil
}

// registry returns the registry to thread through the pipeline: nil when
// metrics are off, which keeps every instrumented entry point free.
func (m *metricsOpts) registry() *racereplay.Metrics {
	if m.format == "" {
		return nil
	}
	return racereplay.NewMetrics()
}

// emit renders the registry snapshot in the selected format, to stdout or
// -metrics-out. A nil registry (metrics off) emits nothing.
func (m *metricsOpts) emit(reg *racereplay.Metrics) error {
	if reg == nil || m.format == "" {
		return nil
	}
	snap := reg.Snapshot()
	var body string
	switch m.format {
	case "json":
		body = snap.JSON()
	case "prom":
		body = snap.Prometheus()
	default:
		body = snap.Text()
	}
	if m.out != "" {
		return os.WriteFile(m.out, []byte(body), 0o644)
	}
	fmt.Fprint(stdout, "\n--- metrics ---\n"+body)
	return nil
}
