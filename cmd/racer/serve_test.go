package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestServeReportMatchesAnalyzeDir is the service's correctness anchor:
// uploading a directory's .rlog files to the daemon must produce a
// /v1/report byte-identical to a one-shot `racer analyze-dir` over the
// same directory — corrupt files included (both quarantine them) — at
// any worker count and any upload order.
func TestServeReportMatchesAnalyzeDir(t *testing.T) {
	dir := t.TempDir()
	capture(t, func() error { return cmdRecordSuite([]string{"-dir", dir, "-seeds", "1"}) })
	if err := os.WriteFile(filepath.Join(dir, "zz-corrupt.rlog"), []byte("garbage, not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	oldExit := exitCode
	exitCode = 0
	t.Cleanup(func() { exitCode = oldExit })

	want := capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir}) })
	if exitCode != 2 {
		t.Fatalf("analyze-dir with a corrupt file exit = %d, want 2", exitCode)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.rlog"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)

	for _, tc := range []struct {
		jobs    int
		shuffle bool
	}{{1, false}, {4, true}} {
		srv, err := serve.New(serve.Config{DataDir: t.TempDir(), Jobs: tc.jobs})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		ts := httptest.NewServer(srv.Handler())
		order := append([]string(nil), files...)
		if tc.shuffle {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		for _, path := range order {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			url := fmt.Sprintf("%s/v1/upload?tenant=ci&label=%s", ts.URL, filepath.Base(path))
			// A 429 is part of the contract, not a failure: honor the
			// Retry-After hint like a well-behaved client.
			deadline := time.Now().Add(time.Minute)
			for {
				resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusBadRequest {
					break
				}
				if resp.StatusCode != http.StatusTooManyRequests || time.Now().After(deadline) {
					t.Fatalf("jobs=%d: upload %s = %d", tc.jobs, filepath.Base(path), resp.StatusCode)
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
		got := waitMergedReport(t, srv)
		// analyze-dir's stdout is exactly the report text; the service
		// must reproduce it byte for byte.
		if got != want {
			t.Fatalf("jobs=%d: /v1/report differs from analyze-dir:\n--- serve\n%s\n--- analyze-dir\n%s", tc.jobs, got, want)
		}
		ts.Close()
	}
}

func waitMergedReport(t *testing.T, srv *serve.Server) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		text, pending := srv.MergedReport()
		if pending == 0 {
			return text
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("serve jobs not terminal after 2 minutes")
	return ""
}

// TestCmdServeEndToEnd drives the serve command itself: boot, upload a
// clean log and a corrupt one over real HTTP, then SIGTERM — the daemon
// must drain gracefully, print the overhead ladder, and leave a journal
// a successor could resume from.
func TestCmdServeEndToEnd(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "out.rlog")
	capture(t, func() error { return cmdRecord([]string{"-seed", "3", "-o", logPath, writeProg(t)}) })
	payload, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()

	probeErr := make(chan error, 1)
	serveReady = func(addr string) {
		probeErr <- func() error {
			base := "http://" + addr
			resp, err := http.Post(base+"/v1/upload?tenant=ci&label=clean.rlog", "application/octet-stream", bytes.NewReader(payload))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("clean upload status = %d", resp.StatusCode)
			}
			resp, err = http.Post(base+"/v1/upload?tenant=ci&label=bad.rlog", "application/octet-stream", strings.NewReader("garbage"))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				return fmt.Errorf("corrupt upload status = %d", resp.StatusCode)
			}
			// Wait for the clean job's verdict, then ask for shutdown.
			deadline := time.Now().Add(time.Minute)
			for time.Now().Before(deadline) {
				resp, err := http.Get(base + "/v1/report")
				if err != nil {
					return err
				}
				pending := resp.Header.Get("X-Racer-Pending")
				resp.Body.Close()
				if pending == "0" {
					return syscall.Kill(os.Getpid(), syscall.SIGTERM)
				}
				time.Sleep(10 * time.Millisecond)
			}
			return fmt.Errorf("jobs still pending after a minute")
		}()
	}
	defer func() { serveReady = nil }()

	out := capture(t, func() error {
		return cmdServe([]string{"-addr", "127.0.0.1:0", "-data", dataDir})
	})
	if err := <-probeErr; err != nil {
		t.Fatalf("serve probe: %v", err)
	}
	for _, want := range []string{"analysis service on http://", "interrupted: draining and shutting down", "overhead ladder"} {
		if !strings.Contains(out, want) {
			t.Errorf("serve output missing %q:\n%s", want, out)
		}
	}
	// The data dir holds the journal with both verdicts.
	data, err := os.ReadFile(filepath.Join(dataDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), `"op":"accept"`); n != 2 {
		t.Errorf("journal accepts = %d, want 2", n)
	}
	if n := strings.Count(string(data), `"op":"done"`); n != 2 {
		t.Errorf("journal dones = %d, want 2", n)
	}
}

// TestCmdChaosServe wires the chaos HTTP mode through the CLI: a sweep
// against a live daemon passes when the daemon honors the contract.
func TestCmdChaosServe(t *testing.T) {
	srv, err := serve.New(serve.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	out := capture(t, func() error {
		return cmdChaos([]string{"-corruptions", "8", "-serve", ts.URL})
	})
	for _, want := range []string{"chaos http: 14 hostile requests", "service alive"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos -serve output missing %q:\n%s", want, out)
		}
	}
	waitServeDrained(t, srv)
}

func waitServeDrained(t *testing.T, srv *serve.Server) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		if _, pending := srv.MergedReport(); pending == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("serve jobs not terminal after a minute")
}
