package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/report"
	"repro/internal/serve"

	racereplay "repro"
)

// serveReady, when set, receives the bound address once the analysis
// daemon is listening (test hook).
var serveReady func(addr string)

// cmdServe runs the long-running analysis service: an HTTP daemon that
// ingests .rlog uploads, analyzes them on a bounded worker pool, and
// serves verdict reports and metrics — engineered for failure first.
// See docs/SERVICE.md for the API, the persistence layout, and the
// failure-mode contract.
//
// SIGINT/SIGTERM shut the daemon down gracefully: intake stops (new
// uploads answer 503), in-flight jobs drain under -drain, the queued
// backlog stays journaled for the next start, the persistent memo store
// and journal flush, and the final overhead ladder is printed. Exit
// status is 0 — an operator stopping the service loses no state.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8844", "listen address for the analysis API")
	dataDir := fs.String("data", "racer-data", "persistent state directory (journal, payloads, memo store)")
	jobs := fs.Int("jobs", 0, "analysis workers (0 = GOMAXPROCS); verdicts are identical at any count")
	queueCap := fs.Int("queue", 64, "global ingest queue capacity; a full queue answers 429")
	tenantCap := fs.Int("tenant-queue", 0, "per-tenant queue capacity (0 = queue/4)")
	deadline := fs.Duration("deadline", 2*time.Minute, "per-job analysis deadline; exceeding it quarantines the job")
	drain := fs.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight jobs")
	maxUpload := fs.Int64("max-upload", 64<<20, "largest accepted upload in bytes")
	memoMax := fs.Int64("memo-max", 0, "persistent memo store size cap in bytes (0 = default, negative = unbounded)")
	dbPath := fs.String("db", "", "race database for suppression")
	predict := fs.Bool("predict", false, "add the prediction stage to every job: feasible reorderings classified by replay")
	fs.Parse(args)
	db, err := openDB(*dbPath)
	if err != nil {
		return err
	}
	reg := racereplay.NewMetrics()
	reg.EnableTimeline(0)
	srv, err := serve.New(serve.Config{
		DataDir:        *dataDir,
		Jobs:           *jobs,
		QueueCap:       *queueCap,
		TenantCap:      *tenantCap,
		JobDeadline:    *deadline,
		MaxUploadBytes: *maxUpload,
		MemoMaxBytes:   *memoMax,
		DB:             db,
		Predict:        *predict,
		Registry:       reg,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	resumed := srv.Start()
	hsrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := notifyShutdown()
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hsrv.Serve(ln) }()
	fmt.Fprintf(stdout, "analysis service on http://%s (data dir %s, upload at /v1/upload, report at /v1/report, metrics at /metrics)\n",
		ln.Addr(), *dataDir)
	if resumed > 0 {
		fmt.Fprintf(stdout, "resumed %d journaled job(s) from a previous run\n", resumed)
	}
	if serveReady != nil {
		serveReady(ln.Addr().String())
	}
	<-ctx.Done()
	fmt.Fprint(stdout, "interrupted: draining and shutting down\n")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stdout, "shutdown: %v\n", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
	defer hcancel()
	hsrv.Shutdown(hctx)
	<-done
	fmt.Fprint(stdout, report.OverheadLadder(reg.Snapshot()))
	return nil
}
