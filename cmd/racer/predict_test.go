package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	racereplay "repro"
)

// TestCmdPredictFindsUnobservedRace pins the prediction payoff case:
// exec17's lock-separated pair never overlaps in the recorded schedule,
// so the strict detector stays silent, but the window solver proves a
// feasible reordering and replay classifies it potentially harmful.
func TestCmdPredictFindsUnobservedRace(t *testing.T) {
	resetExit(t)
	out := capture(t, func() error { return cmdPredict([]string{"-scenario", "exec17"}) })
	for _, want := range []string{
		"suite:huaf_fst <-> suite:huaf_uld",
		"[potentially-harmful]",
		"witness (reordered): regions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("predict exec17 output missing %q:\n%s", want, out)
		}
	}
	if exitCode != 1 {
		t.Errorf("predicted-harmful exit = %d, want 1", exitCode)
	}
}

// TestCmdPredictOnLogAndProgram covers the other two input modes: a
// recorded .rlog and a bare program file.
func TestCmdPredictOnLogAndProgram(t *testing.T) {
	resetExit(t)
	prog := writeProg(t)
	logPath := filepath.Join(t.TempDir(), "p.rlog")
	capture(t, func() error { return cmdRecord([]string{"-seed", "6", "-o", logPath, prog}) })
	out := capture(t, func() error { return cmdPredict([]string{logPath}) })
	if !strings.Contains(out, "feasible candidate pairs") {
		t.Errorf("predict on log missing candidate stats:\n%s", out)
	}
	out = capture(t, func() error { return cmdPredict([]string{"-seed", "6", prog}) })
	if !strings.Contains(out, "observed:") || !strings.Contains(out, "feasible candidate pairs") {
		t.Errorf("predict on program:\n%s", out)
	}
}

// TestCmdSuitePredictDeterministicAcrossJobs: the acceptance invariant —
// suite -predict output is byte-identical at -jobs 1 and -jobs 8, and
// the predicted section carries the exec17 reordered race.
func TestCmdSuitePredictDeterministicAcrossJobs(t *testing.T) {
	resetExit(t)
	serial := capture(t, func() error {
		return cmdSuite([]string{"-predict", "-seeds", "2", "-jobs", "1"})
	})
	parallel := capture(t, func() error {
		return cmdSuite([]string{"-predict", "-seeds", "2", "-jobs", "8"})
	})
	if serial != parallel {
		t.Fatalf("suite -predict diverges between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", serial, parallel)
	}
	for _, want := range []string{
		"Predicted races (lockset + weak-HB reordering, classified by replay)",
		"suite:huaf_fst <-> suite:huaf_uld",
	} {
		if !strings.Contains(serial, want) {
			t.Errorf("suite -predict output missing %q", want)
		}
	}
}

// TestCmdSuitePredictAuditMarksPredicted: the audit trail distinguishes
// second-pass (predicted) races from observed ones, identically at any
// worker count.
func TestCmdSuitePredictAuditMarksPredicted(t *testing.T) {
	resetExit(t)
	dir := t.TempDir()
	p1, p8 := filepath.Join(dir, "a1.json"), filepath.Join(dir, "a8.json")
	capture(t, func() error {
		return cmdSuite([]string{"-predict", "-seeds", "1", "-jobs", "1", "-audit-out", p1})
	})
	capture(t, func() error {
		return cmdSuite([]string{"-predict", "-seeds", "1", "-jobs", "8", "-audit-out", p8})
	})
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := os.ReadFile(p8)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b8) {
		t.Fatal("audit JSON diverges between -jobs 1 and -jobs 8 under -predict")
	}
	if !strings.Contains(string(b1), `"predicted": true`) {
		t.Error("audit trail has no predicted-race provenance")
	}
}

// TestCmdLintExitCodes pins the lint half of the exit-code contract:
// 0 clean, 1 candidates found, 2 invalid input — including programs the
// machine itself would refuse to run, which previously linted "clean".
func TestCmdLintExitCodes(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.rasm")
	if err := os.WriteFile(clean, []byte(".entry main\nmain:\n  halt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty.rasm")
	if err := os.WriteFile(empty, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	racy := writeProg(t)

	resetExit(t)
	capture(t, func() error { return cmdLint([]string{clean}) })
	if exitCode != 0 {
		t.Fatalf("clean lint exit = %d, want 0", exitCode)
	}

	exitCode = 0
	capture(t, func() error { return cmdLint([]string{racy}) })
	if exitCode != 1 {
		t.Fatalf("candidate lint exit = %d, want 1", exitCode)
	}

	// An empty program lints vacuously clean but can never execute:
	// that is invalid input, not a clean bill of health.
	exitCode = 0
	out := capture(t, func() error { return cmdLint([]string{empty}) })
	if exitCode != 2 {
		t.Fatalf("empty-program lint exit = %d, want 2", exitCode)
	}
	if !strings.Contains(out, "invalid input") {
		t.Errorf("empty-program lint output:\n%s", out)
	}

	// A bad file in a batch escalates to 2 but the rest still lints.
	exitCode = 0
	out = capture(t, func() error { return cmdLint([]string{racy, empty}) })
	if exitCode != 2 {
		t.Fatalf("mixed batch lint exit = %d, want 2", exitCode)
	}
	if !strings.Contains(out, "wstore") {
		t.Errorf("mixed batch lost the valid file's findings:\n%s", out)
	}
}

// TestRecordSuiteOnlineManifestRoundTrip: record-suite -online writes a
// manifest of online verdicts; a separate analyze-dir process re-attaches
// them (fast-pathing race-free logs) without changing a byte of output.
func TestRecordSuiteOnlineManifestRoundTrip(t *testing.T) {
	resetExit(t)
	dir := filepath.Join(t.TempDir(), "logs")
	out := capture(t, func() error { return cmdRecordSuite([]string{"-dir", dir, "-online"}) })
	if !strings.Contains(out, "online verdicts:") {
		t.Fatalf("record-suite -online output:\n%s", out)
	}
	manPath := filepath.Join(dir, "manifest.json")
	man, err := racereplay.ReadManifest(manPath)
	if err != nil {
		t.Fatalf("manifest unreadable: %v", err)
	}
	if len(man.Entries) != 18 {
		t.Fatalf("manifest has %d entries, want 18", len(man.Entries))
	}
	// The suite corpus is racy by design, so graft in one race-free
	// recording: a single-threaded program the online detector clears.
	cleanSrc := filepath.Join(t.TempDir(), "clean.rasm")
	if err := os.WriteFile(cleanSrc, []byte(".entry main\n.word g 0\nmain:\n  ldi r2, g\n  ldi r3, 7\n  st [r2+0], r3\n  ld r1, [r2+0]\n  sys print\n  halt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := loadProgram(cleanSrc)
	if err != nil {
		t.Fatal(err)
	}
	cleanLog, _, err := racereplay.RecordOnlineInstrumented(prog, racereplay.Config{Seed: 1},
		racereplay.OnlineConfig{Detect: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cleanLog.Online == nil || !cleanLog.Online.RaceFree {
		t.Fatal("single-threaded recording not marked race-free by the online detector")
	}
	f, err := os.Create(filepath.Join(dir, "clean-0.rlog"))
	if err != nil {
		t.Fatal(err)
	}
	if err := racereplay.WriteLog(f, cleanLog); err != nil {
		t.Fatal(err)
	}
	f.Close()
	man.Add("clean-0.rlog", racereplay.LogDigest(cleanLog), cleanLog.Online)
	if err := man.WriteFile(manPath); err != nil {
		t.Fatal(err)
	}

	metricsPath := filepath.Join(t.TempDir(), "metrics.txt")
	withMan := capture(t, func() error {
		return cmdAnalyzeDir([]string{"-dir", dir, "-metrics", "-metrics-out", metricsPath})
	})
	mtext, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, counter := range []string{"decode.manifest_verdicts", "detect.online.fastpath"} {
		if !strings.Contains(string(mtext), counter) {
			t.Errorf("manifest verdict did not drive the fast path: counter %s missing:\n%s", counter, mtext)
		}
	}
	if err := os.Remove(manPath); err != nil {
		t.Fatal(err)
	}
	withoutMan := capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir}) })
	if withMan != withoutMan {
		t.Fatalf("manifest fast path changed the report:\n--- with\n%s\n--- without\n%s", withMan, withoutMan)
	}
	if !strings.Contains(withMan, "analyzed 19 recorded executions") {
		t.Errorf("analyze-dir output:\n%s", withMan)
	}

	// A corrupt manifest is advisory: warn and take the full pass.
	if err := os.WriteFile(manPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir}) })
	if corrupt != withoutMan {
		t.Fatal("corrupt manifest changed the report instead of being ignored")
	}
}
