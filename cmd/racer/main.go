// Command racer is the CLI front end for the replay-based race
// classification pipeline:
//
//	racer run <prog.rasm>            run a program natively
//	racer record <prog.rasm> -o L    record an execution into a replay log
//	racer replay <L>                 replay a log and show per-thread output
//	racer detect <L>                 find data races (happens-before)
//	racer classify <L>               classify races by dual-order replay
//	racer scenario -name exec01      analyze a built-in workload scenario
//	racer suite                      analyze all 18 scenarios and summarize
//	racer predict <prog.rasm>        predict feasible races beyond the recording
//	racer mark-benign -db F -race R  record a developer triage verdict
//	racer disasm <prog.rasm>         disassemble a program
//	racer scenarios                  list the built-in workload scenarios
//
// Every subcommand takes -seed to pick the scheduler interleaving; equal
// seeds reproduce identical executions.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/classify"
	"repro/internal/debug"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workloads"

	racereplay "repro"
)

// stdout is the command output sink, replaceable in tests.
var stdout io.Writer = os.Stdout

// exitCode is the status for a command that completed without a hard
// error. The contract (see usage): 0 clean, 1 the analysis reported
// potentially harmful races, 2 corrupt or invalid input (a failed
// validation, or quarantined files in a batch). Hard errors — bad
// flags, unreadable inputs, internal failures — always exit 2.
var exitCode int

// raiseExit widens the exit status; codes only escalate, so invalid
// input (2) wins over findings (1) wins over clean (0).
func raiseExit(code int) {
	if code > exitCode {
		exitCode = code
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "record":
		err = cmdRecord(args)
	case "replay":
		err = cmdReplay(args)
	case "detect":
		err = cmdDetect(args)
	case "classify":
		err = cmdClassify(args)
	case "scenario":
		err = cmdScenario(args)
	case "suite":
		err = cmdSuite(args)
	case "predict":
		err = cmdPredict(args)
	case "lint":
		err = cmdLint(args)
	case "record-suite":
		err = cmdRecordSuite(args)
	case "analyze-dir":
		err = cmdAnalyzeDir(args)
	case "validate":
		err = cmdValidate(args)
	case "audit":
		err = cmdAudit(args)
	case "chaos":
		err = cmdChaos(args)
	case "profile":
		err = cmdProfile(args)
	case "serve":
		err = cmdServe(args)
	case "mark-benign":
		err = cmdMarkBenign(args)
	case "debug":
		err = cmdDebug(args)
	case "disasm":
		err = cmdDisasm(args)
	case "scenarios":
		err = cmdScenarios(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "racer: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "racer:", err)
		os.Exit(2)
	}
	os.Exit(exitCode)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: racer <command> [flags]

commands (flags come before the file argument):
  run [-seed N] [-policy P] <prog.rasm>     execute a program on the RVM
  record [-seed N] [-o LOG] [-format v1|v2] [-keyframes N] [-online [-stop-on-race]] <prog.rasm>
                                            record an execution into a replay log;
                                            -format picks the container (v2, the
                                            default, is the segmented index-first
                                            layout with parallel decode; readers
                                            sniff either), -online adds an
                                            in-recording race verdict,
                                            -stop-on-race ends the run at the
                                            first confirmed race
  replay <LOG>                              deterministically replay a log
  detect [-detector hb|vc|lockset] <LOG>    find data races in a replayed log
  classify [-db FILE] [-race "A <-> B"] <LOG>
                                            classify races by dual-order replay
  scenario -name NAME [-db FILE] [-online]
                                        analyze one built-in workload scenario
  suite [-db FILE] [-seeds N] [-jobs N] [-static] [-predict] [-online [-stop-on-race]]
                                        analyze all 18 built-in scenarios;
                                        -static adds the ahead-of-execution
                                        cross-validation section; -predict
                                        adds the prediction stage (feasible
                                        reorderings classified by replay);
                                        -online detects races during recording
                                        and skips the offline pass for
                                        race-free runs (the report is
                                        byte-identical)
  predict [-seed N] [-window W] [-db FILE] <prog.rasm|LOG> | predict -scenario NAME
                                        predict feasible races beyond the
                                        recorded interleaving (lockset +
                                        weak-HB + windowed ordering solver)
                                        and classify them by dual-order
                                        replay; predicted harmful races
                                        exit 1
  lint <prog.rasm...> | lint -scenario NAME
                                        static race analysis (no execution):
                                        CFG + constant propagation + must-hold
                                        locksets; any candidate exits 1, any
                                        invalid program exits 2
  record-suite -dir DIR [-seeds N] [-jobs N] [-format v1|v2] [-online]
                                        record every scenario's log to DIR;
                                        -format picks the container format,
                                        -online writes manifest.json with
                                        each log's online race verdict so
                                        analyze-dir can fast-path race-free
                                        logs in a later process
  analyze-dir -dir DIR [-db FILE] [-jobs N] [-static] [-predict]
                                        offline analysis over recorded logs;
                                        honors DIR/manifest.json verdicts
                                        (matched by name + content hash)
  validate <LOG...>                     decode + check logs without analyzing
  audit <FILE.json>                     render a verdict-provenance trail
                                        written by suite/analyze-dir -audit-out
  chaos [-corruptions N] [-seed S] [-log FILE] [-serve URL]
                                        fuzz the decoder with N corrupted log
                                        variants; fails on any panic or
                                        unbounded allocation. With -serve,
                                        fire the sweep (plus truncated and
                                        slow-loris uploads) at a running
                                        'racer serve' endpoint instead and
                                        fail on any 5xx, handler panic, or
                                        dead service

-jobs bounds the analysis worker pool (0 = GOMAXPROCS); results are
byte-identical at every worker count.

exit codes: 0 clean; 1 the analysis reported potentially harmful races;
2 corrupt or invalid input (failed validation, quarantined log files) or
any hard error. Corrupt logs in a batch are quarantined — listed in the
report's quarantine section — and the analysis completes over the rest.
  profile [-addr A] [-iterations N]     run the suite under a live metrics +
                                        pprof HTTP server
  serve [-addr A] [-data DIR] [-jobs N] [-queue N] [-deadline D]
                                        long-running analysis daemon: upload
                                        .rlog files over HTTP, get verdict
                                        reports back; crash-safe journal +
                                        persistent replay memo in -data
                                        (see docs/SERVICE.md)
  mark-benign -db FILE -race "A <-> B"  record a developer benign verdict

most commands also take -metrics[=text|json|prom] and -metrics-out FILE to
emit pipeline observability data (stage spans, counters, histograms).
  debug <LOG>                           time-travel debugger over a replay log
  disasm <prog.rasm>                    disassemble an assembled program
  scenarios                             list built-in workload scenarios
`)
}

// parsePolicy maps a CLI policy name to a machine scheduler policy.
func parsePolicy(name string) (machine.SchedPolicy, error) {
	switch name {
	case "random", "":
		return machine.PolicyRandom, nil
	case "rr", "round-robin":
		return machine.PolicyRoundRobin, nil
	case "pct":
		return machine.PolicyPCT, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want random, rr, or pct)", name)
}

func loadProgram(path string) (*racereplay.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(path[strings.LastIndexByte(path, '/')+1:], ".rasm")
	return racereplay.Assemble(name, string(src))
}

func loadLog(path string) (*racereplay.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return racereplay.ReadLog(f)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "scheduler seed")
	policy := fs.String("policy", "random", "scheduler policy: random, rr, pct")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run wants one program file")
	}
	prog, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	log, err := racereplay.RecordInstrumented(prog, racereplay.Config{Seed: *seed, Policy: pol}, reg)
	if err != nil {
		return err
	}
	printThreads(log)
	return metrics.emit(reg)
}

func printThreads(log *racereplay.Log) {
	for _, t := range log.Threads {
		fmt.Fprintf(stdout, "thread %d: %v after %d instructions", t.TID, t.EndReason, t.Retired)
		if t.Fault != nil {
			fmt.Fprintf(stdout, " (fault kind %d at pc %d addr 0x%x)", t.Fault.Kind, t.Fault.PC, t.Fault.Addr)
		}
		fmt.Fprintln(stdout)
	}
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "scheduler seed")
	out := fs.String("o", "out.rlog", "log output path")
	policy := fs.String("policy", "random", "scheduler policy: random, rr, pct")
	keyframes := fs.Uint64("keyframes", 0, "emit a key frame every N instructions (0 = off)")
	online := fs.Bool("online", false, "detect races during recording and print the verdict")
	stopOnRace := fs.Bool("stop-on-race", false, "with -online, stop recording at the first confirmed race")
	format := fs.String("format", "v2", "log container format: v1 (whole-log flate) or v2 (segmented, index-first)")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	if *stopOnRace && !*online {
		return fmt.Errorf("-stop-on-race requires -online")
	}
	lf, err := racereplay.ParseLogFormat(*format)
	if err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("record wants one program file")
	}
	prog, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	cfg := racereplay.Config{Seed: *seed, Policy: pol}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	var log *racereplay.Log
	var onlineRep *racereplay.OnlineReport
	switch {
	case *online:
		log, onlineRep, err = racereplay.RecordOnlineInstrumented(prog, cfg, racereplay.OnlineConfig{
			Detect: true, StopOnFirstRace: *stopOnRace, KeyFrameInterval: *keyframes,
		}, reg)
	case *keyframes > 0:
		// Key-frame recording has no per-event metrics observer; time it
		// under the record span so the ladder still sees the stage.
		sp := reg.StartSpan("record")
		log, err = racereplay.RecordWithKeyFrames(prog, cfg, *keyframes)
		sp.End()
	default:
		log, err = racereplay.RecordInstrumented(prog, cfg, reg)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := racereplay.WriteLogFormat(f, log, lf); err != nil {
		return err
	}
	s := racereplay.LogStatsFormat(log, lf)
	fmt.Fprintf(stdout, "recorded %d instructions across %d threads\n", s.Instructions, len(log.Threads))
	fmt.Fprintf(stdout, "log: %d bytes raw (%.2f bits/instr), %d bytes compressed (%.2f bits/instr) -> %s\n",
		s.RawBytes, s.RawBitsPerInstr(), s.CompressedBytes, s.CompressedBitsPerInstr(), *out)
	if onlineRep != nil {
		switch {
		case onlineRep.RaceFree:
			fmt.Fprintln(stdout, "online: race-free (offline analysis of this process's log would be skipped)")
		case onlineRep.Stopped:
			fmt.Fprintf(stdout, "online: raced (%d site pairs), recording stopped at first race\n", len(onlineRep.Races))
		default:
			fmt.Fprintf(stdout, "online: raced (%d site pairs)\n", len(onlineRep.Races))
		}
	}
	return metrics.emit(reg)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay wants one log file")
	}
	log, err := loadLog(fs.Arg(0))
	if err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	exec, err := racereplay.ReplayInstrumented(log, reg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replayed %d instructions, %d threads, %d sequencing regions\n",
		log.Instructions(), len(exec.Threads), len(exec.Regions))
	for _, t := range exec.Threads {
		fmt.Fprintf(stdout, "thread %d: %v, %d regions", t.TID, t.EndReason, len(t.Regions))
		if len(t.Output) > 0 {
			fmt.Fprintf(stdout, ", output %v", t.Output)
		}
		fmt.Fprintln(stdout)
	}
	return metrics.emit(reg)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	detector := fs.String("detector", "hb", "hb (paper), vc (vector clock), or lockset (Eraser baseline)")
	triage := fs.Bool("triage", false, "with -detector lockset: replay-triage the warnings")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("detect wants one log file")
	}
	log, err := loadLog(fs.Arg(0))
	if err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	exec, err := racereplay.ReplayInstrumented(log, reg)
	if err != nil {
		return err
	}
	switch *detector {
	case "hb":
		printRaces(racereplay.DetectRacesInstrumented(exec, reg))
	case "vc":
		rep, err := racereplay.DetectRacesVC(exec)
		if err != nil {
			return err
		}
		printRaces(rep)
	case "lockset":
		rep := racereplay.DetectRacesLockset(exec)
		fmt.Fprintf(stdout, "%d lockset warnings (%d shared addresses checked)\n", len(rep.Warnings), rep.Checked)
		for _, w := range rep.Warnings {
			fmt.Fprintf(stdout, "  addr 0x%x: %s (earlier access %s)\n", w.Addr, w.Site, w.OtherSite)
		}
		if *triage {
			fmt.Fprintln(stdout, "replay triage of the lockset report (paper section 2.2.2):")
			for _, tr := range racereplay.TriageLockset(exec, rep, racereplay.Options{}) {
				fmt.Fprintf(stdout, "  addr 0x%x: %v (ordered pairs %d; racy instances %d: %d nsc, %d sc, %d rf)\n",
					tr.Warning.Addr, tr.Verdict, tr.OrderedPairs, tr.RacyInstances, tr.NSC, tr.SC, tr.RF)
			}
		}
	default:
		return fmt.Errorf("unknown detector %q", *detector)
	}
	return metrics.emit(reg)
}

func printRaces(rep *hb.Report) {
	fmt.Fprintf(stdout, "%d unique data races (%d dynamic instances)\n", len(rep.Races), rep.TotalInstances)
	for _, r := range rep.Races {
		fmt.Fprintf(stdout, "  %s  (%d instances)\n", r.Sites, len(r.Instances))
	}
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	dbPath := fs.String("db", "", "race database for suppression")
	raceFilter := fs.String("race", "", "only report the race with this site pair")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("classify wants one log file")
	}
	log, err := loadLog(fs.Arg(0))
	if err != nil {
		return err
	}
	db, err := openDB(*dbPath)
	if err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	res, err := racereplay.AnalyzeLogInstrumented(log,
		racereplay.Options{DB: db, Scenario: log.Prog.Name, Seed: log.Seed}, reg)
	if err != nil {
		return err
	}
	printClassification(res.Classification, *raceFilter)
	return metrics.emit(reg)
}

func cmdScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	name := fs.String("name", "exec01", "built-in scenario name (or 'browse', 'service')")
	seed := fs.Int64("seed", 0, "override the scenario's scheduler seed")
	dbPath := fs.String("db", "", "race database for suppression")
	raceFilter := fs.String("race", "", "only report the race with this site pair")
	dump := fs.Bool("dump", false, "print the scenario's generated assembly and exit")
	online := fs.Bool("online", false, "detect races during recording; a race-free run skips the offline pass (report is byte-identical either way)")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	s, err := workloads.FindScenario(*name)
	if err != nil {
		return err
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *dump {
		fmt.Fprint(stdout, s.Source())
		return nil
	}
	prog, err := s.Program()
	if err != nil {
		return err
	}
	db, err := openDB(*dbPath)
	if err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	opts := racereplay.Options{Scenario: s.Name, Seed: s.Seed, DB: db}
	var res *racereplay.Result
	if *online {
		res, err = racereplay.AnalyzeOnlineInstrumented(prog, s.Config(),
			racereplay.OnlineConfig{Detect: true}, opts, reg)
	} else {
		res, err = racereplay.AnalyzeInstrumented(prog, s.Config(), opts, reg)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "scenario %s (seed %d): %d instructions, %d threads\n",
		s.Name, s.Seed, res.Log.Instructions(), len(res.Log.Threads))
	printClassification(res.Classification, *raceFilter)
	return metrics.emit(reg)
}

func cmdSuite(args []string) error {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	dbPath := fs.String("db", "", "race database for suppression")
	verbose := fs.Bool("v", false, "print a report for every race")
	seeds := fs.Int("seeds", 1, "scheduler seeds recorded per scenario")
	jobs := fs.Int("jobs", 0, "analysis workers (0 = GOMAXPROCS); output is identical at any count")
	staticStage := fs.Bool("static", false, "cross-validate static lint candidates against the dynamic results")
	predictStage := fs.Bool("predict", false, "add the prediction stage: feasible reorderings of each recorded schedule, classified by replay")
	benchOut := fs.String("bench-out", "", "also write a machine-readable timing sample of this run as bench JSON (stdout is unchanged)")
	auditOut := fs.String("audit-out", "", "write the verdict-provenance trail (racereplay-audit/v1 JSON) to this file")
	online := fs.Bool("online", false, "detect races during recording; race-free runs skip the offline pass (report is byte-identical either way)")
	stopOnRace := fs.Bool("stop-on-race", false, "with -online, end each recording at its first confirmed race")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	if *stopOnRace && !*online {
		return fmt.Errorf("-stop-on-race requires -online")
	}
	db, err := openDB(*dbPath)
	if err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	if *benchOut != "" && reg == nil {
		// The bench sample reads the memo counters; a private registry
		// keeps -bench-out independent of the -metrics flags without
		// changing what reaches stdout.
		reg = racereplay.NewMetrics()
	}
	var memBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	run, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{
		DB: db, Seeds: *seeds, Jobs: *jobs, Registry: reg, Static: *staticStage,
		Audit: *auditOut != "", Online: *online, StopOnRace: *stopOnRace,
		Predict: *predictStage,
	})
	if err != nil {
		return err
	}
	if *auditOut != "" {
		if err := run.Audit.WriteFile(*auditOut); err != nil {
			return err
		}
	}
	if *benchOut != "" {
		if err := writeSuiteBench(*benchOut, *seeds, *jobs, time.Since(start), memBefore, reg); err != nil {
			return err
		}
	}
	sp := reg.StartSpan("report")
	fmt.Fprint(stdout, report.Summary(run.Merged, report.SuiteTruth))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.BuildTable1(run.Merged, report.SuiteTruth).Render())
	if *predictStage {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.BuildPredictedSection(run).Render())
	}
	if *staticStage {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.BuildStaticSection(run).Render())
	}
	if *verbose {
		fmt.Fprintln(stdout)
		for _, r := range run.Merged.Races {
			fmt.Fprint(stdout, report.RaceReport(r, report.SuiteTruth))
		}
	}
	printQuarantine(run.Quarantined)
	if _, harmful := run.Merged.CountByVerdict(); harmful > 0 {
		raiseExit(1)
	}
	if run.Predict != nil && run.Predict.Merged != nil {
		if _, harmful := run.Predict.Merged.CountByVerdict(); harmful > 0 {
			raiseExit(1)
		}
	}
	sp.End()
	return metrics.emit(reg)
}

// writeSuiteBench records one suite run as a single-sample bench JSON
// file: wall time, allocation deltas, and the replay cache's hit rate.
// It writes only to path — suite stdout is byte-identical with and
// without -bench-out, so the serial/parallel divergence diff can carry
// the flag.
func writeSuiteBench(path string, seeds, jobs int, elapsed time.Duration, before runtime.MemStats, reg *racereplay.Metrics) error {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	snap := reg.Snapshot()
	hits, misses := snap.Counters["classify.memo.hits"], snap.Counters["classify.memo.misses"]
	hitrate := 0.0
	if hits+misses > 0 {
		hitrate = float64(hits) / float64(hits+misses)
	}
	file := bench.NewFile()
	file.Benchmarks = append(file.Benchmarks, bench.Result{
		Name:        fmt.Sprintf("suite/seeds=%d/jobs=%d", seeds, jobs),
		N:           1,
		NsPerOp:     float64(elapsed.Nanoseconds()),
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
		AllocsPerOp: after.Mallocs - before.Mallocs,
		Metrics:     map[string]float64{"hitrate": hitrate},
	})
	return file.WriteFile(path)
}

// cmdPredict runs the prediction stage over one execution: record (or
// load) it, propose feasible reorderings of the schedule that would
// race (lockset + weak-HB prefilter, access blocks, windowed ordering
// solver), and classify every predicted-new pair by the same dual-order
// replay as observed races. The argument is a program file or a
// recorded .rlog; -scenario substitutes a built-in workload. Exit
// status: 1 when any race — observed or predicted — classifies
// potentially harmful.
func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	name := fs.String("scenario", "", "predict over a built-in workload scenario instead of a file")
	seed := fs.Int64("seed", 1, "scheduler seed (programs; scenarios keep their own unless set)")
	window := fs.Int("window", 0, "solver window in regions (0 = default)")
	dbPath := fs.String("db", "", "race database for suppression")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	db, err := openDB(*dbPath)
	if err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	opts := racereplay.Options{DB: db, Predict: true, PredictWindow: *window}
	var res *racereplay.Result
	switch {
	case *name != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("predict wants a file or -scenario NAME, not both")
		}
		s, err := workloads.FindScenario(*name)
		if err != nil {
			return err
		}
		prog, err := s.Program()
		if err != nil {
			return err
		}
		opts.Scenario, opts.Seed = s.Name, s.Seed
		res, err = racereplay.AnalyzeInstrumented(prog, s.Config(), opts, reg)
		if err != nil {
			return err
		}
	case fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".rlog"):
		log, err := loadLog(fs.Arg(0))
		if err != nil {
			return err
		}
		opts.Scenario, opts.Seed = filepath.Base(fs.Arg(0)), log.Seed
		res, err = racereplay.AnalyzeLogInstrumented(log, opts, reg)
		if err != nil {
			return err
		}
	case fs.NArg() == 1:
		prog, err := loadProgram(fs.Arg(0))
		if err != nil {
			return err
		}
		opts.Scenario, opts.Seed = prog.Name, *seed
		res, err = racereplay.AnalyzeInstrumented(prog, racereplay.Config{Seed: *seed}, opts, reg)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("predict wants one program or log file, or -scenario NAME")
	}
	benign, harmful := res.Classification.CountByVerdict()
	fmt.Fprintf(stdout, "observed: %d races (%d potentially benign, %d potentially harmful)\n",
		len(res.Classification.Races), benign, harmful)
	fmt.Fprint(stdout, racereplay.PredictedReport(res.Predicted))
	if harmful > 0 {
		raiseExit(1)
	}
	if res.Predicted != nil && res.Predicted.Classification != nil {
		if _, ph := res.Predicted.Classification.CountByVerdict(); ph > 0 {
			raiseExit(1)
		}
	}
	return metrics.emit(reg)
}

// cmdLint is the static half of the pipeline: analyze programs ahead of
// any execution and report race candidates. Exit status follows the
// documented contract — 1 when candidates are found, 2 on invalid input,
// 0 when clean. Invalid input covers both files that fail to load or
// assemble and programs the machine itself would refuse to run (an
// empty program lints vacuously clean but can never execute, so
// reporting it as clean would be a lie). A bad file in a batch is
// reported and the remaining files still lint — the exit code only
// escalates, so findings elsewhere in the batch stay visible.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	scenario := fs.String("scenario", "", "lint a built-in workload scenario instead of a file")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	type item struct {
		label string
		prog  *racereplay.Program
		err   error
	}
	var items []item
	if *scenario != "" {
		it := item{label: "scenario " + *scenario}
		s, err := workloads.FindScenario(*scenario)
		if err == nil {
			it.prog, it.err = s.Program()
		} else {
			it.err = err
		}
		items = append(items, it)
	}
	for _, path := range fs.Args() {
		prog, err := loadProgram(path)
		items = append(items, item{label: path, prog: prog, err: err})
	}
	if len(items) == 0 {
		return fmt.Errorf("lint wants program files or -scenario NAME")
	}
	candidates := 0
	for i, it := range items {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if it.err == nil {
			// Mirror machine.New's admission checks: a program the
			// machine would reject is invalid input, not a clean lint.
			if verr := it.prog.Validate(); verr != nil {
				it.err = verr
			} else if len(it.prog.Code) == 0 {
				it.err = fmt.Errorf("empty program %s", it.prog.Name)
			}
		}
		if it.err != nil {
			fmt.Fprintf(stdout, "%s: invalid input: %v\n", it.label, it.err)
			raiseExit(2)
			continue
		}
		rep := racereplay.AnalyzeStaticInstrumented(it.prog, reg)
		rep.Format(stdout)
		candidates += len(rep.Candidates)
	}
	if candidates > 0 {
		raiseExit(1)
	}
	return metrics.emit(reg)
}

// printQuarantine renders the quarantine section (if any) and raises
// the exit status to 2: the analysis completed, but over degraded input.
func printQuarantine(items []racereplay.Quarantined) {
	if len(items) == 0 {
		return
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.QuarantineSection(items))
	raiseExit(2)
}

func printClassification(c *racereplay.Classification, filter string) {
	benign, harmful := c.CountByVerdict()
	if harmful > 0 {
		raiseExit(1)
	}
	fmt.Fprintf(stdout, "%d races: %d potentially benign, %d potentially harmful (%d instances analyzed)\n",
		len(c.Races), benign, harmful, c.TotalInstances())
	for _, r := range c.Races {
		if filter != "" && r.Sites.String() != filter {
			continue
		}
		fmt.Fprint(stdout, report.RaceReport(r, report.SuiteTruth))
	}
}

func openDB(path string) (*classify.DB, error) {
	if path == "" {
		return nil, nil
	}
	return racereplay.LoadDB(path)
}

// cmdRecordSuite implements the online half of the paper's usage model:
// gather replay logs for every test scenario once, cheaply.
func cmdRecordSuite(args []string) error {
	fs := flag.NewFlagSet("record-suite", flag.ExitOnError)
	dir := fs.String("dir", "logs", "output directory")
	seeds := fs.Int("seeds", 1, "scheduler seeds recorded per scenario")
	jobs := fs.Int("jobs", 0, "recording workers (0 = GOMAXPROCS); output is identical at any count")
	online := fs.Bool("online", false, "attach the online race detector and write manifest.json with each log's verdict")
	format := fs.String("format", "v2", "log container format: v1 (whole-log flate) or v2 (segmented, index-first)")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	lf, err := racereplay.ParseLogFormat(*format)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}

	// Every (scenario, seed) recording is an independent deterministic
	// machine run, so unlike the live suite the online half can fan out
	// too. Logs land in index-addressed slots and are written, summed,
	// and (for metrics) adopted in index order, keeping the output
	// identical at any worker count.
	type recJob struct {
		s    racereplay.Scenario
		k    int
		prog *racereplay.Program
	}
	var work []recJob
	for _, base := range workloads.Scenarios() {
		for k := 0; k < *seeds; k++ {
			s := base
			s.Seed = base.Seed + int64(7777*k)
			prog, err := s.Program()
			if err != nil {
				return err
			}
			work = append(work, recJob{s: s, k: k, prog: prog})
		}
	}
	logs := make([]*racereplay.Log, len(work))
	errs := make([]error, len(work))
	forks := make([]*racereplay.Metrics, len(work))
	pool := sched.NewPool(*jobs, reg)
	for i := range work {
		i := i
		forks[i] = reg.Fork()
		pool.Submit(func() {
			if *online {
				logs[i], _, errs[i] = racereplay.RecordOnlineInstrumented(
					work[i].prog, work[i].s.Config(), racereplay.OnlineConfig{Detect: true}, forks[i])
			} else {
				logs[i], errs[i] = racereplay.RecordInstrumented(work[i].prog, work[i].s.Config(), forks[i])
			}
		})
	}
	pool.Wait()
	for i, f := range forks {
		reg.Adopt(f)
		if errs[i] != nil {
			return fmt.Errorf("%s seed %d: %w", work[i].s.Name, work[i].s.Seed, errs[i])
		}
	}

	var totalInstr uint64
	var totalBytes int
	man := racereplay.NewManifest()
	raceFree := 0
	for i, log := range logs {
		name := fmt.Sprintf("%s-%d.rlog", work[i].s.Name, work[i].k)
		path := filepath.Join(*dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := racereplay.WriteLogFormat(f, log, lf); err != nil {
			f.Close()
			return err
		}
		f.Close()
		st := racereplay.LogStatsFormat(log, lf)
		totalInstr += st.Instructions
		totalBytes += st.CompressedBytes
		if *online {
			man.Add(name, racereplay.LogDigest(log), log.Online)
			if log.Online != nil && log.Online.RaceFree {
				raceFree++
			}
		}
	}
	fmt.Fprintf(stdout, "recorded %d executions: %d instructions, %d bytes of compressed logs -> %s\n",
		len(logs), totalInstr, totalBytes, *dir)
	if *online {
		// The manifest carries each log's online verdict across process
		// boundaries: a later analyze-dir run re-attaches it (by filename
		// and content hash) and fast-paths the race-free logs.
		if err := man.WriteFile(filepath.Join(*dir, "manifest.json")); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "online verdicts: %d of %d race-free -> %s\n",
			raceFree, len(logs), filepath.Join(*dir, "manifest.json"))
	}
	return metrics.emit(reg)
}

// cmdAnalyzeDir implements the offline half: replay every stored log,
// find and classify the races, and merge verdicts across executions.
func cmdAnalyzeDir(args []string) error {
	fs := flag.NewFlagSet("analyze-dir", flag.ExitOnError)
	dir := fs.String("dir", "logs", "directory of .rlog files")
	dbPath := fs.String("db", "", "race database for suppression")
	jobs := fs.Int("jobs", 0, "analysis workers (0 = GOMAXPROCS); output is identical at any count")
	staticStage := fs.Bool("static", false, "cross-validate static lint candidates against the dynamic results")
	predictStage := fs.Bool("predict", false, "add the prediction stage: feasible reorderings of each recorded schedule, classified by replay")
	auditOut := fs.String("audit-out", "", "write the verdict-provenance trail (racereplay-audit/v1 JSON) to this file")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	db, err := openDB(*dbPath)
	if err != nil {
		return err
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	entries, err := filepath.Glob(filepath.Join(*dir, "*.rlog"))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no .rlog files in %s", *dir)
	}
	sort.Strings(entries)
	// A record-suite -online run leaves a manifest of online verdicts
	// next to the logs. The manifest is advisory: entries re-attach the
	// in-memory Online annotation (enabling the race-free fast path)
	// only when both the filename and the content hash match, and a
	// missing or corrupt manifest just means the full offline pass.
	man, manErr := racereplay.ReadManifest(filepath.Join(*dir, "manifest.json"))
	if manErr != nil {
		if !os.IsNotExist(manErr) {
			reg.Logger().Warn("manifest ignored", "err", manErr.Error())
		}
		man = nil
	}
	// Corrupt or unreadable logs quarantine instead of aborting the
	// batch: the analysis completes over the healthy files and the
	// report lists every excluded one with its typed error (exit 2).
	// Audit envelopes are slot-indexed by directory order, quarantined
	// files included, so the trail covers every input.
	var logs []*racereplay.Log
	var labels []string
	var slotOf []int
	var quarantined []racereplay.Quarantined
	var audits []*racereplay.AuditExecution
	decodeSp := reg.StartSpan("decode")
	// File decodes fan across the worker pool (a lone file fans its v2
	// thread segments across the same budget instead). Each worker
	// decodes into its slot with a forked registry; all bookkeeping —
	// counter adoption, quarantine, manifest lookup — replays serially
	// in directory order, so the output and the audit trail stay
	// byte-identical at every -jobs count. Salvage mode means a v2
	// container with some corrupt thread segments still contributes its
	// healthy threads instead of quarantining the whole file.
	type decoded struct {
		log    *racereplay.Log
		faults []racereplay.ThreadFault
		err    error
	}
	segJobs := 1
	if len(entries) == 1 {
		segJobs = *jobs
	}
	slots := make([]decoded, len(entries))
	decForks := make([]*racereplay.Metrics, len(entries))
	dpool := sched.NewPool(*jobs, reg)
	for i := range entries {
		i := i
		decForks[i] = reg.Fork()
		dpool.Submit(func() {
			d := &slots[i]
			data, err := os.ReadFile(entries[i])
			if err != nil {
				d.err = err
				return
			}
			d.log, d.faults, d.err = racereplay.DecodeLogOpts(data, racereplay.DecodeOptions{
				Jobs: segJobs, Salvage: true, Metrics: decForks[i],
			})
			if d.err == nil {
				d.err = racereplay.ValidateLog(d.log)
			}
		})
	}
	dpool.Wait()
	for i, path := range entries {
		reg.Adopt(decForks[i])
		label := filepath.Base(path)
		log, err := slots[i].log, slots[i].err
		var ae *racereplay.AuditExecution
		if *auditOut != "" {
			ae = &racereplay.AuditExecution{Scenario: label}
			audits = append(audits, ae)
		}
		if err != nil {
			quarantined = append(quarantined, racereplay.Quarantined{
				Index: i, Label: label, Err: err,
			})
			reg.Counter("robust.quarantined").Inc()
			reg.EmitLabeled("quarantine", label, uint64(i))
			reg.Logger().Warn("log quarantined at decode",
				"file", label, "err", err.Error())
			if ae != nil {
				ae.Quarantined = err.Error()
			}
			continue
		}
		for _, tf := range slots[i].faults {
			reg.Logger().Warn("thread segment salvaged at decode",
				"file", label, "segment", tf.Segment, "tid", tf.TID, "err", tf.Err.Error())
		}
		reg.EmitLabeled("decode", label, log.Instructions())
		var digest string
		if ae != nil || man != nil {
			digest = racereplay.LogDigest(log)
		}
		if ae != nil {
			ae.Seed = log.Seed
			ae.LogSHA256 = digest
		}
		if e := man.Lookup(label, digest); e != nil {
			log.Online = e.Online()
			reg.Counter("decode.manifest_verdicts").Inc()
		}
		logs = append(logs, log)
		labels = append(labels, label)
		slotOf = append(slotOf, i)
	}
	decodeSp.End()
	results, analysisQuarantined := racereplay.AnalyzeLogsInstrumented(logs, func(i int) racereplay.Options {
		o := racereplay.Options{Scenario: labels[i], Seed: logs[i].Seed, DB: db, Predict: *predictStage}
		if *auditOut != "" {
			o.Audit = audits[slotOf[i]]
		}
		return o
	}, *jobs, reg)
	quarantined = append(quarantined, analysisQuarantined...)
	if *auditOut != "" {
		for _, q := range analysisQuarantined {
			ae := audits[slotOf[q.Index]]
			ae.Quarantined = q.Err.Error()
			ae.Races = nil
		}
		file := racereplay.NewAuditFile()
		for _, ae := range audits {
			file.Executions = append(file.Executions, *ae)
		}
		file.DeriveCacheHits()
		if err := file.WriteFile(*auditOut); err != nil {
			return err
		}
	}
	var parts []*racereplay.Classification
	for _, res := range results {
		if res != nil {
			parts = append(parts, res.Classification)
		}
	}
	merged := racereplay.MergeClassifications(parts...)
	fmt.Fprintf(stdout, "analyzed %d recorded executions\n", len(parts))
	fmt.Fprint(stdout, report.Summary(merged, report.SuiteTruth))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.BuildTable1(merged, report.SuiteTruth).Render())
	var suitePredict *workloads.SuitePredict
	if *predictStage {
		suitePredict = workloads.BuildSuitePredict(labels, results)
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.PredictedSection{Suite: suitePredict}.Render())
	}
	if *staticStage {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.StaticSection{Suite: staticOverDir(labels, results, reg)}.Render())
	}
	printQuarantine(quarantined)
	if len(parts) == 0 {
		// Exit-code contract, made explicit: a batch in which every
		// input was quarantined analyzed nothing, so it must read as
		// invalid input (2), never as "clean" (0) — even if the
		// quarantine bookkeeping above ever changes shape.
		raiseExit(2)
	}
	if _, harmful := merged.CountByVerdict(); harmful > 0 {
		raiseExit(1)
	}
	if suitePredict != nil && suitePredict.Merged != nil {
		if _, harmful := suitePredict.Merged.CountByVerdict(); harmful > 0 {
			raiseExit(1)
		}
	}
	return metrics.emit(reg)
}

// staticOverDir runs the static cross-validation stage over analyze-dir
// results. Log files from record-suite are named "<scenario>-<k>.rlog", so
// results grouped by the label minus its "-<k>" suffix pool the dynamic
// evidence of one program's seeds, exactly like the live suite; foreign
// file names fall back to one group per file. Programs decoded from logs
// carry no data-symbol table, so candidate cells render as hex addresses.
func staticOverDir(labels []string, results []*racereplay.Result, reg *racereplay.Metrics) *workloads.SuiteStatic {
	baseOf := func(label string) string {
		base := strings.TrimSuffix(label, ".rlog")
		if i := strings.LastIndexByte(base, '-'); i > 0 {
			if _, err := fmt.Sscanf(base[i+1:], "%d", new(int)); err == nil {
				return base[:i]
			}
		}
		return base
	}
	byBase := map[string][]*racereplay.Result{}
	var order []string
	for i, res := range results {
		if res == nil {
			continue
		}
		b := baseOf(labels[i])
		if _, ok := byBase[b]; !ok {
			order = append(order, b)
		}
		byBase[b] = append(byBase[b], res)
	}
	suite := &workloads.SuiteStatic{}
	for _, b := range order {
		group := byBase[b]
		rep := racereplay.AnalyzeStaticInstrumented(group[0].Prog, reg)
		cross := racereplay.CrossValidateStaticInstrumented(rep, reg, group...)
		suite.Scenarios = append(suite.Scenarios, workloads.ScenarioStatic{Name: b, Report: rep, Cross: cross})
		suite.Matched += cross.Matched
		suite.Refuted += cross.Refuted
		suite.Unmatched += cross.Unmatched
		suite.Missed += len(cross.Missed)
		if cross.HasPredicted {
			suite.HasPredicted = true
			suite.PredMatched += cross.PredMatched
			suite.PredRefuted += cross.PredRefuted
			suite.PredUnmatched += cross.PredUnmatched
			suite.PredMissed += len(cross.PredMissed)
		}
	}
	return suite
}

// cmdValidate decodes and structurally checks logs without analyzing
// them — the cheap pre-flight for a directory of recordings. Invalid
// files are reported per-file and raise the exit status to 2; the
// command itself only errors when given no files.
func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("validate wants one or more log files")
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	sp := reg.StartSpan("decode")
	bad := 0
	for i, path := range fs.Args() {
		label := filepath.Base(path)
		log, err := loadLog(path)
		if err == nil {
			err = racereplay.ValidateLog(log)
		}
		reg.Counter("validate.files").Inc()
		if err != nil {
			bad++
			reg.Counter("validate.invalid").Inc()
			reg.EmitLabeled("quarantine", label, uint64(i))
			reg.Logger().Warn("invalid log", "file", label, "err", err.Error())
			fmt.Fprintf(stdout, "%s: INVALID: %v\n", path, err)
			continue
		}
		reg.Counter("validate.instructions").Add(log.Instructions())
		reg.Counter("validate.threads").Add(uint64(len(log.Threads)))
		reg.EmitLabeled("decode", label, log.Instructions())
		fmt.Fprintf(stdout, "%s: ok (%d instructions, %d threads)\n",
			path, log.Instructions(), len(log.Threads))
	}
	sp.End()
	if bad > 0 {
		fmt.Fprintf(stdout, "%d of %d logs invalid\n", bad, fs.NArg())
		raiseExit(2)
	}
	return metrics.emit(reg)
}

// cmdAudit renders a verdict-provenance trail (written by the suite or
// analyze-dir -audit-out flag) as the human-readable audit section —
// the quick way to read back which replay evidence produced a verdict.
func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("audit wants exactly one racereplay-audit JSON file")
	}
	f, err := racereplay.ReadAuditFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, racereplay.AuditSection(f))
	return nil
}

// cmdChaos fuzzes the decode path with deterministically corrupted log
// variants and enforces the robustness contract: every corruption must
// produce a structured error or a degraded-but-labeled result — never a
// panic, never an unbounded allocation.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	n := fs.Int("corruptions", 200, "number of corrupted log variants to decode")
	seed := fs.Int64("seed", 1, "corruption seed; equal seeds corrupt identically")
	name := fs.String("scenario", "exec01", "scenario recorded as the corruption target")
	logPath := fs.String("log", "", "corrupt an existing .rlog file instead of recording a scenario")
	serveURL := fs.String("serve", "", "fire the corruption sweep at a running 'racer serve' endpoint (e.g. http://127.0.0.1:8844) instead of the local decoder")
	metrics := addMetricsFlags(fs)
	fs.Parse(args)
	// Sweep every container format the decoder sniffs: a recorded
	// scenario is corrupted both as a v1 and as a v2 container. An
	// explicit -log file is swept as-is, whatever format it holds.
	type target struct {
		label     string
		container []byte
	}
	var targets []target
	if *logPath != "" {
		b, err := os.ReadFile(*logPath)
		if err != nil {
			return err
		}
		targets = []target{{*logPath, b}}
	} else {
		s, err := workloads.FindScenario(*name)
		if err != nil {
			return err
		}
		prog, err := s.Program()
		if err != nil {
			return err
		}
		log, err := racereplay.Record(prog, s.Config())
		if err != nil {
			return err
		}
		for _, lf := range []racereplay.LogFormat{racereplay.FormatV1, racereplay.FormatV2} {
			var buf bytes.Buffer
			if err := racereplay.WriteLogFormat(&buf, log, lf); err != nil {
				return err
			}
			targets = append(targets, target{"format " + string(lf), buf.Bytes()})
		}
	}
	reg, err := metrics.registry()
	if err != nil {
		return err
	}
	violations := 0
	for _, tgt := range targets {
		if len(targets) > 1 {
			fmt.Fprintf(stdout, "== %s ==\n", tgt.label)
		}
		var rep interface {
			Summary() string
			Violations() int
		}
		if *serveURL != "" {
			rep = chaos.RunHTTP(*serveURL, tgt.container, *n, *seed, reg)
		} else {
			rep = chaos.Run(tgt.container, *n, *seed, reg)
		}
		fmt.Fprint(stdout, rep.Summary())
		violations += rep.Violations()
	}
	if err := metrics.emit(reg); err != nil {
		return err
	}
	if violations > 0 {
		if *serveURL != "" {
			return fmt.Errorf("chaos: service contract violated %d times", violations)
		}
		return fmt.Errorf("chaos: robustness contract violated %d times", violations)
	}
	return nil
}

func cmdMarkBenign(args []string) error {
	fs := flag.NewFlagSet("mark-benign", flag.ExitOnError)
	dbPath := fs.String("db", "races.json", "race database path")
	race := fs.String("race", "", "site pair, e.g. 'suite:a <-> suite:b'")
	note := fs.String("note", "", "triage note")
	fs.Parse(args)
	if *race == "" {
		return fmt.Errorf("mark-benign wants -race 'siteA <-> siteB'")
	}
	parts := strings.Split(*race, "<->")
	if len(parts) != 2 {
		return fmt.Errorf("race must look like 'siteA <-> siteB'")
	}
	db, err := racereplay.LoadDB(*dbPath)
	if err != nil {
		return err
	}
	sites := hb.MakeSitePair(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
	db.MarkBenign(sites, *note)
	if err := db.Save(*dbPath); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "marked %s benign in %s\n", sites, *dbPath)
	return nil
}

func cmdDebug(args []string) error {
	fs := flag.NewFlagSet("debug", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("debug wants one log file")
	}
	log, err := loadLog(fs.Arg(0))
	if err != nil {
		return err
	}
	return debug.REPL(log, os.Stdin, stdout)
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("disasm wants one program file")
	}
	prog, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, prog.Disassemble())
	return nil
}

func cmdScenarios(args []string) error {
	for _, s := range workloads.Scenarios() {
		names := make([]string, len(s.Templates))
		for i, t := range s.Templates {
			names[i] = t.Name
		}
		fmt.Fprintf(stdout, "%s (seed %d): %s\n", s.Name, s.Seed, strings.Join(names, " "))
	}
	fmt.Fprintln(stdout, "browse (perf workload)")
	return nil
}
