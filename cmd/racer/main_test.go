package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"

	racereplay "repro"
)

// capture redirects command output to a builder for the duration of f.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	var b strings.Builder
	old := stdout
	stdout = &b
	defer func() { stdout = old }()
	if err := f(); err != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", err, b.String())
	}
	return b.String()
}

const testProg = `
.entry main
.word g 0
worker:
  ldi r2, g
  addi r3, r1, 5
wstore:
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  ldi r2, g
  ld r1, [r2+0]
  sys print
  halt
`

func writeProg(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.rasm")
	if err := os.WriteFile(path, []byte(testProg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdRunAndPolicies(t *testing.T) {
	path := writeProg(t)
	for _, policy := range []string{"random", "rr", "pct"} {
		out := capture(t, func() error { return cmdRun([]string{"-seed", "3", "-policy", policy, path}) })
		if !strings.Contains(out, "thread 0: halted") {
			t.Errorf("policy %s: run output missing main thread:\n%s", policy, out)
		}
	}
	if err := cmdRun([]string{"-policy", "bogus", path}); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := cmdRun([]string{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdRecordReplayDetectClassify(t *testing.T) {
	prog := writeProg(t)
	logPath := filepath.Join(t.TempDir(), "run.rlog")

	out := capture(t, func() error { return cmdRecord([]string{"-seed", "6", "-o", logPath, prog}) })
	if !strings.Contains(out, "bits/instr") {
		t.Errorf("record output missing stats:\n%s", out)
	}
	if _, err := os.Stat(logPath); err != nil {
		t.Fatal("log not written")
	}

	out = capture(t, func() error { return cmdReplay([]string{logPath}) })
	if !strings.Contains(out, "sequencing regions") {
		t.Errorf("replay output:\n%s", out)
	}

	out = capture(t, func() error { return cmdDetect([]string{logPath}) })
	if !strings.Contains(out, "unique data races") {
		t.Errorf("detect output:\n%s", out)
	}

	out = capture(t, func() error { return cmdDetect([]string{"-detector", "vc", logPath}) })
	if !strings.Contains(out, "unique data races") {
		t.Errorf("vc detect output:\n%s", out)
	}

	out = capture(t, func() error { return cmdDetect([]string{"-detector", "lockset", logPath}) })
	if !strings.Contains(out, "lockset warnings") {
		t.Errorf("lockset output:\n%s", out)
	}
	if err := cmdDetect([]string{"-detector", "bogus", logPath}); err == nil {
		t.Error("bogus detector accepted")
	}

	out = capture(t, func() error { return cmdClassify([]string{logPath}) })
	if !strings.Contains(out, "potentially benign") {
		t.Errorf("classify output:\n%s", out)
	}
}

func TestCmdScenarioAndScenarios(t *testing.T) {
	out := capture(t, func() error { return cmdScenarios(nil) })
	if !strings.Contains(out, "exec01") || !strings.Contains(out, "browse") {
		t.Errorf("scenarios output:\n%s", out)
	}
	out = capture(t, func() error { return cmdScenario([]string{"-name", "exec01"}) })
	if !strings.Contains(out, "scenario exec01") || !strings.Contains(out, "races:") {
		t.Errorf("scenario output:\n%s", out)
	}
	if err := cmdScenario([]string{"-name", "nosuch"}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestCmdMarkBenignRoundTrip(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "db.json")
	out := capture(t, func() error {
		return cmdMarkBenign([]string{"-db", dbPath, "-race", "suite:a <-> suite:b", "-note", "triaged"})
	})
	if !strings.Contains(out, "marked") {
		t.Errorf("mark-benign output:\n%s", out)
	}
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "suite:a") {
		t.Errorf("db missing mark:\n%s", data)
	}
	if err := cmdMarkBenign([]string{"-db", dbPath, "-race", "no-arrow"}); err == nil {
		t.Error("malformed race accepted")
	}
	if err := cmdMarkBenign([]string{"-db", dbPath}); err == nil {
		t.Error("missing race accepted")
	}
}

func TestCmdDisasm(t *testing.T) {
	prog := writeProg(t)
	out := capture(t, func() error { return cmdDisasm([]string{prog}) })
	for _, want := range []string{"worker:", "main:", "sys spawn", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm missing %q:\n%s", want, out)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"random": "random", "rr": "round-robin", "round-robin": "round-robin", "pct": "pct", "": "random",
	} {
		p, err := parsePolicy(name)
		if err != nil || p.String() != want {
			t.Errorf("parsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := parsePolicy("zzz"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestCmdSuiteSummary(t *testing.T) {
	out := capture(t, func() error { return cmdSuite([]string{}) })
	for _, want := range []string{"unique races: 68", "Table 1", "reported for triage: 36 (7 real bugs among them)"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %q", want)
		}
	}
}

func TestCmdSuiteWithDBSuppression(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "db.json")
	capture(t, func() error {
		return cmdMarkBenign([]string{"-db", dbPath, "-race", "suite:actr01_ast <-> suite:actr01_ast"})
	})
	out := capture(t, func() error { return cmdSuite([]string{"-db", dbPath}) })
	if !strings.Contains(out, "unique races: 68") {
		t.Errorf("suite with db output:\n%s", out[:200])
	}
}

func TestCmdErrorsOnMissingFiles(t *testing.T) {
	for name, f := range map[string]func([]string) error{
		"replay":   cmdReplay,
		"detect":   cmdDetect,
		"classify": cmdClassify,
		"disasm":   cmdDisasm,
		"debug":    cmdDebug,
	} {
		if err := f([]string{"/nonexistent/file"}); err == nil {
			t.Errorf("%s accepted a missing file", name)
		}
		if err := f(nil); err == nil {
			t.Errorf("%s accepted no args", name)
		}
	}
	if err := cmdRecord([]string{"/nonexistent.rasm"}); err == nil {
		t.Error("record accepted a missing file")
	}
}

func TestCmdScenarioService(t *testing.T) {
	out := capture(t, func() error { return cmdScenario([]string{"-name", "service"}) })
	if !strings.Contains(out, "scenario service") || !strings.Contains(out, "0 potentially harmful") {
		t.Errorf("service scenario output:\n%s", out)
	}
}

func TestCmdRecordWithKeyFramesAndDump(t *testing.T) {
	prog := writeProg(t)
	logPath := filepath.Join(t.TempDir(), "kf.rlog")
	out := capture(t, func() error {
		return cmdRecord([]string{"-keyframes", "4", "-o", logPath, prog})
	})
	if !strings.Contains(out, "recorded") {
		t.Errorf("record output:\n%s", out)
	}
	out = capture(t, func() error { return cmdReplay([]string{logPath}) })
	if !strings.Contains(out, "sequencing regions") {
		t.Errorf("keyframed log replay:\n%s", out)
	}
	out = capture(t, func() error { return cmdScenario([]string{"-name", "exec01", "-dump"}) })
	if !strings.Contains(out, ".entry main") || !strings.Contains(out, "sys spawn") {
		t.Errorf("dump output:\n%s", out[:200])
	}
}

func TestRecordSuiteThenAnalyzeDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "logs")
	out := capture(t, func() error { return cmdRecordSuite([]string{"-dir", dir}) })
	if !strings.Contains(out, "recorded 18 executions") {
		t.Errorf("record-suite output:\n%s", out)
	}
	out = capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir}) })
	for _, want := range []string{"analyzed 18 recorded executions", "unique races: 68", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze-dir output missing %q", want)
		}
	}
	if err := cmdAnalyzeDir([]string{"-dir", filepath.Join(dir, "empty")}); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestScenarioRaceFilterRoundTrip(t *testing.T) {
	// The reproduce line printed in race reports must actually work: find
	// a race in exec01, then re-run with -race and get exactly that race.
	var sites string
	out := capture(t, func() error { return cmdScenario([]string{"-name", "exec01"}) })
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "race ") {
			sites = strings.TrimPrefix(line, "race ")
			break
		}
	}
	if sites == "" {
		t.Fatal("no race found in exec01")
	}
	out = capture(t, func() error {
		return cmdScenario([]string{"-name", "exec01", "-race", sites})
	})
	if !strings.Contains(out, "race "+sites) {
		t.Errorf("filtered output missing the race:\n%s", out)
	}
	// Exactly one race block is printed.
	if strings.Count(out, "\nrace ") > 1 {
		t.Errorf("filter printed more than one race:\n%s", out)
	}
}

// TestFullTriageLoop is the paper's §1 story as one end-to-end CLI flow:
// record the product's test scenarios once; analyze offline; triage the
// potentially-harmful set, marking the tolerated races benign; re-analyze
// and get only the real bugs.
func TestFullTriageLoop(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "logs")
	dbPath := filepath.Join(t.TempDir(), "races.json")

	capture(t, func() error { return cmdRecordSuite([]string{"-dir", dir}) })

	// First offline analysis: 36 potentially harmful races show up.
	out := capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir}) })
	if !strings.Contains(out, "potentially benign: 32 (47% of all races)") {
		t.Fatalf("first analysis:\n%s", out)
	}
	if !strings.Contains(out, "reported for triage: 36 (7 real bugs among them)") {
		t.Fatalf("first analysis triage queue:\n%s", out)
	}

	// "Triage": mark the 29 tolerated races benign. (The test plays the
	// role of the domain expert using the ground truth.)
	run, err := racereplay.RunSuite(nil)
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for _, r := range run.Merged.Races {
		h, _, ok := report.SuiteTruth(r.Sites.A)
		if ok && !h && r.Verdict == racereplay.PotentiallyHarmful {
			capture(t, func() error {
				return cmdMarkBenign([]string{"-db", dbPath, "-race", r.Sites.String(), "-note", "triaged"})
			})
			marked++
		}
	}
	if marked != 29 {
		t.Fatalf("marked %d races, want 29", marked)
	}

	// Second analysis: only the 7 real bugs remain on the triage queue.
	out = capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir, "-db", dbPath}) })
	if !strings.Contains(out, "suppressed by the race database: 29") {
		t.Fatalf("second analysis missing suppression:\n%s", out)
	}
	if !strings.Contains(out, "reported for triage: 7 (7 real bugs among them)") {
		t.Fatalf("second analysis:\n%s", out)
	}
}

func TestCmdDetectLocksetTriage(t *testing.T) {
	prog := writeProg(t)
	logPath := filepath.Join(t.TempDir(), "t.rlog")
	capture(t, func() error { return cmdRecord([]string{"-seed", "6", "-o", logPath, prog}) })
	out := capture(t, func() error {
		return cmdDetect([]string{"-detector", "lockset", "-triage", logPath})
	})
	if !strings.Contains(out, "replay triage of the lockset report") {
		t.Errorf("triage section missing:\n%s", out)
	}
}

// resetExit zeroes the exit status for one test and restores it after,
// so exit-code assertions don't leak between tests.
func resetExit(t *testing.T) {
	t.Helper()
	old := exitCode
	exitCode = 0
	t.Cleanup(func() { exitCode = old })
}

// corruptCorpus returns the repo's checked-in known-bad logs.
func corruptCorpus(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "corrupt", "*.rlog"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corrupt corpus missing: %v (%d files)", err, len(paths))
	}
	return paths
}

// TestExitCodeContract: 0 clean, 1 findings, 2 invalid input.
func TestExitCodeContract(t *testing.T) {
	resetExit(t)
	prog := writeProg(t)
	logPath := filepath.Join(t.TempDir(), "run.rlog")

	// Clean commands leave the status at 0.
	capture(t, func() error { return cmdRecord([]string{"-seed", "6", "-o", logPath, prog}) })
	capture(t, func() error { return cmdValidate([]string{logPath}) })
	if exitCode != 0 {
		t.Fatalf("clean run exit = %d, want 0", exitCode)
	}

	// Findings (the test program races) raise it to 1.
	capture(t, func() error { return cmdClassify([]string{logPath}) })
	if exitCode != 1 {
		t.Fatalf("findings exit = %d, want 1", exitCode)
	}

	// Invalid input beats findings: 2.
	capture(t, func() error { return cmdValidate([]string{corruptCorpus(t)[0]}) })
	if exitCode != 2 {
		t.Fatalf("invalid input exit = %d, want 2", exitCode)
	}
}

// TestCmdValidate: good logs report ok, corrupt logs report their typed
// error per file without aborting the sweep.
func TestCmdValidate(t *testing.T) {
	resetExit(t)
	prog := writeProg(t)
	logPath := filepath.Join(t.TempDir(), "ok.rlog")
	capture(t, func() error { return cmdRecord([]string{"-o", logPath, prog}) })

	files := append([]string{logPath}, corruptCorpus(t)...)
	out := capture(t, func() error { return cmdValidate(files) })
	if !strings.Contains(out, "ok.rlog: ok (") {
		t.Errorf("healthy log not reported ok:\n%s", out)
	}
	if !strings.Contains(out, "INVALID: trace: ") {
		t.Errorf("corrupt log missing typed error:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("%d of %d logs invalid", len(files)-1, len(files))) {
		t.Errorf("summary line wrong:\n%s", out)
	}
	if exitCode != 2 {
		t.Errorf("validate exit = %d, want 2", exitCode)
	}
	if err := cmdValidate(nil); err == nil {
		t.Error("validate with no files accepted")
	}
}

// TestCmdAnalyzeDirQuarantinesCorruptLogs is the acceptance scenario:
// a directory mixing healthy recordings with every known-bad log
// completes with partial results, lists each bad file in the quarantine
// section, and exits 2.
func TestCmdAnalyzeDirQuarantinesCorruptLogs(t *testing.T) {
	resetExit(t)
	dir := filepath.Join(t.TempDir(), "logs")
	capture(t, func() error { return cmdRecordSuite([]string{"-dir", dir}) })
	corrupt := corruptCorpus(t)
	for _, src := range corrupt {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "zz-"+filepath.Base(src)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out := capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir}) })
	if !strings.Contains(out, "analyzed 18 recorded executions") {
		t.Errorf("healthy logs not analyzed:\n%s", out[:200])
	}
	if !strings.Contains(out, fmt.Sprintf("quarantined: %d input(s)", len(corrupt))) {
		t.Errorf("quarantine section missing or wrong:\n%s", out)
	}
	for _, src := range corrupt {
		if !strings.Contains(out, "zz-"+filepath.Base(src)+": ") {
			t.Errorf("quarantine section missing %s:\n%s", filepath.Base(src), out)
		}
	}
	if exitCode != 2 {
		t.Errorf("quarantined batch exit = %d, want 2", exitCode)
	}
}

// TestCmdAnalyzeDirAllQuarantinedExits2 is the exit-code contract's edge
// case: a directory in which *every* input file is quarantined analyzed
// nothing, so the batch must exit 2 (invalid input) — never fall through
// to 0 ("clean") on the strength of an empty merged report.
func TestCmdAnalyzeDirAllQuarantinedExits2(t *testing.T) {
	resetExit(t)
	dir := filepath.Join(t.TempDir(), "logs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	corrupt := corruptCorpus(t)
	for _, src := range corrupt {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(src)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out := capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir}) })
	if !strings.Contains(out, "analyzed 0 recorded executions") {
		t.Errorf("fully-quarantined batch should analyze nothing:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("quarantined: %d input(s)", len(corrupt))) {
		t.Errorf("quarantine section missing or wrong:\n%s", out)
	}
	if exitCode != 2 {
		t.Errorf("fully-quarantined batch exit = %d, want 2 (invalid input)", exitCode)
	}
}

// TestCmdChaos: the CLI front end for the contract runner holds the
// contract over a quick corruption sweep and renders the summary.
func TestCmdChaos(t *testing.T) {
	resetExit(t)
	out := capture(t, func() error { return cmdChaos([]string{"-corruptions", "24", "-seed", "7"}) })
	if !strings.Contains(out, "chaos: 24 corruptions (seed 7)") {
		t.Errorf("chaos summary header:\n%s", out)
	}
	if !strings.Contains(out, "contract: 0 panics, 0 unbounded allocations, 0 untyped errors") {
		t.Errorf("chaos contract line:\n%s", out)
	}
}

// TestCmdSuiteParallelOutputIsByteIdentical drives the full CLI path:
// the rendered suite report must not change with the worker count.
func TestCmdSuiteParallelOutputIsByteIdentical(t *testing.T) {
	serial := capture(t, func() error { return cmdSuite([]string{"-jobs", "1", "-seeds", "2", "-v"}) })
	parallel := capture(t, func() error { return cmdSuite([]string{"-jobs", "8", "-seeds", "2", "-v"}) })
	if serial != parallel {
		t.Fatalf("suite output diverges between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
}

// TestCmdRecordSuiteAndAnalyzeDirParallel round-trips the offline
// workflow with parallel recording and parallel analysis, checking that
// the analyze-dir report matches its serial rendering.
func TestCmdRecordSuiteAndAnalyzeDirParallel(t *testing.T) {
	dir := t.TempDir()
	recOut := capture(t, func() error {
		return cmdRecordSuite([]string{"-dir", dir, "-jobs", "8"})
	})
	if !strings.Contains(recOut, "recorded 18 executions") {
		t.Fatalf("record-suite output: %s", recOut)
	}
	serial := capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir, "-jobs", "1"}) })
	parallel := capture(t, func() error { return cmdAnalyzeDir([]string{"-dir", dir, "-jobs", "8"}) })
	if serial != parallel {
		t.Fatalf("analyze-dir output diverges between -jobs 1 and -jobs 8")
	}
	if !strings.Contains(serial, "analyzed 18 recorded executions") {
		t.Errorf("analyze-dir output: %s", serial[:120])
	}
}

// TestFormatDivergence: the container format is transport, never
// semantics — the same executions recorded as v1 and as v2 must analyze
// to byte-identical reports and audit trails, at any worker count.
func TestFormatDivergence(t *testing.T) {
	base := t.TempDir()
	dirV1 := filepath.Join(base, "v1")
	dirV2 := filepath.Join(base, "v2")
	capture(t, func() error { return cmdRecordSuite([]string{"-dir", dirV1, "-seeds", "2", "-format", "v1"}) })
	capture(t, func() error { return cmdRecordSuite([]string{"-dir", dirV2, "-seeds", "2", "-format", "v2"}) })
	auditV1 := filepath.Join(base, "audit-v1.json")
	auditV2 := filepath.Join(base, "audit-v2.json")
	repV1 := capture(t, func() error {
		return cmdAnalyzeDir([]string{"-dir", dirV1, "-jobs", "1", "-audit-out", auditV1})
	})
	repV2 := capture(t, func() error {
		return cmdAnalyzeDir([]string{"-dir", dirV2, "-jobs", "4", "-audit-out", auditV2})
	})
	if repV1 != repV2 {
		t.Errorf("analyze-dir reports diverge between formats:\n-- v1 (jobs=1) --\n%s\n-- v2 (jobs=4) --\n%s", repV1, repV2)
	}
	a1, err := os.ReadFile(auditV1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := os.ReadFile(auditV2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a1) != string(a2) {
		t.Error("audit trails diverge between formats")
	}
}
