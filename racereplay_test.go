package racereplay

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const demoSrc = `
.entry main
.word g 0
worker:
  ldi r2, g
  addi r3, r1, 10
wstore:
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

func TestPublicPipeline(t *testing.T) {
	prog, err := Assemble("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Record(prog, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	races := DetectRaces(exec)
	cls := Classify(exec, races, Options{Scenario: "demo", Seed: 6})
	if len(cls.Races) != len(races.Races) {
		t.Errorf("classified %d of %d races", len(cls.Races), len(races.Races))
	}
}

func TestPublicAnalyzeSourceFindsHarmfulWriteWrite(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		res, err := AnalyzeSource("demo", demoSrc, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Classification.Races {
			if r.Verdict == PotentiallyHarmful && r.SC > 0 {
				found = true
				rep := RaceReport(r)
				if !strings.Contains(rep, "potentially-harmful") {
					t.Error("report missing verdict")
				}
			}
		}
	}
	if !found {
		t.Error("conflicting writers never classified harmful")
	}
}

func TestPublicLogRoundTrip(t *testing.T) {
	prog, err := Assemble("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Record(prog, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, log); err != nil {
		t.Fatal(err)
	}
	log2, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeLog(log2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Log.Instructions() != log.Instructions() {
		t.Error("log round trip changed instruction count")
	}
	s := LogStats(log)
	if s.RawBytes == 0 || s.Instructions == 0 {
		t.Error("stats empty")
	}
}

func TestPublicReplayTo(t *testing.T) {
	prog, err := Assemble("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Record(prog, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := ReplayTo(log, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Regions) != 2 {
		t.Errorf("prefix regions = %d, want 2", len(exec.Regions))
	}
}

func TestPublicSuiteAccessors(t *testing.T) {
	if len(Suite()) != 18 {
		t.Errorf("suite scenarios = %d, want 18", len(Suite()))
	}
	names := map[string]bool{}
	for _, s := range Suite() {
		if names[s.Name] {
			t.Errorf("duplicate scenario %s", s.Name)
		}
		names[s.Name] = true
	}
}

func TestPublicDBWorkflow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	db := NewDB()
	var sites SitePair
	res, err := AnalyzeSource("demo", demoSrc, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classification.Races) == 0 {
		t.Skip("no races on this seed")
	}
	sites = res.Classification.Races[0].Sites
	db.MarkBenign(sites, "test")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if !db2.IsMarkedBenign(sites) {
		t.Error("mark lost through save/load")
	}
}

func TestPublicVCAndLocksetDetectors(t *testing.T) {
	prog, err := Assemble("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Record(prog, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	interval := DetectRaces(exec)
	vc, err := DetectRacesVC(exec)
	if err != nil {
		t.Fatal(err)
	}
	if vc.TotalInstances < interval.TotalInstances {
		t.Error("vector-clock detector found less than the interval detector")
	}
	ls := DetectRacesLockset(exec)
	if len(interval.Races) > 0 && len(ls.Warnings) == 0 {
		t.Error("lockset baseline missed an unlocked racy variable")
	}
}

func TestMustAssemblePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic")
		}
	}()
	MustAssemble("bad", "main:\n  frob\n")
}
