// Package racereplay is a from-scratch reproduction of "Automatically
// Classifying Benign and Harmful Data Races Using Replay Analysis"
// (Narayanasamy, Wang, Tigani, Edwards, Calder — PLDI 2007).
//
// The package records a multi-threaded RVM program's execution into an
// iDNA-style replay log, replays it deterministically, finds data races
// with a happens-before (sequencing-region overlap) detector, and
// classifies every race by replaying each dynamic instance twice in a
// virtual processor — once per order of the racing operations. Races all
// of whose instances produce identical live-outs are potentially benign;
// the rest are potentially harmful and come with a reproducible two-order
// replay scenario.
//
// Quick start:
//
//	prog, err := racereplay.Assemble("demo", src)
//	res, err := racereplay.Analyze(prog, racereplay.Config{Seed: 1}, racereplay.Options{})
//	for _, race := range res.Classification.Races {
//		fmt.Println(racereplay.RaceReport(race))
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results of every table and figure.
package racereplay

import (
	"io"

	"repro/internal/asm"
	"repro/internal/audit"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/isa"
	"repro/internal/lockset"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/record"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/static"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Re-exported core types. The aliases make the public API self-contained:
// callers never import internal packages directly.
type (
	// Program is an assembled RVM program.
	Program = isa.Program
	// Config controls one deterministic machine run.
	Config = machine.Config
	// Log is a recorded execution (the replay log).
	Log = trace.Log
	// Execution is a fully replayed run with regions and accesses.
	Execution = replay.Execution
	// RaceSet is the happens-before detector's output.
	RaceSet = hb.Report
	// SitePair is the static identity of a race.
	SitePair = hb.SitePair
	// Options tunes classification.
	Options = classify.Options
	// Memo is the dual-order replay cache: pass one Memo in
	// Options.Memo to share cached verdicts across executions of the
	// same program.
	Memo = classify.Memo
	// Classification is the per-race verdict set.
	Classification = classify.Classification
	// RaceResult is one classified race.
	RaceResult = classify.RaceResult
	// Result bundles one analyzed execution.
	Result = core.Result
	// Quarantined records one batch item whose analysis failed; the batch
	// completes with partial results instead of aborting.
	Quarantined = core.Quarantined
	// DB is the persistent race database for the triage workflow.
	DB = classify.DB
	// SizeStats quantifies a log's footprint.
	SizeStats = trace.SizeStats
	// Scenario is one built-in workload execution.
	Scenario = workloads.Scenario
	// SuiteRun is the analysis of the whole built-in suite.
	SuiteRun = workloads.SuiteRun
	// SuiteOptions configures a suite analysis: race database, seeds per
	// scenario, analysis worker count, and metrics registry.
	SuiteOptions = workloads.SuiteOptions
	// StaticReport is the static analyzer's output for one program:
	// thread entries, race candidates with benign-idiom hints, and skip
	// counters for what the analysis had to give up on.
	StaticReport = static.Report
	// StaticCandidate is one static race candidate.
	StaticCandidate = static.Candidate
	// StaticCross joins static candidates against dynamic evidence
	// (matched / refuted / unmatched, plus missed dynamic races).
	StaticCross = static.CrossResult
	// Metrics is the pipeline-wide observability registry: counters,
	// gauges, histograms, and stage spans. Every instrumented entry point
	// accepts a nil *Metrics and then costs nothing.
	Metrics = obs.Registry
	// MetricsSnapshot is a frozen registry, renderable as text, JSON, or
	// Prometheus exposition format.
	MetricsSnapshot = obs.Snapshot
	// Timeline is the flight recorder attached to a Metrics registry by
	// EnableTimeline: per-worker ring-buffered event streams, exportable
	// as Chrome trace_event JSON (WriteTrace).
	Timeline = obs.Timeline
	// TimelineEvent is one flight-recorder record in a timeline snapshot.
	TimelineEvent = obs.Event
	// TimelineEventKind is the shape of a timeline event: instant, stage
	// begin, or stage end.
	TimelineEventKind = obs.EventKind
	// AuditFile is the versioned verdict-provenance trail
	// (racereplay-audit/v1): per execution, the input log's content hash
	// and per-race replay evidence. Suite runs assemble one when
	// SuiteOptions.Audit is set.
	AuditFile = audit.File
	// AuditExecution is one execution's provenance record within an
	// AuditFile; Options.Audit points classification at one to fill.
	AuditExecution = audit.Execution
	// OnlineConfig controls the online race detector attached to a
	// recording: detection on/off, stop-on-first-race, and key-frame
	// down-sampling once a race is confirmed.
	OnlineConfig = record.OnlineConfig
	// OnlineReport is the online detector's verdict for one recording:
	// race-free or the distinct racy site pairs seen, plus screening
	// statistics.
	OnlineReport = hb.OnlineReport
	// OnlineInfo is the in-memory online-verdict annotation a recording
	// carries on its Log; it is never serialized, so logs decoded from
	// disk always take the full offline pass.
	OnlineInfo = trace.OnlineInfo
	// PredictOptions tunes a prediction pass (window bound, metrics).
	PredictOptions = predict.Options
	// PredictReport is the prediction pass output for one execution:
	// every feasible candidate pair with its witness schedule, plus
	// screening statistics and per-constraint rejection counts.
	PredictReport = predict.Report
	// PredictCandidate is one feasible predicted race pair; its Instance
	// points at real recorded regions, so it classifies exactly like a
	// detector instance.
	PredictCandidate = predict.Candidate
	// PredictWitness is the schedule evidence attached to a candidate:
	// "observed" (the regions overlapped) or "reordered" (the hoisted
	// witness suffix, as region Globals).
	PredictWitness = predict.Witness
	// Predicted bundles one execution's prediction stage as attached to
	// Result.Predicted when Options.Predict is set: the raw report, the
	// predicted-new races, and their replay classification.
	Predicted = core.Predicted
	// SuitePredict aggregates the prediction stage across a batch run.
	SuitePredict = workloads.SuitePredict
	// Manifest is the record-suite sidecar (racereplay-manifest/v1)
	// carrying each log's online verdict across process boundaries.
	Manifest = trace.Manifest
	// ManifestEntry is one log's record in a Manifest.
	ManifestEntry = trace.ManifestEntry
)

// Timeline event kinds.
const (
	EvInstant = obs.EvInstant
	EvBegin   = obs.EvBegin
	EvEnd     = obs.EvEnd
)

// Verdicts and Table-1 groups.
const (
	PotentiallyBenign  = classify.PotentiallyBenign
	PotentiallyHarmful = classify.PotentiallyHarmful

	GroupNoStateChange = classify.GroupNoStateChange
	GroupStateChange   = classify.GroupStateChange
	GroupReplayFailure = classify.GroupReplayFailure
)

// Assemble parses RVM assembly into a validated program.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// MustAssemble is Assemble that panics on error (for known-good sources).
func MustAssemble(name, src string) *Program { return asm.MustAssemble(name, src) }

// NewMetrics returns an empty observability registry to pass to the
// *Instrumented entry points.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewMemo returns an empty dual-order replay cache for Options.Memo.
// Classification memoizes by default; an explicit shared Memo extends
// the sharing across executions.
func NewMemo() *Memo { return classify.NewMemo() }

// Record runs prog under cfg and returns the replay log.
func Record(prog *Program, cfg Config) (*Log, error) {
	log, _, err := core.Record(prog, cfg)
	return log, err
}

// RecordInstrumented is Record with stage metrics published into reg
// (nil reg behaves exactly like Record).
func RecordInstrumented(prog *Program, cfg Config, reg *Metrics) (*Log, error) {
	log, _, err := core.RecordInstrumented(prog, cfg, reg)
	return log, err
}

// RecordWithKeyFrames records like Record but drops a key frame into each
// thread's log every interval instructions, enabling fast mid-log
// per-thread state queries (ThreadStateAt).
func RecordWithKeyFrames(prog *Program, cfg Config, interval uint64) (*Log, error) {
	log, _, err := record.RunWithKeyFrames(prog, cfg, interval)
	return log, err
}

// RecordOnline records with the incremental race detector watching the
// run: the returned log carries the raced/race-free verdict as its
// in-memory Online annotation (consumed by AnalyzeLog's race-free fast
// path) and the report details what the detector saw.
func RecordOnline(prog *Program, cfg Config, oc OnlineConfig) (*Log, *OnlineReport, error) {
	log, _, rep, err := core.RecordOnline(prog, cfg, oc)
	return log, rep, err
}

// RecordOnlineInstrumented is RecordOnline with stage metrics, including
// the detect.online.* family, published into reg (nil reg behaves
// exactly like RecordOnline).
func RecordOnlineInstrumented(prog *Program, cfg Config, oc OnlineConfig, reg *Metrics) (*Log, *OnlineReport, error) {
	log, _, rep, err := core.RecordOnlineInstrumented(prog, cfg, oc, reg)
	return log, rep, err
}

// AnalyzeOnlineInstrumented is AnalyzeInstrumented with online detection
// during the recording: when the online verdict is race-free the offline
// replay+detect+classify pass is skipped entirely, and any raced or
// stopped recording falls through to the full offline pass (the source
// of truth).
func AnalyzeOnlineInstrumented(prog *Program, cfg Config, oc OnlineConfig, opts Options, reg *Metrics) (*Result, error) {
	return core.AnalyzeOnlineInstrumented(prog, cfg, oc, opts, reg)
}

// ThreadStateAt answers a per-thread state query (registers + memory
// view after idx instructions) from a log, resuming from the nearest key
// frame when the log has them.
func ThreadStateAt(log *Log, tid int, idx uint64) (*replay.ThreadState, error) {
	return replay.ThreadStateAt(log, tid, idx)
}

// Replay re-executes a recorded log deterministically, reconstructing
// sequencing regions, accesses, and live-ins.
func Replay(log *Log) (*Execution, error) { return replay.Run(log, replay.Options{}) }

// ReplayInstrumented is Replay timed under a "replay" span with the
// replay.* counters published into reg (nil reg behaves like Replay).
func ReplayInstrumented(log *Log, reg *Metrics) (*Execution, error) {
	sp := reg.StartSpan("replay")
	defer sp.End()
	return replay.Run(log, replay.Options{Metrics: reg})
}

// ReplayTo replays only the first n regions of the schedule — the
// time-travel primitive: replaying successively shorter prefixes steps
// the execution backwards (iDNA's reverse debugging).
func ReplayTo(log *Log, n int) (*Execution, error) { return replay.StateAt(log, n) }

// DetectRaces runs the paper's happens-before detector over a replayed
// execution. It reports no false positives with respect to the recording.
func DetectRaces(exec *Execution) *RaceSet { return hb.Detect(exec) }

// DetectRacesInstrumented is DetectRaces timed under a "detect" span
// with the detect.* counters published into reg.
func DetectRacesInstrumented(exec *Execution, reg *Metrics) *RaceSet {
	sp := reg.StartSpan("detect")
	defer sp.End()
	return hb.DetectInstrumented(exec, reg)
}

// DetectRacesVC runs the vector-clock ablation detector (DESIGN.md A1).
func DetectRacesVC(exec *Execution) (*RaceSet, error) { return hb.DetectVC(exec) }

// DetectRacesLockset runs the Eraser-style lockset baseline over a
// replayed execution (it can report false positives).
func DetectRacesLockset(exec *Execution) *lockset.Report { return lockset.Detect(exec) }

// TriageLockset applies the paper's replay analysis to a lockset report
// (§2.2.2): warnings whose conflicting accesses are all sequencer-ordered
// are dismissed as false positives; the genuinely racy ones are
// classified by dual-order replay.
func TriageLockset(exec *Execution, rep *lockset.Report, opts Options) []classify.LocksetTriage {
	return classify.TriageLockset(exec, rep, opts)
}

// Classify analyzes every race instance by dual-order replay and
// aggregates the per-race verdicts.
func Classify(exec *Execution, races *RaceSet, opts Options) *Classification {
	return classify.Run(exec, races, opts)
}

// MergeClassifications folds per-execution classifications into
// cross-execution verdicts (the same race accumulates instances).
func MergeClassifications(parts ...*Classification) *Classification {
	return classify.Merge(parts...)
}

// AnalyzeStatic runs the ahead-of-execution race analyzer over a program:
// per-thread-entry CFG, constant-propagation address resolution, must-hold
// locksets, and benign-idiom hints. It executes nothing and never fails —
// unanalyzable constructs degrade into the report's skip counters.
func AnalyzeStatic(prog *Program) *StaticReport { return static.Analyze(prog) }

// AnalyzeStaticInstrumented is AnalyzeStatic publishing static.* counters
// into reg under a "static" span (nil reg behaves like AnalyzeStatic).
func AnalyzeStaticInstrumented(prog *Program, reg *Metrics) *StaticReport {
	return static.AnalyzeInstrumented(prog, reg)
}

// CrossValidateStatic joins a static report against the dynamic evidence
// of one or more analyzed executions of the same program: candidates come
// back matched (a dynamic race confirmed them), refuted (both sites ran,
// no race), or unmatched (a site never executed), and dynamic races with
// no candidate are listed as static false negatives.
func CrossValidateStatic(rep *StaticReport, results ...*Result) *StaticCross {
	return static.CrossValidate(rep, core.CollectEvidence(results))
}

// CrossValidateStaticInstrumented is CrossValidateStatic publishing the
// static.matched/refuted/unmatched/missed counters into reg.
func CrossValidateStaticInstrumented(rep *StaticReport, reg *Metrics, results ...*Result) *StaticCross {
	return static.CrossValidateInstrumented(rep, core.CollectEvidence(results), reg)
}

// PredictRaces runs the prediction pass over a replayed execution:
// lockset + weak-HB screening, access-block grouping, and the windowed
// ordering solver. The result is a deterministic function of the
// execution; use Report.NewReport to subtract an observed race set and
// Classify to judge the remainder. The usual entry point is
// Options.Predict on AnalyzeLog and friends, which does all of that
// and attaches the bundle to Result.Predicted.
func PredictRaces(exec *Execution, opts PredictOptions) *PredictReport {
	return predict.Run(exec, opts)
}

// PredictedReport renders one execution's prediction stage — solver
// statistics and every predicted-new race with verdict and witness.
func PredictedReport(p *Predicted) string { return report.PredictedReport(p) }

// Analyze runs the whole pipeline: record, replay, detect, classify.
func Analyze(prog *Program, cfg Config, opts Options) (*Result, error) {
	return core.Analyze(prog, cfg, opts)
}

// AnalyzeInstrumented is Analyze with every pipeline layer publishing
// spans and counters into reg (nil reg behaves exactly like Analyze).
func AnalyzeInstrumented(prog *Program, cfg Config, opts Options, reg *Metrics) (*Result, error) {
	return core.AnalyzeInstrumented(prog, cfg, opts, reg)
}

// AnalyzeLog runs the offline pipeline over an existing log.
func AnalyzeLog(log *Log, opts Options) (*Result, error) { return core.AnalyzeLog(log, opts) }

// AnalyzeLogInstrumented is AnalyzeLog with stage metrics (nil reg
// behaves exactly like AnalyzeLog).
func AnalyzeLogInstrumented(log *Log, opts Options, reg *Metrics) (*Result, error) {
	return core.AnalyzeLogInstrumented(log, opts, reg)
}

// AnalyzeLogs runs the offline pipeline over a batch of logs, fanning
// the work across jobs workers (jobs < 1 means GOMAXPROCS). optsFor
// supplies the i-th log's options; results come back in input order and
// are identical to calling AnalyzeLog on each log serially. The batch
// never aborts: a log that fails (or panics) leaves a nil result slot
// and a Quarantined entry describing the failure.
func AnalyzeLogs(logs []*Log, optsFor func(i int) Options, jobs int) ([]*Result, []Quarantined) {
	return core.AnalyzeLogs(logs, optsFor, jobs)
}

// AnalyzeLogsInstrumented is AnalyzeLogs with stage metrics: worker
// span trees are folded into reg in input order, so the merged ladder —
// like the results — is byte-identical at every worker count. The pool
// also publishes its sched.* metrics, and every quarantined item
// increments robust.quarantined. A nil reg behaves exactly like
// AnalyzeLogs.
func AnalyzeLogsInstrumented(logs []*Log, optsFor func(i int) Options, jobs int, reg *Metrics) ([]*Result, []Quarantined) {
	return core.AnalyzeLogsInstrumented(logs, optsFor, jobs, reg)
}

// AnalyzeSource assembles src and analyzes one execution with the given
// scheduler seed — the one-call entry point the examples use.
func AnalyzeSource(name, src string, seed int64) (*Result, error) {
	prog, err := Assemble(name, src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog, Config{Seed: seed}, Options{Scenario: name, Seed: seed})
}

// WriteLog serializes and compresses a log (v1 container).
func WriteLog(w io.Writer, log *Log) error { return trace.Write(w, log) }

// LogFormat names an on-disk container format: FormatV1 (whole-log flate
// container) or FormatV2 (segmented, index-first, parallel decode).
type LogFormat = trace.Format

const (
	FormatV1 = trace.FormatV1
	FormatV2 = trace.FormatV2
)

// ParseLogFormat validates a -format flag value.
func ParseLogFormat(s string) (LogFormat, error) { return trace.ParseFormat(s) }

// WriteLogFormat serializes a log to w in the named container format.
func WriteLogFormat(w io.Writer, log *Log, f LogFormat) error {
	return trace.WriteFormat(w, log, f)
}

// ReadLog parses a log written by WriteLog or WriteLogFormat; the
// container format is sniffed from the magic bytes.
func ReadLog(r io.Reader) (*Log, error) { return trace.Read(r) }

// ThreadFault names one per-thread segment a salvaging v2 decode
// dropped: the segment index, the thread it carried, and the typed
// decode error that condemned it.
type ThreadFault = trace.ThreadFault

// DecodeOptions configures DecodeLogOpts: v2 segment-decode worker
// count, thread salvage, and the metrics registry decode counters land
// in.
type DecodeOptions = core.DecodeOptions

// DecodeLogOpts decodes one serialized log of either format with v2
// worker fan-out and optional thread salvage; see core.DecodeOptions.
func DecodeLogOpts(data []byte, o DecodeOptions) (*Log, []ThreadFault, error) {
	return core.DecodeLogOpts(data, o)
}

// ValidateLog checks a decoded log's structural invariants (thread IDs,
// region endpoints, record indices). A non-nil error is a
// *trace.ValidateError naming the failed check.
func ValidateLog(log *Log) error { return trace.Validate(log) }

// LogStats measures a log's serialized footprint (§5.1 metrics).
func LogStats(log *Log) SizeStats { return trace.Stats(log) }

// LogStatsFormat measures a log's footprint in the named container
// format (v2's RawBytes is the default uncompressed-segment container;
// its CompressedBytes the per-segment deflated variant).
func LogStatsFormat(log *Log, f LogFormat) SizeStats { return trace.StatsFormat(log, f) }

// LoadDB reads a race database (missing file = empty database).
func LoadDB(path string) (*DB, error) { return classify.LoadDB(path) }

// NewDB returns an empty race database.
func NewDB() *DB { return classify.NewDB() }

// RaceReport renders the developer-facing report for one race, including
// the reproducible two-order replay coordinates.
func RaceReport(r *RaceResult) string { return report.RaceReport(r, report.SuiteTruth) }

// Suite exposes the built-in 18-execution workload suite that stands in
// for the paper's Windows Vista / Internet Explorer recordings.
func Suite() []Scenario { return workloads.Scenarios() }

// RunSuite analyzes the whole built-in suite and merges the verdicts.
func RunSuite(db *DB) (*SuiteRun, error) { return workloads.RunSuite(db) }

// RunSuiteInstrumented is RunSuite with pipeline metrics plus a native
// (bare machine) baseline run per scenario, so the snapshot can render
// the §5.1 overhead ladder (nil reg behaves exactly like RunSuite).
func RunSuiteInstrumented(db *DB, reg *Metrics) (*SuiteRun, error) {
	return workloads.RunSuiteInstrumented(db, reg)
}

// RunSuiteSeeds analyzes the suite under several scheduler seeds per
// scenario, accumulating instances — the paper's coverage lever (§1).
func RunSuiteSeeds(db *DB, seeds int) (*SuiteRun, error) {
	return workloads.RunSuiteSeeds(db, seeds)
}

// RunSuiteSeedsInstrumented is RunSuiteSeeds with the same metrics and
// native baseline as RunSuiteInstrumented.
func RunSuiteSeedsInstrumented(db *DB, seeds int, reg *Metrics) (*SuiteRun, error) {
	return workloads.RunSuiteSeedsInstrumented(db, seeds, reg)
}

// RunSuiteOpts is the configurable suite driver: recording stays serial
// (the online half), while the offline analysis of every scenario × seed
// fans out across opts.Jobs workers with output identical to the serial
// run. RunSuite and friends are shorthands for common option sets.
func RunSuiteOpts(opts SuiteOptions) (*SuiteRun, error) {
	return workloads.RunSuiteOpts(opts)
}

// OverheadLadder renders the §5.1 per-stage overhead ladder from an
// instrumented run's snapshot.
func OverheadLadder(snap MetricsSnapshot) string { return report.OverheadLadder(snap) }

// AuditSection renders the verdict-provenance trail for human review
// (nil file renders nothing).
func AuditSection(f *AuditFile) string { return report.AuditSection(f) }

// NewAuditFile returns an empty verdict-provenance envelope.
func NewAuditFile() *AuditFile { return audit.NewFile() }

// LogDigest is the hex SHA-256 of a log's canonical serialization — the
// content identity audit records attach replay verdicts to.
func LogDigest(log *Log) string { return core.LogDigest(log) }

// ReadAuditFile loads and validates a racereplay-audit/v1 file.
func ReadAuditFile(path string) (*AuditFile, error) { return audit.ReadFile(path) }

// NewManifest returns an empty record-suite manifest envelope
// (racereplay-manifest/v1): the sidecar that carries online race-free
// verdicts from `racer record-suite -online` to `racer analyze-dir`.
func NewManifest() *Manifest { return trace.NewManifest() }

// ReadManifest loads and validates a racereplay-manifest/v1 file.
func ReadManifest(path string) (*Manifest, error) { return trace.ReadManifest(path) }
