// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus the §5.1 performance ladder. Run with:
//
//	go test -bench=. -benchmem
//
// The §5.1 ladder (native → record → replay → happens-before analysis →
// classification) reports per-stage time over the same browse workload;
// EXPERIMENTS.md derives the overhead ratios the paper quotes (record 6x,
// replay 10x, analysis 45x, classification 280x) from these numbers.
package racereplay

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/classify"
	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/machine"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// browseLog caches one recorded browse-scenario log for the offline
// stages of the §5.1 ladder.
var browseLog *trace.Log

func browse(b *testing.B) (*Program, machine.Config) {
	b.Helper()
	s := workloads.BrowseScenario()
	prog, err := s.Program()
	if err != nil {
		b.Fatal(err)
	}
	return prog, s.Config()
}

func getBrowseLog(b *testing.B) *trace.Log {
	b.Helper()
	if browseLog == nil {
		prog, cfg := browse(b)
		log, err := Record(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		browseLog = log
	}
	return browseLog
}

// --- Table 1 / Table 2 / Figures 3–5 --------------------------------------

// BenchmarkTable1Classification regenerates Table 1: the full pipeline
// over all 18 executions, merged, joined with ground truth.
func BenchmarkTable1Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := RunSuite(nil)
		if err != nil {
			b.Fatal(err)
		}
		t1 := report.BuildTable1(run.Merged, report.SuiteTruth)
		if t1.Total() != 68 {
			b.Fatalf("table 1 total = %d, want 68", t1.Total())
		}
		rb, rh := t1.PotentiallyBenign()
		if rb != 32 || rh != 0 {
			b.Fatalf("potentially benign = %d/%d, want 32/0", rb, rh)
		}
	}
}

// BenchmarkTable2BenignCensus regenerates Table 2's benign-race census.
func BenchmarkTable2BenignCensus(b *testing.B) {
	run, err := RunSuite(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 := report.BuildTable2(run.Merged, report.SuiteTruth)
		if t2.Counts[workloads.CatApprox] != 23 {
			b.Fatalf("approx = %d, want 23", t2.Counts[workloads.CatApprox])
		}
	}
}

// BenchmarkFigure3BenignInstances regenerates Figure 3's series.
func BenchmarkFigure3BenignInstances(b *testing.B) {
	run, err := RunSuite(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := report.BuildFigure3(run.Merged, report.SuiteTruth)
		if len(f.Rows) != 32 {
			b.Fatalf("figure 3 rows = %d", len(f.Rows))
		}
	}
}

// BenchmarkFigure4HarmfulInstances regenerates Figure 4's series.
func BenchmarkFigure4HarmfulInstances(b *testing.B) {
	run, err := RunSuite(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := report.BuildFigure4(run.Merged, report.SuiteTruth)
		if len(f.Rows) != 7 {
			b.Fatalf("figure 4 rows = %d", len(f.Rows))
		}
	}
}

// BenchmarkFigure5MisclassifiedInstances regenerates Figure 5's series.
func BenchmarkFigure5MisclassifiedInstances(b *testing.B) {
	run, err := RunSuite(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := report.BuildFigure5(run.Merged, report.SuiteTruth)
		if len(f.Rows) != 29 {
			b.Fatalf("figure 5 rows = %d", len(f.Rows))
		}
	}
}

// --- §5.1 performance ladder ----------------------------------------------

// BenchmarkNativeExecution is the baseline: the browse workload on the
// machine with no observer attached.
func BenchmarkNativeExecution(b *testing.B) {
	prog, cfg := browse(b)
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m, err := machine.New(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run()
		instrs = res.TotalSteps
	}
	b.ReportMetric(float64(instrs), "instructions")
}

// BenchmarkRecording measures the same run with the iDNA-style recorder
// attached (the paper's ~6x stage).
//
// This is also the zero-cost-when-disabled guard for the observability
// layer: Record takes no registry, so it attaches the recorder directly
// (no observer fan-out) and the recorder's per-event tallies are plain
// int increments. Measured before/after instrumenting the pipeline
// (-benchtime=2s -count=5, Xeon 2.10GHz): seed 9.19–13.87 ms/op
// (median 10.06), instrumented tree 9.38–10.41 ms/op (median 9.89) —
// the delta is inside run-to-run noise.
func BenchmarkRecording(b *testing.B) {
	prog, cfg := browse(b)
	for i := 0; i < b.N; i++ {
		if _, err := Record(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures pure deterministic re-execution from the log
// (the paper's ~10x stage).
func BenchmarkReplay(b *testing.B) {
	log := getBrowseLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Run(log, replay.Options{SkipAccesses: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHBAnalysis measures replay with access collection plus the
// happens-before race detection (the paper's ~45x stage).
func BenchmarkHBAnalysis(b *testing.B) {
	log := getBrowseLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec, err := Replay(log)
		if err != nil {
			b.Fatal(err)
		}
		DetectRaces(exec)
	}
}

// BenchmarkClassification measures the full offline analysis including
// dual-order replay of every race instance (the paper's ~280x stage).
func BenchmarkClassification(b *testing.B) {
	log := getBrowseLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeLog(log, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogSize reports the §5.1 log-size metrics (0.8 bit/instruction
// raw, ~0.3 compressed in the paper) as benchmark metrics.
func BenchmarkLogSize(b *testing.B) {
	log := getBrowseLog(b)
	var s SizeStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = LogStats(log)
	}
	b.ReportMetric(s.RawBitsPerInstr(), "rawbits/instr")
	b.ReportMetric(s.CompressedBitsPerInstr(), "zipbits/instr")
	b.ReportMetric(s.BytesPerBillion()/1e6, "MB/Ginstr")
}

// --- Ablations --------------------------------------------------------------

// BenchmarkDetectorAblation compares the paper's region-overlap detector
// against the vector-clock variant on the same executions (A1).
func BenchmarkDetectorAblation(b *testing.B) {
	s := workloads.Scenarios()[0]
	prog, err := s.Program()
	if err != nil {
		b.Fatal(err)
	}
	log, err := Record(prog, s.Config())
	if err != nil {
		b.Fatal(err)
	}
	exec, err := Replay(log)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("interval", func(b *testing.B) {
		var races int
		for i := 0; i < b.N; i++ {
			races = len(hb.Detect(exec).Races)
		}
		b.ReportMetric(float64(races), "races")
	})
	b.Run("vclock", func(b *testing.B) {
		var races int
		for i := 0; i < b.N; i++ {
			rep, err := hb.DetectVC(exec)
			if err != nil {
				b.Fatal(err)
			}
			races = len(rep.Races)
		}
		b.ReportMetric(float64(races), "races")
	})
}

// BenchmarkLocksetBaseline runs the Eraser-style baseline over the suite's
// first execution (A2): it warns on correctly synchronized idioms the
// happens-before detector is silent about.
func BenchmarkLocksetBaseline(b *testing.B) {
	s := workloads.Scenarios()[0]
	prog, err := s.Program()
	if err != nil {
		b.Fatal(err)
	}
	log, err := Record(prog, s.Config())
	if err != nil {
		b.Fatal(err)
	}
	exec, err := Replay(log)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var warnings int
	for i := 0; i < b.N; i++ {
		warnings = len(lockset.Detect(exec).Warnings)
	}
	b.ReportMetric(float64(warnings), "warnings")
}

// BenchmarkSuppressionWorkflow measures re-analysis with a fully
// populated race database (the paper's triage loop, §1).
func BenchmarkSuppressionWorkflow(b *testing.B) {
	run, err := RunSuite(nil)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDB()
	for _, r := range run.Merged.Races {
		if h, _, ok := report.SuiteTruth(r.Sites.A); ok && !h && r.Verdict == classify.PotentiallyHarmful {
			db.MarkBenign(r.Sites, "triaged benign")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run2, err := RunSuite(db)
		if err != nil {
			b.Fatal(err)
		}
		_, harmful := run2.Merged.CountByVerdict()
		if harmful != 7 {
			b.Fatalf("harmful = %d, want 7", harmful)
		}
	}
}

// BenchmarkSchedulerPolicies compares how many unique races each
// interleaving strategy exposes on the same scenario across ten seeds —
// the coverage knob of any dynamic race analysis.
func BenchmarkSchedulerPolicies(b *testing.B) {
	s := workloads.Scenarios()[0]
	prog, err := s.Program()
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []machine.SchedPolicy{
		machine.PolicyRandom, machine.PolicyRoundRobin, machine.PolicyPCT,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			var races int
			for i := 0; i < b.N; i++ {
				seen := map[hb.SitePair]bool{}
				for seed := int64(1); seed <= 10; seed++ {
					cfg := s.Config()
					cfg.Seed = seed
					cfg.Policy = policy
					log, err := Record(prog, cfg)
					if err != nil {
						b.Fatal(err)
					}
					exec, err := Replay(log)
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range DetectRaces(exec).Races {
						seen[r.Sites] = true
					}
				}
				races = len(seen)
			}
			b.ReportMetric(float64(races), "uniqueraces")
		})
	}
}

// BenchmarkOracleAblation measures classification with and without the
// §4.2.1 versioned-memory oracle (ablation A3): the oracle lets the
// virtual processor continue through reads outside the regions' live-ins.
func BenchmarkOracleAblation(b *testing.B) {
	s := workloads.Scenarios()[1]
	prog, err := s.Program()
	if err != nil {
		b.Fatal(err)
	}
	log, err := Record(prog, s.Config())
	if err != nil {
		b.Fatal(err)
	}
	for _, useOracle := range []bool{false, true} {
		name := "base"
		if useOracle {
			name = "oracle"
		}
		b.Run(name, func(b *testing.B) {
			var rf int
			for i := 0; i < b.N; i++ {
				res, err := AnalyzeLog(log, Options{UseOracle: useOracle})
				if err != nil {
					b.Fatal(err)
				}
				rf = 0
				for _, r := range res.Classification.Races {
					rf += r.RF
				}
			}
			b.ReportMetric(float64(rf), "rf-instances")
		})
	}
}

// BenchmarkSuiteCoverageScaling shows the paper's coverage lever: more
// recorded test cases per scenario accumulate more instances per race
// (and hence more confidence per verdict) at linear cost.
func BenchmarkSuiteCoverageScaling(b *testing.B) {
	for _, seeds := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("seeds=%d", seeds), func(b *testing.B) {
			var instances, races int
			for i := 0; i < b.N; i++ {
				run, err := RunSuiteSeeds(nil, seeds)
				if err != nil {
					b.Fatal(err)
				}
				instances = run.Merged.TotalInstances()
				races = len(run.Merged.Races)
			}
			b.ReportMetric(float64(instances), "instances")
			b.ReportMetric(float64(races), "uniqueraces")
		})
	}
}

// BenchmarkServiceScenario times the second perf workload: deep call
// stacks, heap churn, and locked accumulation (native vs full analysis).
func BenchmarkServiceScenario(b *testing.B) {
	s := workloads.ServiceScenario()
	prog, err := s.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		var steps uint64
		for i := 0; i < b.N; i++ {
			m, err := machine.New(prog, s.Config())
			if err != nil {
				b.Fatal(err)
			}
			steps = m.Run().TotalSteps
		}
		b.ReportMetric(float64(steps), "instructions")
	})
	b.Run("analyze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			log, err := Record(prog, s.Config())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := AnalyzeLog(log, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelClassification measures the offline-analysis wall
// clock with instance-level parallelism (a pure implementation lever the
// paper's offline setting invites).
func BenchmarkParallelClassification(b *testing.B) {
	log := getBrowseLog(b)
	exec, err := Replay(log)
	if err != nil {
		b.Fatal(err)
	}
	races := DetectRaces(exec)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Classify(exec, races, Options{Parallel: par})
			}
		})
	}
}

// BenchmarkMemoizedClassification measures the dual-order replay stage
// with the live-in fingerprint cache on and off, serial and fanned out —
// the tentpole's before/after in one grid. Each iteration classifies
// with a fresh per-Run cache (the Options zero value), so memo=on
// measures the steady within-execution hit pattern, not an ever-warmer
// cross-iteration cache. The hitrate metric reports the cache's hit
// fraction for the same workload.
func BenchmarkMemoizedClassification(b *testing.B) {
	log := getBrowseLog(b)
	exec, err := Replay(log)
	if err != nil {
		b.Fatal(err)
	}
	races := DetectRaces(exec)
	for _, memo := range []struct {
		name   string
		noMemo bool
	}{{"memo=on", false}, {"memo=off", true}} {
		for _, workers := range []int{1, 8} {
			memo, workers := memo, workers
			b.Run(fmt.Sprintf("%s/workers=%d", memo.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Classify(exec, races, Options{Parallel: workers, NoMemo: memo.noMemo})
				}
				b.StopTimer()
				reg := NewMetrics()
				Classify(exec, races, Options{Parallel: workers, NoMemo: memo.noMemo, Metrics: reg})
				snap := reg.Snapshot()
				h, m := snap.Counters["classify.memo.hits"], snap.Counters["classify.memo.misses"]
				if h+m > 0 {
					b.ReportMetric(float64(h)/float64(h+m), "hitrate")
				} else {
					b.ReportMetric(0, "hitrate")
				}
			})
		}
	}
}

// BenchmarkQuantumSensitivity varies the scheduler's preemption quantum:
// finer preemption exposes more racy interleavings per recording — the
// knob behind "extensively stress-tested build" in the paper's setup.
func BenchmarkQuantumSensitivity(b *testing.B) {
	s := workloads.Scenarios()[0]
	prog, err := s.Program()
	if err != nil {
		b.Fatal(err)
	}
	for _, quantum := range []int{1, 12, 96} {
		b.Run(fmt.Sprintf("quantum=%d", quantum), func(b *testing.B) {
			var instances int
			for i := 0; i < b.N; i++ {
				cfg := s.Config()
				cfg.MaxQuantum = quantum
				log, err := Record(prog, cfg)
				if err != nil {
					b.Fatal(err)
				}
				exec, err := Replay(log)
				if err != nil {
					b.Fatal(err)
				}
				instances = DetectRaces(exec).TotalInstances
			}
			b.ReportMetric(float64(instances), "instances")
		})
	}
}

// BenchmarkSuite measures the full suite drive at one worker versus a
// fanned-out pool — the wall-clock case for -jobs. Recording is serial
// in both; only the offline analysis fans out, so the gap is the
// parallelizable fraction the paper calls out (~280x of native is
// classification). On a single-core host the jobs>1 runs double as a
// pool-overhead measurement: they should track jobs=1 closely.
func BenchmarkSuite(b *testing.B) {
	bench := func(jobs int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workloads.RunSuiteOpts(workloads.SuiteOptions{Seeds: 2, Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("jobs=1", bench(1))
	if n := runtime.GOMAXPROCS(0); n > 1 {
		b.Run(fmt.Sprintf("jobs=%d", n), bench(0))
	}
	b.Run("jobs=8", bench(8))
}

// BenchmarkTimelineOverhead is the flight recorder's cost contract on
// the classify hot path, which calls Emit once per memo lookup. With no
// timeline attached (the default), a registry must add zero allocations
// over running with no registry at all — asserted, not just reported,
// so the CI bench smoke trips if an allocation sneaks onto the off
// path. The timeline=on case reports what turning the recorder on
// costs.
func BenchmarkTimelineOverhead(b *testing.B) {
	log := getBrowseLog(b)
	exec, err := Replay(log)
	if err != nil {
		b.Fatal(err)
	}
	races := DetectRaces(exec)
	classify := func(reg *Metrics) { Classify(exec, races, Options{Parallel: 1, Metrics: reg}) }

	classify(nil) // warm the shared caches outside the measurements
	base := testing.AllocsPerRun(5, func() { classify(nil) })

	b.Run("timeline=off", func(b *testing.B) {
		reg := NewMetrics()
		classify(reg) // populate the counter and span tables
		// One classify run performs hundreds of memo lookups, each with
		// an Emit on the hot path; if Emit allocated with the timeline
		// off, the delta would scale with the instance count. The few
		// allocations a warmed registry does add are per-run constants
		// (MemStats snapshots in the stage span), so the budget is a
		// small constant, not a per-instance allowance.
		if got := testing.AllocsPerRun(5, func() { classify(reg) }); got > base+4 {
			b.Errorf("timeline-off hot path allocates: %.1f allocs/op vs %.1f bare (budget +4)", got, base)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			classify(reg)
		}
	})
	b.Run("timeline=on", func(b *testing.B) {
		reg := NewMetrics()
		reg.EnableTimeline(0)
		classify(reg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			classify(reg)
		}
	})
}
