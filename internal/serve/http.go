package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/trace"
)

// uploadResponse is the JSON body of POST /v1/upload.
type uploadResponse struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	Err    string `json:"error,omitempty"`
}

// Handler mounts the service API:
//
//	POST /v1/upload          ingest one .rlog (202 accepted, 400
//	                         quarantined, 413 too large, 429 backpressure,
//	                         503 draining)
//	GET  /v1/jobs            every job, accept order, as JSON
//	GET  /v1/jobs/{id}       one job's state as JSON
//	GET  /v1/jobs/{id}/report  one finished job's verdict report as text
//	GET  /v1/report          the merged report over every finished job —
//	                         byte-identical to `racer analyze-dir` over
//	                         the same inputs
//	GET  /healthz            liveness (200 serving / 503 draining)
//	GET  /metrics            Prometheus exposition format
//	GET  /metrics.json       the same snapshot as JSON
//
// Every handler runs under a panic-recovery wrapper: a handler bug
// answers 500 and increments serve.http_panics instead of silently
// killing the connection's goroutine.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/upload", s.handleUpload)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleJobReport)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, s.reg.Snapshot().Prometheus())
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, s.reg.Snapshot().JSON())
	})
	return s.recoverWrap(mux)
}

// recoverWrap isolates handler panics: net/http would recover them
// anyway, but invisibly and per-connection; here they are counted,
// logged, and answered with a 500 so the chaos sweep can assert the
// daemon survived with serve.http_panics == 0.
func (s *Server) recoverWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.cHTTPPanics.Inc()
				s.reg.Logger().Error("http handler panic",
					"path", r.URL.Path, "panic", fmt.Sprint(v))
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleUpload ingests one replay log. The failure ladder, in order:
// draining (503 + Retry-After), oversized body (413), corrupt payload
// (job quarantined, 400 with the job id — the verdict "this input is
// bad" is itself durable state), backpressure (429 + Retry-After,
// nothing journaled), persistence failure (500, job quarantined).
// Only after the payload and its accept record are durable does the
// 202 go out: an acknowledged upload survives kill -9.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	s.cUploads.Inc()
	if s.isDraining() {
		s.cRejected.Inc()
		w.Header().Set("Retry-After", "10")
		writeJSON(w, http.StatusServiceUnavailable, uploadResponse{Err: "service is draining"})
		return
	}
	tenant := sanitizeLabel(r.URL.Query().Get("tenant"))
	if tenant == "" {
		tenant = "default"
	}
	label := sanitizeLabel(r.URL.Query().Get("label"))
	if label == "" {
		label = "upload.rlog"
	}

	// The body spools to disk as it arrives, never into memory: a
	// -max-upload body costs one copy buffer, not its full size, and the
	// spool file is already the durable payload — persistAccept only
	// fsyncs and renames it into place. The content hash is computed on
	// the same pass through the TeeReader.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	spool, err := os.CreateTemp(filepath.Join(s.cfg.DataDir, "jobs"), "up-*.spool")
	if err != nil {
		s.cRejected.Inc()
		writeJSON(w, http.StatusInternalServerError, uploadResponse{Err: "spooling upload: " + err.Error()})
		return
	}
	spoolName := spool.Name()
	persisted := false // once renamed into jobs/, the spool must survive
	defer func() {
		if !persisted {
			spool.Close()
			os.Remove(spoolName)
		}
	}()
	hash := sha256.New()
	size, err := io.Copy(spool, io.TeeReader(body, hash))
	if err != nil {
		s.cRejected.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, uploadResponse{
				Err: fmt.Sprintf("upload exceeds %d bytes", s.cfg.MaxUploadBytes)})
			return
		}
		writeJSON(w, http.StatusBadRequest, uploadResponse{Err: "truncated upload: " + err.Error()})
		return
	}
	sha := hex.EncodeToString(hash.Sum(nil))
	s.cSpooled.Add(uint64(size))

	// Decode before taking a queue slot: a corrupt log's verdict is
	// already known (quarantine), so it never competes with real work.
	// Decoding straight from the spool keeps a v2 container's residency
	// at one segment, not the whole file; salvage mode matches
	// analyze-dir, so a v2 upload with some corrupt thread segments still
	// analyzes its healthy threads. sched.Guard turns a decoder panic
	// into the same typed-error path.
	var log *trace.Log
	var faults []trace.ThreadFault
	derr := sched.Guard(s.reg, func() error {
		var err error
		log, faults, err = core.DecodeLogFrom(spool, size, core.DecodeOptions{
			Salvage: true, Metrics: s.reg,
		})
		return err
	})
	if derr != nil {
		j := s.newJob(tenant, label, sha, 0)
		j.mu.Lock()
		j.status = StatusQuarantined
		j.errText = derr.Error()
		j.mu.Unlock()
		close(j.persisted)
		s.jnl.append(record{Op: "accept", ID: j.id, Tenant: tenant, Label: label, SHA: sha})
		s.jnl.append(record{Op: "done", ID: j.id, Status: string(StatusQuarantined), Err: j.errText})
		s.cQuarantined.Inc()
		s.reg.EmitLabeled("serve.job.quarantined", label, uint64(idNumber(j.id)))
		s.reg.Logger().Warn("upload quarantined", "id", j.id, "label", label, "err", derr.Error())
		writeJSON(w, http.StatusBadRequest, uploadResponse{ID: j.id, Status: StatusQuarantined, Err: j.errText})
		return
	}
	for _, tf := range faults {
		s.reg.Logger().Warn("upload thread segment salvaged",
			"label", label, "segment", tf.Segment, "tid", tf.TID, "err", tf.Err.Error())
	}

	j := s.newJob(tenant, label, sha, log.Seed)
	j.mu.Lock()
	j.log = log
	j.mu.Unlock()
	if err := s.queue.Push(tenant, j); err != nil {
		// Backpressure: the job was never journaled, so a retried upload
		// is a brand-new job — no ghost resumes on restart.
		s.dropJob(j)
		s.cRejected.Inc()
		s.cBackpressure.Inc()
		w.Header().Set("Retry-After", s.retryAfter())
		status := http.StatusTooManyRequests
		msg := "queue full, retry later"
		switch {
		case errors.Is(err, sched.ErrTenantFull):
			msg = fmt.Sprintf("tenant %q queue full, retry later", tenant)
		case errors.Is(err, sched.ErrQueueClosed):
			status, msg = http.StatusServiceUnavailable, "service is draining"
		}
		writeJSON(w, status, uploadResponse{Err: msg})
		return
	}
	s.gQueue.Set(float64(s.queue.Len()))
	if err := s.persistAccept(j, spool); err != nil {
		// The job may already be in a worker's hands; quarantine it so
		// the unpersisted work is an explicit verdict, not silent loss.
		j.mu.Lock()
		if j.status == StatusQueued || j.status == StatusRunning {
			j.status = StatusQuarantined
			j.errText = "persistence failed: " + err.Error()
		}
		j.mu.Unlock()
		close(j.persisted)
		s.cQuarantined.Inc()
		s.reg.Logger().Error("upload persistence failed", "id", j.id, "err", err.Error())
		writeJSON(w, http.StatusInternalServerError, uploadResponse{ID: j.id, Status: StatusQuarantined, Err: j.errText})
		return
	}
	persisted = true
	close(j.persisted)
	s.cAccepted.Inc()
	s.reg.EmitLabeled("serve.job.accepted", label, uint64(idNumber(j.id)))
	writeJSON(w, http.StatusAccepted, uploadResponse{ID: j.id, Status: StatusQueued})
}

// retryAfter estimates when a queue slot will free: roughly the backlog
// divided by the worker count, floored at one second and capped at a
// minute.
func (s *Server) retryAfter() string {
	workers := sched.Normalize(s.cfg.Jobs, sched.DefaultJobs())
	secs := 1 + s.queue.Len()/workers
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	views := s.sortedViews()
	out := make([]view, len(views))
	copy(out, views)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookupJob(id string) (view, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return view{}, false
	}
	return j.view(), true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	v, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	switch v.Status {
	case StatusDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, v.report)
	case StatusQuarantined:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusConflict)
		fmt.Fprintf(w, "quarantined: %s\n", v.Err)
	default:
		http.Error(w, "job not finished", http.StatusAccepted)
	}
}

// handleReport renders the merged verdict over every finished job.
// Jobs still queued or running make the report a snapshot; the response
// says so via the X-Racer-Pending header.
func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request) {
	text, pending := s.MergedReport()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Racer-Pending", strconv.Itoa(pending))
	io.WriteString(w, text)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

// MergedReport renders the cross-job verdict exactly the way
// `racer analyze-dir` renders a directory: jobs sorted by label stand in
// for the sorted file listing, classifications of done jobs merge into
// one table, and quarantined jobs form the quarantine section with their
// position in that sorted order. Equal inputs therefore produce
// byte-identical text. It returns the report and the number of jobs not
// yet terminal (excluded from this snapshot).
//
// One restart-shaped caveat: jobs finished by an earlier process come
// back from the journal with their rendered per-job report but without
// the in-memory classification, so they merge into the count header and
// quarantine section but not the verdict table. /v1/jobs/{id}/report is
// exact for every job regardless of which process finished it.
func (s *Server) MergedReport() (text string, pending int) {
	views := s.sortedViews()
	var parts []*classify.Classification
	var quarantined []core.Quarantined
	analyzed := 0
	for i, v := range views {
		switch v.Status {
		case StatusDone:
			analyzed++
			if v.cls != nil {
				parts = append(parts, v.cls)
			}
		case StatusQuarantined:
			quarantined = append(quarantined, core.Quarantined{
				Index: i, Label: v.Label, Err: errors.New(v.Err),
			})
		default:
			pending++
		}
	}
	merged := classify.Merge(parts...)
	var b []byte
	b = fmt.Appendf(b, "analyzed %d recorded executions\n", analyzed)
	b = append(b, report.Summary(merged, report.SuiteTruth)...)
	b = append(b, '\n')
	b = append(b, report.BuildTable1(merged, report.SuiteTruth).Render()...)
	if len(quarantined) > 0 {
		b = append(b, '\n')
		b = append(b, report.QuarantineSection(quarantined)...)
	}
	return string(b), pending
}

// renderJobReport renders one job's verdict in the same shape as a
// single-file analyze-dir run, plus the verdict counts for the job's
// JSON view.
func renderJobReport(c *classify.Classification) (text string, benign, harmful int) {
	benign, harmful = c.CountByVerdict()
	var b []byte
	b = append(b, report.Summary(c, report.SuiteTruth)...)
	b = append(b, '\n')
	b = append(b, report.BuildTable1(c, report.SuiteTruth).Render()...)
	return string(b), benign, harmful
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
