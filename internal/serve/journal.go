package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"os"
	"sync"
)

// journalVersion stamps every record; a future incompatible layout
// bumps it and old records are ignored on replay instead of misread.
const journalVersion = 1

// record is one write-ahead journal line. Two operations cover the job
// lifecycle:
//
//   - "accept": the job exists — its payload is durable on disk and the
//     server has promised (202) to produce exactly one verdict for it.
//     Written before the upload response; a crash after this point
//     resumes the job.
//   - "done": the verdict — a classification (status "done", with the
//     rendered report and verdict counts) or a quarantine (status
//     "quarantined", with the typed error's text). A job with a done
//     record is never re-analyzed, which is what makes restart
//     duplicate-free.
//
// A crash can tear at most the final line (appends are sequential); a
// torn or otherwise undecodable line is skipped and counted, never
// fatal — losing a done record costs one re-analysis, not correctness,
// because equal inputs produce equal verdicts.
type record struct {
	V       int    `json:"v"`
	Op      string `json:"op"`
	ID      string `json:"id"`
	Tenant  string `json:"tenant,omitempty"`
	Label   string `json:"label,omitempty"`
	SHA     string `json:"sha256,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Status  string `json:"status,omitempty"`
	Benign  int    `json:"benign,omitempty"`
	Harmful int    `json:"harmful,omitempty"`
	Report  string `json:"report,omitempty"`
	Err     string `json:"err,omitempty"`
}

// journal is the append-only job log. Appends are serialized and
// fsynced: an acknowledged accept or done record survives kill -9.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal replays the journal at path (returning every decodable
// record in order and the count of skipped undecodable lines) and opens
// it for appending.
func openJournal(path string) (*journal, []record, int, error) {
	var recs []record
	skipped := 0
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			var r record
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil || r.V != journalVersion || r.ID == "" {
				skipped++
				continue
			}
			recs = append(recs, r)
		}
		if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
			// An unreadable tail (torn final write, media error) degrades
			// to losing the records after it, not to a dead service.
			skipped++
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	return &journal{f: f}, recs, skipped, nil
}

// append writes one record durably (write + fsync) before returning.
func (j *journal) append(r record) error {
	r.V = journalVersion
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("serve: journal closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close stops the journal; subsequent appends fail.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
