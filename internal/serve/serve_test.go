package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// recordPayload records a scenario and returns its compressed .rlog
// container — what a client would upload.
func recordPayload(t *testing.T, name string) []byte {
	t.Helper()
	s, err := workloads.FindScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := core.Record(prog, s.Config())
	if err != nil {
		t.Fatal(err)
	}
	return trace.Compress(trace.Marshal(log))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// upload posts body as an .rlog and returns the response (body drained
// into the returned buffer).
func upload(t *testing.T, ts *httptest.Server, tenant, label string, body []byte) (*http.Response, string) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/upload?tenant=%s&label=%s", ts.URL, tenant, label)
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.String()
}

// jobID pulls the id out of an upload response body.
func jobID(t *testing.T, body string) string {
	t.Helper()
	i := strings.Index(body, `"id":"`)
	if i < 0 {
		t.Fatalf("no job id in response %q", body)
	}
	rest := body[i+len(`"id":"`):]
	return rest[:strings.IndexByte(rest, '"')]
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Server, id string) view {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := s.lookupJob(id); ok && (v.Status == StatusDone || v.Status == StatusQuarantined) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	v, _ := s.lookupJob(id)
	t.Fatalf("job %s not terminal after 30s (status %s)", id, v.Status)
	return view{}
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.String()
}

func TestUploadAnalyzeReport(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	payload := recordPayload(t, "exec01")
	resp, body := upload(t, ts, "teamA", "exec01-0.rlog", payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload status = %d, body %s", resp.StatusCode, body)
	}
	id := jobID(t, body)
	v := waitTerminal(t, srv, id)
	if v.Status != StatusDone {
		t.Fatalf("job status = %s (err %q)", v.Status, v.Err)
	}
	if v.report == "" {
		t.Fatal("done job has empty report")
	}
	resp, text := get(t, ts.URL+"/v1/jobs/"+id+"/report")
	if resp.StatusCode != http.StatusOK || text != v.report {
		t.Fatalf("job report status %d, text mismatch = %v", resp.StatusCode, text != v.report)
	}
	resp, merged := get(t, ts.URL+"/v1/report")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merged report status = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(merged, "analyzed 1 recorded executions\n") {
		t.Fatalf("merged report header wrong:\n%s", merged)
	}
	if resp.Header.Get("X-Racer-Pending") != "0" {
		t.Fatalf("pending = %q, want 0", resp.Header.Get("X-Racer-Pending"))
	}
	resp, list := get(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK || !strings.Contains(list, id) {
		t.Fatalf("jobs listing missing %s: %s", id, list)
	}
}

func TestCorruptUploadQuarantined(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Registry: reg})
	resp, body := upload(t, ts, "teamA", "bad.rlog", []byte("not a replay log at all"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	id := jobID(t, body)
	v, ok := srv.lookupJob(id)
	if !ok || v.Status != StatusQuarantined || v.Err == "" {
		t.Fatalf("corrupt job = %+v", v)
	}
	// The quarantine is part of the report, exactly like analyze-dir.
	_, merged := get(t, ts.URL+"/v1/report")
	if !strings.Contains(merged, "quarantined: 1 input(s) excluded from the analysis") ||
		!strings.Contains(merged, "bad.rlog") {
		t.Fatalf("merged report missing quarantine section:\n%s", merged)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after corrupt upload = %d", resp.StatusCode)
	}
	if got := reg.Snapshot().Counters["serve.jobs_quarantined"]; got != 1 {
		t.Fatalf("serve.jobs_quarantined = %d, want 1", got)
	}
	// A quarantined job's report endpoint reports the quarantine, not 200.
	if resp, _ := get(t, ts.URL+"/v1/jobs/"+id+"/report"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("quarantined job report status = %d, want 409", resp.StatusCode)
	}
}

func TestUploadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxUploadBytes: 128})
	resp, _ := upload(t, ts, "t", "big.rlog", bytes.Repeat([]byte{0xab}, 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload status = %d, want 413", resp.StatusCode)
	}
}

// TestBackpressure saturates a tiny queue behind stalled workers and
// asserts the ingest contract: per-tenant overflow answers 429 with a
// Retry-After hint while other tenants still get slots, and global
// overflow answers 429 for everyone. Nothing rejected is journaled, so
// a restart resurrects none of it.
func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	setTestHookStallAnalysis(func(string) { <-block })

	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Jobs: 1, QueueCap: 4, TenantCap: 2, Registry: reg})
	// Release the stalled worker and let every accepted job finish before
	// cleanup tears the data dir down under the analysis goroutines.
	defer func() {
		setTestHookStallAnalysis(nil)
		close(block)
		for _, v := range srv.sortedViews() {
			waitTerminal(t, srv, v.ID)
		}
	}()
	payload := recordPayload(t, "exec01")

	// First upload: popped by the (stalled) worker, queue empty again.
	resp, _ := upload(t, ts, "loud", "l0.rlog", payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload 0 = %d", resp.StatusCode)
	}
	waitQueueEmpty(t, srv)
	// Fill tenant "loud" to its cap of 2.
	for i := 1; i <= 2; i++ {
		if resp, body := upload(t, ts, "loud", fmt.Sprintf("l%d.rlog", i), payload); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("upload %d = %d (%s)", i, resp.StatusCode, body)
		}
	}
	// Tenant overflow: 429 + Retry-After, and the noisy tenant's rejection
	// must not take the quiet tenant's slot.
	resp, body := upload(t, ts, "loud", "l3.rlog", payload)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant overflow = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(body, "tenant") {
		t.Fatalf("tenant overflow body %q does not name the tenant cap", body)
	}
	if resp, _ := upload(t, ts, "quiet", "q0.rlog", payload); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quiet tenant rejected while loud tenant was at cap: %d", resp.StatusCode)
	}
	if resp, _ := upload(t, ts, "quiet", "q1.rlog", payload); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quiet tenant second upload = %d", resp.StatusCode)
	}
	// Global overflow: queue holds 4, a third tenant gets 429 too.
	resp, _ = upload(t, ts, "other", "o0.rlog", payload)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("global overflow = %d, want 429", resp.StatusCode)
	}
	if got := reg.Snapshot().Counters["serve.backpressure_429"]; got != 2 {
		t.Fatalf("serve.backpressure_429 = %d, want 2", got)
	}
	// Rejected uploads were never journaled: the journal holds exactly
	// the five accepts.
	accepts := countJournalOps(t, srv.cfg.DataDir, "accept")
	if accepts != 5 {
		t.Fatalf("journal accepts = %d, want 5", accepts)
	}
}

func waitQueueEmpty(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.queue.Len() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("queue never drained to the stalled worker")
}

func countJournalOps(t *testing.T, dataDir, op string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dataDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), fmt.Sprintf(`"op":%q`, op))
}

// TestDeadlineQuarantine wedges one job past the per-job deadline and
// asserts it is quarantined with the typed *DeadlineError while the
// worker moves on to other work.
func TestDeadlineQuarantine(t *testing.T) {
	release := make(chan struct{})
	setTestHookStallAnalysis(func(label string) {
		if label == "stall.rlog" {
			<-release
		}
	})
	defer func() { setTestHookStallAnalysis(nil) }()

	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Jobs: 1, JobDeadline: 500 * time.Millisecond, Registry: reg})
	payload := recordPayload(t, "exec01")
	_, body := upload(t, ts, "t", "stall.rlog", payload)
	id := jobID(t, body)
	v := waitTerminal(t, srv, id)
	if v.Status != StatusQuarantined {
		t.Fatalf("stalled job status = %s, want quarantined", v.Status)
	}
	wantErr := (&DeadlineError{JobID: id, Deadline: 500 * time.Millisecond}).Error()
	if v.Err != wantErr {
		t.Fatalf("stalled job err = %q, want %q", v.Err, wantErr)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.deadline_timeouts"]; got != 1 {
		t.Fatalf("serve.deadline_timeouts = %d, want 1", got)
	}
	if got := snap.Gauges["serve.abandoned_analyses"]; got != 1 {
		t.Fatalf("serve.abandoned_analyses = %v, want 1 while the goroutine is wedged", got)
	}
	// The worker is free: a healthy job completes while the stalled
	// goroutine is still wedged.
	_, body = upload(t, ts, "t", "ok.rlog", payload)
	if v := waitTerminal(t, srv, jobID(t, body)); v.Status != StatusDone {
		t.Fatalf("follow-up job = %s (err %q)", v.Status, v.Err)
	}
	// Releasing the wedged goroutine drains the abandoned gauge and its
	// late result is dropped: the job stays quarantined.
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Gauges["serve.abandoned_analyses"] == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Snapshot().Gauges["serve.abandoned_analyses"]; got != 0 {
		t.Fatalf("serve.abandoned_analyses = %v after release, want 0", got)
	}
	if v, _ := srv.lookupJob(id); v.Status != StatusQuarantined {
		t.Fatalf("late result overwrote the deadline quarantine: %s", v.Status)
	}
}

// TestCrashRecoveryResume is the kill-mid-batch contract: jobs accepted
// (202) but unfinished when the process dies are resumed by the next
// process over the same data dir, finish with verdicts byte-identical
// to an uninterrupted run, and no job gets two verdicts.
func TestCrashRecoveryResume(t *testing.T) {
	payloads := map[string][]byte{
		"exec01-0.rlog": recordPayload(t, "exec01"),
		"exec02-0.rlog": recordPayload(t, "exec02"),
		"exec03-0.rlog": recordPayload(t, "exec03"),
	}
	labels := []string{"exec01-0.rlog", "exec02-0.rlog", "exec03-0.rlog"}

	// Reference: an uninterrupted server over the same inputs.
	want := map[string]string{}
	{
		ref, ts := newTestServer(t, Config{})
		for _, label := range labels {
			_, body := upload(t, ts, "t", label, payloads[label])
			v := waitTerminal(t, ref, jobID(t, body))
			if v.Status != StatusDone {
				t.Fatalf("reference %s = %s (%q)", label, v.Status, v.Err)
			}
			want[label] = v.report
		}
	}

	// Server A accepts the batch but every analysis wedges; then it
	// "dies" with the journal holding accepts and no dones.
	dataDir := t.TempDir()
	block := make(chan struct{})
	setTestHookStallAnalysis(func(string) { <-block })
	a, ts := newTestServer(t, Config{DataDir: dataDir, Jobs: 2})
	for _, label := range labels {
		if resp, body := upload(t, ts, "t", label, payloads[label]); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("upload %s = %d (%s)", label, resp.StatusCode, body)
		}
	}
	// Simulated kill: no Shutdown, no drain — just cut A off from its
	// durable state so its wedged goroutines can write nothing more.
	a.queue.Drain()
	a.jnl.Close()
	a.store.Close()
	setTestHookStallAnalysis(nil)

	// Server B over the same data dir resumes and finishes the batch.
	b, err := New(Config{DataDir: dataDir, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resumed := b.Start(); resumed != 3 {
		t.Fatalf("resumed = %d jobs, want 3", resumed)
	}
	for _, v := range b.sortedViews() {
		got := waitTerminal(t, b, v.ID)
		if got.Status != StatusDone {
			t.Fatalf("resumed %s = %s (%q)", got.Label, got.Status, got.Err)
		}
		if !got.Resumed {
			t.Errorf("job %s not marked resumed", got.ID)
		}
		if got.report != want[got.Label] {
			t.Errorf("resumed %s report differs from uninterrupted run:\n--- resumed\n%s\n--- uninterrupted\n%s",
				got.Label, got.report, want[got.Label])
		}
	}
	// Exactly one verdict per job: 3 accepts, 3 dones, no duplicates.
	if n := countJournalOps(t, dataDir, "accept"); n != 3 {
		t.Fatalf("journal accepts = %d, want 3", n)
	}
	if n := countJournalOps(t, dataDir, "done"); n != 3 {
		t.Fatalf("journal dones = %d, want 3", n)
	}

	// A third process over the same dir must re-analyze nothing.
	c, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	if resumed := c.Start(); resumed != 0 {
		t.Fatalf("finished batch resumed %d jobs, want 0", resumed)
	}
	for _, v := range c.sortedViews() {
		if v.Status != StatusDone || v.report != want[v.Label] {
			t.Fatalf("restored %s: status %s, report match %v", v.Label, v.Status, v.report == want[v.Label])
		}
	}
	if n := countJournalOps(t, dataDir, "done"); n != 3 {
		t.Fatalf("journal dones after restart = %d, want 3 (no duplicate verdicts)", n)
	}
	// A's wedged analysis goroutines stay parked on block for the rest of
	// the test binary's life — releasing them here would race their memo
	// writes against the TempDir cleanup.
	_ = block
}

// TestWarmPersistentMemo: verdicts computed by one process are memo
// hits for the next process over the same data dir.
func TestWarmPersistentMemo(t *testing.T) {
	dataDir := t.TempDir()
	payload := recordPayload(t, "exec01")

	regA := obs.NewRegistry()
	a, ts := newTestServer(t, Config{DataDir: dataDir, Registry: regA})
	_, body := upload(t, ts, "t", "exec01-0.rlog", payload)
	if v := waitTerminal(t, a, jobID(t, body)); v.Status != StatusDone {
		t.Fatalf("first run = %s (%q)", v.Status, v.Err)
	}
	if regA.Snapshot().Counters["memostore.hits"] != 0 {
		t.Fatal("cold store reported hits")
	}
	if err := a.Shutdown(testCtx(t)); err != nil {
		t.Fatal(err)
	}

	regB := obs.NewRegistry()
	b, ts2 := newTestServer(t, Config{DataDir: dataDir, Registry: regB})
	_, body = upload(t, ts2, "t", "exec01-1.rlog", payload)
	if v := waitTerminal(t, b, jobID(t, body)); v.Status != StatusDone {
		t.Fatalf("warm run = %s (%q)", v.Status, v.Err)
	}
	snap := regB.Snapshot()
	if hits := snap.Counters["memostore.hits"]; hits == 0 {
		t.Fatalf("warm persistent memo had no hits (misses %d)", snap.Counters["memostore.misses"])
	}
}

// TestGracefulShutdown: draining stops intake with 503 while finishing
// accepted work, and a drained server reports clean.
func TestGracefulShutdown(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	payload := recordPayload(t, "exec01")
	_, body := upload(t, ts, "t", "exec01-0.rlog", payload)
	id := jobID(t, body)
	if err := srv.Shutdown(testCtx(t)); err != nil {
		t.Fatalf("shutdown = %v", err)
	}
	if v, _ := srv.lookupJob(id); v.Status != StatusDone {
		t.Fatalf("accepted job after drain = %s, want done", v.Status)
	}
	resp, _ := upload(t, ts, "t", "late.rlog", payload)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(testCtx(t)); err != nil {
		t.Fatalf("second shutdown = %v", err)
	}
}

// TestServeIsDeterministicAcrossWorkerCounts: the merged report is
// byte-identical at any worker count, upload order notwithstanding.
func TestServeIsDeterministicAcrossWorkerCounts(t *testing.T) {
	payloads := map[string][]byte{
		"exec01-0.rlog": recordPayload(t, "exec01"),
		"exec02-0.rlog": recordPayload(t, "exec02"),
		"exec04-0.rlog": recordPayload(t, "exec04"),
	}
	run := func(jobs int, order []string) string {
		srv, ts := newTestServer(t, Config{Jobs: jobs})
		for _, label := range order {
			_, body := upload(t, ts, "t", label, payloads[label])
			defer waitTerminal(t, srv, jobID(t, body))
		}
		for _, v := range srv.sortedViews() {
			waitTerminal(t, srv, v.ID)
		}
		text, pending := srv.MergedReport()
		if pending != 0 {
			t.Fatalf("pending = %d after all jobs terminal", pending)
		}
		return text
	}
	serial := run(1, []string{"exec01-0.rlog", "exec02-0.rlog", "exec04-0.rlog"})
	parallel := run(4, []string{"exec04-0.rlog", "exec01-0.rlog", "exec02-0.rlog"})
	if serial != parallel {
		t.Fatalf("merged report differs across worker counts:\n--- jobs=1\n%s\n--- jobs=4\n%s", serial, parallel)
	}
}

// TestStaleSpoolSweep: spool files orphaned by a crash between
// CreateTemp and the rename into place are removed on the next startup,
// while real job payloads survive the sweep.
func TestStaleSpoolSweep(t *testing.T) {
	dataDir := t.TempDir()
	jobs := filepath.Join(dataDir, "jobs")
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := []string{"up-123456.spool", "up-987654.tmp"}
	for _, name := range stale {
		if err := os.WriteFile(filepath.Join(jobs, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	payload := filepath.Join(jobs, "job-000001.rlog")
	if err := os.WriteFile(payload, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{DataDir: dataDir, Registry: obs.NewRegistry()}); err != nil {
		t.Fatal(err)
	}
	for _, name := range stale {
		if _, err := os.Stat(filepath.Join(jobs, name)); !os.IsNotExist(err) {
			t.Errorf("%s survived startup; stale spools must be swept", name)
		}
	}
	if _, err := os.Stat(payload); err != nil {
		t.Errorf("job payload swept with the stale spools: %v", err)
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestUploadSpoolsNotBuffers: a max-size upload streams into the spool
// file as it arrives instead of being read into memory, so the ingest
// path's allocations stay far below the body size. The body is junk
// that fails the magic sniff, so decode reads five bytes and what's
// measured is ingest itself, not the decoded log.
func TestUploadSpoolsNotBuffers(t *testing.T) {
	const bodySize = 16 << 20
	srv, err := New(Config{DataDir: t.TempDir(), MaxUploadBytes: bodySize, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): a junk upload quarantines at decode, so its verdict is
	// terminal without workers — and no worker goroutine muddies the
	// allocation measurement.
	h := srv.Handler()
	body := bytes.Repeat([]byte{0x5a}, bodySize)

	serveUpload := func() int {
		req := httptest.NewRequest("POST", "/v1/upload?label=big.rlog", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	serveUpload() // warm-up: lazily allocated handler state doesn't count

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if code := serveUpload(); code != http.StatusBadRequest {
		t.Fatalf("junk upload status = %d, want 400", code)
	}
	runtime.ReadMemStats(&after)
	delta := int64(after.TotalAlloc - before.TotalAlloc)
	if delta > bodySize/4 {
		t.Fatalf("upload allocated %d bytes handling a %d-byte body; ingest is buffering, not spooling",
			delta, bodySize)
	}
	// The body still made it to disk in full: both uploads quarantined
	// after spooling every byte.
	if got := srv.cSpooled.Value(); got != 2*bodySize {
		t.Fatalf("serve.spooled_bytes = %d, want %d", got, 2*bodySize)
	}
}
