// Package serve is the long-running analysis service: an HTTP daemon
// that ingests .rlog uploads, queues them through a bounded multi-tenant
// queue, analyzes each with the standard offline pipeline
// (core.AnalyzeLogs), and serves per-job verdicts, a merged report that
// is byte-identical to one-shot `racer analyze-dir` over the same
// inputs, and the Prometheus endpoint — all from one process engineered
// for failure first:
//
//   - Backpressure, not collapse: the ingest queue is bounded globally
//     and per tenant (sched.FairQueue); a full queue answers 429 with a
//     Retry-After hint, and round-robin dispatch keeps one noisy tenant
//     from starving the rest.
//   - Quarantine, not crashes: corrupt uploads become labeled
//     quarantined jobs (HTTP 400), analysis panics are isolated per job
//     (sched.Guard inside core.AnalyzeLogs), and a job that exceeds its
//     deadline is quarantined with a typed *DeadlineError while its
//     abandoned goroutine is counted, never joined — a poisoned log
//     costs one job, not the process.
//   - Crash safety, not amnesia: every accepted upload is persisted
//     (atomic tmp+rename) and journaled before the 202 goes out; every
//     verdict is journaled when produced. kill -9 at any point resumes
//     the un-verdicted jobs on restart and never re-analyzes a job that
//     already has a verdict, so restarts emit no duplicate and lose no
//     pending verdicts.
//   - Economics that survive restarts: the classification memo is
//     backed by the persistent memostore, so replay verdicts computed
//     for one process (or tenant) are hits for every later one.
//   - Graceful shutdown: Shutdown stops intake (503), abandons the
//     un-started backlog to the journal, drains in-flight jobs under a
//     deadline, and flushes the memo store and journal.
//
// docs/SERVICE.md documents the HTTP API, the persistence layout, and
// the failure-mode contract.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/memostore"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: accepted and journaled, waiting for a worker (or,
	// after Shutdown, waiting for the next process to resume it).
	StatusQueued Status = "queued"
	// StatusRunning: a worker is analyzing the job.
	StatusRunning Status = "running"
	// StatusDone: analyzed; the verdict report is final and journaled.
	StatusDone Status = "done"
	// StatusQuarantined: the job failed — corrupt upload, analysis
	// panic, replay error, or deadline timeout — with a typed, labeled
	// error. Terminal and journaled, like StatusDone.
	StatusQuarantined Status = "quarantined"
)

// DeadlineError is the typed quarantine error for a job whose analysis
// exceeded the per-job deadline — the service-level analogue of a
// replay that fails instead of wedging: the worker moves on, the job
// lands in quarantine, and the stalled goroutine is accounted for on
// the serve.abandoned gauge until it unwinds.
type DeadlineError struct {
	JobID    string
	Deadline time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("serve: job %s exceeded its %v analysis deadline", e.JobID, e.Deadline)
}

// Config tunes the daemon. The zero value of every field but DataDir is
// usable; DataDir is required.
type Config struct {
	// DataDir roots the service's persistent state: journal.jsonl,
	// jobs/ (accepted payloads), and memo/ (the persistent replay
	// cache). One DataDir must be owned by one process at a time.
	DataDir string
	// Jobs is the analysis worker count (0 = GOMAXPROCS).
	Jobs int
	// QueueCap bounds the global ingest queue (0 = 64). A full queue
	// answers 429.
	QueueCap int
	// TenantCap bounds any one tenant's share of the queue
	// (0 = QueueCap/4, at least 1).
	TenantCap int
	// JobDeadline bounds one job's analysis; exceeding it quarantines
	// the job with a *DeadlineError (0 = 2 minutes; negative disables).
	JobDeadline time.Duration
	// MaxUploadBytes bounds one upload body (0 = 64 MiB). Larger
	// uploads answer 413.
	MaxUploadBytes int64
	// MemoMaxBytes caps the persistent memo store
	// (0 = memostore.DefaultMaxBytes; negative unbounded).
	MemoMaxBytes int64
	// DB, when set, suppresses races a developer marked benign.
	DB *classify.DB
	// Predict adds the prediction stage to every job's analysis:
	// feasible reorderings of the uploaded schedule are classified by
	// the same dual-order replay and appended to the job report, and
	// their verdicts count toward the job's benign/harmful totals.
	Predict bool
	// PredictWindow bounds the prediction solver's search distance
	// (0 = the predict package default).
	PredictWindow int
	// Registry receives the serve.*, memostore.*, and pipeline metrics
	// (nil is off, as everywhere in obs).
	Registry *obs.Registry
}

// job is one upload's full lifecycle. The mutex guards the mutable
// verdict fields; identity fields are immutable after creation.
type job struct {
	id     string
	tenant string
	label  string
	sha    string
	seed   int64

	// persisted closes once the accept record and payload are durable
	// (or the job is terminally quarantined at ingest); workers wait on
	// it so a verdict can never be journaled before its accept.
	persisted chan struct{}

	mu      sync.Mutex
	status  Status
	log     *trace.Log               // decoded input; nil once terminal
	cls     *classify.Classification // resident verdict (this process)
	report  string
	benign  int
	harmful int
	errText string
	resumed bool
}

// view is a consistent copy of a job's mutable state.
type view struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant"`
	Label   string `json:"label"`
	Status  Status `json:"status"`
	Benign  int    `json:"benign,omitempty"`
	Harmful int    `json:"harmful,omitempty"`
	Err     string `json:"error,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`

	report string
	cls    *classify.Classification
}

func (j *job) view() view {
	j.mu.Lock()
	defer j.mu.Unlock()
	return view{
		ID: j.id, Tenant: j.tenant, Label: j.label, Status: j.status,
		Benign: j.benign, Harmful: j.harmful, Err: j.errText,
		Resumed: j.resumed, report: j.report, cls: j.cls,
	}
}

// testHookStallAnalysis, when set, runs at the top of every analysis
// goroutine — the lever the deadline and crash-recovery tests use to
// wedge a job deterministically. Access goes through the mutex: the
// tests swap the hook while analysis goroutines read it.
var (
	stallHookMu           sync.Mutex
	testHookStallAnalysis func(label string)
)

func stallHook() func(string) {
	stallHookMu.Lock()
	defer stallHookMu.Unlock()
	return testHookStallAnalysis
}

func setTestHookStallAnalysis(f func(string)) {
	stallHookMu.Lock()
	testHookStallAnalysis = f
	stallHookMu.Unlock()
}

// Server is the daemon. Build with New, start the workers with Start,
// mount Handler on an http.Server, and stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	memo  *classify.Memo
	store *memostore.Store
	jnl   *journal
	queue *sched.FairQueue[*job]

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // accept order
	nextID   int64
	draining bool
	resume   []*job // accepted-but-unverdicted jobs from the journal

	wg        sync.WaitGroup
	abandoned atomic.Int64

	cUploads, cAccepted, cRejected, cBackpressure *obs.Counter
	cDone, cQuarantined, cDeadline, cResumed      *obs.Counter
	cHTTPPanics, cJournalSkipped, cSpooled        *obs.Counter
	gQueue, gAbandoned, gDraining, gJobs          *obs.Gauge
}

// New opens (or reopens) a server over cfg.DataDir: it restores the job
// table from the journal, re-verifies and re-queues every accepted job
// without a verdict, sweeps payloads of finished jobs, and opens the
// persistent memo store. It does not start workers — call Start.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: Config.DataDir is required")
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 64
	}
	if cfg.JobDeadline == 0 {
		cfg.JobDeadline = 2 * time.Minute
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 64 << 20
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	// Spool files only become payloads via rename in persistAccept; any
	// up-* left in jobs/ is an upload aborted by a crash. No handler is
	// live yet, so sweeping here can never race an in-flight upload.
	for _, pat := range []string{"up-*.spool", "up-*.tmp"} {
		stale, _ := filepath.Glob(filepath.Join(cfg.DataDir, "jobs", pat))
		for _, f := range stale {
			os.Remove(f)
		}
	}
	reg := cfg.Registry
	store, err := memostore.Open(filepath.Join(cfg.DataDir, "memo"), memostore.Options{
		MaxBytes: cfg.MemoMaxBytes, Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	jnl, recs, skipped, err := openJournal(filepath.Join(cfg.DataDir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		reg:           reg,
		memo:          classify.NewMemoBacked(store),
		store:         store,
		jnl:           jnl,
		queue:         sched.NewFairQueue[*job](cfg.QueueCap, cfg.TenantCap),
		jobs:          map[string]*job{},
		cUploads:      reg.Counter("serve.uploads"),
		cAccepted:     reg.Counter("serve.accepted"),
		cRejected:     reg.Counter("serve.rejected"),
		cBackpressure: reg.Counter("serve.backpressure_429"),
		cDone:         reg.Counter("serve.jobs_done"),
		cQuarantined:  reg.Counter("serve.jobs_quarantined"),
		cDeadline:     reg.Counter("serve.deadline_timeouts"),
		cResumed:      reg.Counter("serve.jobs_resumed"),
		cHTTPPanics:   reg.Counter("serve.http_panics"),
		cJournalSkipped: reg.Counter(
			"serve.journal_skipped_lines"),
		cSpooled:   reg.Counter("serve.spooled_bytes"),
		gQueue:     reg.Gauge("serve.queue_depth"),
		gAbandoned: reg.Gauge("serve.abandoned_analyses"),
		gDraining:  reg.Gauge("serve.draining"),
		gJobs:      reg.Gauge("serve.jobs"),
	}
	if skipped > 0 {
		s.cJournalSkipped.Add(uint64(skipped))
		reg.Logger().Warn("journal: skipped undecodable lines", "lines", skipped)
	}
	s.restore(recs)
	return s, nil
}

// restore rebuilds the job table from journal records: jobs with a done
// record come back terminal (their verdicts are final — never re-run);
// accepts without a done record are re-verified against their stored
// payload and staged for re-analysis.
func (s *Server) restore(recs []record) {
	dones := map[string]record{}
	for _, r := range recs {
		if r.Op == "done" {
			dones[r.ID] = r
		}
	}
	for _, r := range recs {
		if r.Op != "accept" {
			continue
		}
		if _, dup := s.jobs[r.ID]; dup {
			continue // duplicated accept line; first wins
		}
		j := &job{
			id: r.ID, tenant: r.Tenant, label: r.Label, sha: r.SHA,
			seed: r.Seed, persisted: closedChan(), resumed: true,
		}
		if n := idNumber(r.ID); n >= s.nextID {
			s.nextID = n
		}
		if d, ok := dones[r.ID]; ok {
			j.status = StatusQuarantined
			if d.Status == string(StatusDone) {
				j.status = StatusDone
			}
			j.report, j.benign, j.harmful, j.errText = d.Report, d.Benign, d.Harmful, d.Err
			// Terminal jobs no longer need their payload.
			os.Remove(s.payloadPath(j.id))
		} else {
			s.restorePending(j)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	s.gJobs.Set(float64(len(s.jobs)))
}

// restorePending reloads an accepted-but-unverdicted job's payload and
// stages it for analysis; any failure — missing payload, digest
// mismatch, decode error — quarantines the job (journaled immediately,
// so the failure is not rediscovered on every restart). Like ingest,
// the payload is hashed and decoded by streaming, never read whole.
func (s *Server) restorePending(j *job) {
	var log *trace.Log
	var size int64
	f, err := os.Open(s.payloadPath(j.id))
	if err == nil {
		defer f.Close()
		hash := sha256.New()
		size, err = io.Copy(hash, f)
		if err == nil && j.sha != "" {
			if sum := hex.EncodeToString(hash.Sum(nil)); sum != j.sha {
				err = fmt.Errorf("serve: stored payload digest mismatch (journal %s, disk %s)", j.sha, sum)
			}
		}
	}
	if err == nil {
		gerr := sched.Guard(s.reg, func() error {
			var faults []trace.ThreadFault
			var derr error
			log, faults, derr = core.DecodeLogFrom(f, size, core.DecodeOptions{
				Salvage: true, Metrics: s.reg,
			})
			for _, tf := range faults {
				s.reg.Logger().Warn("resume: thread segment salvaged",
					"id", j.id, "segment", tf.Segment, "tid", tf.TID, "err", tf.Err.Error())
			}
			return derr
		})
		err = gerr
	}
	if err != nil {
		j.status = StatusQuarantined
		j.errText = err.Error()
		s.jnl.append(record{Op: "done", ID: j.id, Status: string(StatusQuarantined), Err: j.errText})
		s.cQuarantined.Inc()
		s.reg.Logger().Warn("resume: job quarantined", "id", j.id, "label", j.label, "err", err.Error())
		return
	}
	j.status = StatusQueued
	j.log = log
	s.resume = append(s.resume, j)
}

// Start launches the analysis workers and feeds resumed jobs back into
// the queue. It returns the number of jobs staged for resumption.
func (s *Server) Start() int {
	workers := sched.Normalize(s.cfg.Jobs, sched.DefaultJobs())
	s.reg.Gauge("serve.workers").Set(float64(workers))
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker(w)
	}
	s.mu.Lock()
	resume := s.resume
	s.resume = nil
	s.mu.Unlock()
	if len(resume) > 0 {
		s.cResumed.Add(uint64(len(resume)))
		s.reg.Logger().Info("resuming journaled jobs", "jobs", len(resume))
		// The backlog can exceed the queue caps (they bound ingest, not
		// recovery), so a feeder retries until the drain makes room.
		go s.feedResumed(resume)
	}
	return len(resume)
}

// feedResumed pushes restored jobs into the queue, yielding to the
// drain whenever the queue is full. If the server shuts down first, the
// remaining jobs stay journaled for the next process.
func (s *Server) feedResumed(resume []*job) {
	for _, j := range resume {
		for {
			err := s.queue.Push(j.tenant, j)
			if err == nil {
				s.gQueue.Set(float64(s.queue.Len()))
				break
			}
			if err == sched.ErrQueueClosed {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func (s *Server) worker(w int) {
	defer s.wg.Done()
	s.reg.Emit("serve.worker.start", uint64(w))
	defer s.reg.Emit("serve.worker.stop", uint64(w))
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.gQueue.Set(float64(s.queue.Len()))
		s.runJob(j)
	}
}

// jobOutcome is what one analysis attempt produced.
type jobOutcome struct {
	cls     *classify.Classification
	report  string
	benign  int
	harmful int
	err     error
}

// runJob drives one job to a terminal state, enforcing the per-job
// deadline. The analysis runs in its own goroutine so a wedged replay
// stalls that goroutine, not the worker: on timeout the job is
// quarantined with a typed *DeadlineError and the abandoned goroutine
// is tracked on serve.abandoned_analyses until it unwinds.
func (s *Server) runJob(j *job) {
	<-j.persisted
	j.mu.Lock()
	if j.status != StatusQueued {
		j.mu.Unlock()
		return // quarantined at ingest (persist failure) before a worker saw it
	}
	j.status = StatusRunning
	log := j.log
	j.mu.Unlock()
	s.reg.EmitLabeled("serve.job.start", j.label, uint64(idNumber(j.id)))

	outCh := make(chan jobOutcome, 1)
	go func() {
		if hook := stallHook(); hook != nil {
			hook(j.label)
		}
		outCh <- s.analyze(j, log)
	}()
	if s.cfg.JobDeadline < 0 {
		s.finish(j, <-outCh)
		return
	}
	t := time.NewTimer(s.cfg.JobDeadline)
	defer t.Stop()
	select {
	case out := <-outCh:
		s.finish(j, out)
	case <-t.C:
		s.cDeadline.Inc()
		// Gauge before verdict: anyone who observes the quarantined
		// terminal state must already see the abandoned goroutine.
		s.gAbandoned.Set(float64(s.abandoned.Add(1)))
		s.finish(j, jobOutcome{err: &DeadlineError{JobID: j.id, Deadline: s.cfg.JobDeadline}})
		go func() {
			<-outCh // the stalled analysis eventually unwinds; its result is dropped
			s.gAbandoned.Set(float64(s.abandoned.Add(-1)))
		}()
	}
}

// analyze runs the standard offline pipeline over one decoded log. A
// batch of one keeps core's quarantine semantics: panics and replay
// failures come back as a Quarantined entry, never as a crash.
func (s *Server) analyze(j *job, log *trace.Log) jobOutcome {
	results, quarantined := core.AnalyzeLogsInstrumented([]*trace.Log{log}, func(int) classify.Options {
		return classify.Options{Scenario: j.label, Seed: log.Seed, DB: s.cfg.DB, Memo: s.memo,
			Predict: s.cfg.Predict, PredictWindow: s.cfg.PredictWindow}
	}, 1, s.reg)
	if len(quarantined) > 0 {
		return jobOutcome{err: quarantined[0].Err}
	}
	res := results[0]
	text, benign, harmful := renderJobReport(res.Classification)
	if res.Predicted != nil {
		text += "\n" + report.PredictedReport(res.Predicted)
		if res.Predicted.Classification != nil {
			pb, ph := res.Predicted.Classification.CountByVerdict()
			benign += pb
			harmful += ph
		}
	}
	return jobOutcome{cls: res.Classification, report: text, benign: benign, harmful: harmful}
}

// finish records a job's terminal state and journals the verdict. Only
// the first terminal transition wins: a late result arriving after a
// deadline quarantine is dropped.
func (s *Server) finish(j *job, out jobOutcome) {
	j.mu.Lock()
	if j.status != StatusRunning {
		j.mu.Unlock()
		return
	}
	rec := record{Op: "done", ID: j.id}
	if out.err != nil {
		j.status = StatusQuarantined
		j.errText = out.err.Error()
		rec.Status, rec.Err = string(StatusQuarantined), j.errText
	} else {
		j.status = StatusDone
		j.cls, j.report, j.benign, j.harmful = out.cls, out.report, out.benign, out.harmful
		rec.Status, rec.Benign, rec.Harmful, rec.Report = string(StatusDone), out.benign, out.harmful, out.report
	}
	j.log = nil // the decoded input is no longer needed
	j.mu.Unlock()

	if err := s.jnl.append(rec); err != nil {
		s.reg.Logger().Error("journal: verdict append failed", "id", j.id, "err", err.Error())
	}
	os.Remove(s.payloadPath(j.id)) // terminal jobs keep no payload
	if out.err != nil {
		s.cQuarantined.Inc()
		s.reg.EmitLabeled("serve.job.quarantined", j.label, uint64(idNumber(j.id)))
		s.reg.Logger().Warn("job quarantined", "id", j.id, "label", j.label, "err", j.errText)
	} else {
		s.cDone.Inc()
		s.reg.EmitLabeled("serve.job.done", j.label, uint64(idNumber(j.id)))
		s.reg.Logger().Info("job done",
			"id", j.id, "label", j.label, "benign", out.benign, "harmful", out.harmful)
	}
}

// Shutdown stops intake (new uploads answer 503), abandons the
// un-started backlog to the journal, waits for in-flight jobs until ctx
// expires, and flushes the memo store and journal. It always returns
// the server to a state a successor can resume from; the error reports
// only an expired drain deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.gDraining.Set(1)
	left := s.queue.Drain()
	s.reg.Logger().Info("shutdown: intake stopped",
		"queued_left_for_resume", len(left))

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("serve: drain deadline expired with in-flight jobs; they will resume from the journal")
		s.reg.Logger().Warn("shutdown: drain deadline expired")
	}
	s.store.Close()
	s.jnl.Close()
	s.reg.Logger().Info("shutdown complete",
		"jobs_done", s.cDone.Value(), "jobs_quarantined", s.cQuarantined.Value())
	return drainErr
}

// newJob allocates the next job under the server lock.
func (s *Server) newJob(tenant, label, sha string, seed int64) *job {
	s.mu.Lock()
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("j-%06d", s.nextID),
		tenant: tenant, label: label, sha: sha, seed: seed,
		status:    StatusQueued,
		persisted: make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.gJobs.Set(float64(len(s.jobs)))
	s.mu.Unlock()
	return j
}

// dropJob removes a job that was never journaled (a 429'd upload).
func (s *Server) dropJob(j *job) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.gJobs.Set(float64(len(s.jobs)))
	s.mu.Unlock()
}

func (s *Server) payloadPath(id string) string {
	return filepath.Join(s.cfg.DataDir, "jobs", id+".rlog")
}

// persistAccept makes an accepted upload durable: the already-spooled
// payload is fsynced and atomically renamed into jobs/, then the
// journal's accept record lands — only after all of it does the 202 go
// out. The upload body itself was streamed into the spool as it
// arrived, so nothing here is proportional to its size.
func (s *Server) persistAccept(j *job, spool *os.File) error {
	spoolName := spool.Name()
	serr := spool.Sync()
	cerr := spool.Close()
	if serr != nil || cerr != nil {
		os.Remove(spoolName)
		return fmt.Errorf("serve: persisting upload: %w", firstErr(serr, cerr))
	}
	if err := os.Rename(spoolName, s.payloadPath(j.id)); err != nil {
		os.Remove(spoolName)
		return err
	}
	return s.jnl.append(record{
		Op: "accept", ID: j.id, Tenant: j.tenant, Label: j.label, SHA: j.sha, Seed: j.seed,
	})
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sortedViews snapshots every job sorted by (label, id) — the stable
// order the merged report and job listing use. Sorting by label mirrors
// analyze-dir's sorted directory listing, so equal inputs produce
// byte-identical reports; the id breaks ties between equal labels.
func (s *Server) sortedViews() []view {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]view, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	sort.Slice(views, func(a, b int) bool {
		if views[a].Label != views[b].Label {
			return views[a].Label < views[b].Label
		}
		return views[a].ID < views[b].ID
	})
	return views
}

func payloadSHA(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// idNumber extracts the numeric part of a "j-000123" id (0 if foreign).
func idNumber(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil {
		return 0
	}
	return n
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// sanitizeLabel reduces an upload's client-supplied name to something
// safe to put in reports and logs: base name only, printable ASCII,
// bounded length.
func sanitizeLabel(name string) string {
	name = filepath.Base(strings.TrimSpace(name))
	if name == "." || name == string(filepath.Separator) {
		name = ""
	}
	var b strings.Builder
	for _, r := range name {
		if r >= 0x20 && r < 0x7f {
			b.WriteRune(r)
		}
	}
	out := b.String()
	if len(out) > 128 {
		out = out[:128]
	}
	return out
}
