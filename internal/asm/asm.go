// Package asm assembles RVM assembly text (".rasm") into isa.Programs.
//
// The language is deliberately small: one instruction or directive per
// line, ';' comments, labels ending in ':', and three directives:
//
//	.entry label        ; where thread 0 starts (default: first instruction)
//	.const NAME = expr  ; named constant
//	.word NAME init     ; one data word, NAME becomes its address
//	.space NAME n       ; n zeroed data words, NAME becomes the base address
//
// Operands are registers (r0..r15), integer literals (decimal or 0x hex,
// optionally negated), symbols (labels, data names, constants), or simple
// SYM+int / SYM-int expressions. Memory operands are written [rN+off].
//
// The workload generator composes scenarios by concatenating template
// sources with prefixed labels, so assembling is the single front door for
// all code that runs on the machine.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

type assembler struct {
	file    string
	prog    *isa.Program
	consts  map[string]int64  // .const values
	data    map[string]uint64 // data name -> address
	nextDat uint64
	lastLbl string
	lastAt  int
	entry   string // .entry label, resolved at the end
}

// Assemble parses src and returns a validated program. name is used both
// as the program name (race sites read "name:label+off") and in
// diagnostics.
func Assemble(name, src string) (*isa.Program, error) {
	a := &assembler{
		file:    name,
		prog:    isa.NewProgram(name),
		consts:  make(map[string]int64),
		data:    make(map[string]uint64),
		nextDat: isa.DataBase,
	}
	lines := strings.Split(src, "\n")

	// Pass 1: collect labels, constants and data symbols; count instructions.
	pc := 0
	for i, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		rest, labels, err := a.takeLabels(line, i+1)
		if err != nil {
			return nil, err
		}
		for _, lbl := range labels {
			if _, dup := a.prog.Symbols[lbl]; dup {
				return nil, a.errf(i+1, "duplicate label %q", lbl)
			}
			a.prog.Symbols[lbl] = pc
		}
		if rest == "" {
			continue
		}
		if strings.HasPrefix(rest, ".") {
			if err := a.directive(rest, i+1, true); err != nil {
				return nil, err
			}
			continue
		}
		pc++
	}

	// Pass 2: emit instructions.
	pc = 0
	for i, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		rest, _, err := a.takeLabels(line, i+1)
		if err != nil || rest == "" {
			continue
		}
		if strings.HasPrefix(rest, ".") {
			if err := a.directive(rest, i+1, false); err != nil {
				return nil, err
			}
			continue
		}
		// Track the nearest preceding label for the source map.
		if at, ok := labelAt(a.prog.Symbols, pc); ok {
			a.lastLbl, a.lastAt = at, pc
		}
		ins, err := a.instruction(rest, i+1)
		if err != nil {
			return nil, err
		}
		a.prog.Code = append(a.prog.Code, ins)
		a.prog.Sources = append(a.prog.Sources, isa.SourceLoc{
			Line:   i + 1,
			Symbol: a.lastLbl,
			Offset: pc - a.lastAt,
		})
		pc++
	}

	if a.entry != "" {
		at, ok := a.prog.Symbols[a.entry]
		if !ok {
			return nil, a.errf(0, "entry label %q not defined", a.entry)
		}
		a.prog.Entry = at
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble for sources known-good at build time (workload
// templates, examples); it panics on error.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func labelAt(symbols map[string]int, pc int) (string, bool) {
	best := ""
	for name, at := range symbols {
		if at == pc && (best == "" || name < best) {
			best = name
		}
	}
	return best, best != ""
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// takeLabels strips any leading "name:" labels and returns the remainder.
func (a *assembler) takeLabels(line string, lineNo int) (string, []string, error) {
	var labels []string
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			break
		}
		head := strings.TrimSpace(line[:i])
		if !isIdent(head) {
			break
		}
		labels = append(labels, head)
		line = strings.TrimSpace(line[i+1:])
	}
	return line, labels, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) directive(line string, lineNo int, pass1 bool) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".entry":
		if len(fields) != 2 {
			return a.errf(lineNo, ".entry wants one label")
		}
		a.entry = fields[1]
		return nil
	case ".const":
		// .const NAME = expr
		if !pass1 {
			return nil
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, ".const"))
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return a.errf(lineNo, ".const wants NAME = value")
		}
		name := strings.TrimSpace(rest[:eq])
		if !isIdent(name) {
			return a.errf(lineNo, "bad constant name %q", name)
		}
		v, err := a.evalConst(strings.TrimSpace(rest[eq+1:]), lineNo)
		if err != nil {
			return err
		}
		if _, dup := a.consts[name]; dup {
			return a.errf(lineNo, "duplicate constant %q", name)
		}
		a.consts[name] = v
		return nil
	case ".word":
		if !pass1 {
			return nil
		}
		if len(fields) != 3 {
			return a.errf(lineNo, ".word wants NAME init")
		}
		name := fields[1]
		if !isIdent(name) {
			return a.errf(lineNo, "bad data name %q", name)
		}
		v, err := a.evalConst(fields[2], lineNo)
		if err != nil {
			return err
		}
		if _, dup := a.data[name]; dup {
			return a.errf(lineNo, "duplicate data name %q", name)
		}
		a.data[name] = a.nextDat
		a.prog.DataSyms[name] = a.nextDat
		a.prog.Data[a.nextDat] = uint64(v)
		a.nextDat++
		return nil
	case ".space":
		if !pass1 {
			return nil
		}
		if len(fields) != 3 {
			return a.errf(lineNo, ".space wants NAME nwords")
		}
		name := fields[1]
		if !isIdent(name) {
			return a.errf(lineNo, "bad data name %q", name)
		}
		n, err := a.evalConst(fields[2], lineNo)
		if err != nil {
			return err
		}
		if n <= 0 {
			return a.errf(lineNo, ".space size must be positive, got %d", n)
		}
		if _, dup := a.data[name]; dup {
			return a.errf(lineNo, "duplicate data name %q", name)
		}
		a.data[name] = a.nextDat
		a.prog.DataSyms[name] = a.nextDat
		for i := int64(0); i < n; i++ {
			a.prog.Data[a.nextDat] = 0
			a.nextDat++
		}
		return nil
	default:
		return a.errf(lineNo, "unknown directive %s", fields[0])
	}
}

// evalConst resolves pass-1 expressions (literals, earlier constants and
// data names, SYM+int).
func (a *assembler) evalConst(expr string, lineNo int) (int64, error) {
	v, _, err := a.evalSym(expr, lineNo, false)
	return v, err
}

// evalSym resolves an operand expression. When allowLabels is true, code
// labels are legal (the value is the instruction index); label references
// may be unresolved in pass 1, so this is only called from pass 2 for
// instruction operands.
func (a *assembler) evalSym(expr string, lineNo int, allowLabels bool) (int64, bool, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, false, a.errf(lineNo, "empty expression")
	}
	// SYM+int / SYM-int split (but not a leading sign).
	for i := 1; i < len(expr); i++ {
		if expr[i] == '+' || expr[i] == '-' {
			base, _, err := a.evalSym(expr[:i], lineNo, allowLabels)
			if err != nil {
				return 0, false, err
			}
			off, err := strconv.ParseInt(strings.TrimSpace(expr[i+1:]), 0, 64)
			if err != nil {
				return 0, false, a.errf(lineNo, "bad offset in %q", expr)
			}
			if expr[i] == '-' {
				off = -off
			}
			return base + off, true, nil
		}
	}
	if v, err := strconv.ParseInt(expr, 0, 64); err == nil {
		return v, false, nil
	}
	if v, ok := a.consts[expr]; ok {
		return v, true, nil
	}
	if addr, ok := a.data[expr]; ok {
		return int64(addr), true, nil
	}
	if allowLabels {
		if at, ok := a.prog.Symbols[expr]; ok {
			return int64(at), true, nil
		}
	}
	return 0, false, a.errf(lineNo, "undefined symbol %q", expr)
}

func (a *assembler) reg(tok string, lineNo int) (uint8, error) {
	tok = strings.TrimSpace(tok)
	if strings.EqualFold(tok, "sp") {
		return isa.SP, nil
	}
	if len(tok) < 2 || (tok[0] != 'r' && tok[0] != 'R') {
		return 0, a.errf(lineNo, "expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, a.errf(lineNo, "bad register %q", tok)
	}
	return uint8(n), nil
}

// mem parses a "[rN+expr]" operand into (base register, offset).
func (a *assembler) mem(tok string, lineNo int) (uint8, int64, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return 0, 0, a.errf(lineNo, "expected [reg+off], got %q", tok)
	}
	inner := strings.TrimSpace(tok[1 : len(tok)-1])
	// Split base register from the offset expression.
	sep := -1
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			sep = i
			break
		}
	}
	regTok, offExpr := inner, ""
	if sep >= 0 {
		regTok, offExpr = inner[:sep], inner[sep:]
	}
	base, err := a.reg(regTok, lineNo)
	if err != nil {
		return 0, 0, err
	}
	off := int64(0)
	if offExpr != "" {
		sign := int64(1)
		if offExpr[0] == '-' {
			sign = -1
		}
		v, _, err := a.evalSym(offExpr[1:], lineNo, false)
		if err != nil {
			return 0, 0, err
		}
		off = sign * v
	}
	return base, off, nil
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.OpCount)
	for op := isa.Op(0); op.Valid(); op++ {
		m[op.String()] = op
	}
	return m
}()

func (a *assembler) instruction(line string, lineNo int) (isa.Instr, error) {
	var mnem, rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		mnem = line
	}
	mnem = strings.ToLower(mnem)
	op, ok := opByName[mnem]
	if !ok {
		return isa.Instr{}, a.errf(lineNo, "unknown mnemonic %q", mnem)
	}
	ops := splitOperands(rest)
	need := func(n int) error {
		if len(ops) != n {
			return a.errf(lineNo, "%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	ins := isa.Instr{Op: op}
	var err error
	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpFence, isa.OpRet:
		return ins, need(0)

	case isa.OpLdi:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = a.reg(ops[0], lineNo); err != nil {
			return ins, err
		}
		ins.Imm, _, err = a.evalSym(ops[1], lineNo, true)
		return ins, err

	case isa.OpMov, isa.OpNot, isa.OpNeg:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = a.reg(ops[0], lineNo); err != nil {
			return ins, err
		}
		ins.Rs1, err = a.reg(ops[1], lineNo)
		return ins, err

	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rd, err = a.reg(ops[0], lineNo); err != nil {
			return ins, err
		}
		if ins.Rs1, err = a.reg(ops[1], lineNo); err != nil {
			return ins, err
		}
		ins.Rs2, err = a.reg(ops[2], lineNo)
		return ins, err

	case isa.OpAddi, isa.OpMuli, isa.OpAndi, isa.OpOri,
		isa.OpXori, isa.OpShli, isa.OpShri:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rd, err = a.reg(ops[0], lineNo); err != nil {
			return ins, err
		}
		if ins.Rs1, err = a.reg(ops[1], lineNo); err != nil {
			return ins, err
		}
		ins.Imm, _, err = a.evalSym(ops[2], lineNo, false)
		return ins, err

	case isa.OpLd:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = a.reg(ops[0], lineNo); err != nil {
			return ins, err
		}
		ins.Rs1, ins.Imm, err = a.mem(ops[1], lineNo)
		return ins, err

	case isa.OpSt, isa.OpOrm, isa.OpAndm, isa.OpXorm, isa.OpAddm:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rs1, ins.Imm, err = a.mem(ops[0], lineNo); err != nil {
			return ins, err
		}
		ins.Rs2, err = a.reg(ops[1], lineNo)
		return ins, err

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rs1, err = a.reg(ops[0], lineNo); err != nil {
			return ins, err
		}
		if ins.Rs2, err = a.reg(ops[1], lineNo); err != nil {
			return ins, err
		}
		ins.Imm, _, err = a.evalSym(ops[2], lineNo, true)
		return ins, err

	case isa.OpJmp, isa.OpCall:
		if err = need(1); err != nil {
			return ins, err
		}
		ins.Imm, _, err = a.evalSym(ops[0], lineNo, true)
		return ins, err

	case isa.OpJmpr:
		if err = need(1); err != nil {
			return ins, err
		}
		ins.Rs1, err = a.reg(ops[0], lineNo)
		return ins, err

	case isa.OpCas, isa.OpXadd, isa.OpXchg:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rd, err = a.reg(ops[0], lineNo); err != nil {
			return ins, err
		}
		if ins.Rs1, ins.Imm, err = a.mem(ops[1], lineNo); err != nil {
			return ins, err
		}
		ins.Rs2, err = a.reg(ops[2], lineNo)
		return ins, err

	case isa.OpLock, isa.OpUnlock:
		if err = need(1); err != nil {
			return ins, err
		}
		ins.Rs1, ins.Imm, err = a.mem(ops[0], lineNo)
		return ins, err

	case isa.OpSys:
		if err = need(1); err != nil {
			return ins, err
		}
		if n := isa.SyscallNumber(ops[0]); n >= 0 {
			ins.Imm = n
			return ins, nil
		}
		ins.Imm, _, err = a.evalSym(ops[0], lineNo, false)
		return ins, err
	}
	return ins, a.errf(lineNo, "unhandled mnemonic %q", mnem)
}
