package asm

import (
	"testing"

	"repro/internal/isa"
)

func TestBuilderEquivalentToText(t *testing.T) {
	// The same counting loop built both ways must produce identical code.
	text := `
.word g 0
main:
  ldi r1, 5
  ldi r2, g
loop:
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  addi r1, r1, -1
  bne r1, r0, loop
  halt
`
	fromText, err := Assemble("cmp", text)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder("cmp")
	g := b.Word("g", 0)
	b.Label("main")
	b.Ldi(1, 5)
	b.Ldi(2, int64(g))
	b.Label("loop")
	b.Ld(3, 2, 0)
	b.Addi(3, 3, 1)
	b.St(2, 0, 3)
	b.Addi(1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	fromBuilder, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	if len(fromText.Code) != len(fromBuilder.Code) {
		t.Fatalf("lengths: %d vs %d", len(fromText.Code), len(fromBuilder.Code))
	}
	for i := range fromText.Code {
		if fromText.Code[i] != fromBuilder.Code[i] {
			t.Errorf("pc %d: %v vs %v", i, fromText.Code[i], fromBuilder.Code[i])
		}
	}
	if fromBuilder.Data[g] != 0 {
		t.Error("data init lost")
	}
	if fromBuilder.SiteOf(2) != "cmp:loop" {
		t.Errorf("builder source map: SiteOf(2) = %q", fromBuilder.SiteOf(2))
	}
}

func TestBuilderForwardReferenceAndEntry(t *testing.T) {
	b := NewBuilder("fwd")
	b.Entry("main")
	b.Label("sub")
	b.Addi(1, 1, 1)
	b.Ret()
	b.Label("main")
	b.Ldi(15, int64(isa.StackTop(0)))
	b.Call("sub")
	b.Jmp("done")
	b.Nop()
	b.Label("done")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != prog.Symbols["main"] {
		t.Errorf("entry = %d", prog.Entry)
	}
	if prog.Code[prog.Symbols["main"]+1].Imm != int64(prog.Symbols["sub"]) {
		t.Error("call target unresolved")
	}
	if prog.Code[prog.Symbols["main"]+2].Imm != int64(prog.Symbols["done"]) {
		t.Error("forward jmp unresolved")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}

	b2 := NewBuilder("bad2")
	b2.Jmp("nowhere")
	if _, err := b2.Build(); err == nil {
		t.Error("undefined label accepted")
	}

	b3 := NewBuilder("bad3")
	b3.Entry("missing")
	b3.Halt()
	if _, err := b3.Build(); err == nil {
		t.Error("undefined entry accepted")
	}
}

func TestBuilderSyncAndSpace(t *testing.T) {
	b := NewBuilder("sync")
	mu := b.Word("mu", 0)
	buf := b.Space("buf", 4)
	b.Label("main")
	b.Ldi(2, int64(mu))
	b.Lock(2, 0)
	b.Ldi(3, int64(buf))
	b.Ldi(4, 9)
	b.St(3, 2, 4)
	b.Unlock(2, 0)
	b.Ldi(5, 1)
	b.Atomic(isa.OpXadd, 6, 3, 0, 5)
	b.MemRMW(isa.OpOrm, 3, 1, 5)
	b.Fence()
	b.Sys(isa.SysNop)
	b.Mov(7, 6)
	b.Alu(isa.OpAdd, 8, 7, 5)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if buf != mu+1 {
		t.Errorf("space allocation: buf=%d mu=%d", buf, mu)
	}
	syncs := 0
	for _, ins := range prog.Code {
		if ins.Op.IsSync() {
			syncs++
		}
	}
	if syncs != 5 {
		t.Errorf("sync instructions = %d, want 5 (lock, unlock, xadd, fence, sysnop)", syncs)
	}
}
