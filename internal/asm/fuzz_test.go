package asm

import "testing"

// FuzzAssemble: arbitrary source must never panic the assembler, and any
// program it accepts must validate.
func FuzzAssemble(f *testing.F) {
	f.Add("main:\n  ldi r1, 5\n  sys print\n  halt\n")
	f.Add(".word g 1\n.const K = 2\nmain:\n  ld r1, [r2+g]\n  halt\n")
	f.Add(".entry nowhere\n")
	f.Add("a: b: c: nop\n")
	f.Add("main:\n  st [sp-1], r1\n  halt")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("Assemble accepted an invalid program: %v", err)
		}
	})
}
