package asm

import (
	"fmt"

	"repro/internal/isa"
)

// Builder constructs programs instruction-by-instruction, as an
// alternative to assembling text. Labels may be referenced before they
// are defined; Build resolves them and validates the result.
//
//	b := asm.NewBuilder("demo")
//	g := b.Word("g", 0)
//	b.Label("main")
//	b.Ldi(2, int64(g))
//	b.Ld(3, 2, 0)
//	b.Addi(3, 3, 1)
//	b.St(2, 0, 3)
//	b.Halt()
//	prog, err := b.Build()
type Builder struct {
	prog    *isa.Program
	nextDat uint64
	fixups  []fixup // label references to resolve at Build
	lastLbl string
	lastAt  int
	err     error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty builder for a program called name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: isa.NewProgram(name), nextDat: isa.DataBase}
}

// Word declares an initialized data word and returns its address.
func (b *Builder) Word(name string, init uint64) uint64 {
	addr := b.nextDat
	b.nextDat++
	b.prog.Data[addr] = init
	return addr
}

// Space declares n zeroed data words and returns the base address.
func (b *Builder) Space(name string, n int) uint64 {
	base := b.nextDat
	for i := 0; i < n; i++ {
		b.prog.Data[b.nextDat] = 0
		b.nextDat++
	}
	return base
}

// Label defines a label at the current instruction position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.prog.Symbols[name]; dup && b.err == nil {
		b.err = fmt.Errorf("asm: duplicate label %q", name)
	}
	b.prog.Symbols[name] = len(b.prog.Code)
	return b
}

// Entry marks a label as the entry point (resolved at Build).
func (b *Builder) Entry(label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: -1, label: label})
	return b
}

// emit appends an instruction, maintaining the source map.
func (b *Builder) emit(ins isa.Instr) *Builder {
	pc := len(b.prog.Code)
	if at, ok := labelAt(b.prog.Symbols, pc); ok {
		b.lastLbl, b.lastAt = at, pc
	}
	b.prog.Code = append(b.prog.Code, ins)
	b.prog.Sources = append(b.prog.Sources, isa.SourceLoc{
		Symbol: b.lastLbl, Offset: pc - b.lastAt,
	})
	return b
}

// emitBranch appends a label-targeted instruction to fix up at Build.
func (b *Builder) emitBranch(ins isa.Instr, label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.prog.Code), label: label})
	return b.emit(ins)
}

// Instruction emitters. Register operands are plain ints for brevity.

func (b *Builder) Nop() *Builder          { return b.emit(isa.Instr{Op: isa.OpNop}) }
func (b *Builder) Halt() *Builder         { return b.emit(isa.Instr{Op: isa.OpHalt}) }
func (b *Builder) Fence() *Builder        { return b.emit(isa.Instr{Op: isa.OpFence}) }
func (b *Builder) Ret() *Builder          { return b.emit(isa.Instr{Op: isa.OpRet}) }
func (b *Builder) Sys(num int64) *Builder { return b.emit(isa.Instr{Op: isa.OpSys, Imm: num}) }
func (b *Builder) Ldi(rd int, imm int64) *Builder {
	return b.emit(isa.Instr{Op: isa.OpLdi, Rd: uint8(rd), Imm: imm})
}
func (b *Builder) Mov(rd, rs int) *Builder {
	return b.emit(isa.Instr{Op: isa.OpMov, Rd: uint8(rd), Rs1: uint8(rs)})
}
func (b *Builder) Alu(op isa.Op, rd, rs1, rs2 int) *Builder {
	return b.emit(isa.Instr{Op: op, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}
func (b *Builder) AluImm(op isa.Op, rd, rs1 int, imm int64) *Builder {
	return b.emit(isa.Instr{Op: op, Rd: uint8(rd), Rs1: uint8(rs1), Imm: imm})
}
func (b *Builder) Addi(rd, rs1 int, imm int64) *Builder { return b.AluImm(isa.OpAddi, rd, rs1, imm) }
func (b *Builder) Ld(rd, base int, off int64) *Builder {
	return b.emit(isa.Instr{Op: isa.OpLd, Rd: uint8(rd), Rs1: uint8(base), Imm: off})
}
func (b *Builder) St(base int, off int64, rs int) *Builder {
	return b.emit(isa.Instr{Op: isa.OpSt, Rs1: uint8(base), Imm: off, Rs2: uint8(rs)})
}
func (b *Builder) Branch(op isa.Op, rs1, rs2 int, label string) *Builder {
	return b.emitBranch(isa.Instr{Op: op, Rs1: uint8(rs1), Rs2: uint8(rs2)}, label)
}
func (b *Builder) Jmp(label string) *Builder {
	return b.emitBranch(isa.Instr{Op: isa.OpJmp}, label)
}
func (b *Builder) Call(label string) *Builder {
	return b.emitBranch(isa.Instr{Op: isa.OpCall}, label)
}
func (b *Builder) Lock(base int, off int64) *Builder {
	return b.emit(isa.Instr{Op: isa.OpLock, Rs1: uint8(base), Imm: off})
}
func (b *Builder) Unlock(base int, off int64) *Builder {
	return b.emit(isa.Instr{Op: isa.OpUnlock, Rs1: uint8(base), Imm: off})
}
func (b *Builder) Atomic(op isa.Op, rd, base int, off int64, rs int) *Builder {
	return b.emit(isa.Instr{Op: op, Rd: uint8(rd), Rs1: uint8(base), Imm: off, Rs2: uint8(rs)})
}
func (b *Builder) MemRMW(op isa.Op, base int, off int64, rs int) *Builder {
	return b.emit(isa.Instr{Op: op, Rs1: uint8(base), Imm: off, Rs2: uint8(rs)})
}

// Build resolves label fixups and validates the program.
func (b *Builder) Build() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		at, ok := b.prog.Symbols[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		if f.pc < 0 {
			b.prog.Entry = at
		} else {
			b.prog.Code[f.pc].Imm = int64(at)
		}
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}
