package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	src := `
; a tiny program
.const TEN = 10
.word counter 0
.entry main

main:
  ldi r1, TEN
  ldi r2, counter
loop:
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  addi r1, r1, -1
  bne r1, r0, loop
  sys print
  halt
`
	p, err := Assemble("tiny", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry = %d, want main at %d", p.Entry, p.Symbols["main"])
	}
	if got := len(p.Code); got != 9 {
		t.Errorf("code length = %d, want 9", got)
	}
	if p.Code[0] != (isa.Instr{Op: isa.OpLdi, Rd: 1, Imm: 10}) {
		t.Errorf("const not folded: %v", p.Code[0])
	}
	if p.Code[1] != (isa.Instr{Op: isa.OpLdi, Rd: 2, Imm: int64(isa.DataBase)}) {
		t.Errorf("data symbol not resolved: %v", p.Code[1])
	}
	if p.Data[isa.DataBase] != 0 {
		t.Errorf("data init = %d, want 0", p.Data[isa.DataBase])
	}
	// Backward branch resolves to the loop label.
	bne := p.Code[6]
	if bne.Op != isa.OpBne || bne.Imm != int64(p.Symbols["loop"]) {
		t.Errorf("branch = %v, want target %d", bne, p.Symbols["loop"])
	}
	// Source map ties instructions to labels.
	if got := p.SiteOf(2); got != "tiny:loop" {
		t.Errorf("SiteOf(2) = %q, want tiny:loop", got)
	}
	if got := p.SiteOf(4); got != "tiny:loop+2" {
		t.Errorf("SiteOf(4) = %q, want tiny:loop+2", got)
	}
}

func TestAssembleForwardReference(t *testing.T) {
	src := `
main:
  jmp done
  halt
done:
  halt
`
	p, err := Assemble("fwd", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != int64(p.Symbols["done"]) {
		t.Errorf("forward jump = %d, want %d", p.Code[0].Imm, p.Symbols["done"])
	}
}

func TestAssembleDataSpaceAndOffsets(t *testing.T) {
	src := `
.word a 7
.space buf 4
.word b 9
main:
  ldi r1, buf
  ld r2, [r1+buf]      ; symbolic offset
  ld r3, [r1+2]
  ld r4, [r1-1]
  st [sp+0], r2
  halt
`
	p, err := Assemble("data", src)
	if err != nil {
		t.Fatal(err)
	}
	base := isa.DataBase
	if p.Data[base] != 7 {
		t.Errorf("a = %d, want 7", p.Data[base])
	}
	for i := uint64(1); i <= 4; i++ {
		if p.Data[base+i] != 0 {
			t.Errorf("buf[%d] = %d, want 0", i-1, p.Data[base+i])
		}
	}
	if p.Data[base+5] != 9 {
		t.Errorf("b = %d, want 9", p.Data[base+5])
	}
	if p.Code[0].Imm != int64(base+1) {
		t.Errorf("buf address = %d, want %d", p.Code[0].Imm, base+1)
	}
	if p.Code[1].Imm != int64(base+1) {
		t.Errorf("symbolic mem offset = %d, want %d", p.Code[1].Imm, base+1)
	}
	if p.Code[3].Imm != -1 {
		t.Errorf("negative mem offset = %d, want -1", p.Code[3].Imm)
	}
	if p.Code[4].Rs1 != isa.SP {
		t.Errorf("sp alias = r%d, want r%d", p.Code[4].Rs1, isa.SP)
	}
}

func TestAssembleAtomicsAndSync(t *testing.T) {
	src := `
.word m 0
.word v 0
main:
  ldi r1, m
  lock [r1+0]
  ldi r2, 1
  ldi r3, v
  xadd r4, [r3+0], r2
  cas r4, [r3+0], r2
  xchg r4, [r3+0], r2
  fence
  unlock [r1+0]
  sys sysnop
  halt
`
	p, err := Assemble("sync", src)
	if err != nil {
		t.Fatal(err)
	}
	var syncCount int
	for _, ins := range p.Code {
		if ins.Op.IsSync() {
			syncCount++
		}
	}
	if syncCount != 7 {
		t.Errorf("sync instruction count = %d, want 7", syncCount)
	}
	if p.Code[9].Imm != isa.SysNop {
		t.Errorf("sys operand = %d, want %d", p.Code[9].Imm, isa.SysNop)
	}
}

func TestAssembleSysByNumber(t *testing.T) {
	p, err := Assemble("n", "main:\n  sys 1\n  halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != isa.SysPrint {
		t.Errorf("numeric syscall = %d, want %d", p.Code[0].Imm, isa.SysPrint)
	}
}

func TestAssembleHexAndNegative(t *testing.T) {
	p, err := Assemble("h", "main:\n  ldi r1, 0x10\n  ldi r2, -3\n  halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 16 || p.Code[1].Imm != -3 {
		t.Errorf("literals = %d, %d", p.Code[0].Imm, p.Code[1].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":    "main:\n  frob r1\n",
		"undefined symbol":    "main:\n  ldi r1, nosuch\n  halt\n",
		"duplicate label":     "a:\n  nop\na:\n  halt\n",
		"duplicate constant":  ".const X = 1\n.const X = 2\nmain:\n  halt\n",
		"duplicate data name": ".word d 0\n.word d 1\nmain:\n  halt\n",
		"bad register":        "main:\n  mov r99, r1\n  halt\n",
		"operand count":       "main:\n  add r1, r2\n  halt\n",
		"unknown directive":   ".frobnicate x\nmain:\n  halt\n",
		"unknown syscall":     "main:\n  sys frob\n  halt\n",
		"bad mem operand":     "main:\n  ld r1, r2\n  halt\n",
		"negative space":      ".space s -1\nmain:\n  halt\n",
		"missing entry":       ".entry nowhere\nmain:\n  halt\n",
		"branch out of range": "main:\n  jmp 99\n  halt\n",
	}
	for name, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("lines", "main:\n  nop\n  frob r1\n  halt\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if !asErr(err, &ae) {
		t.Fatalf("error type = %T, want *Error", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line = %d, want 3", ae.Line)
	}
	if !strings.Contains(err.Error(), "lines:3:") {
		t.Errorf("error text = %q, want file:line prefix", err)
	}
}

// asErr is a tiny errors.As stand-in to keep the test explicit.
func asErr(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "; leading comment\n\nmain:  ; trailing comment\n  nop ; mid\n\n  halt\n"
	p, err := Assemble("c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 {
		t.Errorf("code length = %d, want 2", len(p.Code))
	}
}

func TestRoundTripThroughDisassembler(t *testing.T) {
	// Every instruction the assembler can produce should disassemble to a
	// string the assembler accepts again, producing identical code.
	src := `
.word g 5
main:
  nop
  ldi r1, 42
  mov r2, r1
  add r3, r1, r2
  sub r3, r1, r2
  mul r3, r1, r2
  and r3, r1, r2
  or r3, r1, r2
  xor r3, r1, r2
  shl r3, r1, r2
  shr r3, r1, r2
  addi r3, r1, 5
  andi r3, r1, 5
  ori r3, r1, 5
  xori r3, r1, 5
  shli r3, r1, 2
  shri r3, r1, 2
  muli r3, r1, 3
  not r3, r1
  neg r3, r1
  ld r4, [r1+0]
  st [r1+0], r4
  beq r1, r2, main
  bne r1, r2, main
  blt r1, r2, main
  bge r1, r2, main
  bltu r1, r2, main
  bgeu r1, r2, main
  jmp main
  jmpr r1
  call main
  ret
  cas r4, [r1+0], r2
  xadd r4, [r1+0], r2
  xchg r4, [r1+0], r2
  fence
  lock [r1+0]
  unlock [r1+0]
  sys print
  halt
`
	p1, err := Assemble("rt", src)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("main:\n")
	for _, ins := range p1.Code {
		b.WriteString("  " + ins.String() + "\n")
	}
	p2, err := Assemble("rt", b.String())
	if err != nil {
		t.Fatalf("re-assembling disassembly: %v\n%s", err, b.String())
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("length mismatch %d vs %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Errorf("pc %d: %v vs %v", i, p1.Code[i], p2.Code[i])
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bad", "main:\n  frob\n")
}

func TestDivModAssembles(t *testing.T) {
	p, err := Assemble("dm", "main:\n  div r1, r2, r3\n  mod r1, r2, r3\n  halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != isa.OpDiv || p.Code[1].Op != isa.OpMod {
		t.Error("div/mod mis-assembled")
	}
}
