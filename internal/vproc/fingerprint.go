// Live-in fingerprints: a canonical content hash over everything a
// dual-order replay can observe, so two instances with equal
// fingerprints are guaranteed equal AnalyzeOpts results. The
// classifier's memoization cache (classify.Memo) keys on these.
//
// The fingerprint is deliberately relative: region digests exclude the
// absolute instruction indices, timestamps, and schedule position of a
// region, so a region that recurs with byte-identical live-in state
// later in the execution (the paper's Figure 3 recurrence) hashes
// equal and its instances hit the cache. Everything AnalyzeOpts reads
// is covered — see docs/PERFORMANCE.md for the input-by-input
// soundness argument:
//
//   - program code (machine.Step executes Prog.Code; vproc reads no
//     other program state),
//   - per region: the live-in register file and PC (StartCpu), the
//     region length (the step budget and prefix lengths are relative),
//     the owning TID (SysGettid and Diff labels), the closing sync PC
//     (completion detection), the log's EndReason (the recorded-
//     boundary stop for budget-ended threads), the opening syscall's
//     recorded result if any, and the full live-in memory map (both
//     regions' maps are readable through liveInFor's peer fallback),
//   - per instance: the racing operations' offsets within their
//     regions, their recorded PCs, the racing address, and the heap
//     event prefix both regions replay against (poisoning and
//     allocation lookups run at the pair's minimum heap epoch),
//   - the oracle configuration (see below).
//
// When Options.Oracle is set, replay outcomes additionally depend on
// the whole execution's versioned memory at the pair's minimum region
// schedule position, so oracle-mode fingerprints include that position
// and a caller-supplied salt (the classifier uses a per-Run value):
// sharing then only happens within one classification pass, where the
// oracle is fixed. Oracle-off fingerprints are execution-independent
// and safe to share across executions of the same program.
package vproc

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/replay"
)

// Fingerprint is the canonical identity of a race instance's dual-order
// replay inputs. Equal fingerprints imply equal Analyze results.
type Fingerprint [32]byte

// Fingerprinter computes instance fingerprints for one execution,
// caching the per-execution work: the program hash (computed eagerly —
// every fingerprint needs it), the rolling heap-event prefix hashes,
// and one lazily computed digest per region, stored lock-free so the
// classification workers share the cache without coordination.
type Fingerprinter struct {
	exec     *replay.Execution
	progHash [32]byte

	heapOnce   sync.Once
	heapPrefix [][32]byte // heapPrefix[i] = digest of HeapEvents[:i]

	regions []atomic.Pointer[[32]byte] // indexed by Region.Global
}

// NewFingerprinter builds a fingerprinter for exec.
func NewFingerprinter(exec *replay.Execution) *Fingerprinter {
	b := make([]byte, 0, 16*len(exec.Prog.Code))
	for _, ins := range exec.Prog.Code {
		b = binary.LittleEndian.AppendUint64(b, uint64(ins.Op)|uint64(ins.Rd)<<8|uint64(ins.Rs1)<<16|uint64(ins.Rs2)<<24)
		b = binary.LittleEndian.AppendUint64(b, uint64(ins.Imm))
	}
	return &Fingerprinter{
		exec:     exec,
		progHash: sha256.Sum256(b),
		regions:  make([]atomic.Pointer[[32]byte], len(exec.Regions)),
	}
}

// The digests below encode into append-grown byte buffers and hash with
// sha256.Sum256 rather than a streaming hash.Hash: the miss path of the
// memo runs Instance once per race instance, and a heap-allocated sha256
// state per call made fingerprinting cost as much as the replays it was
// saving. Instance's buffer has a fixed maximum size and stays on the
// stack; the variable-size region encoding is amortized by the per-region
// digest cache.

// heapPrefixAt returns the digest of exec.HeapEvents[:epoch], building
// the rolling prefix table on first use.
func (f *Fingerprinter) heapPrefixAt(epoch int) [32]byte {
	f.heapOnce.Do(func() {
		events := f.exec.HeapEvents
		prefixes := make([][32]byte, len(events)+1)
		var buf [56]byte // prev digest + kind + base + size
		for i, ev := range events {
			b := append(buf[:0], prefixes[i][:]...)
			b = binary.LittleEndian.AppendUint64(b, uint64(ev.Kind))
			b = binary.LittleEndian.AppendUint64(b, ev.Base)
			b = binary.LittleEndian.AppendUint64(b, ev.Size)
			prefixes[i+1] = sha256.Sum256(b)
		}
		f.heapPrefix = prefixes
	})
	if epoch < 0 {
		epoch = 0
	}
	if epoch >= len(f.heapPrefix) {
		epoch = len(f.heapPrefix) - 1
	}
	return f.heapPrefix[epoch]
}

// regionDigest returns the cached digest of everything a dual-order
// replay can observe about one region, computing it on first use.
// Concurrent first use may compute the digest twice; both computations
// produce the same bytes, so the race is benign.
func (f *Fingerprinter) regionDigest(r *replay.Region) [32]byte {
	if p := f.regions[r.Global].Load(); p != nil {
		return *p
	}
	le := binary.LittleEndian
	b := make([]byte, 0, 8*len(r.StartCpu.Regs)+8*8+16*len(r.LiveIn))
	// Live-in architectural state and the region's relative extent.
	for _, reg := range r.StartCpu.Regs {
		b = le.AppendUint64(b, reg)
	}
	b = le.AppendUint64(b, uint64(int64(r.StartCpu.PC)))
	b = le.AppendUint64(b, r.EndIdx-r.StartIdx)
	b = le.AppendUint64(b, uint64(int64(r.TID)))

	// Completion detection: the closing sync PC (the next region's
	// opening PC), and the recorded-boundary fallback inputs for regions
	// with no closing sync.
	closePC := -1
	if th := f.exec.Thread(r.TID); th != nil && r.Ordinal+1 < len(th.Regions) {
		closePC = th.Regions[r.Ordinal+1].StartCpu.PC
	}
	b = le.AppendUint64(b, uint64(int64(closePC)))
	if log := f.exec.Log.Thread(r.TID); log != nil {
		b = le.AppendUint64(b, uint64(log.EndReason))
		// The opening syscall's recorded result, if the region opens with
		// an injectable syscall (rand/time/spawn/join).
		found := uint64(0)
		res := uint64(0)
		for _, rec := range log.SysRets {
			if rec.Idx == r.StartIdx {
				found, res = 1, rec.Res
				break
			}
		}
		b = le.AppendUint64(b, found)
		b = le.AppendUint64(b, res)
	}

	// Live-in memory, in canonical (sorted-address) order.
	addrs := make([]uint64, 0, len(r.LiveIn))
	for a := range r.LiveIn {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	b = le.AppendUint64(b, uint64(len(addrs)))
	for _, a := range addrs {
		b = le.AppendUint64(b, a)
		b = le.AppendUint64(b, r.LiveIn[a])
	}

	d := sha256.Sum256(b)
	f.regions[r.Global].Store(&d)
	return d
}

// Instance fingerprints one race instance under the given options.
// oracleSalt distinguishes oracle configurations; it is ignored when
// opts.Oracle is nil (the oracle-free replay is execution-independent).
// The pair is canonicalized exactly as AnalyzeOpts canonicalizes it, so
// the fingerprint is a property of the instance, not of how the caller
// ordered the regions.
func (f *Fingerprinter) Instance(pair RacePair, opts Options, oracleSalt uint64) Fingerprint {
	if pair.RegionB.Global < pair.RegionA.Global {
		pair.RegionA, pair.RegionB = pair.RegionB, pair.RegionA
		pair.IdxA, pair.IdxB = pair.IdxB, pair.IdxA
		pair.PCA, pair.PCB = pair.PCB, pair.PCA
	}
	epoch := pair.RegionA.HeapEpoch
	if pair.RegionB.HeapEpoch < epoch {
		epoch = pair.RegionB.HeapEpoch
	}
	le := binary.LittleEndian
	var arr [192]byte // 4 digests + at most 8 u64 fields; stays on the stack
	b := append(arr[:0], f.progHash[:]...)
	da := f.regionDigest(pair.RegionA)
	b = append(b, da[:]...)
	db := f.regionDigest(pair.RegionB)
	b = append(b, db[:]...)
	b = le.AppendUint64(b, pair.IdxA-pair.RegionA.StartIdx)
	b = le.AppendUint64(b, pair.IdxB-pair.RegionB.StartIdx)
	b = le.AppendUint64(b, uint64(int64(pair.PCA)))
	b = le.AppendUint64(b, uint64(int64(pair.PCB)))
	b = le.AppendUint64(b, pair.Addr)
	hp := f.heapPrefixAt(epoch)
	b = append(b, hp[:]...)
	if opts.Oracle != nil {
		// Oracle answers depend on the whole execution's memory history at
		// the pair's schedule position; pin both so equal fingerprints
		// still imply equal results.
		b = le.AppendUint64(b, 1)
		b = le.AppendUint64(b, oracleSalt)
		global := pair.RegionA.Global
		if pair.RegionB.Global < global {
			global = pair.RegionB.Global
		}
		b = le.AppendUint64(b, uint64(global))
	} else {
		b = le.AppendUint64(b, 0)
	}
	return Fingerprint(sha256.Sum256(b))
}
