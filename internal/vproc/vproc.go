// Package vproc implements the paper's virtual processor: the machinery
// that replays one data-race instance twice — once per order of the two
// racing memory operations — and compares the resulting live-out states
// (§4.2, §4.3).
//
// A virtual processor executes the two sequencing regions that contain the
// race in isolation. It is initialized with the regions' live-in register
// states and a copy-on-read view of the live-in memory values replay
// reconstructed; the first read of a location copies the value from
// live-in, and from then on all reads and writes use the local copy. Both
// orders run the same schedule — region A's prefix, region B's prefix, the
// two racing operations (in the order under test), region A's remainder,
// region B's remainder — so the only variable between the two runs is the
// order of the racing pair.
//
// Replay failures (§4.2.1) arise exactly as in the paper: the alternative
// order may read an address whose value was never captured, diverge onto a
// control-flow path that leaves the recorded region (in this ISA, reaching
// any synchronization instruction mid-region means we left it), fault
// (null access, use-after-free, bad free, division by zero), or fail to
// line up with the recorded racing instruction.
package vproc

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Outcome is the verdict of one dual-order replay (§5.2.1).
type Outcome int

const (
	// NoStateChange: both orders completed with identical live-outs.
	NoStateChange Outcome = iota
	// StateChange: both orders completed; the live-outs differ.
	StateChange
	// ReplayFailure: at least one order could not be replayed to the end
	// of its regions.
	ReplayFailure
)

func (o Outcome) String() string {
	switch o {
	case NoStateChange:
		return "no-state-change"
	case StateChange:
		return "state-change"
	case ReplayFailure:
		return "replay-failure"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// RacePair names one race instance: the two regions and the thread-local
// instruction indices (and recorded PCs) of the racing operations.
type RacePair struct {
	RegionA, RegionB *replay.Region
	IdxA, IdxB       uint64
	PCA, PCB         int
	Addr             uint64
}

// Diff is one live-out discrepancy between the two orders.
type Diff struct {
	Kind  string // "reg", "pc", "mem", "output", "status"
	TID   int    // owning thread for reg/pc/status; -1 for mem/output
	Index uint64 // register number or memory address
	Orig  uint64
	Alt   uint64
}

func (d Diff) String() string {
	switch d.Kind {
	case "reg":
		return fmt.Sprintf("thread %d r%d: %d vs %d", d.TID, d.Index, d.Orig, d.Alt)
	case "pc":
		return fmt.Sprintf("thread %d pc: %d vs %d", d.TID, d.Orig, d.Alt)
	case "mem":
		return fmt.Sprintf("mem[0x%x]: %d vs %d", d.Index, d.Orig, d.Alt)
	case "output":
		return fmt.Sprintf("output diverged (%d vs %d values)", d.Orig, d.Alt)
	default:
		return fmt.Sprintf("%s thread %d: %d vs %d", d.Kind, d.TID, d.Orig, d.Alt)
	}
}

// Result is the analysis of one race instance.
type Result struct {
	Outcome    Outcome
	FailReason string // set for ReplayFailure
	Diffs      []Diff // set for StateChange

	// OrigFail and AltFail record each order's individual failure
	// reason ("" = that order replayed cleanly). Both orders always
	// run, so both fields are meaningful even when one failed — the
	// audit trail records what each order produced, not just the
	// combined verdict. Like everything in Result they are a pure
	// function of the instance's live-in fingerprint, so memoization
	// preserves them.
	OrigFail string
	AltFail  string
}

// Options tunes the virtual processor.
type Options struct {
	// Oracle, when set, supplies values for addresses outside the two
	// regions' live-ins instead of failing the replay — the §4.2.1
	// "log enough information to continue" extension. The base tool of
	// the paper runs without it.
	Oracle *replay.VersionedMemory
	// Metrics, when set, counts dual-order replays and their outcomes
	// (vproc.* counters). The counters are atomic, so the parallel
	// classification fan-out can share one registry.
	Metrics *obs.Registry
}

// Analyze replays the race instance in both orders and classifies it
// with the paper's base configuration (no oracle).
func Analyze(exec *replay.Execution, pair RacePair) Result {
	return AnalyzeOpts(exec, pair, Options{})
}

// AnalyzeOpts replays the race instance in both orders under the given
// options and classifies it.
func AnalyzeOpts(exec *replay.Execution, pair RacePair, opts Options) Result {
	return AnalyzeScratch(exec, pair, opts, nil)
}

// Scratch holds the reusable working state of one virtual-processor
// invocation: the copy-on-read memory views, heap bookkeeping, and the
// comparison buffers. A worker that analyzes many instances passes the
// same Scratch to every AnalyzeScratch call and pays the map and slice
// allocations only once; the maps are cleared, not reallocated, between
// instances. A Scratch must not be shared between concurrent calls.
// Results never alias scratch memory, so they stay valid (and safe to
// cache) after the scratch is reused.
type Scratch struct {
	// Two slots: the original order's live-out memory must survive while
	// the alternative order runs, so the two runs cannot share one set of
	// maps.
	slots [2]vpScratch
	addrs []uint64 // compare's sorted written-address buffer
}

type vpScratch struct {
	local   map[uint64]uint64
	written map[uint64]uint64
	freed   map[uint64]bool
	blocks  map[uint64]uint64
	output  []int64

	// In-place homes for the per-order working structs. runOrder re-
	// initializes them on entry, so only the maps and slices above carry
	// state (deliberately) across instances.
	vp     vp
	ta, tb vpThread
	state  runState
}

func (s *vpScratch) reset() {
	if s.local == nil {
		s.local = make(map[uint64]uint64)
		s.written = make(map[uint64]uint64)
		s.freed = make(map[uint64]bool)
		s.blocks = make(map[uint64]uint64)
	} else {
		clear(s.local)
		clear(s.written)
		clear(s.freed)
		clear(s.blocks)
	}
	s.output = s.output[:0]
}

// AnalyzeScratch is AnalyzeOpts reusing sc's buffers for the replay's
// working state. A nil sc allocates fresh state (exactly AnalyzeOpts).
func AnalyzeScratch(exec *replay.Execution, pair RacePair, opts Options, sc *Scratch) Result {
	// Canonicalize: region A is the earlier-scheduled region. The
	// "original order" approximation and the prefix execution order are
	// defined by the schedule, not by how the caller happened to present
	// the pair — so the verdict is a property of the instance itself.
	if pair.RegionB.Global < pair.RegionA.Global {
		pair.RegionA, pair.RegionB = pair.RegionB, pair.RegionA
		pair.IdxA, pair.IdxB = pair.IdxB, pair.IdxA
		pair.PCA, pair.PCB = pair.PCB, pair.PCA
	}
	if sc == nil {
		sc = &Scratch{}
	}
	reg := opts.Metrics
	reg.Counter("vproc.instances_analyzed").Inc()
	reg.Counter("vproc.order_replays").Add(2)
	orig, failO := runOrder(exec, pair, true, opts, &sc.slots[0])
	alt, failA := runOrder(exec, pair, false, opts, &sc.slots[1])
	if failO != "" {
		reg.Counter("vproc.order_failures_original").Inc()
		return Result{Outcome: ReplayFailure, FailReason: "original order: " + failO,
			OrigFail: failO, AltFail: failA}
	}
	if failA != "" {
		reg.Counter("vproc.order_failures_alternative").Inc()
		return Result{Outcome: ReplayFailure, FailReason: "alternative order: " + failA,
			AltFail: failA}
	}
	diffs := compare(orig, alt, sc)
	if len(diffs) == 0 {
		return Result{Outcome: NoStateChange}
	}
	reg.Counter("vproc.liveout_diffs").Add(uint64(len(diffs)))
	return Result{Outcome: StateChange, Diffs: diffs}
}

// runState is the live-out of one dual-region execution.
type runState struct {
	tidA, tidB   int
	cpuA, cpuB   machine.Cpu
	doneA, doneB bool
	written      map[uint64]uint64
	output       []int64
}

// runOrder executes the schedule with the racing pair in the given order
// (aFirst=true is the approximated original order). It returns the final
// state or a failure reason.
func runOrder(exec *replay.Execution, pair RacePair, aFirst bool, opts Options, sc *vpScratch) (*runState, string) {
	v := newVP(exec, pair, sc)
	defer func() { sc.output = v.output }() // keep the grown buffer for reuse
	v.oracle = opts.Oracle
	ta := v.newThread(pair.RegionA, &sc.ta)
	tb := v.newThread(pair.RegionB, &sc.tb)

	// Prefixes: each region up to (excluding) its racing operation.
	if msg := ta.runSteps(pair.IdxA - pair.RegionA.StartIdx); msg != "" {
		return nil, msg
	}
	if msg := tb.runSteps(pair.IdxB - pair.RegionB.StartIdx); msg != "" {
		return nil, msg
	}
	// The replay must have lined us up on the recorded racing
	// instructions; anything else is a control-flow divergence.
	if ta.cpu.PC != pair.PCA {
		return nil, fmt.Sprintf("control flow diverged before racing op in thread %d (pc %d, want %d)",
			ta.region.TID, ta.cpu.PC, pair.PCA)
	}
	if tb.cpu.PC != pair.PCB {
		return nil, fmt.Sprintf("control flow diverged before racing op in thread %d (pc %d, want %d)",
			tb.region.TID, tb.cpu.PC, pair.PCB)
	}

	// The racing operations, in the order under test.
	first, second := ta, tb
	if !aFirst {
		first, second = tb, ta
	}
	if msg := first.runSteps(1); msg != "" {
		return nil, msg
	}
	if msg := second.runSteps(1); msg != "" {
		return nil, msg
	}

	// Remainders, in a fixed order for both runs. An alternative order may
	// legitimately take a longer path to the region's closing sync (e.g.
	// one extra spin-loop iteration), so the remainder budget is generous;
	// a run that exhausts it without reaching the region's end is a
	// replay failure.
	budget := func(r *replay.Region) uint64 { return 4*(r.EndIdx-r.StartIdx) + 256 }
	if msg := ta.runSteps(budget(pair.RegionA)); msg != "" {
		return nil, msg
	}
	if msg := tb.runSteps(budget(pair.RegionB)); msg != "" {
		return nil, msg
	}
	if !ta.done || !tb.done {
		return nil, "step budget exhausted before the regions completed"
	}

	st := &sc.state
	*st = runState{
		tidA: pair.RegionA.TID, tidB: pair.RegionB.TID,
		cpuA: ta.cpu, cpuB: tb.cpu,
		doneA: ta.done, doneB: tb.done,
		written: v.written,
		output:  v.output,
	}
	return st, ""
}

// compare diffs two run states. The returned diffs are freshly
// allocated (they escape into the Result); only the address-collation
// buffer comes from the scratch.
func compare(o, a *runState, sc *Scratch) []Diff {
	var diffs []Diff
	cmpCpu := func(tid int, x, y machine.Cpu, dx, dy bool) {
		for i := range x.Regs {
			if x.Regs[i] != y.Regs[i] {
				diffs = append(diffs, Diff{Kind: "reg", TID: tid, Index: uint64(i), Orig: x.Regs[i], Alt: y.Regs[i]})
			}
		}
		if x.PC != y.PC {
			diffs = append(diffs, Diff{Kind: "pc", TID: tid, Orig: uint64(x.PC), Alt: uint64(y.PC)})
		}
		if dx != dy {
			diffs = append(diffs, Diff{Kind: "status", TID: tid, Orig: b2u(dx), Alt: b2u(dy)})
		}
	}
	cmpCpu(o.tidA, o.cpuA, a.cpuA, o.doneA, a.doneA)
	cmpCpu(o.tidB, o.cpuB, a.cpuB, o.doneB, a.doneB)

	// Union of written addresses in ascending order: collect both key
	// sets, sort, and skip adjacent duplicates (cheaper than a set map,
	// same iteration order).
	sorted := sc.addrs[:0]
	for k := range o.written {
		sorted = append(sorted, k)
	}
	for k := range a.written {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sc.addrs = sorted
	for i, k := range sorted {
		if i > 0 && sorted[i-1] == k {
			continue
		}
		x, y := o.written[k], a.written[k]
		if x != y {
			diffs = append(diffs, Diff{Kind: "mem", TID: -1, Index: k, Orig: x, Alt: y})
		}
	}

	if len(o.output) != len(a.output) {
		diffs = append(diffs, Diff{Kind: "output", TID: -1, Orig: uint64(len(o.output)), Alt: uint64(len(a.output))})
	} else {
		for i := range o.output {
			if o.output[i] != a.output[i] {
				diffs = append(diffs, Diff{Kind: "output", TID: -1, Index: uint64(i),
					Orig: uint64(o.output[i]), Alt: uint64(a.output[i])})
			}
		}
	}
	return diffs
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// vp is the shared state of one virtual processor.
type vp struct {
	exec       *replay.Execution
	oracle     *replay.VersionedMemory
	regA, regB *replay.Region
	local      map[uint64]uint64
	written    map[uint64]uint64
	heapEpoch  int
	freed      map[uint64]bool   // word-granular local frees
	blocks     map[uint64]uint64 // locally created allocations
	vheapNext  uint64
	output     []int64
}

func newVP(exec *replay.Execution, pair RacePair, sc *vpScratch) *vp {
	sc.reset()
	v := &sc.vp
	*v = vp{
		exec:      exec,
		regA:      pair.RegionA,
		regB:      pair.RegionB,
		local:     sc.local,
		written:   sc.written,
		heapEpoch: pair.RegionA.HeapEpoch,
		freed:     sc.freed,
		blocks:    sc.blocks,
		output:    sc.output,
		// Virtual allocations land far above anything real so they never
		// collide with recorded addresses; both orders allocate the same
		// way, keeping the comparison fair.
		vheapNext: isa.HeapBase << 8,
	}
	if pair.RegionB.HeapEpoch < v.heapEpoch {
		v.heapEpoch = pair.RegionB.HeapEpoch
	}
	return v
}

// liveInFor resolves a first read of addr by a thread running `own`: the
// thread prefers the value its own region observed at entry (that is what
// keeps prefix replay on the recorded path), and falls back to the other
// region's live-in for addresses only the peer captured.
func (v *vp) liveInFor(own *replay.Region, addr uint64) (uint64, bool) {
	if val, ok := own.LiveIn[addr]; ok {
		return val, true
	}
	other := v.regA
	if own == v.regA {
		other = v.regB
	}
	val, ok := other.LiveIn[addr]
	return val, ok
}

func (v *vp) poisoned(addr uint64) bool {
	if v.freed[addr] {
		return true
	}
	return v.exec.PoisonedAt(addr, v.heapEpoch)
}

// vpThread executes one region's instruction stream on the vp.
type vpThread struct {
	vp      *vp
	region  *replay.Region
	log     *trace.ThreadLog
	cpu     machine.Cpu
	idx     uint64 // thread-local instruction index (within the original log)
	closePC int    // pc of the sync instruction that closed the region, or -1
	done    bool
	fail    string
}

func (v *vp) newThread(region *replay.Region, t *vpThread) *vpThread {
	// The region's closing sync instruction is the opener of the thread's
	// next region; reaching its pc means the region completed.
	closePC := -1
	if th := v.exec.Thread(region.TID); th != nil && region.Ordinal+1 < len(th.Regions) {
		closePC = th.Regions[region.Ordinal+1].StartCpu.PC
	}
	*t = vpThread{
		vp:      v,
		region:  region,
		log:     v.exec.Log.Thread(region.TID),
		cpu:     region.StartCpu,
		idx:     region.StartIdx,
		closePC: closePC,
	}
	return t
}

// runSteps executes up to n instructions, stopping early if the thread
// terminates. It returns a non-empty failure reason on replay failure.
func (t *vpThread) runSteps(n uint64) string {
	for i := uint64(0); i < n; i++ {
		if t.done {
			return ""
		}
		code := t.vp.exec.Prog.Code
		if t.cpu.PC < 0 || t.cpu.PC >= len(code) {
			return fmt.Sprintf("control flow left the program (pc %d)", t.cpu.PC)
		}
		ins := code[t.cpu.PC]
		// Synchronization instructions delimit regions. Reaching the
		// region's own closing sync is normal completion; reaching any
		// other sync means the path left the recorded region — the log
		// cannot answer for what lies beyond, so the replay fails (§4.2.1).
		if ins.Op.IsSync() && t.idx != t.region.StartIdx {
			if t.cpu.PC == t.closePC {
				t.done = true
				return ""
			}
			return fmt.Sprintf("diverged out of the region (hit %v at pc %d)", ins.Op, t.cpu.PC)
		}
		out, f := machine.Step(&t.cpu, code, t)
		if t.fail != "" {
			return t.fail
		}
		if f != nil {
			return fmt.Sprintf("fault during replay: %v", f)
		}
		switch out {
		case machine.StepHalt, machine.StepExited:
			t.idx++
			t.done = true
		case machine.StepBlocked:
			return "blocked inside virtual processor"
		default:
			t.idx++
		}
		// A region closed by the end of the recording (budget-exhausted
		// thread) has no closing sync; stop at the recorded boundary.
		if !t.done && t.closePC == -1 && t.log.EndReason == trace.EndRunning && t.idx >= t.region.EndIdx {
			t.done = true
			return ""
		}
	}
	return ""
}

// Load implements machine.Env with copy-on-read from live-in memory.
func (t *vpThread) Load(addr uint64, atomic bool, pc int) (uint64, *machine.Fault) {
	v := t.vp
	if addr < isa.NullGuardTop {
		return 0, &machine.Fault{Kind: machine.FaultNullAccess, PC: pc, Addr: addr}
	}
	if v.poisoned(addr) {
		return 0, &machine.Fault{Kind: machine.FaultUseAfterFree, PC: pc, Addr: addr}
	}
	if val, ok := v.local[addr]; ok {
		return val, nil
	}
	if val, ok := v.liveInFor(t.region, addr); ok {
		v.local[addr] = val
		return val, nil
	}
	if v.oracle != nil {
		// §4.2.1 extension: continue with the value memory held before
		// the earlier of the two regions ran.
		global := v.regA.Global
		if v.regB.Global < global {
			global = v.regB.Global
		}
		if val, ok := v.oracle.Before(addr, global); ok {
			v.local[addr] = val
			return val, nil
		}
	}
	t.fail = fmt.Sprintf("read of address 0x%x not captured in live-in memory", addr)
	return 0, &machine.Fault{Kind: machine.FaultInvalidOp, PC: pc, Addr: addr}
}

// Store implements machine.Env.
func (t *vpThread) Store(addr, val uint64, atomic bool, pc int) *machine.Fault {
	v := t.vp
	if addr < isa.NullGuardTop {
		return &machine.Fault{Kind: machine.FaultNullAccess, PC: pc, Addr: addr}
	}
	if v.poisoned(addr) {
		return &machine.Fault{Kind: machine.FaultUseAfterFree, PC: pc, Addr: addr}
	}
	v.local[addr] = val
	v.written[addr] = val
	return nil
}

// Lock implements machine.Env; region openers never block in a vproc.
func (t *vpThread) Lock(addr uint64, pc int) (bool, *machine.Fault) { return false, nil }

// Unlock implements machine.Env.
func (t *vpThread) Unlock(addr uint64, pc int) *machine.Fault { return nil }

// Syscall implements machine.Env. Only a region's opening instruction can
// be a syscall; its recorded result is injected so the replay stays on the
// recorded path. Allocation and free are additionally modeled locally so
// alternative orders reproduce heap faults.
func (t *vpThread) Syscall(cpu *machine.Cpu, num int64, pc int) (machine.SysOutcome, *machine.Fault) {
	v := t.vp
	switch num {
	case isa.SysExit:
		return machine.SysExited, nil
	case isa.SysPrint:
		v.output = append(v.output, int64(cpu.Regs[1]))
		return machine.SysDone, nil
	case isa.SysFree:
		base := cpu.Regs[1]
		size, ok := v.blocks[base]
		if ok {
			delete(v.blocks, base)
		} else if s, live := v.exec.BlockAt(base, v.heapEpoch); live && !v.freedBase(base) {
			size = s
			ok = true
		}
		if !ok {
			return machine.SysDone, &machine.Fault{Kind: machine.FaultBadFree, PC: pc, Addr: base}
		}
		for i := uint64(0); i < size; i++ {
			v.freed[base+i] = true
		}
		cpu.Regs[1] = 0
		return machine.SysDone, nil
	case isa.SysAlloc:
		n := cpu.Regs[1]
		if n == 0 {
			n = 1
		}
		base := v.vheapNext
		v.vheapNext += n
		v.blocks[base] = n
		for i := uint64(0); i < n; i++ {
			v.local[base+i] = 0
		}
		cpu.Regs[1] = base
		return machine.SysDone, nil
	case isa.SysYield, isa.SysNop:
		cpu.Regs[1] = 0
		return machine.SysDone, nil
	case isa.SysGettid:
		cpu.Regs[1] = uint64(t.region.TID)
		return machine.SysDone, nil
	}

	// rand / time / spawn / join: inject the recorded result if this is
	// the region's opening syscall; otherwise we have diverged into
	// behavior the log cannot answer for.
	if t.idx == t.region.StartIdx {
		for _, rec := range t.log.SysRets {
			if rec.Idx == t.idx {
				cpu.Regs[1] = rec.Res
				return machine.SysDone, nil
			}
		}
	}
	t.fail = fmt.Sprintf("unreplayable syscall %s at pc %d", isa.SyscallName(num), pc)
	return machine.SysDone, &machine.Fault{Kind: machine.FaultInvalidOp, PC: pc}
}

// freedBase reports whether base was already freed locally.
func (v *vp) freedBase(base uint64) bool { return v.freed[base] }
