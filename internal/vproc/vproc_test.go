package vproc

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/replay"
)

// pipeline records src, replays it, detects races, and returns everything.
func pipeline(t *testing.T, src string, seed int64) (*replay.Execution, *hb.Report) {
	t.Helper()
	prog, err := asm.Assemble("vp", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exec, hb.Detect(exec)
}

// pairOf converts an hb instance into a vproc RacePair.
func pairOf(inst hb.Instance) RacePair {
	return RacePair{
		RegionA: inst.RegionA, RegionB: inst.RegionB,
		IdxA: inst.First.Idx, IdxB: inst.Second.Idx,
		PCA: inst.First.PC, PCB: inst.Second.PC,
		Addr: inst.Addr,
	}
}

// analyzeAll runs Analyze over every instance of every race and returns
// the multiset of outcomes keyed by the race's site-pair string.
func analyzeAll(t *testing.T, exec *replay.Execution, rep *hb.Report) map[string][]Result {
	t.Helper()
	out := make(map[string][]Result)
	for _, race := range rep.Races {
		for _, inst := range race.Instances {
			out[race.Sites.String()] = append(out[race.Sites.String()], Analyze(exec, pairOf(inst)))
		}
	}
	return out
}

const spawnTwoTail = `
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

func TestRedundantWriteIsNoStateChange(t *testing.T) {
	// Both workers store the value that is already there; racing write
	// pairs commute trivially.
	src := `
.entry main
.word g 5
worker:
  ldi r2, g
  ldi r3, 5
wstore:
  st [r2+0], r3
  ld r4, [r2+0]
  ldi r1, 0
  sys exit
` + spawnTwoTail
	checked := false
	for seed := int64(1); seed <= 15; seed++ {
		exec, rep := pipeline(t, src, seed)
		for sites, results := range analyzeAll(t, exec, rep) {
			if !strings.Contains(sites, "wstore") {
				continue
			}
			checked = true
			for _, res := range results {
				if res.Outcome != NoStateChange {
					t.Errorf("seed %d %s: outcome = %v (%s; diffs %v), want no-state-change",
						seed, sites, res.Outcome, res.FailReason, res.Diffs)
				}
			}
		}
	}
	if !checked {
		t.Fatal("redundant-write race never observed")
	}
}

func TestValueChangingRaceIsStateChange(t *testing.T) {
	// Worker 0 stores its arg+1 (1 or 2 -> distinct values); worker 1
	// loads into r4 and keeps it live to the end of the region: swapping
	// the order flips r4's live-out.
	src := `
.entry main
.word g 0
worker:
  ldi r2, g
  beq r1, r0, reader
  ldi r3, 77
wstore:
  st [r2+0], r3
  ldi r1, 0
  sys exit
reader:
wread:
  ld r4, [r2+0]
  ldi r1, 0
  sys exit
` + spawnTwoTail
	sawChange := false
	for seed := int64(1); seed <= 20 && !sawChange; seed++ {
		exec, rep := pipeline(t, src, seed)
		for sites, results := range analyzeAll(t, exec, rep) {
			if !strings.Contains(sites, "wstore") || !strings.Contains(sites, "reader") {
				continue
			}
			for _, res := range results {
				if res.Outcome == StateChange {
					sawChange = true
					foundReg := false
					for _, d := range res.Diffs {
						if d.Kind == "reg" {
							foundReg = true
						}
					}
					if !foundReg {
						t.Errorf("state change without register diff: %v", res.Diffs)
					}
				}
			}
		}
	}
	if !sawChange {
		t.Error("store/load race never produced a state change")
	}
}

func TestSpinFlagHandoffIsNoStateChange(t *testing.T) {
	// User-constructed synchronization (paper §5.4 category 1): the
	// producer sets a flag with a plain store; the consumer spins on a
	// plain load. The happens-before detector flags the pair, but in both
	// orders the consumer ends up past the loop with the same state, so
	// the classifier calls it potentially benign.
	src := `
.entry main
.word flag 0
.word data 0
producer:
  ldi r2, data
  ldi r3, 42
  st [r2+0], r3
  ldi r4, flag
  ldi r5, 1
pstore:
  st [r4+0], r5
  ldi r1, 0
  sys exit
consumer:
  ldi r4, flag
cspin:
  ld r5, [r4+0]
  beq r5, r0, cspin
  ldi r2, data
  ld r6, [r2+0]
  mov r1, r6
  sys print
  ldi r1, 0
  sys exit
main:
  ldi r1, producer
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, consumer
  ldi r2, 0
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`
	sawFlagRace := false
	for seed := int64(1); seed <= 20; seed++ {
		exec, rep := pipeline(t, src, seed)
		for sites, results := range analyzeAll(t, exec, rep) {
			if !strings.Contains(sites, "pstore") || !strings.Contains(sites, "cspin") {
				continue
			}
			sawFlagRace = true
			for _, res := range results {
				if res.Outcome != NoStateChange {
					t.Errorf("seed %d %s: outcome = %v (%s; %v), want no-state-change",
						seed, sites, res.Outcome, res.FailReason, res.Diffs)
				}
			}
		}
	}
	if !sawFlagRace {
		t.Error("flag handoff race never observed")
	}
}

func TestDivergenceIntoLockedPathIsReplayFailure(t *testing.T) {
	// Double-check idiom: if the alternative order flips the unsynchronized
	// first check, the thread heads into the lock-protected slow path —
	// a synchronization instruction the region never recorded. That must
	// surface as a replay failure (the paper's §4.2.1 limitation).
	src := `
.entry main
.word mu 0
.word inited 0
.word obj 0
worker:
  ldi r2, inited
dcheck:
  ld r3, [r2+0]
  bne r3, r0, ready
  ldi r4, mu
  lock [r4+0]
  ld r3, [r2+0]
  bne r3, r0, inlock
  ldi r5, obj
  ldi r6, 99
  st [r5+0], r6
  ldi r3, 1
dstore:
  st [r2+0], r3
inlock:
  ldi r4, mu
  unlock [r4+0]
ready:
  ldi r5, obj
  ld r7, [r5+0]
  ldi r1, 0
  sys exit
` + spawnTwoTail
	sawFailure := false
	for seed := int64(1); seed <= 30 && !sawFailure; seed++ {
		exec, rep := pipeline(t, src, seed)
		for sites, results := range analyzeAll(t, exec, rep) {
			if !strings.Contains(sites, "dcheck") && !strings.Contains(sites, "dstore") {
				continue
			}
			for _, res := range results {
				if res.Outcome == ReplayFailure {
					sawFailure = true
				}
			}
		}
	}
	if !sawFailure {
		t.Error("double-check divergence never produced a replay failure")
	}
}

func TestRefcountBugIsPotentiallyHarmful(t *testing.T) {
	// The paper's Figure 2: both threads decrement a reference count with
	// plain loads/stores and free the object when it reaches zero. Some
	// instance must classify as state change or replay failure.
	src := `
.entry main
.word foo 0
setup:
main:
  ldi r1, 1
  sys alloc
  mov r4, r1
  ldi r3, 2
  st [r4+0], r3      ; refCnt = 2
  ldi r2, foo
  st [r2+0], r4      ; foo = &obj
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
worker:
  ldi r2, foo
  ld r4, [r2+0]      ; r4 = obj
rcload:
  ld r5, [r4+0]      ; load refCnt
  addi r5, r5, -1
rcstore:
  st [r4+0], r5      ; store refCnt-1
rccheck:
  ld r6, [r4+0]      ; re-read
  bne r6, r0, done
  mov r1, r4
  sys free           ; free when count hits zero
done:
  ldi r1, 0
  sys exit
`
	harmful := false
	for seed := int64(1); seed <= 30 && !harmful; seed++ {
		exec, rep := pipeline(t, src, seed)
		for sites, results := range analyzeAll(t, exec, rep) {
			if !strings.Contains(sites, "rc") {
				continue
			}
			for _, res := range results {
				if res.Outcome == StateChange || res.Outcome == ReplayFailure {
					harmful = true
				}
			}
		}
	}
	if !harmful {
		t.Error("refcount bug never classified as potentially harmful")
	}
}

func TestNullDereferenceInAlternativeOrderFaults(t *testing.T) {
	// Worker 1 nulls a shared pointer; worker 0 loads the pointer and
	// dereferences it within the same region. In the alternative order the
	// load sees 0 and the dereference faults — a replay failure whose
	// reason names the fault.
	src := `
.entry main
.word p 0
main:
  ldi r1, 1
  sys alloc
  mov r4, r1
  ldi r3, 7
  st [r4+0], r3
  ldi r2, p
  st [r2+0], r4
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
worker:
  ldi r2, p
  beq r1, r0, reader
nuller:
  st [r2+0], r0      ; p = null
  ldi r1, 0
  sys exit
reader:
pload:
  ld r4, [r2+0]      ; load p
pderef:
  ld r5, [r4+0]      ; dereference
  ldi r1, 0
  sys exit
`
	sawFault := false
	for seed := int64(1); seed <= 30 && !sawFault; seed++ {
		exec, rep := pipeline(t, src, seed)
		for sites, results := range analyzeAll(t, exec, rep) {
			if !strings.Contains(sites, "nuller") || !strings.Contains(sites, "pload") {
				continue
			}
			for _, res := range results {
				if res.Outcome == ReplayFailure && strings.Contains(res.FailReason, "null-access") {
					sawFault = true
				}
			}
		}
	}
	if !sawFault {
		t.Error("null-pointer race never faulted in the alternative order")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{NoStateChange, StateChange, ReplayFailure} {
		if strings.HasPrefix(o.String(), "outcome(") {
			t.Errorf("outcome %d unnamed", o)
		}
	}
	if Outcome(9).String() != "outcome(9)" {
		t.Error("unknown outcome should render numerically")
	}
}

func TestDiffStrings(t *testing.T) {
	cases := []Diff{
		{Kind: "reg", TID: 1, Index: 4, Orig: 1, Alt: 2},
		{Kind: "pc", TID: 0, Orig: 3, Alt: 9},
		{Kind: "mem", TID: -1, Index: 0x1000, Orig: 5, Alt: 6},
		{Kind: "output", TID: -1, Orig: 1, Alt: 2},
		{Kind: "status", TID: 0, Orig: 0, Alt: 1},
	}
	for _, d := range cases {
		if d.String() == "" {
			t.Errorf("empty diff string for %+v", d)
		}
	}
}
