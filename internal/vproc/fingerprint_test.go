package vproc

import (
	"reflect"
	"testing"
)

// fpSrc races two workers on g (one store, one load) so every seed that
// interleaves them yields instances with non-trivial live-in memory.
const fpSrc = `
.entry main
.word g 5
.word h 9
worker:
  ldi r2, g
  ldi r3, h
  beq r1, r0, reader
  ldi r4, 41
wstore:
  st [r2+0], r4
  ld r5, [r3+0]
  ldi r1, 0
  sys exit
reader:
rload:
  ld r4, [r2+0]
  ld r5, [r3+0]
  ldi r1, 0
  sys exit
` + spawnTwoTail

// TestFingerprintDistinguishesLiveInMemory is the collision unit test
// the cache's soundness rests on: two instances whose live-in memory
// differs must not share a fingerprint, because the replay would read
// different values.
func TestFingerprintDistinguishesLiveInMemory(t *testing.T) {
	tested := false
	for seed := int64(1); seed <= 15 && !tested; seed++ {
		exec, rep := pipeline(t, fpSrc, seed)
		for _, race := range rep.Races {
			for _, inst := range race.Instances {
				pair := pairOf(inst)
				before := NewFingerprinter(exec).Instance(pair, Options{}, 0)

				// Mutate one live-in memory value the replay can read. The
				// fingerprinter caches region digests, so a fresh one is
				// built for the mutated execution.
				region := pair.RegionA
				if len(region.LiveIn) == 0 {
					region = pair.RegionB
				}
				if len(region.LiveIn) == 0 {
					continue
				}
				var addr uint64
				for a := range region.LiveIn {
					addr = a
					break
				}
				old := region.LiveIn[addr]
				region.LiveIn[addr] = old + 1
				after := NewFingerprinter(exec).Instance(pair, Options{}, 0)
				region.LiveIn[addr] = old

				if before == after {
					t.Fatalf("seed %d %s: fingerprint unchanged after mutating live-in mem[0x%x]",
						seed, race.Sites, addr)
				}
				tested = true
			}
		}
	}
	if !tested {
		t.Fatal("no instance with live-in memory was ever observed")
	}
}

// TestFingerprintCanonicalizesPairOrder: the fingerprint is a property
// of the instance, not of how the caller ordered the regions — swapping
// A and B (with their indices and PCs) must hash identically, exactly
// as AnalyzeOpts canonicalizes before replaying.
func TestFingerprintCanonicalizesPairOrder(t *testing.T) {
	checked := false
	for seed := int64(1); seed <= 10 && !checked; seed++ {
		exec, rep := pipeline(t, fpSrc, seed)
		fper := NewFingerprinter(exec)
		for _, race := range rep.Races {
			for _, inst := range race.Instances {
				pair := pairOf(inst)
				swapped := RacePair{
					RegionA: pair.RegionB, RegionB: pair.RegionA,
					IdxA: pair.IdxB, IdxB: pair.IdxA,
					PCA: pair.PCB, PCB: pair.PCA,
					Addr: pair.Addr,
				}
				if fper.Instance(pair, Options{}, 0) != fper.Instance(swapped, Options{}, 0) {
					t.Fatalf("seed %d %s: swapped pair fingerprints differ", seed, race.Sites)
				}
				checked = true
			}
		}
	}
	if !checked {
		t.Fatal("no race instance was ever observed")
	}
}

// TestEqualFingerprintsEqualResults pins the cache's contract on real
// executions: within and across recordings, instances that hash equal
// must analyze equal — the invariant that makes returning a cached
// result verbatim sound.
func TestEqualFingerprintsEqualResults(t *testing.T) {
	type entry struct {
		res   Result
		seed  int64
		sites string
	}
	byFp := make(map[Fingerprint]entry)
	collisions := 0
	for _, seed := range []int64{3, 3, 5, 7} { // seed 3 twice: identical recordings must collide
		exec, rep := pipeline(t, fpSrc, seed)
		fper := NewFingerprinter(exec)
		for _, race := range rep.Races {
			for _, inst := range race.Instances {
				pair := pairOf(inst)
				fp := fper.Instance(pair, Options{}, 0)
				res := AnalyzeOpts(exec, pair, Options{})
				if prev, ok := byFp[fp]; ok {
					collisions++
					if !reflect.DeepEqual(prev.res, res) {
						t.Fatalf("fingerprint collision with unequal results:\n seed %d %s: %+v\n seed %d %s: %+v",
							prev.seed, prev.sites, prev.res, seed, race.Sites, res)
					}
				} else {
					byFp[fp] = entry{res, seed, race.Sites.String()}
				}
			}
		}
	}
	if collisions == 0 {
		t.Fatal("re-recording the same seed produced no equal fingerprints — cache would never hit")
	}
}

// TestAnalyzeScratchMatchesAnalyzeOpts: one Scratch reused across every
// instance must yield results deeply equal to fresh-allocation analysis —
// the allocation-lean path cannot leak state between instances.
func TestAnalyzeScratchMatchesAnalyzeOpts(t *testing.T) {
	var sc Scratch
	instances := 0
	for seed := int64(1); seed <= 10; seed++ {
		exec, rep := pipeline(t, fpSrc, seed)
		for _, race := range rep.Races {
			for _, inst := range race.Instances {
				pair := pairOf(inst)
				fresh := AnalyzeOpts(exec, pair, Options{})
				reused := AnalyzeScratch(exec, pair, Options{}, &sc)
				if !reflect.DeepEqual(fresh, reused) {
					t.Fatalf("seed %d %s: scratch result %+v != fresh result %+v",
						seed, race.Sites, reused, fresh)
				}
				instances++
			}
		}
	}
	if instances == 0 {
		t.Fatal("no race instance was ever observed")
	}
}
