package vproc

import (
	"strings"
	"testing"
)

// Regions whose opening instruction is a syscall, lock, or unlock must
// replay through the opener. These tests put the racing accesses in such
// regions.

func TestRegionOpenedByUnlockAndLock(t *testing.T) {
	// The racing store sits right after an unlock, so its region's opener
	// is the unlock; the reader's racing load sits right after a lock.
	src := `
.entry main
.word mu 0
.word g 0
writer:
  ldi r4, mu
  lock [r4+0]
  ldi r2, g
  unlock [r4+0]
wst:
  st [r2+0], r2
  ldi r1, 0
  sys exit
reader:
  ldi r4, mu
  ldi r2, g
  lock [r4+0]
rld:
  ld r3, [r2+0]
  unlock [r4+0]
  ldi r1, 0
  sys exit
main:
  ldi r1, writer
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, reader
  ldi r2, 0
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`
	analyzed := false
	for seed := int64(1); seed <= 25 && !analyzed; seed++ {
		exec, rep := pipeline(t, src, seed)
		for _, race := range rep.Races {
			if !strings.Contains(race.Sites.String(), "wst") {
				continue
			}
			for _, inst := range race.Instances {
				res := Analyze(exec, pairOf(inst))
				// Whatever the verdict, the opener must not break replay
				// with a bogus reason.
				if res.Outcome == ReplayFailure &&
					strings.Contains(res.FailReason, "unreplayable") {
					t.Errorf("seed %d: opener syscall failed: %s", seed, res.FailReason)
				}
				analyzed = true
			}
		}
	}
	if !analyzed {
		t.Skip("lock-region race never observed")
	}
}

func TestRegionOpenedByAllocAndRand(t *testing.T) {
	// Each worker's racing store sits in a region opened by a syscall
	// with a logged result (alloc / rand); the vproc must inject or
	// simulate them and still line up the racing instruction.
	src := `
.entry main
.word g 0
alloco:
  ldi r1, 1
  sys alloc
  mov r5, r1
  ldi r2, g
ast:
  st [r2+0], r2
  ldi r1, 0
  sys exit
rando:
  sys rand
  andi r6, r1, 7
  ldi r2, g
rld:
  ld r3, [r2+0]
  ldi r1, 0
  sys exit
main:
  ldi r1, alloco
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, rando
  ldi r2, 0
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`
	analyzed := false
	for seed := int64(1); seed <= 30 && !analyzed; seed++ {
		exec, rep := pipeline(t, src, seed)
		for _, race := range rep.Races {
			for _, inst := range race.Instances {
				res := Analyze(exec, pairOf(inst))
				if res.Outcome == ReplayFailure &&
					(strings.Contains(res.FailReason, "unreplayable") ||
						strings.Contains(res.FailReason, "diverged before")) {
					t.Errorf("seed %d %v: %s", seed, race.Sites, res.FailReason)
				}
				analyzed = true
			}
		}
	}
	if !analyzed {
		t.Skip("no race observed")
	}
}

func TestDoubleFreeInAlternativeOrderFaults(t *testing.T) {
	// The freer releases a block and raises a plain flag; the cleaner
	// frees the block only if the flag is still down. If the recorded run
	// had the cleaner skip (flag already up), the alternative order sends
	// it into a second free of the same block: a bad-free replay failure.
	src := `
.entry main
.word blk 0
.word freed 0
main:
  ldi r1, 1
  sys alloc
  mov r4, r1
  ldi r2, blk
  st [r2+0], r4
  ldi r1, freer
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, cleaner
  ldi r2, 0
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
freer:
  ldi r2, blk
  ld r4, [r2+0]
  mov r1, r4
  sys free
  ldi r2, freed
  ldi r3, 1
fst:
  st [r2+0], r3
  ldi r1, 0
  sys exit
cleaner:
  ldi r6, 25
cwarm:
  addi r6, r6, -1
  bne r6, r0, cwarm
  ldi r2, freed
cld:
  ld r3, [r2+0]
  bne r3, r0, cskip
  ldi r2, blk
  ld r4, [r2+0]
  mov r1, r4
  sys free
cskip:
  ldi r3, 0
  ldi r4, 0
  ldi r1, 0
  sys exit
`
	sawBadFree := false
	for seed := int64(1); seed <= 40 && !sawBadFree; seed++ {
		exec, rep := pipeline(t, src, seed)
		for _, race := range rep.Races {
			if !strings.Contains(race.Sites.String(), "fst") {
				continue
			}
			for _, inst := range race.Instances {
				res := Analyze(exec, pairOf(inst))
				if res.Outcome == ReplayFailure {
					sawBadFree = true
				}
			}
		}
	}
	if !sawBadFree {
		t.Error("double-free divergence never produced a replay failure")
	}
}

func TestPrintOpenerRegionsCompareOutput(t *testing.T) {
	// The racing load sits in a region opened by a print; the printed
	// value enters the vproc output stream.
	src := `
.entry main
.word g 0
writer:
  ldi r2, g
  ldi r3, 9
wst:
  st [r2+0], r3
  ldi r1, 0
  sys exit
logger:
  ldi r1, 1
  sys print
  ldi r2, g
lld:
  ld r7, [r2+0]
  ldi r1, 0
  sys exit
main:
  ldi r1, writer
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, logger
  ldi r2, 0
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`
	analyzed := false
	for seed := int64(1); seed <= 30 && !analyzed; seed++ {
		exec, rep := pipeline(t, src, seed)
		for _, race := range rep.Races {
			if !strings.Contains(race.Sites.String(), "lld") {
				continue
			}
			for _, inst := range race.Instances {
				res := Analyze(exec, pairOf(inst))
				if res.Outcome == ReplayFailure {
					t.Errorf("seed %d: print opener broke replay: %s", seed, res.FailReason)
				}
				analyzed = true
			}
		}
	}
	if !analyzed {
		t.Skip("race never observed in the print-opened region")
	}
}

func TestGettidYieldNopOpeners(t *testing.T) {
	src := `
.entry main
.word g 0
wa:
  sys gettid
  ldi r2, g
awr:
  st [r2+0], r2
  ldi r1, 0
  sys exit
wb:
  sys yield
  sys sysnop
  ldi r2, g
bld:
  ld r3, [r2+0]
  ldi r1, 0
  sys exit
main:
  ldi r1, wa
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, wb
  ldi r2, 0
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`
	for seed := int64(1); seed <= 30; seed++ {
		exec, rep := pipeline(t, src, seed)
		for _, race := range rep.Races {
			for _, inst := range race.Instances {
				res := Analyze(exec, pairOf(inst))
				if res.Outcome == ReplayFailure && strings.Contains(res.FailReason, "unreplayable") {
					t.Errorf("seed %d: %s", seed, res.FailReason)
				}
			}
		}
	}
}
