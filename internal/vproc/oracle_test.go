package vproc

import (
	"testing"

	"repro/internal/replay"
)

// TestOracleContinuesThroughUnknownReads reproduces the §4.2.1 situation:
// a benign race whose alternative order reads an address the recorded
// regions never captured. The base tool must declare a replay failure
// (and hence misclassify the race as potentially harmful); with the
// versioned-memory oracle the replay continues, the divergent path
// converges, and the instance classifies No-State-Change — the fix the
// paper says "additional support in iDNA" would enable.
func TestOracleContinuesThroughUnknownReads(t *testing.T) {
	// extra is initialized by main before any worker spawns, so its value
	// is on record — but the reader only touches it on the path it did
	// NOT take in the recording.
	src := `
.entry main
.word flag 0
.word extra 0
writer:
  ldi r6, 30
wwarm:
  addi r6, r6, -1
  bne r6, r0, wwarm
  ldi r2, flag
  ldi r3, 1
wstore:
  st [r2+0], r3
  ldi r1, 0
  sys exit
reader:
  ldi r2, flag
rload:
  ld r3, [r2+0]
  beq r3, r0, rskip
  ldi r4, extra
  ld r5, [r4+0]      ; only executed when the flag was seen set
rskip:
  ldi r3, 0
  ldi r5, 0
  ldi r1, 0
  sys exit
main:
  ldi r2, extra
  ldi r3, 99
  st [r2+0], r3
  ldi r1, writer
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, reader
  ldi r2, 0
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`
	sawBoth := false
	for seed := int64(1); seed <= 40 && !sawBoth; seed++ {
		exec, rep := pipeline(t, src, seed)
		oracle := replay.BuildVersionedMemory(exec)
		for _, race := range rep.Races {
			for _, inst := range race.Instances {
				// Only instances where the recorded reader took the skip
				// path expose the unknown read under the flipped order.
				base := Analyze(exec, pairOf(inst))
				withOracle := AnalyzeOpts(exec, pairOf(inst), Options{Oracle: oracle})
				if base.Outcome == ReplayFailure && withOracle.Outcome == NoStateChange {
					sawBoth = true
				}
				// The oracle must never make things worse.
				if base.Outcome == NoStateChange && withOracle.Outcome != NoStateChange {
					t.Errorf("seed %d: oracle degraded outcome %v -> %v (%s)",
						seed, base.Outcome, withOracle.Outcome, withOracle.FailReason)
				}
			}
		}
	}
	if !sawBoth {
		t.Error("no instance showed replay-failure without oracle but no-state-change with it")
	}
}

// TestOracleLeavesControlFlowFailuresAlone: divergence into a
// synchronization instruction is not an unknown-address problem; the
// oracle must not change those verdicts.
func TestOracleLeavesControlFlowFailuresAlone(t *testing.T) {
	src := `
.entry main
.word flag 0
prod:
  ldi r6, 40
warm:
  addi r6, r6, -1
  bne r6, r0, warm
  ldi r4, flag
  ldi r5, 1
pset:
  st [r4+0], r5
  ldi r1, 0
  sys exit
waiter:
  ldi r4, flag
spin:
  ld r5, [r4+0]
  bne r5, r0, go
  sys yield
  jmp spin
go:
  ldi r1, 0
  sys exit
main:
  ldi r1, prod
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, waiter
  ldi r2, 0
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`
	checked := false
	for seed := int64(1); seed <= 40 && !checked; seed++ {
		exec, rep := pipeline(t, src, seed)
		oracle := replay.BuildVersionedMemory(exec)
		for _, race := range rep.Races {
			for _, inst := range race.Instances {
				base := Analyze(exec, pairOf(inst))
				if base.Outcome != ReplayFailure {
					continue
				}
				withOracle := AnalyzeOpts(exec, pairOf(inst), Options{Oracle: oracle})
				if withOracle.Outcome != ReplayFailure {
					t.Errorf("seed %d: control-flow failure changed to %v with oracle", seed, withOracle.Outcome)
				}
				checked = true
			}
		}
	}
	if !checked {
		t.Skip("no control-flow replay failure observed on these seeds")
	}
}
