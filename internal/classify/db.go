package classify

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/hb"
)

// Mark is a developer verdict recorded after manually triaging a race.
type Mark struct {
	SiteA   string `json:"site_a"`
	SiteB   string `json:"site_b"`
	Verdict string `json:"verdict"` // "benign" or "harmful"
	Note    string `json:"note,omitempty"`
}

// DB is the persistent race database (§1): once a developer triages a
// race reported as potentially harmful and finds it benign, it is marked
// here and suppressed from future reports. Safe for concurrent use.
type DB struct {
	mu    sync.Mutex
	marks map[hb.SitePair]Mark
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{marks: make(map[hb.SitePair]Mark)}
}

// MarkBenign records a manual benign verdict.
func (db *DB) MarkBenign(sites hb.SitePair, note string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.marks[sites] = Mark{SiteA: sites.A, SiteB: sites.B, Verdict: "benign", Note: note}
}

// MarkHarmful records a manual harmful verdict (kept for the record;
// harmful races stay in reports until the code is fixed).
func (db *DB) MarkHarmful(sites hb.SitePair, note string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.marks[sites] = Mark{SiteA: sites.A, SiteB: sites.B, Verdict: "harmful", Note: note}
}

// IsMarkedBenign reports whether a developer vetted this race as benign.
func (db *DB) IsMarkedBenign(sites hb.SitePair) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.marks[sites]
	return ok && m.Verdict == "benign"
}

// Marks returns all marks sorted by site pair.
func (db *DB) Marks() []Mark {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]Mark, 0, len(db.marks))
	for _, m := range db.marks {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SiteA != out[j].SiteA {
			return out[i].SiteA < out[j].SiteA
		}
		return out[i].SiteB < out[j].SiteB
	})
	return out
}

// Save writes the database as JSON to path.
func (db *DB) Save(path string) error {
	data, err := json.MarshalIndent(db.Marks(), "", "  ")
	if err != nil {
		return fmt.Errorf("classify: encode db: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadDB reads a database written by Save. A missing file yields an empty
// database, so first runs need no setup. On any other failure — an
// unreadable file, truncated or garbage JSON — the returned database is
// still non-nil, empty, and usable alongside the error, so a caller that
// chooses to proceed degrades to "no suppressions" instead of crashing
// on a nil DB.
func LoadDB(path string) (*DB, error) {
	db := NewDB()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return db, nil
	}
	if err != nil {
		return db, err
	}
	var marks []Mark
	if err := json.Unmarshal(data, &marks); err != nil {
		return db, fmt.Errorf("classify: parse db %s: %w", path, err)
	}
	for _, m := range marks {
		db.marks[hb.MakeSitePair(m.SiteA, m.SiteB)] = m
	}
	return db, nil
}
