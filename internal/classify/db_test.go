package classify

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hb"
)

// TestLoadDBBadContentReturnsUsableDB: every load failure — truncated
// JSON, garbage bytes, a path that is a directory — must return an
// error AND a non-nil, empty, fully usable database, so callers that
// proceed degrade to "no suppressions" instead of crashing on nil.
func TestLoadDBBadContentReturnsUsableDB(t *testing.T) {
	dir := t.TempDir()
	truncated := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(truncated, []byte(`[{"site_a":"p:a","site_b":"p:b","verd`), 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("\x00\xff\xfenot json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ name, path string }{
		{"truncated", truncated},
		{"garbage", garbage},
		{"directory", dir},
	}
	for _, c := range cases {
		db, err := LoadDB(c.path)
		if err == nil {
			t.Errorf("%s: bad db accepted", c.name)
		}
		if db == nil {
			t.Fatalf("%s: nil db alongside error", c.name)
		}
		if n := len(db.Marks()); n != 0 {
			t.Errorf("%s: failed load kept %d marks", c.name, n)
		}
		// The degraded database must still take and answer marks.
		sites := hb.MakeSitePair("p:a", "p:b")
		db.MarkBenign(sites, "added after failed load")
		if !db.IsMarkedBenign(sites) {
			t.Errorf("%s: db unusable after failed load", c.name)
		}
	}
}

// TestLoadDBTruncatedErrorNamesFile: the parse error carries the path,
// so a quarantine line or CLI message identifies which file is bad.
func TestLoadDBTruncatedErrorNamesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "races.json")
	db := NewDB()
	db.MarkBenign(hb.MakeSitePair("p:a", "p:b"), "note")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadDB(path)
	if err == nil {
		t.Fatal("truncated db accepted")
	}
	if !strings.Contains(err.Error(), "races.json") {
		t.Errorf("error %q does not name the file", err)
	}
}
