package classify

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/replay"
)

func triageSrc(t *testing.T, src string, seed int64) ([]LocksetTriage, *lockset.Report) {
	t.Helper()
	prog, err := asm.Assemble("lt", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := lockset.Detect(exec)
	return TriageLockset(exec, rep, Options{}), rep
}

// The classic lockset false positive: fork/join sharing with no lock.
// The replay checker must discover that every conflicting pair is ordered
// by a sequencer and dismiss the warning.
func TestTriageFiltersForkJoinFalsePositive(t *testing.T) {
	src := `
.entry main
.word g 0
child:
  ldi r2, g
  ld r3, [r2+0]
  addi r3, r3, 5
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r2, g
  ldi r3, 1
  st [r2+0], r3
  ldi r1, child
  ldi r2, 0
  sys spawn
  sys join
  ldi r2, g
  ld r4, [r2+0]
  addi r4, r4, 1
  st [r2+0], r4
  halt
`
	triage, rep := triageSrc(t, src, 3)
	if len(rep.Warnings) == 0 {
		t.Fatal("setup: lockset should warn on fork/join sharing")
	}
	for _, tr := range triage {
		if tr.Verdict != LocksetFalsePositive {
			t.Errorf("warning at 0x%x: verdict %v (ordered %d, racy %d), want false-positive",
				tr.Warning.Addr, tr.Verdict, tr.OrderedPairs, tr.RacyInstances)
		}
		if tr.OrderedPairs == 0 {
			t.Errorf("warning at 0x%x: no ordered pairs recorded", tr.Warning.Addr)
		}
	}
}

// A redundant-write race: lockset warns, the races are real but harmless.
func TestTriageClassifiesBenignWarning(t *testing.T) {
	src := `
.entry main
.word g 5
worker:
  ldi r2, g
  ldi r3, 5
  st [r2+0], r3
  ld r4, [r2+0]
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`
	sawBenign := false
	for seed := int64(1); seed <= 20 && !sawBenign; seed++ {
		triage, _ := triageSrc(t, src, seed)
		for _, tr := range triage {
			if tr.Verdict == LocksetBenign && tr.RacyInstances > 0 {
				sawBenign = true
				if tr.SC != 0 || tr.RF != 0 {
					t.Errorf("benign verdict with exposing instances")
				}
			}
			if tr.Verdict == LocksetHarmful {
				t.Errorf("redundant write triaged harmful (nsc=%d sc=%d rf=%d)", tr.NSC, tr.SC, tr.RF)
			}
		}
	}
	if !sawBenign {
		t.Error("lockset warning never triaged benign with racy instances")
	}
}

// A genuine lost update: lockset warns and the replay checker confirms.
func TestTriageConfirmsHarmfulWarning(t *testing.T) {
	src := `
.entry main
.word g 0
worker:
  ldi r2, g
  addi r3, r1, 10
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`
	sawHarmful := false
	for seed := int64(1); seed <= 20 && !sawHarmful; seed++ {
		triage, _ := triageSrc(t, src, seed)
		for _, tr := range triage {
			if tr.Verdict == LocksetHarmful {
				sawHarmful = true
			}
		}
	}
	if !sawHarmful {
		t.Error("conflicting writers never triaged harmful from a lockset warning")
	}
}

func TestLocksetVerdictStrings(t *testing.T) {
	for _, v := range []LocksetVerdict{LocksetFalsePositive, LocksetBenign, LocksetHarmful} {
		if v.String() == "verdict(?)" {
			t.Errorf("verdict %d unnamed", v)
		}
	}
	_ = hb.SitePair{}
}
