// Package classify turns per-instance dual-order replay outcomes into the
// paper's race classification (§4.3, §5.2).
//
// Every dynamic instance of a race is analyzed by the virtual processor;
// a unique (static) race is classified No-State-Change only if every one
// of its instances is No-State-Change, State-Change if any instance is,
// and Replay-Failure otherwise. No-State-Change races are *potentially
// benign* and everything else is *potentially harmful* — the set handed
// to developers for triage.
//
// The package also carries the triage workflow the paper describes (§1):
// a persistent race database in which a developer can mark a race benign
// after manual inspection, suppressing it from future reports.
package classify

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/audit"
	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/vproc"
)

// Group is the Table 1 row a race falls into.
type Group int

const (
	GroupNoStateChange Group = iota
	GroupStateChange
	GroupReplayFailure
)

func (g Group) String() string {
	switch g {
	case GroupNoStateChange:
		return "no-state-change"
	case GroupStateChange:
		return "state-change"
	case GroupReplayFailure:
		return "replay-failure"
	}
	return fmt.Sprintf("group(%d)", int(g))
}

// Verdict is the automatic classification handed to developers.
type Verdict int

const (
	PotentiallyBenign Verdict = iota
	PotentiallyHarmful
)

func (v Verdict) String() string {
	if v == PotentiallyBenign {
		return "potentially-benign"
	}
	return "potentially-harmful"
}

// InstanceSample is one analyzed instance kept for the race report: it
// pins down the exact replay coordinates a developer needs to reproduce
// both orders (§4.4).
type InstanceSample struct {
	Scenario     string
	Seed         int64
	Outcome      vproc.Outcome
	FailReason   string
	Diffs        []vproc.Diff
	Addr         uint64
	TIDA, TIDB   int
	RegionA      int // Region.Global in the scenario's replay
	RegionB      int
	IdxA, IdxB   uint64
	PCA, PCB     int
	OrigValA     uint64 // value observed at the first access in the recording
	OrigValB     uint64
	FirstIsWrite bool
	SecondWrite  bool
}

// RaceResult is the classification of one unique static race, accumulated
// over every instance in every execution analyzed so far.
type RaceResult struct {
	Sites hb.SitePair

	Total int // instances analyzed
	NSC   int // No-State-Change instances
	SC    int // State-Change instances
	RF    int // Replay-Failure instances

	Group      Group
	Verdict    Verdict
	Suppressed bool // developer marked this race benign in the DB

	Samples []InstanceSample // representative instances (bounded)
}

// Exposing counts the instances that exposed a difference (SC + RF) — the
// quantity Figure 4/5 plot next to the totals.
func (r *RaceResult) Exposing() int { return r.SC + r.RF }

// Confidence grades a potentially-benign verdict by how many instances
// support it — §4.3: "the greater the number of instances studied, the
// greater is the confidence that a data race is benign". Potentially
// harmful verdicts are evidence-positive (one exposing instance proves
// the possibility), so they always grade "confirmed".
func (r *RaceResult) Confidence() string {
	if r.Verdict == PotentiallyHarmful {
		return "confirmed"
	}
	switch {
	case r.Total >= 10:
		return "high"
	case r.Total >= 3:
		return "medium"
	default:
		return "low"
	}
}

func (r *RaceResult) recompute() {
	switch {
	case r.SC > 0:
		r.Group = GroupStateChange
	case r.RF > 0:
		r.Group = GroupReplayFailure
	default:
		r.Group = GroupNoStateChange
	}
	if r.Group == GroupNoStateChange {
		r.Verdict = PotentiallyBenign
	} else {
		r.Verdict = PotentiallyHarmful
	}
}

// Classification is the aggregated result over one or more executions.
type Classification struct {
	Races []*RaceResult
}

// Race finds a race by sites, or nil.
func (c *Classification) Race(sites hb.SitePair) *RaceResult {
	for _, r := range c.Races {
		if r.Sites == sites {
			return r
		}
	}
	return nil
}

// TotalInstances sums analyzed instances over all races.
func (c *Classification) TotalInstances() int {
	n := 0
	for _, r := range c.Races {
		n += r.Total
	}
	return n
}

// CountByVerdict returns (potentially benign, potentially harmful),
// excluding suppressed races from the harmful count (they are no longer
// reported to developers).
func (c *Classification) CountByVerdict() (benign, harmful int) {
	for _, r := range c.Races {
		if r.Verdict == PotentiallyBenign {
			benign++
		} else if !r.Suppressed {
			harmful++
		}
	}
	return
}

// Options tunes classification.
type Options struct {
	// Scenario labels samples for reproduction (typically the workload
	// scenario name).
	Scenario string
	// Seed is recorded into samples alongside the scenario.
	Seed int64
	// MaxInstancesPerRace bounds how many instances of one race are
	// analyzed per execution (0 = all). The paper analyzes every instance;
	// the bound exists for exploratory runs.
	//
	// Sampling bias: clipping keeps a *prefix* of the schedule-ordered
	// instance list, so the analyzed sample over-represents instances
	// from early regions of the execution. Late-execution behavior (a
	// race that only exposes a state change after the heap has grown,
	// say) can be missed entirely under a low bound — the verdict then
	// rests on early instances only. Clipping is surfaced on the
	// classify.instances.clipped counter (dropped instances).
	MaxInstancesPerRace int
	// MaxSamplesPerRace bounds retained samples (default 4).
	MaxSamplesPerRace int
	// DB, when set, suppresses races a developer marked benign.
	DB *DB
	// UseOracle enables the §4.2.1 extension: a versioned-memory oracle
	// lets the virtual processor continue through reads the two regions'
	// live-ins never captured, instead of declaring a replay failure.
	UseOracle bool
	// Parallel runs dual-order instance replays on this many goroutines,
	// drained from one flattened (race, instance) work list per
	// execution so races with few instances share the pool with the big
	// ones. Instances are independent — each virtual processor only
	// reads the replayed execution — so the result is bit-identical to
	// the serial run; this is purely a wall-clock lever for the offline
	// analysis (the paper's 280x stage).
	//
	// The value is normalized by sched.Normalize, the same validation
	// the CLI -jobs flags use: anything below 1 (zero, negatives) means
	// serial, and values above the core count are honored rather than
	// silently clamped.
	Parallel int
	// Metrics, when set, receives the classify.* counters (instances by
	// outcome, races by verdict, replay-failure causes) and is forwarded
	// to the virtual processor for its vproc.* counters.
	Metrics *obs.Registry
	// NoMemo disables the dual-order replay cache. Memoization is on by
	// default (the zero Options memoizes within the Run): equal live-in
	// fingerprints are guaranteed equal results, so the cache never
	// changes the classification — NoMemo exists for measurement and for
	// the memo-on vs memo-off equivalence tests.
	NoMemo bool
	// Memo, when set, is the replay cache to use (and share): callers
	// analyzing several executions of the same program pass one Memo so
	// recurring instances hit across executions (core.AnalyzeLogs wires
	// one per batch). Nil means Run builds a private per-Run cache,
	// unless NoMemo is set.
	Memo *Memo
	// Predict enables the prediction stage after classification: a
	// lockset + weak-HB + window-feasibility pass over the replayed
	// execution proposes racing pairs the recorded interleaving never
	// exhibited, and the ones at new site pairs are classified by a
	// second dual-order pass sharing this Options (and its Memo). The
	// classify package only carries the flag; core.AnalyzeLog acts on
	// it — putting it here lets every existing per-log options closure
	// (suite, analyze-dir, serve) thread it through unchanged.
	Predict bool
	// PredictWindow bounds the region-schedule distance the prediction
	// solver searches (0 = the predict package default).
	PredictWindow int
	// Audit, when set, receives this execution's verdict provenance:
	// Run appends one audit.Race per classified race, in report order,
	// each instance carrying its live-in fingerprint and both replay
	// orders' outcomes. The caller owns the execution envelope
	// (scenario, seed, log hash) and the file-level CacheHit
	// derivation (audit.File.DeriveCacheHits) — Run leaves CacheHit
	// false, because the runtime hit pattern depends on worker
	// interleaving while the audit trail must not.
	Audit *audit.Execution
}

// Run analyzes every instance of every race in report and returns the
// per-race classification for this single execution. The dual-order
// replays of every race are flattened into one work list and drained by
// a single pool of opts.Parallel workers; results are aggregated by
// (race, instance) index, so the classification is bit-identical at any
// worker count.
func Run(exec *replay.Execution, report *hb.Report, opts Options) *Classification {
	if opts.MaxSamplesPerRace <= 0 {
		opts.MaxSamplesPerRace = 4
	}
	var vopts vproc.Options
	if opts.UseOracle {
		vopts.Oracle = replay.BuildVersionedMemory(exec)
	}
	vopts.Metrics = opts.Metrics

	// Clip each race's instance list, then flatten every (race, instance)
	// pair into one shared work list: races with few instances ride the
	// same pool as the big ones instead of paying a per-race pool
	// spin-up and getting no speedup at all.
	instances := make([][]hb.Instance, len(report.Races))
	results := make([][]vproc.Result, len(report.Races))
	type workItem struct{ race, inst int }
	var work []workItem
	var clipped uint64
	for ri, race := range report.Races {
		insts := race.Instances
		if opts.MaxInstancesPerRace > 0 && len(insts) > opts.MaxInstancesPerRace {
			clipped += uint64(len(insts) - opts.MaxInstancesPerRace)
			insts = insts[:opts.MaxInstancesPerRace]
		}
		instances[ri] = insts
		results[ri] = make([]vproc.Result, len(insts))
		for ii := range insts {
			work = append(work, workItem{ri, ii})
		}
	}
	if clipped > 0 {
		// Dropped instances, counted only when the bound actually bit:
		// the counter's presence is the signal that the sampling bias
		// documented on MaxInstancesPerRace is in play.
		opts.Metrics.Counter("classify.instances.clipped").Add(clipped)
	}

	// The replay cache: on by default, shared when the caller passed one.
	// A hit skips both region replays and replays the vproc.* counter
	// effects instead, so every metric except classify.memo.* is
	// identical with and without the cache.
	memo := opts.Memo
	if memo == nil && !opts.NoMemo {
		memo = NewMemo()
	}
	// The audit trail needs fingerprints even with the memo off, so the
	// fingerprinter exists whenever either consumer does.
	var fper *vproc.Fingerprinter
	var salt uint64
	if memo != nil || opts.Audit != nil {
		fper = vproc.NewFingerprinter(exec)
		if opts.UseOracle {
			if opts.Audit != nil {
				// Audited fingerprints land in a file that must be
				// byte-identical across runs, so the oracle salt is
				// derived from the execution's identity instead of the
				// process-local counter. Still constant within the Run
				// and distinct across scenarios, which is all the memo
				// requires of it.
				h := sha256.Sum256(binary.LittleEndian.AppendUint64(
					[]byte(opts.Scenario+"\x00"), uint64(opts.Seed)))
				salt = binary.LittleEndian.Uint64(h[:8])
			} else {
				salt = oracleSalts.Add(1)
			}
		}
	}
	var fps [][]vproc.Fingerprint
	if opts.Audit != nil {
		fps = make([][]vproc.Fingerprint, len(report.Races))
		for ri := range instances {
			fps[ri] = make([]vproc.Fingerprint, len(instances[ri]))
		}
	}
	cHits := opts.Metrics.Counter("classify.memo.hits")
	cMisses := opts.Metrics.Counter("classify.memo.misses")

	workers := sched.Normalize(opts.Parallel, 1)
	// Worker-local virtual-processor scratch: all items of worker w run
	// sequentially on it, so slot w is never shared.
	scratches := make([]vproc.Scratch, max(workers, 1))
	sched.ForEachWorker(workers, len(work), func(wk, k int) {
		w := work[k]
		// Panic isolation per instance: a dual-order replay that panics
		// (a corrupt log can trip invariants the decoder cannot check)
		// records a ReplayFailure outcome instead of crashing the batch.
		err := sched.Guard(opts.Metrics, func() error {
			pair := racePair(instances[w.race][w.inst])
			var fp vproc.Fingerprint
			if fper != nil {
				fp = fper.Instance(pair, vopts, salt)
				if fps != nil {
					fps[w.race][w.inst] = fp
				}
			}
			if memo != nil {
				if res, ok := memo.Lookup(fp); ok {
					cHits.Inc()
					opts.Metrics.Emit("classify.memo.hit", uint64(w.race))
					countCachedReplay(opts.Metrics, res)
					results[w.race][w.inst] = res
					return nil
				}
				cMisses.Inc()
				opts.Metrics.Emit("classify.memo.miss", uint64(w.race))
				res := vproc.AnalyzeScratch(exec, pair, vopts, &scratches[wk])
				memo.Store(fp, res)
				results[w.race][w.inst] = res
				return nil
			}
			results[w.race][w.inst] = vproc.AnalyzeScratch(exec, pair, vopts, &scratches[wk])
			return nil
		})
		if err != nil {
			reason := fmt.Sprintf("panic during dual-order replay: %v", err)
			// The panic interrupted the dual replay, so neither order has
			// an individual outcome; the audit trail records the panic for
			// both rather than claiming either order ran clean.
			results[w.race][w.inst] = vproc.Result{
				Outcome:    vproc.ReplayFailure,
				FailReason: reason,
				OrigFail:   reason,
				AltFail:    reason,
			}
		}
	})
	if memo != nil {
		opts.Metrics.Gauge("classify.memo.bytes").Set(float64(memo.Bytes()))
	}

	cls := &Classification{}
	var auditRaces map[*RaceResult]audit.Race
	if opts.Audit != nil {
		auditRaces = make(map[*RaceResult]audit.Race, len(report.Races))
	}
	for ri, race := range report.Races {
		rr := &RaceResult{Sites: race.Sites}
		kinds := make(map[vproc.Outcome]int)
		for ii, inst := range instances[ri] {
			res := results[ri][ii]
			rr.Total++
			switch res.Outcome {
			case vproc.NoStateChange:
				rr.NSC++
			case vproc.StateChange:
				rr.SC++
			case vproc.ReplayFailure:
				rr.RF++
				countFailureCause(opts.Metrics, res.FailReason)
			}
			rr.keepSample(kinds, opts.MaxSamplesPerRace, InstanceSample{
				Scenario:     opts.Scenario,
				Seed:         opts.Seed,
				Outcome:      res.Outcome,
				FailReason:   res.FailReason,
				Diffs:        res.Diffs,
				Addr:         inst.Addr,
				TIDA:         inst.RegionA.TID,
				TIDB:         inst.RegionB.TID,
				RegionA:      inst.RegionA.Global,
				RegionB:      inst.RegionB.Global,
				IdxA:         inst.First.Idx,
				IdxB:         inst.Second.Idx,
				PCA:          inst.First.PC,
				PCB:          inst.Second.PC,
				OrigValA:     inst.First.Val,
				OrigValB:     inst.Second.Val,
				FirstIsWrite: inst.First.IsWrite,
				SecondWrite:  inst.Second.IsWrite,
			})
		}
		rr.recompute()
		if opts.DB != nil && opts.DB.IsMarkedBenign(rr.Sites) {
			rr.Suppressed = true
		}
		if opts.Audit != nil {
			ar := audit.Race{
				SiteA:      rr.Sites.A,
				SiteB:      rr.Sites.B,
				Verdict:    rr.Verdict.String(),
				Group:      rr.Group.String(),
				Suppressed: rr.Suppressed,
			}
			for ii := range instances[ri] {
				res := results[ri][ii]
				orig, alt := res.OrigFail, res.AltFail
				if orig == "" {
					orig = "ok"
				}
				if alt == "" {
					alt = "ok"
				}
				ar.Instances = append(ar.Instances, audit.Instance{
					Fingerprint: hex.EncodeToString(fps[ri][ii][:]),
					Outcome:     res.Outcome.String(),
					OrigOrder:   orig,
					AltOrder:    alt,
					Diffs:       len(res.Diffs),
				})
			}
			auditRaces[rr] = ar
		}
		cls.Races = append(cls.Races, rr)
	}
	sortRaces(cls.Races)
	if opts.Audit != nil {
		// Report order: the same site-pair sort the classification (and
		// every renderer downstream of it) uses.
		for _, rr := range cls.Races {
			opts.Audit.Races = append(opts.Audit.Races, auditRaces[rr])
		}
	}
	publishMetrics(opts.Metrics, cls)
	benign, harmful := cls.CountByVerdict()
	opts.Metrics.Logger().Debug("execution classified",
		"scenario", opts.Scenario, "seed", opts.Seed,
		"races", len(cls.Races), "instances", cls.TotalInstances(),
		"potentially_benign", benign, "potentially_harmful", harmful)
	return cls
}

// keepSample retains a bounded, representative sample set: while there
// is room under max every instance is kept (which also captures the
// first of each outcome kind), and once full an instance of an outcome
// kind not yet represented evicts the newest sample of a kind holding
// duplicates. kinds counts retained samples per outcome and belongs to
// the caller's per-race aggregation loop.
func (r *RaceResult) keepSample(kinds map[vproc.Outcome]int, max int, s InstanceSample) {
	if len(r.Samples) < max {
		r.Samples = append(r.Samples, s)
		kinds[s.Outcome]++
		return
	}
	if kinds[s.Outcome] > 0 {
		return
	}
	for i := len(r.Samples) - 1; i >= 0; i-- {
		k := r.Samples[i].Outcome
		if kinds[k] > 1 {
			kinds[k]--
			copy(r.Samples[i:], r.Samples[i+1:])
			r.Samples[len(r.Samples)-1] = s
			kinds[s.Outcome]++
			return
		}
	}
}

// publishMetrics flushes one execution's classification tallies (no-op
// without a registry). Instance counters accumulate across executions;
// the race counters count per-execution classifications, so a race seen
// in N executions contributes N (Merge re-derives the final verdict).
func publishMetrics(reg *obs.Registry, cls *Classification) {
	if reg == nil {
		return
	}
	reg.Counter("classify.executions").Inc()
	for _, r := range cls.Races {
		reg.Counter("classify.races").Inc()
		reg.Counter("classify.instances_total").Add(uint64(r.Total))
		reg.Counter("classify.instances_nsc").Add(uint64(r.NSC))
		reg.Counter("classify.instances_sc").Add(uint64(r.SC))
		reg.Counter("classify.instances_rf").Add(uint64(r.RF))
		if r.Verdict == PotentiallyBenign {
			reg.Counter("classify.races_potentially_benign").Inc()
		} else {
			reg.Counter("classify.races_potentially_harmful").Inc()
		}
		if r.Suppressed {
			reg.Counter("classify.races_suppressed").Inc()
		}
	}
}

// countFailureCause buckets a vproc replay-failure reason into a coarse
// cause counter, keyed by the stable message fragments runOrder emits.
// The order prefix ("original order: " / "alternative order: ") is
// ignored; unknown messages land in the "other" bucket.
func countFailureCause(reg *obs.Registry, reason string) {
	if reg == nil {
		return
	}
	cause := "other"
	for _, c := range []struct{ frag, name string }{
		{"control flow diverged", "control_flow_divergence"},
		{"diverged out of the region", "region_divergence"},
		{"control flow left the program", "left_program"},
		{"step budget exhausted", "budget_exhausted"},
		{"not captured in live-in memory", "livein_miss"},
		{"unreplayable syscall", "unreplayable_syscall"},
		{"fault during replay", "fault"},
	} {
		if strings.Contains(reason, c.frag) {
			cause = c.name
			break
		}
	}
	reg.Counter("classify.replay_failure_" + cause).Inc()
}

// racePair maps a detector instance to the virtual processor's replay
// coordinates.
func racePair(inst hb.Instance) vproc.RacePair {
	return vproc.RacePair{
		RegionA: inst.RegionA, RegionB: inst.RegionB,
		IdxA: inst.First.Idx, IdxB: inst.Second.Idx,
		PCA: inst.First.PC, PCB: inst.Second.PC,
		Addr: inst.Addr,
	}
}

// Merge folds other executions' classifications into dst, accumulating
// instance counts per unique race and re-deriving groups and verdicts —
// this is how one race observed across the paper's 18 executions ends up
// with a single classification.
func Merge(parts ...*Classification) *Classification {
	bySites := make(map[hb.SitePair]*RaceResult)
	out := &Classification{}
	for _, part := range parts {
		if part == nil {
			continue
		}
		for _, r := range part.Races {
			dst := bySites[r.Sites]
			if dst == nil {
				dst = &RaceResult{Sites: r.Sites, Suppressed: r.Suppressed}
				bySites[r.Sites] = dst
				out.Races = append(out.Races, dst)
			}
			dst.Total += r.Total
			dst.NSC += r.NSC
			dst.SC += r.SC
			dst.RF += r.RF
			dst.Suppressed = dst.Suppressed || r.Suppressed
			for _, s := range r.Samples {
				if len(dst.Samples) < 8 {
					dst.Samples = append(dst.Samples, s)
				}
			}
		}
	}
	for _, r := range out.Races {
		r.recompute()
	}
	sortRaces(out.Races)
	return out
}

func sortRaces(races []*RaceResult) {
	sort.Slice(races, func(i, j int) bool {
		a, b := races[i].Sites, races[j].Sites
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}
