// Package classify turns per-instance dual-order replay outcomes into the
// paper's race classification (§4.3, §5.2).
//
// Every dynamic instance of a race is analyzed by the virtual processor;
// a unique (static) race is classified No-State-Change only if every one
// of its instances is No-State-Change, State-Change if any instance is,
// and Replay-Failure otherwise. No-State-Change races are *potentially
// benign* and everything else is *potentially harmful* — the set handed
// to developers for triage.
//
// The package also carries the triage workflow the paper describes (§1):
// a persistent race database in which a developer can mark a race benign
// after manual inspection, suppressing it from future reports.
package classify

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/vproc"
)

// Group is the Table 1 row a race falls into.
type Group int

const (
	GroupNoStateChange Group = iota
	GroupStateChange
	GroupReplayFailure
)

func (g Group) String() string {
	switch g {
	case GroupNoStateChange:
		return "no-state-change"
	case GroupStateChange:
		return "state-change"
	case GroupReplayFailure:
		return "replay-failure"
	}
	return fmt.Sprintf("group(%d)", int(g))
}

// Verdict is the automatic classification handed to developers.
type Verdict int

const (
	PotentiallyBenign Verdict = iota
	PotentiallyHarmful
)

func (v Verdict) String() string {
	if v == PotentiallyBenign {
		return "potentially-benign"
	}
	return "potentially-harmful"
}

// InstanceSample is one analyzed instance kept for the race report: it
// pins down the exact replay coordinates a developer needs to reproduce
// both orders (§4.4).
type InstanceSample struct {
	Scenario     string
	Seed         int64
	Outcome      vproc.Outcome
	FailReason   string
	Diffs        []vproc.Diff
	Addr         uint64
	TIDA, TIDB   int
	RegionA      int // Region.Global in the scenario's replay
	RegionB      int
	IdxA, IdxB   uint64
	PCA, PCB     int
	OrigValA     uint64 // value observed at the first access in the recording
	OrigValB     uint64
	FirstIsWrite bool
	SecondWrite  bool
}

// RaceResult is the classification of one unique static race, accumulated
// over every instance in every execution analyzed so far.
type RaceResult struct {
	Sites hb.SitePair

	Total int // instances analyzed
	NSC   int // No-State-Change instances
	SC    int // State-Change instances
	RF    int // Replay-Failure instances

	Group      Group
	Verdict    Verdict
	Suppressed bool // developer marked this race benign in the DB

	Samples []InstanceSample // representative instances (bounded)
}

// Exposing counts the instances that exposed a difference (SC + RF) — the
// quantity Figure 4/5 plot next to the totals.
func (r *RaceResult) Exposing() int { return r.SC + r.RF }

// Confidence grades a potentially-benign verdict by how many instances
// support it — §4.3: "the greater the number of instances studied, the
// greater is the confidence that a data race is benign". Potentially
// harmful verdicts are evidence-positive (one exposing instance proves
// the possibility), so they always grade "confirmed".
func (r *RaceResult) Confidence() string {
	if r.Verdict == PotentiallyHarmful {
		return "confirmed"
	}
	switch {
	case r.Total >= 10:
		return "high"
	case r.Total >= 3:
		return "medium"
	default:
		return "low"
	}
}

func (r *RaceResult) recompute() {
	switch {
	case r.SC > 0:
		r.Group = GroupStateChange
	case r.RF > 0:
		r.Group = GroupReplayFailure
	default:
		r.Group = GroupNoStateChange
	}
	if r.Group == GroupNoStateChange {
		r.Verdict = PotentiallyBenign
	} else {
		r.Verdict = PotentiallyHarmful
	}
}

// Classification is the aggregated result over one or more executions.
type Classification struct {
	Races []*RaceResult
}

// Race finds a race by sites, or nil.
func (c *Classification) Race(sites hb.SitePair) *RaceResult {
	for _, r := range c.Races {
		if r.Sites == sites {
			return r
		}
	}
	return nil
}

// TotalInstances sums analyzed instances over all races.
func (c *Classification) TotalInstances() int {
	n := 0
	for _, r := range c.Races {
		n += r.Total
	}
	return n
}

// CountByVerdict returns (potentially benign, potentially harmful),
// excluding suppressed races from the harmful count (they are no longer
// reported to developers).
func (c *Classification) CountByVerdict() (benign, harmful int) {
	for _, r := range c.Races {
		if r.Verdict == PotentiallyBenign {
			benign++
		} else if !r.Suppressed {
			harmful++
		}
	}
	return
}

// Options tunes classification.
type Options struct {
	// Scenario labels samples for reproduction (typically the workload
	// scenario name).
	Scenario string
	// Seed is recorded into samples alongside the scenario.
	Seed int64
	// MaxInstancesPerRace bounds how many instances of one race are
	// analyzed per execution (0 = all). The paper analyzes every instance;
	// the bound exists for exploratory runs.
	MaxInstancesPerRace int
	// MaxSamplesPerRace bounds retained samples (default 4).
	MaxSamplesPerRace int
	// DB, when set, suppresses races a developer marked benign.
	DB *DB
	// UseOracle enables the §4.2.1 extension: a versioned-memory oracle
	// lets the virtual processor continue through reads the two regions'
	// live-ins never captured, instead of declaring a replay failure.
	UseOracle bool
	// Parallel runs dual-order instance replays on this many goroutines
	// (0 or 1 = serial). Instances are independent — each virtual
	// processor only reads the replayed execution — so the result is
	// bit-identical to the serial run; this is purely a wall-clock lever
	// for the offline analysis (the paper's 280x stage).
	Parallel int
	// Metrics, when set, receives the classify.* counters (instances by
	// outcome, races by verdict, replay-failure causes) and is forwarded
	// to the virtual processor for its vproc.* counters.
	Metrics *obs.Registry
}

// Run analyzes every instance of every race in report and returns the
// per-race classification for this single execution.
func Run(exec *replay.Execution, report *hb.Report, opts Options) *Classification {
	if opts.MaxSamplesPerRace <= 0 {
		opts.MaxSamplesPerRace = 4
	}
	var vopts vproc.Options
	if opts.UseOracle {
		vopts.Oracle = replay.BuildVersionedMemory(exec)
	}
	vopts.Metrics = opts.Metrics
	cls := &Classification{}
	for _, race := range report.Races {
		rr := &RaceResult{Sites: race.Sites}
		instances := race.Instances
		if opts.MaxInstancesPerRace > 0 && len(instances) > opts.MaxInstancesPerRace {
			instances = instances[:opts.MaxInstancesPerRace]
		}
		results := analyzeInstances(exec, instances, vopts, opts.Parallel)
		for i, inst := range instances {
			res := results[i]
			rr.Total++
			switch res.Outcome {
			case vproc.NoStateChange:
				rr.NSC++
			case vproc.StateChange:
				rr.SC++
			case vproc.ReplayFailure:
				rr.RF++
				countFailureCause(opts.Metrics, res.FailReason)
			}
			// Keep the first sample of each outcome kind, then fill up.
			keep := len(rr.Samples) < opts.MaxSamplesPerRace &&
				(len(rr.Samples) == 0 || res.Outcome != vproc.NoStateChange || rr.SC+rr.RF == 0)
			if keep {
				rr.Samples = append(rr.Samples, InstanceSample{
					Scenario:     opts.Scenario,
					Seed:         opts.Seed,
					Outcome:      res.Outcome,
					FailReason:   res.FailReason,
					Diffs:        res.Diffs,
					Addr:         inst.Addr,
					TIDA:         inst.RegionA.TID,
					TIDB:         inst.RegionB.TID,
					RegionA:      inst.RegionA.Global,
					RegionB:      inst.RegionB.Global,
					IdxA:         inst.First.Idx,
					IdxB:         inst.Second.Idx,
					PCA:          inst.First.PC,
					PCB:          inst.Second.PC,
					OrigValA:     inst.First.Val,
					OrigValB:     inst.Second.Val,
					FirstIsWrite: inst.First.IsWrite,
					SecondWrite:  inst.Second.IsWrite,
				})
			}
		}
		rr.recompute()
		if opts.DB != nil && opts.DB.IsMarkedBenign(rr.Sites) {
			rr.Suppressed = true
		}
		cls.Races = append(cls.Races, rr)
	}
	sortRaces(cls.Races)
	publishMetrics(opts.Metrics, cls)
	return cls
}

// publishMetrics flushes one execution's classification tallies (no-op
// without a registry). Instance counters accumulate across executions;
// the race counters count per-execution classifications, so a race seen
// in N executions contributes N (Merge re-derives the final verdict).
func publishMetrics(reg *obs.Registry, cls *Classification) {
	if reg == nil {
		return
	}
	reg.Counter("classify.executions").Inc()
	for _, r := range cls.Races {
		reg.Counter("classify.races").Inc()
		reg.Counter("classify.instances_total").Add(uint64(r.Total))
		reg.Counter("classify.instances_nsc").Add(uint64(r.NSC))
		reg.Counter("classify.instances_sc").Add(uint64(r.SC))
		reg.Counter("classify.instances_rf").Add(uint64(r.RF))
		if r.Verdict == PotentiallyBenign {
			reg.Counter("classify.races_potentially_benign").Inc()
		} else {
			reg.Counter("classify.races_potentially_harmful").Inc()
		}
		if r.Suppressed {
			reg.Counter("classify.races_suppressed").Inc()
		}
	}
}

// countFailureCause buckets a vproc replay-failure reason into a coarse
// cause counter, keyed by the stable message fragments runOrder emits.
// The order prefix ("original order: " / "alternative order: ") is
// ignored; unknown messages land in the "other" bucket.
func countFailureCause(reg *obs.Registry, reason string) {
	if reg == nil {
		return
	}
	cause := "other"
	for _, c := range []struct{ frag, name string }{
		{"control flow diverged", "control_flow_divergence"},
		{"diverged out of the region", "region_divergence"},
		{"control flow left the program", "left_program"},
		{"step budget exhausted", "budget_exhausted"},
		{"not captured in live-in memory", "livein_miss"},
		{"unreplayable syscall", "unreplayable_syscall"},
		{"fault during replay", "fault"},
	} {
		if strings.Contains(reason, c.frag) {
			cause = c.name
			break
		}
	}
	reg.Counter("classify.replay_failure_" + cause).Inc()
}

// analyzeInstances runs the dual-order analysis for every instance,
// optionally fanned out over workers. Results are indexed by instance, so
// aggregation order (and hence the outcome) is identical either way.
func analyzeInstances(exec *replay.Execution, instances []hb.Instance, vopts vproc.Options, parallel int) []vproc.Result {
	results := make([]vproc.Result, len(instances))
	pairOf := func(inst hb.Instance) vproc.RacePair {
		return vproc.RacePair{
			RegionA: inst.RegionA, RegionB: inst.RegionB,
			IdxA: inst.First.Idx, IdxB: inst.Second.Idx,
			PCA: inst.First.PC, PCB: inst.Second.PC,
			Addr: inst.Addr,
		}
	}
	if parallel <= 1 || len(instances) < 2 {
		for i, inst := range instances {
			results[i] = vproc.AnalyzeOpts(exec, pairOf(inst), vopts)
		}
		return results
	}
	if parallel > runtime.NumCPU() {
		parallel = runtime.NumCPU()
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = vproc.AnalyzeOpts(exec, pairOf(instances[i]), vopts)
			}
		}()
	}
	for i := range instances {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}

// Merge folds other executions' classifications into dst, accumulating
// instance counts per unique race and re-deriving groups and verdicts —
// this is how one race observed across the paper's 18 executions ends up
// with a single classification.
func Merge(parts ...*Classification) *Classification {
	bySites := make(map[hb.SitePair]*RaceResult)
	out := &Classification{}
	for _, part := range parts {
		if part == nil {
			continue
		}
		for _, r := range part.Races {
			dst := bySites[r.Sites]
			if dst == nil {
				dst = &RaceResult{Sites: r.Sites, Suppressed: r.Suppressed}
				bySites[r.Sites] = dst
				out.Races = append(out.Races, dst)
			}
			dst.Total += r.Total
			dst.NSC += r.NSC
			dst.SC += r.SC
			dst.RF += r.RF
			dst.Suppressed = dst.Suppressed || r.Suppressed
			for _, s := range r.Samples {
				if len(dst.Samples) < 8 {
					dst.Samples = append(dst.Samples, s)
				}
			}
		}
	}
	for _, r := range out.Races {
		r.recompute()
	}
	sortRaces(out.Races)
	return out
}

func sortRaces(races []*RaceResult) {
	sort.Slice(races, func(i, j int) bool {
		a, b := races[i].Sites, races[j].Sites
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}
