package classify

import (
	"testing"

	"repro/internal/vproc"
)

// fakeBacking is an in-memory Backing that records its traffic.
type fakeBacking struct {
	m    map[vproc.Fingerprint]vproc.Result
	gets int
	puts int
}

func newFakeBacking() *fakeBacking {
	return &fakeBacking{m: map[vproc.Fingerprint]vproc.Result{}}
}

func (b *fakeBacking) Get(fp vproc.Fingerprint) (vproc.Result, bool) {
	b.gets++
	res, ok := b.m[fp]
	return res, ok
}

func (b *fakeBacking) Put(fp vproc.Fingerprint, res vproc.Result) {
	b.puts++
	b.m[fp] = res
}

func fpByte(n byte) vproc.Fingerprint {
	var fp vproc.Fingerprint
	fp[0] = n
	return fp
}

func TestMemoBackedWriteThrough(t *testing.T) {
	back := newFakeBacking()
	m := NewMemoBacked(back)
	res := vproc.Result{Outcome: vproc.NoStateChange}
	m.Store(fpByte(1), res)
	if back.puts != 1 {
		t.Fatalf("backing puts = %d, want 1 (write-through)", back.puts)
	}
	// A duplicate store is dropped at both levels.
	m.Store(fpByte(1), res)
	if back.puts != 1 {
		t.Fatalf("backing puts = %d after duplicate store, want 1", back.puts)
	}
	// In-memory hit does not consult the backing.
	if _, ok := m.Lookup(fpByte(1)); !ok {
		t.Fatal("expected in-memory hit")
	}
	if back.gets != 0 {
		t.Fatalf("backing gets = %d on in-memory hit, want 0", back.gets)
	}
}

func TestMemoBackedFallthroughAndPromotion(t *testing.T) {
	back := newFakeBacking()
	want := vproc.Result{Outcome: vproc.ReplayFailure, FailReason: "original order: x", OrigFail: "x"}
	back.m[fpByte(2)] = want
	m := NewMemoBacked(back)
	got, ok := m.Lookup(fpByte(2))
	if !ok || got.Outcome != want.Outcome || got.FailReason != want.FailReason || got.OrigFail != want.OrigFail {
		t.Fatalf("Lookup = %+v, %v; want backing entry", got, ok)
	}
	if m.Hits() != 1 || m.Misses() != 0 {
		t.Fatalf("hits=%d misses=%d; a backing hit must count as a memo hit", m.Hits(), m.Misses())
	}
	// Promotion: the second lookup is served from memory.
	m.Lookup(fpByte(2))
	if back.gets != 1 {
		t.Fatalf("backing gets = %d, want 1 (promoted after first hit)", back.gets)
	}
	// Promotion must not write back.
	if back.puts != 0 {
		t.Fatalf("backing puts = %d, want 0 (promotion is read-only)", back.puts)
	}
	// A true miss at both levels is a memo miss.
	if _, ok := m.Lookup(fpByte(3)); ok {
		t.Fatal("unexpected hit")
	}
	if m.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", m.Misses())
	}
}

func TestMemoNilBackingIsPlainMemo(t *testing.T) {
	m := NewMemoBacked(nil)
	if _, ok := m.Lookup(fpByte(4)); ok {
		t.Fatal("unexpected hit")
	}
	m.Store(fpByte(4), vproc.Result{Outcome: vproc.NoStateChange})
	if _, ok := m.Lookup(fpByte(4)); !ok {
		t.Fatal("expected hit")
	}
}
