package classify

import (
	"sort"

	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/replay"
	"repro/internal/vproc"
)

// LocksetVerdict is the replay checker's judgement of one lockset warning
// (§2.2.2: "our analysis can also be used for analyzing the data races
// reported by a lockset based algorithm ... The analysis should be able
// to filter out the benign data races and also the false positives").
type LocksetVerdict int

const (
	// LocksetFalsePositive: every conflicting access pair at the warned
	// address is ordered by a sequencer — the locking discipline was
	// violated, but no race exists.
	LocksetFalsePositive LocksetVerdict = iota
	// LocksetBenign: real races exist but every instance is
	// No-State-Change under dual-order replay.
	LocksetBenign
	// LocksetHarmful: some instance exposed a state change or replay
	// failure.
	LocksetHarmful
)

func (v LocksetVerdict) String() string {
	switch v {
	case LocksetFalsePositive:
		return "false-positive"
	case LocksetBenign:
		return "potentially-benign"
	case LocksetHarmful:
		return "potentially-harmful"
	}
	return "verdict(?)"
}

// LocksetTriage is the replay analysis of one lockset warning.
type LocksetTriage struct {
	Warning *lockset.Warning
	Verdict LocksetVerdict
	// OrderedPairs counts conflicting access pairs that a sequencer
	// orders (evidence toward false positive); RacyInstances counts the
	// genuinely unordered ones that were dual-order replayed.
	OrderedPairs  int
	RacyInstances int
	NSC, SC, RF   int
}

// TriageLockset runs the paper's replay checker over an Eraser report:
// for each warned address, every cross-thread conflicting access pair is
// either proven ordered (no race — the warning is a false positive for
// that pair) or replayed in both orders and classified.
func TriageLockset(exec *replay.Execution, rep *lockset.Report, opts Options) []LocksetTriage {
	// Group the execution's accesses by address once.
	type ref struct {
		acc replay.Access
		reg *replay.Region
	}
	byAddr := make(map[uint64][]ref)
	for _, reg := range exec.Regions {
		for _, acc := range reg.Accesses {
			if acc.Atomic {
				continue
			}
			byAddr[acc.Addr] = append(byAddr[acc.Addr], ref{acc, reg})
		}
	}

	var vopts vproc.Options
	if opts.UseOracle {
		vopts.Oracle = replay.BuildVersionedMemory(exec)
	}

	var out []LocksetTriage
	for _, w := range rep.Warnings {
		tr := LocksetTriage{Warning: w}
		refs := byAddr[w.Addr]
		// One representative pair per (region pair): the same dedup the
		// happens-before detector applies.
		type pairKey struct{ a, b int }
		seen := make(map[pairKey]bool)
		var pairs []hb.Instance
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				a, b := refs[i], refs[j]
				if a.reg.TID == b.reg.TID {
					continue
				}
				if !a.acc.IsWrite && !b.acc.IsWrite {
					continue
				}
				if !a.reg.Overlaps(b.reg) {
					tr.OrderedPairs++
					continue
				}
				k := pairKey{a.reg.Global, b.reg.Global}
				if seen[k] {
					continue
				}
				seen[k] = true
				pairs = append(pairs, hb.Instance{
					First: a.acc, Second: b.acc,
					RegionA: a.reg, RegionB: b.reg, Addr: w.Addr,
				})
			}
		}
		for _, inst := range pairs {
			res := vproc.AnalyzeOpts(exec, vproc.RacePair{
				RegionA: inst.RegionA, RegionB: inst.RegionB,
				IdxA: inst.First.Idx, IdxB: inst.Second.Idx,
				PCA: inst.First.PC, PCB: inst.Second.PC,
				Addr: inst.Addr,
			}, vopts)
			tr.RacyInstances++
			switch res.Outcome {
			case vproc.NoStateChange:
				tr.NSC++
			case vproc.StateChange:
				tr.SC++
			default:
				tr.RF++
			}
		}
		switch {
		case tr.RacyInstances == 0:
			tr.Verdict = LocksetFalsePositive
		case tr.SC == 0 && tr.RF == 0:
			tr.Verdict = LocksetBenign
		default:
			tr.Verdict = LocksetHarmful
		}
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Warning.Addr < out[j].Warning.Addr })
	return out
}
