package classify

import (
	"encoding/binary"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/vproc"
)

// Memo is the dual-order replay cache: vproc results keyed by live-in
// fingerprint (vproc.Fingerprint). Equal fingerprints are guaranteed
// equal results, so a hit returns the stored {Outcome, FailReason,
// Diffs} verbatim and skips both region replays.
//
// The cache is sharded and concurrency-safe: the classification workers
// of one Run share it without coordination beyond a per-shard mutex,
// and one Memo can be shared across executions (core.AnalyzeLogs wires
// one per batch) — fingerprints are content hashes, so instances from
// different executions of the same program collide exactly when their
// replay inputs are identical. Entries are never invalidated: a
// fingerprint covers everything the replay can observe, so a cached
// result cannot go stale (docs/PERFORMANCE.md spells out the
// invariant). Concurrent misses on the same fingerprint may both
// compute; both compute the same result and the first writer wins.
//
// The zero value is not usable; use NewMemo.
type Memo struct {
	m      *sched.ShardedMap[vproc.Fingerprint, vproc.Result]
	hits   atomic.Uint64
	misses atomic.Uint64
	bytes  atomic.Uint64
}

// memoShards is sized for a worker pool, not for the key space: enough
// shards that GOMAXPROCS-ish workers rarely contend on one mutex.
const memoShards = 64

// Approximate per-entry retained sizes for the bytes gauge, in bytes:
// the fingerprint key plus the Result header (Outcome + string header +
// slice header), map bucket overhead ignored; each Diff adds its struct
// size (string header + TID + three uint64s). The Kind strings are
// shared literals, so only their headers count.
const (
	memoEntryBytes = 32 + 48
	memoDiffBytes  = 48
)

// NewMemo returns an empty replay cache.
func NewMemo() *Memo {
	return &Memo{
		m: sched.NewShardedMap[vproc.Fingerprint, vproc.Result](memoShards, func(k vproc.Fingerprint) uint64 {
			// Fingerprints are uniform sha256 digests; any 8 bytes shard evenly.
			return binary.LittleEndian.Uint64(k[:8])
		}),
	}
}

// Lookup returns the cached result for fp, counting the hit or miss.
func (m *Memo) Lookup(fp vproc.Fingerprint) (vproc.Result, bool) {
	res, ok := m.m.Load(fp)
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return res, ok
}

// Store caches res under fp. First writer wins; later writers of the
// same fingerprint (concurrent misses) are dropped, which is sound
// because equal fingerprints imply equal results.
func (m *Memo) Store(fp vproc.Fingerprint, res vproc.Result) {
	if m.m.Store(fp, res) {
		m.bytes.Add(uint64(memoEntryBytes + len(res.FailReason) + memoDiffBytes*len(res.Diffs)))
	}
}

// Hits returns the lifetime hit count.
func (m *Memo) Hits() uint64 { return m.hits.Load() }

// Misses returns the lifetime miss count.
func (m *Memo) Misses() uint64 { return m.misses.Load() }

// Len returns the number of cached results.
func (m *Memo) Len() int { return m.m.Len() }

// Bytes returns the approximate retained size of the cached results.
func (m *Memo) Bytes() uint64 { return m.bytes.Load() }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (m *Memo) HitRate() float64 {
	h, s := m.hits.Load(), m.hits.Load()+m.misses.Load()
	if s == 0 {
		return 0
	}
	return float64(h) / float64(s)
}

// oracleSalts distinguishes the oracle configurations of successive
// classification passes: oracle answers depend on the whole execution,
// so oracle-mode fingerprints are only shareable within one Run (see
// vproc.Fingerprinter.Instance).
var oracleSalts atomic.Uint64

// countCachedReplay replays a cache hit's effect on the vproc.* stage
// counters, exactly as vproc.AnalyzeScratch would have counted the
// live replay. This keeps every counter except classify.memo.* (and
// timing) identical between memo-on and memo-off runs — the equivalence
// the suite tests pin down. The failed order is recovered from the
// FailReason prefix runOrder always emits.
func countCachedReplay(reg *obs.Registry, res vproc.Result) {
	reg.Counter("vproc.instances_analyzed").Inc()
	reg.Counter("vproc.order_replays").Add(2)
	switch res.Outcome {
	case vproc.ReplayFailure:
		if strings.HasPrefix(res.FailReason, "original order: ") {
			reg.Counter("vproc.order_failures_original").Inc()
		} else {
			reg.Counter("vproc.order_failures_alternative").Inc()
		}
	case vproc.StateChange:
		reg.Counter("vproc.liveout_diffs").Add(uint64(len(res.Diffs)))
	}
}
