package classify

import (
	"encoding/binary"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/vproc"
)

// Memo is the dual-order replay cache: vproc results keyed by live-in
// fingerprint (vproc.Fingerprint). Equal fingerprints are guaranteed
// equal results, so a hit returns the stored {Outcome, FailReason,
// Diffs} verbatim and skips both region replays.
//
// The cache is sharded and concurrency-safe: the classification workers
// of one Run share it without coordination beyond a per-shard mutex,
// and one Memo can be shared across executions (core.AnalyzeLogs wires
// one per batch) — fingerprints are content hashes, so instances from
// different executions of the same program collide exactly when their
// replay inputs are identical. Entries are never invalidated: a
// fingerprint covers everything the replay can observe, so a cached
// result cannot go stale (docs/PERFORMANCE.md spells out the
// invariant). Concurrent misses on the same fingerprint may both
// compute; both compute the same result and the first writer wins.
//
// A Memo can additionally be backed by a second-level persistent cache
// (NewMemoBacked): lookups that miss in memory fall through to the
// backing, and stored results are written through, so replay verdicts
// survive process restarts. memostore.Store is the shipped backing.
//
// The zero value is not usable; use NewMemo.
type Memo struct {
	m       *sched.ShardedMap[vproc.Fingerprint, vproc.Result]
	backing Backing
	hits    atomic.Uint64
	misses  atomic.Uint64
	bytes   atomic.Uint64
}

// Backing is a second-level result cache behind the in-memory Memo —
// typically persistent (memostore.Store implements it). Implementations
// must be safe for concurrent use and must honor the memo invariant:
// a Get hit for a fingerprint returns a result equal to what was Put
// under it (equal fingerprints imply equal results, so any faithful
// store qualifies). A backing that loses or rejects entries is fine —
// that is a miss, and the replay recomputes.
type Backing interface {
	Get(vproc.Fingerprint) (vproc.Result, bool)
	Put(vproc.Fingerprint, vproc.Result)
}

// memoShards is sized for a worker pool, not for the key space: enough
// shards that GOMAXPROCS-ish workers rarely contend on one mutex.
const memoShards = 64

// Approximate per-entry retained sizes for the bytes gauge, in bytes:
// the fingerprint key plus the Result header (Outcome + string header +
// slice header), map bucket overhead ignored; each Diff adds its struct
// size (string header + TID + three uint64s). The Kind strings are
// shared literals, so only their headers count.
const (
	memoEntryBytes = 32 + 48
	memoDiffBytes  = 48
)

// NewMemo returns an empty replay cache.
func NewMemo() *Memo {
	return &Memo{
		m: sched.NewShardedMap[vproc.Fingerprint, vproc.Result](memoShards, func(k vproc.Fingerprint) uint64 {
			// Fingerprints are uniform sha256 digests; any 8 bytes shard evenly.
			return binary.LittleEndian.Uint64(k[:8])
		}),
	}
}

// NewMemoBacked returns an empty in-memory cache layered over b:
// misses fall through to b.Get (a backing hit is promoted into memory
// and counted as a memo hit), and newly stored results are written
// through with b.Put. A nil b is exactly NewMemo.
func NewMemoBacked(b Backing) *Memo {
	m := NewMemo()
	m.backing = b
	return m
}

// Lookup returns the cached result for fp, counting the hit or miss.
// With a backing attached, an in-memory miss consults it before being
// declared a miss.
func (m *Memo) Lookup(fp vproc.Fingerprint) (vproc.Result, bool) {
	res, ok := m.m.Load(fp)
	if ok {
		m.hits.Add(1)
		return res, true
	}
	if m.backing != nil {
		if res, ok := m.backing.Get(fp); ok {
			// Promote without writing back: the backing already holds
			// the entry, so only the in-memory layer needs it.
			m.storeLocal(fp, res)
			m.hits.Add(1)
			return res, true
		}
	}
	m.misses.Add(1)
	return res, false
}

// Store caches res under fp. First writer wins; later writers of the
// same fingerprint (concurrent misses) are dropped, which is sound
// because equal fingerprints imply equal results. With a backing
// attached, a first write is also written through to it.
func (m *Memo) Store(fp vproc.Fingerprint, res vproc.Result) {
	if m.storeLocal(fp, res) && m.backing != nil {
		m.backing.Put(fp, res)
	}
}

// storeLocal inserts into the in-memory layer only, reporting whether
// this call was the first writer.
func (m *Memo) storeLocal(fp vproc.Fingerprint, res vproc.Result) bool {
	if m.m.Store(fp, res) {
		m.bytes.Add(uint64(memoEntryBytes + len(res.FailReason) + memoDiffBytes*len(res.Diffs)))
		return true
	}
	return false
}

// Hits returns the lifetime hit count.
func (m *Memo) Hits() uint64 { return m.hits.Load() }

// Misses returns the lifetime miss count.
func (m *Memo) Misses() uint64 { return m.misses.Load() }

// Len returns the number of cached results.
func (m *Memo) Len() int { return m.m.Len() }

// Bytes returns the approximate retained size of the cached results.
func (m *Memo) Bytes() uint64 { return m.bytes.Load() }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (m *Memo) HitRate() float64 {
	h, s := m.hits.Load(), m.hits.Load()+m.misses.Load()
	if s == 0 {
		return 0
	}
	return float64(h) / float64(s)
}

// oracleSalts distinguishes the oracle configurations of successive
// classification passes: oracle answers depend on the whole execution,
// so oracle-mode fingerprints are only shareable within one Run (see
// vproc.Fingerprinter.Instance).
var oracleSalts atomic.Uint64

// countCachedReplay replays a cache hit's effect on the vproc.* stage
// counters, exactly as vproc.AnalyzeScratch would have counted the
// live replay. This keeps every counter except classify.memo.* (and
// timing) identical between memo-on and memo-off runs — the equivalence
// the suite tests pin down. The failed order is recovered from the
// FailReason prefix runOrder always emits.
func countCachedReplay(reg *obs.Registry, res vproc.Result) {
	reg.Counter("vproc.instances_analyzed").Inc()
	reg.Counter("vproc.order_replays").Add(2)
	switch res.Outcome {
	case vproc.ReplayFailure:
		if strings.HasPrefix(res.FailReason, "original order: ") {
			reg.Counter("vproc.order_failures_original").Inc()
		} else {
			reg.Counter("vproc.order_failures_alternative").Inc()
		}
	case vproc.StateChange:
		reg.Counter("vproc.liveout_diffs").Add(uint64(len(res.Diffs)))
	}
}
