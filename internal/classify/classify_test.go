package classify

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/replay"
	"repro/internal/vproc"
)

func classifySrc(t *testing.T, src string, seed int64, opts Options) *Classification {
	t.Helper()
	prog, err := asm.Assemble("cl", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = seed
	return Run(exec, hb.Detect(exec), opts)
}

const redundantWriters = `
.entry main
.word g 5
worker:
  ldi r2, g
  ldi r3, 5
wstore:
  st [r2+0], r3
  ld r4, [r2+0]
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

const conflictingWriters = `
.entry main
.word g 0
worker:
  ldi r2, g
  addi r3, r1, 10    ; distinct value per worker (arg 0/1)
wstore:
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

// seedWithRaces scans seeds until the program exhibits at least one race.
func seedWithRaces(t *testing.T, src string, opts Options) *Classification {
	t.Helper()
	for seed := int64(1); seed <= 30; seed++ {
		cls := classifySrc(t, src, seed, opts)
		if len(cls.Races) > 0 {
			return cls
		}
	}
	t.Fatal("no seed produced races")
	return nil
}

func TestRedundantWritersClassifyBenign(t *testing.T) {
	cls := seedWithRaces(t, redundantWriters, Options{Scenario: "redundant"})
	for _, r := range cls.Races {
		if r.Verdict != PotentiallyBenign {
			t.Errorf("%v: verdict = %v (group %v, counts nsc=%d sc=%d rf=%d)",
				r.Sites, r.Verdict, r.Group, r.NSC, r.SC, r.RF)
		}
		if r.Total != r.NSC {
			t.Errorf("%v: expected all instances NSC", r.Sites)
		}
	}
	benign, harmful := cls.CountByVerdict()
	if benign == 0 || harmful != 0 {
		t.Errorf("counts = (%d benign, %d harmful)", benign, harmful)
	}
}

func TestConflictingWritersClassifyHarmful(t *testing.T) {
	// Two workers store different values: some instance must expose a
	// state change, making the race potentially harmful.
	found := false
	for seed := int64(1); seed <= 30 && !found; seed++ {
		cls := classifySrc(t, conflictingWriters, seed, Options{Scenario: "conflict"})
		for _, r := range cls.Races {
			if r.Verdict == PotentiallyHarmful && r.SC > 0 {
				found = true
				if r.Group != GroupStateChange {
					t.Errorf("group = %v, want state-change", r.Group)
				}
				if len(r.Samples) == 0 {
					t.Error("harmful race should retain samples")
				}
			}
		}
	}
	if !found {
		t.Error("conflicting writers never classified harmful")
	}
}

func TestSamplesCarryReproductionCoordinates(t *testing.T) {
	cls := seedWithRaces(t, redundantWriters, Options{Scenario: "repro-check"})
	r := cls.Races[0]
	if len(r.Samples) == 0 {
		t.Fatal("no samples")
	}
	s := r.Samples[0]
	if s.Scenario != "repro-check" {
		t.Errorf("scenario = %q", s.Scenario)
	}
	if s.TIDA == s.TIDB {
		t.Error("racing threads must differ")
	}
	if s.Addr == 0 {
		t.Error("sample should carry the racing address")
	}
}

func TestMaxInstancesPerRaceBounds(t *testing.T) {
	// Force many instances by looping the redundant writer.
	src := `
.entry main
.word g 5
worker:
  ldi r5, 10
wloop:
  ldi r2, g
  ldi r3, 5
wstore:
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  ldi r2, 1
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`
	for seed := int64(1); seed <= 20; seed++ {
		full := classifySrc(t, src, seed, Options{})
		if full.TotalInstances() < 3 {
			continue
		}
		capped := classifySrc(t, src, seed, Options{MaxInstancesPerRace: 2})
		for _, r := range capped.Races {
			if r.Total > 2 {
				t.Errorf("race %v analyzed %d instances, cap was 2", r.Sites, r.Total)
			}
		}
		return
	}
	t.Skip("no seed with enough instances")
}

func TestMergeAccumulatesAcrossExecutions(t *testing.T) {
	var parts []*Classification
	for seed := int64(1); seed <= 6; seed++ {
		parts = append(parts, classifySrc(t, redundantWriters, seed, Options{Scenario: "m"}))
	}
	merged := Merge(parts...)
	sum := 0
	for _, p := range parts {
		sum += p.TotalInstances()
	}
	if merged.TotalInstances() != sum {
		t.Errorf("merged instances = %d, want %d", merged.TotalInstances(), sum)
	}
	// The same static race in different runs must fold into one entry.
	sites := make(map[string]bool)
	for _, r := range merged.Races {
		if sites[r.Sites.String()] {
			t.Error("duplicate race after merge")
		}
		sites[r.Sites.String()] = true
	}
}

func TestMergeEscalatesVerdict(t *testing.T) {
	// A race NSC in one execution but SC in another must end up harmful
	// (the paper's cross-testcase re-classification, §1).
	a := &Classification{Races: []*RaceResult{{
		Sites: hb.MakeSitePair("x", "y"), Total: 3, NSC: 3,
	}}}
	b := &Classification{Races: []*RaceResult{{
		Sites: hb.MakeSitePair("x", "y"), Total: 2, NSC: 1, SC: 1,
	}}}
	a.Races[0].recompute()
	b.Races[0].recompute()
	if a.Races[0].Verdict != PotentiallyBenign {
		t.Fatal("setup: a should be benign")
	}
	m := Merge(a, b)
	r := m.Race(hb.MakeSitePair("x", "y"))
	if r == nil || r.Verdict != PotentiallyHarmful || r.Group != GroupStateChange {
		t.Errorf("merged = %+v, want harmful state-change", r)
	}
	if r.Total != 5 || r.NSC != 4 || r.SC != 1 {
		t.Errorf("counts = %d/%d/%d", r.Total, r.NSC, r.SC)
	}
}

func TestReplayFailureGroupWinsOverNSCOnly(t *testing.T) {
	r := &RaceResult{Sites: hb.MakeSitePair("a", "b"), Total: 4, NSC: 3, RF: 1}
	r.recompute()
	if r.Group != GroupReplayFailure || r.Verdict != PotentiallyHarmful {
		t.Errorf("group = %v verdict = %v", r.Group, r.Verdict)
	}
	if r.Exposing() != 1 {
		t.Errorf("exposing = %d", r.Exposing())
	}
}

func TestDBSuppression(t *testing.T) {
	db := NewDB()
	cls := seedWithRaces(t, conflictingWriters, Options{DB: db})
	_, harmfulBefore := cls.CountByVerdict()

	// Mark everything benign and re-classify.
	for _, r := range cls.Races {
		db.MarkBenign(r.Sites, "triage: statistics counter, tolerated")
	}
	cls2 := seedWithRaces(t, conflictingWriters, Options{DB: db})
	_, harmfulAfter := cls2.CountByVerdict()
	if harmfulBefore == 0 {
		t.Skip("no harmful race to suppress on these seeds")
	}
	if harmfulAfter != 0 {
		t.Errorf("suppression left %d harmful races", harmfulAfter)
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "races.json")
	db := NewDB()
	db.MarkBenign(hb.MakeSitePair("p:a", "p:b"), "stats counter")
	db.MarkHarmful(hb.MakeSitePair("p:c", "p:d"), "refcount bug")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsMarkedBenign(hb.MakeSitePair("p:a", "p:b")) {
		t.Error("benign mark lost")
	}
	if got.IsMarkedBenign(hb.MakeSitePair("p:c", "p:d")) {
		t.Error("harmful mark misread as benign")
	}
	if len(got.Marks()) != 2 {
		t.Errorf("marks = %d, want 2", len(got.Marks()))
	}
}

func TestLoadDBMissingFileIsEmpty(t *testing.T) {
	db, err := LoadDB(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Marks()) != 0 {
		t.Error("missing file should load empty")
	}
}

func TestLoadDBRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(path); err == nil {
		t.Error("garbage db accepted")
	}
}

func TestStringsForEnums(t *testing.T) {
	if GroupNoStateChange.String() == "" || GroupStateChange.String() == "" || GroupReplayFailure.String() == "" {
		t.Error("group strings empty")
	}
	if PotentiallyBenign.String() == PotentiallyHarmful.String() {
		t.Error("verdict strings collide")
	}
	if !strings.Contains(Group(9).String(), "9") {
		t.Error("unknown group should render numerically")
	}
}

func TestOutcomeCountsMatchVerdict(t *testing.T) {
	// Property over synthetic count vectors: verdict is benign iff SC and
	// RF are zero.
	for sc := 0; sc <= 2; sc++ {
		for rf := 0; rf <= 2; rf++ {
			r := &RaceResult{Total: 3 + sc + rf, NSC: 3, SC: sc, RF: rf}
			r.recompute()
			wantBenign := sc == 0 && rf == 0
			if (r.Verdict == PotentiallyBenign) != wantBenign {
				t.Errorf("sc=%d rf=%d verdict=%v", sc, rf, r.Verdict)
			}
		}
	}
	_ = vproc.NoStateChange // keep import honest
}

func TestConfidenceGrading(t *testing.T) {
	cases := []struct {
		total, sc int
		want      string
	}{
		{1, 0, "low"},
		{3, 0, "medium"},
		{10, 0, "high"},
		{50, 0, "high"},
		{2, 1, "confirmed"},
	}
	for _, c := range cases {
		r := &RaceResult{Total: c.total, NSC: c.total - c.sc, SC: c.sc}
		r.recompute()
		if got := r.Confidence(); got != c.want {
			t.Errorf("total=%d sc=%d: confidence = %q, want %q", c.total, c.sc, got, c.want)
		}
	}
}

func randClassification(r *rand.Rand) *Classification {
	c := &Classification{}
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		rr := &RaceResult{
			Sites: hb.MakeSitePair(
				fmt.Sprintf("p:s%d", r.Intn(4)),
				fmt.Sprintf("p:t%d", r.Intn(4))),
			NSC: r.Intn(5), SC: r.Intn(3), RF: r.Intn(3),
		}
		rr.Total = rr.NSC + rr.SC + rr.RF
		if rr.Total == 0 {
			rr.NSC, rr.Total = 1, 1
		}
		rr.recompute()
		// Dedup within one classification (Merge assumes unique sites
		// per part, as Run produces).
		if c.Race(rr.Sites) == nil {
			c.Races = append(c.Races, rr)
		}
	}
	return c
}

// TestMergeAlgebra: merging is order-insensitive and the counts are
// conserved — cross-execution aggregation cannot depend on which test
// scenario was analyzed first.
func TestMergeAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randClassification(r), randClassification(r), randClassification(r)
		ab_c := Merge(Merge(a, b), c)
		a_bc := Merge(a, Merge(b, c))
		cba := Merge(c, b, a)
		if len(ab_c.Races) != len(a_bc.Races) || len(ab_c.Races) != len(cba.Races) {
			return false
		}
		for _, x := range ab_c.Races {
			y, z := a_bc.Race(x.Sites), cba.Race(x.Sites)
			if y == nil || z == nil {
				return false
			}
			if x.Total != y.Total || x.Total != z.Total ||
				x.NSC != y.NSC || x.SC != y.SC || x.RF != y.RF ||
				x.Group != y.Group || x.Group != z.Group {
				return false
			}
		}
		// Conservation: merged totals equal the sum of the parts.
		sum := a.TotalInstances() + b.TotalInstances() + c.TotalInstances()
		return ab_c.TotalInstances() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeIgnoresNilParts(t *testing.T) {
	a := &Classification{Races: []*RaceResult{{Sites: hb.MakeSitePair("a", "b"), Total: 1, NSC: 1}}}
	m := Merge(nil, a, nil)
	if len(m.Races) != 1 || m.TotalInstances() != 1 {
		t.Errorf("merge with nils = %+v", m)
	}
}

// TestSampleRetentionKeepsLaterKindsWithRoom is the regression test for
// the keep condition that contradicted its own comment: once an SC/RF
// sample existed, later No-State-Change instances were never sampled
// even with room under MaxSamplesPerRace.
func TestSampleRetentionKeepsLaterKindsWithRoom(t *testing.T) {
	rr := &RaceResult{}
	kinds := make(map[vproc.Outcome]int)
	for _, o := range []vproc.Outcome{vproc.StateChange, vproc.NoStateChange, vproc.NoStateChange} {
		rr.keepSample(kinds, 4, InstanceSample{Outcome: o})
	}
	if len(rr.Samples) != 3 {
		t.Fatalf("retained %d samples, want 3 (room under the cap must keep filling)", len(rr.Samples))
	}
	nsc := 0
	for _, s := range rr.Samples {
		if s.Outcome == vproc.NoStateChange {
			nsc++
		}
	}
	if nsc != 2 {
		t.Errorf("retained %d NSC samples, want 2", nsc)
	}
}

// TestSampleRetentionEvictsDuplicateForNewKind: with the buffer full, a
// first instance of an unrepresented outcome kind replaces a duplicate
// of an over-represented kind, so every kind seen keeps one sample.
func TestSampleRetentionEvictsDuplicateForNewKind(t *testing.T) {
	rr := &RaceResult{}
	kinds := make(map[vproc.Outcome]int)
	for i := 0; i < 4; i++ {
		rr.keepSample(kinds, 4, InstanceSample{Outcome: vproc.NoStateChange, IdxA: uint64(i)})
	}
	rr.keepSample(kinds, 4, InstanceSample{Outcome: vproc.StateChange})
	rr.keepSample(kinds, 4, InstanceSample{Outcome: vproc.ReplayFailure})
	if len(rr.Samples) != 4 {
		t.Fatalf("retained %d samples, want the cap of 4", len(rr.Samples))
	}
	got := map[vproc.Outcome]int{}
	for _, s := range rr.Samples {
		got[s.Outcome]++
	}
	if got[vproc.NoStateChange] != 2 || got[vproc.StateChange] != 1 || got[vproc.ReplayFailure] != 1 {
		t.Errorf("retained kinds = %v, want 2 NSC + 1 SC + 1 RF", got)
	}
	// Another duplicate of a represented kind is dropped once full.
	rr.keepSample(kinds, 4, InstanceSample{Outcome: vproc.StateChange, IdxA: 99})
	for _, s := range rr.Samples {
		if s.IdxA == 99 {
			t.Error("duplicate of a represented kind displaced a sample")
		}
	}
}

// TestNegativeParallelRunsSerially: Options.Parallel below zero is
// normalized (via sched.Normalize) instead of spinning up a bogus pool,
// and the result matches the serial classification.
func TestNegativeParallelRunsSerially(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		serial := classifySrc(t, redundantWriters, seed, Options{})
		neg := classifySrc(t, redundantWriters, seed, Options{Parallel: -7})
		if len(serial.Races) != len(neg.Races) {
			t.Fatalf("seed %d: race counts differ", seed)
		}
		for i := range serial.Races {
			a, b := serial.Races[i], neg.Races[i]
			if a.Sites != b.Sites || a.NSC != b.NSC || a.SC != b.SC || a.RF != b.RF {
				t.Fatalf("seed %d: race %v differs under negative Parallel", seed, a.Sites)
			}
		}
	}
}

// TestParallelClassificationIsIdentical: the parallel path must be
// bit-identical to serial (instances are independent and results are
// aggregated by index).
func TestParallelClassificationIsIdentical(t *testing.T) {
	src := `
.entry main
.word g 0
worker:
  ldi r5, 8
wloop:
  ldi r2, g
  ld r3, [r2+0]
  addi r3, r3, 1
wst:
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`
	for seed := int64(1); seed <= 6; seed++ {
		serial := classifySrc(t, src, seed, Options{})
		par := classifySrc(t, src, seed, Options{Parallel: 8})
		if len(serial.Races) != len(par.Races) {
			t.Fatalf("seed %d: race counts differ", seed)
		}
		for i := range serial.Races {
			a, b := serial.Races[i], par.Races[i]
			if a.Sites != b.Sites || a.NSC != b.NSC || a.SC != b.SC || a.RF != b.RF || a.Group != b.Group {
				t.Fatalf("seed %d: race %v differs: serial %d/%d/%d vs parallel %d/%d/%d",
					seed, a.Sites, a.NSC, a.SC, a.RF, b.NSC, b.SC, b.RF)
			}
		}
	}
}
