package isa

import (
	"encoding/binary"
	"fmt"
)

// InstrSize is the fixed byte width of one encoded instruction:
// op(1) rd(1) rs1(1) rs2(1) imm(8, little-endian two's complement).
const InstrSize = 12

// Encode appends the binary encoding of ins to dst and returns the
// extended slice.
func Encode(dst []byte, ins Instr) []byte {
	var buf [InstrSize]byte
	buf[0] = byte(ins.Op)
	buf[1] = ins.Rd
	buf[2] = ins.Rs1
	buf[3] = ins.Rs2
	binary.LittleEndian.PutUint64(buf[4:], uint64(ins.Imm))
	return append(dst, buf[:]...)
}

// Decode reads one instruction from src. It returns an error when src is
// short, the opcode is undefined, or a register field is out of range.
func Decode(src []byte) (Instr, error) {
	if len(src) < InstrSize {
		return Instr{}, fmt.Errorf("isa: short instruction: %d bytes", len(src))
	}
	ins := Instr{
		Op:  Op(src[0]),
		Rd:  src[1],
		Rs1: src[2],
		Rs2: src[3],
		Imm: int64(binary.LittleEndian.Uint64(src[4:InstrSize])),
	}
	if !ins.Op.Valid() {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d", src[0])
	}
	if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
		return Instr{}, fmt.Errorf("isa: register out of range in %v", ins)
	}
	return ins, nil
}

// EncodeCode serializes a whole code segment.
func EncodeCode(code []Instr) []byte {
	out := make([]byte, 0, len(code)*InstrSize)
	for _, ins := range code {
		out = Encode(out, ins)
	}
	return out
}

// DecodeCode deserializes a code segment produced by EncodeCode.
func DecodeCode(src []byte) ([]Instr, error) {
	if len(src)%InstrSize != 0 {
		return nil, fmt.Errorf("isa: code segment length %d not a multiple of %d", len(src), InstrSize)
	}
	code := make([]Instr, 0, len(src)/InstrSize)
	for off := 0; off < len(src); off += InstrSize {
		ins, err := Decode(src[off:])
		if err != nil {
			return nil, fmt.Errorf("isa: at offset %d: %w", off, err)
		}
		code = append(code, ins)
	}
	return code, nil
}
