package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Memory layout constants. The address space is word-granular: each address
// names one 64-bit word. Address 0 and the rest of the guard page are never
// mapped, so stray null-pointer arithmetic faults immediately — the RVM
// analogue of a page-zero access violation.
const (
	NullGuardTop uint64 = 0x0010    // addresses < NullGuardTop always fault
	DataBase     uint64 = 0x1000    // globals declared with .word / .space
	HeapBase     uint64 = 0x1_0000  // sys alloc carves blocks from here
	StackBase    uint64 = 0x10_0000 // thread t's stack top = StackBase + (t+1)*StackWords
	StackWords   uint64 = 0x400     // words of stack per thread
)

// StackTop returns the initial stack pointer for thread tid.
// Stacks grow downward (Call decrements SP before storing).
func StackTop(tid int) uint64 {
	return StackBase + uint64(tid+1)*StackWords
}

// SourceLoc ties an instruction back to the assembly that produced it.
type SourceLoc struct {
	Line   int    // 1-based line in the .rasm source ("0" for builder-made code)
	Symbol string // nearest preceding label
	Offset int    // instruction offset from that label
}

// Program is a fully assembled RVM program: code, initialized data, and the
// symbol/source maps that give race reports stable, human-readable sites.
type Program struct {
	Name    string
	Code    []Instr
	Entry   int               // instruction index where thread 0 starts
	Data    map[uint64]uint64 // initial contents of the data segment
	Symbols map[string]int    // label -> instruction index
	Sources []SourceLoc       // one per instruction; may be empty
	// DataSyms maps .word/.space names to their data addresses. It is a
	// source-level convenience (the static analyzer renders candidate
	// addresses symbolically) and, like Sources, is not serialized into
	// replay logs: programs decoded from a log fall back to hex addresses.
	DataSyms map[string]uint64
}

// NewProgram returns an empty program with allocated maps.
func NewProgram(name string) *Program {
	return &Program{
		Name:     name,
		Data:     make(map[uint64]uint64),
		Symbols:  make(map[string]int),
		DataSyms: make(map[string]uint64),
	}
}

// NameOfData returns a symbolic rendering of a data address: the nearest
// data symbol at or below addr ("name" or "name+off"), or "" when the
// program carries no data symbol covering it.
func (p *Program) NameOfData(addr uint64) string {
	bestName, bestAddr, found := "", uint64(0), false
	for name, at := range p.DataSyms {
		if at <= addr && (!found || at > bestAddr || (at == bestAddr && name < bestName)) {
			bestName, bestAddr, found = name, at, true
		}
	}
	if !found {
		return ""
	}
	if addr == bestAddr {
		return bestName
	}
	return fmt.Sprintf("%s+%d", bestName, addr-bestAddr)
}

// Validate checks structural invariants: every branch target lands inside
// the code, register fields are in range, and syscall numbers are known.
// The machine re-checks dynamically (for Jmpr), but assembling an invalid
// static target is always a bug.
func (p *Program) Validate() error {
	n := int64(len(p.Code))
	for pc, ins := range p.Code {
		if !ins.Op.Valid() {
			return fmt.Errorf("%s: pc %d: invalid opcode %d", p.Name, pc, ins.Op)
		}
		if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
			return fmt.Errorf("%s: pc %d: register out of range in %v", p.Name, pc, ins)
		}
		switch ins.Op {
		case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpCall:
			if ins.Imm < 0 || ins.Imm >= n {
				return fmt.Errorf("%s: pc %d: branch target %d outside code [0,%d)", p.Name, pc, ins.Imm, n)
			}
		case OpSys:
			if ins.Imm < 0 || ins.Imm >= SyscallCount {
				return fmt.Errorf("%s: pc %d: unknown syscall %d", p.Name, pc, ins.Imm)
			}
		}
	}
	if p.Entry < 0 || (len(p.Code) > 0 && p.Entry >= len(p.Code)) {
		return fmt.Errorf("%s: entry %d outside code", p.Name, p.Entry)
	}
	return nil
}

// SiteOf returns a stable human-readable identity for the instruction at pc,
// of the form "prog:label+off". Race identity is built on these strings, so
// the same template produces the same site across scenarios.
func (p *Program) SiteOf(pc int) string {
	if pc < 0 || pc >= len(p.Code) {
		return fmt.Sprintf("%s:pc%d", p.Name, pc)
	}
	if pc < len(p.Sources) {
		loc := p.Sources[pc]
		if loc.Symbol != "" {
			if loc.Offset == 0 {
				return fmt.Sprintf("%s:%s", p.Name, loc.Symbol)
			}
			return fmt.Sprintf("%s:%s+%d", p.Name, loc.Symbol, loc.Offset)
		}
	}
	// Fall back to the nearest label at or before pc.
	bestName, bestAt := "", -1
	for name, at := range p.Symbols {
		if at <= pc && (at > bestAt || (at == bestAt && name < bestName)) {
			bestName, bestAt = name, at
		}
	}
	if bestAt >= 0 {
		if pc == bestAt {
			return fmt.Sprintf("%s:%s", p.Name, bestName)
		}
		return fmt.Sprintf("%s:%s+%d", p.Name, bestName, pc-bestAt)
	}
	return fmt.Sprintf("%s:pc%d", p.Name, pc)
}

// Disassemble renders the whole program with labels and addresses, one
// instruction per line.
func (p *Program) Disassemble() string {
	byAddr := make(map[int][]string)
	for name, at := range p.Symbols {
		byAddr[at] = append(byAddr[at], name)
	}
	for _, names := range byAddr {
		sort.Strings(names)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s  (%d instructions, entry %d)\n", p.Name, len(p.Code), p.Entry)
	if len(p.Data) > 0 {
		addrs := make([]uint64, 0, len(p.Data))
		for a := range p.Data {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			fmt.Fprintf(&b, "; data [0x%x] = %d\n", a, p.Data[a])
		}
	}
	for pc, ins := range p.Code {
		for _, name := range byAddr[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %4d  %s\n", pc, ins)
	}
	return b.String()
}
