// Package isa defines the instruction set of the RVM, the small RISC-like
// virtual machine this repository uses as its execution substrate.
//
// The paper's algorithms (iDNA-style recording, sequencing-region replay,
// happens-before race detection, and replay-both-orders classification) all
// operate at instruction granularity. The RVM provides exactly the features
// those algorithms need: a word-granular flat address space, general
// registers, lock-prefixed atomic instructions that act as synchronization
// points, and system calls. Everything above this package is the paper's
// machinery, unmodified.
package isa

import "fmt"

// NumRegs is the number of general-purpose registers (r0..r15).
// r0 is hardwired to zero (writes are discarded), r15 is the stack
// pointer, syscall arguments are passed in r1..r3, and a syscall's result
// replaces r1.
const NumRegs = 16

// Zero is the hardwired zero register.
const Zero = 0

// SP is the conventional stack-pointer register.
const SP = 15

// Op identifies an RVM instruction opcode.
type Op uint8

// Opcode space. Arithmetic ops use rd = rs1 <op> rs2; immediate forms use
// rd = rs1 <op> imm. Branch targets and jump targets are absolute
// instruction indices held in Imm.
const (
	OpNop Op = iota
	OpHalt

	// Data movement.
	OpLdi // rd = imm
	OpMov // rd = rs1

	// Three-register ALU.
	OpAdd // rd = rs1 + rs2
	OpSub // rd = rs1 - rs2
	OpMul // rd = rs1 * rs2
	OpDiv // rd = rs1 / rs2 (faults on rs2 == 0)
	OpMod // rd = rs1 % rs2 (faults on rs2 == 0)
	OpAnd // rd = rs1 & rs2
	OpOr  // rd = rs1 | rs2
	OpXor // rd = rs1 ^ rs2
	OpShl // rd = rs1 << (rs2 & 63)
	OpShr // rd = rs1 >> (rs2 & 63)

	// Immediate ALU.
	OpAddi // rd = rs1 + imm
	OpMuli // rd = rs1 * imm
	OpAndi // rd = rs1 & imm
	OpOri  // rd = rs1 | imm
	OpXori // rd = rs1 ^ imm
	OpShli // rd = rs1 << (imm & 63)
	OpShri // rd = rs1 >> (imm & 63)

	// Unary ALU.
	OpNot // rd = ^rs1
	OpNeg // rd = -rs1

	// Memory. Addresses are word-granular: each address names one 64-bit
	// word. The effective address is rs1 + imm.
	OpLd // rd = mem[rs1+imm]
	OpSt // mem[rs1+imm] = rs2

	// Control flow. Branch/jump targets are absolute instruction indices.
	OpBeq  // if rs1 == rs2: pc = imm
	OpBne  // if rs1 != rs2: pc = imm
	OpBlt  // if int64(rs1) <  int64(rs2): pc = imm
	OpBge  // if int64(rs1) >= int64(rs2): pc = imm
	OpBltu // if rs1 <  rs2 (unsigned): pc = imm
	OpBgeu // if rs1 >= rs2 (unsigned): pc = imm
	OpJmp  // pc = imm
	OpJmpr // pc = rs1 (indirect; faults on out-of-range target)
	OpCall // mem[--sp] = pc+1; pc = imm
	OpRet  // pc = mem[sp++]

	// Lock-prefixed atomics. These are the RVM's synchronization
	// instructions: the recorder logs a sequencer at each of them,
	// exactly as iDNA does for x86 lock-prefixed instructions.
	OpCas   // old = mem[rs1+imm]; if old == rd { mem[rs1+imm] = rs2 }; rd = old
	OpXadd  // old = mem[rs1+imm]; mem[rs1+imm] = old + rs2; rd = old
	OpXchg  // old = mem[rs1+imm]; mem[rs1+imm] = rs2; rd = old
	OpFence // full barrier (sequencer only; no data effect)

	// Blocking mutex on the word at rs1+imm. Both emit sequencers.
	OpLock
	OpUnlock

	// System call number in Imm; arguments in r1..r3, result replaces r1.
	// Every syscall emits a sequencer.
	OpSys

	// Non-atomic read-modify-write memory ops (x86 "or [mem], reg"
	// without a LOCK prefix). They are data accesses, not synchronization:
	// no sequencer is logged, and the race detector sees both the load
	// and the store.
	OpOrm  // mem[rs1+imm] |= rs2
	OpAndm // mem[rs1+imm] &= rs2
	OpXorm // mem[rs1+imm] ^= rs2
	OpAddm // mem[rs1+imm] += rs2

	opCount // sentinel; must be last
)

// OpCount is the number of defined opcodes (for encode/decode validation).
const OpCount = int(opCount)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt",
	OpLdi: "ldi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddi: "addi", OpMuli: "muli", OpAndi: "andi", OpOri: "ori",
	OpXori: "xori", OpShli: "shli", OpShri: "shri",
	OpNot: "not", OpNeg: "neg",
	OpLd: "ld", OpSt: "st",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJmp: "jmp", OpJmpr: "jmpr", OpCall: "call", OpRet: "ret",
	OpCas: "cas", OpXadd: "xadd", OpXchg: "xchg", OpFence: "fence",
	OpLock: "lock", OpUnlock: "unlock",
	OpSys: "sys",
	OpOrm: "orm", OpAndm: "andm", OpXorm: "xorm", OpAddm: "addm",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount }

// IsSync reports whether the instruction is a synchronization point:
// the recorder logs a sequencer immediately before executing it.
func (op Op) IsSync() bool {
	switch op {
	case OpCas, OpXadd, OpXchg, OpFence, OpLock, OpUnlock, OpSys:
		return true
	}
	return false
}

// IsBranch reports whether op may transfer control (excluding Halt).
func (op Op) IsBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpJmpr, OpCall, OpRet:
		return true
	}
	return false
}

// IsCondBranch reports whether op is a conditional branch: control either
// falls through to pc+1 or transfers to the Imm target.
func (op Op) IsCondBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}

// IsAtomic reports whether op is a lock-prefixed data access (Cas, Xadd,
// Xchg). Atomics are synchronization, not data: the happens-before
// detector and the static analyzer both exclude them from race candidates.
func (op Op) IsAtomic() bool {
	switch op {
	case OpCas, OpXadd, OpXchg:
		return true
	}
	return false
}

// IsMemRMW reports whether op is one of the non-atomic read-modify-write
// memory instructions (orm/andm/xorm/addm) — a data read and write in one
// instruction, with no sequencer.
func (op Op) IsMemRMW() bool {
	switch op {
	case OpOrm, OpAndm, OpXorm, OpAddm:
		return true
	}
	return false
}

// ReadsMem reports whether executing op reads a data-memory word.
func (op Op) ReadsMem() bool {
	switch op {
	case OpLd, OpCas, OpXadd, OpXchg, OpRet, OpOrm, OpAndm, OpXorm, OpAddm:
		return true
	}
	return false
}

// WritesMem reports whether executing op may write a data-memory word.
// OpCas writes only when the comparison succeeds; this predicate is the
// static may-write approximation.
func (op Op) WritesMem() bool {
	switch op {
	case OpSt, OpCas, OpXadd, OpXchg, OpCall, OpOrm, OpAndm, OpXorm, OpAddm:
		return true
	}
	return false
}

// Syscall numbers, passed in the Imm field of OpSys.
const (
	SysExit   = 0  // terminate the calling thread; r1 = exit code
	SysPrint  = 1  // append r1 (as a decimal integer) to the thread's output
	SysAlloc  = 2  // r1 = address of a fresh block of r1 words
	SysFree   = 3  // release the block at r1 (faults on bad/double free); r1 = 0
	SysSpawn  = 4  // r1 = tid of a new thread starting at pc r1 with its r1 = caller's r2
	SysJoin   = 5  // block until thread r1 exits; r1 = its exit code
	SysYield  = 6  // hint: reschedule; r1 = 0
	SysGettid = 7  // r1 = calling thread's id
	SysRand   = 8  // r1 = next value from the run's deterministic entropy stream
	SysTime   = 9  // r1 = current virtual time (global retired-instruction count)
	SysNop    = 10 // no effect beyond the sequencer (used to place sync points); r1 = 0

	SyscallCount = 11
)

var sysNames = [SyscallCount]string{
	"exit", "print", "alloc", "free", "spawn", "join",
	"yield", "gettid", "rand", "time", "sysnop",
}

// SyscallName returns the mnemonic name of syscall number n.
func SyscallName(n int64) string {
	if n >= 0 && n < SyscallCount {
		return sysNames[n]
	}
	return fmt.Sprintf("sys(%d)", n)
}

// SyscallNumber resolves a syscall mnemonic to its number, or -1.
func SyscallNumber(name string) int64 {
	for i, s := range sysNames {
		if s == name {
			return int64(i)
		}
	}
	return -1
}

// Instr is a single decoded RVM instruction.
type Instr struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	Imm          int64
}

// String renders i in assembler syntax (without symbolic labels).
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt, OpFence, OpRet:
		return i.Op.String()
	case OpLdi:
		return fmt.Sprintf("ldi r%d, %d", i.Rd, i.Imm)
	case OpMov, OpNot, OpNeg:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rd, i.Rs1)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpShli, OpShri:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpLd:
		return fmt.Sprintf("ld r%d, [r%d+%d]", i.Rd, i.Rs1, i.Imm)
	case OpSt:
		return fmt.Sprintf("st [r%d+%d], r%d", i.Rs1, i.Imm, i.Rs2)
	case OpOrm, OpAndm, OpXorm, OpAddm:
		return fmt.Sprintf("%s [r%d+%d], r%d", i.Op, i.Rs1, i.Imm, i.Rs2)
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case OpJmpr:
		return fmt.Sprintf("jmpr r%d", i.Rs1)
	case OpCas, OpXadd, OpXchg:
		return fmt.Sprintf("%s r%d, [r%d+%d], r%d", i.Op, i.Rd, i.Rs1, i.Imm, i.Rs2)
	case OpLock, OpUnlock:
		return fmt.Sprintf("%s [r%d+%d]", i.Op, i.Rs1, i.Imm)
	case OpSys:
		return fmt.Sprintf("sys %s", SyscallName(i.Imm))
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Rs2, i.Imm)
	}
}
