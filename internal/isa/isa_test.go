package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStringUnique(t *testing.T) {
	seen := make(map[string]Op)
	for op := Op(0); op.Valid(); op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %d and %d share mnemonic %q", prev, op, s)
		}
		seen[s] = op
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("invalid op string = %q", got)
	}
}

func TestIsSyncCoversAtomicsAndSyscalls(t *testing.T) {
	syncOps := []Op{OpCas, OpXadd, OpXchg, OpFence, OpLock, OpUnlock, OpSys}
	for _, op := range syncOps {
		if !op.IsSync() {
			t.Errorf("%v should be a sync point", op)
		}
	}
	nonSync := []Op{OpNop, OpLd, OpSt, OpAdd, OpBeq, OpCall, OpRet, OpHalt}
	for _, op := range nonSync {
		if op.IsSync() {
			t.Errorf("%v should not be a sync point", op)
		}
	}
}

func TestMemPredicates(t *testing.T) {
	if !OpLd.ReadsMem() || OpLd.WritesMem() {
		t.Error("ld should read and not write")
	}
	if OpSt.ReadsMem() || !OpSt.WritesMem() {
		t.Error("st should write and not read")
	}
	for _, op := range []Op{OpCas, OpXadd, OpXchg} {
		if !op.ReadsMem() || !op.WritesMem() {
			t.Errorf("%v should both read and write", op)
		}
	}
	if !OpCall.WritesMem() || !OpRet.ReadsMem() {
		t.Error("call pushes, ret pops")
	}
}

func TestSyscallNames(t *testing.T) {
	for n := int64(0); n < SyscallCount; n++ {
		name := SyscallName(n)
		if strings.HasPrefix(name, "sys(") {
			t.Errorf("syscall %d has no name", n)
		}
		if got := SyscallNumber(name); got != n {
			t.Errorf("SyscallNumber(%q) = %d, want %d", name, got, n)
		}
	}
	if SyscallNumber("bogus") != -1 {
		t.Error("unknown syscall name should map to -1")
	}
	if SyscallName(99) != "sys(99)" {
		t.Error("unknown syscall number should render numerically")
	}
}

func randInstr(r *rand.Rand) Instr {
	return Instr{
		Op:  Op(r.Intn(OpCount)),
		Rd:  uint8(r.Intn(NumRegs)),
		Rs1: uint8(r.Intn(NumRegs)),
		Rs2: uint8(r.Intn(NumRegs)),
		Imm: r.Int63() - r.Int63(),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randInstr(r)
		got, err := Decode(Encode(nil, ins))
		return err == nil && got == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeCodeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		code := make([]Instr, int(n)%64)
		for i := range code {
			code[i] = randInstr(r)
		}
		got, err := DecodeCode(EncodeCode(code))
		if err != nil || len(got) != len(code) {
			return false
		}
		for i := range code {
			if got[i] != code[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, InstrSize-1)); err == nil {
		t.Error("short buffer should fail")
	}
	bad := Encode(nil, Instr{Op: OpNop})
	bad[0] = 250
	if _, err := Decode(bad); err == nil {
		t.Error("invalid opcode should fail")
	}
	bad2 := Encode(nil, Instr{Op: OpAdd})
	bad2[1] = NumRegs
	if _, err := Decode(bad2); err == nil {
		t.Error("register out of range should fail")
	}
	if _, err := DecodeCode(make([]byte, InstrSize+1)); err == nil {
		t.Error("ragged code segment should fail")
	}
}

func TestProgramValidate(t *testing.T) {
	p := NewProgram("t")
	p.Code = []Instr{
		{Op: OpLdi, Rd: 1, Imm: 7},
		{Op: OpJmp, Imm: 0},
		{Op: OpHalt},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	bad := NewProgram("b")
	bad.Code = []Instr{{Op: OpJmp, Imm: 99}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range jump accepted")
	}

	badSys := NewProgram("s")
	badSys.Code = []Instr{{Op: OpSys, Imm: SyscallCount}}
	if err := badSys.Validate(); err == nil {
		t.Error("unknown syscall accepted")
	}

	badEntry := NewProgram("e")
	badEntry.Code = []Instr{{Op: OpHalt}}
	badEntry.Entry = 5
	if err := badEntry.Validate(); err == nil {
		t.Error("entry outside code accepted")
	}

	badReg := NewProgram("r")
	badReg.Code = []Instr{{Op: OpAdd, Rd: NumRegs}}
	if err := badReg.Validate(); err == nil {
		t.Error("register out of range accepted")
	}
}

func TestSiteOf(t *testing.T) {
	p := NewProgram("prog")
	p.Code = make([]Instr, 6)
	p.Symbols["start"] = 0
	p.Symbols["loop"] = 3
	p.Sources = []SourceLoc{
		{Line: 1, Symbol: "start", Offset: 0},
		{Line: 2, Symbol: "start", Offset: 1},
		{Line: 3, Symbol: "start", Offset: 2},
		{Line: 4, Symbol: "loop", Offset: 0},
		{Line: 5, Symbol: "loop", Offset: 1},
		{Line: 6, Symbol: "loop", Offset: 2},
	}
	cases := map[int]string{
		0: "prog:start",
		2: "prog:start+2",
		3: "prog:loop",
		5: "prog:loop+2",
	}
	for pc, want := range cases {
		if got := p.SiteOf(pc); got != want {
			t.Errorf("SiteOf(%d) = %q, want %q", pc, got, want)
		}
	}
	if got := p.SiteOf(99); got != "prog:pc99" {
		t.Errorf("SiteOf(out of range) = %q", got)
	}
}

func TestSiteOfFallsBackToSymbols(t *testing.T) {
	p := NewProgram("prog")
	p.Code = make([]Instr, 4)
	p.Symbols["main"] = 1
	if got := p.SiteOf(3); got != "prog:main+2" {
		t.Errorf("fallback SiteOf = %q, want prog:main+2", got)
	}
	if got := p.SiteOf(0); got != "prog:pc0" {
		t.Errorf("SiteOf before any label = %q, want prog:pc0", got)
	}
}

func TestDisassembleMentionsEverything(t *testing.T) {
	p := NewProgram("demo")
	p.Code = []Instr{
		{Op: OpLdi, Rd: 1, Imm: 42},
		{Op: OpSys, Imm: SysPrint},
		{Op: OpHalt},
	}
	p.Symbols["main"] = 0
	p.Data[DataBase] = 7
	out := p.Disassemble()
	for _, want := range []string{"demo", "main:", "ldi r1, 42", "sys print", "halt", "data"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"nop":                 {Op: OpNop},
		"ldi r3, -5":          {Op: OpLdi, Rd: 3, Imm: -5},
		"mov r1, r2":          {Op: OpMov, Rd: 1, Rs1: 2},
		"add r1, r2, r3":      {Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		"addi r1, r2, 9":      {Op: OpAddi, Rd: 1, Rs1: 2, Imm: 9},
		"ld r4, [r5+8]":       {Op: OpLd, Rd: 4, Rs1: 5, Imm: 8},
		"st [r5+8], r4":       {Op: OpSt, Rs1: 5, Rs2: 4, Imm: 8},
		"beq r1, r2, 10":      {Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 10},
		"jmp 3":               {Op: OpJmp, Imm: 3},
		"jmpr r7":             {Op: OpJmpr, Rs1: 7},
		"cas r1, [r2+0], r3":  {Op: OpCas, Rd: 1, Rs1: 2, Rs2: 3},
		"xadd r1, [r2+4], r3": {Op: OpXadd, Rd: 1, Rs1: 2, Rs2: 3, Imm: 4},
		"lock [r2+0]":         {Op: OpLock, Rs1: 2},
		"unlock [r2+0]":       {Op: OpUnlock, Rs1: 2},
		"sys spawn":           {Op: OpSys, Imm: SysSpawn},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", ins.Op, got, want)
		}
	}
}

func TestStackTopDisjoint(t *testing.T) {
	for tid := 0; tid < 8; tid++ {
		lo, hi := StackTop(tid)-StackWords, StackTop(tid)
		nextLo := StackTop(tid+1) - StackWords
		if hi > nextLo {
			t.Fatalf("stacks for tid %d and %d overlap", tid, tid+1)
		}
		if lo < StackBase {
			t.Fatalf("stack for tid %d below StackBase", tid)
		}
	}
}
