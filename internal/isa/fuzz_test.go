package isa

import "testing"

// FuzzDecode: arbitrary bytes must never panic, and anything accepted
// must re-encode to the same bytes.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(nil, Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(Encode(nil, Instr{Op: OpSys, Imm: SysPrint}))
	f.Add([]byte{255, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ins, err := Decode(data)
		if err != nil {
			return
		}
		enc := Encode(nil, ins)
		if len(data) < InstrSize {
			t.Fatal("decode accepted short input")
		}
		for i := 0; i < InstrSize; i++ {
			if enc[i] != data[i] {
				t.Fatalf("byte %d: re-encode %d vs input %d", i, enc[i], data[i])
			}
		}
	})
}
