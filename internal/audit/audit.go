// Package audit is the verdict-provenance schema of the pipeline: one
// versioned, machine-readable record per classified race explaining
// where its verdict came from — which input log (by content hash),
// which live-in fingerprints, whether each instance's dual-order replay
// was served from the memo cache, and what both replay orders produced.
//
// The schema is the on-disk contract a long-running `racer serve`
// process will persist (ROADMAP item 1), so it is deliberately plain:
// strings and integers only, no internal types, versioned by SchemaID.
// Everything in a File is a deterministic function of the analyzed
// inputs — records are byte-identical at any worker count. The one
// subtlety is the cache column: whether a concrete lookup hit the
// shared memo depends on worker interleaving, so CacheHit is *derived*
// (DeriveCacheHits) as "would the canonical serial schedule have hit",
// i.e. every instance after the first occurrence of its fingerprint in
// file order. At one worker the derivation and the runtime agree
// exactly; at N workers the records still agree with the serial run.
package audit

import (
	"encoding/json"
	"fmt"
	"os"
)

// SchemaID identifies the JSON layout; bump on incompatible change.
const SchemaID = "racereplay-audit/v1"

// File is the versioned envelope: the provenance of one batch analysis
// (a suite run, an analyze-dir batch), execution by execution in input
// order.
type File struct {
	Schema     string      `json:"schema"`
	Executions []Execution `json:"executions"`
}

// Execution is the provenance of one analyzed (or quarantined)
// execution.
type Execution struct {
	// Scenario labels the execution (scenario name or log file name).
	Scenario string `json:"scenario"`
	// Seed is the scheduler seed the execution was recorded under.
	Seed int64 `json:"seed,omitempty"`
	// LogSHA256 is the hex SHA-256 of the input log's canonical
	// serialization — the content identity replay verdicts attach to.
	// Empty when the execution quarantined before a log existed.
	LogSHA256 string `json:"log_sha256,omitempty"`
	// Quarantined, when non-empty, is the reason this execution
	// produced no verdicts; Races is empty.
	Quarantined string `json:"quarantined,omitempty"`
	// Races are the classified races of this execution, in report
	// order.
	Races []Race `json:"races,omitempty"`
}

// Race is the provenance of one classified race in one execution.
type Race struct {
	SiteA      string `json:"site_a"`
	SiteB      string `json:"site_b"`
	Verdict    string `json:"verdict"` // potentially-benign | potentially-harmful
	Group      string `json:"group"`   // no-state-change | state-change | replay-failure
	Suppressed bool   `json:"suppressed,omitempty"`
	// Predicted marks a race the prediction stage proposed (a feasible
	// reordering of the recorded schedule) rather than one the observed
	// interleaving exhibited. The field is additive and omitted when
	// false, so v1 files written before prediction existed stay valid.
	Predicted bool       `json:"predicted,omitempty"`
	Instances []Instance `json:"instances,omitempty"`
}

// Instance is the provenance of one dual-order replay.
type Instance struct {
	// Fingerprint is the hex live-in fingerprint (vproc.Fingerprint)
	// keying the replay cache: equal fingerprints imply equal results.
	Fingerprint string `json:"fingerprint"`
	// CacheHit reports whether the canonical serial schedule serves
	// this instance from the memo (see DeriveCacheHits).
	CacheHit bool `json:"cache_hit"`
	// Outcome is the combined verdict: no-state-change, state-change,
	// or replay-failure.
	Outcome string `json:"outcome"`
	// OrigOrder and AltOrder are the two replay orders' individual
	// outcomes: "ok", or the failure reason.
	OrigOrder string `json:"orig_order"`
	AltOrder  string `json:"alt_order"`
	// Diffs counts live-out discrepancies (state-change only).
	Diffs int `json:"diffs,omitempty"`
}

// NewFile returns an empty envelope.
func NewFile() *File { return &File{Schema: SchemaID} }

// DeriveCacheHits recomputes every instance's CacheHit flag as the
// canonical serial schedule would have seen it: walking executions,
// races, and instances in file order, the first occurrence of each
// fingerprint is a miss and every later one a hit. This is what makes
// audit files byte-identical at every -jobs count — the runtime's
// actual hit pattern depends on worker interleaving, the canonical one
// only on the inputs. Call it once after the file is assembled.
func (f *File) DeriveCacheHits() {
	seen := make(map[string]bool)
	for ei := range f.Executions {
		for ri := range f.Executions[ei].Races {
			insts := f.Executions[ei].Races[ri].Instances
			for ii := range insts {
				fp := insts[ii].Fingerprint
				insts[ii].CacheHit = seen[fp]
				seen[fp] = true
			}
		}
	}
}

// CacheHits counts (hits, misses) across every instance.
func (f *File) CacheHits() (hits, misses int) {
	for _, e := range f.Executions {
		for _, r := range e.Races {
			for _, in := range r.Instances {
				if in.CacheHit {
					hits++
				} else {
					misses++
				}
			}
		}
	}
	return
}

// Validate checks the envelope against the schema contract.
func (f *File) Validate() error {
	if f.Schema != SchemaID {
		return fmt.Errorf("schema %q, want %q", f.Schema, SchemaID)
	}
	for i, e := range f.Executions {
		if e.Scenario == "" {
			return fmt.Errorf("execution %d has no scenario label", i)
		}
		if e.Quarantined != "" && len(e.Races) > 0 {
			return fmt.Errorf("%s: quarantined execution carries races", e.Scenario)
		}
		if e.Quarantined == "" && e.LogSHA256 == "" {
			return fmt.Errorf("%s: analyzed execution lacks a log hash", e.Scenario)
		}
		for _, r := range e.Races {
			if r.SiteA == "" || r.SiteB == "" {
				return fmt.Errorf("%s: race with empty site pair", e.Scenario)
			}
			switch r.Verdict {
			case "potentially-benign", "potentially-harmful":
			default:
				return fmt.Errorf("%s: %s <-> %s: unknown verdict %q", e.Scenario, r.SiteA, r.SiteB, r.Verdict)
			}
			for _, in := range r.Instances {
				if len(in.Fingerprint) != 64 {
					return fmt.Errorf("%s: %s <-> %s: fingerprint %q is not a hex sha256",
						e.Scenario, r.SiteA, r.SiteB, in.Fingerprint)
				}
				if in.OrigOrder == "" || in.AltOrder == "" {
					return fmt.Errorf("%s: %s <-> %s: instance lacks per-order outcomes",
						e.Scenario, r.SiteA, r.SiteB)
				}
			}
		}
	}
	return nil
}

// Marshal renders the file as indented JSON (deterministic: field
// order is fixed by the struct tags, slices keep input order).
func (f *File) Marshal() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("audit: refusing to serialize invalid file: %w", err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile validates and writes the file as indented JSON.
func (f *File) WriteFile(path string) error {
	data, err := f.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads and validates an audit file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("audit: %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("audit: %s: %w", path, err)
	}
	return &f, nil
}
