package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVC(r *rand.Rand) VC {
	v := New(1 + r.Intn(5))
	for i := range v {
		v[i] = uint64(r.Intn(8))
	}
	return v
}

func TestBasics(t *testing.T) {
	v := New(3)
	v = v.Tick(0).Tick(0).Tick(2)
	if v.At(0) != 2 || v.At(1) != 0 || v.At(2) != 1 {
		t.Fatalf("v = %v", v)
	}
	if v.At(99) != 0 {
		t.Error("out-of-range component should read 0")
	}
	v = v.Tick(5)
	if len(v) != 6 || v.At(5) != 1 {
		t.Errorf("grow on tick failed: %v", v)
	}
}

func TestHappensBeforeAndConcurrent(t *testing.T) {
	a := VC{1, 0}
	b := VC{2, 1}
	c := VC{0, 2}
	if !a.HappensBefore(b) || b.HappensBefore(a) {
		t.Error("a < b expected")
	}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Error("a || c expected")
	}
	if a.Concurrent(a.Clone()) {
		t.Error("clock not concurrent with itself")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone should be equal")
	}
	// Different lengths, same meaning.
	if !(VC{1, 0}).Equal(VC{1}) {
		t.Error("trailing zeros should not matter")
	}
}

func TestJoinIsLUB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		j := a.Clone().Join(b)
		// Upper bound.
		if !a.LessEq(j) || !b.LessEq(j) {
			return false
		}
		// Least: any other upper bound dominates j.
		u := a.Clone().Join(b).Tick(0)
		return j.LessEq(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJoinLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		// Commutative.
		if !a.Clone().Join(b).Equal(b.Clone().Join(a)) {
			return false
		}
		// Associative.
		left := a.Clone().Join(b).Join(c)
		right := a.Clone().Join(b.Clone().Join(c))
		if !left.Equal(right) {
			return false
		}
		// Idempotent.
		return a.Clone().Join(a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOrderIsPartial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		// Antisymmetry: a ≤ b and b ≤ a implies equal.
		if a.LessEq(b) && b.LessEq(a) && !a.Equal(b) {
			return false
		}
		// Exactly one of: a<b, b<a, a||b, a==b.
		states := 0
		if a.HappensBefore(b) {
			states++
		}
		if b.HappensBefore(a) {
			states++
		}
		if a.Concurrent(b) {
			states++
		}
		if a.Equal(b) {
			states++
		}
		return states == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTickPreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVC(r)
		tid := r.Intn(len(a))
		b := a.Clone().Tick(tid)
		return a.HappensBefore(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := (VC{3, 0, 1}).String(); got != "[3 0 1]" {
		t.Errorf("String = %q", got)
	}
}
