// Package vclock implements vector clocks over dense thread ids.
//
// The paper's detector orders sequencing regions by a single global
// Lamport timestamp; vector clocks are the classical alternative that
// tracks the full happens-before partial order. The hb package implements
// both and the ablation bench compares them (DESIGN.md, A1).
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock indexed by thread id. The zero value is usable and
// denotes "before everything".
type VC []uint64

// New returns a clock sized for n threads.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// At returns component tid (0 when tid is beyond v's length).
func (v VC) At(tid int) uint64 {
	if tid < len(v) {
		return v[tid]
	}
	return 0
}

// grow extends v in place to hold tid, returning the (possibly new) slice.
func (v VC) grow(tid int) VC {
	if tid < len(v) {
		return v
	}
	c := make(VC, tid+1)
	copy(c, v)
	return c
}

// Tick increments component tid and returns the updated clock.
func (v VC) Tick(tid int) VC {
	v = v.grow(tid)
	v[tid]++
	return v
}

// Join merges o into v (component-wise max) and returns the result.
func (v VC) Join(o VC) VC {
	v = v.grow(len(o) - 1)
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
	return v
}

// LessEq reports v ≤ o component-wise.
func (v VC) LessEq(o VC) bool {
	for i, x := range v {
		if x > o.At(i) {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality (missing components are zero).
func (v VC) Equal(o VC) bool { return v.LessEq(o) && o.LessEq(v) }

// HappensBefore reports v < o: v ≤ o and v ≠ o.
func (v VC) HappensBefore(o VC) bool { return v.LessEq(o) && !o.LessEq(v) }

// Concurrent reports that neither clock happens before the other.
func (v VC) Concurrent(o VC) bool { return !v.LessEq(o) && !o.LessEq(v) }

// String renders the clock compactly, e.g. "[3 0 1]".
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
