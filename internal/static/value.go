package static

import (
	"fmt"

	"repro/internal/isa"
)

// addrKind discriminates the identity of an abstract memory cell.
type addrKind uint8

const (
	akNone     addrKind = iota // unresolved / not a memory cell
	akConcrete                 // absolute word address (data segment)
	akDeref                    // *mem[base] + off: one level of indirection
	akHeap                     // offset into the block allocated at pc base
)

// addrKey names an abstract memory cell. Two accesses may alias exactly
// when their keys are equal: Concrete cells by address, Deref cells by
// (root cell, offset) — the analyzer assumes a root cell holds one pointer
// value, which matches the escape idiom (alloc once, publish via a global).
// Deeper indirection chains collapse to akNone and are skipped (counted in
// Stats.SkippedUnknown); docs/STATIC.md lists this as a soundness caveat.
type addrKey struct {
	kind addrKind
	base uint64 // akConcrete: address; akDeref: root cell address; akHeap: alloc pc
	off  int64  // akDeref/akHeap: word offset from the pointer
}

func (k addrKey) resolved() bool { return k.kind == akConcrete || k.kind == akDeref }

// render gives the human-readable form of a key, symbolic when the
// program still carries its data-symbol table (programs decoded from a
// replay log do not, and fall back to hex).
func (k addrKey) render(p *isa.Program) string {
	name := func(addr uint64) string {
		if s := p.NameOfData(addr); s != "" {
			return s
		}
		return fmt.Sprintf("0x%x", addr)
	}
	switch k.kind {
	case akConcrete:
		return name(k.base)
	case akDeref:
		if k.off == 0 {
			return "*" + name(k.base)
		}
		return fmt.Sprintf("*%s+%d", name(k.base), k.off)
	case akHeap:
		return fmt.Sprintf("heap@pc%d+%d", k.base, k.off)
	}
	return "?"
}

// vKind discriminates the abstract value lattice:
//
//	        vTop
//	   /  |   |   \
//	vConst vLoaded vHeap vStack
//	   \  |   |   /
//	        vBot
//
// Each register climbs the lattice at most twice (bot -> point -> top),
// so the dataflow fixpoint terminates without widening.
type vKind uint8

const (
	vBot    vKind = iota // unreached
	vConst               // the constant c
	vLoaded              // mem[key] + c, for the key's value at load time
	vHeap                // pointer c words into the block allocated at pc site
	vStack               // pointer into the thread's own stack
	vTop                 // anything
)

// value is one abstract register value.
type value struct {
	kind vKind
	c    int64   // vConst: the constant; vLoaded/vHeap: word delta
	key  addrKey // vLoaded: source cell
	site int     // vHeap: pc of the sys alloc
}

var (
	top  = value{kind: vTop}
	bot  = value{kind: vBot}
	zero = value{kind: vConst, c: 0}
)

func con(c int64) value { return value{kind: vConst, c: c} }

// join is the least upper bound of two abstract values.
func join(a, b value) value {
	if a.kind == vBot {
		return b
	}
	if b.kind == vBot {
		return a
	}
	if a == b {
		return a
	}
	return top
}

// addConst folds "v + d", preserving pointer-shaped values.
func addConst(v value, d int64) value {
	switch v.kind {
	case vConst:
		return con(v.c + d)
	case vLoaded:
		return value{kind: vLoaded, c: v.c + d, key: v.key}
	case vHeap:
		return value{kind: vHeap, c: v.c + d, site: v.site}
	case vStack:
		return value{kind: vStack}
	}
	return top
}

// binop evaluates a three-register ALU op abstractly. Only constant
// folding and pointer+offset shapes are tracked; everything else is top.
func binop(op isa.Op, a, b value) value {
	if op == isa.OpAdd {
		if a.kind == vConst {
			return addConst(b, a.c)
		}
		if b.kind == vConst {
			return addConst(a, b.c)
		}
		return top
	}
	if op == isa.OpSub && b.kind == vConst {
		return addConst(a, -b.c)
	}
	if a.kind != vConst || b.kind != vConst {
		return top
	}
	x, y := a.c, b.c
	switch op {
	case isa.OpSub:
		return con(x - y)
	case isa.OpMul:
		return con(x * y)
	case isa.OpDiv:
		if y == 0 {
			return top // faults at runtime; value never observed
		}
		return con(x / y)
	case isa.OpMod:
		if y == 0 {
			return top
		}
		return con(x % y)
	case isa.OpAnd:
		return con(x & y)
	case isa.OpOr:
		return con(x | y)
	case isa.OpXor:
		return con(x ^ y)
	case isa.OpShl:
		return con(int64(uint64(x) << (uint64(y) & 63)))
	case isa.OpShr:
		return con(int64(uint64(x) >> (uint64(y) & 63)))
	}
	return top
}

// immop evaluates an immediate ALU op abstractly.
func immop(op isa.Op, a value, imm int64) value {
	switch op {
	case isa.OpAddi:
		return addConst(a, imm)
	case isa.OpMuli, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri:
		if a.kind != vConst {
			return top
		}
		x := a.c
		switch op {
		case isa.OpMuli:
			return con(x * imm)
		case isa.OpAndi:
			return con(x & imm)
		case isa.OpOri:
			return con(x | imm)
		case isa.OpXori:
			return con(x ^ imm)
		case isa.OpShli:
			return con(int64(uint64(x) << (uint64(imm) & 63)))
		case isa.OpShri:
			return con(int64(uint64(x) >> (uint64(imm) & 63)))
		}
	}
	return top
}

// resolveAddr turns "base register + imm" into an abstract cell key.
// The boolean distinguishes "statically private, skip quietly" (stack,
// unescaped heap handled later, guard page) from "unknown, count it".
func resolveAddr(base value, imm int64) (key addrKey, private bool) {
	switch base.kind {
	case vConst:
		addr := uint64(base.c + imm)
		if addr < isa.NullGuardTop {
			return addrKey{}, true // faults at runtime; never a shared access
		}
		if addr >= isa.StackBase {
			return addrKey{}, true // some thread's stack: private by construction
		}
		return addrKey{kind: akConcrete, base: addr}, false
	case vLoaded:
		if base.key.kind == akConcrete {
			return addrKey{kind: akDeref, base: base.key.base, off: base.c + imm}, false
		}
		return addrKey{}, false // deeper indirection: unknown
	case vHeap:
		return addrKey{kind: akHeap, base: uint64(base.site), off: base.c + imm}, false
	case vStack:
		return addrKey{}, true
	}
	return addrKey{}, false
}
