package static_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/static"
)

// The two shipped walk-through programs (examples/refcount and
// examples/statscounter), inlined: examples are package main, so the
// golden contract lives here. If an example's source drifts, update the
// copy and the pinned counts together.

// refcountSrc is the paper's Figure 2 reference-counting bug
// (examples/refcount).
const refcountSrc = `
.entry main
.word foo 0

worker:
  ldi r2, foo
  ld r4, [r2+0]       ; r4 = the shared object
rc_load:
  ld r5, [r4+0]       ; load refCnt
  addi r5, r5, -1
rc_store:
  st [r4+0], r5       ; store refCnt-1  (not atomic with the load!)
rc_check:
  ld r6, [r4+0]       ; re-read, as in Figure 2
  bne r6, r0, done
  mov r1, r4
  sys free            ; free(foo) when the count hits zero
done:
  ldi r1, 0
  sys exit

main:
  ldi r1, 1
  sys alloc           ; the object: one word holding the refcount
  mov r4, r1
  ldi r3, 2
  st [r4+0], r3       ; refCnt = 2 (one reference per thread)
  ldi r2, foo
  st [r2+0], r4
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

// statscounterSrc is the intentional approximate hit counter
// (examples/statscounter).
const statscounterSrc = `
.entry main
.word hits 0

; Two request handlers bump a hit counter without a lock: cheaper than
; synchronizing, and "about right" is good enough for a dashboard.
handler:
  ldi r5, 10
  mov r6, r1
hloop:
  ldi r2, hits
  ld r3, [r2+0]
  addi r3, r3, 1
hit_store:
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, hloop
  ldi r1, 0
  sys exit

main:
  ldi r1, handler
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, handler
  ldi r2, 1
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

// crossOverSeeds runs the dynamic pipeline on src under every seed,
// merges the evidence, and cross-validates the static report against it.
func crossOverSeeds(t *testing.T, name, src string, seeds []int64) *static.CrossResult {
	t.Helper()
	prog, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	var results []*core.Result
	for _, seed := range seeds {
		res, err := core.Analyze(prog, machine.Config{Seed: seed}, classify.Options{})
		if err != nil {
			t.Fatalf("%s seed %d: %v", name, seed, err)
		}
		results = append(results, res)
	}
	return static.CrossValidate(static.Analyze(prog), core.CollectEvidence(results))
}

// TestGoldenNoStaticFalseNegatives is the zero-FN contract on the shipped
// examples: every dynamic happens-before race has a static candidate
// (Missed empty), and the false-positive budget is pinned so a soundness
// regression (a lost race) and a precision regression (a flood of bogus
// candidates) both fail loudly.
func TestGoldenNoStaticFalseNegatives(t *testing.T) {
	cases := []struct {
		name       string
		src        string
		seeds      []int64
		candidates int // pinned: total static candidates
		matched    int // pinned: candidates confirmed by a dynamic race
		falsePos   int // pinned: refuted + unmatched (the FP budget)
	}{
		{"refcount", refcountSrc, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 3, 3, 0},
		{"statscounter", statscounterSrc, []int64{3, 4}, 2, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cross := crossOverSeeds(t, tc.name, tc.src, tc.seeds)
			for _, m := range cross.Missed {
				t.Errorf("dynamic race with no static candidate (FN): %s [%s]", m.Sites, m.Verdict)
			}
			falsePos := cross.Refuted + cross.Unmatched
			t.Logf("%s: candidates=%d matched=%d refuted=%d unmatched=%d missed=%d",
				tc.name, len(cross.Candidates), cross.Matched, cross.Refuted, cross.Unmatched, len(cross.Missed))
			if tc.candidates >= 0 && len(cross.Candidates) != tc.candidates {
				t.Errorf("candidates = %d, want %d", len(cross.Candidates), tc.candidates)
			}
			if tc.matched >= 0 && cross.Matched != tc.matched {
				t.Errorf("matched = %d, want %d", cross.Matched, tc.matched)
			}
			if tc.falsePos >= 0 && falsePos != tc.falsePos {
				t.Errorf("false positives = %d, want %d", falsePos, tc.falsePos)
			}
		})
	}
}
