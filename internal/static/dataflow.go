package static

import (
	"sort"

	"repro/internal/isa"
)

// state is the abstract machine state at a program point: one abstract
// value per register plus the must-hold lockset. The lockset is the set
// of lock cells held on *every* path reaching the point, so merges
// intersect (classic Eraser-style must analysis).
type state struct {
	live  bool
	regs  [isa.NumRegs]value
	locks map[addrKey]bool
}

func newState() *state {
	s := &state{live: true, locks: map[addrKey]bool{}}
	for i := range s.regs {
		s.regs[i] = zero
	}
	s.regs[isa.SP] = value{kind: vStack}
	return s
}

func (s *state) clone() *state {
	c := *s
	c.locks = make(map[addrKey]bool, len(s.locks))
	for k := range s.locks {
		c.locks[k] = true
	}
	return &c
}

// set writes a register, keeping r0 hardwired to zero.
func (s *state) set(r uint8, v value) {
	if r != isa.Zero {
		s.regs[r] = v
	}
}

// mergeInto joins src into dst (register join, lockset intersection) and
// reports whether dst changed — the worklist's fixpoint test.
func mergeInto(dst, src *state) bool {
	if !dst.live {
		*dst = *src.clone()
		return true
	}
	changed := false
	for i := range dst.regs {
		j := join(dst.regs[i], src.regs[i])
		if j != dst.regs[i] {
			dst.regs[i] = j
			changed = true
		}
	}
	for k := range dst.locks {
		if !src.locks[k] {
			delete(dst.locks, k)
			changed = true
		}
	}
	return changed
}

// havocRegs models the register state after returning from a call: the
// RVM has no callee-save convention, so everything except r0 and the
// (balanced) stack pointer is unknown. The lockset survives: callees are
// assumed lock-balanced (documented caveat in docs/STATIC.md).
func havocRegs(s *state) *state {
	h := s.clone()
	for i := range h.regs {
		h.regs[i] = top
	}
	h.regs[isa.Zero] = zero
	h.regs[isa.SP] = value{kind: vStack}
	return h
}

// visitor observes the collection pass: one callback per data access and
// one per spawn site. Nil callbacks are skipped.
type visitor struct {
	access func(pc int, st *state, key addrKey, private bool, kind accKind, op isa.Op, stored value)
	spawn  func(pc int, target, arg value)
}

// step executes one instruction abstractly, mutating st in place.
// Control transfer is handled by the caller at block edges; step only
// models the data effect.
func (a *analysis) step(st *state, pc int, v *visitor) {
	ins := a.prog.Code[pc]
	switch ins.Op {
	case isa.OpLdi:
		st.set(ins.Rd, con(ins.Imm))
	case isa.OpMov:
		st.set(ins.Rd, st.regs[ins.Rs1])
	case isa.OpNot:
		if x := st.regs[ins.Rs1]; x.kind == vConst {
			st.set(ins.Rd, con(^x.c))
		} else {
			st.set(ins.Rd, top)
		}
	case isa.OpNeg:
		if x := st.regs[ins.Rs1]; x.kind == vConst {
			st.set(ins.Rd, con(-x.c))
		} else {
			st.set(ins.Rd, top)
		}
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr:
		st.set(ins.Rd, binop(ins.Op, st.regs[ins.Rs1], st.regs[ins.Rs2]))
	case isa.OpAddi, isa.OpMuli, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri:
		st.set(ins.Rd, immop(ins.Op, st.regs[ins.Rs1], ins.Imm))

	case isa.OpLd:
		key, private := resolveAddr(st.regs[ins.Rs1], ins.Imm)
		if v != nil && v.access != nil {
			v.access(pc, st, key, private, accRead, ins.Op, bot)
		}
		if key.resolved() {
			st.set(ins.Rd, value{kind: vLoaded, key: key})
		} else {
			st.set(ins.Rd, top)
		}
	case isa.OpSt:
		key, private := resolveAddr(st.regs[ins.Rs1], ins.Imm)
		if v != nil && v.access != nil {
			v.access(pc, st, key, private, accWrite, ins.Op, st.regs[ins.Rs2])
		}
	case isa.OpOrm, isa.OpAndm, isa.OpXorm, isa.OpAddm:
		key, private := resolveAddr(st.regs[ins.Rs1], ins.Imm)
		if v != nil && v.access != nil {
			v.access(pc, st, key, private, accRMW, ins.Op, st.regs[ins.Rs2])
		}

	case isa.OpCas, isa.OpXadd, isa.OpXchg:
		// Lock-prefixed: synchronization, not a race candidate. The old
		// value lands in rd.
		st.set(ins.Rd, top)
	case isa.OpLock:
		if key, _ := resolveAddr(st.regs[ins.Rs1], ins.Imm); key.resolved() {
			st.locks[key] = true
		}
		// An unresolvable lock adds nothing: must-hold stays an
		// underapproximation, which can only add candidates, never hide
		// one.
	case isa.OpUnlock:
		if key, _ := resolveAddr(st.regs[ins.Rs1], ins.Imm); key.resolved() {
			delete(st.locks, key)
		} else {
			// Unknown release: any lock might be gone.
			for k := range st.locks {
				delete(st.locks, k)
			}
		}

	case isa.OpSys:
		switch ins.Imm {
		case isa.SysAlloc:
			st.set(1, value{kind: vHeap, site: pc})
		case isa.SysSpawn:
			if v != nil && v.spawn != nil {
				v.spawn(pc, st.regs[1], st.regs[2])
			}
			st.set(1, top)
		default:
			st.set(1, top)
		}
	}
	// Branches, call, ret, jmpr, fence, nop, halt: no register effect
	// modeled here (call's register havoc is applied on the return edge).
}

// analysis carries the shared pieces of one Analyze run.
type analysis struct {
	prog *isa.Program
	cfg  *cfg
}

// runEntry computes the block in-state fixpoint for one thread entry and
// then replays each live block once through the visitor. The returned
// map holds the in-state per reached block id.
func (a *analysis) runEntry(entryPC int, init *state, v *visitor) map[int]*state {
	in := map[int]*state{}
	if entryPC < 0 || entryPC >= len(a.prog.Code) || len(a.cfg.blocks) == 0 {
		return in
	}
	start := a.cfg.blockOf[entryPC]
	in[start] = init.clone()
	work := []int{start}
	inWork := map[int]bool{start: true}
	for len(work) > 0 {
		bid := work[0]
		work = work[1:]
		inWork[bid] = false
		b := a.cfg.blocks[bid]
		st := in[bid].clone()
		for pc := b.start; pc < b.end; pc++ {
			a.step(st, pc, nil)
		}
		push := func(succ int, out *state) {
			dst := in[succ]
			if dst == nil {
				dst = &state{}
				in[succ] = dst
			}
			if mergeInto(dst, out) && !inWork[succ] {
				inWork[succ] = true
				work = append(work, succ)
			}
		}
		last := b.end - 1
		lastIns := a.prog.Code[last]
		if lastIns.Op == isa.OpCall {
			// Callee edge carries the caller state (argument registers
			// flow in); the return edge havocs registers.
			if t := lastIns.Imm; t >= 0 && t < int64(len(a.prog.Code)) {
				push(a.cfg.blockOf[t], st)
			}
			if last+1 < len(a.prog.Code) {
				push(a.cfg.blockOf[last+1], havocRegs(st))
			}
			continue
		}
		for _, succ := range b.succs {
			push(succ, st)
		}
	}

	if v != nil {
		bids := make([]int, 0, len(in))
		for bid := range in {
			bids = append(bids, bid)
		}
		sort.Ints(bids)
		for _, bid := range bids {
			if !in[bid].live {
				continue
			}
			st := in[bid].clone()
			b := a.cfg.blocks[bid]
			for pc := b.start; pc < b.end; pc++ {
				a.step(st, pc, v)
			}
		}
	}
	return in
}
