package static

import (
	"sort"

	"repro/internal/isa"
)

// accKind classifies a data access.
type accKind uint8

const (
	accRead accKind = iota
	accWrite
	accRMW // non-atomic read-modify-write (orm/andm/xorm/addm)
)

func (k accKind) writes() bool { return k != accRead }

func (k accKind) String() string {
	switch k {
	case accRead:
		return "read"
	case accWrite:
		return "write"
	}
	return "rmw"
}

// access is one statically discovered data access under one thread entry.
// The same pc yields one record per entry that reaches it (a helper
// called from two entries is two records).
type access struct {
	pc          int
	entryPC     int
	entryLabel  string
	kind        accKind
	op          isa.Op
	key         addrKey
	locks       []addrKey // sorted must-hold lockset at the access
	stored      value     // accWrite: abstract stored value
	feedsBranch bool      // accRead: loaded register feeds a cond branch
	inCycle     bool      // access sits in a CFG cycle
}

// entryInfo is one discovered thread entry: the root (thread 0) plus every
// pc the spawn-site constant propagation resolves.
type entryInfo struct {
	pc       int
	label    string
	isRoot   bool
	arg      value        // join of r2 across all spawn sites
	sites    map[int]bool // pcs of the sys spawn instructions targeting it
	loopSite bool         // some spawn site sits in a cycle
}

// mult is the number of concurrent instances the entry may have: an entry
// spawned from k static sites runs k times, a looped spawn site unbounded
// times. Two or more instances allow an access to race with itself.
func (e *entryInfo) mult() int {
	m := len(e.sites)
	if e.isRoot {
		m++
	}
	if e.loopSite {
		m = 2 + len(e.sites)
	}
	return m
}

// spawnRec is one spawn observation from the collection pass.
type spawnRec struct {
	pc          int
	byEntry     int
	target, arg value
}

// collect runs the whole-program analysis: entry discovery to fixpoint,
// then per-entry access collection, heap-escape resolution, and the
// spawn/join ordering filter for root accesses. It fills in the report's
// Entries and Stats and returns the shared-access candidate pool.
func collect(p *isa.Program, rep *Report) ([]access, func(int) int) {
	entries := map[int]*entryInfo{
		p.Entry: {pc: p.Entry, label: entryLabel(p, p.Entry), isRoot: true, arg: bot, sites: map[int]bool{}},
	}

	var (
		c        *cfg
		accesses []access
		spawns   []spawnRec
		unkAddr  int
		privAddr int
	)

	// Outer fixpoint: each round rebuilds the CFG with every known entry
	// as a block leader, re-analyzes every entry, and folds newly
	// resolved spawn sites back in. Entry pcs, site sets, and argument
	// values all climb finite lattices, so this converges; the iteration
	// cap is a belt-and-braces bound for fuzzed inputs.
	for round := 0; round < len(p.Code)+2; round++ {
		entryPCs := make([]int, 0, len(entries))
		for pc := range entries {
			entryPCs = append(entryPCs, pc)
		}
		sort.Ints(entryPCs)
		c = buildCFG(p, entryPCs)

		accesses = accesses[:0]
		spawns = spawns[:0]
		unkAddr, privAddr = 0, 0
		a := &analysis{prog: p, cfg: c}
		for _, epc := range entryPCs {
			e := entries[epc]
			init := newState()
			if !e.isRoot {
				arg := e.arg
				if arg.kind == vBot {
					arg = top
				}
				init.set(1, arg)
			}
			v := &visitor{
				access: func(pc int, st *state, key addrKey, private bool, kind accKind, op isa.Op, stored value) {
					if private {
						privAddr++
						return
					}
					if key.kind == akNone {
						unkAddr++
						return
					}
					acc := access{
						pc:         pc,
						entryPC:    e.pc,
						entryLabel: e.label,
						kind:       kind,
						op:         op,
						key:        key,
						locks:      sortedLocks(st.locks),
						stored:     stored,
						inCycle:    c.blocks[c.blockOf[pc]].inCycle,
					}
					if kind == accRead {
						acc.feedsBranch = loadFeedsBranch(p, c, pc)
					}
					accesses = append(accesses, acc)
				},
				spawn: func(pc int, target, arg value) {
					spawns = append(spawns, spawnRec{pc: pc, byEntry: e.pc, target: target, arg: arg})
				},
			}
			a.runEntry(e.pc, init, v)
		}

		changed := false
		for _, s := range spawns {
			if s.target.kind != vConst || s.target.c < 0 || s.target.c >= int64(len(p.Code)) {
				continue
			}
			tpc := int(s.target.c)
			e := entries[tpc]
			if e == nil {
				e = &entryInfo{pc: tpc, label: entryLabel(p, tpc), arg: bot, sites: map[int]bool{}}
				entries[tpc] = e
				changed = true
			}
			if !e.sites[s.pc] {
				e.sites[s.pc] = true
				changed = true
			}
			if arg := join(e.arg, s.arg); arg != e.arg {
				e.arg = arg
				changed = true
			}
			if c.blocks[c.blockOf[s.pc]].inCycle && !e.loopSite {
				e.loopSite = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	rep.Stats.Instrs = len(p.Code)
	rep.Stats.Blocks = len(c.blocks)
	rep.Stats.SkippedUnknown = unkAddr
	rep.Stats.SkippedPrivate = privAddr
	for _, b := range c.blocks {
		if op := p.Code[b.end-1].Op; op == isa.OpJmpr {
			rep.Stats.UnresolvedJumps++
		}
	}
	for _, s := range spawns {
		if s.target.kind != vConst || s.target.c < 0 || s.target.c >= int64(len(p.Code)) {
			rep.Stats.UnresolvedSpawns++
		}
	}

	entryPCs := make([]int, 0, len(entries))
	for pc := range entries {
		entryPCs = append(entryPCs, pc)
	}
	sort.Ints(entryPCs)
	for _, pc := range entryPCs {
		e := entries[pc]
		rep.Entries = append(rep.Entries, Entry{
			Label: e.label, PC: e.pc, Root: e.isRoot,
			SpawnSites: len(e.sites), Looped: e.loopSite,
		})
	}

	accesses = resolveHeapEscapes(accesses, &rep.Stats)
	accesses = filterOrdered(p, entries, spawns, accesses, &rep.Stats)
	rep.Stats.Accesses = len(accesses)
	multOf := func(entryPC int) int {
		if e := entries[entryPC]; e != nil {
			return e.mult()
		}
		return 1
	}
	return accesses, multOf
}

// entryLabel names an entry pc by its (smallest) symbol, falling back to
// the raw pc for decoded or synthetic programs.
func entryLabel(p *isa.Program, pc int) string {
	best := ""
	for name, at := range p.Symbols {
		if at == pc && (best == "" || name < best) {
			best = name
		}
	}
	if best != "" {
		return best
	}
	return p.SiteOf(pc)
}

func sortedLocks(locks map[addrKey]bool) []addrKey {
	out := make([]addrKey, 0, len(locks))
	for k := range locks {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.base != b.base {
			return a.base < b.base
		}
		return a.off < b.off
	})
	return out
}

// loadFeedsBranch reports whether the value loaded at pc directly feeds a
// conditional branch in the same basic block (the flag-check shape of
// user-constructed synchronization and double-checks) before the register
// is overwritten.
func loadFeedsBranch(p *isa.Program, c *cfg, pc int) bool {
	rd := p.Code[pc].Rd
	if rd == isa.Zero {
		return false
	}
	b := c.blocks[c.blockOf[pc]]
	for i := pc + 1; i < b.end; i++ {
		ins := p.Code[i]
		if ins.Op.IsCondBranch() && (ins.Rs1 == rd || ins.Rs2 == rd) {
			return true
		}
		if writesReg(ins, rd) {
			return false
		}
	}
	return false
}

// writesReg reports whether ins overwrites register r.
func writesReg(ins isa.Instr, r uint8) bool {
	switch ins.Op {
	case isa.OpLdi, isa.OpMov, isa.OpNot, isa.OpNeg,
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpAddi, isa.OpMuli, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri,
		isa.OpLd, isa.OpCas, isa.OpXadd, isa.OpXchg:
		return ins.Rd == r
	case isa.OpSys:
		return r == 1
	}
	return false
}

// resolveHeapEscapes rewrites accesses through freshly allocated pointers
// (akHeap keys) into Deref keys when the pointer escapes to a concrete
// global cell: "alloc once, publish via a global" is how every shared
// heap object in the corpus is built. A heap pointer that never escapes
// is thread-private and its accesses are dropped.
func resolveHeapEscapes(accesses []access, stats *Stats) []access {
	// site -> set of concrete cells the base pointer was stored to.
	links := map[uint64]map[uint64]bool{}
	for _, a := range accesses {
		if a.kind != accRead && a.stored.kind == vHeap && a.stored.c == 0 && a.key.kind == akConcrete {
			set := links[uint64(a.stored.site)]
			if set == nil {
				set = map[uint64]bool{}
				links[uint64(a.stored.site)] = set
			}
			set[a.key.base] = true
		}
	}
	out := accesses[:0]
	for _, a := range accesses {
		if a.key.kind != akHeap {
			out = append(out, a)
			continue
		}
		set := links[a.key.base]
		if len(set) == 0 {
			stats.SkippedPrivate++
			continue
		}
		bases := make([]uint64, 0, len(set))
		for b := range set {
			bases = append(bases, b)
		}
		sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
		for _, base := range bases {
			dup := a
			dup.key = addrKey{kind: akDeref, base: base, off: a.key.off}
			out = append(out, dup)
		}
	}
	return out
}

// filterOrdered drops root-entry accesses that are ordered against every
// spawned thread by program structure: accesses no path reaches after a
// spawn (thread-creation edge), and accesses every path reaches only
// after as many joins as there are spawn sites (join edges). Both tests
// approximate in the keep-the-access direction, so the filter removes
// false positives without ever hiding a candidate.
func filterOrdered(p *isa.Program, entries map[int]*entryInfo, spawns []spawnRec, accesses []access, stats *Stats) []access {
	root := entries[p.Entry]
	if root == nil || len(root.sites) > 0 {
		// The root entry is itself spawned: all its accesses are
		// concurrent and nothing can be filtered.
		return accesses
	}
	var rootSpawnNext []int
	totalSites := 0
	joinFilter := true
	for _, s := range spawns {
		if s.target.kind != vConst {
			joinFilter = false // unknown thread population
			continue
		}
		totalSites++
		if s.byEntry == p.Entry {
			if _, succs := pcSuccs(p, s.pc); len(succs) > 0 {
				rootSpawnNext = append(rootSpawnNext, succs...)
			}
		}
	}
	for _, e := range entries {
		if e.loopSite {
			joinFilter = false // unbounded thread population
		}
	}
	postSpawn := reachablePCs(p, rootSpawnNext)
	minJoins := minJoinsFrom(p, p.Entry)

	out := accesses[:0]
	for _, a := range accesses {
		if a.entryPC == p.Entry {
			ordered := !postSpawn[a.pc] ||
				(joinFilter && totalSites > 0 && minJoins[a.pc] >= totalSites)
			if ordered {
				stats.FilteredOrdered++
				continue
			}
		}
		out = append(out, a)
	}
	return out
}

// pair enumerates candidate pairs over the shared-access pool: distinct
// entries (or one multi-instance entry), equal abstract cells, at least
// one write, and disjoint must-hold locksets.
func pair(p *isa.Program, accesses []access, multOf func(int) int) []Candidate {
	seen := map[[2]string]bool{}
	var out []Candidate
	for i := 0; i < len(accesses); i++ {
		for j := i; j < len(accesses); j++ {
			a, b := accesses[i], accesses[j]
			if i == j {
				// A single access races with itself only when its entry
				// has concurrent instances and it writes.
				if multOf(a.entryPC) < 2 || !a.kind.writes() {
					continue
				}
			} else {
				if a.entryPC == b.entryPC && multOf(a.entryPC) < 2 {
					continue // same single-instance thread: sequential
				}
				if !a.kind.writes() && !b.kind.writes() {
					continue
				}
				if a.key != b.key {
					continue
				}
			}
			if locksIntersect(a.locks, b.locks) {
				continue
			}
			sa, sb := p.SiteOf(a.pc), p.SiteOf(b.pc)
			if sb < sa {
				sa, sb = sb, sa
				a, b = b, a
			}
			if seen[[2]string{sa, sb}] {
				continue
			}
			seen[[2]string{sa, sb}] = true
			out = append(out, Candidate{
				SiteA: sa, SiteB: sb,
				EntryA: a.entryLabel, EntryB: b.entryLabel,
				KindA: a.kind.String(), KindB: b.kind.String(),
				Addr:   a.key.render(p),
				LocksA: renderLocks(p, a.locks),
				LocksB: renderLocks(p, b.locks),
				Hint:   hintFor(a, b),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SiteA != out[j].SiteA {
			return out[i].SiteA < out[j].SiteA
		}
		return out[i].SiteB < out[j].SiteB
	})
	return out
}

func locksIntersect(a, b []addrKey) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func renderLocks(p *isa.Program, locks []addrKey) []string {
	out := make([]string, len(locks))
	for i, k := range locks {
		out[i] = k.render(p)
	}
	return out
}

// hintFor tags a candidate with the benign idiom it resembles, mirroring
// the categories of the paper's Table 2. A hint is a triage aid, not a
// verdict: the dynamic classifier stays the source of truth.
func hintFor(a, b access) Hint {
	statsShaped := func(x access) bool {
		if x.op == isa.OpAddm {
			return true
		}
		return x.kind == accWrite && x.stored.kind == vLoaded &&
			x.stored.key == x.key && x.stored.c != 0
	}
	bitShaped := func(x access) bool {
		return x.op == isa.OpOrm || x.op == isa.OpAndm || x.op == isa.OpXorm
	}
	syncRead := func(x access) bool { return x.kind == accRead && x.feedsBranch && x.inCycle }
	checkRead := func(x access) bool { return x.kind == accRead && x.feedsBranch }
	switch {
	case statsShaped(a) || statsShaped(b):
		return HintStatsCounter
	case a.kind == accWrite && b.kind == accWrite &&
		a.stored.kind == vConst && b.stored.kind == vConst && a.stored.c == b.stored.c:
		return HintRedundantWrite
	case bitShaped(a) && bitShaped(b):
		return HintDisjointBits
	case syncRead(a) || syncRead(b):
		return HintUserSync
	case checkRead(a) || checkRead(b):
		return HintDoubleCheck
	}
	return HintNone
}
