package static

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/progen"
)

// FuzzAnalyze steers the static analyzer over arbitrary well-formed
// program shapes. The contract under test is totality: Analyze must
// never panic and must terminate on every input (the entry-discovery
// fixpoint and the per-entry worklists are all explicitly bounded), and
// it must be deterministic — the same program analyzed twice yields the
// same report. The shape encoding is shared with progen.FuzzPipeline so
// a crasher found against the dynamic pipeline replays here directly.
func FuzzAnalyze(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(42), uint8(255))
	f.Add(int64(-3), uint8(0b10101))
	f.Add(int64(7), uint8(1<<5))
	f.Add(int64(99), uint8(1<<6|1<<7))
	f.Fuzz(func(t *testing.T, genSeed int64, cfgBits uint8) {
		r := rand.New(rand.NewSource(genSeed))
		cfg := progen.BitsConfig(cfgBits, r)
		src := progen.Generate(r, cfg)
		prog, err := asm.Assemble("fz", src)
		if err != nil {
			t.Fatalf("generated program failed to assemble: %v", err)
		}
		rep := Analyze(prog)
		if rep == nil {
			t.Fatal("Analyze returned nil report")
		}
		if rep.Stats.Instrs != len(prog.Code) {
			t.Fatalf("Stats.Instrs = %d, want %d", rep.Stats.Instrs, len(prog.Code))
		}
		for i := 1; i < len(rep.Candidates); i++ {
			a, b := rep.Candidates[i-1], rep.Candidates[i]
			if a.SiteA > b.SiteA || (a.SiteA == b.SiteA && a.SiteB > b.SiteB) {
				t.Fatalf("candidates not sorted: %q/%q before %q/%q",
					a.SiteA, a.SiteB, b.SiteA, b.SiteB)
			}
		}
		again := Analyze(prog)
		if !reflect.DeepEqual(rep, again) {
			t.Fatal("Analyze is not deterministic on the same program")
		}
	})
}
