// Package static is the static half of the race pipeline: an
// ahead-of-execution analyzer for RVM programs that mirrors what the
// dynamic happens-before detector finds at runtime.
//
// The paper (§2.2.2) positions replay classification against
// static-discipline checkers: lockset analysis is cheap but imprecise,
// happens-before plus replay is precise but only sees executed
// interleavings. This package supplies the static side of that
// comparison. It builds a per-thread-entry CFG over basic blocks, runs a
// constant-propagation dataflow that resolves memory operand addresses
// (the Ldi/Addi-chain idiom the assembler and progen emit), abstractly
// interprets lock/unlock to get a must-hold lockset per access, and
// reports access pairs that may alias, may run concurrently, and share
// no lock — each tagged with the benign idiom it resembles (Table 2).
// crossval.go then joins these candidates against dynamic evidence so a
// suite run can quantify static precision/recall exactly the way the
// paper's comparison benchmark does for lockset-vs-HB.
package static

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/isa"
	"repro/internal/obs"
)

// Hint labels the benign idiom a candidate resembles, mirroring the
// paper's Table 2 categories (docs/STATIC.md has the exact mapping).
type Hint string

const (
	HintNone           Hint = ""
	HintStatsCounter   Hint = "stats-counter"
	HintRedundantWrite Hint = "redundant-write"
	HintDisjointBits   Hint = "disjoint-bits"
	HintUserSync       Hint = "user-sync"
	HintDoubleCheck    Hint = "double-check"
)

// Candidate is one static race candidate: two sites that may touch the
// same cell concurrently with no common lock, at least one writing.
// Sites are ordered lexicographically (SiteA <= SiteB) so a candidate
// keys identically to the dynamic detector's SitePair.
type Candidate struct {
	SiteA, SiteB   string
	EntryA, EntryB string   // thread entries the two sides run under
	KindA, KindB   string   // read / write / rmw
	Addr           string   // rendered abstract cell
	LocksA, LocksB []string // must-hold locksets (disjoint by construction)
	Hint           Hint
}

// Entry is one discovered thread entry.
type Entry struct {
	Label      string
	PC         int
	Root       bool
	SpawnSites int
	Looped     bool // spawned from inside a loop: unbounded instances
}

// Stats counts what the analyzer saw and what it had to give up on.
type Stats struct {
	Instrs           int
	Blocks           int
	Accesses         int // shared-candidate accesses after all filters
	SkippedUnknown   int // operand address not statically resolvable
	SkippedPrivate   int // stack, guard page, or unescaped heap
	FilteredOrdered  int // root accesses ordered by spawn/join structure
	UnresolvedSpawns int // spawn sites whose target pc is unknown
	UnresolvedJumps  int // blocks ending in an indirect jmpr
}

// Report is the analyzer output for one program.
type Report struct {
	Prog       string
	Entries    []Entry
	Candidates []Candidate
	Stats      Stats
}

// Analyze statically analyzes prog. It never fails: unanalyzable
// constructs degrade into skip counters in Stats rather than errors, so
// the fuzz contract is simply "never panic, always terminate".
func Analyze(prog *isa.Program) *Report {
	return AnalyzeInstrumented(prog, nil)
}

// AnalyzeInstrumented is Analyze publishing static.* counters into reg
// under a "static" span. A nil reg is exactly Analyze.
func AnalyzeInstrumented(prog *isa.Program, reg *obs.Registry) *Report {
	sp := reg.StartSpan("static")
	defer sp.End()
	rep := &Report{Prog: prog.Name}
	if len(prog.Code) == 0 {
		publishMetrics(reg, rep)
		return rep
	}
	accesses, multOf := collect(prog, rep)
	rep.Candidates = pair(prog, accesses, multOf)
	publishMetrics(reg, rep)
	return rep
}

func publishMetrics(reg *obs.Registry, rep *Report) {
	if reg == nil {
		return
	}
	reg.Counter("static.programs").Inc()
	reg.Counter("static.entries").Add(uint64(len(rep.Entries)))
	reg.Counter("static.blocks").Add(uint64(rep.Stats.Blocks))
	reg.Counter("static.accesses").Add(uint64(rep.Stats.Accesses))
	reg.Counter("static.candidates").Add(uint64(len(rep.Candidates)))
	reg.Counter("static.skipped_unknown").Add(uint64(rep.Stats.SkippedUnknown))
	reg.Counter("static.skipped_private").Add(uint64(rep.Stats.SkippedPrivate))
	reg.Counter("static.filtered_ordered").Add(uint64(rep.Stats.FilteredOrdered))
	reg.Counter("static.unresolved_spawns").Add(uint64(rep.Stats.UnresolvedSpawns))
	reg.Counter("static.unresolved_jumps").Add(uint64(rep.Stats.UnresolvedJumps))
}

// Candidate looks up a candidate by its (ordered) site pair, or nil.
func (r *Report) Candidate(siteA, siteB string) *Candidate {
	if siteB < siteA {
		siteA, siteB = siteB, siteA
	}
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.SiteA == siteA && c.SiteB == siteB {
			return c
		}
	}
	return nil
}

// Format renders the report in the pipeline's plain-text style.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "static analysis: %s\n", r.Prog)
	fmt.Fprintf(w, "  %d instructions, %d blocks, %d thread entries\n",
		r.Stats.Instrs, r.Stats.Blocks, len(r.Entries))
	for _, e := range r.Entries {
		switch {
		case e.Root:
			fmt.Fprintf(w, "  entry %-16s pc %-4d (root)\n", e.Label, e.PC)
		case e.Looped:
			fmt.Fprintf(w, "  entry %-16s pc %-4d spawned from %d site(s), in a loop\n", e.Label, e.PC, e.SpawnSites)
		default:
			fmt.Fprintf(w, "  entry %-16s pc %-4d spawned from %d site(s)\n", e.Label, e.PC, e.SpawnSites)
		}
	}
	s := r.Stats
	fmt.Fprintf(w, "  accesses: %d shared-candidate (skipped: %d unknown addr, %d private; filtered: %d ordered)\n",
		s.Accesses, s.SkippedUnknown, s.SkippedPrivate, s.FilteredOrdered)
	if s.UnresolvedSpawns > 0 || s.UnresolvedJumps > 0 {
		fmt.Fprintf(w, "  unresolved: %d spawn target(s), %d indirect jump(s)\n",
			s.UnresolvedSpawns, s.UnresolvedJumps)
	}
	if len(r.Candidates) == 0 {
		fmt.Fprintf(w, "  no static race candidates\n")
		return
	}
	fmt.Fprintf(w, "  %d static race candidate(s):\n", len(r.Candidates))
	for i, c := range r.Candidates {
		fmt.Fprintf(w, "  [%d] %s <-> %s\n", i+1, c.SiteA, c.SiteB)
		fmt.Fprintf(w, "      cell %s  %s(%s) vs %s(%s)\n",
			c.Addr, c.KindA, c.EntryA, c.KindB, c.EntryB)
		fmt.Fprintf(w, "      locks {%s} vs {%s}\n",
			strings.Join(c.LocksA, ","), strings.Join(c.LocksB, ","))
		if c.Hint != HintNone {
			fmt.Fprintf(w, "      hint: %s\n", c.Hint)
		}
	}
}
