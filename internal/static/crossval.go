package static

import (
	"sort"

	"repro/internal/hb"
	"repro/internal/obs"
)

// DynamicEvidence is what the dynamic half of the pipeline observed for a
// program: which sites actually executed, and which site pairs the
// happens-before detector reported (with the replay classifier's verdict).
// core.CollectEvidence builds one from analyzed executions.
type DynamicEvidence struct {
	ObservedSites map[string]bool
	Races         map[hb.SitePair]string // site pair -> verdict string
	// Predicted is the prediction engine's race set (observed pairs plus
	// feasible reordered pairs), site pair -> verdict string. Nil when
	// the prediction stage did not run; cross-validation then reports
	// the observed engine only.
	Predicted map[hb.SitePair]string
}

// MatchState is the fate of one static candidate under cross-validation.
type MatchState string

const (
	// MatchMatched: the dynamic detector found a race at exactly this
	// site pair — a static true positive.
	MatchMatched MatchState = "matched"
	// MatchRefuted: both sites executed dynamically and no race was
	// observed — dynamic evidence against the candidate (a likely static
	// false positive, modulo unexplored interleavings).
	MatchRefuted MatchState = "refuted"
	// MatchUnmatched: at least one site never executed, so the dynamic
	// run says nothing about the candidate (a coverage gap, not a
	// refutation).
	MatchUnmatched MatchState = "unmatched"
)

// CheckedCandidate is a candidate plus its cross-validation outcome.
type CheckedCandidate struct {
	Candidate
	State   MatchState
	Verdict string // classifier verdict when matched
	// PredState is the candidate's fate against the prediction engine's
	// race set (empty when no predicted evidence was supplied). A
	// candidate the observed run refuted but prediction matched is the
	// interesting cell: a static positive dynamic testing would have
	// dismissed for scheduling reasons alone.
	PredState   MatchState
	PredVerdict string
}

// MissedRace is a dynamic race no static candidate covers — a static
// false negative, the failure mode the analyzer is designed against.
type MissedRace struct {
	Sites   hb.SitePair
	Verdict string
}

// CrossResult joins one program's static report against its dynamic
// evidence.
type CrossResult struct {
	Prog       string
	Candidates []CheckedCandidate
	Missed     []MissedRace
	Matched    int
	Refuted    int
	Unmatched  int

	// Predicted-engine tallies (populated only when DynamicEvidence
	// carried a Predicted map; HasPredicted distinguishes "engine ran
	// and agreed nowhere" from "engine never ran").
	HasPredicted  bool
	PredMatched   int
	PredRefuted   int
	PredUnmatched int
	PredMissed    []MissedRace
}

// Precision is matched / (matched + refuted): how often a dynamically
// testable candidate was a real race. Unmatched candidates are excluded —
// the dynamic run carries no evidence either way.
func (c *CrossResult) Precision() float64 {
	if c.Matched+c.Refuted == 0 {
		return 1
	}
	return float64(c.Matched) / float64(c.Matched+c.Refuted)
}

// Recall is matched / (matched + missed): the fraction of dynamic races
// the static pass predicted.
func (c *CrossResult) Recall() float64 {
	if c.Matched+len(c.Missed) == 0 {
		return 1
	}
	return float64(c.Matched) / float64(c.Matched+len(c.Missed))
}

// PredPrecision and PredRecall are Precision/Recall against the
// prediction engine's race set instead of the observed one.
func (c *CrossResult) PredPrecision() float64 {
	if c.PredMatched+c.PredRefuted == 0 {
		return 1
	}
	return float64(c.PredMatched) / float64(c.PredMatched+c.PredRefuted)
}

func (c *CrossResult) PredRecall() float64 {
	if c.PredMatched+len(c.PredMissed) == 0 {
		return 1
	}
	return float64(c.PredMatched) / float64(c.PredMatched+len(c.PredMissed))
}

// CrossValidate joins static candidates against dynamic evidence.
func CrossValidate(rep *Report, ev DynamicEvidence) *CrossResult {
	return CrossValidateInstrumented(rep, ev, nil)
}

// CrossValidateInstrumented is CrossValidate publishing static.matched /
// static.refuted / static.unmatched / static.missed counters into reg.
func CrossValidateInstrumented(rep *Report, ev DynamicEvidence, reg *obs.Registry) *CrossResult {
	out := &CrossResult{Prog: rep.Prog, HasPredicted: ev.Predicted != nil}
	covered := map[hb.SitePair]bool{}
	for _, c := range rep.Candidates {
		pair := hb.MakeSitePair(c.SiteA, c.SiteB)
		covered[pair] = true
		cc := CheckedCandidate{Candidate: c}
		if verdict, ok := ev.Races[pair]; ok {
			cc.State = MatchMatched
			cc.Verdict = verdict
			out.Matched++
		} else if ev.ObservedSites[c.SiteA] && ev.ObservedSites[c.SiteB] {
			cc.State = MatchRefuted
			out.Refuted++
		} else {
			cc.State = MatchUnmatched
			out.Unmatched++
		}
		if out.HasPredicted {
			if verdict, ok := ev.Predicted[pair]; ok {
				cc.PredState = MatchMatched
				cc.PredVerdict = verdict
				out.PredMatched++
			} else if ev.ObservedSites[c.SiteA] && ev.ObservedSites[c.SiteB] {
				cc.PredState = MatchRefuted
				out.PredRefuted++
			} else {
				cc.PredState = MatchUnmatched
				out.PredUnmatched++
			}
		}
		out.Candidates = append(out.Candidates, cc)
	}
	for pair, verdict := range ev.Races {
		if !covered[pair] {
			out.Missed = append(out.Missed, MissedRace{Sites: pair, Verdict: verdict})
		}
	}
	sortMissed(out.Missed)
	if out.HasPredicted {
		for pair, verdict := range ev.Predicted {
			if !covered[pair] {
				out.PredMissed = append(out.PredMissed, MissedRace{Sites: pair, Verdict: verdict})
			}
		}
		sortMissed(out.PredMissed)
	}
	if reg != nil {
		reg.Counter("static.matched").Add(uint64(out.Matched))
		reg.Counter("static.refuted").Add(uint64(out.Refuted))
		reg.Counter("static.unmatched").Add(uint64(out.Unmatched))
		reg.Counter("static.missed").Add(uint64(len(out.Missed)))
		if out.HasPredicted {
			reg.Counter("static.pred_matched").Add(uint64(out.PredMatched))
			reg.Counter("static.pred_refuted").Add(uint64(out.PredRefuted))
			reg.Counter("static.pred_unmatched").Add(uint64(out.PredUnmatched))
			reg.Counter("static.pred_missed").Add(uint64(len(out.PredMissed)))
		}
	}
	return out
}

func sortMissed(missed []MissedRace) {
	sort.Slice(missed, func(i, j int) bool {
		a, b := missed[i].Sites, missed[j].Sites
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}
