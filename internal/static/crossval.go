package static

import (
	"sort"

	"repro/internal/hb"
	"repro/internal/obs"
)

// DynamicEvidence is what the dynamic half of the pipeline observed for a
// program: which sites actually executed, and which site pairs the
// happens-before detector reported (with the replay classifier's verdict).
// core.CollectEvidence builds one from analyzed executions.
type DynamicEvidence struct {
	ObservedSites map[string]bool
	Races         map[hb.SitePair]string // site pair -> verdict string
}

// MatchState is the fate of one static candidate under cross-validation.
type MatchState string

const (
	// MatchMatched: the dynamic detector found a race at exactly this
	// site pair — a static true positive.
	MatchMatched MatchState = "matched"
	// MatchRefuted: both sites executed dynamically and no race was
	// observed — dynamic evidence against the candidate (a likely static
	// false positive, modulo unexplored interleavings).
	MatchRefuted MatchState = "refuted"
	// MatchUnmatched: at least one site never executed, so the dynamic
	// run says nothing about the candidate (a coverage gap, not a
	// refutation).
	MatchUnmatched MatchState = "unmatched"
)

// CheckedCandidate is a candidate plus its cross-validation outcome.
type CheckedCandidate struct {
	Candidate
	State   MatchState
	Verdict string // classifier verdict when matched
}

// MissedRace is a dynamic race no static candidate covers — a static
// false negative, the failure mode the analyzer is designed against.
type MissedRace struct {
	Sites   hb.SitePair
	Verdict string
}

// CrossResult joins one program's static report against its dynamic
// evidence.
type CrossResult struct {
	Prog       string
	Candidates []CheckedCandidate
	Missed     []MissedRace
	Matched    int
	Refuted    int
	Unmatched  int
}

// Precision is matched / (matched + refuted): how often a dynamically
// testable candidate was a real race. Unmatched candidates are excluded —
// the dynamic run carries no evidence either way.
func (c *CrossResult) Precision() float64 {
	if c.Matched+c.Refuted == 0 {
		return 1
	}
	return float64(c.Matched) / float64(c.Matched+c.Refuted)
}

// Recall is matched / (matched + missed): the fraction of dynamic races
// the static pass predicted.
func (c *CrossResult) Recall() float64 {
	if c.Matched+len(c.Missed) == 0 {
		return 1
	}
	return float64(c.Matched) / float64(c.Matched+len(c.Missed))
}

// CrossValidate joins static candidates against dynamic evidence.
func CrossValidate(rep *Report, ev DynamicEvidence) *CrossResult {
	return CrossValidateInstrumented(rep, ev, nil)
}

// CrossValidateInstrumented is CrossValidate publishing static.matched /
// static.refuted / static.unmatched / static.missed counters into reg.
func CrossValidateInstrumented(rep *Report, ev DynamicEvidence, reg *obs.Registry) *CrossResult {
	out := &CrossResult{Prog: rep.Prog}
	covered := map[hb.SitePair]bool{}
	for _, c := range rep.Candidates {
		pair := hb.MakeSitePair(c.SiteA, c.SiteB)
		covered[pair] = true
		cc := CheckedCandidate{Candidate: c}
		if verdict, ok := ev.Races[pair]; ok {
			cc.State = MatchMatched
			cc.Verdict = verdict
			out.Matched++
		} else if ev.ObservedSites[c.SiteA] && ev.ObservedSites[c.SiteB] {
			cc.State = MatchRefuted
			out.Refuted++
		} else {
			cc.State = MatchUnmatched
			out.Unmatched++
		}
		out.Candidates = append(out.Candidates, cc)
	}
	for pair, verdict := range ev.Races {
		if !covered[pair] {
			out.Missed = append(out.Missed, MissedRace{Sites: pair, Verdict: verdict})
		}
	}
	sort.Slice(out.Missed, func(i, j int) bool {
		a, b := out.Missed[i].Sites, out.Missed[j].Sites
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	if reg != nil {
		reg.Counter("static.matched").Add(uint64(out.Matched))
		reg.Counter("static.refuted").Add(uint64(out.Refuted))
		reg.Counter("static.unmatched").Add(uint64(out.Unmatched))
		reg.Counter("static.missed").Add(uint64(len(out.Missed)))
	}
	return out
}
