package static

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/isa"
)

func mustAssemble(t *testing.T, name, src string) *isa.Program {
	t.Helper()
	prog, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	return prog
}

// --- value lattice ---

func TestJoinLattice(t *testing.T) {
	g := addrKey{kind: akConcrete, base: 0x1000}
	vals := []value{bot, top, zero, con(7), {kind: vLoaded, c: 1, key: g},
		{kind: vHeap, c: 0, site: 3}, {kind: vStack}}
	for _, v := range vals {
		if join(bot, v) != v || join(v, bot) != v {
			t.Errorf("bot is not the identity for %+v", v)
		}
		if join(v, v) != v {
			t.Errorf("join not idempotent for %+v", v)
		}
		if join(top, v) != top || join(v, top) != top {
			t.Errorf("top does not absorb %+v", v)
		}
	}
	if join(con(1), con(2)) != top {
		t.Error("distinct constants must join to top")
	}
}

func TestBinopFolding(t *testing.T) {
	g := addrKey{kind: akConcrete, base: 0x1000}
	ptr := value{kind: vLoaded, c: 0, key: g}
	if got := binop(isa.OpAdd, con(3), con(4)); got != con(7) {
		t.Errorf("3+4 = %+v", got)
	}
	if got := binop(isa.OpAdd, ptr, con(2)); got.kind != vLoaded || got.c != 2 || got.key != g {
		t.Errorf("ptr+2 lost its shape: %+v", got)
	}
	if got := binop(isa.OpSub, ptr, con(1)); got.kind != vLoaded || got.c != -1 {
		t.Errorf("ptr-1 lost its shape: %+v", got)
	}
	if got := binop(isa.OpDiv, con(1), con(0)); got != top {
		t.Errorf("div by zero must be top, got %+v", got)
	}
	if got := binop(isa.OpMul, top, con(2)); got != top {
		t.Errorf("top*2 must be top, got %+v", got)
	}
	if got := immop(isa.OpAddi, con(5), -2); got != con(3) {
		t.Errorf("5-2 = %+v", got)
	}
}

func TestResolveAddr(t *testing.T) {
	g := addrKey{kind: akConcrete, base: 0x1000}
	cases := []struct {
		name    string
		base    value
		imm     int64
		key     addrKey
		private bool
	}{
		{"const data", con(0x1000), 2, addrKey{kind: akConcrete, base: 0x1002}, false},
		{"null guard", con(0), 1, addrKey{}, true},
		{"stack addr", con(int64(isa.StackBase)), 0, addrKey{}, true},
		{"stack value", value{kind: vStack}, 4, addrKey{}, true},
		{"one deref", value{kind: vLoaded, c: 1, key: g}, 2, addrKey{kind: akDeref, base: 0x1000, off: 3}, false},
		{"deep deref", value{kind: vLoaded, key: addrKey{kind: akDeref, base: 0x1000}}, 0, addrKey{}, false},
		{"heap", value{kind: vHeap, c: 1, site: 9}, 1, addrKey{kind: akHeap, base: 9, off: 2}, false},
		{"unknown", top, 0, addrKey{}, false},
	}
	for _, tc := range cases {
		key, private := resolveAddr(tc.base, tc.imm)
		if key != tc.key || private != tc.private {
			t.Errorf("%s: got (%+v, %v), want (%+v, %v)", tc.name, key, private, tc.key, tc.private)
		}
	}
}

// --- CFG ---

func TestCFGLoopAndBlocks(t *testing.T) {
	prog := mustAssemble(t, "cfg", `
.entry main
main:
  ldi r5, 3
loop:
  addi r5, r5, -1
  bne r5, r0, loop
  halt
`)
	c := buildCFG(prog, []int{prog.Entry})
	if len(c.blocks) < 3 {
		t.Fatalf("expected >=3 blocks, got %d", len(c.blocks))
	}
	for pc := range prog.Code {
		b := c.blocks[c.blockOf[pc]]
		if pc < b.start || pc >= b.end {
			t.Fatalf("blockOf[%d] inconsistent: block [%d,%d)", pc, b.start, b.end)
		}
	}
	// The loop body (addi/bne) must be marked cyclic; the halt must not.
	loopPC := prog.Symbols["loop"]
	if !c.blocks[c.blockOf[loopPC]].inCycle {
		t.Error("loop block not marked inCycle")
	}
	haltPC := len(prog.Code) - 1
	if c.blocks[c.blockOf[haltPC]].inCycle {
		t.Error("halt block wrongly marked inCycle")
	}
}

// --- end-to-end candidate behavior ---

const twoWorkerMain = `
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

func TestLockedCounterHasNoCandidates(t *testing.T) {
	rep := Analyze(mustAssemble(t, "locked", `
.entry main
.word mu 0
.word total 0

worker:
  ldi r5, 3
wloop:
  ldi r3, mu
  lock [r3+0]
  ldi r2, total
  ld r4, [r2+0]
  addi r4, r4, 1
  st [r2+0], r4
  unlock [r3+0]
  addi r5, r5, -1
  bne r5, r0, wloop
  ldi r1, 0
  sys exit
`+twoWorkerMain))
	if len(rep.Candidates) != 0 {
		t.Fatalf("consistently locked counter produced %d candidates: %+v",
			len(rep.Candidates), rep.Candidates)
	}
	if rep.Stats.Accesses == 0 {
		t.Error("locked accesses should still be collected (they are shared)")
	}
}

func TestUnlockedCounterIsAStatsCandidate(t *testing.T) {
	rep := Analyze(mustAssemble(t, "racy", `
.entry main
.word hits 0

worker:
  ldi r5, 3
wloop:
  ldi r2, hits
  ld r3, [r2+0]
  addi r3, r3, 1
wstore:
  st [r2+0], r3
  addi r5, r5, -1
  bne r5, r0, wloop
  ldi r1, 0
  sys exit
`+twoWorkerMain))
	if len(rep.Candidates) == 0 {
		t.Fatal("unlocked counter produced no candidates")
	}
	found := false
	for _, c := range rep.Candidates {
		if c.Addr != "hits" {
			t.Errorf("candidate on unexpected cell %q", c.Addr)
		}
		if c.Hint == HintStatsCounter {
			found = true
		}
	}
	if !found {
		t.Errorf("load-increment-store counter not hinted stats-counter: %+v", rep.Candidates)
	}
	// Entry bookkeeping: one root plus a worker spawned from two sites.
	if len(rep.Entries) != 2 {
		t.Fatalf("entries = %+v", rep.Entries)
	}
	if !rep.Entries[0].Root && !rep.Entries[1].Root {
		t.Error("no root entry recorded")
	}
	for _, e := range rep.Entries {
		if e.Label == "worker" && e.SpawnSites != 2 {
			t.Errorf("worker spawn sites = %d, want 2", e.SpawnSites)
		}
	}
}

func TestForkJoinOrderingFilter(t *testing.T) {
	rep := Analyze(mustAssemble(t, "ordered", `
.entry main
.word g 0

worker:
  ldi r2, g
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  ldi r1, 0
  sys exit

main:
  ldi r2, g
  ldi r3, 7
  st [r2+0], r3
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  mov r1, r8
  sys join
  ldi r2, g
  ld r4, [r2+0]
  halt
`))
	if len(rep.Candidates) != 0 {
		t.Fatalf("fork/join-ordered program produced candidates: %+v", rep.Candidates)
	}
	if rep.Stats.FilteredOrdered < 2 {
		t.Errorf("FilteredOrdered = %d, want >=2 (main's pre-spawn store and post-join load)",
			rep.Stats.FilteredOrdered)
	}
}

func TestHeapEscapeThroughGlobal(t *testing.T) {
	rep := Analyze(mustAssemble(t, "heap", `
.entry main
.word obj 0

worker:
  ldi r2, obj
  ld r4, [r2+0]
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  ldi r1, 0
  sys exit

main:
  ldi r1, 1
  sys alloc
  mov r4, r1
  ldi r2, obj
  st [r2+0], r4
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`))
	var derefs int
	for _, c := range rep.Candidates {
		if c.Addr == "*obj" {
			derefs++
		}
	}
	if derefs == 0 {
		t.Fatalf("no candidate on the escaped heap cell *obj: %+v", rep.Candidates)
	}
}

func TestUnescapedHeapIsPrivate(t *testing.T) {
	rep := Analyze(mustAssemble(t, "privheap", `
.entry main

worker:
  ldi r1, 1
  sys alloc
  ldi r3, 5
  st [r1+0], r3
  ld r4, [r1+0]
  ldi r1, 0
  sys exit
`+twoWorkerMain))
	if len(rep.Candidates) != 0 {
		t.Fatalf("thread-private heap produced candidates: %+v", rep.Candidates)
	}
	if rep.Stats.SkippedPrivate == 0 {
		t.Error("unescaped heap accesses not counted SkippedPrivate")
	}
}

func TestHintTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		body string
		want Hint
	}{
		{"redundant-write", `
worker:
  ldi r2, g
  ldi r3, 5
  st [r2+0], r3
  ldi r1, 0
  sys exit
`, HintRedundantWrite},
		{"disjoint-bits", `
worker:
  ldi r2, g
  ldi r3, 1
  orm [r2+0], r3
  ldi r1, 0
  sys exit
`, HintDisjointBits},
		{"user-sync", `
worker:
spin:
  ldi r2, g
  ld r3, [r2+0]
  beq r3, r0, spin
  ldi r2, g
  ldi r4, 1
  st [r2+0], r4
  ldi r1, 0
  sys exit
`, HintUserSync},
		{"double-check", `
worker:
  ldi r2, g
  ld r3, [r2+0]
  bne r3, r0, wdone
  ldi r4, 1
  st [r2+0], r4
wdone:
  ldi r1, 0
  sys exit
`, HintDoubleCheck},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Analyze(mustAssemble(t, tc.name, ".entry main\n.word g 0\n"+tc.body+twoWorkerMain))
			if len(rep.Candidates) == 0 {
				t.Fatal("no candidates")
			}
			for _, c := range rep.Candidates {
				if c.Hint == tc.want {
					return
				}
			}
			t.Errorf("no candidate hinted %q: %+v", tc.want, rep.Candidates)
		})
	}
}

func TestFormatRendersCandidates(t *testing.T) {
	rep := Analyze(mustAssemble(t, "fmt", `
.entry main
.word g 0
worker:
  ldi r2, g
  ldi r3, 5
  st [r2+0], r3
  ldi r1, 0
  sys exit
`+twoWorkerMain))
	var b strings.Builder
	rep.Format(&b)
	out := b.String()
	for _, want := range []string{"static analysis: fmt", "thread entries", "candidate", "cell g"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	if c := rep.Candidate(rep.Candidates[0].SiteB, rep.Candidates[0].SiteA); c == nil {
		t.Error("Candidate lookup should normalize site order")
	}
}

// --- cross-validation ---

func TestCrossValidateStates(t *testing.T) {
	rep := &Report{
		Prog: "xv",
		Candidates: []Candidate{
			{SiteA: "xv:a", SiteB: "xv:b"},
			{SiteA: "xv:c", SiteB: "xv:d"},
			{SiteA: "xv:e", SiteB: "xv:f"},
		},
	}
	ev := DynamicEvidence{
		ObservedSites: map[string]bool{
			"xv:a": true, "xv:b": true, "xv:c": true, "xv:d": true,
		},
		Races: map[hb.SitePair]string{
			hb.MakeSitePair("xv:a", "xv:b"): "potentially-benign",
			hb.MakeSitePair("xv:x", "xv:y"): "potentially-harmful",
		},
	}
	cross := CrossValidate(rep, ev)
	if cross.Matched != 1 || cross.Refuted != 1 || cross.Unmatched != 1 {
		t.Fatalf("matched/refuted/unmatched = %d/%d/%d, want 1/1/1",
			cross.Matched, cross.Refuted, cross.Unmatched)
	}
	if len(cross.Missed) != 1 || cross.Missed[0].Verdict != "potentially-harmful" {
		t.Fatalf("missed = %+v, want the xv:x/xv:y race", cross.Missed)
	}
	states := map[string]MatchState{}
	for _, cc := range cross.Candidates {
		states[cc.SiteA] = cc.State
	}
	if states["xv:a"] != MatchMatched || states["xv:c"] != MatchRefuted || states["xv:e"] != MatchUnmatched {
		t.Errorf("per-candidate states wrong: %+v", states)
	}
	if got := cross.Precision(); got != 0.5 {
		t.Errorf("precision = %v, want 0.5", got)
	}
	if got := cross.Recall(); got != 0.5 {
		t.Errorf("recall = %v, want 0.5", got)
	}
	if cc := cross.Candidates[0]; cc.Verdict != "potentially-benign" {
		t.Errorf("matched candidate lost its verdict: %+v", cc)
	}
}
