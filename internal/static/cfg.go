package static

import (
	"sort"

	"repro/internal/isa"
)

// block is one basic block: the half-open instruction range [start, end)
// with its control-flow successors.
type block struct {
	id      int
	start   int
	end     int
	succs   []int // successor block ids, sorted
	inCycle bool  // block can reach itself (loop body)
}

// cfg is the whole-program control-flow graph. Thread entries share it:
// the dataflow walks each entry's reachable subgraph with its own state,
// so a helper called from two entries is analyzed once per entry.
type cfg struct {
	prog    *isa.Program
	blocks  []*block
	blockOf []int // pc -> block id
}

// isTerminator reports whether the instruction at pc ends its block, and
// returns the pc-granular successors (used both for block construction
// and for the ordering filters in candidates.go).
func pcSuccs(p *isa.Program, pc int) (term bool, succs []int) {
	ins := p.Code[pc]
	in := func(t int64) bool { return t >= 0 && t < int64(len(p.Code)) }
	switch {
	case ins.Op == isa.OpHalt:
		return true, nil
	case ins.Op == isa.OpSys && ins.Imm == isa.SysExit:
		return true, nil
	case ins.Op.IsCondBranch():
		if in(ins.Imm) {
			succs = append(succs, int(ins.Imm))
		}
		if pc+1 < len(p.Code) {
			succs = append(succs, pc+1)
		}
		return true, succs
	case ins.Op == isa.OpJmp:
		if in(ins.Imm) {
			succs = append(succs, int(ins.Imm))
		}
		return true, succs
	case ins.Op == isa.OpCall:
		// Both the callee and the return point: overapproximates paths
		// (a "call skips straight to return" path exists in the graph),
		// which is the safe direction for the reachability filters.
		if in(ins.Imm) {
			succs = append(succs, int(ins.Imm))
		}
		if pc+1 < len(p.Code) {
			succs = append(succs, pc+1)
		}
		return true, succs
	case ins.Op == isa.OpJmpr, ins.Op == isa.OpRet:
		// Indirect target / return address: not tracked at the pc level.
		// Ret is handled by the call edge above; jmpr is counted as an
		// unresolved edge by the analyzer.
		return true, nil
	}
	if pc+1 < len(p.Code) {
		return false, []int{pc + 1}
	}
	return true, nil
}

// buildCFG splits the program into basic blocks. Leaders are the program
// entry, every symbol target, every static branch/jump/call target, every
// instruction after a terminator, and the extra pcs the caller supplies
// (spawn-resolved thread entries, which need not sit on a label).
func buildCFG(p *isa.Program, extra []int) *cfg {
	n := len(p.Code)
	c := &cfg{prog: p, blockOf: make([]int, n)}
	if n == 0 {
		return c
	}
	leader := make([]bool, n)
	mark := func(pc int) {
		if pc >= 0 && pc < n {
			leader[pc] = true
		}
	}
	mark(0)
	mark(p.Entry)
	for _, at := range p.Symbols {
		mark(at)
	}
	for _, at := range extra {
		mark(at)
	}
	for pc := range p.Code {
		term, succs := pcSuccs(p, pc)
		if term {
			mark(pc + 1)
			for _, s := range succs {
				mark(s)
			}
		}
	}

	// Carve blocks at leaders.
	starts := make([]int, 0, 16)
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			starts = append(starts, pc)
		}
	}
	for i, start := range starts {
		end := n
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := &block{id: i, start: start, end: end}
		c.blocks = append(c.blocks, b)
		for pc := start; pc < end; pc++ {
			c.blockOf[pc] = i
		}
	}

	// Successor edges from each block's last instruction.
	for _, b := range c.blocks {
		last := b.end - 1
		term, succs := pcSuccs(c.prog, last)
		if !term {
			succs = []int{b.end} // fallthrough into the next leader
		}
		seen := map[int]bool{}
		for _, s := range succs {
			if s < n && !seen[s] {
				seen[s] = true
				b.succs = append(b.succs, c.blockOf[s])
			}
		}
		sort.Ints(b.succs)
	}

	c.markCycles()
	return c
}

// markCycles sets inCycle on every block that belongs to a nontrivial
// strongly connected component (or that loops directly on itself): the
// spin-wait shape the UserSync hint keys on.
func (c *cfg) markCycles() {
	n := len(c.blocks)
	if n == 0 {
		return
	}
	// Tiny graphs: per-block BFS "can I reach myself" is plenty fast and
	// avoids an SCC implementation.
	for _, b := range c.blocks {
		seen := make([]bool, n)
		queue := append([]int(nil), b.succs...)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if x == b.id {
				b.inCycle = true
				break
			}
			if seen[x] {
				continue
			}
			seen[x] = true
			queue = append(queue, c.blocks[x].succs...)
		}
	}
}

// reachablePCs runs a pc-granular BFS from the given seed pcs, following
// pcSuccs edges, and returns the reached set (including the seeds).
func reachablePCs(p *isa.Program, seeds []int) []bool {
	reached := make([]bool, len(p.Code))
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s >= 0 && s < len(p.Code) && !reached[s] {
			reached[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		_, succs := pcSuccs(p, pc)
		for _, s := range succs {
			if !reached[s] {
				reached[s] = true
				queue = append(queue, s)
			}
		}
	}
	return reached
}

// minJoinsFrom computes, per pc, the minimum number of "sys join"
// instructions executed along any path from start to that pc. The meet is
// min over paths, so the result underapproximates joins — the safe
// direction for the post-join ordering filter (filter less, never more).
func minJoinsFrom(p *isa.Program, start int) []int {
	const inf = int(^uint(0) >> 1)
	dist := make([]int, len(p.Code))
	for i := range dist {
		dist[i] = inf
	}
	if start < 0 || start >= len(p.Code) {
		return dist
	}
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		d := dist[pc]
		ins := p.Code[pc]
		if ins.Op == isa.OpSys && ins.Imm == isa.SysJoin {
			d++
		}
		_, succs := pcSuccs(p, pc)
		for _, s := range succs {
			if d < dist[s] {
				dist[s] = d
				queue = append(queue, s)
			}
		}
	}
	return dist
}
