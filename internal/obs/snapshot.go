package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// Snapshot is a point-in-time copy of a registry's state, safe to render
// or serialize while the pipeline keeps running.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// HistogramSnapshot summarizes one histogram's distribution.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int     `json:"min"`
	Max   int     `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// SpanSnapshot is one node of the frozen span tree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Count      uint64         `json:"count"`
	Nanos      int64          `json:"nanos"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Mallocs    uint64         `json:"mallocs"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Duration returns the span's accumulated wall time.
func (s SpanSnapshot) Duration() time.Duration { return time.Duration(s.Nanos) }

// Snapshot freezes the registry. A nil registry yields an empty (but
// renderable) snapshot. Snapshotting a Fork reads the shared metric
// namespace plus the fork's private span tree.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	base := r.base()
	base.mu.Lock()
	for name, c := range base.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range base.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range base.hists {
		snap.Histograms[name] = h.snapshot()
	}
	base.mu.Unlock()
	r.mu.Lock()
	snap.Spans = snapshotSpans(r.root)
	r.mu.Unlock()
	return snap
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		hs.Mean = float64(h.sum) / float64(h.count)
	}
	if len(h.samples) > 0 {
		sorted := append([]int(nil), h.samples...)
		sort.Ints(sorted)
		hs.P50 = stats.Percentile(sorted, 50)
		hs.P90 = stats.Percentile(sorted, 90)
		hs.P99 = stats.Percentile(sorted, 99)
	}
	return hs
}

func snapshotSpans(parent *Span) []SpanSnapshot {
	if parent == nil || len(parent.order) == 0 {
		return nil
	}
	out := make([]SpanSnapshot, 0, len(parent.order))
	for _, s := range parent.order {
		out = append(out, SpanSnapshot{
			Name:       s.name,
			Count:      s.count,
			Nanos:      s.nanos,
			AllocBytes: s.bytes,
			Mallocs:    s.allocs,
			Children:   snapshotSpans(s),
		})
	}
	return out
}

// SpanNanos returns the total wall time accumulated by spans with the
// given name anywhere in the tree (0 when absent).
func (s Snapshot) SpanNanos(name string) int64 {
	var total int64
	var walk func([]SpanSnapshot)
	walk = func(spans []SpanSnapshot) {
		for _, sp := range spans {
			if sp.Name == name {
				total += sp.Nanos
			}
			walk(sp.Children)
		}
	}
	walk(s.Spans)
	return total
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// The snapshot is plain data; this cannot happen.
		return fmt.Sprintf("{\"error\":%q}", err.Error())
	}
	return string(b) + "\n"
}

// Text renders the snapshot as a human-readable report: the span tree
// first (time, share of parent, allocations), then counters, gauges, and
// histogram summaries, each sorted by name.
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Spans) > 0 {
		b.WriteString("spans:\n")
		var total int64
		for _, sp := range s.Spans {
			total += sp.Nanos
		}
		writeSpanText(&b, s.Spans, 1, total)
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-44s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-44s %.4g\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %-44s n=%d sum=%d min=%d p50=%.1f p90=%.1f p99=%.1f max=%d\n",
				name, h.Count, h.Sum, h.Min, h.P50, h.P90, h.P99, h.Max)
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}

func writeSpanText(b *strings.Builder, spans []SpanSnapshot, depth int, parentNanos int64) {
	for _, sp := range spans {
		share := ""
		if parentNanos > 0 {
			share = fmt.Sprintf(" %5.1f%%", 100*float64(sp.Nanos)/float64(parentNanos))
		}
		label := strings.Repeat("  ", depth) + sp.Name
		fmt.Fprintf(b, "%-30s %12v%s  x%d  %s alloc (%d objects)\n",
			label, sp.Duration().Round(time.Microsecond), share, sp.Count,
			fmtBytes(sp.AllocBytes), sp.Mallocs)
		writeSpanText(b, sp.Children, depth+1, sp.Nanos)
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
