package obs

import (
	"runtime"
	"time"
)

// Span is one named stage of the pipeline. Spans nest (a suite span
// contains record/replay/detect/classify spans) and merge by name: the
// second StartSpan("record") under the same parent accumulates into the
// first span's totals instead of growing the tree, so an 18-scenario
// suite run still renders as one compact stage ladder.
//
// Each start/end cycle accumulates wall time plus heap-allocation deltas
// (bytes and object counts from runtime.MemStats), which is how the
// §5.1-style overhead ladder attributes both time and memory per stage.
type Span struct {
	name     string
	parent   *Span
	children map[string]*Span
	order    []*Span // children in first-start order
	reg      *Registry

	count  uint64 // completed start/end cycles
	nanos  int64  // accumulated wall time
	bytes  uint64 // accumulated heap bytes allocated
	allocs uint64 // accumulated heap objects allocated

	// In-flight state of the current cycle.
	started     time.Time
	startBytes  uint64
	startAllocs uint64
	active      bool
}

// StartSpan opens (or re-opens) the named child of the innermost active
// span and makes it current. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	parent := r.cur
	if parent.children == nil {
		parent.children = make(map[string]*Span)
	}
	s := parent.children[name]
	if s == nil {
		s = &Span{name: name, parent: parent, reg: r}
		parent.children[name] = s
		parent.order = append(parent.order, s)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.started = time.Now()
	s.startBytes = ms.TotalAlloc
	s.startAllocs = ms.Mallocs
	s.active = true
	r.cur = s
	r.emitSpan(EvBegin, name)
	return s
}

// End closes the span, folding the cycle's wall time and allocation
// deltas into its totals and restoring its parent as current. Ending a
// span that is not innermost first unwinds abandoned children. No-op on
// nil or when the span is not active.
func (s *Span) End() {
	if s == nil || !s.active {
		return
	}
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.count++
	s.nanos += time.Since(s.started).Nanoseconds()
	if ms.TotalAlloc > s.startBytes {
		s.bytes += ms.TotalAlloc - s.startBytes
	}
	if ms.Mallocs > s.startAllocs {
		s.allocs += ms.Mallocs - s.startAllocs
	}
	s.active = false
	r.cur = s.parent
	r.emitSpan(EvEnd, s.name)
}

// Time runs f inside a span named name (a convenience for one-shot
// stages). Safe on a nil registry: f still runs, untimed.
func (r *Registry) Time(name string, f func()) {
	sp := r.StartSpan(name)
	f()
	sp.End()
}
