package obs

import (
	"fmt"
	"sort"
	"strings"
)

// promNamespace prefixes every exported metric so a shared Prometheus
// server can tell this pipeline's series apart.
const promNamespace = "racereplay"

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` comment per metric family, then
// its samples. Dot-separated internal names map to underscore families
// under the "racereplay" namespace; counters gain the conventional
// `_total` suffix; histograms export as summaries (quantiles + _sum +
// _count); spans export as three labeled families keyed by the span's
// slash-joined path.
func (s Snapshot) Prometheus() string {
	var b strings.Builder

	for _, name := range sortedKeys(s.Counters) {
		fam := promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", fam, fam, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fam := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", fam, fam, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fam := promName(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", fam)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", fam, promFloat(h.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %s\n", fam, promFloat(h.P90))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", fam, promFloat(h.P99))
		fmt.Fprintf(&b, "%s_sum %d\n", fam, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", fam, h.Count)
	}

	type flatSpan struct {
		path string
		span SpanSnapshot
	}
	var flat []flatSpan
	var walk func(prefix string, spans []SpanSnapshot)
	walk = func(prefix string, spans []SpanSnapshot) {
		for _, sp := range spans {
			path := sp.Name
			if prefix != "" {
				path = prefix + "/" + sp.Name
			}
			flat = append(flat, flatSpan{path: path, span: sp})
			walk(path, sp.Children)
		}
	}
	walk("", s.Spans)
	sort.Slice(flat, func(i, j int) bool { return flat[i].path < flat[j].path })
	if len(flat) > 0 {
		secs := promNamespace + "_span_seconds"
		alloc := promNamespace + "_span_alloc_bytes"
		runs := promNamespace + "_span_runs_total"
		fmt.Fprintf(&b, "# TYPE %s gauge\n", secs)
		for _, f := range flat {
			fmt.Fprintf(&b, "%s{span=%q} %s\n", secs, f.path, promFloat(float64(f.span.Nanos)/1e9))
		}
		fmt.Fprintf(&b, "# TYPE %s gauge\n", alloc)
		for _, f := range flat {
			fmt.Fprintf(&b, "%s{span=%q} %d\n", alloc, f.path, f.span.AllocBytes)
		}
		fmt.Fprintf(&b, "# TYPE %s counter\n", runs)
		for _, f := range flat {
			fmt.Fprintf(&b, "%s{span=%q} %d\n", runs, f.path, f.span.Count)
		}
	}
	return b.String()
}

// promName sanitizes a dot-separated internal metric name into a legal
// Prometheus family name under the namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(promNamespace)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && b.Len() > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way the exposition format expects
// (no exponent surprises for the common small values).
func promFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
