package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stage.events")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("stage.events") != c {
		t.Error("counter not interned by name")
	}

	g := r.Gauge("stage.ratio")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %v", g.Value())
	}

	h := r.Histogram("stage.sizes")
	for _, v := range []int{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	hs := h.snapshot()
	if hs.Count != 5 || hs.Sum != 110 || hs.Min != 1 || hs.Max != 100 {
		t.Errorf("histogram = %+v", hs)
	}
	if hs.P50 != 3 {
		t.Errorf("p50 = %v", hs.P50)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(7)
	sp := r.StartSpan("stage")
	sp.End()
	ran := false
	r.Time("t", func() { ran = true })
	if !ran {
		t.Error("Time must run f even when disabled")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	if snap.Text() == "" || snap.JSON() == "" {
		t.Error("empty snapshot must still render")
	}
}

func TestCountersAreGoroutineSafe(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hot")
			h := r.Histogram("dist")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(j)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hot").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if hs := r.Snapshot().Histograms["dist"]; hs.Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", hs.Count)
	}
}

func TestHistogramSampleCap(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < maxHistogramSamples+100; i++ {
		h.Observe(i)
	}
	hs := h.snapshot()
	if hs.Count != maxHistogramSamples+100 {
		t.Errorf("count = %d", hs.Count)
	}
	if hs.Max != maxHistogramSamples+99 {
		t.Errorf("max must cover uncapped samples, got %d", hs.Max)
	}
	if len(h.samples) != maxHistogramSamples {
		t.Errorf("sample buffer = %d, want cap %d", len(h.samples), maxHistogramSamples)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("record.loads_logged").Add(42)
	r.Gauge("record.bits_per_instr").Set(1.5)
	r.Time("record", func() { r.Counter("record.sequencers").Add(7) })
	var decoded Snapshot
	if err := json.Unmarshal([]byte(r.Snapshot().JSON()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if decoded.Counters["record.loads_logged"] != 42 {
		t.Errorf("decoded counters = %v", decoded.Counters)
	}
	if len(decoded.Spans) != 1 || decoded.Spans[0].Name != "record" {
		t.Errorf("decoded spans = %+v", decoded.Spans)
	}
}

func TestTextRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("detect.instances").Add(9)
	r.Gauge("record.bits_per_instr").Set(1.25)
	r.Histogram("classify.per_race").Observe(3)
	r.Time("suite", func() {
		r.Time("record", func() {})
	})
	out := r.Snapshot().Text()
	for _, want := range []string{"detect.instances", "9", "record.bits_per_instr", "classify.per_race", "suite", "  record"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
