package obs

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Prometheus golden file")

// goldenSnapshot is hand-built so the rendering is fully deterministic
// (live spans carry wall-clock time).
func goldenSnapshot() Snapshot {
	return Snapshot{
		Counters: map[string]uint64{
			"record.loads_logged":   128,
			"replay.regions":        42,
			"detect.region_pairs":   1000,
			"classify.instances_sc": 3,
			"report.races_rendered": 7,
		},
		Gauges: map[string]float64{
			"record.bits_per_instr_compressed": 0.75,
		},
		Histograms: map[string]HistogramSnapshot{
			"classify.instances_per_race": {Count: 4, Sum: 22, Min: 1, Max: 16, Mean: 5.5, P50: 2.5, P90: 12.4, P99: 15.64},
		},
		Spans: []SpanSnapshot{
			{
				Name: "suite", Count: 1, Nanos: 5_000_000, AllocBytes: 2048, Mallocs: 30,
				Children: []SpanSnapshot{
					{Name: "record", Count: 18, Nanos: 1_500_000, AllocBytes: 1024, Mallocs: 10},
					{Name: "replay", Count: 18, Nanos: 2_500_000, AllocBytes: 512, Mallocs: 20},
				},
			},
		},
	}
}

func TestPrometheusGolden(t *testing.T) {
	got := goldenSnapshot().Prometheus()
	path := filepath.Join("testdata", "snapshot.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("Prometheus output drifted from golden file %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// Exposition-format line grammar (text format 0.0.4): comment lines, or
// `name[{labels}] value` sample lines.
var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (-?[0-9.]+(e[+-]?[0-9]+)?|NaN|[+-]Inf)$`)
)

// TestPrometheusParses validates a live registry's rendering line by
// line against the exposition format, and checks the structural
// conventions (counters end in _total, every family has a TYPE line).
func TestPrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("record.loads_logged").Add(10)
	r.Counter("detect.races").Add(2)
	r.Gauge("record.bits_per_instr").Set(1.625)
	h := r.Histogram("classify.per_race")
	h.Observe(1)
	h.Observe(5)
	r.Time("pipeline", func() {
		r.Time("record", func() {})
		r.Time("replay", func() {})
	})

	out := r.Snapshot().Prometheus()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("bad comment line: %q", line)
			}
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[family] {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
	}
	for _, want := range []string{
		"racereplay_record_loads_logged_total 10",
		"racereplay_detect_races_total 2",
		"racereplay_record_bits_per_instr 1.625",
		`racereplay_classify_per_race{quantile="0.5"}`,
		`racereplay_span_seconds{span="pipeline/record"}`,
		`racereplay_span_runs_total{span="pipeline"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
