// Package obs is the pipeline's observability layer: a dependency-free
// (standard library + internal/stats) metrics and tracing toolkit every
// stage of the record/replay/detect/classify pipeline reports into.
//
// The design follows two rules:
//
//  1. Nil is off. Every method is safe on a nil *Registry, nil *Counter,
//     nil *Gauge, nil *Histogram, and nil *Span, and does nothing. Code
//     can be instrumented unconditionally; passing no registry keeps the
//     uninstrumented hot paths identical to before (the recorder is still
//     attached directly to the machine, with no fan-out wrapper).
//  2. Stages own names. Metric names are dot-separated, prefixed by the
//     stage that emits them ("record.loads_logged", "replay.regions",
//     "detect.region_pairs_examined", "classify.instances_sc",
//     "report.races_rendered"). Renderers sanitize the names for their
//     target format; see docs/OBSERVABILITY.md for the full catalog.
//
// Counters, gauges, and histograms are goroutine-safe. Spans are not:
// they model the pipeline's sequential stage structure (record → replay
// → detect → classify → report) and must be started and ended from one
// goroutine at a time. Concurrent stages — the suite's parallel offline
// analysis — get span safety through Fork/Adopt: each worker publishes
// spans into a private Fork of the registry (counters, gauges, and
// histograms still resolve to the shared namespace), and the driver
// folds the worker trees back into the main ladder with Adopt.
package obs

import (
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float value (a level, a ratio, a size).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// maxHistogramSamples bounds the per-histogram sample buffer. The first
// maxHistogramSamples observations are retained for percentile summaries
// (deterministic, unlike reservoir sampling); count/sum/min/max keep
// covering everything.
const maxHistogramSamples = 4096

// Histogram accumulates integer observations and summarizes them with
// the percentile machinery of internal/stats.
type Histogram struct {
	mu      sync.Mutex
	samples []int
	count   uint64
	sum     int64
	min     int
	max     int
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += int64(v)
	if len(h.samples) < maxHistogramSamples {
		h.samples = append(h.samples, v)
	}
}

// Registry is the root of one instrumented run: a namespace of counters,
// gauges, and histograms, plus the stage-span tree. The zero of the type
// is not useful; use NewRegistry. A nil *Registry disables everything.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	root *Span // anonymous holder of the top-level spans
	cur  *Span // innermost active span (nil = at root)

	// parent is set on worker views created by Fork: counters, gauges,
	// and histograms delegate to the base registry (they are already
	// goroutine-safe), while the span tree stays private to the fork
	// until Adopt folds it into the base ladder.
	parent *Registry

	// tl is the optional flight recorder (EnableTimeline); lane is this
	// view's event stream within it — lane 0 on the base registry, a
	// fresh lane per Fork. Both nil means the event path is off.
	tl   *Timeline
	lane *lane

	// logger is the optional structured logger (SetLogger); forkLogger
	// is a fork's lane-tagged view of it. Logger() falls back to a
	// disabled logger when unset.
	logger     *slog.Logger
	forkLogger *slog.Logger
}

// base resolves the registry the metric namespace lives in: the
// receiver itself, or the registry a Fork was taken from.
func (r *Registry) base() *Registry {
	b := r
	for b.parent != nil {
		b = b.parent
	}
	return b
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		root:     &Span{},
	}
	r.cur = r.root
	return r
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r = r.base()
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r = r.base()
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r = r.base()
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns map keys in stable order (rendering determinism).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
