package obs

import (
	"testing"
	"time"
)

func TestSpanNestingAndMerge(t *testing.T) {
	r := NewRegistry()
	suite := r.StartSpan("suite")
	for i := 0; i < 3; i++ {
		rec := r.StartSpan("record")
		time.Sleep(time.Millisecond)
		rec.End()
	}
	rep := r.StartSpan("replay")
	rep.End()
	suite.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "suite" {
		t.Fatalf("top-level spans = %+v", snap.Spans)
	}
	kids := snap.Spans[0].Children
	if len(kids) != 2 {
		t.Fatalf("same-named spans must merge: %+v", kids)
	}
	if kids[0].Name != "record" || kids[0].Count != 3 {
		t.Errorf("record span = %+v", kids[0])
	}
	if kids[0].Nanos < (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("record span accumulated %v, want >= 3ms", kids[0].Duration())
	}
	if snap.Spans[0].Nanos < kids[0].Nanos {
		t.Error("parent wall time must cover child wall time")
	}
}

func TestSpanAllocDeltas(t *testing.T) {
	r := NewRegistry()
	var sink [][]byte
	r.Time("alloc-stage", func() {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 4096))
		}
	})
	_ = sink
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	sp := snap.Spans[0]
	if sp.AllocBytes < 64*4096 {
		t.Errorf("alloc bytes = %d, want >= %d", sp.AllocBytes, 64*4096)
	}
	if sp.Mallocs == 0 {
		t.Error("mallocs not counted")
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("once")
	sp.End()
	sp.End() // second End must not double-count
	if got := r.Snapshot().Spans[0].Count; got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

func TestSpanNanosAggregation(t *testing.T) {
	r := NewRegistry()
	outer := r.StartSpan("a")
	inner := r.StartSpan("b")
	inner.End()
	outer.End()
	b := r.StartSpan("b") // same name at top level: separate node, same name
	b.End()
	snap := r.Snapshot()
	if snap.SpanNanos("b") != snap.Spans[0].Children[0].Nanos+snap.Spans[1].Nanos {
		t.Error("SpanNanos must sum all spans with the name")
	}
	if snap.SpanNanos("missing") != 0 {
		t.Error("missing span must be 0")
	}
}
