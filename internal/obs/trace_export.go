package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: the timeline snapshot rendered in the JSON
// Array Format that chrome://tracing and Perfetto load directly. Every
// lane becomes one "thread" of a single "racer" process; stage
// begin/end pairs become complete ("X") slices and instants stay
// instants ("i"). Ring wraparound can orphan a begin or an end — the
// exporter matches pairs per lane and drops the unmatched rest, so the
// output is always well formed.

// TraceEvent is one Chrome trace_event record.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds since the timeline epoch
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope: "t" (thread)
	Args  map[string]any `json:"args,omitempty"`
}

// TraceFile is the exported envelope ({"traceEvents": [...]}).
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePID is the single synthetic process all lanes live under.
const tracePID = 1

// TraceExport converts the snapshot into a Chrome trace file.
func (s TimelineSnapshot) TraceExport() *TraceFile {
	f := &TraceFile{DisplayTimeUnit: "ms"}

	// Metadata: name the process once and every lane as a thread, in
	// lane order so the export is deterministic.
	f.TraceEvents = append(f.TraceEvents, TraceEvent{
		Name: "process_name", Phase: "M", PID: tracePID, TID: 0,
		Args: map[string]any{"name": "racer"},
	})
	for _, l := range s.Lanes {
		label := l.Label
		if label == "" {
			label = fmt.Sprintf("lane %d", l.ID)
		}
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: "thread_name", Phase: "M", PID: tracePID, TID: l.ID,
			Args: map[string]any{"name": label},
		})
		if l.Dropped > 0 {
			f.TraceEvents = append(f.TraceEvents, TraceEvent{
				Name: "timeline.dropped", Phase: "i", TS: 0, PID: tracePID, TID: l.ID,
				Scope: "t", Args: map[string]any{"dropped": l.Dropped},
			})
		}
	}

	// Stage slices: match begin/end pairs per lane with a stack. Events
	// arrive in merged (TS, Lane, Seq) order; per lane that is Seq
	// order, so nesting is well bracketed except where wraparound ate
	// one side — unmatched events are dropped rather than exported as
	// dangling B/E records some viewers reject.
	type open struct {
		ev  Event
		idx int // reserved slot in f.TraceEvents
	}
	stacks := make(map[int][]open)
	for _, ev := range s.Events {
		switch ev.Kind {
		case EvBegin:
			f.TraceEvents = append(f.TraceEvents, TraceEvent{}) // reserve slot in start order
			stacks[ev.Lane] = append(stacks[ev.Lane], open{ev: ev, idx: len(f.TraceEvents) - 1})
		case EvEnd:
			st := stacks[ev.Lane]
			// Unwind to the matching begin (abandoned children are
			// closed implicitly by Span.End's unwinding semantics).
			match := -1
			for i := len(st) - 1; i >= 0; i-- {
				if st[i].ev.Name == ev.Name {
					match = i
					break
				}
			}
			if match < 0 {
				continue // begin lost to wraparound
			}
			b := st[match]
			dur := float64(ev.TS-b.ev.TS) / 1e3
			f.TraceEvents[b.idx] = TraceEvent{
				Name: b.ev.Name, Phase: "X", TS: float64(b.ev.TS) / 1e3, Dur: &dur,
				PID: tracePID, TID: ev.Lane,
			}
			stacks[ev.Lane] = st[:match]
		case EvInstant:
			te := TraceEvent{
				Name: ev.Name, Phase: "i", TS: float64(ev.TS) / 1e3,
				PID: tracePID, TID: ev.Lane, Scope: "t",
			}
			if ev.Label != "" || ev.Arg != 0 {
				te.Args = map[string]any{}
				if ev.Label != "" {
					te.Args["label"] = ev.Label
				}
				if ev.Arg != 0 {
					te.Args["arg"] = ev.Arg
				}
			}
			f.TraceEvents = append(f.TraceEvents, te)
		}
	}

	// Compact away reserved slots whose end never arrived (still-open
	// or wraparound-orphaned begins left zero-value placeholders).
	kept := f.TraceEvents[:0]
	for _, te := range f.TraceEvents {
		if te.Phase != "" {
			kept = append(kept, te)
		}
	}
	f.TraceEvents = kept
	return f
}

// WriteTrace renders the timeline as Chrome trace_event JSON. A nil
// timeline writes a valid, empty trace.
func (t *Timeline) WriteTrace(w io.Writer) error {
	f := t.Snapshot().TraceExport()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ValidateTrace decodes Chrome trace JSON and checks the invariants the
// exporter guarantees: a traceEvents array where every record has a
// name, a known phase, non-negative timestamps, and complete events
// carry durations. It returns the decoded file for further inspection.
func ValidateTrace(data []byte) (*TraceFile, error) {
	var f TraceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return nil, fmt.Errorf("trace: no traceEvents")
	}
	for i, te := range f.TraceEvents {
		if te.Name == "" {
			return nil, fmt.Errorf("trace: event %d has no name", i)
		}
		switch te.Phase {
		case "M":
		case "i":
			if te.TS < 0 {
				return nil, fmt.Errorf("trace: event %d (%s) has negative ts", i, te.Name)
			}
		case "X":
			if te.TS < 0 {
				return nil, fmt.Errorf("trace: event %d (%s) has negative ts", i, te.Name)
			}
			if te.Dur == nil || *te.Dur < 0 {
				return nil, fmt.Errorf("trace: complete event %d (%s) lacks a duration", i, te.Name)
			}
		default:
			return nil, fmt.Errorf("trace: event %d (%s) has unknown phase %q", i, te.Name, te.Phase)
		}
	}
	return &f, nil
}
