package obs

import "strconv"

// Fork returns a worker-local view of the registry for one concurrently
// executing pipeline stage. Counters, gauges, and histograms resolve to
// the base registry — they are goroutine-safe and every worker should
// accumulate into the shared namespace — while spans started on the
// fork build a private tree, keeping the not-goroutine-safe span
// machinery single-owner. When the worker is done, Adopt folds the
// private tree back into the base ladder.
//
// Fork of a Fork views the same base. Fork of nil is nil, preserving
// the nil-is-off rule across a fan-out: forking a disabled registry
// hands every worker a disabled registry.
// A fork additionally gets its own timeline lane (when the base has a
// timeline) and a worker-tagged view of the base logger, so events and
// log records from concurrent workers stay attributable.
func (r *Registry) Fork() *Registry {
	if r == nil {
		return nil
	}
	f := &Registry{parent: r.base(), root: &Span{}}
	f.cur = f.root
	if tl := f.parent.tl; tl != nil {
		f.lane = tl.newLane("")
		f.lane.mu.Lock()
		f.lane.label = "worker " + strconv.Itoa(f.lane.id)
		f.lane.mu.Unlock()
	}
	if l := f.parent.Logger(); l != nopLogger {
		if f.lane != nil {
			f.forkLogger = l.With("worker", f.lane.id)
		} else {
			f.forkLogger = l
		}
	}
	return f
}

// Adopt folds a fork's completed span tree into r's innermost active
// span, merging nodes by name exactly as sequential same-name
// StartSpans do — a suite that fans 18 executions across workers still
// renders one compact replay/detect/classify ladder. Call Adopt only
// after the fork's goroutine has finished (spans still active in the
// fork have not folded their in-flight cycle and are skipped), and at
// most once per fork; adopting forks in a fixed order keeps the span
// tree's first-start ordering deterministic. No-op when either side is
// nil.
func (r *Registry) Adopt(f *Registry) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	adoptSpans(r, r.cur, f.root)
}

// adoptSpans merges src's children into dst by name, accumulating
// completed-cycle totals and recursing into grandchildren.
func adoptSpans(r *Registry, dst, src *Span) {
	for _, cs := range src.order {
		ds := dst.children[cs.name]
		if ds == nil {
			ds = &Span{name: cs.name, parent: dst, reg: r}
			if dst.children == nil {
				dst.children = make(map[string]*Span)
			}
			dst.children[cs.name] = ds
			dst.order = append(dst.order, ds)
		}
		ds.count += cs.count
		ds.nanos += cs.nanos
		ds.bytes += cs.bytes
		ds.allocs += cs.allocs
		adoptSpans(r, ds, cs)
	}
}
