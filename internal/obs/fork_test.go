package obs

import (
	"sync"
	"testing"
)

func TestForkSharesMetricNamespace(t *testing.T) {
	reg := NewRegistry()
	f := reg.Fork()
	f.Counter("x.count").Inc()
	f.Gauge("x.level").Set(2.5)
	f.Histogram("x.h").Observe(7)
	reg.Counter("x.count").Inc()

	snap := reg.Snapshot()
	if got := snap.Counters["x.count"]; got != 2 {
		t.Errorf("counter via fork+base = %d, want 2", got)
	}
	if got := snap.Gauges["x.level"]; got != 2.5 {
		t.Errorf("gauge via fork = %v, want 2.5", got)
	}
	if got := snap.Histograms["x.h"].Count; got != 1 {
		t.Errorf("histogram via fork count = %d, want 1", got)
	}
	// A fork of a fork still resolves to the same base.
	f.Fork().Counter("x.count").Inc()
	if got := reg.Snapshot().Counters["x.count"]; got != 3 {
		t.Errorf("counter via second-level fork = %d, want 3", got)
	}
}

func TestForkSpansArePrivateUntilAdopt(t *testing.T) {
	reg := NewRegistry()
	suite := reg.StartSpan("suite")
	f := reg.Fork()
	sp := f.StartSpan("replay")
	sp.End()
	sp = f.StartSpan("classify")
	sp.End()

	if n := reg.Snapshot().SpanNanos("replay"); n != 0 {
		t.Fatalf("fork span leaked into base before Adopt (replay nanos %d)", n)
	}
	reg.Adopt(f)
	suite.End()

	snap := reg.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "suite" {
		t.Fatalf("top-level spans = %+v, want one suite span", snap.Spans)
	}
	kids := snap.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "replay" || kids[1].Name != "classify" {
		t.Fatalf("suite children = %+v, want replay then classify", kids)
	}
	if kids[0].Count != 1 || kids[1].Count != 1 {
		t.Errorf("child counts = %d/%d, want 1/1", kids[0].Count, kids[1].Count)
	}
}

func TestAdoptMergesByNameAcrossForks(t *testing.T) {
	reg := NewRegistry()
	suite := reg.StartSpan("suite")
	var forks []*Registry
	for i := 0; i < 4; i++ {
		f := reg.Fork()
		sp := f.StartSpan("replay")
		inner := f.StartSpan("decode")
		inner.End()
		sp.End()
		forks = append(forks, f)
	}
	for _, f := range forks {
		reg.Adopt(f)
	}
	suite.End()

	snap := reg.Snapshot()
	kids := snap.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "replay" || kids[0].Count != 4 {
		t.Fatalf("children = %+v, want one replay span with count 4", kids)
	}
	if len(kids[0].Children) != 1 || kids[0].Children[0].Count != 4 {
		t.Fatalf("nested children = %+v, want one decode span with count 4", kids[0].Children)
	}
}

func TestForkAndAdoptNilSafety(t *testing.T) {
	var r *Registry
	f := r.Fork()
	if f != nil {
		t.Fatal("Fork of nil registry should be nil")
	}
	f.Counter("x").Inc()
	f.StartSpan("a").End()
	r.Adopt(f)
	NewRegistry().Adopt(nil)
}

// TestConcurrentForkPublication is the -race check for fan-out metrics:
// many workers publish counters, gauges, histograms, and spans through
// their forks at once, then the driver adopts every tree.
func TestConcurrentForkPublication(t *testing.T) {
	reg := NewRegistry()
	suite := reg.StartSpan("suite")
	const workers, rounds = 8, 200
	forks := make([]*Registry, workers)
	var wg sync.WaitGroup
	for i := range forks {
		forks[i] = reg.Fork()
		wg.Add(1)
		go func(f *Registry) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				f.Counter("work.items").Inc()
				f.Gauge("work.level").Set(float64(j))
				f.Histogram("work.size").Observe(j)
				sp := f.StartSpan("stage")
				sp.End()
			}
		}(forks[i])
	}
	wg.Wait()
	for _, f := range forks {
		reg.Adopt(f)
	}
	suite.End()

	snap := reg.Snapshot()
	if got := snap.Counters["work.items"]; got != workers*rounds {
		t.Errorf("work.items = %d, want %d", got, workers*rounds)
	}
	if got := snap.Histograms["work.size"].Count; got != workers*rounds {
		t.Errorf("work.size count = %d, want %d", got, workers*rounds)
	}
	kids := snap.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "stage" || kids[0].Count != workers*rounds {
		t.Fatalf("suite children = %+v, want one stage span with count %d", kids, workers*rounds)
	}
}
