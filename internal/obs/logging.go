package obs

import (
	"context"
	"io"
	"log/slog"
)

// Structured logging: a thin log/slog layer the pipeline threads
// through the registry, replacing ad-hoc stderr prints. The registry
// carries at most one *slog.Logger; stages fetch it with Logger(),
// which is never nil — without SetLogger it returns a logger whose
// handler is disabled at every level, so unconditional instrumentation
// costs one pointer load. Forks inherit the base logger tagged with
// their worker lane, so JSONL records from a parallel run say which
// worker wrote them.

// discardHandler is a slog.Handler that is off at every level (the
// stdlib gained slog.DiscardHandler after this module's Go floor).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// nopLogger is the shared disabled logger Logger falls back to.
var nopLogger = slog.New(discardHandler{})

// NewJSONLogger returns a leveled JSONL logger (one JSON object per
// line) suitable for SetLogger.
func NewJSONLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// SetLogger attaches a structured logger to the registry and its future
// forks. No-op on nil.
func (r *Registry) SetLogger(l *slog.Logger) {
	if r == nil || l == nil {
		return
	}
	b := r.base()
	b.mu.Lock()
	b.logger = l
	b.mu.Unlock()
}

// Logger returns the attached logger. It is never nil: without
// SetLogger (or on a nil registry) it returns a logger that is disabled
// at every level. On a fork the base logger is tagged with the fork's
// worker lane.
func (r *Registry) Logger() *slog.Logger {
	if r == nil {
		return nopLogger
	}
	if r.parent != nil && r.forkLogger != nil {
		return r.forkLogger
	}
	b := r.base()
	b.mu.Lock()
	l := b.logger
	b.mu.Unlock()
	if l == nil {
		return nopLogger
	}
	return l
}
