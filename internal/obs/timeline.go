package obs

import (
	"sort"
	"sync"
	"time"
)

// The timeline is the flight-recorder half of the observability layer.
// Counters and spans answer "how much, how long, in aggregate"; the
// timeline answers "what happened, on which worker, in what order". It
// records individual events — span begin/end cycles plus instants like
// memo hits and quarantines — into per-lane ring buffers with bounded
// memory, and merges them at snapshot time into one deterministic
// sequence exportable as Chrome trace_event JSON (chrome://tracing,
// Perfetto).
//
// Nil is off, as everywhere in obs: a registry without a timeline (the
// default) never allocates or locks on the event path — Emit is two nil
// checks. With the timeline on, emission writes into a preallocated
// ring slot under a per-lane mutex, so the hot paths stay allocation
// free either way and concurrent emitters on one lane never tear an
// event across a wraparound.

// EventKind is the shape of one timeline event.
type EventKind uint8

const (
	// EvInstant marks a point in time (a memo hit, a quarantine).
	EvInstant EventKind = iota
	// EvBegin opens a stage on its lane (emitted by StartSpan).
	EvBegin
	// EvEnd closes the innermost open stage (emitted by Span.End).
	EvEnd
)

// Event is one flight-recorder record. Name and Label must be
// low-cardinality, caller-retained strings (stage names, scenario
// labels) — the ring stores the string headers, never copies.
type Event struct {
	Seq   uint64    // per-lane monotonic sequence number
	TS    int64     // nanoseconds since the timeline epoch
	Lane  int       // emitting lane (0 = main, forks count up)
	Kind  EventKind // instant, begin, or end
	Name  string    // event name ("classify", "classify.memo.hit", ...)
	Label string    // optional detail (scenario label, corruption kind)
	Arg   uint64    // optional numeric payload (count, index, bytes)
}

// DefaultLaneEvents is the per-lane ring capacity used when
// EnableTimeline is called with n <= 0: deep enough for a full suite
// run per lane, small enough (~64 B/slot) to stay always-on.
const DefaultLaneEvents = 4096

// Timeline owns the lanes of one instrumented run. Lane 0 belongs to
// the registry that enabled the timeline; every Fork opens a new lane.
type Timeline struct {
	epoch   time.Time
	laneCap int

	mu    sync.Mutex
	lanes []*lane
}

// lane is one ring-buffered event stream with a single mutex guarding
// the ring cursor, so concurrent emitters interleave whole events.
type lane struct {
	id    int
	label string

	mu      sync.Mutex
	buf     []Event
	next    uint64 // sequence number of the next event
	dropped uint64 // events overwritten by wraparound
}

// newLane registers a new lane and returns it.
func (t *Timeline) newLane(label string) *lane {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := &lane{id: len(t.lanes), label: label, buf: make([]Event, 0, t.laneCap)}
	t.lanes = append(t.lanes, l)
	return l
}

// emit appends one event to the lane, overwriting the oldest on
// wraparound. The slot write happens under the lane mutex, so readers
// and concurrent writers always see complete events.
func (l *lane) emit(kind EventKind, ns int64, name, label string, arg uint64) {
	l.mu.Lock()
	ev := Event{Seq: l.next, TS: ns, Lane: l.id, Kind: kind, Name: name, Label: label, Arg: arg}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.next%uint64(len(l.buf))] = ev
		l.dropped++
	}
	l.next++
	l.mu.Unlock()
}

// EnableTimeline attaches a flight recorder to the registry (and its
// future forks) with space for laneEvents events per lane (<= 0 means
// DefaultLaneEvents). The receiver's own events land on lane 0
// ("main"). Enabling twice returns the existing timeline; enabling a
// nil registry returns nil.
func (r *Registry) EnableTimeline(laneEvents int) *Timeline {
	if r == nil {
		return nil
	}
	b := r.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tl == nil {
		if laneEvents <= 0 {
			laneEvents = DefaultLaneEvents
		}
		b.tl = &Timeline{epoch: time.Now(), laneCap: laneEvents}
		b.lane = b.tl.newLane("main")
	}
	return b.tl
}

// Timeline returns the attached flight recorder (nil when off).
func (r *Registry) Timeline() *Timeline {
	if r == nil {
		return nil
	}
	return r.base().tl
}

// LabelLane names the receiver's timeline lane — the thread name shown
// in the exported trace ("main", "worker 3 (exec01#1)"). No-op with
// the timeline off.
func (r *Registry) LabelLane(label string) {
	if r == nil || r.lane == nil {
		return
	}
	r.lane.mu.Lock()
	r.lane.label = label
	r.lane.mu.Unlock()
}

// Emit records an instant event on the registry's lane. With the
// timeline off (nil registry, or no EnableTimeline) this is two nil
// checks and zero allocations — the classify hot path calls it per
// memo lookup.
func (r *Registry) Emit(name string, arg uint64) {
	if r == nil || r.lane == nil {
		return
	}
	r.lane.emit(EvInstant, time.Since(r.base().tl.epoch).Nanoseconds(), name, "", arg)
}

// EmitLabeled is Emit with a detail string (a scenario label, a file
// name, a corruption kind). The string is stored, not copied; pass
// values that outlive the snapshot.
func (r *Registry) EmitLabeled(name, label string, arg uint64) {
	if r == nil || r.lane == nil {
		return
	}
	r.lane.emit(EvInstant, time.Since(r.base().tl.epoch).Nanoseconds(), name, label, arg)
}

// emitSpan records a stage begin/end on the registry's lane; called by
// StartSpan and Span.End with the registry lock held (the lane mutex
// nests strictly inside the registry mutex).
func (r *Registry) emitSpan(kind EventKind, name string) {
	if r.lane == nil {
		return
	}
	r.lane.emit(kind, time.Since(r.base().tl.epoch).Nanoseconds(), name, "", 0)
}

// LaneInfo describes one lane in a timeline snapshot.
type LaneInfo struct {
	ID      int    `json:"id"`
	Label   string `json:"label"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped,omitempty"` // lost to ring wraparound
}

// TimelineSnapshot is a frozen, merged view of every lane.
type TimelineSnapshot struct {
	Lanes  []LaneInfo
	Events []Event // merged, deterministic order
}

// Snapshot freezes the timeline: every lane's surviving events, merged
// into one sequence ordered by (TS, Lane, Seq). The (Lane, Seq) pair is
// unique, so the order is a total, deterministic function of the event
// set — two snapshots of the same events agree byte for byte no matter
// how many workers emitted them.
func (t *Timeline) Snapshot() TimelineSnapshot {
	var snap TimelineSnapshot
	if t == nil {
		return snap
	}
	t.mu.Lock()
	lanes := append([]*lane(nil), t.lanes...)
	t.mu.Unlock()
	for _, l := range lanes {
		l.mu.Lock()
		snap.Lanes = append(snap.Lanes, LaneInfo{ID: l.id, Label: l.label, Events: len(l.buf), Dropped: l.dropped})
		// Oldest first: after wraparound the ring's logical start is
		// next % len.
		if n := len(l.buf); n > 0 {
			start := 0
			if l.dropped > 0 {
				start = int(l.next % uint64(n))
			}
			for i := 0; i < n; i++ {
				snap.Events = append(snap.Events, l.buf[(start+i)%n])
			}
		}
		l.mu.Unlock()
	}
	sort.Slice(snap.Events, func(i, j int) bool {
		a, b := snap.Events[i], snap.Events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		return a.Seq < b.Seq
	})
	return snap
}

// Dropped sums events lost to ring wraparound across all lanes.
func (s TimelineSnapshot) Dropped() uint64 {
	var n uint64
	for _, l := range s.Lanes {
		n += l.Dropped
	}
	return n
}
