package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// Eight forks hammer their lanes concurrently, each lane wrapping its
// ring several times over; the snapshot must (a) never contain a torn
// event — every record's fields must be internally consistent with what
// exactly one worker wrote — and (b) merge into the same deterministic
// order every time.
func TestForkConcurrentEmitMergesDeterministically(t *testing.T) {
	const (
		workers       = 8
		perWorker     = 1000
		laneCap       = 256 // force ~4x wraparound per lane
		snapshotRaces = 4   // concurrent snapshots during emission
	)
	reg := NewRegistry()
	reg.EnableTimeline(laneCap)

	forks := make([]*Registry, workers)
	names := make([]string, workers)
	for i := range forks {
		forks[i] = reg.Fork()
		names[i] = fmt.Sprintf("worker%d.event", i)
	}

	var wg sync.WaitGroup
	for i, f := range forks {
		wg.Add(1)
		go func(i int, f *Registry) {
			defer wg.Done()
			for seq := 0; seq < perWorker; seq++ {
				// Arg encodes (worker, seq) so a torn slot — one
				// worker's name with another's payload, or a stale
				// mix of two writes — is detectable after the fact.
				f.Emit(names[i], uint64(i)<<32|uint64(seq))
			}
		}(i, f)
	}
	// Concurrent snapshots must see only whole events, even mid-wrap.
	for i := 0; i < snapshotRaces; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			checkNoTearing(t, reg.Timeline().Snapshot(), names)
		}()
	}
	wg.Wait()

	snap := reg.Timeline().Snapshot()
	checkNoTearing(t, snap, names)

	// 1 main lane + 8 worker lanes, each worker lane full and wrapped.
	if len(snap.Lanes) != workers+1 {
		t.Fatalf("lanes = %d, want %d", len(snap.Lanes), workers+1)
	}
	for _, l := range snap.Lanes[1:] {
		if l.Events != laneCap {
			t.Errorf("lane %d holds %d events, want full ring of %d", l.ID, l.Events, laneCap)
		}
		if l.Dropped != perWorker-laneCap {
			t.Errorf("lane %d dropped = %d, want %d", l.ID, l.Dropped, perWorker-laneCap)
		}
		if !strings.HasPrefix(l.Label, "worker ") {
			t.Errorf("lane %d label = %q, want worker label", l.ID, l.Label)
		}
	}

	// Per lane the surviving events must be exactly the newest laneCap,
	// oldest first.
	for _, l := range snap.Lanes[1:] {
		var got []Event
		for _, ev := range snap.Events {
			if ev.Lane == l.ID {
				got = append(got, ev)
			}
		}
		if len(got) != laneCap {
			t.Fatalf("lane %d: merged %d events, want %d", l.ID, len(got), laneCap)
		}
		for i, ev := range got {
			wantSeq := uint64(perWorker - laneCap + i)
			if ev.Seq != wantSeq {
				t.Fatalf("lane %d event %d: seq = %d, want %d (newest %d, oldest first)",
					l.ID, i, ev.Seq, wantSeq, laneCap)
			}
		}
	}

	// The merge is a pure function of the event set: snapshotting again
	// yields the identical sequence.
	again := reg.Timeline().Snapshot()
	if !reflect.DeepEqual(snap.Events, again.Events) {
		t.Fatal("two snapshots of a quiesced timeline disagree")
	}
}

// checkNoTearing verifies every worker event is internally consistent:
// the name says which worker wrote it, and the payload must carry that
// worker's index and a plausible sequence number.
func checkNoTearing(t *testing.T, snap TimelineSnapshot, names []string) {
	t.Helper()
	for _, ev := range snap.Events {
		if ev.Lane == 0 {
			continue
		}
		worker := ev.Lane - 1
		if worker >= len(names) || ev.Name != names[worker] {
			t.Fatalf("lane %d carries foreign event %q", ev.Lane, ev.Name)
		}
		if ev.Arg>>32 != uint64(worker) {
			t.Fatalf("torn event on lane %d: name %q but payload from worker %d",
				ev.Lane, ev.Name, ev.Arg>>32)
		}
		if seq := ev.Arg & 0xffffffff; seq != ev.Seq {
			t.Fatalf("torn event on lane %d: ring seq %d holds payload seq %d",
				ev.Lane, ev.Seq, seq)
		}
	}
}

// With the timeline off — the default — Emit must cost zero
// allocations, both on a nil registry and on a live one. This backs the
// acceptance criterion that enabling observability hooks on the
// classify hot path is free until switched on.
func TestEmitOffAllocatesNothing(t *testing.T) {
	var nilReg *Registry
	if n := testing.AllocsPerRun(100, func() {
		nilReg.Emit("classify.memo.hit", 1)
		nilReg.EmitLabeled("quarantine", "why", 0)
	}); n != 0 {
		t.Fatalf("nil-registry Emit allocates %.1f/op, want 0", n)
	}
	reg := NewRegistry() // metrics on, timeline off
	fork := reg.Fork()
	if n := testing.AllocsPerRun(100, func() {
		reg.Emit("classify.memo.hit", 1)
		fork.Emit("classify.memo.miss", 1)
		fork.EmitLabeled("quarantine", "why", 0)
	}); n != 0 {
		t.Fatalf("timeline-off Emit allocates %.1f/op, want 0", n)
	}
}

// Once the ring is at capacity, emission reuses slots: no allocations
// even with the timeline on.
func TestEmitSteadyStateAllocatesNothing(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTimeline(64)
	for i := 0; i < 64; i++ {
		reg.Emit("warmup", 0)
	}
	if n := testing.AllocsPerRun(100, func() {
		reg.Emit("classify.memo.hit", 1)
	}); n != 0 {
		t.Fatalf("steady-state Emit allocates %.1f/op, want 0", n)
	}
}

// Spans emitted through the normal StartSpan/End flow must export as
// complete ("X") slices, instants as "i", and the whole file must pass
// the exporter's own validator.
func TestTraceExportRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTimeline(0)

	outer := reg.StartSpan("suite")
	inner := reg.StartSpan("classify")
	reg.Emit("classify.memo.miss", 1)
	time.Sleep(time.Millisecond)
	reg.EmitLabeled("quarantine", "exec03", 2)
	inner.End()
	outer.End()
	orphan := reg.StartSpan("unfinished") // never ended: must not export
	_ = orphan

	var buf bytes.Buffer
	if err := reg.Timeline().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exporter emitted an invalid trace: %v\n%s", err, buf.String())
	}

	var slices, instants, meta int
	byName := map[string]TraceEvent{}
	for _, te := range f.TraceEvents {
		byName[te.Name+"/"+te.Phase] = te
		switch te.Phase {
		case "X":
			slices++
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if slices != 2 {
		t.Errorf("complete slices = %d, want 2 (suite, classify)", slices)
	}
	if instants != 2 {
		t.Errorf("instants = %d, want 2 (memo miss, quarantine)", instants)
	}
	if meta < 2 {
		t.Errorf("metadata records = %d, want process + thread names", meta)
	}
	if _, ok := byName["unfinished/X"]; ok {
		t.Error("unfinished span exported as a complete slice")
	}
	cl, ok := byName["classify/X"]
	if !ok {
		t.Fatal("classify slice missing")
	}
	su := byName["suite/X"]
	if *cl.Dur > *su.Dur {
		t.Errorf("classify dur %.1fus exceeds enclosing suite dur %.1fus", *cl.Dur, *su.Dur)
	}
	q := byName["quarantine/i"]
	if q.Args["label"] != "exec03" {
		t.Errorf("quarantine instant args = %v, want label exec03", q.Args)
	}

	// A nil timeline still writes a valid trace (just process metadata).
	buf.Reset()
	var off *Timeline
	if err := off.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Errorf("nil-timeline trace should validate: %v", err)
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"not json", `{"traceEvents": [`},
		{"empty", `{"traceEvents": []}`},
		{"no name", `{"traceEvents":[{"ph":"i","ts":1,"pid":1,"tid":0}]}`},
		{"bad phase", `{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":1,"tid":0}]}`},
		{"negative ts", `{"traceEvents":[{"name":"x","ph":"i","ts":-5,"pid":1,"tid":0}]}`},
		{"X sans dur", `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1,"tid":0}]}`},
	} {
		if _, err := ValidateTrace([]byte(tc.in)); err == nil {
			t.Errorf("%s: validated, want error", tc.name)
		}
	}
}

// The registry logger is never nil, discards when unset, and tags fork
// records with their worker lane.
func TestLoggerFallbackAndForkTagging(t *testing.T) {
	var nilReg *Registry
	if nilReg.Logger() == nil {
		t.Fatal("nil registry returned nil logger")
	}
	nilReg.Logger().Info("must not panic")

	reg := NewRegistry()
	if reg.Logger() != nopLogger {
		t.Fatal("unset logger should fall back to the shared nop logger")
	}

	var buf bytes.Buffer
	reg.SetLogger(NewJSONLogger(&buf, slog.LevelInfo))
	reg.EnableTimeline(0)
	fork := reg.Fork()
	fork.Logger().Info("replay failed", "scenario", "exec07")
	reg.Logger().Debug("suppressed") // below level

	line := buf.String()
	if !strings.Contains(line, `"worker":1`) {
		t.Errorf("fork record lacks worker attr: %s", line)
	}
	if !strings.Contains(line, `"scenario":"exec07"`) {
		t.Errorf("fork record lacks call attrs: %s", line)
	}
	if strings.Contains(line, "suppressed") {
		t.Error("debug record emitted at info level")
	}
}

// Fork lanes are numbered in creation order, so a driver that forks
// per work item in input order gets a deterministic lane layout.
func TestForkLaneOrdering(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTimeline(0)
	for i := 1; i <= 3; i++ {
		f := reg.Fork()
		if f.lane.id != i {
			t.Fatalf("fork %d got lane %d", i, f.lane.id)
		}
		f.LabelLane(fmt.Sprintf("worker %d (exec%02d)", i, i))
	}
	snap := reg.Timeline().Snapshot()
	if snap.Lanes[2].Label != "worker 2 (exec02)" {
		t.Fatalf("lane 2 label = %q", snap.Lanes[2].Label)
	}
}
