// Package record implements the iDNA-style recorder: a machine.Observer
// that builds self-contained per-thread replay logs while the program runs.
//
// The economy of the log comes from the predictability rule (iDNA's
// load-based checkpointing): the recorder keeps, per thread, the memory
// view that thread can reconstruct from its own loads and stores. A load
// is logged only when shared memory disagrees with that view — the first
// access to a location, or a location modified externally (another thread,
// or in iDNA's world a system call or DMA) since the thread last saw it.
// Everything else about the thread's execution is deterministic and is
// regenerated at replay time.
package record

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Recorder builds a trace.Log from machine observer callbacks. Use Run for
// the common record-a-whole-program case.
type Recorder struct {
	prog    *isa.Program
	seed    int64
	threads map[int]*threadRec
	order   []int // tids in start order

	// Metrics, when set, receives the recorder's stage counters at
	// Finish (loads logged vs. predicted, sequencers, stores). The
	// per-event path only bumps plain ints, so recording with metrics
	// off is unchanged.
	Metrics *obs.Registry

	nLoads       uint64 // loads observed
	nLoadsLogged uint64 // loads the predictability rule had to log
	nStores      uint64
	nSeqs        uint64
	nSysRets     uint64
}

type threadRec struct {
	log  *trace.ThreadLog
	view map[uint64]uint64
	done bool
}

// New returns a Recorder for prog; pass it as machine.Config.Observer.
func New(prog *isa.Program, seed int64) *Recorder {
	return &Recorder{
		prog:    prog,
		seed:    seed,
		threads: make(map[int]*threadRec),
	}
}

// ThreadStarted implements machine.Observer.
func (r *Recorder) ThreadStarted(t *machine.Thread, startTS uint64) {
	tl := &trace.ThreadLog{
		TID:     t.ID,
		StartTS: startTS,
		InitPC:  t.Cpu.PC,
	}
	tl.InitRegs = t.Cpu.Regs
	tl.Seqs = append(tl.Seqs, trace.Sequencer{Idx: 0, TS: startTS, Kind: trace.SeqStart, Aux: -1})
	r.threads[t.ID] = &threadRec{log: tl, view: make(map[uint64]uint64)}
	r.order = append(r.order, t.ID)
}

// Load implements machine.Observer, applying the predictability rule.
func (r *Recorder) Load(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	tr := r.threads[tid]
	r.nLoads++
	if v, known := tr.view[addr]; !known || v != val {
		tr.log.Loads = append(tr.log.Loads, trace.LoadRec{Idx: idx, Addr: addr, Val: val})
		r.nLoadsLogged++
	}
	tr.view[addr] = val
}

// Store implements machine.Observer.
func (r *Recorder) Store(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	r.threads[tid].view[addr] = val
	r.nStores++
}

// Sequencer implements machine.Observer.
func (r *Recorder) Sequencer(tid int, idx uint64, ts uint64, op isa.Op, sysNum int64) {
	tr := r.threads[tid]
	aux := int64(-1)
	kind := trace.KindForOp(op)
	if kind == trace.SeqSyscall {
		aux = sysNum
	}
	tr.log.Seqs = append(tr.log.Seqs, trace.Sequencer{Idx: idx, TS: ts, Kind: kind, Aux: aux})
	r.nSeqs++
}

// SyscallRet implements machine.Observer.
func (r *Recorder) SyscallRet(tid int, idx uint64, r0 uint64) {
	tr := r.threads[tid]
	tr.log.SysRets = append(tr.log.SysRets, trace.SysRec{Idx: idx, Res: r0})
	r.nSysRets++
}

// ThreadEnded implements machine.Observer.
func (r *Recorder) ThreadEnded(t *machine.Thread, endTS uint64) {
	tr := r.threads[t.ID]
	tl := tr.log
	tl.EndTS = endTS
	tl.Retired = t.Retired
	tl.ExitCode = t.ExitCode
	switch t.State {
	case machine.Halted:
		tl.EndReason = trace.EndHalted
	case machine.Exited:
		tl.EndReason = trace.EndExited
	case machine.Faulted:
		tl.EndReason = trace.EndFaulted
		tl.Fault = &trace.FaultRec{Kind: int(t.Fault.Kind), PC: t.Fault.PC, Addr: t.Fault.Addr}
	default:
		tl.EndReason = trace.EndRunning
	}
	tl.Seqs = append(tl.Seqs, trace.Sequencer{Idx: t.Retired, TS: endTS, Kind: trace.SeqEnd, Aux: -1})
	tr.done = true
}

// Finish assembles the trace.Log after the machine run completes. Threads
// still live at budget exhaustion get a synthetic SeqEnd past the final
// clock so their last region is closed.
func (r *Recorder) Finish(res *machine.Result) *trace.Log {
	log := &trace.Log{
		Prog:       r.prog,
		Seed:       r.seed,
		FinalClock: res.FinalClock,
		TotalSteps: res.TotalSteps,
		Deadlocked: res.Deadlocked,
	}
	extraTS := res.FinalClock
	for _, tid := range r.order {
		tr := r.threads[tid]
		if !tr.done {
			var mt *machine.Thread
			for _, t := range res.Threads {
				if t.ID == tid {
					mt = t
					break
				}
			}
			extraTS++
			tr.log.Retired = mt.Retired
			tr.log.EndTS = extraTS
			tr.log.EndReason = trace.EndRunning
			tr.log.Seqs = append(tr.log.Seqs, trace.Sequencer{
				Idx: mt.Retired, TS: extraTS, Kind: trace.SeqEnd, Aux: -1,
			})
			tr.done = true
		}
		log.Threads = append(log.Threads, tr.log)
	}
	r.publishMetrics(res)
	return log
}

// publishMetrics flushes the recorder's event tallies into the registry
// (no-op without one). The loads split is the predictability rule's
// effectiveness: loads_predicted were reconstructed from the thread's
// own view and cost zero log bytes.
func (r *Recorder) publishMetrics(res *machine.Result) {
	reg := r.Metrics
	if reg == nil {
		return
	}
	reg.Counter("record.instructions").Add(res.TotalSteps)
	reg.Counter("record.threads").Add(uint64(len(r.order)))
	reg.Counter("record.loads_total").Add(r.nLoads)
	reg.Counter("record.loads_logged").Add(r.nLoadsLogged)
	reg.Counter("record.loads_predicted").Add(r.nLoads - r.nLoadsLogged)
	reg.Counter("record.stores").Add(r.nStores)
	reg.Counter("record.sequencers").Add(r.nSeqs)
	reg.Counter("record.syscall_returns").Add(r.nSysRets)
	if r.nLoads > 0 {
		reg.Gauge("record.load_log_ratio").Set(float64(r.nLoadsLogged) / float64(r.nLoads))
	}
}

// RunInstrumented is Run with stage metrics: the run is timed under a
// "record" span, the recorder publishes its counters into reg, a
// machine.MetricsObserver rides along behind a MultiObserver fan-out,
// and the log's size is reported as the paper's bits/instruction gauges.
// The size measurement compresses the log, which is bookkeeping rather
// than recording, so it happens after the span ends. A nil reg degrades
// to exactly Run.
func RunInstrumented(prog *isa.Program, cfg machine.Config, reg *obs.Registry) (*trace.Log, *machine.Result, error) {
	if reg == nil {
		return Run(prog, cfg)
	}
	sp := reg.StartSpan("record")
	rec := New(prog, cfg.Seed)
	rec.Metrics = reg
	cfg.Observer = machine.NewMultiObserver(rec, machine.NewMetricsObserver(reg))
	m, err := machine.New(prog, cfg)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	res := m.Run()
	log := rec.Finish(res)
	sp.End()
	if err := log.Validate(); err != nil {
		return nil, nil, err
	}
	st := trace.Stats(log)
	reg.Gauge("record.bits_per_instr_raw").Set(st.RawBitsPerInstr())
	reg.Gauge("record.bits_per_instr_compressed").Set(st.CompressedBitsPerInstr())
	reg.Counter("record.log_bytes_raw").Add(uint64(st.RawBytes))
	reg.Counter("record.log_bytes_compressed").Add(uint64(st.CompressedBytes))
	reg.Counter("record.executions").Inc()
	return log, res, nil
}

// KeyFrameRecorder is a Recorder that also drops a key frame into each
// thread's log every Interval retired instructions — iDNA's mid-log
// resume points, enabling replay.ThreadStateAt to answer per-thread state
// queries without replaying from instruction zero.
type KeyFrameRecorder struct {
	*Recorder
	Interval uint64
}

// NewWithKeyFrames returns a recorder that emits key frames every
// interval instructions (interval must be positive).
func NewWithKeyFrames(prog *isa.Program, seed int64, interval uint64) *KeyFrameRecorder {
	if interval == 0 {
		interval = 1024
	}
	return &KeyFrameRecorder{Recorder: New(prog, seed), Interval: interval}
}

// AfterRetire implements machine.KeyFramer.
func (r *KeyFrameRecorder) AfterRetire(t *machine.Thread) {
	if t.Retired%r.Interval != 0 {
		return
	}
	tr := r.threads[t.ID]
	view := make([]trace.LoadRec, 0, len(tr.view))
	for addr, val := range tr.view {
		view = append(view, trace.LoadRec{Addr: addr, Val: val})
	}
	sort.Slice(view, func(i, j int) bool { return view[i].Addr < view[j].Addr })
	kf := trace.KeyFrame{Idx: t.Retired, PC: t.Cpu.PC, View: view}
	kf.Regs = t.Cpu.Regs
	tr.log.KeyFrames = append(tr.log.KeyFrames, kf)
}

// RunWithKeyFrames is Run with key frames every interval instructions.
func RunWithKeyFrames(prog *isa.Program, cfg machine.Config, interval uint64) (*trace.Log, *machine.Result, error) {
	rec := NewWithKeyFrames(prog, cfg.Seed, interval)
	cfg.Observer = rec
	m, err := machine.New(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := m.Run()
	log := rec.Finish(res)
	if err := log.Validate(); err != nil {
		return nil, nil, err
	}
	return log, res, nil
}

// Run records one full execution of prog under cfg (cfg.Observer is
// overwritten). It returns the replay log and the machine result.
func Run(prog *isa.Program, cfg machine.Config) (*trace.Log, *machine.Result, error) {
	rec := New(prog, cfg.Seed)
	cfg.Observer = rec
	m, err := machine.New(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := m.Run()
	log := rec.Finish(res)
	if err := log.Validate(); err != nil {
		return nil, nil, err
	}
	return log, res, nil
}
