package record

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/trace"
)

func mustRecord(t *testing.T, src string, cfg machine.Config) (*trace.Log, *machine.Result) {
	t.Helper()
	prog, err := asm.Assemble("rec", src)
	if err != nil {
		t.Fatal(err)
	}
	log, res, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return log, res
}

func TestPredictabilityRuleLogsOnlyFirstLoad(t *testing.T) {
	// One thread loads the same address 10 times; only the first load is
	// unpredictable.
	src := `
.word g 7
main:
  ldi r2, g
  ldi r1, 10
loop:
  ld r3, [r2+0]
  addi r1, r1, -1
  bne r1, r0, loop
  halt
`
	log, _ := mustRecord(t, src, machine.Config{Seed: 1})
	t0 := log.Thread(0)
	if len(t0.Loads) != 1 {
		t.Errorf("logged loads = %d, want 1 (predictability rule)", len(t0.Loads))
	}
	if len(t0.Loads) > 0 && t0.Loads[0].Val != 7 {
		t.Errorf("logged value = %d, want 7", t0.Loads[0].Val)
	}
}

func TestOwnStoreMakesLoadPredictable(t *testing.T) {
	src := `
.word g 0
main:
  ldi r2, g
  ldi r3, 9
  st [r2+0], r3    ; store before any load
  ld r4, [r2+0]    ; predictable: own store
  halt
`
	log, _ := mustRecord(t, src, machine.Config{Seed: 1})
	if n := len(log.Thread(0).Loads); n != 0 {
		t.Errorf("logged loads = %d, want 0 after own store", n)
	}
}

func TestExternalWriteForcesRelog(t *testing.T) {
	// Parent writes, spawns child; child loads (first access: logged),
	// parent then overwrites, child loads again — the second load sees an
	// externally modified value and must be logged again.
	src := `
.entry main
.word flag 0
.word ack 0
.word data 1
child:
  ldi r2, data
  ld r3, [r2+0]      ; logged (first access, value 1)
  ldi r6, ack
  ldi r7, 1
  st [r6+0], r7      ; tell parent the first load happened
  ldi r4, flag
cwait:
  ld r5, [r4+0]      ; spin until parent sets flag
  beq r5, r0, cwait
  ld r3, [r2+0]      ; externally modified: logged again (value 77)
  mov r1, r3
  sys print
  ldi r1, 0
  sys exit
main:
  ldi r1, child
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r7, ack
mwait:
  ld r8, [r7+0]      ; wait for the child's first load
  beq r8, r0, mwait
  ldi r2, data
  ldi r3, 77
  st [r2+0], r3
  ldi r4, flag
  ldi r5, 1
  st [r4+0], r5
  mov r1, r6
  sys join
  halt
`
	log, res := mustRecord(t, src, machine.Config{Seed: 3})
	child := log.Thread(1)
	if child == nil {
		t.Fatal("no child thread log")
	}
	// The child must have logged the data word at least twice (initial 1,
	// then 77) — plus flag spins.
	// Find the address of `data`: the word initialized to 1.
	var dataLogs int
	dataAddr := uint64(0)
	for a, v := range log.Prog.Data {
		if v == 1 {
			dataAddr = a
		}
	}
	vals := []uint64{}
	for _, l := range child.Loads {
		if l.Addr == dataAddr {
			dataLogs++
			vals = append(vals, l.Val)
		}
	}
	if dataLogs != 2 || vals[0] != 1 || vals[1] != 77 {
		t.Errorf("data loads logged = %d (%v), want 2 ([1 77])", dataLogs, vals)
	}
	if out := res.Threads[1].Output; len(out) != 1 || out[0] != 77 {
		t.Errorf("child output = %v, want [77]", out)
	}
}

func TestSequencersBracketThreads(t *testing.T) {
	src := `
.entry main
child:
  fence
  ldi r1, 0
  sys exit
main:
  ldi r1, child
  ldi r2, 0
  sys spawn
  sys join
  halt
`
	log, _ := mustRecord(t, src, machine.Config{Seed: 1})
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	main, child := log.Thread(0), log.Thread(1)
	if main.Seqs[0].Kind != trace.SeqStart || main.Seqs[0].TS != 0 {
		t.Error("main thread should start at TS 0")
	}
	if child.StartTS == 0 {
		t.Error("child StartTS should be parent's spawn timestamp")
	}
	// Child's start sequencer equals the spawn syscall's sequencer TS in
	// the parent log.
	var spawnTS uint64
	for _, s := range main.Seqs {
		if s.Kind == trace.SeqSyscall && s.Aux == 4 { // SysSpawn
			spawnTS = s.TS
		}
	}
	if spawnTS == 0 || child.Seqs[0].TS != spawnTS {
		t.Errorf("child start TS %d, spawn TS %d; want equal", child.Seqs[0].TS, spawnTS)
	}
	// Child end must precede the join's sequencer in the parent.
	var joinTS uint64
	for _, s := range main.Seqs {
		if s.Kind == trace.SeqSyscall && s.Aux == 5 { // SysJoin
			joinTS = s.TS
		}
	}
	if child.EndTS >= joinTS {
		t.Errorf("child EndTS %d should precede parent join TS %d", child.EndTS, joinTS)
	}
}

func TestSyscallResultsLogged(t *testing.T) {
	src := `
main:
  sys rand
  sys gettid
  ldi r1, 3
  sys alloc
  halt
`
	log, _ := mustRecord(t, src, machine.Config{Seed: 5})
	t0 := log.Thread(0)
	if len(t0.SysRets) != 3 {
		t.Fatalf("sysrets = %d, want 3", len(t0.SysRets))
	}
	if t0.SysRets[0].Res == 0 {
		t.Error("rand result should be logged (nonzero with overwhelming probability)")
	}
	if t0.SysRets[1].Res != 0 {
		t.Error("gettid of main should be 0")
	}
	if t0.SysRets[2].Res == 0 {
		t.Error("alloc result should be a heap address")
	}
}

func TestFaultRecorded(t *testing.T) {
	src := "main:\n  ld r1, [r0+0]\n  halt\n"
	log, _ := mustRecord(t, src, machine.Config{Seed: 1})
	t0 := log.Thread(0)
	if t0.EndReason != trace.EndFaulted || t0.Fault == nil {
		t.Fatalf("end reason = %v, fault = %v", t0.EndReason, t0.Fault)
	}
	if t0.Retired != 0 {
		t.Errorf("faulting instruction should not retire; retired = %d", t0.Retired)
	}
}

func TestBudgetExhaustionClosesLog(t *testing.T) {
	src := "main:\n  jmp main\n"
	prog, err := asm.Assemble("spin", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := Run(prog, machine.Config{Seed: 1, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	t0 := log.Thread(0)
	if t0.EndReason != trace.EndRunning {
		t.Errorf("end reason = %v, want running", t0.EndReason)
	}
	if err := log.Validate(); err != nil {
		t.Errorf("budget-exhausted log should validate: %v", err)
	}
}

func TestLogSerializationRoundTripFromRealRun(t *testing.T) {
	src := `
.entry main
.word n 0
worker:
  ldi r2, 20
wloop:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`
	log, _ := mustRecord(t, src, machine.Config{Seed: 11})
	raw := trace.Marshal(log)
	got, err := trace.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Instructions() != log.Instructions() {
		t.Error("instruction count changed through serialization")
	}
	if len(got.Threads) != len(log.Threads) {
		t.Fatal("thread count changed")
	}
	for i := range log.Threads {
		a, b := log.Threads[i], got.Threads[i]
		if len(a.Loads) != len(b.Loads) || len(a.Seqs) != len(b.Seqs) || len(a.SysRets) != len(b.SysRets) {
			t.Errorf("thread %d stream lengths changed", i)
		}
	}
}

func TestLogEconomy(t *testing.T) {
	// A loop-heavy single-threaded program should need far less than a
	// word of log per instruction: the paper's sub-bit regime.
	src := `
.word g 1
main:
  ldi r1, 2000
  ldi r2, g
loop:
  ld r3, [r2+0]
  add r4, r4, r3
  addi r1, r1, -1
  bne r1, r0, loop
  halt
`
	log, _ := mustRecord(t, src, machine.Config{Seed: 1})
	s := trace.Stats(log)
	if s.Instructions < 8000 {
		t.Fatalf("instructions = %d, want ~8000", s.Instructions)
	}
	if bits := s.RawBitsPerInstr(); bits > 2.0 {
		t.Errorf("raw bits/instruction = %.2f, want < 2 for a predictable loop", bits)
	}
}

func TestKeyFrameRecording(t *testing.T) {
	src := `
.word g 1
main:
  ldi r1, 40
  ldi r2, g
loop:
  ld r3, [r2+0]
  add r4, r4, r3
  st [r2+0], r4
  addi r1, r1, -1
  bne r1, r0, loop
  halt
`
	prog, err := asm.Assemble("kf", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := RunWithKeyFrames(prog, machine.Config{Seed: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	t0 := log.Thread(0)
	if len(t0.KeyFrames) == 0 {
		t.Fatal("no key frames recorded")
	}
	for i, kf := range t0.KeyFrames {
		if kf.Idx%10 != 0 {
			t.Errorf("frame %d at idx %d, want a multiple of the interval", i, kf.Idx)
		}
		if kf.Idx > 10 && len(kf.View) == 0 {
			t.Errorf("frame %d has an empty view after memory traffic", i)
		}
		// Views are sorted by address (delta-encoding requirement).
		for j := 1; j < len(kf.View); j++ {
			if kf.View[j].Addr <= kf.View[j-1].Addr {
				t.Errorf("frame %d view not sorted", i)
			}
		}
	}
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero interval falls back to a default instead of dividing by zero.
	if rec := NewWithKeyFrames(prog, 1, 0); rec.Interval == 0 {
		t.Error("zero interval not defaulted")
	}
}
