// Online recording: the recorder and the hb.Online detector share one
// observer fan-out, so a single execution yields both the replay log and
// a raced/race-free verdict with no second decode pass. The verdict rides
// on the log as the in-memory trace.OnlineInfo annotation; the offline
// detector stays the source of truth whenever the verdict is "raced".
package record

import (
	"repro/internal/hb"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// OnlineConfig controls online detection during recording.
type OnlineConfig struct {
	// Detect attaches the hb.Online observer. When false the run is a
	// plain recording (key frames still honored) and no annotation is
	// stamped on the log.
	Detect bool
	// StopOnFirstRace ends the run at the next scheduling-quantum
	// boundary after the first race is observed. The truncated log is
	// still valid (live threads get synthetic end sequencers) and the
	// offline pass confirms the race on it; the truncation point is
	// deterministic for a given seed.
	StopOnFirstRace bool
	// KeyFrameInterval, when positive, records key frames every that
	// many retired instructions (as RunWithKeyFrames).
	KeyFrameInterval uint64
	// DownsampleFactor multiplies the key-frame interval once a race is
	// confirmed: the run's fate is sealed (full offline analysis), so
	// dense resume points stop paying for themselves. 0 means the
	// default of 8; 1 disables down-sampling.
	DownsampleFactor uint64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.DownsampleFactor == 0 {
		c.DownsampleFactor = 8
	}
	return c
}

// downsamplingKeyFramer widens the key-frame interval the first time the
// online detector confirms a race.
type downsamplingKeyFramer struct {
	*KeyFrameRecorder
	online      *hb.Online
	factor      uint64
	downsampled bool
	reg         *obs.Registry
}

// AfterRetire implements machine.KeyFramer.
func (r *downsamplingKeyFramer) AfterRetire(t *machine.Thread) {
	if !r.downsampled && r.factor > 1 && r.online.Raced() {
		r.Interval *= r.factor
		r.downsampled = true
		if r.reg != nil {
			r.reg.Counter("record.keyframes.downsampled").Inc()
		}
	}
	r.KeyFrameRecorder.AfterRetire(t)
}

// RunOnline records prog with the online detector attached (per oc) and
// returns the log — annotated with the verdict — plus the machine result
// and the detector's report. With oc.Detect false the report is nil and
// the call degrades to Run / RunWithKeyFrames.
func RunOnline(prog *isa.Program, cfg machine.Config, oc OnlineConfig) (*trace.Log, *machine.Result, *hb.OnlineReport, error) {
	return RunOnlineInstrumented(prog, cfg, oc, nil)
}

// RunOnlineInstrumented is RunOnline with stage metrics: the record span,
// the recorder counters, the machine.MetricsObserver, and the
// detect.online.* family all publish into reg. A nil reg records without
// metrics.
func RunOnlineInstrumented(prog *isa.Program, cfg machine.Config, oc OnlineConfig, reg *obs.Registry) (*trace.Log, *machine.Result, *hb.OnlineReport, error) {
	oc = oc.withDefaults()
	if !oc.Detect {
		var (
			log *trace.Log
			res *machine.Result
			err error
		)
		switch {
		case reg != nil && oc.KeyFrameInterval == 0:
			log, res, err = RunInstrumented(prog, cfg, reg)
		case oc.KeyFrameInterval > 0:
			log, res, err = RunWithKeyFrames(prog, cfg, oc.KeyFrameInterval)
		default:
			log, res, err = Run(prog, cfg)
		}
		return log, res, nil, err
	}

	var sp *obs.Span
	if reg != nil {
		sp = reg.StartSpan("record")
	}
	online := hb.NewOnline(prog, reg, oc.StopOnFirstRace)
	var rec *Recorder
	var observers []machine.Observer
	if oc.KeyFrameInterval > 0 {
		kfr := NewWithKeyFrames(prog, cfg.Seed, oc.KeyFrameInterval)
		rec = kfr.Recorder
		observers = append(observers, &downsamplingKeyFramer{
			KeyFrameRecorder: kfr,
			online:           online,
			factor:           oc.DownsampleFactor,
			reg:              reg,
		})
	} else {
		rec = New(prog, cfg.Seed)
		observers = append(observers, rec)
	}
	rec.Metrics = reg
	observers = append(observers, online)
	if reg != nil {
		observers = append(observers, machine.NewMetricsObserver(reg))
	}
	cfg.Observer = machine.NewMultiObserver(observers...)
	m, err := machine.New(prog, cfg)
	if err != nil {
		if sp != nil {
			sp.End()
		}
		return nil, nil, nil, err
	}
	res := m.Run()
	log := rec.Finish(res)
	rep := online.Report(res.Stopped)
	log.Online = online.Info(res.Stopped)
	if sp != nil {
		sp.End()
	}
	if err := log.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if reg != nil {
		st := trace.Stats(log)
		reg.Gauge("record.bits_per_instr_raw").Set(st.RawBitsPerInstr())
		reg.Gauge("record.bits_per_instr_compressed").Set(st.CompressedBitsPerInstr())
		reg.Counter("record.log_bytes_raw").Add(uint64(st.RawBytes))
		reg.Counter("record.log_bytes_compressed").Add(uint64(st.CompressedBytes))
		reg.Counter("record.executions").Inc()
	}
	return log, res, rep, nil
}
