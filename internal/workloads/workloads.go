// Package workloads provides the synthetic racy-program suite that stands
// in for the paper's 18 recorded executions of Windows Vista and Internet
// Explorer services (§5.1).
//
// The suite is built from parameterized templates — one family per benign
// category of Table 2 plus the harmful-race families of §5.2.4 — each
// instantiated with unique labels and globals so every instantiation
// contributes distinct static race sites. Templates carry ground-truth
// labels (the developer-intent verdict the paper obtained by manual
// triage) and the Table-1 group their races are expected to land in, which
// the census test and the paperbench harness check against the paper.
//
// Every scenario program is named "suite", so a race site like
// "suite:red03_store+0" identifies the same static race in whichever
// scenario it appears — races accumulate instances across executions
// exactly as in §5.2.1.
package workloads

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/classify"
	"repro/internal/isa"
	"repro/internal/machine"
)

// Category mirrors Table 2 plus a bucket for the real bugs.
type Category int

const (
	CatUserSync Category = iota
	CatDoubleCheck
	CatBothValid
	CatRedundantWrite
	CatDisjointBits
	CatApprox
	CatHarmful
)

var categoryNames = map[Category]string{
	CatUserSync:       "User Constructed Synchronization",
	CatDoubleCheck:    "Double Checks",
	CatBothValid:      "Both Values Valid",
	CatRedundantWrite: "Redundant Writes",
	CatDisjointBits:   "Disjoint Bit Manipulation",
	CatApprox:         "Approximate Computation",
	CatHarmful:        "Harmful",
}

func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Worker is one thread a template contributes to a scenario.
type Worker struct {
	Entry string // label of the worker's entry point
	Arg   int64  // initial r1
}

// Template is one racy code pattern instance.
type Template struct {
	Name        string // unique label/global prefix, e.g. "red03"
	Category    Category
	RealHarmful bool           // ground truth from "manual triage"
	ExpectGroup classify.Group // Table-1 row the template's races should land in
	Races       int            // unique static races the template contributes
	Appearances int            // how many scenarios include it
	Decls       string
	Init        string // assembly main runs before spawning any worker
	Code        string
	Workers     []Worker
}

// ProgName is the shared program name that keeps race sites stable across
// scenarios.
const ProgName = "suite"

// --- Template generators -------------------------------------------------

// redundantWrite: both workers store the value the global already holds
// (§5.4 category 4). One unique race (store vs store); always
// No-State-Change.
func redundantWrite(i int) Template {
	n := fmt.Sprintf("red%02d", i)
	iters := 1 + i%5
	v := 50 + i
	return Template{
		Name: n, Category: CatRedundantWrite,
		ExpectGroup: classify.GroupNoStateChange, Races: 1,
		Appearances: 1 + i%2,
		Decls:       fmt.Sprintf(".word %s_g %d\n", n, v),
		Code: fmt.Sprintf(`
%[1]s_worker:
  ldi r5, %[2]d
%[1]s_loop:
  ldi r2, %[1]s_g
  ldi r3, %[3]d
%[1]s_store:
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, %[1]s_loop
  ldi r1, 0
  sys exit
`, n, iters, v),
		Workers: []Worker{{Entry: n + "_worker"}, {Entry: n + "_worker"}},
	}
}

// disjointBits: the workers OR disjoint bits into a shared word with a
// non-atomic read-modify-write instruction (§5.4 category 5). The two RMW
// instructions commute, so both orders agree: No-State-Change.
func disjointBits(i int) Template {
	n := fmt.Sprintf("disj%02d", i)
	iters := 2 + i%3
	bitA := (2 * i) % 60
	bitB := (2*i + 1) % 60
	return Template{
		Name: n, Category: CatDisjointBits,
		ExpectGroup: classify.GroupNoStateChange, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_flags 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_worker:
  ldi r5, %[2]d
  ldi r3, 1
  shl r3, r3, r1
%[1]s_loop:
  ldi r2, %[1]s_flags
%[1]s_orm:
  orm [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, %[1]s_loop
  ldi r1, 0
  sys exit
`, n, iters),
		Workers: []Worker{{Entry: n + "_worker", Arg: int64(bitA)}, {Entry: n + "_worker", Arg: int64(bitB)}},
	}
}

// userSyncSpin: a hand-rolled completion signal — producer sets a flag
// with a plain store, the waiter spins on a plain load (§5.4 category 1).
// The happens-before detector must flag it (no sequencer orders the pair),
// but both orders converge: No-State-Change.
func userSyncSpin(i int) Template {
	n := fmt.Sprintf("usync%02d", i)
	return Template{
		Name: n, Category: CatUserSync,
		ExpectGroup: classify.GroupNoStateChange, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_flag 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_prod:
  ldi r6, 30
%[1]s_warm:
  addi r6, r6, -1
  bne r6, r0, %[1]s_warm
  ldi r4, %[1]s_flag
  ldi r5, 1
%[1]s_set:
  st [r4+0], r5
  ldi r1, 0
  sys exit
%[1]s_wait:
  ldi r4, %[1]s_flag
%[1]s_spin:
  ld r5, [r4+0]
  beq r5, r0, %[1]s_spin
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{{Entry: n + "_prod"}, {Entry: n + "_wait"}},
	}
}

// userSyncYield: the same hand-rolled signal, but the waiter yields
// between checks, so every check sits in its own sequencing region. When
// the classifier flips the order on a check that read 0, the waiter
// escapes the loop and runs off the recorded region: a replay failure.
// Real-benign — this is one of the §5.2.4 "replayer limitation"
// misclassifications.
func userSyncYield(i int) Template {
	n := fmt.Sprintf("uyield%02d", i)
	return Template{
		Name: n, Category: CatUserSync,
		ExpectGroup: classify.GroupReplayFailure, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_flag 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_prod:
  ldi r6, 40
%[1]s_warm:
  addi r6, r6, -1
  bne r6, r0, %[1]s_warm
  ldi r4, %[1]s_flag
  ldi r5, 1
%[1]s_set:
  st [r4+0], r5
  ldi r1, 0
  sys exit
%[1]s_wait:
  ldi r4, %[1]s_flag
%[1]s_spin:
  ld r5, [r4+0]
  bne r5, r0, %[1]s_go
  sys yield
  jmp %[1]s_spin
%[1]s_go:
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{{Entry: n + "_prod"}, {Entry: n + "_wait"}},
	}
}

// doubleCheckLazy: the racy fast check in front of lazy initialization —
// one thread lazily sets the flag, another reads it without
// synchronization. The check register dies before the region ends and
// the set is idempotent, so both orders agree: No-State-Change. One
// unique race.
func doubleCheckLazy(i int) Template {
	n := fmt.Sprintf("dclazy%02d", i)
	return Template{
		Name: n, Category: CatDoubleCheck,
		ExpectGroup: classify.GroupNoStateChange, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_inited 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_setter:
  ldi r2, %[1]s_inited
  ld r3, [r2+0]
  bne r3, r0, %[1]s_sdone
  ldi r4, 1
%[1]s_set:
  st [r2+0], r4
%[1]s_sdone:
  ldi r3, 0
  ldi r4, 0
  ldi r1, 0
  sys exit
%[1]s_checker:
  ldi r2, %[1]s_inited
%[1]s_check:
  ld r3, [r2+0]
  bne r3, r0, %[1]s_cdone
%[1]s_cdone:
  ldi r3, 0
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{{Entry: n + "_setter"}, {Entry: n + "_checker"}},
	}
}

// doubleCheckLock: the classic double-checked lock (§5.4 category 2). The
// unsynchronized fast-path read races with the store inside the lock; the
// alternative order diverges into (or around) the locked slow path, which
// the region never recorded: replay failure, real-benign.
func doubleCheckLock(i int) Template {
	n := fmt.Sprintf("dclock%02d", i)
	return Template{
		Name: n, Category: CatDoubleCheck,
		ExpectGroup: classify.GroupReplayFailure, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_mu 0\n.word %s_inited 0\n", n, n),
		Code: fmt.Sprintf(`
%[1]s_worker:
  ldi r2, %[1]s_inited
%[1]s_fast:
  ld r3, [r2+0]
  bne r3, r0, %[1]s_ready
  ldi r4, %[1]s_mu
  lock [r4+0]
  ld r3, [r2+0]
  bne r3, r0, %[1]s_unl
  ldi r5, 1
%[1]s_slow:
  st [r2+0], r5
%[1]s_unl:
  ldi r4, %[1]s_mu
  unlock [r4+0]
%[1]s_ready:
  ldi r3, 0
  ldi r5, 0
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{{Entry: n + "_worker"}, {Entry: n + "_worker"}},
	}
}

// bothValidSelector: a shared variable selects between two implementations
// of the same computation (the paper's function-version example, §5.4
// category 3). Either value is correct; the selector register dies, both
// paths compute the same result: No-State-Change.
func bothValidSelector(i int) Template {
	n := fmt.Sprintf("bvsel%02d", i)
	x := 7 + i
	return Template{
		Name: n, Category: CatBothValid,
		ExpectGroup: classify.GroupNoStateChange, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_sel 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_writer:
  ldi r2, %[1]s_sel
  ldi r3, 1
%[1]s_wsel:
  st [r2+0], r3
  ldi r1, 0
  sys exit
%[1]s_reader:
  ldi r2, %[1]s_sel
  ldi r4, %[2]d
%[1]s_rsel:
  ld r3, [r2+0]
  beq r3, r0, %[1]s_v0
  muli r5, r4, 2
  jmp %[1]s_out
%[1]s_v0:
  add r5, r4, r4
%[1]s_out:
  ldi r3, 0
  mov r1, r5
  sys exit
`, n, x),
		Workers: []Worker{{Entry: n + "_writer"}, {Entry: n + "_reader"}},
	}
}

// bothValidWait: producer-consumer sharing without locks (§5.4 category
// 3): the consumer re-checks the count and at worst waits longer, so
// either value is valid — but flipping the order on a check flips the
// branch into a path (yield wait vs. consume) the region never recorded:
// replay failure, real-benign.
func bothValidWait(i int) Template {
	n := fmt.Sprintf("bvwait%02d", i)
	total := 3 + i%3
	return Template{
		Name: n, Category: CatBothValid,
		ExpectGroup: classify.GroupReplayFailure, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_count 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_prod:
  ldi r5, %[2]d
%[1]s_ploop:
  ldi r2, %[1]s_count
  ld r3, [r2+0]
  addi r3, r3, 1
%[1]s_pst:
  st [r2+0], r3
  addi r5, r5, -1
  bne r5, r0, %[1]s_ploop
  ldi r1, 0
  sys exit
%[1]s_cons:
  ldi r2, %[1]s_count
  ldi r7, 0
  ldi r8, %[2]d
%[1]s_rloop:
  beq r7, r8, %[1]s_rdone
%[1]s_rchk:
  ld r5, [r2+0]
  bltu r7, r5, %[1]s_rtake
  ldi r5, 0
  sys yield
  jmp %[1]s_rloop
%[1]s_rtake:
  addi r7, r7, 1
  jmp %[1]s_rloop
%[1]s_rdone:
  ldi r5, 0
  ldi r1, 0
  sys exit
`, n, total),
		Workers: []Worker{{Entry: n + "_prod"}, {Entry: n + "_cons"}},
	}
}

// approxCounter: an unsynchronized statistics cell that each worker
// stomps with its own running count (the paper's flagship
// approximate-computation pattern: the developers tolerate whichever
// thread's value wins). Swapping the racing stores changes which value
// survives: a real state change, reported potentially harmful even though
// it is tolerated by design (§5.2.4). One unique race.
func approxCounter(i int) Template {
	n := fmt.Sprintf("actr%02d", i)
	iters := 3 + i%4
	return Template{
		Name: n, Category: CatApprox,
		ExpectGroup: classify.GroupStateChange, Races: 1,
		Appearances: 2 + i%2,
		Decls:       fmt.Sprintf(".word %s_stat 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_worker:
  ldi r5, %[2]d
  mov r6, r1
%[1]s_loop:
  ldi r2, %[1]s_stat
  addi r6, r6, 1
%[1]s_ast:
  st [r2+0], r6
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, %[1]s_loop
  ldi r1, 0
  sys exit
`, n, iters),
		Workers: []Worker{{Entry: n + "_worker", Arg: 0}, {Entry: n + "_worker", Arg: 100}},
	}
}

// approxReader: one updater plus a monitor that reads the live counter
// value (e.g. surfacing approximate statistics). The racing read's value
// stays live to the end of its region: state change, real-benign.
func approxReader(i int) Template {
	n := fmt.Sprintf("ardr%02d", i)
	iters := 3 + i%3
	return Template{
		Name: n, Category: CatApprox,
		ExpectGroup: classify.GroupStateChange, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_stat 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_upd:
  ldi r5, %[2]d
%[1]s_uloop:
  ldi r2, %[1]s_stat
  ld r3, [r2+0]
  addi r3, r3, 1
%[1]s_ust:
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, %[1]s_uloop
  ldi r1, 0
  sys exit
%[1]s_mon:
  ldi r5, %[2]d
%[1]s_mloop:
  ldi r2, %[1]s_stat
%[1]s_mld:
  ld r7, [r2+0]
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, %[1]s_mloop
  ldi r1, 0
  sys exit
`, n, iters),
		Workers: []Worker{{Entry: n + "_upd"}, {Entry: n + "_mon"}},
	}
}

// approxSampled: a counter consumed by a sampling branch (the paper's
// time-stamp/cache-decision example: the value only influences which
// perf-neutral path runs). When the flipped order flips the sample
// branch, the replay diverges into the unrecorded path: replay failure,
// real-benign.
func approxSampled(i int) Template {
	n := fmt.Sprintf("asmp%02d", i)
	iters := 3 + i%3
	mask := 1 + i%3
	return Template{
		Name: n, Category: CatApprox,
		ExpectGroup: classify.GroupReplayFailure, Races: 1,
		Appearances: 2,
		Decls:       fmt.Sprintf(".word %s_stat 0\n", n),
		Code: fmt.Sprintf(`
%[1]s_upd:
  ldi r5, %[2]d
%[1]s_uloop:
  ldi r2, %[1]s_stat
  ld r3, [r2+0]
  addi r3, r3, 1
%[1]s_ust:
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, %[1]s_uloop
  ldi r1, 0
  sys exit
%[1]s_smp:
  ldi r5, %[2]d
%[1]s_sloop:
  ldi r2, %[1]s_stat
%[1]s_sld:
  ld r6, [r2+0]
  andi r7, r6, %[3]d
  ldi r6, 0
  bne r7, r0, %[1]s_skip
  ldi r7, 0
  ldi r1, 1
  sys print
  jmp %[1]s_scont
%[1]s_skip:
  ldi r7, 0
%[1]s_scont:
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, %[1]s_sloop
  ldi r1, 0
  sys exit
`, n, iters, mask),
		Workers: []Worker{{Entry: n + "_upd"}, {Entry: n + "_smp"}},
	}
}

// harmfulAudit: an unsynchronized read of a live value that a concurrent
// updater is modifying — the read result is consumed (kept live) and can
// be inconsistent: state change, real-harmful. The updater changes the
// value only every few rounds, so most instances look redundant — the
// "one in ten instances exposes the bug" effect of Figure 4.
func harmfulAudit(i int) Template {
	n := fmt.Sprintf("haud%02d", i)
	iters := 14 + 4*i
	return Template{
		Name: n, Category: CatHarmful, RealHarmful: true,
		ExpectGroup: classify.GroupStateChange, Races: 1,
		Appearances: 4,
		Decls:       fmt.Sprintf(".word %s_bal 100\n", n),
		Code: fmt.Sprintf(`
%[1]s_upd:
  ldi r5, %[2]d
  ldi r6, 0
%[1]s_uloop:
  ldi r2, %[1]s_bal
  ld r3, [r2+0]
  andi r4, r6, 7
  bne r4, r0, %[1]s_same
  addi r3, r3, 7
%[1]s_same:
%[1]s_ust:
  st [r2+0], r3
  sys sysnop
  addi r6, r6, 1
  addi r5, r5, -1
  bne r5, r0, %[1]s_uloop
  ldi r1, 0
  sys exit
%[1]s_aud:
  ldi r5, %[2]d
%[1]s_aloop:
  ldi r2, %[1]s_bal
%[1]s_ald:
  ld r7, [r2+0]
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, %[1]s_aloop
  ldi r1, 0
  sys exit
`, n, iters),
		Workers: []Worker{{Entry: n + "_upd"}, {Entry: n + "_aud"}},
	}
}

// harmfulRefcount: the paper's Figure 2 — two threads decrement a shared
// reference count with plain loads/stores and free the object when the
// re-read hits zero. Exposing instances flip a thread into (or out of)
// the free path, which leaves the recorded region: replay failure,
// real-harmful. Three unique races. The object is set up by main before
// the workers are spawned, so the setup stores are ordered and contribute
// no races of their own.
func harmfulRefcount() Template {
	n := "hrefc"
	return Template{
		Name: n, Category: CatHarmful, RealHarmful: true,
		ExpectGroup: classify.GroupReplayFailure, Races: 3,
		Appearances: 6,
		Decls:       fmt.Sprintf(".word %s_foo 0\n", n),
		Init: fmt.Sprintf(`
  ldi r1, 1
  sys alloc
  mov r4, r1
  ldi r3, 2
  st [r4+0], r3
  ldi r2, %[1]s_foo
  st [r2+0], r4
`, n),
		Code: fmt.Sprintf(`
%[1]s_worker:
  ldi r2, %[1]s_foo
  ld r4, [r2+0]
%[1]s_rcld:
  ld r5, [r4+0]
  addi r5, r5, -1
%[1]s_rcst:
  st [r4+0], r5
%[1]s_rcchk:
  ld r6, [r4+0]
  bne r6, r0, %[1]s_done
  mov r1, r4
  sys free
%[1]s_done:
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{{Entry: n + "_worker"}, {Entry: n + "_worker"}},
	}
}

// harmfulNullPub: one thread nulls a shared pointer while another loads
// and dereferences it in the same region — the alternative order
// dereferences null and faults: replay failure, real-harmful.
func harmfulNullPub() Template {
	n := "hnull"
	return Template{
		Name: n, Category: CatHarmful, RealHarmful: true,
		ExpectGroup: classify.GroupReplayFailure, Races: 1,
		Appearances: 4,
		Decls:       fmt.Sprintf(".word %s_p 0\n", n),
		Init: fmt.Sprintf(`
  ldi r1, 1
  sys alloc
  mov r4, r1
  ldi r3, 7
  st [r4+0], r3
  ldi r2, %[1]s_p
  st [r2+0], r4
`, n),
		Code: fmt.Sprintf(`
%[1]s_null:
  ldi r2, %[1]s_p
%[1]s_nst:
  st [r2+0], r0
  ldi r1, 0
  sys exit
%[1]s_rdr:
  ldi r2, %[1]s_p
%[1]s_pld:
  ld r4, [r2+0]
%[1]s_deref:
  ld r5, [r4+0]
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{{Entry: n + "_null"}, {Entry: n + "_rdr"}},
	}
}

// harmfulUAFFlag: a time-of-check-to-time-of-use bug — one thread frees a
// block then raises a plain "freed" flag; the other checks the flag and
// dereferences the block. The alternative order reads freed memory or an
// address the log never captured: replay failure, real-harmful.
func harmfulUAFFlag() Template {
	n := "huaf"
	return Template{
		Name: n, Category: CatHarmful, RealHarmful: true,
		ExpectGroup: classify.GroupReplayFailure, Races: 1,
		Appearances: 4,
		Decls:       fmt.Sprintf(".word %s_blk 0\n.word %s_freed 0\n", n, n),
		Init: fmt.Sprintf(`
  ldi r1, 2
  sys alloc
  mov r4, r1
  ldi r3, 11
  st [r4+0], r3
  ldi r2, %[1]s_blk
  st [r2+0], r4
`, n),
		Code: fmt.Sprintf(`
%[1]s_freer:
  ldi r6, 12
%[1]s_fwarm:
  addi r6, r6, -1
  bne r6, r0, %[1]s_fwarm
  ldi r2, %[1]s_blk
  ld r4, [r2+0]
  mov r1, r4
  sys free
  ldi r2, %[1]s_freed
  ldi r3, 1
%[1]s_fst:
  st [r2+0], r3
  ldi r1, 0
  sys exit
%[1]s_user:
  ldi r8, 6
%[1]s_round:
  ldi r2, %[1]s_freed
%[1]s_uld:
  ld r3, [r2+0]
  bne r3, r0, %[1]s_skip
  ldi r2, %[1]s_blk
  ld r4, [r2+0]
%[1]s_use:
  ld r5, [r4+0]
  ldi r3, 0
  ldi r4, 0
  ldi r5, 0
  sys sysnop
  addi r8, r8, -1
  bne r8, r0, %[1]s_round
%[1]s_skip:
  ldi r3, 0
  ldi r4, 0
  ldi r5, 0
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{{Entry: n + "_freer"}, {Entry: n + "_user"}},
	}
}

// All returns every template in the suite, in canonical order. The counts
// per category reproduce the paper's census: 13 redundant writes, 9
// disjoint-bit, 8 user-constructed synchronization, 3 double checks, 5
// both-values-valid, 23 approximate computation, and the 7 harmful races
// (Table 1 + Table 2).
func All() []Template {
	var ts []Template
	for i := 1; i <= 13; i++ {
		ts = append(ts, redundantWrite(i))
	}
	for i := 1; i <= 9; i++ {
		ts = append(ts, disjointBits(i))
	}
	for i := 1; i <= 6; i++ {
		ts = append(ts, userSyncSpin(i))
	}
	for i := 1; i <= 2; i++ {
		ts = append(ts, userSyncYield(i))
	}
	ts = append(ts, doubleCheckLazy(1), doubleCheckLazy(2)) // 1 race each
	ts = append(ts, doubleCheckLock(1))                     // 1 race
	for i := 1; i <= 2; i++ {
		ts = append(ts, bothValidSelector(i))
	}
	for i := 1; i <= 3; i++ {
		ts = append(ts, bothValidWait(i))
	}
	for i := 1; i <= 12; i++ { // 12 races
		ts = append(ts, approxCounter(i))
	}
	for i := 1; i <= 3; i++ { // 3 races
		ts = append(ts, approxReader(i))
	}
	for i := 1; i <= 8; i++ { // 8 races
		ts = append(ts, approxSampled(i))
	}
	ts = append(ts, harmfulAudit(1), harmfulAudit(2)) // 2 races
	ts = append(ts, harmfulRefcount())                // 3 races
	ts = append(ts, harmfulNullPub())                 // 1 race
	ts = append(ts, harmfulUAFFlag())                 // 1 race
	return ts
}

// ByName returns the template whose Name is a prefix of the given race
// site ("suite:red03_store+2" → red03), or nil.
func ByName(name string) *Template {
	for _, t := range All() {
		if t.Name == name {
			tt := t
			return &tt
		}
	}
	return nil
}

// TemplateOfSite resolves a race site string back to its template.
func TemplateOfSite(site string) *Template {
	s := strings.TrimPrefix(site, ProgName+":")
	if i := strings.IndexByte(s, '_'); i > 0 {
		return ByName(s[:i])
	}
	return nil
}

// --- Scenario composition -------------------------------------------------

// Scenario is one recorded execution: a set of templates composed into a
// single program, plus the scheduler seed.
type Scenario struct {
	Name      string
	Seed      int64
	Templates []Template
}

// NumScenarios is the number of executions in the suite, matching §5.1.
const NumScenarios = 18

// Scenarios composes the 18 executions. Templates are distributed
// round-robin by their Appearances weight; no scenario contains the same
// template twice.
func Scenarios() []Scenario {
	all := All()
	scen := make([]Scenario, NumScenarios)
	for i := range scen {
		scen[i] = Scenario{Name: fmt.Sprintf("exec%02d", i+1), Seed: int64(1000 + 37*i)}
	}
	slot := 0
	for _, t := range all {
		for a := 0; a < t.Appearances; a++ {
			// Find the next scenario not already containing this template.
			for tries := 0; tries < NumScenarios; tries++ {
				s := &scen[slot%NumScenarios]
				slot++
				if !containsTemplate(s.Templates, t.Name) {
					s.Templates = append(s.Templates, t)
					break
				}
			}
		}
	}
	return scen
}

func containsTemplate(ts []Template, name string) bool {
	for _, t := range ts {
		if t.Name == name {
			return true
		}
	}
	return false
}

// Source generates the scenario's assembly text.
func (s Scenario) Source() string {
	var b strings.Builder
	b.WriteString(".entry main\n")
	workers := 0
	for _, t := range s.Templates {
		workers += len(t.Workers)
	}
	fmt.Fprintf(&b, ".space tids %d\n", workers)
	for _, t := range s.Templates {
		b.WriteString(t.Decls)
	}
	for _, t := range s.Templates {
		b.WriteString(t.Code)
	}
	b.WriteString("main:\n")
	for _, t := range s.Templates {
		if t.Init != "" {
			b.WriteString(t.Init)
		}
	}
	b.WriteString("  ldi r10, tids\n")
	k := 0
	for _, t := range s.Templates {
		for _, w := range t.Workers {
			fmt.Fprintf(&b, "  ldi r1, %s\n  ldi r2, %d\n  sys spawn\n  st [r10+%d], r1\n", w.Entry, w.Arg, k)
			k++
		}
	}
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "  ld r1, [r10+%d]\n  sys join\n", i)
	}
	b.WriteString("  halt\n")
	return b.String()
}

// progCache memoizes assembly by source text. Scenarios are composed from
// a fixed template set, so the suite assembles the same 18+2 sources over
// and over (per seed, per benchmark iteration); a profile of the full
// suite showed ~30% of wall time inside asm.Assemble. An *isa.Program is
// never mutated after assembly (the machine copies Data into its own
// memory), so sharing one instance across runs and goroutines is safe.
var progCache sync.Map // source string -> *isa.Program

// Program assembles the scenario, memoizing by generated source.
func (s Scenario) Program() (*isa.Program, error) {
	src := s.Source()
	if p, ok := progCache.Load(src); ok {
		return p.(*isa.Program), nil
	}
	p, err := asm.Assemble(ProgName, src)
	if err != nil {
		return nil, err
	}
	progCache.Store(src, p)
	return p, nil
}

// Config returns the machine configuration for recording this scenario.
func (s Scenario) Config() machine.Config {
	return machine.Config{Seed: s.Seed, MaxThreads: 64, MaxSteps: 4 << 20}
}

// BrowseScenario is the larger, loop-heavy workload used for the §5.1
// performance measurements (the stand-in for the Internet Explorer
// browsing session): a mix of locked work, atomics, private compute, and
// a few of the racy templates.
func BrowseScenario() Scenario {
	all := All()
	pick := []string{"red01", "red02", "disj01", "disj02", "usync01", "actr01", "actr02", "ardr01", "ardr02", "bvsel01", "asmp01"}
	var ts []Template
	for _, name := range pick {
		for _, t := range all {
			if t.Name == name {
				ts = append(ts, t)
			}
		}
	}
	ts = append(ts, browseWorkers())
	return Scenario{Name: "browse", Seed: 4242, Templates: ts}
}

// ServiceScenario is a second performance workload: a Vista-service-like
// shape with deep call stacks, heap churn (alloc/free per request), and
// lock-protected shared queues — exercising the substrate paths the
// browse scenario does not (call/ret, allocator, poisoning).
func ServiceScenario() Scenario {
	return Scenario{Name: "service", Seed: 9001, Templates: []Template{serviceWorkers()}}
}

// serviceWorkers: each worker handles "requests": allocate a buffer, fill
// it via a helper function, fold it into a locked accumulator, free it.
func serviceWorkers() Template {
	n := "svc"
	return Template{
		Name: n, Category: CatRedundantWrite, ExpectGroup: classify.GroupNoStateChange,
		Races: 0, Appearances: 0,
		Decls: fmt.Sprintf(".word %s_mu 0\n.word %s_acc 0\n", n, n),
		Code: fmt.Sprintf(`
%[1]s_fill:
  ldi r6, 8
%[1]s_floop:
  addi r7, r6, 100
  st [r4+0], r7
  addi r4, r4, 1
  addi r6, r6, -1
  bne r6, r0, %[1]s_floop
  ret
%[1]s_sum:
  ldi r6, 8
  ldi r7, 0
%[1]s_sloop:
  ld r8, [r4+0]
  add r7, r7, r8
  addi r4, r4, 1
  addi r6, r6, -1
  bne r6, r0, %[1]s_sloop
  ret
%[1]s_worker:
  ldi r5, 120
%[1]s_req:
  ldi r1, 8
  sys alloc
  mov r9, r1
  mov r4, r9
  call %[1]s_fill
  mov r4, r9
  call %[1]s_sum
  ldi r3, %[1]s_mu
  lock [r3+0]
  ldi r2, %[1]s_acc
  ld r8, [r2+0]
  add r8, r8, r7
  st [r2+0], r8
  unlock [r3+0]
  mov r1, r9
  sys free
  addi r5, r5, -1
  bne r5, r0, %[1]s_req
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{
			{Entry: n + "_worker"}, {Entry: n + "_worker"}, {Entry: n + "_worker"}, {Entry: n + "_worker"},
		},
	}
}

// browseWorkers is the compute-heavy, mostly-synchronized core of the
// browse scenario: checksum loops over a buffer, a locked shared counter
// and an atomic one — lots of instructions, few races, like a real
// application's steady state.
func browseWorkers() Template {
	n := "browse"
	return Template{
		Name: n, Category: CatRedundantWrite, ExpectGroup: classify.GroupNoStateChange,
		Races: 0, Appearances: 0,
		Decls: fmt.Sprintf(".word %s_mu 0\n.word %s_n 0\n.word %s_atomic 0\n.space %s_buf 192\n", n, n, n, n),
		Code: fmt.Sprintf(`
%[1]s_worker:
  ldi r5, 4000
  ldi r9, %[1]s_buf
  add r9, r9, r1
%[1]s_loop:
  andi r6, r5, 63
  add r7, r9, r6
  ld r8, [r7+0]
  add r8, r8, r5
  st [r7+0], r8
  andi r6, r5, 15
  bne r6, r0, %[1]s_nolock
  ldi r3, %[1]s_mu
  lock [r3+0]
  ldi r4, %[1]s_n
  ld r2, [r4+0]
  addi r2, r2, 1
  st [r4+0], r2
  unlock [r3+0]
  ldi r4, %[1]s_atomic
  ldi r2, 1
  xadd r6, [r4+0], r2
%[1]s_nolock:
  addi r5, r5, -1
  bne r5, r0, %[1]s_loop
  ldi r1, 0
  sys exit
`, n),
		Workers: []Worker{
			{Entry: n + "_worker", Arg: 0},
			{Entry: n + "_worker", Arg: 64},
			{Entry: n + "_worker", Arg: 128},
		},
	}
}
