package workloads

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/hb"
)

// runSuite analyzes every scenario and merges the classifications.
func runSuite(t *testing.T) *classify.Classification {
	t.Helper()
	var parts []*classify.Classification
	for _, s := range Scenarios() {
		prog, err := s.Program()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		res, err := core.Analyze(prog, s.Config(), classify.Options{Scenario: s.Name, Seed: s.Seed})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		parts = append(parts, res.Classification)
	}
	return classify.Merge(parts...)
}

func TestSuiteStructure(t *testing.T) {
	all := All()
	races := 0
	perCat := map[Category]int{}
	for _, tm := range all {
		races += tm.Races
		perCat[tm.Category] += tm.Races
		if tm.Appearances < 1 {
			t.Errorf("template %s never appears", tm.Name)
		}
	}
	if races != 68 {
		t.Errorf("suite declares %d races, want 68", races)
	}
	want := map[Category]int{
		CatRedundantWrite: 13, CatDisjointBits: 9, CatUserSync: 8,
		CatDoubleCheck: 3, CatBothValid: 5, CatApprox: 23, CatHarmful: 7,
	}
	for cat, n := range want {
		if perCat[cat] != n {
			t.Errorf("category %v declares %d races, want %d", cat, perCat[cat], n)
		}
	}
	if len(Scenarios()) != NumScenarios {
		t.Errorf("scenarios = %d, want %d", len(Scenarios()), NumScenarios)
	}
}

func TestScenariosAssembleAndRun(t *testing.T) {
	for _, s := range Scenarios() {
		prog, err := s.Program()
		if err != nil {
			t.Fatalf("%s: assemble: %v", s.Name, err)
		}
		log, mres, err := core.Record(prog, s.Config())
		if err != nil {
			t.Fatalf("%s: record: %v", s.Name, err)
		}
		if mres.Deadlocked {
			t.Errorf("%s: deadlocked", s.Name)
		}
		main := mres.Threads[0]
		if main.State.String() != "halted" {
			t.Errorf("%s: main thread state = %v (fault %v)", s.Name, main.State, main.Fault)
		}
		if err := log.Validate(); err != nil {
			t.Errorf("%s: log invalid: %v", s.Name, err)
		}
	}
}

// TestCensusMatchesPaper is the headline reproduction check: the merged
// classification over all 18 scenarios must reproduce Table 1.
func TestCensusMatchesPaper(t *testing.T) {
	merged := runSuite(t)

	type cell struct{ rb, rh int }
	byGroup := map[classify.Group]*cell{
		classify.GroupNoStateChange: {},
		classify.GroupStateChange:   {},
		classify.GroupReplayFailure: {},
	}
	var unknownSites []string
	mismatch := map[string]string{}
	for _, r := range merged.Races {
		tm := TemplateOfSite(r.Sites.A)
		if tm == nil {
			unknownSites = append(unknownSites, r.Sites.String())
			continue
		}
		c := byGroup[r.Group]
		if tm.RealHarmful {
			c.rh++
		} else {
			c.rb++
		}
		if r.Group != tm.ExpectGroup {
			mismatch[r.Sites.String()] = fmt.Sprintf("template %s (%v): got %v want %v [nsc=%d sc=%d rf=%d, %d inst]",
				tm.Name, tm.Category, r.Group, tm.ExpectGroup, r.NSC, r.SC, r.RF, r.Total)
		}
	}
	if len(unknownSites) > 0 {
		t.Errorf("races with unknown templates: %v", unknownSites)
	}

	total := len(merged.Races)
	t.Logf("unique races: %d (instances %d)", total, merged.TotalInstances())
	t.Logf("Table 1: NSC %d RB / %d RH | SC %d RB / %d RH | RF %d RB / %d RH",
		byGroup[classify.GroupNoStateChange].rb, byGroup[classify.GroupNoStateChange].rh,
		byGroup[classify.GroupStateChange].rb, byGroup[classify.GroupStateChange].rh,
		byGroup[classify.GroupReplayFailure].rb, byGroup[classify.GroupReplayFailure].rh)
	for sites, msg := range mismatch {
		t.Logf("MISMATCH %s: %s", sites, msg)
	}

	if total != 68 {
		t.Errorf("unique races = %d, want 68", total)
	}
	// Soundness requirements (must hold exactly, they are the paper's
	// headline claims):
	if byGroup[classify.GroupNoStateChange].rh != 0 {
		t.Errorf("a real-harmful race was classified potentially benign")
	}
	// Paper Table 1 row totals.
	if got := byGroup[classify.GroupNoStateChange].rb; got != 32 {
		t.Errorf("no-state-change real-benign = %d, want 32", got)
	}
	if got, goth := byGroup[classify.GroupStateChange].rb, byGroup[classify.GroupStateChange].rh; got != 15 || goth != 2 {
		t.Errorf("state-change = %d RB + %d RH, want 15 + 2", got, goth)
	}
	if got, goth := byGroup[classify.GroupReplayFailure].rb, byGroup[classify.GroupReplayFailure].rh; got != 14 || goth != 5 {
		t.Errorf("replay-failure = %d RB + %d RH, want 14 + 5", got, goth)
	}
	if len(mismatch) > 0 {
		t.Errorf("%d races landed outside their template's expected group", len(mismatch))
	}
	_ = hb.SitePair{}
}

func TestBrowseScenarioRuns(t *testing.T) {
	s := BrowseScenario()
	prog, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	log, mres, err := core.Record(prog, s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if mres.Deadlocked {
		t.Fatal("browse deadlocked")
	}
	if log.Instructions() < 3000 {
		t.Errorf("browse too small: %d instructions", log.Instructions())
	}
}

func TestTemplateOfSite(t *testing.T) {
	tm := TemplateOfSite("suite:red03_store+1")
	if tm == nil || tm.Name != "red03" {
		t.Fatalf("TemplateOfSite = %+v", tm)
	}
	if TemplateOfSite("suite:nosuch_x") != nil {
		t.Error("unknown template should be nil")
	}
	if TemplateOfSite("garbage") != nil {
		t.Error("garbage site should be nil")
	}
	if !strings.Contains(CatApprox.String(), "Approximate") {
		t.Error("category name missing")
	}
}

// TestCensusRobustAcrossExtraSeeds re-runs every scenario under a second
// scheduler seed and merges: the classification must stay exactly the
// paper's Table 1 — the benign templates are benign under *any*
// interleaving, and more coverage only adds instances.
func TestCensusRobustAcrossExtraSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run, err := RunSuiteSeeds(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunSuite(nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Merged.TotalInstances() <= single.Merged.TotalInstances() {
		t.Errorf("extra seeds did not add instances: %d vs %d",
			run.Merged.TotalInstances(), single.Merged.TotalInstances())
	}
	type cell struct{ rb, rh int }
	byGroup := map[classify.Group]*cell{
		classify.GroupNoStateChange: {}, classify.GroupStateChange: {}, classify.GroupReplayFailure: {},
	}
	for _, r := range run.Merged.Races {
		tm := TemplateOfSite(r.Sites.A)
		if tm == nil {
			t.Fatalf("unknown race %v", r.Sites)
		}
		c := byGroup[r.Group]
		if tm.RealHarmful {
			c.rh++
		} else {
			c.rb++
		}
	}
	if got := byGroup[classify.GroupNoStateChange]; got.rb != 32 || got.rh != 0 {
		t.Errorf("NSC = %d/%d, want 32/0", got.rb, got.rh)
	}
	if got := byGroup[classify.GroupStateChange]; got.rb != 15 || got.rh != 2 {
		t.Errorf("SC = %d/%d, want 15/2", got.rb, got.rh)
	}
	if got := byGroup[classify.GroupReplayFailure]; got.rb != 14 || got.rh != 5 {
		t.Errorf("RF = %d/%d, want 14/5", got.rb, got.rh)
	}
}

func TestServiceScenarioRuns(t *testing.T) {
	s := ServiceScenario()
	prog, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	log, mres, err := core.Record(prog, s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if mres.Deadlocked {
		t.Fatal("service deadlocked")
	}
	for _, th := range mres.Threads {
		if th.Fault != nil {
			t.Fatalf("thread %d faulted: %v", th.ID, th.Fault)
		}
	}
	// acc must equal 4 workers * 120 requests * sum(101..108).
	exec, err := core.AnalyzeLog(log, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var accAddr uint64
	for a := range prog.Data {
		if a > accAddr {
			accAddr = a
		}
	}
	wantReq := 101 + 102 + 103 + 104 + 105 + 106 + 107 + 108
	if got := exec.Exec.FinalMem[accAddr]; got != uint64(4*120*wantReq) {
		t.Errorf("accumulator = %d, want %d", got, 4*120*wantReq)
	}
	// Fully synchronized: no races.
	if len(exec.Races.Races) != 0 {
		t.Errorf("service scenario raced: %v", exec.Races.Races[0].Sites)
	}
}

// TestStressScenarioEndToEnd packs many templates into one oversized
// execution (~40 threads) and runs the full pipeline: a scale check that
// the recorder, replayer, detector, and classifier hold their invariants
// together well beyond the paper-sized scenarios.
func TestStressScenarioEndToEnd(t *testing.T) {
	all := All()
	var ts []Template
	seen := map[string]bool{}
	threads := 0
	for _, tm := range all {
		if threads+len(tm.Workers) > 40 || seen[tm.Name] {
			continue
		}
		seen[tm.Name] = true
		ts = append(ts, tm)
		threads += len(tm.Workers)
	}
	s := Scenario{Name: "stress", Seed: 777, Templates: ts}
	prog, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(prog, s.Config(), classify.Options{Scenario: "stress", Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Deadlocked {
		t.Fatal("stress scenario deadlocked")
	}
	if len(res.Classification.Races) == 0 {
		t.Fatal("stress scenario found no races")
	}
	for _, r := range res.Classification.Races {
		if r.NSC+r.SC+r.RF != r.Total {
			t.Fatalf("race %v: inconsistent outcome counts", r.Sites)
		}
		tm := TemplateOfSite(r.Sites.A)
		if tm == nil {
			t.Fatalf("race %v: unknown template", r.Sites)
		}
		// A single execution can only under-approximate the cross-suite
		// group; but a no-state-change verdict on a harmful template's
		// race must never happen with exposing instances present.
		if tm.RealHarmful && r.Verdict == classify.PotentiallyBenign && r.Exposing() > 0 {
			t.Fatalf("race %v: exposing instances but benign verdict", r.Sites)
		}
	}
}

// TestBudgetTruncatedLogPipeline: a recording cut off by the step budget
// (threads still running) must flow through replay, detection, and
// classification without error.
func TestBudgetTruncatedLogPipeline(t *testing.T) {
	s := Scenarios()[0]
	prog, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	cfg.MaxSteps = 400 // far below the scenario's natural length
	res, err := core.Analyze(prog, cfg, classify.Options{Scenario: "truncated"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.TotalSteps < 400 {
		t.Fatalf("budget not exhausted: %d steps", res.Machine.TotalSteps)
	}
	// Classification is total over whatever was recorded.
	for _, r := range res.Classification.Races {
		if r.NSC+r.SC+r.RF != r.Total {
			t.Fatalf("race %v: inconsistent counts on truncated log", r.Sites)
		}
	}
}
