package workloads

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/static"
)

// ScenarioStatic is the static analysis and cross-validation of one base
// scenario (all seeds of that scenario contribute dynamic evidence).
type ScenarioStatic struct {
	Name   string
	Report *static.Report
	Cross  *static.CrossResult
}

// SuiteStatic is the static cross-validation stage of a suite run.
type SuiteStatic struct {
	Scenarios []ScenarioStatic
	Matched   int
	Refuted   int
	Unmatched int
	Missed    int

	// Predicted-engine totals (meaningful only when HasPredicted: the
	// prediction stage supplied evidence for at least one scenario).
	HasPredicted  bool
	PredMatched   int
	PredRefuted   int
	PredUnmatched int
	PredMissed    int
}

// crossValidateSuite runs the static analyzer over every base scenario of
// the suite and joins each report against the dynamic evidence from all
// of that scenario's seeds. The per-scenario work fans out across the
// same worker-pool discipline as the offline analysis: forked registries
// adopted in input order keep the metrics and the rendered section
// byte-identical at every worker count.
func crossValidateSuite(run *SuiteRun, jobs int, reg *obs.Registry) *SuiteStatic {
	sp := reg.StartSpan("static")
	defer sp.End()

	// Group each base scenario's results; seeds of one scenario share a
	// name and merge into one evidence pool.
	byName := map[string][]*core.Result{}
	var order []string
	for _, sr := range run.Scenarios {
		if _, ok := byName[sr.Scenario.Name]; !ok {
			order = append(order, sr.Scenario.Name)
		}
		byName[sr.Scenario.Name] = append(byName[sr.Scenario.Name], sr.Result)
	}

	out := &SuiteStatic{Scenarios: make([]ScenarioStatic, len(order))}
	forks := make([]*obs.Registry, len(order))
	pool := sched.NewPool(sched.Normalize(jobs, sched.DefaultJobs()), reg)
	for i, name := range order {
		i, name := i, name
		fork := reg.Fork()
		forks[i] = fork
		pool.Submit(func() {
			results := byName[name]
			prog := results[0].Prog
			rep := static.AnalyzeInstrumented(prog, fork)
			cross := static.CrossValidateInstrumented(rep, core.CollectEvidence(results), fork)
			out.Scenarios[i] = ScenarioStatic{Name: name, Report: rep, Cross: cross}
		})
	}
	pool.Wait()
	for _, fork := range forks {
		reg.Adopt(fork)
	}
	for _, sc := range out.Scenarios {
		if sc.Cross == nil {
			continue // scenario fully quarantined or its task panicked
		}
		out.Matched += sc.Cross.Matched
		out.Refuted += sc.Cross.Refuted
		out.Unmatched += sc.Cross.Unmatched
		out.Missed += len(sc.Cross.Missed)
		if sc.Cross.HasPredicted {
			out.HasPredicted = true
			out.PredMatched += sc.Cross.PredMatched
			out.PredRefuted += sc.Cross.PredRefuted
			out.PredUnmatched += sc.Cross.PredUnmatched
			out.PredMissed += len(sc.Cross.PredMissed)
		}
	}
	return out
}
