package workloads

import (
	"testing"
)

// TestSuiteStaticZeroFalseNegatives runs the whole suite with the static
// cross-validation stage and checks the analyzer's soundness contract on
// the shipped workloads: every dynamic happens-before race is predicted
// by a static candidate — zero static false negatives, the property the
// zero-FN acceptance criterion pins suite-wide.
func TestSuiteStaticZeroFalseNegatives(t *testing.T) {
	run, err := RunSuiteOpts(SuiteOptions{Static: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Static == nil {
		t.Fatal("suite run with Static option has no static stage")
	}
	if len(run.Static.Scenarios) != len(Scenarios()) {
		t.Fatalf("static stage covered %d scenarios, want %d",
			len(run.Static.Scenarios), len(Scenarios()))
	}
	for _, sc := range run.Static.Scenarios {
		if sc.Cross == nil {
			t.Errorf("%s: no cross-validation result", sc.Name)
			continue
		}
		for _, m := range sc.Cross.Missed {
			t.Errorf("%s: dynamic race with no static candidate (FN): %s [%s]",
				sc.Name, m.Sites, m.Verdict)
		}
	}
	if run.Static.Missed != 0 {
		t.Errorf("suite missed total = %d, want 0", run.Static.Missed)
	}
	if run.Static.Matched == 0 {
		t.Error("suite matched no candidates at all; the cross-validation is vacuous")
	}
}
