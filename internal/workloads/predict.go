package workloads

import (
	"repro/internal/classify"
	"repro/internal/core"
)

// ScenarioPredict summarizes the prediction stage of one execution:
// how many feasible candidates the solver emitted, how many the strict
// detector already saw (observed), how many required a reordering
// witness, and how many site pairs are new relative to the observed
// report.
type ScenarioPredict struct {
	Label      string
	Candidates int
	Observed   int
	Reordered  int
	New        int
}

// SuitePredict aggregates the prediction stage across a batch: one row
// per analyzed execution plus the merged classification of every
// predicted-new race (races the observed interleavings never
// exhibited, judged by the same dual-order replay as everything else).
type SuitePredict struct {
	Window    int
	Scenarios []ScenarioPredict

	Candidates int
	Observed   int
	Reordered  int

	// Merged is the cross-execution verdict set for predicted-new races
	// only; observed races stay in the run's main classification.
	Merged *classify.Classification
}

// BuildSuitePredict folds per-execution prediction results into the
// suite-level section. labels[i] names results[i]; nil results (and
// results whose analysis ran without the prediction stage, e.g. via an
// online fast path) are skipped. Returns nil when no execution carries
// a prediction — the section then renders as "stage not run".
func BuildSuitePredict(labels []string, results []*core.Result) *SuitePredict {
	out := &SuitePredict{}
	var parts []*classify.Classification
	any := false
	for i, res := range results {
		if res == nil || res.Predicted == nil {
			continue
		}
		any = true
		p := res.Predicted
		row := ScenarioPredict{
			Label:      labels[i],
			Candidates: len(p.Report.Candidates),
			New:        len(p.NewRaces.Races),
		}
		for _, c := range p.Report.Candidates {
			if c.Observed {
				row.Observed++
			}
		}
		row.Reordered = row.Candidates - row.Observed
		out.Window = p.Report.Window
		out.Scenarios = append(out.Scenarios, row)
		out.Candidates += row.Candidates
		out.Observed += row.Observed
		out.Reordered += row.Reordered
		parts = append(parts, p.Classification)
	}
	if !any {
		return nil
	}
	out.Merged = classify.Merge(parts...)
	return out
}
