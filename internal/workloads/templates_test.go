package workloads

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
)

// TestEachTemplateInIsolation runs every template in its own one-template
// scenario across several seeds and checks that the races it produces
// land in the Table-1 group its metadata declares. This localizes census
// regressions to a single template instead of the merged suite.
func TestEachTemplateInIsolation(t *testing.T) {
	for _, tm := range All() {
		tm := tm
		t.Run(tm.Name, func(t *testing.T) {
			var parts []*classify.Classification
			for seed := int64(1); seed <= 8; seed++ {
				s := Scenario{Name: "iso", Seed: 100*seed + 7, Templates: []Template{tm}}
				prog, err := s.Program()
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Analyze(prog, s.Config(), classify.Options{Scenario: s.Name, Seed: s.Seed})
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, res.Classification)
			}
			merged := classify.Merge(parts...)
			if len(merged.Races) == 0 {
				t.Fatalf("template %s produced no races over 8 seeds", tm.Name)
			}
			if len(merged.Races) != tm.Races {
				t.Errorf("template %s produced %d unique races, declares %d",
					tm.Name, len(merged.Races), tm.Races)
			}
			for _, r := range merged.Races {
				if got := TemplateOfSite(r.Sites.A); got == nil || got.Name != tm.Name {
					t.Errorf("race %v does not belong to template %s", r.Sites, tm.Name)
				}
				if r.Group != tm.ExpectGroup {
					t.Errorf("race %v: group %v, template %s expects %v (nsc=%d sc=%d rf=%d over %d instances)",
						r.Sites, r.Group, tm.Name, tm.ExpectGroup, r.NSC, r.SC, r.RF, r.Total)
				}
			}
		})
	}
}
