package workloads

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// countersExcludingSched drops the sched.* namespace (worker busy/idle
// nanoseconds are timing-dependent by construction) so the rest of the
// counter space can be compared exactly across worker counts.
func countersExcludingSched(snap obs.Snapshot) map[string]uint64 {
	out := make(map[string]uint64, len(snap.Counters))
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "sched.") {
			continue
		}
		out[name] = v
	}
	return out
}

// spanShape reduces a span tree to its deterministic skeleton — names,
// order, and counts, without the wall-clock and allocation totals.
func spanShape(spans []obs.SpanSnapshot) []string {
	var out []string
	var walk func(prefix string, spans []obs.SpanSnapshot)
	walk = func(prefix string, spans []obs.SpanSnapshot) {
		for _, sp := range spans {
			name := prefix + sp.Name
			out = append(out, fmt.Sprintf("%s#%d", name, sp.Count))
			walk(name+"/", sp.Children)
		}
	}
	walk("", spans)
	return out
}

// TestSuiteParallelMatchesSerial is the tentpole's determinism contract:
// the suite analyzed on one worker and on eight produces identical
// scenario results, identical merged classification, identical stage
// counters (sched.* excluded), and the same merged span ladder.
func TestSuiteParallelMatchesSerial(t *testing.T) {
	regSerial := obs.NewRegistry()
	serial, err := RunSuiteOpts(SuiteOptions{Seeds: 2, Jobs: 1, Registry: regSerial})
	if err != nil {
		t.Fatal(err)
	}
	regPar := obs.NewRegistry()
	par, err := RunSuiteOpts(SuiteOptions{Seeds: 2, Jobs: 8, Registry: regPar})
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Scenarios) != len(par.Scenarios) {
		t.Fatalf("scenario counts differ: %d vs %d", len(serial.Scenarios), len(par.Scenarios))
	}
	for i := range serial.Scenarios {
		a, b := serial.Scenarios[i], par.Scenarios[i]
		if a.Scenario.Name != b.Scenario.Name || a.Scenario.Seed != b.Scenario.Seed {
			t.Fatalf("scenario %d order differs: %s/%d vs %s/%d",
				i, a.Scenario.Name, a.Scenario.Seed, b.Scenario.Name, b.Scenario.Seed)
		}
		if !reflect.DeepEqual(a.Result.Classification, b.Result.Classification) {
			t.Errorf("scenario %s: classification differs between jobs=1 and jobs=8", a.Scenario.Name)
		}
	}
	if !reflect.DeepEqual(serial.Merged, par.Merged) {
		t.Error("merged classification differs between jobs=1 and jobs=8")
	}

	snapSerial, snapPar := regSerial.Snapshot(), regPar.Snapshot()
	if a, b := countersExcludingSched(snapSerial), countersExcludingSched(snapPar); !reflect.DeepEqual(a, b) {
		t.Errorf("stage counters differ between jobs=1 and jobs=8:\nserial: %v\nparallel: %v", a, b)
	}
	if a, b := spanShape(snapSerial.Spans), spanShape(snapPar.Spans); !reflect.DeepEqual(a, b) {
		t.Errorf("span ladder differs between jobs=1 and jobs=8:\nserial: %v\nparallel: %v", a, b)
	}
	if snapPar.Counters["sched.tasks_completed"] != uint64(len(par.Scenarios)) {
		t.Errorf("sched.tasks_completed = %d, want %d",
			snapPar.Counters["sched.tasks_completed"], len(par.Scenarios))
	}
}

// TestSuiteJobsDefaultsRunClean: the zero-value Jobs (GOMAXPROCS) and a
// width far beyond the work list both complete and agree with serial.
func TestSuiteJobsDefaultsRunClean(t *testing.T) {
	serial, err := RunSuiteOpts(SuiteOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{0, -3, 64} {
		run, err := RunSuiteOpts(SuiteOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(serial.Merged, run.Merged) {
			t.Errorf("jobs=%d: merged classification differs from serial", jobs)
		}
	}
}

// TestSuiteSeedLabels pins the scenario-label rule: plain names for a
// single-seed run, name#k once multiple seeds fan out.
func TestSuiteSeedLabels(t *testing.T) {
	single, err := RunSuiteOpts(SuiteOptions{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range single.Scenarios {
		for _, rr := range sr.Result.Classification.Races {
			for _, s := range rr.Samples {
				if strings.Contains(s.Scenario, "#") {
					t.Fatalf("single-seed sample labeled %q, want bare scenario name", s.Scenario)
				}
			}
		}
	}
	multi, err := RunSuiteOpts(SuiteOptions{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	sawSuffix := false
	for _, sr := range multi.Scenarios {
		for _, rr := range sr.Result.Classification.Races {
			for _, s := range rr.Samples {
				if strings.Contains(s.Scenario, "#") {
					sawSuffix = true
				}
			}
		}
	}
	if !sawSuffix {
		t.Error("multi-seed run produced no #k-labeled samples")
	}
}
