package workloads

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// The audit trail is a pure function of the suite inputs: running the
// offline half serially and on eight workers must produce byte-identical
// provenance files.
func TestSuiteAuditByteIdenticalAcrossJobs(t *testing.T) {
	serialReg := obs.NewRegistry()
	serial, err := RunSuiteOpts(SuiteOptions{Jobs: 1, Audit: true, Registry: serialReg})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuiteOpts(SuiteOptions{Jobs: 8, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Audit == nil || parallel.Audit == nil {
		t.Fatal("Audit option did not produce an audit file")
	}
	b1, err := serial.Audit.Marshal()
	if err != nil {
		t.Fatalf("serial audit file invalid: %v", err)
	}
	b8, err := parallel.Audit.Marshal()
	if err != nil {
		t.Fatalf("parallel audit file invalid: %v", err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("audit files diverge between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", b1, b8)
	}

	// Shape: one execution per suite slot, each analyzed slot hashed and
	// carrying races with complete per-instance evidence.
	if len(serial.Audit.Executions) != len(serial.Scenarios)+len(serial.Quarantined) {
		t.Fatalf("executions = %d, want %d scenarios + %d quarantined",
			len(serial.Audit.Executions), len(serial.Scenarios), len(serial.Quarantined))
	}
	var insts int
	for _, e := range serial.Audit.Executions {
		for _, r := range e.Races {
			insts += len(r.Instances)
		}
	}
	if want := serial.Merged.TotalInstances(); insts != want {
		t.Fatalf("audit instances = %d, want %d (merged classification total)", insts, want)
	}

	// At one worker the canonical cache derivation and the runtime memo
	// agree exactly: derived hits must equal the classify.memo.hits
	// counter of the serial run.
	hits, misses := serial.Audit.CacheHits()
	if got := serialReg.Counter("classify.memo.hits").Value(); uint64(hits) != got {
		t.Fatalf("derived cache hits = %d, runtime memo hits at jobs=1 = %d", hits, got)
	}
	if uint64(misses) != serialReg.Counter("classify.memo.misses").Value() {
		t.Fatalf("derived cache misses = %d, runtime = %d",
			misses, serialReg.Counter("classify.memo.misses").Value())
	}
	if hits == 0 {
		t.Error("suite exposes recurring instances; derived cache hits should be > 0")
	}
}
