package workloads

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
)

// ScenarioRun pairs a scenario with its full analysis.
type ScenarioRun struct {
	Scenario Scenario
	Result   *core.Result
}

// SuiteRun is the analysis of the whole 18-execution suite.
type SuiteRun struct {
	Scenarios []ScenarioRun
	Merged    *classify.Classification
}

// RunSuite records, replays, detects, and classifies every scenario, then
// merges the per-execution classifications into the cross-execution
// per-race verdicts of §5.2.1. db, when non-nil, suppresses races a
// developer already marked benign.
func RunSuite(db *classify.DB) (*SuiteRun, error) {
	return RunSuiteInstrumented(db, nil)
}

// RunSuiteInstrumented is RunSuite with pipeline metrics: every
// scenario's stages run under the merged "suite/record|replay|detect|
// classify" spans, and each scenario is additionally run once on a bare
// machine (no observer) under a "native" span — the §5.1 baseline the
// overhead ladder is measured against. A nil reg is exactly RunSuite.
func RunSuiteInstrumented(db *classify.DB, reg *obs.Registry) (*SuiteRun, error) {
	run := &SuiteRun{}
	var parts []*classify.Classification
	suite := reg.StartSpan("suite")
	defer suite.End()
	for _, s := range Scenarios() {
		prog, err := s.Program()
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
		}
		if reg != nil {
			if err := runNative(prog, s.Config(), reg); err != nil {
				return nil, fmt.Errorf("workloads: %s: native baseline: %w", s.Name, err)
			}
		}
		res, err := core.AnalyzeInstrumented(prog, s.Config(), classify.Options{
			Scenario: s.Name,
			Seed:     s.Seed,
			DB:       db,
		}, reg)
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
		}
		run.Scenarios = append(run.Scenarios, ScenarioRun{Scenario: s, Result: res})
		parts = append(parts, res.Classification)
	}
	run.Merged = classify.Merge(parts...)
	publishSuiteMetrics(reg, run)
	return run, nil
}

// runNative executes prog on a bare machine — no observer, no recorder —
// under the "native" span, giving the ladder its uninstrumented baseline.
func runNative(prog *isa.Program, cfg machine.Config, reg *obs.Registry) error {
	sp := reg.StartSpan("native")
	defer sp.End()
	cfg.Observer = nil
	m, err := machine.New(prog, cfg)
	if err != nil {
		return err
	}
	res := m.Run()
	reg.Counter("native.instructions").Add(res.TotalSteps)
	reg.Counter("native.executions").Inc()
	return nil
}

// publishSuiteMetrics records the merged suite verdicts (report.* is the
// fifth pipeline stage: what the tool hands to developers).
func publishSuiteMetrics(reg *obs.Registry, run *SuiteRun) {
	if reg == nil {
		return
	}
	benign, harmful := run.Merged.CountByVerdict()
	reg.Counter("report.scenarios").Add(uint64(len(run.Scenarios)))
	reg.Counter("report.unique_races").Add(uint64(len(run.Merged.Races)))
	reg.Counter("report.potentially_benign").Add(uint64(benign))
	reg.Counter("report.potentially_harmful").Add(uint64(harmful))
	reg.Counter("report.instances").Add(uint64(run.Merged.TotalInstances()))
}

// RunSuiteSeeds analyzes every scenario under `seeds` different scheduler
// seeds each (the base seed plus offsets) and merges everything. This is
// the paper's coverage lever: "the more the number of test cases
// analyzed, the more likely harmful data races will be discovered" (§1) —
// and the more instances accumulate per race, the greater the confidence
// in a potentially-benign verdict (§4.3).
func RunSuiteSeeds(db *classify.DB, seeds int) (*SuiteRun, error) {
	return RunSuiteSeedsInstrumented(db, seeds, nil)
}

// RunSuiteSeedsInstrumented is RunSuiteSeeds with the same pipeline
// metrics and native baseline as RunSuiteInstrumented.
func RunSuiteSeedsInstrumented(db *classify.DB, seeds int, reg *obs.Registry) (*SuiteRun, error) {
	if seeds < 1 {
		seeds = 1
	}
	run := &SuiteRun{}
	var parts []*classify.Classification
	suite := reg.StartSpan("suite")
	defer suite.End()
	for _, base := range Scenarios() {
		for k := 0; k < seeds; k++ {
			s := base
			s.Seed = base.Seed + int64(7777*k)
			prog, err := s.Program()
			if err != nil {
				return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
			}
			if reg != nil {
				if err := runNative(prog, s.Config(), reg); err != nil {
					return nil, fmt.Errorf("workloads: %s: native baseline: %w", s.Name, err)
				}
			}
			res, err := core.AnalyzeInstrumented(prog, s.Config(), classify.Options{
				Scenario: fmt.Sprintf("%s#%d", s.Name, k),
				Seed:     s.Seed,
				DB:       db,
			}, reg)
			if err != nil {
				return nil, fmt.Errorf("workloads: %s seed %d: %w", s.Name, s.Seed, err)
			}
			run.Scenarios = append(run.Scenarios, ScenarioRun{Scenario: s, Result: res})
			parts = append(parts, res.Classification)
		}
	}
	run.Merged = classify.Merge(parts...)
	publishSuiteMetrics(reg, run)
	return run, nil
}

// FindScenario returns the scenario with the given name, or an error.
func FindScenario(name string) (Scenario, error) {
	if name == "browse" {
		return BrowseScenario(), nil
	}
	if name == "service" {
		return ServiceScenario(), nil
	}
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workloads: unknown scenario %q", name)
}
