package workloads

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/core"
)

// ScenarioRun pairs a scenario with its full analysis.
type ScenarioRun struct {
	Scenario Scenario
	Result   *core.Result
}

// SuiteRun is the analysis of the whole 18-execution suite.
type SuiteRun struct {
	Scenarios []ScenarioRun
	Merged    *classify.Classification
}

// RunSuite records, replays, detects, and classifies every scenario, then
// merges the per-execution classifications into the cross-execution
// per-race verdicts of §5.2.1. db, when non-nil, suppresses races a
// developer already marked benign.
func RunSuite(db *classify.DB) (*SuiteRun, error) {
	run := &SuiteRun{}
	var parts []*classify.Classification
	for _, s := range Scenarios() {
		prog, err := s.Program()
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
		}
		res, err := core.Analyze(prog, s.Config(), classify.Options{
			Scenario: s.Name,
			Seed:     s.Seed,
			DB:       db,
		})
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
		}
		run.Scenarios = append(run.Scenarios, ScenarioRun{Scenario: s, Result: res})
		parts = append(parts, res.Classification)
	}
	run.Merged = classify.Merge(parts...)
	return run, nil
}

// RunSuiteSeeds analyzes every scenario under `seeds` different scheduler
// seeds each (the base seed plus offsets) and merges everything. This is
// the paper's coverage lever: "the more the number of test cases
// analyzed, the more likely harmful data races will be discovered" (§1) —
// and the more instances accumulate per race, the greater the confidence
// in a potentially-benign verdict (§4.3).
func RunSuiteSeeds(db *classify.DB, seeds int) (*SuiteRun, error) {
	if seeds < 1 {
		seeds = 1
	}
	run := &SuiteRun{}
	var parts []*classify.Classification
	for _, base := range Scenarios() {
		for k := 0; k < seeds; k++ {
			s := base
			s.Seed = base.Seed + int64(7777*k)
			prog, err := s.Program()
			if err != nil {
				return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
			}
			res, err := core.Analyze(prog, s.Config(), classify.Options{
				Scenario: fmt.Sprintf("%s#%d", s.Name, k),
				Seed:     s.Seed,
				DB:       db,
			})
			if err != nil {
				return nil, fmt.Errorf("workloads: %s seed %d: %w", s.Name, s.Seed, err)
			}
			run.Scenarios = append(run.Scenarios, ScenarioRun{Scenario: s, Result: res})
			parts = append(parts, res.Classification)
		}
	}
	run.Merged = classify.Merge(parts...)
	return run, nil
}

// FindScenario returns the scenario with the given name, or an error.
func FindScenario(name string) (Scenario, error) {
	if name == "browse" {
		return BrowseScenario(), nil
	}
	if name == "service" {
		return ServiceScenario(), nil
	}
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workloads: unknown scenario %q", name)
}
