package workloads

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/sched"
	"repro/internal/trace"
)

// ScenarioRun pairs a scenario with its full analysis.
type ScenarioRun struct {
	Scenario Scenario
	Result   *core.Result
}

// SuiteRun is the analysis of the whole 18-execution suite.
type SuiteRun struct {
	Scenarios []ScenarioRun
	Merged    *classify.Classification
	// Quarantined lists the scenario×seed items that failed — a program
	// that would not build, a recording that died, a log that would not
	// replay, or an analysis that panicked. The run completes with the
	// healthy scenarios; quarantined items carry their label and error
	// for the report's quarantine section.
	Quarantined []core.Quarantined
	// Static is the static cross-validation stage (nil unless
	// SuiteOptions.Static was set): per-scenario lint reports joined
	// against the dynamic evidence above.
	Static *SuiteStatic
	// Audit is the verdict-provenance trail (nil unless
	// SuiteOptions.Audit was set): one audit.Execution per scenario ×
	// seed slot, in suite order, quarantined slots included. The file
	// is a deterministic function of the suite inputs — byte-identical
	// at every Jobs count.
	Audit *audit.File
	// Predict is the prediction stage's aggregation (nil unless
	// SuiteOptions.Predict was set): per-execution candidate counts and
	// the merged classification of predicted-new races.
	Predict *SuitePredict
}

// SuiteOptions configures a suite analysis.
type SuiteOptions struct {
	// DB, when non-nil, suppresses races a developer already marked
	// benign.
	DB *classify.DB
	// Seeds is the number of scheduler seeds per scenario (the base
	// seed plus fixed offsets); values below 1 mean 1.
	Seeds int
	// Jobs bounds the worker pool for the offline half (replay, detect,
	// classify). Values below 1 mean GOMAXPROCS; 1 runs serially. The
	// merged output is byte-identical at every worker count.
	Jobs int
	// Registry, when non-nil, receives pipeline metrics: the merged
	// "suite/native|record|replay|detect|classify" span ladder, every
	// stage's counters, and the pool's sched.* metrics.
	Registry *obs.Registry
	// Static adds the static cross-validation stage: every base scenario
	// is lint-analyzed ahead of execution and its candidates joined
	// against the dynamic races and verdicts (SuiteRun.Static).
	Static bool
	// NoMemo disables the dual-order replay cache for the offline half.
	// The default (memoization on, one cache shared across the batch)
	// produces byte-identical suite output; NoMemo exists for
	// measurement and the equivalence tests.
	NoMemo bool
	// Audit assembles the verdict-provenance trail into SuiteRun.Audit:
	// per execution, the input log's content hash and per-race replay
	// evidence (live-in fingerprints, both orders' outcomes, canonical
	// cache attribution).
	Audit bool
	// Online attaches the incremental race detector to every recording.
	// A race-free online verdict lets the offline half skip that log's
	// replay+detect+classify pass entirely; any raced (or stopped)
	// recording takes the full offline pass, which remains the source of
	// truth. The suite report is byte-identical with Online on and off.
	Online bool
	// StopOnRace (with Online) ends each recording at the first
	// confirmed race. The truncated log still replays and classifies —
	// this trades instance coverage for recording time, so it is a
	// monitoring knob, not a default.
	StopOnRace bool
	// Predict adds the prediction stage to every analyzed execution:
	// feasible reorderings of the recorded schedule that would race are
	// proposed, classified by the same dual-order replay, and aggregated
	// into SuiteRun.Predict. Predict disables the online race-free fast
	// path — a race-free observed interleaving is exactly where
	// prediction has work to do.
	Predict bool
	// PredictWindow bounds the prediction solver's region-schedule
	// search distance (0 = the predict package default).
	PredictWindow int
}

// RunSuite records, replays, detects, and classifies every scenario, then
// merges the per-execution classifications into the cross-execution
// per-race verdicts of §5.2.1. db, when non-nil, suppresses races a
// developer already marked benign.
func RunSuite(db *classify.DB) (*SuiteRun, error) {
	return RunSuiteOpts(SuiteOptions{DB: db})
}

// RunSuiteInstrumented is RunSuite with pipeline metrics: every
// scenario's stages run under the merged "suite/record|replay|detect|
// classify" spans, and each scenario is additionally run once on a bare
// machine (no observer) under a "native" span — the §5.1 baseline the
// overhead ladder is measured against. A nil reg is exactly RunSuite.
func RunSuiteInstrumented(db *classify.DB, reg *obs.Registry) (*SuiteRun, error) {
	return RunSuiteOpts(SuiteOptions{DB: db, Registry: reg})
}

// RunSuiteOpts is the suite driver every other entry point delegates
// to. Recording is the online half of the pipeline and stays serial —
// the paper's premise is that the production run only pays for logging —
// while the offline analysis of every scenario × seed fans out across
// opts.Jobs workers with deterministic, input-order merging: the report,
// the merged classification, and the stage counters are identical at
// every worker count.
//
// The run has quarantine semantics: a scenario×seed that fails at any
// stage is skipped with its error recorded in SuiteRun.Quarantined (and
// counted on robust.quarantined), and the rest of the suite completes.
// The error return is reserved for failures that leave nothing to
// report.
func RunSuiteOpts(opts SuiteOptions) (*SuiteRun, error) {
	seeds := opts.Seeds
	if seeds < 1 {
		seeds = 1
	}
	reg := opts.Registry
	suite := reg.StartSpan("suite")
	defer suite.End()

	// Online half: record every scenario × seed serially, keeping the
	// native baseline next to each recording as before. A recording
	// that fails — or panics — quarantines its scenario×seed slot.
	type recording struct {
		scenario Scenario
		label    string
		slot     int
		log      *trace.Log
		machine  *machine.Result
	}
	run := &SuiteRun{}
	var recs []recording
	// Audit envelopes, one per scenario×seed slot in suite order;
	// classify fills each healthy slot's Races through the pointer.
	var audits []*audit.Execution
	slot := 0
	for _, base := range Scenarios() {
		// One assembly per scenario: the program does not depend on the
		// seed, only the machine configuration does.
		prog, progErr := base.Program()
		for k := 0; k < seeds; k++ {
			s := base
			s.Seed = base.Seed + int64(7777*k)
			label := s.Name
			if seeds > 1 {
				label = fmt.Sprintf("%s#%d", s.Name, k)
			}
			rec := recording{scenario: s, label: label, slot: slot}
			err := sched.Guard(reg, func() error {
				if progErr != nil {
					return fmt.Errorf("program: %w", progErr)
				}
				if reg != nil {
					if err := runNative(prog, s.Config(), reg); err != nil {
						return fmt.Errorf("native baseline: %w", err)
					}
				}
				var (
					log  *trace.Log
					mres *machine.Result
					err  error
				)
				if opts.Online {
					oc := record.OnlineConfig{Detect: true, StopOnFirstRace: opts.StopOnRace}
					log, mres, _, err = core.RecordOnlineInstrumented(prog, s.Config(), oc, reg)
				} else {
					log, mres, err = core.RecordInstrumented(prog, s.Config(), reg)
				}
				if err != nil {
					return fmt.Errorf("record: %w", err)
				}
				rec.log, rec.machine = log, mres
				return nil
			})
			if opts.Audit {
				ae := &audit.Execution{Scenario: label, Seed: s.Seed}
				if err == nil {
					ae.LogSHA256 = core.LogDigest(rec.log)
				} else {
					ae.Quarantined = err.Error()
				}
				audits = append(audits, ae)
			}
			if err != nil {
				run.Quarantined = append(run.Quarantined, core.Quarantined{Index: slot, Label: label, Err: err})
				reg.Counter("robust.quarantined").Inc()
				reg.EmitLabeled("quarantine", label, uint64(slot))
				reg.Logger().Warn("recording quarantined",
					"slot", slot, "scenario", label, "err", err.Error())
			} else {
				recs = append(recs, rec)
			}
			slot++
		}
	}

	// Offline half: replay, detect, and classify every healthy log
	// across the shared pool; results land in input order and bad logs
	// land in quarantine without aborting the batch.
	logs := make([]*trace.Log, len(recs))
	for i := range recs {
		logs[i] = recs[i].log
	}
	results, quarantined := core.AnalyzeLogsInstrumented(logs, func(i int) classify.Options {
		o := classify.Options{
			Scenario:      recs[i].label,
			Seed:          recs[i].scenario.Seed,
			DB:            opts.DB,
			NoMemo:        opts.NoMemo,
			Predict:       opts.Predict,
			PredictWindow: opts.PredictWindow,
		}
		if opts.Audit {
			o.Audit = audits[recs[i].slot]
		}
		return o
	}, opts.Jobs, reg)
	run.Quarantined = append(run.Quarantined, quarantined...)
	if opts.Audit {
		// Analysis-time quarantines supersede whatever classify may have
		// started writing before the failure.
		for _, q := range quarantined {
			ae := audits[recs[q.Index].slot]
			ae.Quarantined = q.Err.Error()
			ae.Races = nil
		}
		run.Audit = audit.NewFile()
		for _, ae := range audits {
			run.Audit.Executions = append(run.Audit.Executions, *ae)
		}
		run.Audit.DeriveCacheHits()
	}

	var parts []*classify.Classification
	var labels []string
	for i, res := range results {
		if res == nil {
			continue
		}
		res.Machine = recs[i].machine
		run.Scenarios = append(run.Scenarios, ScenarioRun{Scenario: recs[i].scenario, Result: res})
		parts = append(parts, res.Classification)
		labels = append(labels, recs[i].label)
	}
	run.Merged = classify.Merge(parts...)
	if opts.Predict {
		healthy := make([]*core.Result, 0, len(run.Scenarios))
		for _, sr := range run.Scenarios {
			healthy = append(healthy, sr.Result)
		}
		run.Predict = BuildSuitePredict(labels, healthy)
	}
	if opts.Static {
		run.Static = crossValidateSuite(run, opts.Jobs, reg)
	}
	publishSuiteMetrics(reg, run)
	return run, nil
}

// runNative executes prog on a bare machine — no observer, no recorder —
// under the "native" span, giving the ladder its uninstrumented baseline.
func runNative(prog *isa.Program, cfg machine.Config, reg *obs.Registry) error {
	sp := reg.StartSpan("native")
	defer sp.End()
	cfg.Observer = nil
	m, err := machine.New(prog, cfg)
	if err != nil {
		return err
	}
	res := m.Run()
	reg.Counter("native.instructions").Add(res.TotalSteps)
	reg.Counter("native.executions").Inc()
	return nil
}

// publishSuiteMetrics records the merged suite verdicts (report.* is the
// fifth pipeline stage: what the tool hands to developers).
func publishSuiteMetrics(reg *obs.Registry, run *SuiteRun) {
	if reg == nil {
		return
	}
	benign, harmful := run.Merged.CountByVerdict()
	reg.Counter("report.scenarios").Add(uint64(len(run.Scenarios)))
	reg.Counter("report.unique_races").Add(uint64(len(run.Merged.Races)))
	reg.Counter("report.potentially_benign").Add(uint64(benign))
	reg.Counter("report.potentially_harmful").Add(uint64(harmful))
	reg.Counter("report.instances").Add(uint64(run.Merged.TotalInstances()))
}

// RunSuiteSeeds analyzes every scenario under `seeds` different scheduler
// seeds each (the base seed plus offsets) and merges everything. This is
// the paper's coverage lever: "the more the number of test cases
// analyzed, the more likely harmful data races will be discovered" (§1) —
// and the more instances accumulate per race, the greater the confidence
// in a potentially-benign verdict (§4.3).
func RunSuiteSeeds(db *classify.DB, seeds int) (*SuiteRun, error) {
	return RunSuiteOpts(SuiteOptions{DB: db, Seeds: seeds})
}

// RunSuiteSeedsInstrumented is RunSuiteSeeds with the same pipeline
// metrics and native baseline as RunSuiteInstrumented.
func RunSuiteSeedsInstrumented(db *classify.DB, seeds int, reg *obs.Registry) (*SuiteRun, error) {
	return RunSuiteOpts(SuiteOptions{DB: db, Seeds: seeds, Registry: reg})
}

// FindScenario returns the scenario with the given name, or an error.
func FindScenario(name string) (Scenario, error) {
	if name == "browse" {
		return BrowseScenario(), nil
	}
	if name == "service" {
		return ServiceScenario(), nil
	}
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workloads: unknown scenario %q", name)
}
