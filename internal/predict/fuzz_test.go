package predict_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/predict"
	"repro/internal/progen"
	"repro/internal/record"
	"repro/internal/replay"
)

// FuzzPredict steers the prediction pass over arbitrary well-formed
// generated programs. Three contracts are under test: totality (the
// window solver must never panic and must terminate — every loop is
// bounded by the region count or the window), determinism (the same
// execution predicted twice yields the same report), and subsumption
// (every race the strict happens-before detector observed must appear
// among the predicted candidates, since an observed overlap is its own
// witness). The shape encoding is shared with progen.FuzzPipeline so a
// crasher found against the dynamic pipeline replays here directly.
func FuzzPredict(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(42), uint8(255))
	f.Add(int64(-3), uint8(0b10101))
	f.Add(int64(7), uint8(1<<5))
	f.Add(int64(99), uint8(1<<6|1<<7))
	f.Fuzz(func(t *testing.T, genSeed int64, cfgBits uint8) {
		r := rand.New(rand.NewSource(genSeed))
		cfg := progen.BitsConfig(cfgBits, r)
		src := progen.Generate(r, cfg)
		prog, err := asm.Assemble("fz", src)
		if err != nil {
			t.Fatalf("generated program failed to assemble: %v", err)
		}
		log, _, err := record.Run(prog, machine.Config{Seed: genSeed})
		if err != nil {
			t.Skipf("recording failed: %v", err)
		}
		exec, err := replay.Run(log, replay.Options{})
		if err != nil {
			t.Fatalf("replay diverged: %v", err)
		}
		rep := predict.Run(exec, predict.Options{})
		if rep == nil {
			t.Fatal("Run returned nil report")
		}
		predicted := map[hb.SitePair]bool{}
		for _, c := range rep.Candidates {
			predicted[c.Sites] = true
		}
		observed := hb.Detect(exec)
		for _, race := range observed.Races {
			if !predicted[race.Sites] {
				t.Fatalf("observed race %s not among %d predicted candidates",
					race.Sites, len(rep.Candidates))
			}
		}
		again := predict.Run(exec, predict.Options{})
		if !reflect.DeepEqual(rep, again) {
			t.Fatal("Run is not deterministic on the same execution")
		}
	})
}
