package predict_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/record"
	"repro/internal/replay"
)

func analyze(t *testing.T, src string, seed int64) (*replay.Execution, *hb.Report) {
	t.Helper()
	prog, err := asm.Assemble("predict", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exec, hb.Detect(exec)
}

const twoWorkers = `
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

// The handwritten shapes the agreement tests sweep: every synchronization
// idiom the solver must respect — unlocked sharing, a common lock,
// fork/join ordering, atomics — plus single-threaded control.
var shapes = map[string]string{
	"racy-counter": `
.entry main
.word n 0
worker:
  ldi r2, 8
wloop:
  ldi r4, n
rread:
  ld r5, [r4+0]
  addi r5, r5, 1
rwrite:
  st [r4+0], r5
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + twoWorkers,
	"locked-counter": `
.entry main
.word n 0
.word m 0
worker:
  ldi r2, 6
wloop:
  ldi r3, m
  lock [r3+0]
  ldi r4, n
lread:
  ld r5, [r4+0]
  addi r5, r5, 1
lwrite:
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + twoWorkers,
	"atomic-counter": `
.entry main
.word n 0
worker:
  ldi r2, 6
  ldi r6, 1
wloop:
  ldi r4, n
  xadd r5, [r4+0], r6
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + twoWorkers,
	"forkjoin-ordered": `
.entry main
.word n 0
worker:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  mov r1, r6
  sys join
  ldi r4, n
  ld r5, [r4+0]
  sys print
  halt
`,
	"single-thread": `
.entry main
.word n 0
main:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  halt
`,
}

// TestPredictionSubsumesObservation is the agreement contract: every
// race the strict happens-before detector observed must also appear
// among the prediction pass's candidates — overlap implies weak-HB
// concurrency, disjoint locksets, and an "observed" witness, so a
// predicted miss would be a soundness bug in one of the two engines.
func TestPredictionSubsumesObservation(t *testing.T) {
	for name, src := range shapes {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				exec, races := analyze(t, src, seed)
				rep := predict.Run(exec, predict.Options{})
				predicted := map[hb.SitePair]bool{}
				for _, c := range rep.Candidates {
					predicted[c.Sites] = true
				}
				for _, race := range races.Races {
					if !predicted[race.Sites] {
						t.Fatalf("seed %d: observed race %s not predicted (candidates: %d)",
							seed, race.Sites, len(rep.Candidates))
					}
				}
			}
		})
	}
}

// TestDeterministic pins that prediction is a pure function of the
// execution: two passes over the same replay yield identical reports.
func TestDeterministic(t *testing.T) {
	for name, src := range shapes {
		exec, _ := analyze(t, src, 3)
		a := predict.Run(exec, predict.Options{})
		b := predict.Run(exec, predict.Options{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: prediction is not deterministic", name)
		}
	}
}

// TestSynchronizedShapesPredictNothing: a correctly locked counter, an
// atomic counter, fork/join-ordered sharing, and a single-threaded
// program admit no feasible race — predicting one would be a false
// positive the replay classifier should never even see.
func TestSynchronizedShapesPredictNothing(t *testing.T) {
	for _, name := range []string{"locked-counter", "atomic-counter", "forkjoin-ordered", "single-thread"} {
		for seed := int64(1); seed <= 20; seed++ {
			exec, races := analyze(t, shapes[name], seed)
			if len(races.Races) != 0 {
				t.Fatalf("%s seed %d: expected no observed races, got %d", name, seed, len(races.Races))
			}
			rep := predict.Run(exec, predict.Options{})
			if len(rep.Candidates) != 0 {
				t.Fatalf("%s seed %d: predicted %d candidates on a race-free-by-construction shape; first: %s",
					name, seed, len(rep.Candidates), rep.Candidates[0].Sites)
			}
		}
	}
}

// TestRacyShapePredictsEverySeed: the unlocked counter admits a feasible
// race under every schedule, including ones where the scheduler happened
// to serialize the threads and the strict detector stays silent.
func TestRacyShapePredictsEverySeed(t *testing.T) {
	sawSilentObserver := false
	for seed := int64(1); seed <= 20; seed++ {
		exec, races := analyze(t, shapes["racy-counter"], seed)
		rep := predict.Run(exec, predict.Options{})
		if len(rep.Candidates) == 0 {
			t.Fatalf("seed %d: racy counter predicted no candidates", seed)
		}
		if len(rep.NewSites(races)) > 0 {
			sawSilentObserver = true
		}
		for _, c := range rep.Candidates {
			if !strings.Contains(c.Sites.String(), "rread") && !strings.Contains(c.Sites.String(), "rwrite") {
				t.Fatalf("seed %d: unexpected candidate sites %s", seed, c.Sites)
			}
		}
	}
	_ = sawSilentObserver // informational: some schedules observe everything
}

// TestWitnessShape checks the witness invariants on every candidate:
// observed witnesses name exactly the two racing regions; reordered
// witnesses are a chain of the later thread's regions (in schedule
// order) ending at the later racing region, starting at the earlier
// one, all within the window.
func TestWitnessShape(t *testing.T) {
	for name, src := range shapes {
		for seed := int64(1); seed <= 20; seed++ {
			exec, _ := analyze(t, src, seed)
			rep := predict.Run(exec, predict.Options{})
			for _, c := range rep.Candidates {
				w := c.Witness
				switch w.Kind {
				case "observed":
					if !c.Observed || len(w.Regions) != 2 {
						t.Fatalf("%s seed %d: malformed observed witness %+v", name, seed, w)
					}
				case "reordered":
					if c.Observed || len(w.Regions) < 2 {
						t.Fatalf("%s seed %d: malformed reordered witness %+v", name, seed, w)
					}
					first, last := w.Regions[0], w.Regions[len(w.Regions)-1]
					if last-first > rep.Window {
						t.Fatalf("%s seed %d: witness spans %d > window %d", name, seed, last-first, rep.Window)
					}
					laterTID := exec.Regions[last].TID
					for i, g := range w.Regions {
						if g < first || g > last {
							t.Fatalf("%s seed %d: witness region %d outside [%d,%d]", name, seed, g, first, last)
						}
						if i > 0 && exec.Regions[g].TID != laterTID {
							t.Fatalf("%s seed %d: witness chain region %d belongs to thread %d, want %d",
								name, seed, g, exec.Regions[g].TID, laterTID)
						}
						if i > 0 && g <= w.Regions[i-1] {
							t.Fatalf("%s seed %d: witness regions not ascending: %v", name, seed, w.Regions)
						}
					}
				default:
					t.Fatalf("%s seed %d: unknown witness kind %q", name, seed, w.Kind)
				}
			}
		}
	}
}

// TestWindowBound pins the window knob: a window of 1 can only reorder
// adjacent regions, so it never yields more candidates than the default.
func TestWindowBound(t *testing.T) {
	exec, _ := analyze(t, shapes["racy-counter"], 4)
	wide := predict.Run(exec, predict.Options{})
	narrow := predict.Run(exec, predict.Options{Window: 1})
	if narrow.Window != 1 || wide.Window != predict.DefaultWindow {
		t.Fatalf("window plumbing: narrow=%d wide=%d", narrow.Window, wide.Window)
	}
	if len(narrow.Candidates) > len(wide.Candidates) {
		t.Fatalf("narrow window found more candidates (%d) than the default (%d)",
			len(narrow.Candidates), len(wide.Candidates))
	}
	if narrow.Rejected.Window < wide.Rejected.Window {
		t.Fatalf("narrow window rejected fewer pairs on distance (%d < %d)",
			narrow.Rejected.Window, wide.Rejected.Window)
	}
}

// TestNewReportSubtractsObserved: NewReport must contain exactly the
// candidate site pairs the observed report lacks, grouped and sorted.
func TestNewReportSubtractsObserved(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		exec, races := analyze(t, shapes["racy-counter"], seed)
		rep := predict.Run(exec, predict.Options{})
		nr := rep.NewReport(races)
		if len(nr.Races) != len(rep.NewSites(races)) {
			t.Fatalf("seed %d: NewReport has %d races, NewSites %d", seed, len(nr.Races), len(rep.NewSites(races)))
		}
		for _, race := range nr.Races {
			if races.Race(race.Sites) != nil {
				t.Fatalf("seed %d: NewReport contains observed race %s", seed, race.Sites)
			}
			if len(race.Instances) == 0 {
				t.Fatalf("seed %d: predicted-new race %s has no instances", seed, race.Sites)
			}
		}
		for i := 1; i < len(nr.Races); i++ {
			a, b := nr.Races[i-1].Sites, nr.Races[i].Sites
			if a.A > b.A || (a.A == b.A && a.B >= b.B) {
				t.Fatalf("seed %d: NewReport races not strictly sorted", seed)
			}
		}
	}
}

// TestMetricsPublished: the predict.* counter family lands in the
// registry and agrees with the report.
func TestMetricsPublished(t *testing.T) {
	exec, _ := analyze(t, shapes["racy-counter"], 2)
	reg := obs.NewRegistry()
	rep := predict.Run(exec, predict.Options{Metrics: reg})
	snap := reg.Snapshot()
	if got := snap.Counters["predict.candidates"]; got != uint64(len(rep.Candidates)) {
		t.Fatalf("predict.candidates = %d, want %d", got, len(rep.Candidates))
	}
	if snap.Counters["predict.executions"] != 1 {
		t.Fatalf("predict.executions = %d, want 1", snap.Counters["predict.executions"])
	}
	if got := snap.Counters["predict.blocks"]; got != uint64(rep.Blocks) {
		t.Fatalf("predict.blocks = %d, want %d", got, rep.Blocks)
	}
}
