// Package predict proposes feasible data races beyond the observed
// interleaving — the prediction stage of ROADMAP item 2, in the spirit
// of RV-Predict and "Data Race Prediction for Inaccurate Traces".
//
// The strict happens-before detector (internal/hb) only reports access
// pairs whose sequencing regions actually overlapped in the recording;
// pairs the scheduler happened to separate in time are silently ordered
// even when no synchronization orders them. This pass re-examines the
// decoded trace in three stages:
//
//  1. Prefilter (lockset + weak happens-before): candidate pairs touch
//     the same address from different threads, at least one write,
//     neither atomic, with disjoint held-lock sets, and concurrent
//     under the *weak* happens-before order — program order plus
//     fork/join edges only. Dropping the unlock→lock and atomic edges
//     is what RV-Predict calls must-happen-before: a lock-induced
//     ordering is an accident of which thread won the lock, not a
//     constraint on reorderings.
//  2. Blocks: accesses are grouped into equivalence blocks — same
//     region, same PC, same address, same access kind (the held
//     lockset is constant within a region) — and one representative
//     pair per block pair stands in for the whole cross product,
//     collapsing the candidate space exactly the way the strict
//     detector dedups instances per (site pair, region pair, address).
//  3. Window solver: each surviving region pair must admit a concrete
//     witness schedule inside a bounded window of the recorded region
//     schedule. An overlapping pair is its own witness ("observed").
//     A separated pair (earlier, later) is feasible when the later
//     thread's intervening region chain can be hoisted to run directly
//     after the earlier racing region: every cross-thread weak-HB
//     predecessor of the chain (spawn of the thread, joined threads'
//     exits) already completed in the prefix, every lock the chain
//     holds is free at the hoist point, and no skipped region's write
//     feeds an address the chain reads — so the recorded values remain
//     valid along the witness and the replayed live-ins are trustworthy.
//
// Feasible candidates carry real recorded regions and accesses, so they
// flow into the dual-order classifier (internal/classify) unchanged:
// predicted pairs get live-in fingerprints exactly like observed ones
// and share the memo cache. Everything here is a deterministic function
// of the execution — candidate order never depends on worker count.
package predict

import (
	"sort"

	"repro/internal/hb"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// DefaultWindow is the region-schedule distance the solver searches
// when Options.Window is zero. Pairs further apart are not examined:
// the further the hoist, the weaker the claim that the recorded values
// still describe the reordered run (see docs/PREDICT.md).
const DefaultWindow = 64

// Options tunes a prediction pass.
type Options struct {
	// Window bounds the region-schedule distance between the two racing
	// regions of a reordered candidate (0 = DefaultWindow). Observed
	// (overlapping) pairs are exempt — they need no reordering.
	Window int
	// Metrics, when set, receives the predict.* counters. Nil is free.
	Metrics *obs.Registry
}

// Witness is the schedule evidence attached to a feasible candidate.
type Witness struct {
	// Kind is "observed" for pairs whose regions overlapped in the
	// recording, "reordered" for pairs the solver hoisted.
	Kind string
	// Regions lists the witness suffix as region Globals: the hoisted
	// chain of the later thread followed by the two racing regions. The
	// elided prefix is the recorded schedule up to (excluding) the first
	// racing region.
	Regions []int
}

// Candidate is one feasible predicted race pair. Instance points at the
// real recorded regions and accesses, so it classifies exactly like a
// detector instance.
type Candidate struct {
	Sites    hb.SitePair
	Instance hb.Instance
	Observed bool // the regions overlapped: the strict detector saw it too
	Witness  Witness
}

// Rejections counts window-solver verdicts against non-overlapping
// pairs, by the first constraint that failed.
type Rejections struct {
	Window  int // racing regions further apart than the window
	WeakHB  int // a chain region's fork/join predecessor is not in the prefix
	Lockset int // a chain region needs a lock another thread holds at the hoist point
	Value   int // a skipped write feeds an address the chain reads
}

// Report is the prediction pass output for one execution.
type Report struct {
	Candidates []*Candidate // feasible pairs, sorted by site pair then regions
	Window     int          // effective window

	PairsScreened int // block pairs that reached the prefilter
	Blocks        int // access blocks formed
	Rejected      Rejections
}

// NewSites returns the predicted site pairs the observed report does not
// contain — the races prediction found beyond the recorded interleaving.
func (r *Report) NewSites(observed *hb.Report) []hb.SitePair {
	var out []hb.SitePair
	seen := map[hb.SitePair]bool{}
	for _, c := range r.Candidates {
		if seen[c.Sites] || (observed != nil && observed.Race(c.Sites) != nil) {
			continue
		}
		seen[c.Sites] = true
		out = append(out, c.Sites)
	}
	return out
}

// NewReport assembles the predicted-new candidates (site pairs absent
// from the observed report) into an hb.Report the classifier consumes
// unchanged: instances point at real recorded regions, so dual-order
// replay, fingerprinting, and the memo cache all apply as-is.
func (r *Report) NewReport(observed *hb.Report) *hb.Report {
	races := map[hb.SitePair]*hb.Race{}
	rep := &hb.Report{}
	for _, c := range r.Candidates {
		if observed != nil && observed.Race(c.Sites) != nil {
			continue
		}
		race := races[c.Sites]
		if race == nil {
			race = &hb.Race{Sites: c.Sites}
			races[c.Sites] = race
			rep.Races = append(rep.Races, race)
		}
		race.Instances = append(race.Instances, c.Instance)
		rep.TotalInstances++
	}
	sort.Slice(rep.Races, func(i, j int) bool {
		a, b := rep.Races[i].Sites, rep.Races[j].Sites
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return rep
}

// regionInfo is the per-region precomputation the prefilter and the
// solver share.
type regionInfo struct {
	held   []uint64        // locks held during the region, sorted
	heldAt []lockOwner     // global lock table at region start
	reads  map[uint64]bool // addresses read (non-atomic)
	writes map[uint64]bool // addresses written (non-atomic)
}

type lockOwner struct {
	addr uint64
	tid  int
}

// Run predicts feasible races over a replayed execution. The observed
// report (may be nil) is only consulted for the Observed marking via
// region overlap — prediction is independent of it; callers use
// NewReport/NewSites to subtract the observed set.
func Run(exec *replay.Execution, opts Options) *Report {
	window := opts.Window
	if window <= 0 {
		window = DefaultWindow
	}
	rep := &Report{Window: window}

	weak := weakClocks(exec)
	infos := precompute(exec)
	spawnReg, lastReg := forkJoinIndex(exec)

	// Per-address screening and reference layout, mirroring the strict
	// detector: only addresses touched by two or more threads with at
	// least one non-atomic write go further, and survivors are visited
	// in ascending address order so the output is deterministic.
	type ref struct {
		acc replay.Access
		reg *replay.Region
	}
	byAddr := map[uint64][]ref{}
	firstTID := map[uint64]int{}
	multi := map[uint64]bool{}
	hasWrite := map[uint64]bool{}
	for _, region := range exec.Regions {
		for _, acc := range region.Accesses {
			if acc.Atomic {
				continue
			}
			if t, ok := firstTID[acc.Addr]; !ok {
				firstTID[acc.Addr] = region.TID
			} else if t != region.TID {
				multi[acc.Addr] = true
			}
			hasWrite[acc.Addr] = hasWrite[acc.Addr] || acc.IsWrite
			byAddr[acc.Addr] = append(byAddr[acc.Addr], ref{acc, region})
		}
	}
	var addrs []uint64
	for addr := range byAddr {
		if multi[addr] && hasWrite[addr] {
			addrs = append(addrs, addr)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	siteOf := func(pc int) string { return exec.Prog.SiteOf(pc) }

	// Block representatives per (region, PC, kind): the first access of
	// each kind at each PC within a region stands in for the whole block
	// (held locksets are region-constant, so blocks never split on them).
	type block struct {
		reg *replay.Region
		acc replay.Access
	}
	var emitted []hb.SitePair
	for _, addr := range addrs {
		refs := byAddr[addr]
		// Run-split by region (refs arrive in schedule order).
		type group struct {
			reg           *replay.Region
			reads, writes []block
		}
		var groups []group
		for i := 0; i < len(refs); {
			g := group{reg: refs[i].reg}
			seenR := map[int]bool{}
			seenW := map[int]bool{}
			j := i
			for j < len(refs) && refs[j].reg == g.reg {
				acc := refs[j].acc
				if acc.IsWrite {
					if !seenW[acc.PC] {
						seenW[acc.PC] = true
						g.writes = append(g.writes, block{g.reg, acc})
					}
				} else if !seenR[acc.PC] {
					seenR[acc.PC] = true
					g.reads = append(g.reads, block{g.reg, acc})
				}
				j++
			}
			rep.Blocks += len(g.reads) + len(g.writes)
			groups = append(groups, g)
			i = j
		}

		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				ga, gb := &groups[i], &groups[j]
				if ga.reg.TID == gb.reg.TID {
					continue
				}
				// Region-level prefilter: weak-HB concurrency and
				// disjoint held locksets hold for every block pair of
				// the two regions, so test them once.
				if !weak[ga.reg.Global].Concurrent(weak[gb.reg.Global]) {
					continue
				}
				if intersects(infos[ga.reg.Global].held, infos[gb.reg.Global].held) {
					continue
				}
				// Window feasibility is also a property of the region
				// pair (plus the racing address for the value check).
				wit, ok := feasible(exec, infos, spawnReg, lastReg, ga.reg, gb.reg, addr, window, &rep.Rejected)
				if !ok {
					continue
				}
				emitted = emitted[:0]
				emit := func(a, b block) {
					rep.PairsScreened++
					sites := hb.MakeSitePair(siteOf(a.acc.PC), siteOf(b.acc.PC))
					for _, e := range emitted {
						if e == sites {
							return
						}
					}
					emitted = append(emitted, sites)
					rep.Candidates = append(rep.Candidates, &Candidate{
						Sites: sites,
						Instance: hb.Instance{
							First: a.acc, Second: b.acc,
							RegionA: a.reg, RegionB: b.reg,
							Addr: addr,
						},
						Observed: wit.Kind == "observed",
						Witness:  wit,
					})
				}
				for _, w := range ga.writes {
					for _, x := range gb.writes {
						emit(w, x)
					}
					for _, r := range gb.reads {
						emit(w, r)
					}
				}
				for _, r := range ga.reads {
					for _, w := range gb.writes {
						emit(r, w)
					}
				}
			}
		}
	}

	sort.SliceStable(rep.Candidates, func(i, j int) bool {
		a, b := rep.Candidates[i], rep.Candidates[j]
		if a.Sites != b.Sites {
			if a.Sites.A != b.Sites.A {
				return a.Sites.A < b.Sites.A
			}
			return a.Sites.B < b.Sites.B
		}
		if a.Instance.RegionA.Global != b.Instance.RegionA.Global {
			return a.Instance.RegionA.Global < b.Instance.RegionA.Global
		}
		if a.Instance.RegionB.Global != b.Instance.RegionB.Global {
			return a.Instance.RegionB.Global < b.Instance.RegionB.Global
		}
		return a.Instance.Addr < b.Instance.Addr
	})

	if reg := opts.Metrics; reg != nil {
		reg.Counter("predict.executions").Inc()
		reg.Counter("predict.blocks").Add(uint64(rep.Blocks))
		reg.Counter("predict.pairs_screened").Add(uint64(rep.PairsScreened))
		reg.Counter("predict.candidates").Add(uint64(len(rep.Candidates)))
		observed := 0
		for _, c := range rep.Candidates {
			if c.Observed {
				observed++
			}
		}
		reg.Counter("predict.candidates_observed").Add(uint64(observed))
		reg.Counter("predict.candidates_reordered").Add(uint64(len(rep.Candidates) - observed))
		reg.Counter("predict.rejected_window").Add(uint64(rep.Rejected.Window))
		reg.Counter("predict.rejected_weakhb").Add(uint64(rep.Rejected.WeakHB))
		reg.Counter("predict.rejected_lockset").Add(uint64(rep.Rejected.Lockset))
		reg.Counter("predict.rejected_value").Add(uint64(rep.Rejected.Value))
		reg.Emit("predict.candidates", uint64(len(rep.Candidates)))
	}
	return rep
}

// feasible decides whether the region pair (a, b) admits a witness
// schedule within the window, and returns it. Overlapping pairs are
// their own witness. Otherwise the later region's thread chain is
// hoisted to run directly after the earlier racing region; the checks
// are ordered cheapest-first and the first failure is counted.
func feasible(exec *replay.Execution, infos []regionInfo, spawnReg, lastReg map[int]int,
	a, b *replay.Region, addr uint64, window int, rej *Rejections) (Witness, bool) {
	if a.Global > b.Global {
		a, b = b, a
	}
	if a.Overlaps(b) {
		return Witness{Kind: "observed", Regions: []int{a.Global, b.Global}}, true
	}
	if b.Global-a.Global > window {
		rej.Window++
		return Witness{}, false
	}

	// chain: b's thread's regions strictly between a and b in the
	// schedule; skipped: everything else in that span (including a's own
	// thread's later regions — they are deferred past the racing pair).
	var chain, skipped []*replay.Region
	for g := a.Global + 1; g < b.Global; g++ {
		r := exec.Regions[g]
		if r.TID == b.TID {
			chain = append(chain, r)
		} else {
			skipped = append(skipped, r)
		}
	}

	hoisted := append(chain[:len(chain):len(chain)], b)

	// Weak-HB: every cross-thread predecessor of the hoisted chain (and
	// of b itself) must already have completed in the prefix — the spawn
	// of b's thread, and the exit of any thread a chain region joins.
	for _, c := range hoisted {
		if c.StartKind == trace.SeqStart {
			if g, ok := spawnReg[c.TID]; ok && g >= a.Global {
				rej.WeakHB++
				return Witness{}, false
			}
		}
		if c.JoinTarget >= 0 {
			if g, ok := lastReg[c.JoinTarget]; !ok || g >= a.Global {
				rej.WeakHB++
				return Witness{}, false
			}
		}
	}

	// Lockset: every lock the chain (or b) holds must be free — or held
	// by b's own thread — at the hoist point, i.e. in the recorded lock
	// table at a's region start.
	for _, c := range hoisted {
		for _, l := range infos[c.Global].held {
			for _, own := range infos[a.Global].heldAt {
				if own.addr == l && own.tid != b.TID {
					rej.Lockset++
					return Witness{}, false
				}
			}
		}
	}

	// Value consistency: hoisting must not change what any hoisted
	// region reads, or the recorded live-ins stop describing the witness
	// run. Chain regions ran after the skipped regions (and after a) in
	// the recording; in the witness they run before both, so no skipped
	// write — and no write of a — may feed a chain read. For b itself
	// the racing address is exempt: disagreement there is the race, and
	// the dual-order classifier replays both resolutions of it.
	for _, c := range chain {
		ci := &infos[c.Global]
		for rd := range ci.reads {
			if infos[a.Global].writes[rd] {
				rej.Value++
				return Witness{}, false
			}
			for _, s := range skipped {
				if infos[s.Global].writes[rd] {
					rej.Value++
					return Witness{}, false
				}
			}
		}
	}
	bi := &infos[b.Global]
	for rd := range bi.reads {
		if rd != addr && infos[a.Global].writes[rd] {
			rej.Value++
			return Witness{}, false
		}
		for _, s := range skipped {
			if infos[s.Global].writes[rd] {
				rej.Value++
				return Witness{}, false
			}
		}
	}

	wit := Witness{Kind: "reordered", Regions: make([]int, 0, len(chain)+2)}
	wit.Regions = append(wit.Regions, a.Global)
	for _, c := range chain {
		wit.Regions = append(wit.Regions, c.Global)
	}
	wit.Regions = append(wit.Regions, b.Global)
	return wit, true
}

// weakClocks computes one vector clock per region under the weak
// happens-before order: thread program order plus spawn→child-start and
// child-end→join edges. Unlock→lock and atomic edges are deliberately
// absent — those orderings are scheduling accidents the solver is
// allowed to undo. Structurally this mirrors hb.RegionClocks minus the
// lock/atomic cases; overlapping regions are always weak-concurrent
// (fork/join-ordered regions cannot overlap), so prediction subsumes
// the strict detector's positives.
func weakClocks(exec *replay.Execution) []vclock.VC {
	nThreads := len(exec.Threads)
	clocks := make([]vclock.VC, len(exec.Regions))
	threadVC := make(map[int]vclock.VC, nThreads)
	endVC := make(map[int]vclock.VC)
	spawnParent := spawnParents(exec)

	for _, reg := range exec.Regions {
		tid := reg.TID
		vc, started := threadVC[tid]
		if !started {
			vc = vclock.New(nThreads)
		}
		switch reg.StartKind {
		case trace.SeqStart:
			if parent, ok := spawnParent[tid]; ok {
				vc = vc.Join(threadVC[parent])
			}
		case trace.SeqSyscall:
			if reg.JoinTarget >= 0 {
				if child, ok := endVC[reg.JoinTarget]; ok {
					vc = vc.Join(child)
				}
			}
		}
		vc = vc.Tick(tid)
		clocks[reg.Global] = vc.Clone()
		threadVC[tid] = vc
		if reg.EndKind == trace.SeqEnd {
			endVC[tid] = vc.Clone()
		}
	}
	return clocks
}

// spawnParents maps each spawned thread to its parent, identified by
// matching the child's start timestamp against spawn sequencers — the
// same derivation hb.RegionClocks uses.
func spawnParents(exec *replay.Execution) map[int]int {
	spawnParent := make(map[int]int)
	for _, tl := range exec.Log.Threads {
		for _, s := range tl.Seqs {
			if s.Kind == trace.SeqSyscall && s.Aux == isa.SysSpawn {
				for _, child := range exec.Log.Threads {
					if child.TID != tl.TID && child.StartTS == s.TS {
						spawnParent[child.TID] = tl.TID
					}
				}
			}
		}
	}
	return spawnParent
}

// precompute walks the schedule once and fills the per-region facts the
// prefilter and solver consult: the held-lock set during the region,
// the global lock table at region start, and the region's non-atomic
// read/write address sets.
func precompute(exec *replay.Execution) []regionInfo {
	infos := make([]regionInfo, len(exec.Regions))
	heldBy := map[int][]uint64{} // tid -> sorted held locks
	for _, reg := range exec.Regions {
		// Snapshot the global lock table before applying this region's
		// opening synchronization.
		var table []lockOwner
		for tid, locks := range heldBy {
			for _, l := range locks {
				table = append(table, lockOwner{addr: l, tid: tid})
			}
		}
		sort.Slice(table, func(i, j int) bool {
			if table[i].addr != table[j].addr {
				return table[i].addr < table[j].addr
			}
			return table[i].tid < table[j].tid
		})

		switch reg.StartKind {
		case trace.SeqLock:
			heldBy[reg.TID] = insertSorted(heldBy[reg.TID], reg.SyncAddr)
		case trace.SeqUnlock:
			heldBy[reg.TID] = removeSorted(heldBy[reg.TID], reg.SyncAddr)
		}

		info := &infos[reg.Global]
		info.heldAt = table
		info.held = append([]uint64(nil), heldBy[reg.TID]...)
		info.reads = map[uint64]bool{}
		info.writes = map[uint64]bool{}
		for _, acc := range reg.Accesses {
			if acc.Atomic {
				continue
			}
			if acc.IsWrite {
				info.writes[acc.Addr] = true
			} else {
				info.reads[acc.Addr] = true
			}
		}
	}
	return infos
}

// forkJoinIndex returns, per thread, the Global of the region whose
// opening spawn created it, and the Global of its final region (the
// completion a join waits for).
func forkJoinIndex(exec *replay.Execution) (spawnReg, lastReg map[int]int) {
	spawnReg = map[int]int{}
	lastReg = map[int]int{}
	for _, reg := range exec.Regions {
		if reg.SpawnChild >= 0 {
			spawnReg[reg.SpawnChild] = reg.Global
		}
		lastReg[reg.TID] = reg.Global
	}
	return spawnReg, lastReg
}

func insertSorted(s []uint64, v uint64) []uint64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []uint64, v uint64) []uint64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

func intersects(a, b []uint64) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
