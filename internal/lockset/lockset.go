// Package lockset implements an Eraser-style lockset race detector as the
// baseline the paper contrasts against (§2.2.2).
//
// Eraser checks the locking discipline: every shared variable should be
// protected by at least one lock held on every access. Per address it
// tracks a state machine (virgin → exclusive → shared → shared-modified)
// and a candidate lockset that is intersected with the accessor's held
// locks; a warning fires when the candidate set becomes empty in the
// shared-modified state. The discipline check is heuristic: correctly
// synchronized idioms that do not use locks (user-constructed
// synchronization, fork/join sharing, atomics-based protocols) produce
// false positives — which is exactly the contrast with the happens-before
// detector that the comparison benchmark quantifies.
package lockset

import (
	"sort"

	"repro/internal/replay"
	"repro/internal/trace"
)

// State is the Eraser per-address sharing state.
type State uint8

const (
	Virgin State = iota
	Exclusive
	Shared
	SharedModified
)

func (s State) String() string {
	switch s {
	case Virgin:
		return "virgin"
	case Exclusive:
		return "exclusive"
	case Shared:
		return "shared"
	case SharedModified:
		return "shared-modified"
	}
	return "state(?)"
}

// Warning is one reported locking-discipline violation.
type Warning struct {
	Addr      uint64
	Site      string // access that emptied the candidate lockset
	OtherSite string // an earlier access site to the same address from another thread
	Write     bool
	// Pos is the position of the warning access in the replayed schedule
	// (a global access index across all regions). Warnings are reported
	// in Pos order, so the first discipline violation of the execution
	// always leads and the output is byte-stable across runs — a map
	// iteration can never reorder it.
	Pos uint64
}

// Report is the detector output.
type Report struct {
	Warnings []*Warning
	// Checked counts addresses that reached a shared state.
	Checked int
}

// lockSet is a small immutable set of lock addresses.
type lockSet map[uint64]struct{}

func (ls lockSet) clone() lockSet {
	c := make(lockSet, len(ls))
	for k := range ls {
		c[k] = struct{}{}
	}
	return c
}

func (ls lockSet) intersect(o lockSet) lockSet {
	out := make(lockSet)
	for k := range ls {
		if _, ok := o[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

type addrState struct {
	state     State
	firstTid  int
	candidate lockSet
	lastSite  string
	warned    bool
}

// Detect runs Eraser over the replayed execution. Accesses are visited in
// region-schedule order; each thread's held-lock set is reconstructed from
// the regions' opening lock/unlock annotations.
func Detect(exec *replay.Execution) *Report {
	held := make(map[int]lockSet)
	states := make(map[uint64]*addrState)
	var warnings []*Warning

	pos := uint64(0)
	for _, reg := range exec.Regions {
		h := held[reg.TID]
		if h == nil {
			h = make(lockSet)
			held[reg.TID] = h
		}
		switch reg.StartKind {
		case trace.SeqLock:
			h[reg.SyncAddr] = struct{}{}
		case trace.SeqUnlock:
			delete(h, reg.SyncAddr)
		}
		for _, acc := range reg.Accesses {
			pos++
			if acc.Atomic {
				continue
			}
			visit(exec, states, &warnings, acc, h, pos)
		}
	}

	rep := &Report{Warnings: warnings}
	for _, st := range states {
		if st.state >= Shared {
			rep.Checked++
		}
	}
	// Trace-position order: the first empty-intersection access of the
	// execution reports first. (Addr breaks impossible ties defensively.)
	sort.Slice(rep.Warnings, func(i, j int) bool {
		if rep.Warnings[i].Pos != rep.Warnings[j].Pos {
			return rep.Warnings[i].Pos < rep.Warnings[j].Pos
		}
		return rep.Warnings[i].Addr < rep.Warnings[j].Addr
	})
	return rep
}

func visit(exec *replay.Execution, states map[uint64]*addrState, warnings *[]*Warning, acc replay.Access, h lockSet, pos uint64) {
	st := states[acc.Addr]
	if st == nil {
		st = &addrState{state: Virgin, firstTid: acc.TID}
		states[acc.Addr] = st
	}
	site := acc.Site(exec.Prog)

	switch st.state {
	case Virgin:
		st.state = Exclusive
		st.firstTid = acc.TID
	case Exclusive:
		if acc.TID == st.firstTid {
			break
		}
		// Second thread: initialize the candidate set and transition.
		st.candidate = h.clone()
		if acc.IsWrite {
			st.state = SharedModified
		} else {
			st.state = Shared
		}
	case Shared:
		st.candidate = st.candidate.intersect(h)
		if acc.IsWrite {
			st.state = SharedModified
		}
	case SharedModified:
		st.candidate = st.candidate.intersect(h)
	}

	if st.state == SharedModified && len(st.candidate) == 0 && !st.warned {
		st.warned = true
		*warnings = append(*warnings, &Warning{
			Addr:      acc.Addr,
			Site:      site,
			OtherSite: st.lastSite,
			Write:     acc.IsWrite,
			Pos:       pos,
		})
	}
	st.lastSite = site
}
