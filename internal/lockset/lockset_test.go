package lockset

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/replay"
)

func analyze(t *testing.T, src string, seed int64) *Report {
	t.Helper()
	prog, err := asm.Assemble("ls", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Detect(exec)
}

const spawnTwo = `
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

func TestConsistentLockingIsClean(t *testing.T) {
	src := `
.entry main
.word mu 0
.word n 0
worker:
  ldi r2, 15
wloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + spawnTwo
	for seed := int64(1); seed <= 8; seed++ {
		rep := analyze(t, src, seed)
		if len(rep.Warnings) != 0 {
			t.Fatalf("seed %d: consistent locking produced %d warnings (first at %s)",
				seed, len(rep.Warnings), rep.Warnings[0].Site)
		}
		if rep.Checked == 0 {
			t.Fatalf("seed %d: shared counter never reached shared state", seed)
		}
	}
}

func TestUnlockedSharedCounterWarns(t *testing.T) {
	src := `
.entry main
.word n 0
worker:
  ldi r2, 15
wloop:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + spawnTwo
	warned := false
	for seed := int64(1); seed <= 8 && !warned; seed++ {
		rep := analyze(t, src, seed)
		warned = len(rep.Warnings) > 0
	}
	if !warned {
		t.Error("unlocked shared counter never warned")
	}
}

func TestTwoLocksInconsistentlyUsedWarn(t *testing.T) {
	// Worker A protects n with mu1, worker B with mu2: candidate set
	// empties even though every access is "locked".
	src := `
.entry main
.word mu1 0
.word mu2 0
.word n 0
workerA:
  ldi r2, 10
aloop:
  ldi r3, mu1
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, aloop
  ldi r1, 0
  sys exit
workerB:
  ldi r2, 10
bloop:
  ldi r3, mu2
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, bloop
  ldi r1, 0
  sys exit
main:
  ldi r1, workerA
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, workerB
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`
	warned := false
	for seed := int64(1); seed <= 8 && !warned; seed++ {
		rep := analyze(t, src, seed)
		warned = len(rep.Warnings) > 0
	}
	if !warned {
		t.Error("inconsistent two-lock discipline never warned")
	}
}

func TestForkJoinSharingIsAFalsePositive(t *testing.T) {
	// Parent writes before spawn; child writes; parent reads after join.
	// Perfectly ordered by fork/join (hb reports nothing), but no lock is
	// ever held: Eraser warns. This is the classic lockset false positive.
	src := `
.entry main
.word g 0
child:
  ldi r2, g
  ld r3, [r2+0]
  addi r3, r3, 5
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r2, g
  ldi r3, 1
  st [r2+0], r3
  ldi r1, child
  ldi r2, 0
  sys spawn
  sys join
  ldi r2, g
  ld r4, [r2+0]
  addi r4, r4, 1
  st [r2+0], r4
  halt
`
	rep := analyze(t, src, 3)
	if len(rep.Warnings) == 0 {
		t.Error("fork/join sharing should be a lockset false positive")
	}
}

func TestSingleThreadNeverWarns(t *testing.T) {
	src := `
.word g 0
main:
  ldi r2, g
  ldi r1, 30
loop:
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  addi r1, r1, -1
  bne r1, r0, loop
  halt
`
	rep := analyze(t, src, 1)
	if len(rep.Warnings) != 0 {
		t.Error("single-threaded program warned")
	}
	if rep.Checked != 0 {
		t.Error("nothing should reach shared state")
	}
}

func TestReadSharedDataDoesNotWarn(t *testing.T) {
	// Both workers only read g after the parent initialized it pre-spawn:
	// read-shared data stays in Shared, no warning.
	src := `
.entry main
.word g 41
worker:
  ldi r2, g
  ld r3, [r2+0]
  ld r4, [r2+0]
  ldi r1, 0
  sys exit
` + spawnTwo
	for seed := int64(1); seed <= 6; seed++ {
		rep := analyze(t, src, seed)
		if len(rep.Warnings) != 0 {
			t.Fatalf("seed %d: read-only sharing warned", seed)
		}
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Virgin, Exclusive, Shared, SharedModified} {
		if s.String() == "state(?)" {
			t.Errorf("state %d unnamed", s)
		}
	}
}
