// Package progen generates random—but well-formed and terminating—
// multi-threaded RVM programs for property testing. Every generated
// program:
//
//   - terminates (all loops are counted down from bounded constants),
//   - never deadlocks (locks are acquired and released in strict pairs,
//     one lock held at a time),
//   - only touches declared globals, its own stack, or heap blocks it
//     allocated,
//
// so pipeline properties (record→replay determinism, detector sanity,
// classifier totality) can be checked over arbitrary shapes without the
// noise of intentionally crashing programs.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	Workers   int // number of spawned threads (1..8)
	Globals   int // shared words (1..8)
	Blocks    int // straight-line blocks per worker body
	MaxIters  int // loop bound per worker (1..32)
	UseLocks  bool
	UseAtomic bool
	UseRMW    bool
	UseSysnop bool
}

// Random samples a configuration from r.
func Random(r *rand.Rand) Config {
	return Config{
		Workers:   1 + r.Intn(4),
		Globals:   1 + r.Intn(5),
		Blocks:    1 + r.Intn(4),
		MaxIters:  1 + r.Intn(12),
		UseLocks:  r.Intn(2) == 0,
		UseAtomic: r.Intn(2) == 0,
		UseRMW:    r.Intn(2) == 0,
		UseSysnop: r.Intn(2) == 0,
	}
}

// BitsConfig decodes a fuzzer-controlled byte into a Config, drawing the
// loop bound from r. It is the shared shape-encoding of the pipeline and
// static-analyzer fuzz targets, so a crashing input found by one can be
// replayed against the other.
func BitsConfig(bits uint8, r *rand.Rand) Config {
	return Config{
		Workers:   1 + int(bits&3),
		Globals:   1 + int((bits>>2)&3),
		Blocks:    1 + int((bits>>4)&1),
		MaxIters:  1 + r.Intn(6),
		UseLocks:  bits&(1<<5) != 0,
		UseAtomic: bits&(1<<6) != 0,
		UseRMW:    bits&(1<<7) != 0,
		UseSysnop: true,
	}
}

// Generate emits assembly for a random program under cfg, deterministic
// in r's state.
func Generate(r *rand.Rand, cfg Config) string {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Globals < 1 {
		cfg.Globals = 1
	}
	var b strings.Builder
	b.WriteString(".entry main\n.word mu 0\n")
	for g := 0; g < cfg.Globals; g++ {
		fmt.Fprintf(&b, ".word g%d %d\n", g, r.Intn(10))
	}

	for w := 0; w < cfg.Workers; w++ {
		genWorker(&b, r, cfg, w)
	}

	// main: spawn all workers, join all, print the globals.
	b.WriteString("main:\n")
	for w := 0; w < cfg.Workers; w++ {
		fmt.Fprintf(&b, "  ldi r1, w%d\n  ldi r2, %d\n  sys spawn\n  mov r%d, r1\n", w, r.Intn(8), 8+w%6)
	}
	for w := 0; w < cfg.Workers; w++ {
		fmt.Fprintf(&b, "  mov r1, r%d\n  sys join\n", 8+w%6)
	}
	for g := 0; g < cfg.Globals; g++ {
		fmt.Fprintf(&b, "  ldi r2, g%d\n  ld r1, [r2+0]\n  sys print\n", g)
	}
	b.WriteString("  halt\n")
	return b.String()
}

// genWorker writes one worker body: a counted loop of random blocks.
func genWorker(b *strings.Builder, r *rand.Rand, cfg Config, w int) {
	iters := 1 + r.Intn(cfg.MaxIters)
	fmt.Fprintf(b, "w%d:\n  ldi r7, %d\n", w, iters)
	fmt.Fprintf(b, "w%d_loop:\n", w)
	for blk := 0; blk < cfg.Blocks; blk++ {
		genBlock(b, r, cfg, w, blk)
	}
	fmt.Fprintf(b, "  addi r7, r7, -1\n  bne r7, r0, w%d_loop\n", w)
	fmt.Fprintf(b, "  ldi r1, 0\n  sys exit\n")
}

// genBlock writes one random action over the shared globals.
func genBlock(b *strings.Builder, r *rand.Rand, cfg Config, w, blk int) {
	g := r.Intn(cfg.Globals)
	label := fmt.Sprintf("w%d_b%d", w, blk)
	choices := []string{"load", "store", "incr"}
	if cfg.UseLocks {
		choices = append(choices, "locked")
	}
	if cfg.UseAtomic {
		choices = append(choices, "atomic")
	}
	if cfg.UseRMW {
		choices = append(choices, "rmw")
	}
	if cfg.UseSysnop {
		choices = append(choices, "sync")
	}
	switch choices[r.Intn(len(choices))] {
	case "load":
		fmt.Fprintf(b, "%s:\n  ldi r2, g%d\n  ld r3, [r2+0]\n  add r4, r4, r3\n", label, g)
	case "store":
		fmt.Fprintf(b, "%s:\n  ldi r2, g%d\n  ldi r3, %d\n  st [r2+0], r3\n", label, g, r.Intn(20))
	case "incr":
		fmt.Fprintf(b, "%s:\n  ldi r2, g%d\n  ld r3, [r2+0]\n  addi r3, r3, %d\n  st [r2+0], r3\n",
			label, g, 1+r.Intn(4))
	case "locked":
		fmt.Fprintf(b, "%s:\n  ldi r5, mu\n  lock [r5+0]\n  ldi r2, g%d\n  ld r3, [r2+0]\n  addi r3, r3, 1\n  st [r2+0], r3\n  unlock [r5+0]\n", label, g)
	case "atomic":
		fmt.Fprintf(b, "%s:\n  ldi r2, g%d\n  ldi r3, 1\n  xadd r4, [r2+0], r3\n", label, g)
	case "rmw":
		fmt.Fprintf(b, "%s:\n  ldi r2, g%d\n  ldi r3, %d\n  orm [r2+0], r3\n", label, g, 1<<uint(r.Intn(8)))
	case "sync":
		fmt.Fprintf(b, "%s:\n  sys sysnop\n", label)
	}
}
