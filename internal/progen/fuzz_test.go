package progen

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/machine"
)

// FuzzPipeline lets the fuzzer steer both the program shape and the
// scheduler: whatever it picks, the full record→replay→detect→classify
// pipeline must succeed and hold its invariants.
func FuzzPipeline(f *testing.F) {
	f.Add(int64(1), int64(1), uint8(0))
	f.Add(int64(42), int64(7), uint8(255))
	f.Add(int64(-3), int64(0), uint8(0b10101))
	f.Fuzz(func(t *testing.T, genSeed, schedSeed int64, cfgBits uint8) {
		r := rand.New(rand.NewSource(genSeed))
		cfg := BitsConfig(cfgBits, r)
		src := Generate(r, cfg)
		prog, err := asm.Assemble("fz", src)
		if err != nil {
			t.Fatalf("generated program failed to assemble: %v", err)
		}
		policy := machine.SchedPolicy(uint8(schedSeed) % 3)
		res, err := core.Analyze(prog,
			machine.Config{Seed: schedSeed, Policy: policy, MaxSteps: 1 << 19},
			classify.Options{})
		if err != nil {
			t.Fatalf("pipeline failed: %v\n%s", err, src)
		}
		for _, rr := range res.Classification.Races {
			if rr.NSC+rr.SC+rr.RF != rr.Total {
				t.Fatal("inconsistent outcome counts")
			}
		}
	})
}
