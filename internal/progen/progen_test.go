// Fuzz-style property tests: every random program must assemble, run to
// completion without deadlock, record, replay identically, and survive
// the full detection+classification pipeline.
package progen

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vproc"
)

func TestGeneratedProgramsAssembleAndTerminate(t *testing.T) {
	for i := 0; i < 60; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		src := Generate(r, Random(r))
		prog, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatalf("case %d: assemble: %v\n%s", i, err, src)
		}
		m, err := machine.New(prog, machine.Config{Seed: int64(i), MaxSteps: 1 << 20})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		res := m.Run()
		if res.Deadlocked {
			t.Fatalf("case %d: deadlocked\n%s", i, src)
		}
		for _, th := range res.Threads {
			if th.State == machine.Faulted {
				t.Fatalf("case %d: thread %d faulted: %v\n%s", i, th.ID, th.Fault, src)
			}
			if !th.State.Terminated() {
				t.Fatalf("case %d: thread %d did not terminate (budget)\n%s", i, th.ID, src)
			}
		}
	}
}

// TestPipelinePropertyOverRandomPrograms is the repo's deepest fuzz check:
// for arbitrary program shapes, seeds, and scheduler policies, the whole
// pipeline must hold its invariants.
func TestPipelinePropertyOverRandomPrograms(t *testing.T) {
	policies := []machine.SchedPolicy{machine.PolicyRandom, machine.PolicyRoundRobin, machine.PolicyPCT}
	for i := 0; i < 40; i++ {
		r := rand.New(rand.NewSource(int64(1000 + i)))
		src := Generate(r, Random(r))
		prog, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		cfg := machine.Config{Seed: int64(i), Policy: policies[i%len(policies)], MaxSteps: 1 << 20}
		res, err := core.Analyze(prog, cfg, classify.Options{})
		if err != nil {
			t.Fatalf("case %d: pipeline: %v\n%s", i, err, src)
		}

		// 1. Replay matched the recording (core would have failed loudly
		//    otherwise); double-check outputs.
		for _, mt := range res.Machine.Threads {
			rt := res.Exec.Thread(mt.ID)
			if len(rt.Output) != len(mt.Output) {
				t.Fatalf("case %d: thread %d output diverged", i, mt.ID)
			}
		}

		// 2. Detector sanity: no race within a single thread, no race on
		//    atomic accesses, every instance in overlapping regions.
		for _, race := range res.Races.Races {
			for _, inst := range race.Instances {
				if inst.RegionA.TID == inst.RegionB.TID {
					t.Fatalf("case %d: same-thread race %v", i, race.Sites)
				}
				if !inst.RegionA.Overlaps(inst.RegionB) {
					t.Fatalf("case %d: non-overlapping regions raced", i)
				}
				if inst.First.Atomic || inst.Second.Atomic {
					t.Fatalf("case %d: atomic access in a data race", i)
				}
				if !inst.First.IsWrite && !inst.Second.IsWrite {
					t.Fatalf("case %d: read-read pair reported", i)
				}
			}
		}

		// 3. The vector-clock detector finds at least as many instances.
		vc, err := hb.DetectVC(res.Exec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if vc.TotalInstances < res.Races.TotalInstances {
			t.Fatalf("case %d: vc (%d) < interval (%d)", i, vc.TotalInstances, res.Races.TotalInstances)
		}

		// 4. Classification is total and consistent: every instance got an
		//    outcome, and the verdict matches the counts.
		for _, rr := range res.Classification.Races {
			if rr.NSC+rr.SC+rr.RF != rr.Total {
				t.Fatalf("case %d: outcome counts do not add up", i)
			}
			wantBenign := rr.SC == 0 && rr.RF == 0
			if (rr.Verdict == classify.PotentiallyBenign) != wantBenign {
				t.Fatalf("case %d: verdict inconsistent with counts", i)
			}
		}

		// 5. Classification is deterministic.
		again := classify.Run(res.Exec, res.Races, classify.Options{})
		if len(again.Races) != len(res.Classification.Races) {
			t.Fatalf("case %d: classification not deterministic", i)
		}
		for j := range again.Races {
			a, b := again.Races[j], res.Classification.Races[j]
			if a.Sites != b.Sites || a.NSC != b.NSC || a.SC != b.SC || a.RF != b.RF {
				t.Fatalf("case %d: race %v classified differently on re-run", i, a.Sites)
			}
		}
	}
}

// TestVprocDualOrderIsOrderSymmetric: swapping which access is "first" in
// the pair must not change the verdict — both orders are replayed either
// way, so the outcome is a property of the pair, not its presentation.
func TestVprocDualOrderIsOrderSymmetric(t *testing.T) {
	for i := 0; i < 25; i++ {
		r := rand.New(rand.NewSource(int64(2000 + i)))
		src := Generate(r, Random(r))
		prog, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Analyze(prog, machine.Config{Seed: int64(i)}, classify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, race := range res.Races.Races {
			for _, inst := range race.Instances {
				fwd := vproc.Analyze(res.Exec, vproc.RacePair{
					RegionA: inst.RegionA, RegionB: inst.RegionB,
					IdxA: inst.First.Idx, IdxB: inst.Second.Idx,
					PCA: inst.First.PC, PCB: inst.Second.PC, Addr: inst.Addr,
				})
				rev := vproc.Analyze(res.Exec, vproc.RacePair{
					RegionA: inst.RegionB, RegionB: inst.RegionA,
					IdxA: inst.Second.Idx, IdxB: inst.First.Idx,
					PCA: inst.Second.PC, PCB: inst.First.PC, Addr: inst.Addr,
				})
				// NoStateChange is symmetric; the harmful outcomes may
				// differ in kind (a failure in one presentation can be a
				// state change in the other) but not in verdict class.
				if (fwd.Outcome == vproc.NoStateChange) != (rev.Outcome == vproc.NoStateChange) {
					t.Errorf("case %d %v: fwd %v vs rev %v", i, race.Sites, fwd.Outcome, rev.Outcome)
				}
			}
		}
	}
}

// TestLogSerializationRoundTripsRandomPrograms covers the binary format
// against arbitrary log shapes.
func TestLogSerializationRoundTripsRandomPrograms(t *testing.T) {
	for i := 0; i < 30; i++ {
		r := rand.New(rand.NewSource(int64(3000 + i)))
		src := Generate(r, Random(r))
		prog, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatal(err)
		}
		log, _, err := core.Record(prog, machine.Config{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		raw := trace.Marshal(log)
		log2, err := trace.Unmarshal(raw)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		exec1, err := replay.Run(log, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exec2, err := replay.Run(log2, replay.Options{})
		if err != nil {
			t.Fatalf("case %d: replay of deserialized log: %v", i, err)
		}
		for _, th := range exec1.Threads {
			other := exec2.Thread(th.TID)
			if th.FinalCpu.Regs != other.FinalCpu.Regs {
				t.Fatalf("case %d: thread %d state changed through serialization", i, th.TID)
			}
		}
	}
}
