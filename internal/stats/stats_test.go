package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]int{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Sum != 110 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 22 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("median = %v", s.Median)
	}
	if s.P90 < 4 || s.P90 > 100 {
		t.Errorf("p90 = %v", s.P90)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Error("string missing n")
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if got := Summarize(nil); got.N != 0 || got.String() != "n=0" {
		t.Errorf("empty = %+v", got)
	}
	s := Summarize([]int{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Mean != 7 || s.P90 != 7 {
		t.Errorf("singleton = %+v", s)
	}
}

func TestSummaryProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]int, 1+int(n)%40)
		for i := range xs {
			xs[i] = r.Intn(1000)
		}
		s := Summarize(xs)
		// Order statistics bracket the center measures.
		if s.Median < float64(s.Min) || s.Median > float64(s.Max) {
			return false
		}
		if s.Mean < float64(s.Min) || s.Mean > float64(s.Max) {
			return false
		}
		if s.P90 < s.Median || s.P90 > float64(s.Max) {
			return false
		}
		// Summarize must not mutate its input.
		return s.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []int{5, 1, 4}
	Summarize(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Error("input mutated")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []int{0, 10}
	if got := Percentile(sorted, 50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(sorted, 0); got != 0 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]int, 1+r.Intn(30))
		for i := range xs {
			xs[i] = r.Intn(100)
		}
		sort.Ints(xs)
		prev := -1.0
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]int{1, 1, 2, 3, 50}, 5)
	if !strings.Contains(out, "#") {
		t.Errorf("no bars:\n%s", out)
	}
	if Histogram(nil, 5) != "(empty)\n" {
		t.Error("empty histogram")
	}
	// All-equal sample: one bucket.
	out = Histogram([]int{4, 4, 4}, 3)
	if strings.Count(out, "\n") != 1 {
		t.Errorf("constant sample should have one bucket:\n%s", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("ratio = %s", Ratio(3, 2))
	}
	if Ratio(1, 0) != "inf" {
		t.Error("zero denominator")
	}
}
