// Package stats provides the small descriptive-statistics helpers the
// reporting layer uses to summarize per-race instance distributions
// (Figures 3–5) and performance samples.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of non-negative integers.
type Summary struct {
	N      int
	Min    int
	Max    int
	Sum    int
	Mean   float64
	Median float64
	P90    float64
}

// Summarize computes a Summary (zero value for an empty sample).
func Summarize(xs []int) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	s := Summary{
		N:   len(sorted),
		Min: sorted[0],
		Max: sorted[len(sorted)-1],
	}
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = float64(s.Sum) / float64(s.N)
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	return s
}

// Percentile interpolates the p-th percentile (0..100) of a sorted sample.
func Percentile(sorted []int, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return float64(sorted[0])
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return float64(sorted[lo])
	}
	frac := rank - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%d median=%.1f mean=%.1f p90=%.1f max=%d total=%d",
		s.N, s.Min, s.Median, s.Mean, s.P90, s.Max, s.Sum)
}

// Histogram buckets a sample into at most maxBuckets equal-width bins and
// renders them as ASCII rows ("lo-hi | count ###").
func Histogram(xs []int, maxBuckets int) string {
	if len(xs) == 0 {
		return "(empty)\n"
	}
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	s := Summarize(xs)
	width := (s.Max - s.Min + maxBuckets) / maxBuckets
	if width < 1 {
		width = 1
	}
	counts := make(map[int]int)
	maxCount := 0
	for _, x := range xs {
		b := (x - s.Min) / width
		counts[b]++
		if counts[b] > maxCount {
			maxCount = counts[b]
		}
	}
	var b strings.Builder
	for bucket := 0; bucket*width+s.Min <= s.Max; bucket++ {
		lo := s.Min + bucket*width
		hi := lo + width - 1
		n := counts[bucket]
		bar := strings.Repeat("#", scaleBar(n, maxCount, 30))
		fmt.Fprintf(&b, "  %5d-%-5d | %4d %s\n", lo, hi, n, bar)
	}
	return b.String()
}

func scaleBar(v, max, width int) int {
	if max == 0 {
		return 0
	}
	n := v * width / max
	if n == 0 && v > 0 {
		n = 1
	}
	return n
}

// Ratio formats a/b as "x.xx" with a zero-denominator guard.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
