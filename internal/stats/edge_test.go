package stats

import (
	"strings"
	"testing"
)

func TestPercentileSingleton(t *testing.T) {
	one := []int{42}
	for _, p := range []float64{0, 25, 50, 99, 100} {
		if got := Percentile(one, p); got != 42 {
			t.Errorf("Percentile([42], %v) = %v", p, got)
		}
	}
}

func TestPercentileEmptyEveryP(t *testing.T) {
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile(nil, p); got != 0 {
			t.Errorf("Percentile(nil, %v) = %v, want 0", p, got)
		}
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	// maxBuckets=1 folds the whole range into one row that covers it.
	out := Histogram([]int{1, 5, 9}, 1)
	if n := strings.Count(out, "\n"); n != 1 {
		t.Errorf("maxBuckets=1 produced %d rows:\n%s", n, out)
	}
	if !strings.Contains(out, "3 ") {
		t.Errorf("single bucket should hold all 3 samples:\n%s", out)
	}
	// Degenerate maxBuckets values clamp to 1 rather than panicking.
	for _, mb := range []int{0, -3} {
		if got := Histogram([]int{2, 4}, mb); strings.Count(got, "\n") != 1 {
			t.Errorf("maxBuckets=%d:\n%s", mb, got)
		}
	}
}

func TestHistogramAllEqualWideBuckets(t *testing.T) {
	// An all-equal sample has zero range; any bucket count must yield
	// exactly one row containing every sample.
	for _, mb := range []int{1, 2, 10} {
		out := Histogram([]int{7, 7, 7, 7}, mb)
		if strings.Count(out, "\n") != 1 {
			t.Errorf("maxBuckets=%d rows != 1:\n%s", mb, out)
		}
		if !strings.Contains(out, "4 ") {
			t.Errorf("bucket lost samples:\n%s", out)
		}
	}
}

func TestRatioEdges(t *testing.T) {
	if Ratio(0, 0) != "inf" {
		t.Errorf("Ratio(0,0) = %s", Ratio(0, 0))
	}
	if Ratio(0, 5) != "0.00x" {
		t.Errorf("Ratio(0,5) = %s", Ratio(0, 5))
	}
	if Ratio(-3, 2) != "-1.50x" {
		t.Errorf("Ratio(-3,2) = %s", Ratio(-3, 2))
	}
}
