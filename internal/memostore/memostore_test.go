package memostore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vproc"
)

func fpN(n byte) vproc.Fingerprint {
	var fp vproc.Fingerprint
	for i := range fp {
		fp[i] = n
	}
	return fp
}

func sampleResult(reason string) vproc.Result {
	return vproc.Result{
		Outcome:    vproc.StateChange,
		FailReason: reason,
		OrigFail:   "",
		AltFail:    "alternative order: " + reason,
		Diffs: []vproc.Diff{
			{Kind: "reg", TID: 1, Index: 3, Orig: 7, Alt: 9},
			{Kind: "mem", TID: -1, Index: 0x40, Orig: 0, Alt: 1},
		},
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult("x")
	s.Put(fpN(1), want)
	if got, ok := s.Get(fpN(1)); !ok {
		t.Fatal("expected hit after Put")
	} else if got.Outcome != want.Outcome || got.AltFail != want.AltFail || len(got.Diffs) != 2 || got.Diffs[1] != want.Diffs[1] {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	s.Close()

	// A fresh process over the same directory sees the entry.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1", s2.Len())
	}
	if got, ok := s2.Get(fpN(1)); !ok || got.Diffs[0] != want.Diffs[0] {
		t.Fatalf("reopened Get = %+v, %v", got, ok)
	}
}

func TestMissCounting(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fpN(9)); ok {
		t.Fatal("unexpected hit in empty store")
	}
	s.Put(fpN(9), sampleResult("y"))
	s.Get(fpN(9))
	snap := reg.Snapshot()
	if snap.Counters["memostore.misses"] != 1 || snap.Counters["memostore.hits"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

// Corruption of any entry byte must degrade to a miss and delete the
// file — never an error, never a panic, never a wrong result.
func TestCorruptEntryDegradesToMiss(t *testing.T) {
	for _, mutate := range []struct {
		name string
		f    func(b []byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"future-version", func(b []byte) []byte { b[5] = 99; return b }},
		{"payload-flip", func(b []byte) []byte { b[headerLen] ^= 0x01; return b }},
		{"checksum-flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		t.Run(mutate.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			dir := t.TempDir()
			s, err := Open(dir, Options{Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			s.Put(fpN(2), sampleResult("z"))
			path := filepath.Join(dir, entryName(fpN(2)))
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mutate.f(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(fpN(2)); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if reg.Snapshot().Counters["memostore.corrupt"] != 1 {
				t.Fatalf("corrupt counter = %v", reg.Snapshot().Counters)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry file not deleted")
			}
			// The store stays usable: a re-Put re-creates the entry.
			s.Put(fpN(2), sampleResult("z"))
			if _, ok := s.Get(fpN(2)); !ok {
				t.Fatal("store unusable after corrupt entry recovery")
			}
		})
	}
}

func TestSizeBoundedOldestFirstGC(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	// Cap small enough that ~3 entries fit.
	probe, _ := encodeEntry(sampleResult("pad"))
	s, err := Open(dir, Options{MaxBytes: int64(3 * len(probe)), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 6; i++ {
		s.Put(fpN(i), sampleResult("pad"))
	}
	if s.Bytes() > int64(3*len(probe)) {
		t.Fatalf("store over cap: %d > %d", s.Bytes(), 3*len(probe))
	}
	ev := reg.Snapshot().Counters["memostore.evictions"]
	if ev == 0 {
		t.Fatal("no evictions counted")
	}
	// Oldest-first: the earliest fingerprints are gone, the latest
	// survive.
	if _, ok := s.Get(fpN(1)); ok {
		t.Fatal("oldest entry survived GC")
	}
	if _, ok := s.Get(fpN(6)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestOpenGCsInheritedOverflow(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 4; i++ {
		s.Put(fpN(i), sampleResult("pad"))
		// Distinct mtimes so the inherited eviction order is stable on
		// filesystems with coarse timestamps.
		past := time.Now().Add(-time.Hour + time.Duration(i)*time.Minute)
		os.Chtimes(filepath.Join(dir, entryName(fpN(i))), past, past)
	}
	probe, _ := encodeEntry(sampleResult("pad"))
	s2, err := Open(dir, Options{MaxBytes: int64(2 * len(probe))})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("inherited store holds %d entries after GC, want 2", s2.Len())
	}
	if _, ok := s2.Get(fpN(1)); ok {
		t.Fatal("oldest inherited entry survived Open GC")
	}
	if _, ok := s2.Get(fpN(4)); !ok {
		t.Fatal("newest inherited entry evicted by Open GC")
	}
}

func TestOpenSweepsTempFilesAndIgnoresForeign(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "put-123.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("store indexed %d entries from junk", s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "put-123.tmp")); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file not swept")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("foreign file was touched")
	}
}

func TestFirstWriterWins(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(fpN(3), sampleResult("first"))
	s.Put(fpN(3), sampleResult("second"))
	got, ok := s.Get(fpN(3))
	if !ok || got.FailReason != "first" {
		t.Fatalf("Get = %+v, %v; want first writer's entry", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w byte) {
			defer func() { done <- struct{}{} }()
			for i := byte(0); i < 32; i++ {
				fp := fpN(i % 8)
				s.Put(fp, sampleResult("c"))
				if res, ok := s.Get(fp); ok && res.FailReason != "c" {
					t.Errorf("wrong payload under concurrency: %+v", res)
				}
			}
		}(byte(w))
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
}
