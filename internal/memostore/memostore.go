// Package memostore is the persistent half of the classification memo:
// a crash-safe, content-addressed on-disk store mapping live-in
// fingerprints (vproc.Fingerprint) to dual-order replay results. The
// in-memory classify.Memo already shares results within one process;
// this store makes them survive restarts and lets every tenant of a
// long-running `racer serve` daemon benefit from every other tenant's
// replays — equal fingerprints imply equal results, so sharing is
// always sound (docs/PERFORMANCE.md carries the invariant).
//
// The store is engineered for failure first:
//
//   - Writes are atomic: each entry lands in a temp file in the store
//     directory and is renamed into place, so a crash mid-write leaves
//     at worst an orphaned temp file (swept on Open), never a torn
//     entry under a valid name.
//   - Entries are self-verifying: a versioned magic header, an explicit
//     payload length, and a SHA-256 checksum over the payload. Any
//     mismatch — truncation, bit rot, a foreign file, a future format
//     version — degrades to a cache miss (counted on
//     memostore.corrupt), never an error: a damaged cache costs a
//     replay, not an outage. Corrupt entries are deleted on detection.
//   - The store is size-bounded: when the configured byte cap is
//     exceeded, entries are evicted oldest-first (insertion order,
//     mtime order for entries inherited from a previous process) until
//     the store fits. Evictions are counted on memostore.evictions.
//
// Counters (nil registry disables them, as everywhere in obs):
//
//	memostore.hits       entries served from disk
//	memostore.misses     lookups that found no (valid) entry
//	memostore.evictions  entries removed by the size-bounded GC
//	memostore.corrupt    entries rejected by verification and deleted
//	memostore.entries    gauge: resident entries
//	memostore.bytes      gauge: resident bytes
package memostore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/vproc"
)

// magic opens every entry file: 5 fixed bytes plus a format version
// byte. Bumping the version makes old processes treat new entries as
// corrupt (a miss) rather than misparse them.
var magic = []byte{'R', 'M', 'E', 'M', 'O', 1}

// headerLen is magic + a uint32 little-endian payload length.
const headerLen = len("RMEMO") + 1 + 4

// checksumLen is the SHA-256 trailer over the payload.
const checksumLen = sha256.Size

// DefaultMaxBytes bounds the store when Options.MaxBytes is zero:
// generous for a cache of replay verdicts (entries are tens to hundreds
// of bytes), small next to the logs they were derived from.
const DefaultMaxBytes = 256 << 20

// Options configures Open.
type Options struct {
	// MaxBytes caps the store's on-disk payload footprint; exceeding it
	// triggers oldest-first eviction. Zero means DefaultMaxBytes;
	// negative means unbounded.
	MaxBytes int64
	// Metrics receives the memostore.* counters (nil is off).
	Metrics *obs.Registry
}

// Store is a persistent fingerprint → vproc.Result cache rooted at one
// directory. It is safe for concurrent use by the analysis workers of
// one process; concurrent processes sharing a directory stay
// crash-consistent (atomic renames) but may duplicate work.
//
// Store implements classify.Backing, so it plugs in behind an
// in-memory classify.Memo via classify.NewMemoBacked.
type Store struct {
	dir string
	max int64 // < 0 = unbounded

	cHits, cMisses, cEvict, cCorrupt *obs.Counter
	gEntries, gBytes                 *obs.Gauge

	mu      sync.Mutex
	entries map[vproc.Fingerprint]entryInfo
	bytes   int64
	clock   int64 // insertion sequence for oldest-first eviction
}

type entryInfo struct {
	size int64
	seq  int64
}

// Open creates (or reopens) a store rooted at dir, sweeping orphaned
// temp files and indexing the surviving entries. Entries left by a
// previous process are ordered for eviction by their file modification
// time — oldest evicts first. If the inherited contents already exceed
// the cap, Open GCs immediately.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	max := opts.MaxBytes
	if max == 0 {
		max = DefaultMaxBytes
	}
	reg := opts.Metrics
	s := &Store{
		dir:      dir,
		max:      max,
		cHits:    reg.Counter("memostore.hits"),
		cMisses:  reg.Counter("memostore.misses"),
		cEvict:   reg.Counter("memostore.evictions"),
		cCorrupt: reg.Counter("memostore.corrupt"),
		gEntries: reg.Gauge("memostore.entries"),
		gBytes:   reg.Gauge("memostore.bytes"),
		entries:  map[vproc.Fingerprint]entryInfo{},
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type onDisk struct {
		fp    vproc.Fingerprint
		size  int64
		mtime int64
	}
	var found []onDisk
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash between create and rename leaves these; they were
			// never visible as entries, so removal loses nothing.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		fp, ok := parseEntryName(name)
		if !ok {
			continue // foreign file; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{fp: fp, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mtime != found[j].mtime {
			return found[i].mtime < found[j].mtime
		}
		return bytes.Compare(found[i].fp[:], found[j].fp[:]) < 0
	})
	for _, f := range found {
		s.clock++
		s.entries[f.fp] = entryInfo{size: f.size, seq: s.clock}
		s.bytes += f.size
	}
	s.mu.Lock()
	s.gcLocked()
	s.publishLocked()
	s.mu.Unlock()
	return s, nil
}

// entryName is "<64 hex chars>.memo".
func entryName(fp vproc.Fingerprint) string {
	return hex.EncodeToString(fp[:]) + ".memo"
}

func parseEntryName(name string) (vproc.Fingerprint, bool) {
	var fp vproc.Fingerprint
	base, ok := strings.CutSuffix(name, ".memo")
	if !ok || len(base) != 2*len(fp) {
		return fp, false
	}
	b, err := hex.DecodeString(base)
	if err != nil {
		return fp, false
	}
	copy(fp[:], b)
	return fp, true
}

// Get returns the stored result for fp. Every failure mode — absent
// entry, unreadable file, bad header, short payload, checksum mismatch,
// undecodable payload — is a miss; verification failures additionally
// count as corrupt and delete the offending file.
func (s *Store) Get(fp vproc.Fingerprint) (vproc.Result, bool) {
	var zero vproc.Result
	s.mu.Lock()
	_, known := s.entries[fp]
	s.mu.Unlock()
	if !known {
		s.cMisses.Inc()
		return zero, false
	}
	path := filepath.Join(s.dir, entryName(fp))
	data, err := os.ReadFile(path)
	if err != nil {
		// Raced with an eviction (or the file vanished underneath us):
		// a plain miss, the index catches up lazily.
		s.dropIndexed(fp)
		s.cMisses.Inc()
		return zero, false
	}
	res, err := decodeEntry(data)
	if err != nil {
		s.cCorrupt.Inc()
		s.cMisses.Inc()
		os.Remove(path)
		s.dropIndexed(fp)
		return zero, false
	}
	s.cHits.Inc()
	return res, true
}

// Put stores res under fp. First writer wins — an existing entry is
// left untouched (equal fingerprints imply equal results, so there is
// nothing to update). Write failures are swallowed: a cache that
// cannot persist degrades to not caching, it does not fail the
// analysis that produced the result.
func (s *Store) Put(fp vproc.Fingerprint, res vproc.Result) {
	s.mu.Lock()
	_, exists := s.entries[fp]
	s.mu.Unlock()
	if exists {
		return
	}
	data, err := encodeEntry(res)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpName)
		return
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, entryName(fp))); err != nil {
		os.Remove(tmpName)
		return
	}
	s.mu.Lock()
	if _, exists := s.entries[fp]; !exists {
		s.clock++
		s.entries[fp] = entryInfo{size: int64(len(data)), seq: s.clock}
		s.bytes += int64(len(data))
	}
	s.gcLocked()
	s.publishLocked()
	s.mu.Unlock()
}

// dropIndexed removes fp from the index without touching counters.
func (s *Store) dropIndexed(fp vproc.Fingerprint) {
	s.mu.Lock()
	if e, ok := s.entries[fp]; ok {
		delete(s.entries, fp)
		s.bytes -= e.size
	}
	s.publishLocked()
	s.mu.Unlock()
}

// gcLocked evicts oldest-first until the store fits the cap. Callers
// hold s.mu.
func (s *Store) gcLocked() {
	if s.max < 0 || s.bytes <= s.max {
		return
	}
	type victim struct {
		fp  vproc.Fingerprint
		seq int64
	}
	var order []victim
	for fp, e := range s.entries {
		order = append(order, victim{fp: fp, seq: e.seq})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	for _, v := range order {
		if s.bytes <= s.max {
			break
		}
		e := s.entries[v.fp]
		delete(s.entries, v.fp)
		s.bytes -= e.size
		os.Remove(filepath.Join(s.dir, entryName(v.fp)))
		s.cEvict.Inc()
	}
}

func (s *Store) publishLocked() {
	s.gEntries.Set(float64(len(s.entries)))
	s.gBytes.Set(float64(s.bytes))
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the indexed on-disk footprint.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Close publishes the final gauges. Every write was already durable
// (synced temp file + rename), so Close has nothing to flush; it exists
// so shutdown paths read naturally and stay correct if buffering is
// ever added.
func (s *Store) Close() error {
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	return nil
}

// encodeEntry serializes one result: magic+version, payload length,
// JSON payload, SHA-256 trailer.
func encodeEntry(res vproc.Result) ([]byte, error) {
	payload, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, headerLen+len(payload)+checksumLen)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return out, nil
}

// decodeEntry verifies and decodes one entry file.
func decodeEntry(data []byte) (vproc.Result, error) {
	var res vproc.Result
	if len(data) < headerLen+checksumLen {
		return res, fmt.Errorf("memostore: entry too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != string(magic) {
		return res, fmt.Errorf("memostore: bad magic or version")
	}
	n := binary.LittleEndian.Uint32(data[len(magic):headerLen])
	if int(n) != len(data)-headerLen-checksumLen {
		return res, fmt.Errorf("memostore: length mismatch (header %d, payload %d)",
			n, len(data)-headerLen-checksumLen)
	}
	payload := data[headerLen : headerLen+int(n)]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[headerLen+int(n):]) {
		return res, fmt.Errorf("memostore: checksum mismatch")
	}
	if err := json.Unmarshal(payload, &res); err != nil {
		return res, fmt.Errorf("memostore: undecodable payload: %w", err)
	}
	return res, nil
}
