package sched

import (
	"errors"
	"sync"
)

// FairQueue errors, returned by Push. They are sentinel values so the
// ingest layer can map each to its own HTTP status and Retry-After
// hint.
var (
	// ErrQueueFull: the global capacity is exhausted — the service as a
	// whole is overloaded.
	ErrQueueFull = errors.New("sched: queue full")
	// ErrTenantFull: this tenant's share is exhausted while the queue
	// as a whole still has room — the noisy-tenant backpressure signal.
	ErrTenantFull = errors.New("sched: tenant queue full")
	// ErrQueueClosed: the queue stopped accepting work (shutdown).
	ErrQueueClosed = errors.New("sched: queue closed")
)

// FairQueue is a bounded, multi-tenant FIFO for long-running services:
// producers Push under a per-tenant and a global cap (exceeding either
// is an explicit error, the caller's backpressure signal, never a
// block), and consumers Pop tenants round-robin — each tenant's items
// stay FIFO among themselves, but a tenant with a thousand queued jobs
// cannot starve a tenant with one.
//
// Unlike Pool, a FairQueue is built for indefinite operation: it has no
// Wait, and Close/Drain separate the two shutdown concerns — stop
// intake and let consumers finish the backlog (Close), or stop intake
// and abandon the backlog to a journal for the next process (Drain).
type FairQueue[T any] struct {
	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string][]T
	ring      []string // tenants with queued items, in arrival order
	next      int      // ring cursor for round-robin Pop
	total     int
	totalCap  int
	tenantCap int
	closed    bool
}

// NewFairQueue returns a queue holding at most totalCap items overall
// and tenantCap per tenant. Caps below one fall back to defaults
// (totalCap 64; tenantCap totalCap/4, at least 1), mirroring how
// Normalize treats the jobs knobs.
func NewFairQueue[T any](totalCap, tenantCap int) *FairQueue[T] {
	if totalCap < 1 {
		totalCap = 64
	}
	if tenantCap < 1 {
		tenantCap = totalCap / 4
		if tenantCap < 1 {
			tenantCap = 1
		}
	}
	q := &FairQueue[T]{
		tenants:   map[string][]T{},
		totalCap:  totalCap,
		tenantCap: tenantCap,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues v for tenant, or reports why it cannot: ErrQueueClosed,
// ErrQueueFull, or ErrTenantFull. It never blocks.
func (q *FairQueue[T]) Push(tenant string, v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.total >= q.totalCap {
		return ErrQueueFull
	}
	items := q.tenants[tenant]
	if len(items) >= q.tenantCap {
		return ErrTenantFull
	}
	if len(items) == 0 {
		q.ring = append(q.ring, tenant)
	}
	q.tenants[tenant] = append(items, v)
	q.total++
	q.cond.Signal()
	return nil
}

// Pop blocks until an item is available and returns it, cycling tenants
// round-robin. It returns ok == false once the queue is closed (or
// drained) and empty — the consumer's signal to exit.
func (q *FairQueue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.total == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.total == 0 {
		return v, false
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	tenant := q.ring[q.next]
	items := q.tenants[tenant]
	v = items[0]
	items = items[1:]
	q.total--
	if len(items) == 0 {
		delete(q.tenants, tenant)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// q.next now indexes the following tenant; keep it for the
		// round-robin step.
	} else {
		q.tenants[tenant] = items
		q.next++
	}
	return v, true
}

// Len returns the number of queued items.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// TenantLen returns the number of items queued for one tenant.
func (q *FairQueue[T]) TenantLen(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tenants[tenant])
}

// Close stops intake: subsequent Pushes fail with ErrQueueClosed, Pops
// drain the backlog and then return ok == false.
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Drain closes the queue and removes the backlog, returning it in
// round-robin order. Blocked and future Pops return ok == false
// immediately; in-flight items (already popped) are unaffected. This is
// the crash-consistent shutdown shape: the caller already journaled
// every accepted item, so abandoning the backlog loses nothing — the
// next process resumes it.
func (q *FairQueue[T]) Drain() []T {
	q.mu.Lock()
	q.closed = true
	var out []T
	for q.total > 0 {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		tenant := q.ring[q.next]
		items := q.tenants[tenant]
		out = append(out, items[0])
		items = items[1:]
		q.total--
		if len(items) == 0 {
			delete(q.tenants, tenant)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		} else {
			q.tenants[tenant] = items
			q.next++
		}
	}
	q.mu.Unlock()
	q.cond.Broadcast()
	return out
}
