// Package sched is the bounded-concurrency scheduler for the offline
// half of the pipeline. The paper's replay analysis is explicitly an
// offline, embarrassingly parallel job — every recorded execution (and
// every race instance within one) is analyzed independently — so the
// only scheduling problem is bounding the fan-out and keeping the
// aggregation order deterministic. The package provides the two shapes
// that need:
//
//   - Pool: a fixed set of workers draining a FIFO task queue, used to
//     fan whole-execution analyses (replay + detect + classify) across
//     the suite. The pool publishes sched.* metrics (queue depth,
//     worker utilization, per-task latency) into an obs.Registry.
//   - ForEach: a lightweight parallel-for over an index range, used by
//     the classifier to drain a flattened (race, instance) work list
//     with no per-race pool spin-up.
//
// Callers own determinism: tasks write results into index-addressed
// slots and the caller folds them in index order, so any worker count
// produces byte-identical output to the serial run.
//
// Normalize is the single validation point for every user-facing
// parallelism knob (the CLI -jobs flags and classify.Options.Parallel):
// values below one fall back to the caller's default instead of being
// silently clamped or, worse, spinning up a negative worker count.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// PanicError is a panic recovered from a scheduled job, carrying the
// panic value and the goroutine stack at the point of the panic. It is
// how a crashing job surfaces as a per-job error instead of taking the
// whole pool (and process) down.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job panicked: %v", e.Value)
}

// Guard runs fn, converting a panic into a *PanicError return and
// counting it on the registry's sched.panics counter (nil reg skips the
// counter, never the recovery). Job bodies whose failure should
// quarantine rather than crash wrap themselves with Guard.
func Guard(reg *obs.Registry, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			reg.Counter("sched.panics").Inc()
			reg.Emit("sched.panic", 0)
			reg.Logger().Error("job panicked", "panic", fmt.Sprint(r))
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// DefaultJobs is the worker count used when a jobs knob is unset:
// GOMAXPROCS, i.e. as parallel as the hardware allows.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// Normalize validates a user-facing jobs/parallel setting: n >= 1 is
// used as-is (values above the core count are allowed — the tasks are
// independent and oversubscription is the caller's call), anything else
// (zero, negatives) falls back to def. A def below one normalizes to 1,
// so the result is always a valid worker count.
func Normalize(n, def int) int {
	if n >= 1 {
		return n
	}
	if def >= 1 {
		return def
	}
	return 1
}

// Pool is a bounded worker pool draining a FIFO task queue. Submit
// never blocks (the queue is unbounded), so producers can enqueue the
// whole work list before the first task finishes; Wait closes the queue
// and blocks until every submitted task has run.
//
// A Pool publishes its sched.* metrics into the registry it was built
// with (nil is off, as everywhere in obs):
//
//	sched.workers             gauge     worker goroutines
//	sched.queue_depth         gauge     instantaneous queue length
//	sched.queue_peak          gauge     high-water queue length
//	sched.tasks_submitted     counter   tasks enqueued
//	sched.tasks_completed     counter   tasks finished
//	sched.worker_busy_ns      counter   summed time inside tasks
//	sched.worker_idle_ns      counter   summed time waiting for work
//	sched.worker_utilization  gauge     busy / (busy + idle), set by Wait
//	sched.task_latency_ns     histogram per-task wall latency
//	sched.panics              counter   panics recovered from tasks
//
// Workers are panic-isolated: a task that panics is recovered (and
// counted on sched.panics) instead of killing the worker goroutine and
// deadlocking Wait. Tasks that want the panic as a per-job error wrap
// their body with Guard; the worker-level recovery is the last line of
// defense for tasks that don't.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	peak   int
	closed bool
	wg     sync.WaitGroup

	reg *obs.Registry // timeline/log access; metric handles below are pre-resolved

	cSubmitted, cCompleted *obs.Counter
	cBusy, cIdle, cPanics  *obs.Counter
	gDepth, gPeak, gUtil   *obs.Gauge
	hLatency               *obs.Histogram
}

// NewPool starts a pool of Normalize(workers, DefaultJobs()) workers
// reporting into reg (nil reg disables the metrics, not the pool).
func NewPool(workers int, reg *obs.Registry) *Pool {
	workers = Normalize(workers, DefaultJobs())
	p := &Pool{
		reg:        reg,
		cSubmitted: reg.Counter("sched.tasks_submitted"),
		cCompleted: reg.Counter("sched.tasks_completed"),
		cBusy:      reg.Counter("sched.worker_busy_ns"),
		cIdle:      reg.Counter("sched.worker_idle_ns"),
		cPanics:    reg.Counter("sched.panics"),
		gDepth:     reg.Gauge("sched.queue_depth"),
		gPeak:      reg.Gauge("sched.queue_peak"),
		gUtil:      reg.Gauge("sched.worker_utilization"),
		hLatency:   reg.Histogram("sched.task_latency_ns"),
	}
	p.cond = sync.NewCond(&p.mu)
	reg.Gauge("sched.workers").Set(float64(workers))
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// Submit enqueues one task. It must not be called after Wait.
func (p *Pool) Submit(f func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Submit after Wait")
	}
	p.queue = append(p.queue, f)
	if len(p.queue) > p.peak {
		p.peak = len(p.queue)
		p.gPeak.Set(float64(p.peak))
	}
	p.gDepth.Set(float64(len(p.queue)))
	p.mu.Unlock()
	p.cSubmitted.Inc()
	p.cond.Signal()
}

// Wait closes the queue and blocks until all submitted tasks have run,
// then publishes the final utilization gauge. The pool cannot be reused.
func (p *Pool) Wait() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	busy, idle := p.cBusy.Value(), p.cIdle.Value()
	if total := busy + idle; total > 0 {
		p.gUtil.Set(float64(busy) / float64(total))
	}
}

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	p.reg.Emit("sched.worker.start", uint64(w))
	defer p.reg.Emit("sched.worker.stop", uint64(w))
	for {
		idleStart := time.Now()
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			p.cIdle.Add(uint64(time.Since(idleStart).Nanoseconds()))
			return
		}
		f := p.queue[0]
		p.queue = p.queue[1:]
		p.gDepth.Set(float64(len(p.queue)))
		p.mu.Unlock()
		p.cIdle.Add(uint64(time.Since(idleStart).Nanoseconds()))

		start := time.Now()
		p.runTask(f)
		d := time.Since(start)
		p.cBusy.Add(uint64(d.Nanoseconds()))
		p.hLatency.Observe(int(d.Nanoseconds()))
		p.cCompleted.Inc()
	}
}

// runTask executes one task with worker-level panic isolation: a
// panicking task is counted and swallowed so the worker survives and
// Wait still returns. Tasks that need the panic as data use Guard.
func (p *Pool) runTask(f func()) {
	defer func() {
		if r := recover(); r != nil {
			p.cPanics.Inc()
		}
	}()
	f()
}

// ForEach runs f(0), …, f(n-1) across at most `workers` goroutines
// pulling indices from a shared cursor. workers <= 1 (or fewer than two
// items) runs inline with no goroutines at all, so the serial path pays
// nothing. Each index runs exactly once; f must be safe to call
// concurrently for distinct indices. Results written to index-addressed
// slots are bit-identical to the serial loop.
func ForEach(workers, n int, f func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { f(i) })
}

// ForEachWorker is ForEach with worker identity: f(w, i) runs item i on
// worker w, where 0 <= w < min(workers, n). All items handed to one
// worker run sequentially on it, so w safely indexes worker-local
// scratch state (the classifier reuses per-worker virtual-processor
// buffers this way). The serial path (workers <= 1 or n < 2) runs
// everything inline as worker 0.
func ForEachWorker(workers, n int, f func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}
