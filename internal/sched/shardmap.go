package sched

import "sync"

// ShardedMap is a concurrency-safe map sharded across independently
// locked segments, so the classification workers' memo lookups do not
// serialize on one mutex. The zero value is not usable; use
// NewShardedMap. Shard selection is by the caller-supplied hash — for
// keys that are already uniform digests (the classifier's live-in
// fingerprints) the hash is just a prefix read, so a lookup costs one
// mutex plus one map operation on 1/shards of the key space.
//
// The map is insert-only by design: the memoization caches built on it
// never invalidate entries (see docs/PERFORMANCE.md for why that is
// sound), so there is no Delete and no iteration — just Load, Store,
// and the Len the cache's bytes gauge needs.
type ShardedMap[K comparable, V any] struct {
	shards []mapShard[K, V]
	hash   func(K) uint64
}

type mapShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// NewShardedMap returns a map with the given shard count (values below
// one mean one shard) distributing keys by hash.
func NewShardedMap[K comparable, V any](shards int, hash func(K) uint64) *ShardedMap[K, V] {
	if shards < 1 {
		shards = 1
	}
	sm := &ShardedMap[K, V]{shards: make([]mapShard[K, V], shards), hash: hash}
	for i := range sm.shards {
		sm.shards[i].m = make(map[K]V)
	}
	return sm
}

func (sm *ShardedMap[K, V]) shard(k K) *mapShard[K, V] {
	return &sm.shards[sm.hash(k)%uint64(len(sm.shards))]
}

// Load returns the value stored under k, if any.
func (sm *ShardedMap[K, V]) Load(k K) (V, bool) {
	s := sm.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

// Store inserts k→v and reports whether the key was new. An existing
// key keeps its old value: concurrent workers that computed the same
// entry race benignly, and first-writer-wins keeps a Load that follows
// a Store stable.
func (sm *ShardedMap[K, V]) Store(k K, v V) bool {
	s := sm.shard(k)
	s.mu.Lock()
	_, exists := s.m[k]
	if !exists {
		s.m[k] = v
	}
	s.mu.Unlock()
	return !exists
}

// Len returns the total number of entries across all shards.
func (sm *ShardedMap[K, V]) Len() int {
	n := 0
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
