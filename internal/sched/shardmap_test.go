package sched

import (
	"sync"
	"testing"
)

func TestShardedMapBasic(t *testing.T) {
	m := NewShardedMap[uint64, string](8, func(k uint64) uint64 { return k })
	if _, ok := m.Load(1); ok {
		t.Fatal("empty map reported a hit")
	}
	if !m.Store(1, "a") {
		t.Fatal("first Store should report a new key")
	}
	if m.Store(1, "b") {
		t.Fatal("second Store of the same key should not report new")
	}
	v, ok := m.Load(1)
	if !ok || v != "a" {
		t.Fatalf("Load(1) = %q, %v; want first-writer value \"a\"", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestShardedMapShardCountClamped(t *testing.T) {
	m := NewShardedMap[int, int](0, func(k int) uint64 { return uint64(k) })
	m.Store(7, 7)
	if v, ok := m.Load(7); !ok || v != 7 {
		t.Fatalf("single-shard map lost its entry: %d, %v", v, ok)
	}
}

func TestShardedMapConcurrent(t *testing.T) {
	m := NewShardedMap[int, int](16, func(k int) uint64 { return uint64(k) })
	const n = 1000
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				m.Store(i, i*2)
				if v, ok := m.Load(i); !ok || v != i*2 {
					t.Errorf("Load(%d) = %d, %v", i, v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
}

func TestForEachWorkerCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 200
		var mu sync.Mutex
		seen := make(map[int]int)
		maxWorker := 0
		ForEachWorker(workers, n, func(w, i int) {
			mu.Lock()
			seen[i]++
			if w > maxWorker {
				maxWorker = w
			}
			mu.Unlock()
		})
		if len(seen) != n {
			t.Fatalf("workers=%d: covered %d of %d indices", workers, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		if maxWorker >= workers {
			t.Fatalf("workers=%d: saw worker id %d", workers, maxWorker)
		}
	}
}
