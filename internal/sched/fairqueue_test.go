package sched

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFairQueueRoundRobin(t *testing.T) {
	q := NewFairQueue[string](16, 8)
	// Tenant a floods; tenant b trickles. Pop must alternate.
	for _, v := range []string{"a1", "a2", "a3"} {
		if err := q.Push("a", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push("b", "b1"); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue empty early")
		}
		got = append(got, v)
	}
	want := []string{"a1", "b1", "a2", "a3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestFairQueuePerTenantFIFO(t *testing.T) {
	q := NewFairQueue[int](64, 32)
	for i := 0; i < 10; i++ {
		q.Push("t", i)
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
}

func TestFairQueueCaps(t *testing.T) {
	q := NewFairQueue[int](4, 2)
	if err := q.Push("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("a", 2); err != nil {
		t.Fatal(err)
	}
	// Tenant cap first: a third item for a full tenant is ErrTenantFull
	// even though the queue has room.
	if err := q.Push("a", 3); !errors.Is(err, ErrTenantFull) {
		t.Fatalf("tenant overflow = %v, want ErrTenantFull", err)
	}
	q.Push("b", 1)
	q.Push("b", 2)
	// Global cap: the queue holds 4 items, any tenant now sees
	// ErrQueueFull.
	if err := q.Push("c", 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("global overflow = %v, want ErrQueueFull", err)
	}
	// Draining one item frees global room.
	q.Pop()
	if err := q.Push("c", 1); err != nil {
		t.Fatalf("push after pop = %v", err)
	}
}

func TestFairQueueCloseDrainsThenStops(t *testing.T) {
	q := NewFairQueue[int](8, 8)
	q.Push("t", 1)
	q.Push("t", 2)
	q.Close()
	if err := q.Push("t", 3); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close = %v, want ErrQueueClosed", err)
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on closed empty queue reported ok")
	}
}

func TestFairQueueDrainAbandonsBacklog(t *testing.T) {
	q := NewFairQueue[string](8, 8)
	q.Push("a", "a1")
	q.Push("b", "b1")
	q.Push("a", "a2")
	left := q.Drain()
	if len(left) != 3 {
		t.Fatalf("drained %d items, want 3", len(left))
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after drain reported ok")
	}
	if err := q.Push("a", "x"); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after drain = %v, want ErrQueueClosed", err)
	}
}

func TestFairQueueBlockedPopWakesOnClose(t *testing.T) {
	q := NewFairQueue[int](8, 8)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("blocked pop returned an item from an empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked pop did not wake on Close")
	}
}

func TestFairQueueConcurrent(t *testing.T) {
	q := NewFairQueue[int](1024, 512)
	const producers, items = 4, 100
	var wg sync.WaitGroup
	wg.Add(producers)
	tenants := []string{"a", "b", "c", "d"}
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				for q.Push(tenants[p], p*items+i) != nil {
					time.Sleep(time.Millisecond)
				}
			}
		}(p)
	}
	seen := map[int]bool{}
	var mu sync.Mutex
	var cg sync.WaitGroup
	cg.Add(2)
	for c := 0; c < 2; c++ {
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("item %d popped twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	if len(seen) != producers*items {
		t.Fatalf("popped %d unique items, want %d", len(seen), producers*items)
	}
}
