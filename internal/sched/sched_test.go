package sched

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ n, def, want int }{
		{1, 4, 1},
		{8, 4, 8},
		{0, 4, 4},
		{-3, 4, 4},
		{0, 0, 1},
		{-1, -5, 1},
	}
	for _, c := range cases {
		if got := Normalize(c.n, c.def); got != c.want {
			t.Errorf("Normalize(%d, %d) = %d, want %d", c.n, c.def, got, c.want)
		}
	}
}

func TestDefaultJobsIsGOMAXPROCS(t *testing.T) {
	if DefaultJobs() != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultJobs = %d, want %d", DefaultJobs(), runtime.GOMAXPROCS(0))
	}
}

func TestPoolRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 200
		var ran [n]atomic.Int32
		p := NewPool(workers, nil)
		for i := 0; i < n; i++ {
			i := i
			p.Submit(func() { ran[i].Add(1) })
		}
		p.Wait()
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestPoolPublishesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(2, reg)
	const n = 10
	for i := 0; i < n; i++ {
		p.Submit(func() {})
	}
	p.Wait()
	snap := reg.Snapshot()
	if got := snap.Counters["sched.tasks_submitted"]; got != n {
		t.Errorf("tasks_submitted = %d, want %d", got, n)
	}
	if got := snap.Counters["sched.tasks_completed"]; got != n {
		t.Errorf("tasks_completed = %d, want %d", got, n)
	}
	if got := snap.Gauges["sched.workers"]; got != 2 {
		t.Errorf("workers gauge = %v, want 2", got)
	}
	if got := snap.Gauges["sched.queue_depth"]; got != 0 {
		t.Errorf("final queue_depth = %v, want 0", got)
	}
	if snap.Gauges["sched.queue_peak"] < 1 {
		t.Errorf("queue_peak = %v, want >= 1", snap.Gauges["sched.queue_peak"])
	}
	if got := snap.Histograms["sched.task_latency_ns"].Count; got != n {
		t.Errorf("task_latency_ns count = %d, want %d", got, n)
	}
	util := snap.Gauges["sched.worker_utilization"]
	if util < 0 || util > 1 {
		t.Errorf("worker_utilization = %v, want within [0, 1]", util)
	}
}

// TestPoolConcurrencyUnderRace exercises the pool with shared-counter
// tasks; run under -race this is the scheduler's data-race check.
func TestPoolConcurrencyUnderRace(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(8, reg)
	var total atomic.Int64
	for i := 0; i < 500; i++ {
		i := i
		p.Submit(func() {
			total.Add(int64(i))
			reg.Counter("test.bumps").Inc()
		})
	}
	p.Wait()
	want := int64(500 * 499 / 2)
	if total.Load() != want {
		t.Errorf("total = %d, want %d", total.Load(), want)
	}
	if got := reg.Snapshot().Counters["test.bumps"]; got != 500 {
		t.Errorf("bumps = %d, want 500", got)
	}
}

func TestPoolSubmitAfterWaitPanics(t *testing.T) {
	p := NewPool(1, nil)
	p.Wait()
	defer func() {
		if recover() == nil {
			t.Error("Submit after Wait did not panic")
		}
	}()
	p.Submit(func() {})
}

func TestForEachCoversRangeAtAnyWidth(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
	// Empty and single-element ranges.
	ForEach(4, 0, func(i int) { t.Error("called on empty range") })
	ran := 0
	ForEach(4, 1, func(i int) { ran++ })
	if ran != 1 {
		t.Errorf("n=1 ran %d times", ran)
	}
}

// TestPoolSurvivesPanickingTasks: a panicking job must not kill its
// worker — the rest of the queue still drains, Wait returns, and the
// panic is counted on sched.panics.
func TestPoolSurvivesPanickingTasks(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(2, reg)
	var ok atomic.Int32
	for i := 0; i < 20; i++ {
		i := i
		p.Submit(func() {
			if i%4 == 0 {
				panic("job exploded")
			}
			ok.Add(1)
		})
	}
	p.Wait()
	if got := ok.Load(); got != 15 {
		t.Errorf("%d healthy tasks ran, want 15", got)
	}
	if got := reg.Counter("sched.panics").Value(); got != 5 {
		t.Errorf("sched.panics = %d, want 5", got)
	}
	if got := reg.Counter("sched.tasks_completed").Value(); got != 20 {
		t.Errorf("sched.tasks_completed = %d, want 20", got)
	}
}

// TestGuardConvertsPanicToError: Guard returns the panic as a
// *PanicError with a stack, counts it, and passes plain errors through.
func TestGuardConvertsPanicToError(t *testing.T) {
	reg := obs.NewRegistry()
	err := Guard(reg, func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want *PanicError", err, err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %+v, want value boom with stack", pe)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("Error() = %q missing panic value", err.Error())
	}
	if got := reg.Counter("sched.panics").Value(); got != 1 {
		t.Errorf("sched.panics = %d, want 1", got)
	}
	if err := Guard(reg, func() error { return nil }); err != nil {
		t.Errorf("clean fn returned %v", err)
	}
	want := errors.New("plain")
	if err := Guard(nil, func() error { return want }); err != want {
		t.Errorf("plain error not passed through: %v", err)
	}
}
