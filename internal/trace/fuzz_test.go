package trace

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal: arbitrary bytes must never panic the parser, and any log
// it accepts must validate and survive a re-marshal round trip.
func FuzzUnmarshal(f *testing.F) {
	f.Add(Marshal(sampleLog()))
	f.Add([]byte("RRLOG"))
	f.Add([]byte{})
	raw := Marshal(sampleLog())
	f.Add(raw[:len(raw)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := Unmarshal(data)
		if err != nil {
			return
		}
		if err := log.Validate(); err != nil {
			t.Fatalf("Unmarshal accepted an invalid log: %v", err)
		}
		again, err := Unmarshal(Marshal(log))
		if err != nil {
			t.Fatalf("re-marshal round trip failed: %v", err)
		}
		if again.Instructions() != log.Instructions() {
			t.Fatal("round trip changed instruction count")
		}
	})
}

// FuzzDecompress: the container parser must be total.
func FuzzDecompress(f *testing.F) {
	f.Add(Compress([]byte("hello")))
	f.Add([]byte("RRLZ1junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		raw, err := Decompress(data)
		if err == nil && !bytes.Equal(Compress(raw)[:5], []byte("RRLZ1")) {
			t.Fatal("recompress lost magic")
		}
	})
}
