package trace

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// FuzzUnmarshal: arbitrary bytes must never panic the parser, and any log
// it accepts must validate and survive a re-marshal round trip.
func FuzzUnmarshal(f *testing.F) {
	f.Add(Marshal(sampleLog()))
	f.Add([]byte("RRLOG"))
	f.Add([]byte{})
	raw := Marshal(sampleLog())
	f.Add(raw[:len(raw)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := Unmarshal(data)
		if err != nil {
			return
		}
		if err := log.Validate(); err != nil {
			t.Fatalf("Unmarshal accepted an invalid log: %v", err)
		}
		again, err := Unmarshal(Marshal(log))
		if err != nil {
			t.Fatalf("re-marshal round trip failed: %v", err)
		}
		if again.Instructions() != log.Instructions() {
			t.Fatal("round trip changed instruction count")
		}
	})
}

// FuzzDecompress: the container parser must be total.
func FuzzDecompress(f *testing.F) {
	f.Add(Compress([]byte("hello")))
	f.Add([]byte("RRLZ1junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		raw, err := Decompress(data)
		if err == nil && !bytes.Equal(Compress(raw)[:5], []byte("RRLZ1")) {
			t.Fatal("recompress lost magic")
		}
	})
}

// FuzzDecodeV2: the segmented container decoder must be total in both
// strict and salvaging modes, and any log it accepts must validate and
// survive a v2 re-encode round trip.
func FuzzDecodeV2(f *testing.F) {
	intact := MarshalV2(sampleLog())
	f.Add(intact)
	f.Add([]byte(fileMagicV2))
	f.Add([]byte{})
	f.Add(intact[:len(intact)/2])
	f.Add(encLenOverflowContainer()) // index encLen wraps the offset sum past 2^64
	typed := func(mode string, err error) {
		var de *DecodeError
		var ve *ValidateError
		if !errors.As(err, &de) && !errors.As(err, &ve) {
			panic(fmt.Sprintf("%s decode returned untyped error %T: %v", mode, err, err))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := DecodeV2(data, V2Options{}); err != nil {
			typed("strict", err)
		}
		log, _, err := DecodeOpts(data, V2Options{QuarantineThreads: true})
		if err != nil {
			typed("salvage", err)
			return
		}
		if err := Validate(log); err != nil {
			return // salvage may keep a log Validate rejects; callers gate on it
		}
		again, faults, err := DecodeOpts(MarshalV2(log), V2Options{})
		if err != nil || len(faults) != 0 {
			t.Fatalf("re-encode round trip failed: faults=%v err=%v", faults, err)
		}
		if again.Instructions() != log.Instructions() {
			t.Fatal("round trip changed instruction count")
		}
	})
}
