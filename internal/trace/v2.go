package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/sched"
)

// The v2 container re-lays the log for decode throughput: instead of one
// flate stream over the whole marshalled log (v1), a fixed self-describing
// header is followed by a segment index and then independently decodable
// segments — one meta segment (program + run metadata) and one segment per
// thread. Segments are stored uncompressed by default so decode is a
// zero-copy walk over the input buffer (per-segment flate is available
// behind a header flag for cold storage), and every segment carries a
// CRC-32C so corruption is localized to the segment it hit. The index is
// first, so a reader can plan — fan segments across workers, or stream one
// thread — after reading only header + index.
//
// Container layout (all fixed-width fields little-endian):
//
//	[0:5]    magic "RRSG2"
//	[5]      version (1)
//	[6]      flags (bit 0: segments are individually deflated)
//	[7]      reserved (0)
//	[8:12]   segment count
//	[12:16]  CRC-32C of the index bytes
//	[16:..]  index: 40 bytes per segment
//	[..:EOF] segment payloads, packed in index order
//
// Index entry layout:
//
//	[0]      kind (0 meta, 1 thread)
//	[1:4]    reserved (0)
//	[4:8]    thread id (0 for the meta segment)
//	[8:16]   payload offset, relative to the end of the index
//	[16:24]  encoded payload length
//	[24:32]  raw (inflated) payload length; equals encoded when not deflated
//	[32:36]  CRC-32C of the encoded payload
//	[36:40]  reserved (0)
//
// Segment payloads use the same varint/delta discipline as v1, with two
// encodings v1 lacks: register files are stored sparse (only nonzero
// registers), and load addresses are signed deltas from the previous load
// instead of absolute values. Decoding reads varints directly off the
// input slice — no bytes.Reader indirection — which is where the serial
// decode win over v1 comes from; the index is where the parallel win
// comes from.
const (
	fileMagicV2     = "RRSG2"
	v2Version       = 1
	v2HeaderLen     = 16
	v2IndexEntryLen = 40

	flagSegDeflate = 1 << 0

	segKindMeta   = 0
	segKindThread = 1
)

// crcTable is the CRC-32C (Castagnoli) table segment checksums use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	errVarintOverflow = errors.New("varint overflows 64 bits")
	// errChecksum means a segment's payload does not match the CRC its
	// index entry recorded — the bytes were damaged after encoding.
	errChecksum = errors.New("segment checksum mismatch")
)

// Minimum encoded sizes of v2 stream entries, for the same count-cap
// discipline the v1 decoder applies: no count translates into an
// allocation the remaining bytes cannot justify.
const (
	minLoadV2 = 3 // idx delta + addr delta + value
	minSeqV2  = 3 // idx delta + ts delta + kind byte
	minKFV2   = 4 // idx delta + pc + register count + view count
)

// V2Options tunes DecodeV2 (and the format-sniffing entry points that
// forward to it; the v1 path ignores everything but Metrics).
type V2Options struct {
	// Jobs is the worker count thread-segment decode fans across
	// (<= 1 decodes serially). Results are slot-ordered, so the decoded
	// log is identical at every worker count.
	Jobs int
	// QuarantineThreads salvages a log whose corruption is confined to
	// thread segments: corrupt segments are dropped and reported as
	// ThreadFaults while the healthy remainder decodes, provided the
	// header, index, and meta segment are intact and the surviving log
	// still validates. Off means strict: any segment fault fails the log.
	QuarantineThreads bool
	// Metrics receives the decode.v2.* counters (nil is off, as
	// everywhere in obs).
	Metrics *obs.Registry
}

// ThreadFault reports one thread segment dropped by quarantine-mode
// decode: which segment, which thread the index attributed it to, and the
// typed error that condemned it.
type ThreadFault struct {
	Segment int
	TID     int
	Err     error
}

func (f ThreadFault) String() string {
	return fmt.Sprintf("segment %d (thread %d): %v", f.Segment, f.TID, f.Err)
}

// segEntry is one parsed index entry.
type segEntry struct {
	kind   byte
	tid    uint32
	off    uint64
	encLen uint64
	rawLen uint64
	crc    uint32
}

// MarshalV2 serializes log into the v2 container with uncompressed
// segments — the zero-copy layout Write-side tooling defaults to.
func MarshalV2(log *Log) []byte { return EncodeV2(log, false) }

// EncodeV2 serializes log into the v2 container. With compressSegments
// each segment payload is individually deflated (best compression), which
// trades decode throughput for the §5.1 compressed-footprint regime.
func EncodeV2(log *Log, compressSegments bool) []byte {
	payloads := make([][]byte, 0, 1+len(log.Threads))
	entries := make([]segEntry, 0, 1+len(log.Threads))
	payloads = append(payloads, encodeMetaV2(log))
	entries = append(entries, segEntry{kind: segKindMeta})
	for _, t := range log.Threads {
		payloads = append(payloads, encodeThreadV2(t))
		entries = append(entries, segEntry{kind: segKindThread, tid: uint32(t.TID)})
	}

	var flags byte
	if compressSegments {
		flags |= flagSegDeflate
	}
	off := uint64(0)
	total := 0
	for i, raw := range payloads {
		enc := raw
		if compressSegments {
			enc = deflateBytes(raw)
		}
		entries[i].off = off
		entries[i].encLen = uint64(len(enc))
		entries[i].rawLen = uint64(len(raw))
		entries[i].crc = crc32.Checksum(enc, crcTable)
		off += uint64(len(enc))
		total += len(enc)
		payloads[i] = enc
	}

	idxLen := len(entries) * v2IndexEntryLen
	out := make([]byte, v2HeaderLen+idxLen, v2HeaderLen+idxLen+total)
	copy(out, fileMagicV2)
	out[5] = v2Version
	out[6] = flags
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(entries)))
	for i, e := range entries {
		b := out[v2HeaderLen+i*v2IndexEntryLen:]
		b[0] = e.kind
		binary.LittleEndian.PutUint32(b[4:8], e.tid)
		binary.LittleEndian.PutUint64(b[8:16], e.off)
		binary.LittleEndian.PutUint64(b[16:24], e.encLen)
		binary.LittleEndian.PutUint64(b[24:32], e.rawLen)
		binary.LittleEndian.PutUint32(b[32:36], e.crc)
	}
	binary.LittleEndian.PutUint32(out[12:16], crc32.Checksum(out[v2HeaderLen:v2HeaderLen+idxLen], crcTable))
	for _, p := range payloads {
		out = append(out, p...)
	}
	return out
}

// WriteV2 serializes log to w in the v2 container (uncompressed segments).
func WriteV2(w io.Writer, log *Log) error {
	_, err := w.Write(MarshalV2(log))
	return err
}

func deflateBytes(raw []byte) []byte {
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestCompression)
	if err != nil {
		panic(err) // only on invalid level
	}
	if _, err := fw.Write(raw); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	fw.Close()
	return out.Bytes()
}

func encodeSparseRegs(e *encoder, regs *[isa.NumRegs]uint64) {
	n := 0
	for _, r := range regs {
		if r != 0 {
			n++
		}
	}
	e.u(uint64(n))
	for i, r := range regs {
		if r != 0 {
			e.u(uint64(i))
			e.u(r)
		}
	}
}

// encodeMetaV2 serializes the program and run metadata — everything in
// the log except the threads.
func encodeMetaV2(log *Log) []byte {
	var e encoder
	p := log.Prog
	e.str(p.Name)
	e.bytes(isa.EncodeCode(p.Code))
	e.u(uint64(p.Entry))
	addrs := make([]uint64, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.u(uint64(len(addrs)))
	prevAddr := uint64(0)
	for _, a := range addrs {
		e.u(a - prevAddr)
		prevAddr = a
		e.u(p.Data[a])
	}
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	e.u(uint64(len(names)))
	for _, n := range names {
		e.str(n)
		e.u(uint64(p.Symbols[n]))
	}

	e.i(log.Seed)
	e.u(log.FinalClock)
	e.u(log.TotalSteps)
	if log.Deadlocked {
		e.u(1)
	} else {
		e.u(0)
	}
	e.u(uint64(len(log.Threads)))
	return append([]byte(nil), e.buf.Bytes()...)
}

// encodeThreadV2 serializes one thread's log as a self-contained segment
// payload.
func encodeThreadV2(t *ThreadLog) []byte {
	var e encoder
	e.u(uint64(t.TID))
	e.u(t.StartTS)
	e.u(t.EndTS - t.StartTS) // wrapping delta: lossless for any pair
	e.u(uint64(t.InitPC))
	encodeSparseRegs(&e, &t.InitRegs)
	e.u(t.Retired)
	e.u(uint64(t.EndReason))
	e.u(t.ExitCode)
	if t.Fault != nil {
		e.u(1)
		e.u(uint64(t.Fault.Kind))
		e.u(uint64(t.Fault.PC))
		e.u(t.Fault.Addr)
	} else {
		e.u(0)
	}

	e.u(uint64(len(t.Loads)))
	prevIdx, prevAddr := uint64(0), uint64(0)
	for _, l := range t.Loads {
		e.u(l.Idx - prevIdx)
		prevIdx = l.Idx
		e.i(int64(l.Addr - prevAddr)) // signed wrapping delta
		prevAddr = l.Addr
		e.u(l.Val)
	}

	e.u(uint64(len(t.SysRets)))
	prevIdx = 0
	for _, s := range t.SysRets {
		e.u(s.Idx - prevIdx)
		prevIdx = s.Idx
		e.u(s.Res)
	}

	e.u(uint64(len(t.Seqs)))
	prevIdx, prevTS := uint64(0), uint64(0)
	for _, s := range t.Seqs {
		e.u(s.Idx - prevIdx)
		prevIdx = s.Idx
		e.u(s.TS - prevTS)
		prevTS = s.TS
		kb := byte(s.Kind) & 0x7f
		if s.Aux != -1 {
			kb |= 0x80
		}
		e.buf.WriteByte(kb)
		if s.Aux != -1 {
			e.i(s.Aux)
		}
	}

	e.u(uint64(len(t.KeyFrames)))
	prevIdx = 0
	for _, kf := range t.KeyFrames {
		e.u(kf.Idx - prevIdx)
		prevIdx = kf.Idx
		e.u(uint64(kf.PC))
		regs := kf.Regs
		encodeSparseRegs(&e, &regs)
		e.u(uint64(len(kf.View)))
		prevAddr := uint64(0)
		for _, v := range kf.View {
			e.u(v.Addr - prevAddr)
			prevAddr = v.Addr
			e.u(v.Val)
		}
	}
	return append([]byte(nil), e.buf.Bytes()...)
}

// sdec decodes varints directly off a byte slice — the zero-copy
// counterpart of the v1 decoder's bytes.Reader, with the same typed-error
// and count-cap discipline. base is the slice's offset within the
// container, so reported offsets are container-absolute for uncompressed
// segments (and payload-relative for deflated ones).
type sdec struct {
	buf     []byte
	off     int
	base    int
	section string
}

func (d *sdec) in(section string) { d.section = section }

func (d *sdec) rem() int { return len(d.buf) - d.off }

func (d *sdec) fail(err error) error {
	return &DecodeError{Offset: d.base + d.off, Section: d.section, Err: err}
}

func (d *sdec) u() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n == 0 {
		return 0, d.fail(ErrTruncated)
	}
	if n < 0 {
		return 0, d.fail(errVarintOverflow)
	}
	d.off += n
	return v, nil
}

func (d *sdec) i() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n == 0 {
		return 0, d.fail(ErrTruncated)
	}
	if n < 0 {
		return 0, d.fail(errVarintOverflow)
	}
	d.off += n
	return v, nil
}

func (d *sdec) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, d.fail(ErrTruncated)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

// count reads a count prefix for entries of at least minSize encoded
// bytes each and rejects counts the remaining input cannot hold.
func (d *sdec) count(minSize int) (uint64, error) {
	n, err := d.u()
	if err != nil {
		return 0, err
	}
	if n > uint64(d.rem())/uint64(minSize) {
		return 0, d.fail(fmt.Errorf("%w: %d entries of >= %d bytes with %d bytes left",
			ErrLengthOverflow, n, minSize, d.rem()))
	}
	return n, nil
}

// take returns the next n bytes as a subslice of the input (no copy).
func (d *sdec) take(n uint64) ([]byte, error) {
	if n > uint64(d.rem()) {
		return nil, d.fail(fmt.Errorf("%w: %d bytes announced, %d left", ErrLengthOverflow, n, d.rem()))
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *sdec) byteSlice() ([]byte, error) {
	n, err := d.u()
	if err != nil {
		return nil, err
	}
	return d.take(n)
}

func (d *sdec) str() (string, error) {
	b, err := d.byteSlice()
	return string(b), err
}

func (d *sdec) sparseRegs(regs *[isa.NumRegs]uint64) error {
	n, err := d.u()
	if err != nil {
		return err
	}
	if n > isa.NumRegs {
		return d.fail(fmt.Errorf("%w: %d register entries, machine has %d", ErrLengthOverflow, n, isa.NumRegs))
	}
	last := -1
	for i := uint64(0); i < n; i++ {
		ri, err := d.u()
		if err != nil {
			return err
		}
		if ri >= isa.NumRegs {
			return d.fail(fmt.Errorf("register index %d out of range", ri))
		}
		if int(ri) <= last {
			return d.fail(fmt.Errorf("register indices not ascending"))
		}
		last = int(ri)
		if regs[ri], err = d.u(); err != nil {
			return err
		}
	}
	return nil
}

// done rejects trailing bytes: a segment's payload must be consumed
// exactly, so damage that shifts the stream cannot hide in slack.
func (d *sdec) done() error {
	if d.off != len(d.buf) {
		return d.fail(fmt.Errorf("%d trailing bytes after segment payload", d.rem()))
	}
	return nil
}

// decodeMetaV2 parses the meta segment into a log skeleton (no threads)
// and the thread count the meta announced.
func decodeMetaV2(payload []byte, base int) (*Log, uint64, error) {
	d := sdec{buf: payload, base: base}
	log := &Log{}
	p := isa.NewProgram("")
	d.in("segment 0 (meta) program")
	var err error
	if p.Name, err = d.str(); err != nil {
		return nil, 0, err
	}
	codeBytes, err := d.byteSlice()
	if err != nil {
		return nil, 0, err
	}
	if p.Code, err = isa.DecodeCode(codeBytes); err != nil {
		return nil, 0, d.fail(err)
	}
	entry, err := d.u()
	if err != nil {
		return nil, 0, err
	}
	p.Entry = int(entry)
	d.in("segment 0 (meta) program data")
	nData, err := d.count(minDataBytes)
	if err != nil {
		return nil, 0, err
	}
	addr := uint64(0)
	for i := uint64(0); i < nData; i++ {
		da, err := d.u()
		if err != nil {
			return nil, 0, err
		}
		addr += da
		if p.Data[addr], err = d.u(); err != nil {
			return nil, 0, err
		}
	}
	d.in("segment 0 (meta) program symbols")
	nSyms, err := d.count(minSymBytes)
	if err != nil {
		return nil, 0, err
	}
	for i := uint64(0); i < nSyms; i++ {
		name, err := d.str()
		if err != nil {
			return nil, 0, err
		}
		at, err := d.u()
		if err != nil {
			return nil, 0, err
		}
		p.Symbols[name] = int(at)
	}
	log.Prog = p

	d.in("segment 0 (meta) run metadata")
	if log.Seed, err = d.i(); err != nil {
		return nil, 0, err
	}
	if log.FinalClock, err = d.u(); err != nil {
		return nil, 0, err
	}
	if log.TotalSteps, err = d.u(); err != nil {
		return nil, 0, err
	}
	dl, err := d.u()
	if err != nil {
		return nil, 0, err
	}
	log.Deadlocked = dl != 0
	nThreads, err := d.u()
	if err != nil {
		return nil, 0, err
	}
	if err := d.done(); err != nil {
		return nil, 0, err
	}
	return log, nThreads, nil
}

// decodeThreadV2 parses one thread segment payload. seg and wantTID come
// from the index; the payload's own thread id must agree.
func decodeThreadV2(payload []byte, base, seg int, wantTID uint32) (*ThreadLog, error) {
	d := sdec{buf: payload, base: base}
	d.in(fmt.Sprintf("segment %d (thread %d) header", seg, wantTID))
	t := &ThreadLog{}
	var v uint64
	var err error
	if v, err = d.u(); err != nil {
		return nil, err
	}
	t.TID = int(v)
	if uint64(wantTID) != v {
		return nil, d.fail(fmt.Errorf("thread id %d disagrees with index entry (%d)", v, wantTID))
	}
	if t.StartTS, err = d.u(); err != nil {
		return nil, err
	}
	if v, err = d.u(); err != nil {
		return nil, err
	}
	t.EndTS = t.StartTS + v
	if v, err = d.u(); err != nil {
		return nil, err
	}
	t.InitPC = int(v)
	if err = d.sparseRegs(&t.InitRegs); err != nil {
		return nil, err
	}
	if t.Retired, err = d.u(); err != nil {
		return nil, err
	}
	if v, err = d.u(); err != nil {
		return nil, err
	}
	t.EndReason = EndReason(v)
	if t.ExitCode, err = d.u(); err != nil {
		return nil, err
	}
	if v, err = d.u(); err != nil {
		return nil, err
	}
	if v != 0 {
		f := &FaultRec{}
		if v, err = d.u(); err != nil {
			return nil, err
		}
		f.Kind = int(v)
		if v, err = d.u(); err != nil {
			return nil, err
		}
		f.PC = int(v)
		if f.Addr, err = d.u(); err != nil {
			return nil, err
		}
		t.Fault = f
	}

	d.in(fmt.Sprintf("segment %d (thread %d) loads", seg, wantTID))
	nLoads, err := d.count(minLoadV2)
	if err != nil {
		return nil, err
	}
	idx, addr := uint64(0), uint64(0)
	t.Loads = make([]LoadRec, 0, nLoads)
	for j := uint64(0); j < nLoads; j++ {
		di, err := d.u()
		if err != nil {
			return nil, err
		}
		idx += di
		da, err := d.i()
		if err != nil {
			return nil, err
		}
		addr += uint64(da)
		val, err := d.u()
		if err != nil {
			return nil, err
		}
		t.Loads = append(t.Loads, LoadRec{Idx: idx, Addr: addr, Val: val})
	}

	d.in(fmt.Sprintf("segment %d (thread %d) sysrets", seg, wantTID))
	nSys, err := d.count(minSysBytes)
	if err != nil {
		return nil, err
	}
	idx = 0
	t.SysRets = make([]SysRec, 0, nSys)
	for j := uint64(0); j < nSys; j++ {
		di, err := d.u()
		if err != nil {
			return nil, err
		}
		idx += di
		res, err := d.u()
		if err != nil {
			return nil, err
		}
		t.SysRets = append(t.SysRets, SysRec{Idx: idx, Res: res})
	}

	d.in(fmt.Sprintf("segment %d (thread %d) sequencers", seg, wantTID))
	nSeqs, err := d.count(minSeqV2)
	if err != nil {
		return nil, err
	}
	idx = 0
	ts := uint64(0)
	t.Seqs = make([]Sequencer, 0, nSeqs)
	for j := uint64(0); j < nSeqs; j++ {
		di, err := d.u()
		if err != nil {
			return nil, err
		}
		idx += di
		dt, err := d.u()
		if err != nil {
			return nil, err
		}
		ts += dt
		kb, err := d.byte()
		if err != nil {
			return nil, err
		}
		aux := int64(-1)
		if kb&0x80 != 0 {
			if aux, err = d.i(); err != nil {
				return nil, err
			}
		}
		t.Seqs = append(t.Seqs, Sequencer{Idx: idx, TS: ts, Kind: SeqKind(kb & 0x7f), Aux: aux})
	}

	d.in(fmt.Sprintf("segment %d (thread %d) key frames", seg, wantTID))
	nKF, err := d.count(minKFV2)
	if err != nil {
		return nil, err
	}
	idx = 0
	if nKF > 0 {
		t.KeyFrames = make([]KeyFrame, 0, nKF)
	}
	for j := uint64(0); j < nKF; j++ {
		var kf KeyFrame
		di, err := d.u()
		if err != nil {
			return nil, err
		}
		idx += di
		kf.Idx = idx
		pc, err := d.u()
		if err != nil {
			return nil, err
		}
		kf.PC = int(pc)
		if err = d.sparseRegs(&kf.Regs); err != nil {
			return nil, err
		}
		nView, err := d.count(minViewBytes)
		if err != nil {
			return nil, err
		}
		va := uint64(0)
		kf.View = make([]LoadRec, 0, nView)
		for k := uint64(0); k < nView; k++ {
			da, err := d.u()
			if err != nil {
				return nil, err
			}
			va += da
			val, err := d.u()
			if err != nil {
				return nil, err
			}
			kf.View = append(kf.View, LoadRec{Addr: va, Val: val})
		}
		t.KeyFrames = append(t.KeyFrames, kf)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return t, nil
}

// segSource abstracts where segment bytes come from: a resident buffer
// (zero-copy subslices) or an io.ReaderAt (per-segment reads, so a
// spooled container is never fully materialized).
type segSource interface {
	slice(off int64, n int) ([]byte, error)
}

type byteSource []byte

func (b byteSource) slice(off int64, n int) ([]byte, error) {
	// Bounds were validated against the container size at index parse.
	return b[off : off+int64(n)], nil
}

type fileSource struct{ r io.ReaderAt }

func (f fileSource) slice(off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := f.r.ReadAt(buf, off); err != nil {
		return nil, &DecodeError{Offset: int(off), Section: "segment payload", Err: fmt.Errorf("read: %w", err)}
	}
	return buf, nil
}

// v2Index is the parsed header + index of a v2 container.
type v2Index struct {
	flags     byte
	entries   []segEntry
	areaStart int
}

func (x *v2Index) deflated() bool { return x.flags&flagSegDeflate != 0 }

// parseV2Index validates the fixed header and the segment index of a
// container of `total` bytes, of which hdr holds at least the header and
// index region. It enforces the canonical packed layout — segment 0 is
// the meta segment, offsets are contiguous in index order, and the last
// segment ends exactly at the end of the container — so overlapping or
// out-of-order index entries are rejected outright.
func parseV2Index(hdr []byte, total int64) (*v2Index, error) {
	fail := func(off int, section string, err error) error {
		return &DecodeError{Offset: off, Section: section, Err: err}
	}
	if len(hdr) < len(fileMagicV2) || string(hdr[:len(fileMagicV2)]) != fileMagicV2 {
		return nil, fail(0, "v2 magic", ErrBadMagic)
	}
	if len(hdr) < v2HeaderLen {
		return nil, fail(len(hdr), "v2 header", ErrTruncated)
	}
	if hdr[5] != v2Version {
		return nil, fail(5, "v2 header", fmt.Errorf("unsupported version %d", hdr[5]))
	}
	flags := hdr[6]
	if flags&^byte(flagSegDeflate) != 0 {
		return nil, fail(6, "v2 header", fmt.Errorf("unknown flags %#x", flags))
	}
	nSegs := binary.LittleEndian.Uint32(hdr[8:12])
	if nSegs == 0 {
		return nil, fail(8, "v2 header", fmt.Errorf("container has no segments"))
	}
	idxLen := int64(nSegs) * v2IndexEntryLen
	areaStart := int64(v2HeaderLen) + idxLen
	if areaStart > total {
		return nil, fail(8, "v2 header", fmt.Errorf("%w: %d index entries with %d bytes total",
			ErrLengthOverflow, nSegs, total))
	}
	if int64(len(hdr)) < areaStart {
		return nil, fail(len(hdr), "v2 index", ErrTruncated)
	}
	idxBytes := hdr[v2HeaderLen:areaStart]
	if crc32.Checksum(idxBytes, crcTable) != binary.LittleEndian.Uint32(hdr[12:16]) {
		return nil, fail(12, "v2 index", errChecksum)
	}

	deflated := flags&flagSegDeflate != 0
	entries := make([]segEntry, nSegs)
	running := uint64(0)
	var totalRaw uint64
	for i := range entries {
		b := idxBytes[i*v2IndexEntryLen:]
		e := segEntry{
			kind:   b[0],
			tid:    binary.LittleEndian.Uint32(b[4:8]),
			off:    binary.LittleEndian.Uint64(b[8:16]),
			encLen: binary.LittleEndian.Uint64(b[16:24]),
			rawLen: binary.LittleEndian.Uint64(b[24:32]),
			crc:    binary.LittleEndian.Uint32(b[32:36]),
		}
		entryOff := v2HeaderLen + i*v2IndexEntryLen
		if i == 0 && e.kind != segKindMeta {
			return nil, fail(entryOff, "v2 index", fmt.Errorf("segment 0 is kind %d, want meta", e.kind))
		}
		if i > 0 && e.kind != segKindThread {
			return nil, fail(entryOff, "v2 index", fmt.Errorf("segment %d is kind %d, want thread", i, e.kind))
		}
		if e.off != running {
			return nil, fail(entryOff, "v2 index", fmt.Errorf("segment %d at offset %d, want packed at %d", i, e.off, running))
		}
		if e.rawLen > MaxRawLogBytes {
			return nil, fail(entryOff, "v2 index", ErrTooLarge)
		}
		if !deflated && e.rawLen != e.encLen {
			return nil, fail(entryOff, "v2 index", fmt.Errorf("segment %d raw length %d != encoded %d without deflate",
				i, e.rawLen, e.encLen))
		}
		// Checked before accumulating so a huge encLen cannot wrap running
		// past the `> total` guard; running <= total holds on entry, so the
		// subtraction is safe.
		if e.encLen > uint64(total)-running {
			return nil, fail(entryOff, "v2 index", ErrTruncated)
		}
		running += e.encLen
		totalRaw += e.rawLen
		if totalRaw > MaxRawLogBytes {
			return nil, fail(entryOff, "v2 index", ErrTooLarge)
		}
		entries[i] = e
	}
	if int64(running)+areaStart != total {
		return nil, fail(int(areaStart), "v2 index",
			fmt.Errorf("segments cover %d bytes, container has %d after index", running, total-areaStart))
	}
	return &v2Index{flags: flags, entries: entries, areaStart: int(areaStart)}, nil
}

// DecodeV2 parses a v2 container. Thread segments fan across
// opts.Jobs workers (internal/sched); the decoded log is identical at
// every worker count. In strict mode any segment fault fails the whole
// log with a typed error; with opts.QuarantineThreads the fault is
// confined to its thread where structurally safe (see V2Options).
func DecodeV2(data []byte, opts V2Options) (*Log, []ThreadFault, error) {
	idx, err := parseV2Index(data, int64(len(data)))
	if err != nil {
		opts.Metrics.Counter("decode.v2.rejected").Inc()
		return nil, nil, err
	}
	return decodeV2Segments(byteSource(data), idx, opts)
}

// segmentPayload fetches, checksums, and (when flagged) inflates one
// segment's payload. The returned base is the payload's container offset
// for error reporting (0 for inflated payloads, whose offsets are
// payload-relative).
func segmentPayload(src segSource, idx *v2Index, i int, reg *obs.Registry) ([]byte, int, error) {
	e := idx.entries[i]
	off := int64(idx.areaStart) + int64(e.off)
	enc, err := src.slice(off, int(e.encLen))
	if err != nil {
		return nil, 0, err
	}
	if crc32.Checksum(enc, crcTable) != e.crc {
		reg.Counter("decode.v2.crc_errors").Inc()
		return nil, 0, &DecodeError{Offset: int(off), Section: fmt.Sprintf("segment %d", i), Err: errChecksum}
	}
	if !idx.deflated() {
		return enc, int(off), nil
	}
	fr := flate.NewReader(bytes.NewReader(enc))
	defer fr.Close()
	raw, err := io.ReadAll(io.LimitReader(fr, int64(e.rawLen)+1))
	if err != nil {
		return nil, 0, &DecodeError{Offset: int(off), Section: fmt.Sprintf("segment %d", i), Err: fmt.Errorf("inflate: %w", err)}
	}
	if uint64(len(raw)) != e.rawLen {
		return nil, 0, &DecodeError{Offset: int(off), Section: fmt.Sprintf("segment %d", i),
			Err: fmt.Errorf("segment inflated to %d bytes, index says %d", len(raw), e.rawLen)}
	}
	return raw, 0, nil
}

func decodeV2Segments(src segSource, idx *v2Index, opts V2Options) (*Log, []ThreadFault, error) {
	reg := opts.Metrics
	reject := func(err error) (*Log, []ThreadFault, error) {
		reg.Counter("decode.v2.rejected").Inc()
		return nil, nil, err
	}
	meta, metaBase, err := segmentPayload(src, idx, 0, reg)
	if err != nil {
		return reject(err)
	}
	log, nThreads, err := decodeMetaV2(meta, metaBase)
	if err != nil {
		return reject(err)
	}
	n := len(idx.entries) - 1
	if nThreads != uint64(n) {
		return reject(&DecodeError{Offset: metaBase, Section: "segment 0 (meta) run metadata",
			Err: fmt.Errorf("meta announces %d threads, index has %d thread segments", nThreads, n)})
	}

	threads := make([]*ThreadLog, n)
	errs := make([]error, n)
	jobs := sched.Normalize(opts.Jobs, 1)
	if jobs > 1 && n > 1 {
		reg.Counter("decode.v2.parallel").Inc()
	}
	sched.ForEach(jobs, n, func(i int) {
		payload, base, err := segmentPayload(src, idx, i+1, reg)
		if err != nil {
			errs[i] = err
			return
		}
		threads[i], errs[i] = decodeThreadV2(payload, base, i+1, idx.entries[i+1].tid)
	})

	var faults []ThreadFault
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !opts.QuarantineThreads {
			return reject(err)
		}
		faults = append(faults, ThreadFault{Segment: i + 1, TID: int(idx.entries[i+1].tid), Err: err})
	}
	if len(faults) == n && n > 0 {
		// Nothing survived: the corruption is not confined, fail the log.
		return reject(faults[0].Err)
	}
	log.Threads = make([]*ThreadLog, 0, n-len(faults))
	for _, t := range threads {
		if t != nil {
			log.Threads = append(log.Threads, t)
		}
	}
	if err := log.Validate(); err != nil {
		// A surviving thread breaks a replay invariant: the damage was
		// not confined to the dropped segments, so the log is condemned.
		reg.Counter("decode.v2.rejected").Inc()
		return nil, nil, err
	}
	reg.Counter("decode.v2.logs").Inc()
	reg.Counter("decode.v2.segments").Add(uint64(len(idx.entries)))
	reg.Counter("decode.v2.quarantined_threads").Add(uint64(len(faults)))
	return log, faults, nil
}

// V2SegmentSpans reports the absolute [start, end) byte range of every
// segment payload in a structurally valid v2 container (segment 0 is
// the meta segment). ok is false when data does not parse as v2.
// Fault-injection support (internal/chaos): layout knowledge stays in
// this package instead of leaking format constants to the injector.
func V2SegmentSpans(data []byte) (spans [][2]int, ok bool) {
	idx, err := parseV2Index(data, int64(len(data)))
	if err != nil {
		return nil, false
	}
	spans = make([][2]int, len(idx.entries))
	for i, e := range idx.entries {
		start := idx.areaStart + int(e.off)
		spans[i] = [2]int{start, start + int(e.encLen)}
	}
	return spans, true
}

// RewriteV2Segment applies mutate to segment seg's encoded payload in
// place, then recomputes the segment and index checksums so the
// mutation reaches the segment decoder instead of dying at the CRC
// gate. It reports false when data is not a structurally valid v2
// container or seg is out of range. Fault-injection support: production
// code never rewrites containers.
func RewriteV2Segment(data []byte, seg int, mutate func(payload []byte)) bool {
	idx, err := parseV2Index(data, int64(len(data)))
	if err != nil || seg < 0 || seg >= len(idx.entries) {
		return false
	}
	e := idx.entries[seg]
	start := idx.areaStart + int(e.off)
	payload := data[start : start+int(e.encLen)]
	mutate(payload)
	entry := data[v2HeaderLen+seg*v2IndexEntryLen:]
	binary.LittleEndian.PutUint32(entry[32:36], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(data[12:16],
		crc32.Checksum(data[v2HeaderLen:idx.areaStart], crcTable))
	return true
}

// StatsV2 measures log's v2 serialized footprint: RawBytes is the
// default (uncompressed-segment) container, CompressedBytes the
// per-segment deflated variant.
func StatsV2(log *Log) SizeStats {
	return SizeStats{
		Instructions:    log.Instructions(),
		RawBytes:        len(EncodeV2(log, false)),
		CompressedBytes: len(EncodeV2(log, true)),
	}
}
