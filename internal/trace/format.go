package trace

import (
	"fmt"
	"io"
)

// Format names an on-disk log container format.
type Format string

const (
	FormatUnknown Format = ""
	// FormatV1 is the original whole-log container: "RRLZ1" + one flate
	// stream over the marshalled log (raw "RRLOG" logs sniff as v1 too).
	FormatV1 Format = "v1"
	// FormatV2 is the segmented container: "RRSG2" header, segment
	// index, independently decodable per-thread segments.
	FormatV2 Format = "v2"
)

// ParseFormat validates a user-facing format name (the -format flags).
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatV1, FormatV2:
		return Format(s), nil
	}
	return FormatUnknown, fmt.Errorf("unknown trace format %q (want v1 or v2)", s)
}

// SniffFormat identifies a container by its magic bytes without decoding
// anything.
func SniffFormat(data []byte) Format {
	if len(data) < 5 {
		return FormatUnknown
	}
	switch string(data[:5]) {
	case fileMagic, rawMagic:
		return FormatV1
	case fileMagicV2:
		return FormatV2
	}
	return FormatUnknown
}

// Decode parses a serialized log of either format, dispatching on the
// sniffed magic: v1 containers decompress + unmarshal, raw v1 logs
// unmarshal directly, v2 containers take the segmented decoder (serial,
// strict). Failures are the package's typed errors in every case.
func Decode(data []byte) (*Log, error) {
	log, _, err := DecodeOpts(data, V2Options{})
	return log, err
}

// DecodeOpts is Decode with the v2 decode options (worker fan-out,
// thread quarantine, metrics). The v1 path is inherently serial and
// all-or-nothing, so it ignores everything but opts.Metrics; its fault
// list is always nil.
func DecodeOpts(data []byte, opts V2Options) (*Log, []ThreadFault, error) {
	switch SniffFormat(data) {
	case FormatV2:
		return DecodeV2(data, opts)
	case FormatV1:
		raw := data
		if string(data[:5]) == fileMagic {
			var err error
			if raw, err = Decompress(data); err != nil {
				return nil, nil, err
			}
		}
		log, err := Unmarshal(raw)
		return log, nil, err
	}
	return nil, nil, &DecodeError{Section: "magic", Err: ErrBadMagic}
}

// DecodeFrom decodes a serialized log from an io.ReaderAt of known size.
// For a v2 container only the header, index, and one segment at a time
// need be resident — a multi-GB spooled container is never fully
// materialized — and thread segments still fan across opts.Jobs workers
// (io.ReaderAt is safe for concurrent reads). v1 containers are
// whole-log by construction, so that path reads everything and decodes
// as Decode would.
func DecodeFrom(r io.ReaderAt, size int64, opts V2Options) (*Log, []ThreadFault, error) {
	var magic [5]byte
	if size < int64(len(magic)) {
		return nil, nil, &DecodeError{Section: "magic", Err: ErrBadMagic}
	}
	if _, err := r.ReadAt(magic[:], 0); err != nil {
		return nil, nil, &DecodeError{Section: "magic", Err: fmt.Errorf("read: %w", err)}
	}
	switch SniffFormat(magic[:]) {
	case FormatV2:
		hdr := make([]byte, v2HeaderLen)
		if size < v2HeaderLen {
			return nil, nil, &DecodeError{Offset: int(size), Section: "v2 header", Err: ErrTruncated}
		}
		if _, err := r.ReadAt(hdr, 0); err != nil {
			return nil, nil, &DecodeError{Section: "v2 header", Err: fmt.Errorf("read: %w", err)}
		}
		// Parse the header alone first: it bounds the index length, so
		// the index read below is validated before it is allocated.
		if _, err := parseV2Index(hdr, size); err != nil {
			var de *DecodeError
			// An index shorter than the header region is expected here —
			// everything else is a real header error.
			if !asDecodeError(err, &de) || de.Section != "v2 index" || de.Err != ErrTruncated {
				return nil, nil, err
			}
		}
		nSegs := int64(le32(hdr[8:12]))
		areaStart := int64(v2HeaderLen) + nSegs*v2IndexEntryLen
		full := make([]byte, areaStart)
		if _, err := r.ReadAt(full, 0); err != nil {
			return nil, nil, &DecodeError{Section: "v2 index", Err: fmt.Errorf("read: %w", err)}
		}
		idx, err := parseV2Index(full, size)
		if err != nil {
			opts.Metrics.Counter("decode.v2.rejected").Inc()
			return nil, nil, err
		}
		return decodeV2Segments(fileSource{r}, idx, opts)
	case FormatV1:
		data := make([]byte, size)
		if _, err := r.ReadAt(data, 0); err != nil {
			return nil, nil, &DecodeError{Section: "container payload", Err: fmt.Errorf("read: %w", err)}
		}
		return DecodeOpts(data, opts)
	}
	return nil, nil, &DecodeError{Section: "magic", Err: ErrBadMagic}
}

// WriteFormat serializes log to w in the named format: v1 is the
// compressed whole-log container, v2 the segmented container with
// uncompressed segments.
func WriteFormat(w io.Writer, log *Log, f Format) error {
	switch f {
	case FormatV1:
		return Write(w, log)
	case FormatV2:
		return WriteV2(w, log)
	}
	return fmt.Errorf("unknown trace format %q", string(f))
}

// StatsFormat measures log's serialized footprint in the named format
// (v1: Stats; v2: StatsV2).
func StatsFormat(log *Log, f Format) SizeStats {
	if f == FormatV2 {
		return StatsV2(log)
	}
	return Stats(log)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func asDecodeError(err error, target **DecodeError) bool {
	de, ok := err.(*DecodeError)
	if ok {
		*target = de
	}
	return ok
}
