package trace

import (
	"encoding/json"
	"fmt"
	"os"
)

// ManifestSchemaID identifies the manifest JSON layout; bump on
// incompatible change.
const ManifestSchemaID = "racereplay-manifest/v1"

// Manifest is the record-suite sidecar that carries each recorded
// log's online-detector verdict across process boundaries. The Online
// annotation on a Log is in-memory only — the wire format never
// serializes it — so without the manifest a separate analyze-dir
// process must take the full offline pass even for logs the online
// detector already proved race-free. The manifest closes that gap: a
// consumer that trusts an entry (filename AND content hash must both
// match) may re-attach the verdict and take the race-free fast path.
//
// The manifest is advisory, never authoritative: a missing, stale, or
// mismatched entry only costs the fast path, and raced or stopped
// entries are recorded for provenance but never skip anything.
type Manifest struct {
	Schema  string          `json:"schema"`
	Entries []ManifestEntry `json:"entries"`
}

// ManifestEntry is one recorded log's verdict record.
type ManifestEntry struct {
	// File is the log's base filename within the recording directory.
	File string `json:"file"`
	// LogSHA256 is the hex SHA-256 of the log's canonical serialization;
	// an entry applies only to a file with this exact content identity.
	LogSHA256 string `json:"log_sha256"`
	// RaceFree reports the online detector's verdict for the recording.
	RaceFree bool `json:"race_free"`
	// Races counts the distinct racy site pairs observed (0 if RaceFree).
	Races int `json:"races,omitempty"`
	// Stopped reports that recording ended early under stop-on-race; a
	// stopped log always takes the full offline pass.
	Stopped bool `json:"stopped,omitempty"`
	// ObservedPCs lists, ascending, every code index that performed a
	// data memory access — what the race-free fast path substitutes for
	// the replay's observed-site set.
	ObservedPCs []int `json:"observed_pcs,omitempty"`
}

// NewManifest returns an empty manifest envelope.
func NewManifest() *Manifest { return &Manifest{Schema: ManifestSchemaID} }

// Add appends one log's verdict under its filename and content hash.
func (m *Manifest) Add(file, sha256 string, info *OnlineInfo) {
	e := ManifestEntry{File: file, LogSHA256: sha256}
	if info != nil {
		e.RaceFree = info.RaceFree
		e.Races = info.Races
		e.Stopped = info.Stopped
		e.ObservedPCs = append([]int(nil), info.ObservedPCs...)
	}
	m.Entries = append(m.Entries, e)
}

// Lookup returns the entry matching both the filename and the content
// hash, or nil. Both must match: a renamed file or a re-recorded log
// with the same name silently loses its entry instead of inheriting a
// stale verdict.
func (m *Manifest) Lookup(file, sha256 string) *ManifestEntry {
	if m == nil {
		return nil
	}
	for i := range m.Entries {
		e := &m.Entries[i]
		if e.File == file && e.LogSHA256 == sha256 {
			return e
		}
	}
	return nil
}

// Online converts an entry back into the in-memory annotation the
// race-free fast path consumes.
func (e *ManifestEntry) Online() *OnlineInfo {
	return &OnlineInfo{
		RaceFree:    e.RaceFree,
		Races:       e.Races,
		Stopped:     e.Stopped,
		ObservedPCs: append([]int(nil), e.ObservedPCs...),
	}
}

// Validate checks the envelope against the schema contract.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchemaID {
		return fmt.Errorf("manifest schema %q, want %q", m.Schema, ManifestSchemaID)
	}
	for i, e := range m.Entries {
		if e.File == "" {
			return fmt.Errorf("manifest entry %d has no filename", i)
		}
		if len(e.LogSHA256) != 64 {
			return fmt.Errorf("manifest entry %s: log hash %q is not a hex sha256", e.File, e.LogSHA256)
		}
		if e.RaceFree && e.Races > 0 {
			return fmt.Errorf("manifest entry %s: race-free with %d races", e.File, e.Races)
		}
	}
	return nil
}

// WriteFile validates and writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("manifest: refusing to serialize invalid file: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest loads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", path, err)
	}
	return &m, nil
}
