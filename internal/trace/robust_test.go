package trace

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// allocDelta measures the bytes allocated while running f, single
// threaded. Tests in this package run sequentially, so the delta is a
// faithful upper bound on what f itself allocated.
func allocDelta(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestInflatedLengthRejectedBounded is the regression test for the
// hostile-varint hole: a log whose name length claims 2^62 bytes must be
// rejected with ErrLengthOverflow before any allocation proportional to
// the claim happens.
func TestInflatedLengthRejectedBounded(t *testing.T) {
	var e encoder
	e.buf.WriteString(rawMagic)
	e.u(formatVersion)
	e.u(1 << 62) // program name announces 4 EiB
	e.buf.WriteString("tiny")
	raw := e.buf.Bytes()

	var err error
	delta := allocDelta(func() { _, err = Unmarshal(raw) })
	if err == nil {
		t.Fatal("inflated length accepted")
	}
	if !errors.Is(err, ErrLengthOverflow) {
		t.Fatalf("err = %v, want ErrLengthOverflow", err)
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T, want *DecodeError", err)
	}
	if de.Section != "program" {
		t.Errorf("section = %q, want %q", de.Section, "program")
	}
	if delta > 1<<20 {
		t.Errorf("decode of a %d-byte input allocated %d bytes", len(raw), delta)
	}
}

// TestInflatedCountsRejectedBounded patches each stream-count varint of
// a valid log to a huge value: every one must be rejected with
// ErrLengthOverflow and bounded allocation, never trusted into a make().
func TestInflatedCountsRejectedBounded(t *testing.T) {
	raw := Marshal(sampleLog())
	// Walk the payload and, at every byte position, splice in a maximal
	// varint in place of the original byte. Wherever that position held a
	// count or length prefix, the decoder must fail fast; everywhere else
	// it may fail differently or even accept — but it must stay bounded.
	var huge [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(huge[:], 1<<62)
	for pos := len(rawMagic) + 1; pos < len(raw); pos++ {
		mut := make([]byte, 0, len(raw)+n)
		mut = append(mut, raw[:pos]...)
		mut = append(mut, huge[:n]...)
		mut = append(mut, raw[pos+1:]...)
		delta := allocDelta(func() { Unmarshal(mut) })
		if delta > 4<<20 {
			t.Fatalf("byte %d: inflated varint drove allocation to %d bytes", pos, delta)
		}
	}
}

func TestTypedDecodeErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("XXXXX-not-a-log")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}
	raw := Marshal(sampleLog())
	_, err := Unmarshal(raw[:len(raw)-3])
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("truncated log: err = %T (%v), want *DecodeError", err, err)
	}
	if de.Offset <= 0 || de.Offset > len(raw) {
		t.Errorf("truncated log: offset = %d out of range", de.Offset)
	}
	if _, err := Decompress([]byte("ZZZZZ")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad container magic: err = %v, want ErrBadMagic", err)
	}
	if _, err := Decompress(append([]byte(fileMagic), 0xde, 0xad)); err == nil {
		t.Error("broken flate stream accepted")
	}
}

func TestValidateTypedErrors(t *testing.T) {
	log := sampleLog()
	log.Threads = append(log.Threads, log.Threads[0]) // duplicate TID
	err := Validate(log)
	var ve *ValidateError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %T (%v), want *ValidateError", err, err)
	}
	if ve.Check != "thread-ids" || ve.TID != 0 {
		t.Errorf("err = %+v, want thread-ids check on tid 0", ve)
	}

	log = sampleLog()
	log.Threads[0].Seqs[1].Idx = log.Threads[0].Retired + 5
	err = Validate(log)
	if !errors.As(err, &ve) || ve.Check != "seq-indices" {
		t.Errorf("sequencer beyond retirement: err = %v, want seq-indices ValidateError", err)
	}
}

// TestCorruptCorpusRejected drives the checked-in known-bad corpus
// through the full file-decode path: every file must be rejected with a
// typed error, without panicking.
func TestCorruptCorpusRejected(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "corrupt", "*.rlog"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no corrupt corpus checked in")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(path)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: decode panicked: %v", name, r)
				}
			}()
			raw, err := Decompress(data)
			if err == nil {
				var log *Log
				if log, err = Unmarshal(raw); err == nil {
					err = Validate(log)
				}
			}
			if err == nil {
				t.Errorf("%s: known-bad file accepted", name)
				return
			}
			var de *DecodeError
			var ve *ValidateError
			if !errors.As(err, &de) && !errors.As(err, &ve) {
				t.Errorf("%s: error not typed: %T: %v", name, err, err)
			}
			if !strings.HasPrefix(err.Error(), "trace: ") {
				t.Errorf("%s: error missing package prefix: %v", name, err)
			}
		}()
	}
}
