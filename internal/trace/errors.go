package trace

import (
	"errors"
	"fmt"
)

// Sentinel causes a DecodeError can wrap. Callers that only care about
// the class of failure match these with errors.Is; callers that want the
// location use errors.As on *DecodeError.
var (
	// ErrBadMagic means the input does not start with a log (or
	// container) magic string at all — it is not a truncated log, it is
	// not a log.
	ErrBadMagic = errors.New("bad magic")
	// ErrTruncated means the input ended before the structure it
	// announced was complete.
	ErrTruncated = errors.New("truncated input")
	// ErrLengthOverflow means a length or count prefix announced more
	// elements than the remaining input could possibly encode. Decoders
	// must reject these before allocating, so a hostile varint can never
	// translate into an unbounded allocation.
	ErrLengthOverflow = errors.New("length prefix exceeds remaining input")
	// ErrTooLarge means the decompressed log would exceed MaxRawLogBytes
	// (a flate bomb, not a log).
	ErrTooLarge = errors.New("decompressed log exceeds size limit")
)

// DecodeError is the typed failure of Unmarshal/Decompress/Read: the
// byte offset the decoder had reached, the section of the format it was
// parsing, and the underlying cause. The offset is relative to the start
// of the raw payload (after the magic string).
type DecodeError struct {
	Offset  int    // bytes consumed when the failure was detected
	Section string // format section being decoded ("header", "program", "thread 2 loads", ...)
	Err     error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("trace: decode %s at offset %d: %v", e.Section, e.Offset, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// ValidateError is the typed failure of Validate: the log parsed but
// breaks a structural invariant replay depends on. TID is the offending
// thread (-1 for log-level checks).
type ValidateError struct {
	TID    int
	Check  string // invariant that failed ("seq-timestamps", "thread-ids", ...)
	Detail string
}

func (e *ValidateError) Error() string {
	if e.TID < 0 {
		return fmt.Sprintf("trace: invalid log (%s): %s", e.Check, e.Detail)
	}
	return fmt.Sprintf("trace: invalid log (%s): thread %d: %s", e.Check, e.TID, e.Detail)
}

func validateErr(tid int, check, format string, args ...any) error {
	return &ValidateError{TID: tid, Check: check, Detail: fmt.Sprintf(format, args...)}
}
