// Package trace defines the replay-log data model and its on-disk format.
//
// A Log is the analogue of an iDNA trace: one ThreadLog per thread, each
// self-contained — the initial architectural state, the values of every
// unpredictable load, every syscall result, and the sequencers that
// timestamp the thread's synchronization operations. A thread can be
// replayed from its ThreadLog alone, with no reference to other threads;
// sequencers exist so the replayer can interleave sequencing regions in
// their original global order and so the race detector can reason about
// region overlap.
//
// The binary format is varint-based with per-stream delta encoding, which
// is what keeps the raw log in the sub-bit-per-instruction regime the
// paper reports (§5.1: 0.8 bit/instruction raw, ~0.3 compressed).
package trace

import (
	"fmt"

	"repro/internal/isa"
)

// SeqKind classifies a sequencer entry.
type SeqKind uint8

const (
	SeqStart   SeqKind = iota // pseudo: thread became live
	SeqAtomic                 // cas/xadd/xchg retirement
	SeqFence                  // fence retirement
	SeqLock                   // lock acquired
	SeqUnlock                 // unlock retired
	SeqSyscall                // syscall retired (Aux = syscall number)
	SeqEnd                    // pseudo: thread terminated
)

func (k SeqKind) String() string {
	switch k {
	case SeqStart:
		return "start"
	case SeqAtomic:
		return "atomic"
	case SeqFence:
		return "fence"
	case SeqLock:
		return "lock"
	case SeqUnlock:
		return "unlock"
	case SeqSyscall:
		return "syscall"
	case SeqEnd:
		return "end"
	}
	return fmt.Sprintf("seq(%d)", uint8(k))
}

// KindForOp maps a retiring synchronization instruction to its SeqKind.
func KindForOp(op isa.Op) SeqKind {
	switch op {
	case isa.OpCas, isa.OpXadd, isa.OpXchg:
		return SeqAtomic
	case isa.OpFence:
		return SeqFence
	case isa.OpLock:
		return SeqLock
	case isa.OpUnlock:
		return SeqUnlock
	case isa.OpSys:
		return SeqSyscall
	}
	return SeqFence
}

// Sequencer is one timestamped synchronization event in a thread's log.
// Idx is the thread-local instruction index the event is attached to: the
// index of the sync instruction itself for real sequencers, 0 for
// SeqStart, and the thread's final retired count for SeqEnd.
type Sequencer struct {
	Idx  uint64
	TS   uint64
	Kind SeqKind
	Aux  int64 // syscall number for SeqSyscall, -1 otherwise
}

// LoadRec records the value of one unpredictable load: the thread's replay
// must inject Val when its instruction at Idx loads from Addr.
type LoadRec struct {
	Idx  uint64
	Addr uint64
	Val  uint64
}

// SysRec records a syscall's result (injected into r1 at replay).
type SysRec struct {
	Idx uint64
	Res uint64
}

// EndReason says why a thread stopped.
type EndReason uint8

const (
	EndHalted  EndReason = iota // retired OpHalt
	EndExited                   // retired sys exit
	EndFaulted                  // crashed (Fault is set)
	EndRunning                  // run ended (budget) with the thread still live
)

func (r EndReason) String() string {
	switch r {
	case EndHalted:
		return "halted"
	case EndExited:
		return "exited"
	case EndFaulted:
		return "faulted"
	case EndRunning:
		return "running"
	}
	return fmt.Sprintf("end(%d)", uint8(r))
}

// FaultRec is the serializable form of a machine fault.
type FaultRec struct {
	Kind int
	PC   int
	Addr uint64
}

// KeyFrame is a mid-log resume point for one thread (iDNA's key frames):
// the architectural state and the thread's reconstructible memory view
// after exactly Idx instructions retired. Replay of the thread can start
// here instead of at instruction 0.
type KeyFrame struct {
	Idx  uint64
	PC   int
	Regs [isa.NumRegs]uint64
	View []LoadRec // (addr, value) pairs of the thread's memory view; Idx field unused
}

// ThreadLog is the complete replay log of one thread.
type ThreadLog struct {
	TID       int
	StartTS   uint64
	EndTS     uint64
	InitPC    int
	InitRegs  [isa.NumRegs]uint64
	Retired   uint64
	EndReason EndReason
	Fault     *FaultRec
	ExitCode  uint64

	Loads     []LoadRec
	SysRets   []SysRec
	Seqs      []Sequencer // includes the SeqStart and SeqEnd pseudo entries
	KeyFrames []KeyFrame  // optional mid-log resume points, ascending by Idx
}

// Log is a full recorded execution: the program (logs are self-contained)
// plus one ThreadLog per thread.
type Log struct {
	Prog       *isa.Program
	Seed       int64 // scheduler seed of the recorded run, for provenance
	Threads    []*ThreadLog
	FinalClock uint64
	Deadlocked bool
	TotalSteps uint64

	// Online is the verdict of the online race detector that watched the
	// recording, when one was attached. It is an in-memory annotation
	// only: Marshal never serializes it, so logs decoded from disk always
	// carry nil and take the full offline pass. The offline detector
	// remains the source of truth; consumers may use a race-free online
	// verdict to skip work, never to report races.
	Online *OnlineInfo
}

// OnlineInfo summarizes what the online detector saw during recording.
type OnlineInfo struct {
	RaceFree bool // no overlapping conflicting access pair was observed
	Races    int  // distinct racy site pairs observed (0 when RaceFree)
	Stopped  bool // recording ended early under a stop-on-race policy

	// ObservedPCs lists, in ascending order, every code index that
	// performed a data memory access (atomic or not) during the run. The
	// race-free fast path uses it to reconstruct the observed-site set
	// that static cross-validation would otherwise read from the replay.
	ObservedPCs []int
}

// Thread returns the log for tid, or nil.
func (l *Log) Thread(tid int) *ThreadLog {
	for _, t := range l.Threads {
		if t.TID == tid {
			return t
		}
	}
	return nil
}

// Instructions returns the total retired-instruction count across threads.
func (l *Log) Instructions() uint64 {
	var n uint64
	for _, t := range l.Threads {
		n += t.Retired
	}
	return n
}

// Validate checks the structural invariants replay depends on: thread
// ids are unique, sequencer timestamps strictly increase within a
// thread, indices are monotone and bounded by the retirement count
// (region well-formedness), and each thread's log starts with SeqStart
// and finishes with SeqEnd. Failures are *ValidateError, naming the
// offending thread and the invariant that broke.
func (l *Log) Validate() error {
	if l.Prog == nil {
		return validateErr(-1, "program", "log has no program")
	}
	seen := make(map[int]bool, len(l.Threads))
	for _, t := range l.Threads {
		if seen[t.TID] {
			return validateErr(t.TID, "thread-ids", "duplicate thread id")
		}
		seen[t.TID] = true
		if len(t.Seqs) < 2 {
			return validateErr(t.TID, "seq-endpoints", "%d sequencers, want >= 2", len(t.Seqs))
		}
		if t.Seqs[0].Kind != SeqStart || t.Seqs[0].Idx != 0 {
			return validateErr(t.TID, "seq-endpoints", "does not start with SeqStart")
		}
		last := t.Seqs[len(t.Seqs)-1]
		if last.Kind != SeqEnd || last.Idx != t.Retired {
			return validateErr(t.TID, "seq-endpoints", "does not end with SeqEnd at %d", t.Retired)
		}
		for i := 1; i < len(t.Seqs); i++ {
			if t.Seqs[i].TS <= t.Seqs[i-1].TS {
				return validateErr(t.TID, "seq-timestamps", "timestamps not increasing at %d", i)
			}
			if t.Seqs[i].Idx < t.Seqs[i-1].Idx {
				return validateErr(t.TID, "seq-indices", "indices not monotone at %d", i)
			}
			if t.Seqs[i].Idx > t.Retired {
				return validateErr(t.TID, "seq-indices", "sequencer %d beyond retirement", i)
			}
		}
		for i := 1; i < len(t.Loads); i++ {
			if t.Loads[i].Idx < t.Loads[i-1].Idx {
				return validateErr(t.TID, "load-indices", "indices not monotone at %d", i)
			}
		}
		for i := 1; i < len(t.SysRets); i++ {
			if t.SysRets[i].Idx <= t.SysRets[i-1].Idx {
				return validateErr(t.TID, "sysret-indices", "indices not increasing at %d", i)
			}
		}
		if n := len(t.Loads); n > 0 && t.Loads[n-1].Idx >= t.Retired {
			return validateErr(t.TID, "load-indices", "load index beyond retirement")
		}
		if t.EndReason == EndFaulted && t.Fault == nil {
			return validateErr(t.TID, "fault-record", "faulted without fault record")
		}
		for i := 1; i < len(t.KeyFrames); i++ {
			if t.KeyFrames[i].Idx <= t.KeyFrames[i-1].Idx {
				return validateErr(t.TID, "keyframe-indices", "key frames not increasing at %d", i)
			}
		}
		if n := len(t.KeyFrames); n > 0 && t.KeyFrames[n-1].Idx > t.Retired {
			return validateErr(t.TID, "keyframe-indices", "key frame beyond retirement")
		}
	}
	return nil
}

// Validate is the package-level validation pass over a parsed log — the
// same invariants Log.Validate checks, exported standalone so callers
// (the `racer validate` command, the chaos harness) can separate "does
// not parse" (*DecodeError) from "parses but cannot be replayed"
// (*ValidateError).
func Validate(l *Log) error { return l.Validate() }
