package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/isa"
)

func sampleLog() *Log {
	p := isa.NewProgram("sample")
	p.Code = []isa.Instr{
		{Op: isa.OpLdi, Rd: 1, Imm: 5},
		{Op: isa.OpSys, Imm: isa.SysPrint},
		{Op: isa.OpHalt},
	}
	p.Symbols["main"] = 0
	p.Data[isa.DataBase] = 11
	t0 := &ThreadLog{
		TID:     0,
		InitPC:  0,
		Retired: 3,
		Seqs: []Sequencer{
			{Idx: 0, TS: 0, Kind: SeqStart, Aux: -1},
			{Idx: 1, TS: 1, Kind: SeqSyscall, Aux: isa.SysPrint},
			{Idx: 3, TS: 2, Kind: SeqEnd, Aux: -1},
		},
		Loads:     []LoadRec{{Idx: 0, Addr: isa.DataBase, Val: 11}},
		SysRets:   []SysRec{{Idx: 1, Res: 0}},
		EndReason: EndHalted,
		EndTS:     2,
	}
	t0.InitRegs[isa.SP] = isa.StackTop(0)
	return &Log{Prog: p, Seed: 42, Threads: []*ThreadLog{t0}, FinalClock: 2, TotalSteps: 3}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	log := sampleLog()
	got, err := Unmarshal(Marshal(log))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != log.Seed || got.FinalClock != log.FinalClock ||
		got.TotalSteps != log.TotalSteps || got.Deadlocked != log.Deadlocked {
		t.Error("run metadata mismatch")
	}
	if got.Prog.Name != "sample" || len(got.Prog.Code) != 3 {
		t.Error("program mismatch")
	}
	if got.Prog.Code[0] != log.Prog.Code[0] {
		t.Error("code mismatch")
	}
	if got.Prog.Data[isa.DataBase] != 11 {
		t.Error("data mismatch")
	}
	if got.Prog.Symbols["main"] != 0 {
		t.Error("symbols mismatch")
	}
	gt, lt := got.Threads[0], log.Threads[0]
	if gt.TID != lt.TID || gt.Retired != lt.Retired || gt.EndReason != lt.EndReason {
		t.Error("thread header mismatch")
	}
	if gt.InitRegs != lt.InitRegs {
		t.Error("init regs mismatch")
	}
	if !reflect.DeepEqual(gt.Loads, lt.Loads) {
		t.Errorf("loads mismatch: %v vs %v", gt.Loads, lt.Loads)
	}
	if !reflect.DeepEqual(gt.SysRets, lt.SysRets) {
		t.Errorf("sysrets mismatch: %v vs %v", gt.SysRets, lt.SysRets)
	}
	if !reflect.DeepEqual(gt.Seqs, lt.Seqs) {
		t.Errorf("seqs mismatch: %v vs %v", gt.Seqs, lt.Seqs)
	}
}

func TestFaultRecordRoundTrip(t *testing.T) {
	log := sampleLog()
	log.Threads[0].EndReason = EndFaulted
	log.Threads[0].Fault = &FaultRec{Kind: 2, PC: 7, Addr: 0x99}
	got, err := Unmarshal(Marshal(log))
	if err != nil {
		t.Fatal(err)
	}
	f := got.Threads[0].Fault
	if f == nil || f.Kind != 2 || f.PC != 7 || f.Addr != 0x99 {
		t.Errorf("fault = %+v", f)
	}
}

func TestCompressedContainerRoundTrip(t *testing.T) {
	log := sampleLog()
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Prog.Name != "sample" || got.Threads[0].Retired != 3 {
		t.Error("round trip via container lost data")
	}
}

func TestCorruptInputsRejected(t *testing.T) {
	log := sampleLog()
	raw := Marshal(log)

	if _, err := Unmarshal([]byte("XXXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Unmarshal(raw[:len(raw)/2]); err == nil {
		t.Error("truncated log accepted")
	}
	bad := append([]byte{}, raw...)
	bad[len(rawMagic)] = 99 // version byte
	if _, err := Unmarshal(bad); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Decompress([]byte("NOTRRLZ")); err == nil {
		t.Error("bad container magic accepted")
	}
	comp := Compress(raw)
	if _, err := Decompress(comp[:len(comp)-3]); err == nil {
		t.Error("truncated container accepted")
	}
}

func TestValidateCatchesBrokenLogs(t *testing.T) {
	check := func(name string, mutate func(*Log)) {
		log := sampleLog()
		mutate(log)
		if err := log.Validate(); err == nil {
			t.Errorf("%s: invalid log accepted", name)
		}
	}
	check("no program", func(l *Log) { l.Prog = nil })
	check("too few sequencers", func(l *Log) { l.Threads[0].Seqs = l.Threads[0].Seqs[:1] })
	check("missing start", func(l *Log) { l.Threads[0].Seqs[0].Kind = SeqAtomic })
	check("missing end", func(l *Log) { l.Threads[0].Seqs[2].Kind = SeqAtomic })
	check("end idx wrong", func(l *Log) { l.Threads[0].Seqs[2].Idx = 99 })
	check("ts not increasing", func(l *Log) { l.Threads[0].Seqs[1].TS = 0 })
	check("load beyond retirement", func(l *Log) { l.Threads[0].Loads[0].Idx = 99 })
	check("fault without record", func(l *Log) {
		l.Threads[0].EndReason = EndFaulted
		l.Threads[0].Fault = nil
	})
}

func TestStatsSaneAndCompressionHelps(t *testing.T) {
	log := sampleLog()
	// Pad with a repetitive load stream so flate has something to chew on.
	tl := log.Threads[0]
	for i := uint64(0); i < 500; i++ {
		tl.Loads = append(tl.Loads, LoadRec{Idx: 1, Addr: isa.DataBase, Val: 11})
	}
	tl.Loads[len(tl.Loads)-1].Idx = 2
	tl.Retired = 3
	tl.Seqs[2].Idx = 3
	log.TotalSteps = 3
	s := Stats(log)
	if s.RawBytes == 0 || s.CompressedBytes == 0 {
		t.Fatal("empty stats")
	}
	if s.CompressedBytes >= s.RawBytes {
		t.Errorf("compression did not shrink: %d -> %d", s.RawBytes, s.CompressedBytes)
	}
	if s.RawBitsPerInstr() <= 0 || s.CompressedBitsPerInstr() <= 0 {
		t.Error("bits/instruction should be positive")
	}
	if s.BytesPerBillion() <= 0 {
		t.Error("extrapolation should be positive")
	}
	var zero SizeStats
	if zero.RawBitsPerInstr() != 0 || zero.CompressedBitsPerInstr() != 0 || zero.BytesPerBillion() != 0 {
		t.Error("zero stats should not divide by zero")
	}
}

func TestSeqKindStrings(t *testing.T) {
	kinds := []SeqKind{SeqStart, SeqAtomic, SeqFence, SeqLock, SeqUnlock, SeqSyscall, SeqEnd}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if SeqKind(99).String() != "seq(99)" {
		t.Error("unknown kind should render numerically")
	}
}

func TestKindForOp(t *testing.T) {
	cases := map[isa.Op]SeqKind{
		isa.OpCas:    SeqAtomic,
		isa.OpXadd:   SeqAtomic,
		isa.OpXchg:   SeqAtomic,
		isa.OpFence:  SeqFence,
		isa.OpLock:   SeqLock,
		isa.OpUnlock: SeqUnlock,
		isa.OpSys:    SeqSyscall,
	}
	for op, want := range cases {
		if got := KindForOp(op); got != want {
			t.Errorf("KindForOp(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestThreadLookupAndInstructionCount(t *testing.T) {
	log := sampleLog()
	if log.Thread(0) == nil || log.Thread(5) != nil {
		t.Error("Thread lookup wrong")
	}
	if log.Instructions() != 3 {
		t.Errorf("Instructions = %d, want 3", log.Instructions())
	}
}

func TestEndReasonStrings(t *testing.T) {
	for _, r := range []EndReason{EndHalted, EndExited, EndFaulted, EndRunning} {
		if s := r.String(); s == "" || s[0] == 'e' && s[1] == 'n' && s[2] == 'd' {
			t.Errorf("EndReason %d has no name: %q", r, s)
		}
	}
}

// TestUnmarshalTotalOnAllPrefixes: parsing any strict prefix of a valid
// log must fail cleanly (no panic, no acceptance). This sweeps every
// error branch in the decoder.
func TestUnmarshalTotalOnAllPrefixes(t *testing.T) {
	log := sampleLog()
	log.Threads[0].Fault = &FaultRec{Kind: 1, PC: 2, Addr: 3}
	log.Threads[0].EndReason = EndFaulted
	log.Threads[0].KeyFrames = []KeyFrame{
		{Idx: 1, PC: 1, View: []LoadRec{{Addr: 0x1000, Val: 11}}},
		{Idx: 2, PC: 2},
	}
	raw := Marshal(log)
	for n := 0; n < len(raw); n++ {
		if _, err := Unmarshal(raw[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(raw))
		}
	}
	if _, err := Unmarshal(raw); err != nil {
		t.Fatalf("full log rejected: %v", err)
	}
}

// TestUnmarshalTotalOnByteFlips: flipping any single byte must never
// panic; it may error or may produce a different-but-valid log.
func TestUnmarshalTotalOnByteFlips(t *testing.T) {
	raw := Marshal(sampleLog())
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xFF
		log, err := Unmarshal(mut)
		if err == nil {
			if vErr := log.Validate(); vErr != nil {
				t.Fatalf("byte %d: accepted an invalid log: %v", i, vErr)
			}
		}
	}
}

func TestKeyFrameValidation(t *testing.T) {
	log := sampleLog()
	log.Threads[0].KeyFrames = []KeyFrame{{Idx: 2}, {Idx: 2}}
	if err := log.Validate(); err == nil {
		t.Error("non-increasing key frames accepted")
	}
	log.Threads[0].KeyFrames = []KeyFrame{{Idx: 99}}
	if err := log.Validate(); err == nil {
		t.Error("key frame beyond retirement accepted")
	}
	log.Threads[0].KeyFrames = []KeyFrame{{Idx: 1}, {Idx: 3}}
	if err := log.Validate(); err != nil {
		t.Errorf("valid key frames rejected: %v", err)
	}
}

func TestKeyFrameRoundTrip(t *testing.T) {
	log := sampleLog()
	log.Threads[0].KeyFrames = []KeyFrame{
		{Idx: 1, PC: 7, View: []LoadRec{{Addr: 0x1000, Val: 5}, {Addr: 0x2000, Val: 9}}},
	}
	log.Threads[0].KeyFrames[0].Regs[3] = 42
	got, err := Unmarshal(Marshal(log))
	if err != nil {
		t.Fatal(err)
	}
	kf := got.Threads[0].KeyFrames
	if len(kf) != 1 || kf[0].Idx != 1 || kf[0].PC != 7 || kf[0].Regs[3] != 42 {
		t.Fatalf("key frame header lost: %+v", kf)
	}
	if len(kf[0].View) != 2 || kf[0].View[1].Addr != 0x2000 || kf[0].View[1].Val != 9 {
		t.Fatalf("key frame view lost: %+v", kf[0].View)
	}
}
