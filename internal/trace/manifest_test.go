package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleManifest() *Manifest {
	m := NewManifest()
	m.Add("a-0.rlog", strings.Repeat("ab", 32), &OnlineInfo{RaceFree: true, ObservedPCs: []int{2, 5}})
	m.Add("b-0.rlog", strings.Repeat("cd", 32), &OnlineInfo{Races: 3, ObservedPCs: []int{1}})
	m.Add("c-0.rlog", strings.Repeat("ef", 32), nil)
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := sampleManifest()
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchemaID || len(got.Entries) != 3 {
		t.Fatalf("round trip: schema %q, %d entries", got.Schema, len(got.Entries))
	}
	e := got.Lookup("a-0.rlog", strings.Repeat("ab", 32))
	if e == nil || !e.RaceFree {
		t.Fatalf("race-free entry lost in round trip: %+v", e)
	}
	info := e.Online()
	if !info.RaceFree || len(info.ObservedPCs) != 2 || info.ObservedPCs[1] != 5 {
		t.Fatalf("Online() = %+v", info)
	}
}

// TestManifestLookupRequiresBothKeys: a renamed file or a re-recorded
// log with the same name must lose its entry, never inherit a stale
// verdict.
func TestManifestLookupRequiresBothKeys(t *testing.T) {
	m := sampleManifest()
	if m.Lookup("a-0.rlog", strings.Repeat("cd", 32)) != nil {
		t.Error("lookup matched on filename alone")
	}
	if m.Lookup("renamed.rlog", strings.Repeat("ab", 32)) != nil {
		t.Error("lookup matched on content hash alone")
	}
	if m.Lookup("a-0.rlog", strings.Repeat("ab", 32)) == nil {
		t.Error("exact lookup missed")
	}
	var nilMan *Manifest
	if nilMan.Lookup("a-0.rlog", strings.Repeat("ab", 32)) != nil {
		t.Error("nil manifest lookup did not return nil")
	}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"bad schema", func(m *Manifest) { m.Schema = "racereplay-manifest/v0" }, "schema"},
		{"no filename", func(m *Manifest) { m.Entries[0].File = "" }, "filename"},
		{"bad hash", func(m *Manifest) { m.Entries[1].LogSHA256 = "beef" }, "sha256"},
		{"race-free with races", func(m *Manifest) { m.Entries[0].Races = 2 }, "race-free with"},
	}
	for _, tc := range cases {
		m := sampleManifest()
		tc.mut(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
		if err := m.WriteFile(filepath.Join(t.TempDir(), "m.json")); err == nil {
			t.Errorf("%s: WriteFile serialized an invalid manifest", tc.name)
		}
	}
	if err := sampleManifest().Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

// TestReadManifestErrors: a missing file surfaces os.IsNotExist so
// callers can distinguish "no manifest" from "corrupt manifest"; corrupt
// and schema-violating files return typed errors.
func TestReadManifestErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Errorf("missing manifest: err = %v, want IsNotExist", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bad); err == nil || os.IsNotExist(err) {
		t.Errorf("corrupt manifest: err = %v, want parse error", err)
	}
	wrong := filepath.Join(dir, "wrong.json")
	if err := os.WriteFile(wrong, []byte(`{"schema":"other/v1","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(wrong); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema: err = %v", err)
	}
}
