package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// Format identification. rawMagic heads an uncompressed marshalled log;
// fileMagic heads the compressed container produced by Write.
const (
	rawMagic      = "RRLOG"
	fileMagic     = "RRLZ1"
	formatVersion = 2
)

type encoder struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (e *encoder) u(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *encoder) i(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *encoder) str(s string) {
	e.u(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) bytes(b []byte) {
	e.u(uint64(len(b)))
	e.buf.Write(b)
}

// Minimum encoded sizes of the count-prefixed stream entries. Every
// count read by the decoder is capped at remaining/minSize before any
// slice is allocated, so the allocation for a stream is always bounded
// by a small constant times the bytes actually present — a hostile
// varint cannot translate into an unbounded make().
const (
	minDataBytes   = 2 // addr delta + value
	minSymBytes    = 2 // name length + address
	minLoadBytes   = 3 // idx delta + addr + value
	minSysBytes    = 2 // idx delta + result
	minSeqBytes    = 4 // idx delta + ts delta + kind byte + aux
	minViewBytes   = 2 // addr delta + value
	minThreadBytes = 12 + isa.NumRegs
)

// minKFBytes is a key frame's floor: idx delta + pc + register file +
// view count.
const minKFBytes = 3 + isa.NumRegs

type decoder struct {
	r       *bytes.Reader
	n       int    // payload length, for offset reporting
	section string // format section currently being decoded
}

// fail wraps err into a *DecodeError carrying the current offset and
// section, normalizing the io package's end-of-input errors to
// ErrTruncated.
func (d *decoder) fail(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		err = ErrTruncated
	}
	return &DecodeError{Offset: d.n - d.r.Len(), Section: d.section, Err: err}
}

func (d *decoder) in(section string) { d.section = section }

func (d *decoder) u() (uint64, error) {
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, d.fail(err)
	}
	return v, nil
}

func (d *decoder) i() (int64, error) {
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		return 0, d.fail(err)
	}
	return v, nil
}

// count reads a count prefix for entries of at least minSize encoded
// bytes each and rejects counts the remaining input cannot hold.
func (d *decoder) count(minSize int) (uint64, error) {
	n, err := d.u()
	if err != nil {
		return 0, err
	}
	if n > uint64(d.r.Len())/uint64(minSize) {
		return 0, d.fail(fmt.Errorf("%w: %d entries of >= %d bytes with %d bytes left",
			ErrLengthOverflow, n, minSize, d.r.Len()))
	}
	return n, nil
}

func (d *decoder) str() (string, error) {
	b, err := d.byteSlice()
	return string(b), err
}

func (d *decoder) byteSlice() ([]byte, error) {
	n, err := d.u()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.r.Len()) {
		return nil, d.fail(fmt.Errorf("%w: %d bytes announced, %d left", ErrLengthOverflow, n, d.r.Len()))
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, d.fail(err)
	}
	return b, nil
}

// Marshal serializes log to its raw (uncompressed) binary form.
func Marshal(log *Log) []byte {
	var e encoder
	e.buf.WriteString(rawMagic)
	e.u(formatVersion)

	// Program.
	p := log.Prog
	e.str(p.Name)
	e.bytes(isa.EncodeCode(p.Code))
	e.u(uint64(p.Entry))
	// Data segment, sorted for deterministic bytes.
	addrs := make([]uint64, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.u(uint64(len(addrs)))
	prevAddr := uint64(0)
	for _, a := range addrs {
		e.u(a - prevAddr)
		prevAddr = a
		e.u(p.Data[a])
	}
	// Symbols, sorted by name. Sources are not serialized: SiteOf falls
	// back to symbol-relative naming, which produces identical site ids.
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	e.u(uint64(len(names)))
	for _, n := range names {
		e.str(n)
		e.u(uint64(p.Symbols[n]))
	}

	// Run metadata.
	e.i(log.Seed)
	e.u(log.FinalClock)
	e.u(log.TotalSteps)
	if log.Deadlocked {
		e.u(1)
	} else {
		e.u(0)
	}

	// Threads.
	e.u(uint64(len(log.Threads)))
	for _, t := range log.Threads {
		e.u(uint64(t.TID))
		e.u(t.StartTS)
		e.u(t.EndTS)
		e.u(uint64(t.InitPC))
		for _, r := range t.InitRegs {
			e.u(r)
		}
		e.u(t.Retired)
		e.u(uint64(t.EndReason))
		e.u(t.ExitCode)
		if t.Fault != nil {
			e.u(1)
			e.u(uint64(t.Fault.Kind))
			e.u(uint64(t.Fault.PC))
			e.u(t.Fault.Addr)
		} else {
			e.u(0)
		}

		e.u(uint64(len(t.Loads)))
		prevIdx := uint64(0)
		for _, l := range t.Loads {
			e.u(l.Idx - prevIdx)
			prevIdx = l.Idx
			e.u(l.Addr)
			e.u(l.Val)
		}

		e.u(uint64(len(t.SysRets)))
		prevIdx = 0
		for _, s := range t.SysRets {
			e.u(s.Idx - prevIdx)
			prevIdx = s.Idx
			e.u(s.Res)
		}

		e.u(uint64(len(t.Seqs)))
		prevIdx, prevTS := uint64(0), uint64(0)
		for _, s := range t.Seqs {
			e.u(s.Idx - prevIdx)
			prevIdx = s.Idx
			e.u(s.TS - prevTS)
			prevTS = s.TS
			e.buf.WriteByte(byte(s.Kind))
			e.i(s.Aux)
		}

		e.u(uint64(len(t.KeyFrames)))
		prevIdx = 0
		for _, kf := range t.KeyFrames {
			e.u(kf.Idx - prevIdx)
			prevIdx = kf.Idx
			e.u(uint64(kf.PC))
			for _, r := range kf.Regs {
				e.u(r)
			}
			e.u(uint64(len(kf.View)))
			prevAddr := uint64(0)
			for _, v := range kf.View {
				e.u(v.Addr - prevAddr)
				prevAddr = v.Addr
				e.u(v.Val)
			}
		}
	}
	return e.buf.Bytes()
}

// Unmarshal parses a raw log produced by Marshal. Failures are typed:
// a malformed input returns a *DecodeError (with offset and section), a
// well-formed input breaking a replay invariant returns a
// *ValidateError. Unmarshal never panics and never allocates more than
// a small constant factor of len(raw), whatever the bytes say.
func Unmarshal(raw []byte) (*Log, error) {
	if len(raw) < len(rawMagic) || string(raw[:len(rawMagic)]) != rawMagic {
		return nil, &DecodeError{Section: "magic", Err: ErrBadMagic}
	}
	payload := raw[len(rawMagic):]
	d := decoder{r: bytes.NewReader(payload), n: len(payload)}
	d.in("header")
	ver, err := d.u()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, d.fail(fmt.Errorf("unsupported version %d", ver))
	}

	log := &Log{}
	p := isa.NewProgram("")
	d.in("program")
	if p.Name, err = d.str(); err != nil {
		return nil, err
	}
	codeBytes, err := d.byteSlice()
	if err != nil {
		return nil, err
	}
	if p.Code, err = isa.DecodeCode(codeBytes); err != nil {
		return nil, d.fail(err)
	}
	entry, err := d.u()
	if err != nil {
		return nil, err
	}
	p.Entry = int(entry)
	d.in("program data")
	nData, err := d.count(minDataBytes)
	if err != nil {
		return nil, err
	}
	addr := uint64(0)
	for i := uint64(0); i < nData; i++ {
		da, err := d.u()
		if err != nil {
			return nil, err
		}
		addr += da
		v, err := d.u()
		if err != nil {
			return nil, err
		}
		p.Data[addr] = v
	}
	d.in("program symbols")
	nSyms, err := d.count(minSymBytes)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nSyms; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		at, err := d.u()
		if err != nil {
			return nil, err
		}
		p.Symbols[name] = int(at)
	}
	log.Prog = p

	d.in("run metadata")
	if log.Seed, err = d.i(); err != nil {
		return nil, err
	}
	if log.FinalClock, err = d.u(); err != nil {
		return nil, err
	}
	if log.TotalSteps, err = d.u(); err != nil {
		return nil, err
	}
	dl, err := d.u()
	if err != nil {
		return nil, err
	}
	log.Deadlocked = dl != 0

	d.in("threads")
	nThreads, err := d.count(minThreadBytes)
	if err != nil {
		return nil, err
	}
	log.Threads = make([]*ThreadLog, 0, nThreads)
	for i := uint64(0); i < nThreads; i++ {
		d.in(fmt.Sprintf("thread %d header", i))
		t := &ThreadLog{}
		var v uint64
		if v, err = d.u(); err != nil {
			return nil, err
		}
		t.TID = int(v)
		if t.StartTS, err = d.u(); err != nil {
			return nil, err
		}
		if t.EndTS, err = d.u(); err != nil {
			return nil, err
		}
		if v, err = d.u(); err != nil {
			return nil, err
		}
		t.InitPC = int(v)
		for r := range t.InitRegs {
			if t.InitRegs[r], err = d.u(); err != nil {
				return nil, err
			}
		}
		if t.Retired, err = d.u(); err != nil {
			return nil, err
		}
		if v, err = d.u(); err != nil {
			return nil, err
		}
		t.EndReason = EndReason(v)
		if t.ExitCode, err = d.u(); err != nil {
			return nil, err
		}
		if v, err = d.u(); err != nil {
			return nil, err
		}
		if v != 0 {
			f := &FaultRec{}
			if v, err = d.u(); err != nil {
				return nil, err
			}
			f.Kind = int(v)
			if v, err = d.u(); err != nil {
				return nil, err
			}
			f.PC = int(v)
			if f.Addr, err = d.u(); err != nil {
				return nil, err
			}
			t.Fault = f
		}

		d.in(fmt.Sprintf("thread %d loads", i))
		nLoads, err := d.count(minLoadBytes)
		if err != nil {
			return nil, err
		}
		idx := uint64(0)
		t.Loads = make([]LoadRec, 0, nLoads)
		for j := uint64(0); j < nLoads; j++ {
			di, err := d.u()
			if err != nil {
				return nil, err
			}
			idx += di
			a, err := d.u()
			if err != nil {
				return nil, err
			}
			val, err := d.u()
			if err != nil {
				return nil, err
			}
			t.Loads = append(t.Loads, LoadRec{Idx: idx, Addr: a, Val: val})
		}

		d.in(fmt.Sprintf("thread %d sysrets", i))
		nSys, err := d.count(minSysBytes)
		if err != nil {
			return nil, err
		}
		idx = 0
		t.SysRets = make([]SysRec, 0, nSys)
		for j := uint64(0); j < nSys; j++ {
			di, err := d.u()
			if err != nil {
				return nil, err
			}
			idx += di
			res, err := d.u()
			if err != nil {
				return nil, err
			}
			t.SysRets = append(t.SysRets, SysRec{Idx: idx, Res: res})
		}

		d.in(fmt.Sprintf("thread %d sequencers", i))
		nSeqs, err := d.count(minSeqBytes)
		if err != nil {
			return nil, err
		}
		idx = 0
		ts := uint64(0)
		t.Seqs = make([]Sequencer, 0, nSeqs)
		for j := uint64(0); j < nSeqs; j++ {
			di, err := d.u()
			if err != nil {
				return nil, err
			}
			idx += di
			dt, err := d.u()
			if err != nil {
				return nil, err
			}
			ts += dt
			kb, err := d.r.ReadByte()
			if err != nil {
				return nil, d.fail(err)
			}
			aux, err := d.i()
			if err != nil {
				return nil, err
			}
			t.Seqs = append(t.Seqs, Sequencer{Idx: idx, TS: ts, Kind: SeqKind(kb), Aux: aux})
		}

		d.in(fmt.Sprintf("thread %d key frames", i))
		nKF, err := d.count(minKFBytes)
		if err != nil {
			return nil, err
		}
		idx = 0
		if nKF > 0 {
			t.KeyFrames = make([]KeyFrame, 0, nKF)
		}
		for j := uint64(0); j < nKF; j++ {
			var kf KeyFrame
			di, err := d.u()
			if err != nil {
				return nil, err
			}
			idx += di
			kf.Idx = idx
			pc, err := d.u()
			if err != nil {
				return nil, err
			}
			kf.PC = int(pc)
			for r := range kf.Regs {
				if kf.Regs[r], err = d.u(); err != nil {
					return nil, err
				}
			}
			nView, err := d.count(minViewBytes)
			if err != nil {
				return nil, err
			}
			addr := uint64(0)
			kf.View = make([]LoadRec, 0, nView)
			for k := uint64(0); k < nView; k++ {
				da, err := d.u()
				if err != nil {
					return nil, err
				}
				addr += da
				val, err := d.u()
				if err != nil {
					return nil, err
				}
				kf.View = append(kf.View, LoadRec{Addr: addr, Val: val})
			}
			t.KeyFrames = append(t.KeyFrames, kf)
		}
		log.Threads = append(log.Threads, t)
	}
	if err := log.Validate(); err != nil {
		return nil, err
	}
	return log, nil
}

// Compress deflates raw log bytes (best compression). This is the analogue
// of the paper zipping iDNA logs from 0.8 to ~0.3 bits/instruction.
func Compress(raw []byte) []byte {
	var out bytes.Buffer
	out.WriteString(fileMagic)
	w, err := flate.NewWriter(&out, flate.BestCompression)
	if err != nil {
		panic(err) // only on invalid level
	}
	if _, err := w.Write(raw); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	w.Close()
	return out.Bytes()
}

// MaxRawLogBytes caps how far Decompress will inflate a container. A
// hostile flate stream can expand ~1000x, so without a ceiling a small
// corrupt file could balloon into an arbitrarily large allocation; the
// limit keeps the decode contract — allocation bounded by the input —
// honest across the container layer too.
const MaxRawLogBytes = 1 << 30

// Decompress inflates a container produced by Compress. Failures are
// *DecodeError: a missing container magic, a broken flate stream, or a
// payload inflating past MaxRawLogBytes.
func Decompress(data []byte) ([]byte, error) {
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		return nil, &DecodeError{Section: "container magic", Err: ErrBadMagic}
	}
	r := flate.NewReader(bytes.NewReader(data[len(fileMagic):]))
	defer r.Close()
	raw, err := io.ReadAll(io.LimitReader(r, MaxRawLogBytes+1))
	if err != nil {
		return nil, &DecodeError{Section: "container payload", Err: fmt.Errorf("inflate: %w", err)}
	}
	if len(raw) > MaxRawLogBytes {
		return nil, &DecodeError{Section: "container payload", Err: ErrTooLarge}
	}
	return raw, nil
}

// Write serializes and compresses log to w.
func Write(w io.Writer, log *Log) error {
	_, err := w.Write(Compress(Marshal(log)))
	return err
}

// Read parses a serialized log from r, dispatching on the sniffed magic:
// v1 containers (and raw v1 logs) and v2 segmented containers both
// decode here, so every .rlog consumer accepts either format.
func Read(r io.Reader) (*Log, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// SizeStats quantifies a log against the instruction count it covers.
type SizeStats struct {
	Instructions    uint64
	RawBytes        int
	CompressedBytes int
}

// RawBitsPerInstr is the §5.1 headline metric for the uncompressed log.
func (s SizeStats) RawBitsPerInstr() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.RawBytes) * 8 / float64(s.Instructions)
}

// CompressedBitsPerInstr is the metric after flate compression.
func (s SizeStats) CompressedBitsPerInstr() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.CompressedBytes) * 8 / float64(s.Instructions)
}

// BytesPerBillion extrapolates storage for 10^9 instructions (the paper
// reports ~96 MB/billion raw).
func (s SizeStats) BytesPerBillion() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.CompressedBytes) / float64(s.Instructions) * 1e9
}

// Stats measures log's serialized footprint.
func Stats(log *Log) SizeStats {
	raw := Marshal(log)
	return SizeStats{
		Instructions:    log.Instructions(),
		RawBytes:        len(raw),
		CompressedBytes: len(Compress(raw)),
	}
}
