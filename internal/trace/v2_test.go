package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

// richLog builds a multi-thread log exercising every v2 encoding: sparse
// registers, signed address deltas over spread-out addresses, sequencers
// with and without aux payloads, key frames, a fault record.
func richLog() *Log {
	p := isa.NewProgram("rich")
	p.Code = []isa.Instr{
		{Op: isa.OpLdi, Rd: 1, Imm: 5},
		{Op: isa.OpSys, Imm: isa.SysPrint},
		{Op: isa.OpHalt},
	}
	p.Symbols["main"] = 0
	p.Symbols["worker"] = 1
	p.Data[isa.DataBase] = 11
	p.Data[isa.DataBase+64] = 7
	log := &Log{Prog: p, Seed: -3, FinalClock: 40, TotalSteps: 120}
	for tid := 0; tid < 3; tid++ {
		t := &ThreadLog{
			TID:     tid,
			StartTS: uint64(tid),
			EndTS:   uint64(30 + tid),
			InitPC:  tid,
			Retired: 40,
			Seqs: []Sequencer{
				{Idx: 0, TS: uint64(tid*10 + 1), Kind: SeqStart, Aux: -1},
				{Idx: 5, TS: uint64(tid*10 + 2), Kind: SeqSyscall, Aux: isa.SysPrint},
				{Idx: 9, TS: uint64(tid*10 + 3), Kind: SeqLock, Aux: 0},
				{Idx: 40, TS: uint64(tid*10 + 4), Kind: SeqEnd, Aux: -1},
			},
			SysRets:   []SysRec{{Idx: 5, Res: uint64(tid)}},
			EndReason: EndHalted,
		}
		t.InitRegs[isa.SP] = isa.StackTop(tid)
		t.InitRegs[3] = uint64(tid) * 1000
		base := uint64(0x7f00_1234_0000) + uint64(tid)<<20
		for i := 0; i < 20; i++ {
			t.Loads = append(t.Loads, LoadRec{
				Idx:  uint64(i * 2),
				Addr: base + uint64((i%5)*8),
				Val:  uint64(i) * 2654435761,
			})
		}
		t.KeyFrames = []KeyFrame{{
			Idx: 20, PC: 1,
			View: []LoadRec{{Addr: base, Val: 1}, {Addr: base + 8, Val: 2}},
		}}
		t.KeyFrames[0].Regs[2] = 99
		log.Threads = append(log.Threads, t)
	}
	log.Threads[2].EndReason = EndFaulted
	log.Threads[2].Fault = &FaultRec{Kind: 1, PC: 2, Addr: 0xdead}
	return log
}

// logsEqual compares two logs by their canonical v1 serialization.
func logsEqual(a, b *Log) bool { return bytes.Equal(Marshal(a), Marshal(b)) }

func TestV2RoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		log := richLog()
		data := EncodeV2(log, compress)
		got, faults, err := DecodeV2(data, V2Options{})
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if len(faults) != 0 {
			t.Fatalf("compress=%v: unexpected faults %v", compress, faults)
		}
		if !logsEqual(got, log) {
			t.Errorf("compress=%v: decoded log differs from original", compress)
		}
	}
}

func TestV2SampleLogRoundTrip(t *testing.T) {
	log := sampleLog()
	got, err := Decode(MarshalV2(log))
	if err != nil {
		t.Fatal(err)
	}
	if !logsEqual(got, log) {
		t.Error("decoded log differs from original")
	}
}

func TestV2ParallelDecodeIdentical(t *testing.T) {
	log := richLog()
	data := MarshalV2(log)
	serial, _, err := DecodeV2(data, V2Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8} {
		par, _, err := DecodeV2(data, V2Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !logsEqual(serial, par) {
			t.Errorf("jobs=%d: parallel decode differs from serial", jobs)
		}
	}
}

func TestDecodeSniffsFormats(t *testing.T) {
	log := sampleLog()
	want := Marshal(log)
	cases := map[string][]byte{
		"v1-container": Compress(Marshal(log)),
		"v1-raw":       Marshal(log),
		"v2":           MarshalV2(log),
		"v2-deflate":   EncodeV2(log, true),
	}
	for name, data := range cases {
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(Marshal(got), want) {
			t.Errorf("%s: decoded log differs", name)
		}
	}
	if _, err := Decode([]byte("NOTAMAGIC-AT-ALL")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("garbage: got %v, want ErrBadMagic", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrBadMagic) {
		t.Errorf("empty: got %v, want ErrBadMagic", err)
	}
}

func TestSniffFormat(t *testing.T) {
	log := sampleLog()
	if f := SniffFormat(Compress(Marshal(log))); f != FormatV1 {
		t.Errorf("container: %q", f)
	}
	if f := SniffFormat(Marshal(log)); f != FormatV1 {
		t.Errorf("raw: %q", f)
	}
	if f := SniffFormat(MarshalV2(log)); f != FormatV2 {
		t.Errorf("v2: %q", f)
	}
	if f := SniffFormat([]byte("junk")); f != FormatUnknown {
		t.Errorf("junk: %q", f)
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"v1", "v2"} {
		f, err := ParseFormat(s)
		if err != nil || string(f) != s {
			t.Errorf("ParseFormat(%q) = %v, %v", s, f, err)
		}
	}
	if _, err := ParseFormat("v3"); err == nil {
		t.Error("ParseFormat accepted v3")
	}
}

func TestWriteFormatRoundTrip(t *testing.T) {
	log := richLog()
	for _, f := range []Format{FormatV1, FormatV2} {
		var buf bytes.Buffer
		if err := WriteFormat(&buf, log, f); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !logsEqual(got, log) {
			t.Errorf("%s: round trip differs", f)
		}
	}
}

// TestV2AuxRoundTrip pins the aux-presence flag: a non-syscall sequencer
// with a meaningful aux survives, and the common aux=-1 case costs no
// byte.
func TestV2AuxRoundTrip(t *testing.T) {
	log := sampleLog()
	log.Threads[0].Seqs[1] = Sequencer{Idx: 1, TS: 1, Kind: SeqAtomic, Aux: 7}
	got, err := Decode(MarshalV2(log))
	if err != nil {
		t.Fatal(err)
	}
	if s := got.Threads[0].Seqs[1]; s.Kind != SeqAtomic || s.Aux != 7 {
		t.Errorf("aux sequencer mangled: %+v", s)
	}
}

func TestV2TruncationsRejectedTyped(t *testing.T) {
	data := MarshalV2(richLog())
	for n := 0; n < len(data); n++ {
		log, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("prefix %d/%d decoded (%d threads)", n, len(data), len(log.Threads))
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("prefix %d: untyped error %v", n, err)
		}
	}
}

func TestV2ByteFlipsRejectedOrValidTyped(t *testing.T) {
	orig := MarshalV2(richLog())
	for i := 0; i < len(orig); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			data := append([]byte(nil), orig...)
			data[i] ^= bit
			log, _, err := DecodeV2(data, V2Options{QuarantineThreads: true})
			if err == nil {
				if verr := log.Validate(); verr != nil {
					t.Fatalf("flip %d: accepted invalid log: %v", i, verr)
				}
				continue
			}
			var de *DecodeError
			var ve *ValidateError
			if !errors.As(err, &de) && !errors.As(err, &ve) {
				t.Fatalf("flip %d: untyped error %v", i, err)
			}
		}
	}
}

// TestV2ThreadQuarantine corrupts one thread's segment payload: strict
// decode condemns the log, quarantine decode drops exactly that thread
// and keeps the rest.
func TestV2ThreadQuarantine(t *testing.T) {
	log := richLog()
	data := MarshalV2(log)
	idx, err := parseV2Index(data, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the last thread's payload.
	e := idx.entries[3]
	pos := idx.areaStart + int(e.off) + int(e.encLen)/2
	bad := append([]byte(nil), data...)
	bad[pos] ^= 0x55

	if _, _, err := DecodeV2(bad, V2Options{}); err == nil {
		t.Fatal("strict decode accepted a corrupt segment")
	}
	got, faults, err := DecodeV2(bad, V2Options{QuarantineThreads: true})
	if err != nil {
		t.Fatalf("quarantine decode failed: %v", err)
	}
	if len(faults) != 1 || faults[0].Segment != 3 || faults[0].TID != 2 {
		t.Fatalf("faults = %v, want segment 3 thread 2", faults)
	}
	if !errors.Is(faults[0].Err, errChecksum) {
		t.Errorf("fault error = %v, want checksum mismatch", faults[0].Err)
	}
	if len(got.Threads) != 2 || got.Thread(2) != nil {
		t.Fatalf("salvaged log has wrong threads: %d", len(got.Threads))
	}
	// The surviving threads decode identically to the intact container.
	want, _ := Decode(data)
	want.Threads = want.Threads[:2]
	if !logsEqual(got, want) {
		t.Error("surviving threads differ from intact decode")
	}
}

// TestV2IndexCorruptionFailsLog: damage to the header or index is never
// salvageable — quarantine mode still rejects the whole log.
func TestV2IndexCorruptionFailsLog(t *testing.T) {
	data := MarshalV2(richLog())
	for _, pos := range []int{8, 13, v2HeaderLen + 2, v2HeaderLen + v2IndexEntryLen + 16} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0xff
		if _, _, err := DecodeV2(bad, V2Options{QuarantineThreads: true}); err == nil {
			t.Errorf("index byte %d corrupt: decode accepted", pos)
		}
	}
}

// encLenOverflowContainer crafts a deflated container whose first thread
// entry carries an encLen of 2^64-off, so accumulating segment offsets
// wraps the running sum back to 0; the remaining entries are repacked so
// every pre-wrap-check invariant (packed offsets, final sum landing on
// the container end) still holds. The index checksum is recomputed, so
// only the overflow guard can reject it.
func encLenOverflowContainer() []byte {
	data := append([]byte(nil), EncodeV2(richLog(), true)...)
	idx, err := parseV2Index(data, int64(len(data)))
	if err != nil {
		panic(err)
	}
	entry := func(i int) []byte {
		return data[v2HeaderLen+i*v2IndexEntryLen : v2HeaderLen+(i+1)*v2IndexEntryLen]
	}
	binary.LittleEndian.PutUint64(entry(1)[16:24], -idx.entries[1].off)
	for i := 2; i < len(idx.entries); i++ {
		binary.LittleEndian.PutUint64(entry(i)[8:16], 0)
		binary.LittleEndian.PutUint64(entry(i)[16:24], 0)
	}
	last := entry(len(idx.entries) - 1)
	binary.LittleEndian.PutUint64(last[16:24], uint64(len(data)-idx.areaStart))
	binary.LittleEndian.PutUint32(data[12:16],
		crc32.Checksum(data[v2HeaderLen:idx.areaStart], crcTable))
	return data
}

// TestV2IndexEncLenOverflow: an index entry whose encoded length wraps
// the running offset sum past 2^64 must fail with a typed error, never
// reach segmentPayload with a negative int length (regression: slice
// bounds panic on a crafted deflated container).
func TestV2IndexEncLenOverflow(t *testing.T) {
	data := encLenOverflowContainer()
	for _, quarantine := range []bool{false, true} {
		_, _, err := DecodeV2(data, V2Options{QuarantineThreads: quarantine})
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("quarantine=%v: err = %v, want *DecodeError", quarantine, err)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("quarantine=%v: err = %v, want %v", quarantine, err, ErrTruncated)
		}
	}
}

// TestV2AllThreadsCorruptFailsLog: when no thread survives, quarantine
// mode condemns the log instead of returning an empty husk.
func TestV2AllThreadsCorruptFailsLog(t *testing.T) {
	data := MarshalV2(sampleLog()) // one thread
	idx, err := parseV2Index(data, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[idx.areaStart+int(idx.entries[1].off)] ^= 0x40
	if _, _, err := DecodeV2(bad, V2Options{QuarantineThreads: true}); err == nil {
		t.Fatal("decode accepted a log with zero surviving threads")
	}
}

func TestV2BoundedAllocation(t *testing.T) {
	data := MarshalV2(richLog())
	budget := uint64(64*len(data)) + 1<<20
	for _, pos := range []int{8, 40, 100, len(data) / 2, len(data) - 10} {
		bad := append([]byte(nil), data...)
		// Splice a maximal varint over one byte, then re-decode.
		huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
		bad = append(bad[:pos:pos], append(huge, bad[pos+1:]...)...)
		alloc := allocDelta(func() {
			DecodeV2(bad, V2Options{QuarantineThreads: true})
		})
		if alloc > budget {
			t.Errorf("splice at %d: allocated %d bytes for %d input (budget %d)",
				pos, alloc, len(bad), budget)
		}
	}
}

func TestDecodeFromFile(t *testing.T) {
	log := richLog()
	dir := t.TempDir()
	cases := map[string][]byte{
		"v1.rlog":  Compress(Marshal(log)),
		"v2.rlog":  MarshalV2(log),
		"v2c.rlog": EncodeV2(log, true),
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := f.Stat()
		got, faults, err := DecodeFrom(f, st.Size(), V2Options{Jobs: 4})
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(faults) != 0 {
			t.Fatalf("%s: faults %v", name, faults)
		}
		if !logsEqual(got, log) {
			t.Errorf("%s: DecodeFrom differs from in-memory decode", name)
		}
	}
	// Garbage file: typed rejection without reading the body.
	path := filepath.Join(dir, "junk.rlog")
	os.WriteFile(path, bytes.Repeat([]byte{0xab}, 4096), 0o644)
	f, _ := os.Open(path)
	defer f.Close()
	if _, _, err := DecodeFrom(f, 4096, V2Options{}); !errors.Is(err, ErrBadMagic) {
		t.Errorf("junk: got %v, want ErrBadMagic", err)
	}
}

// TestV2RawSmallerOnLoadHeavyLogs pins the §5.1 win the format was
// designed for: on a load-heavy log with realistic (large, clustered)
// addresses, v2's signed address deltas and sparse registers beat v1's
// absolute addresses despite the 40-byte-per-segment index.
func TestV2RawSmallerOnLoadHeavyLogs(t *testing.T) {
	log := richLog()
	v1 := Stats(log)
	v2 := StatsV2(log)
	if v2.Instructions != v1.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", v2.Instructions, v1.Instructions)
	}
	if v2.RawBytes >= v1.RawBytes {
		t.Errorf("v2 raw %d >= v1 raw %d", v2.RawBytes, v1.RawBytes)
	}
	if v2.RawBitsPerInstr() > v1.RawBitsPerInstr() {
		t.Errorf("v2 raw bits/instr %.3f > v1 %.3f", v2.RawBitsPerInstr(), v1.RawBitsPerInstr())
	}
}
