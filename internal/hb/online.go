package hb

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Online is a machine.Observer that runs the paper's region-overlap race
// check *while the program executes*, in the style of Ronsse & De
// Bosschere's on-the-fly detectors, so a recording can end with a
// raced/race-free verdict and skip the offline decode+HB pass when clean.
//
// The decisive test is exactly the offline one: two data accesses race
// when their sequencing regions (the intervals between consecutive
// sequencer timestamps on each thread) overlap, the threads differ, at
// least one access is a write, and neither is atomic. Regions are
// maintained incrementally from the same observer callbacks the recorder
// consumes, so the online verdict matches Detect on the recorded log by
// construction:
//
//   - both regions still open  => their intervals overlap (each started
//     before the other has ended);
//   - stored region closed [s,e) vs the current access's open region
//     starting at c => they overlap iff c < e, because timestamps are
//     strictly increasing (the stored region began before the current one
//     ends, whenever the current one ends).
//
// Every offline pair is screened online when its later access executes,
// so "no race found online" and "no race found offline" coincide.
//
// Per-thread vector clocks (internal/vclock) are carried alongside the
// intervals: each region ticks its thread's clock, and a spawn joins the
// parent's clock into the child. Happens-before implies non-overlap, so
// the clock comparison is a sound prune that skips the window scan for
// ordered pairs (counted on detect.online.hb_pruned); it can never flip
// the verdict.
//
// A watermark sweep keeps the window bounded: once every closed region's
// end falls at or below the minimum open-region start across live
// threads, no future access can overlap it and its records are evicted.
type Online struct {
	prog  *isa.Program
	table *siteTable
	reg   *obs.Registry

	stopOnRace bool
	stop       bool

	threads map[int]*onlineThread
	window  map[uint64][]onlineRec // addr -> live access records
	recs    int                    // total records across the window

	// pendingSpawn links a spawn edge: ThreadStarted(child, startTS)
	// arrives before the parent's Sequencer with ts == startTS, so the
	// child parks here until the parent's clock is known.
	pendingSpawn map[uint64]*onlineThread

	races      map[SitePair]struct{}
	raceOrder  []SitePair
	pcSeen     []bool // data-access PCs observed (atomic included)
	pcCount    int
	seqs       uint64 // sequencer events, drives the eviction sweep
	checked    uint64 // candidate pairs screened
	hbPruned   uint64 // pairs skipped because vector clocks ordered them
	evicted    uint64 // records reclaimed by watermark sweeps
	sweeps     uint64
	windowPeak int
}

// onlineRegion is one sequencing region: the half-open timestamp interval
// a thread executes between two of its sequencers. vc is the thread's
// vector clock for this region; it is mutated in place only between a
// child's ThreadStarted and its parent's spawn sequencer, before the
// child can execute an access.
type onlineRegion struct {
	tid   int
	start uint64
	end   uint64 // 0 while the region is open
	vc    vclock.VC
}

// onlineRec is one access record in the window: the oldest-region access
// of its (address, region, write-ness, pc) class. Later identical
// accesses in the same region are deduplicated away.
type onlineRec struct {
	reg     *onlineRegion
	pc      int
	isWrite bool
}

type onlineThread struct {
	tid   int
	cur   *onlineRegion
	ended bool
}

// sweepEvery is the eviction cadence in sequencer events. Sweeps are
// driven by event counts, never wall time, so runs remain deterministic.
const sweepEvery = 64

// maxOnlineRaces bounds the distinct site pairs retained for the report;
// the boolean verdict is unaffected once the cap is hit.
const maxOnlineRaces = 1024

// NewOnline builds an online detector for prog. reg may be nil (metrics
// off). stopOnRace makes StopRequested return true once a race is seen,
// which a machine polls at quantum boundaries (machine.Stopper).
func NewOnline(prog *isa.Program, reg *obs.Registry, stopOnRace bool) *Online {
	return &Online{
		prog:         prog,
		table:        sitesFor(prog),
		reg:          reg,
		stopOnRace:   stopOnRace,
		threads:      make(map[int]*onlineThread),
		window:       make(map[uint64][]onlineRec),
		pendingSpawn: make(map[uint64]*onlineThread),
		races:        make(map[SitePair]struct{}),
		pcSeen:       make([]bool, len(prog.Code)),
	}
}

// ThreadStarted implements machine.Observer. The child's first region
// opens at the spawn timestamp; its clock is completed when the parent's
// spawn sequencer (same timestamp) fires, before the child can run.
func (o *Online) ThreadStarted(t *machine.Thread, startTS uint64) {
	th := &onlineThread{tid: t.ID}
	vc := vclock.New(t.ID + 1).Tick(t.ID)
	th.cur = &onlineRegion{tid: t.ID, start: startTS, vc: vc}
	o.threads[t.ID] = th
	if startTS > 0 {
		o.pendingSpawn[startTS] = th
	}
}

// ThreadEnded implements machine.Observer.
func (o *Online) ThreadEnded(t *machine.Thread, endTS uint64) {
	th := o.threads[t.ID]
	if th == nil || th.ended {
		return
	}
	th.cur.end = endTS
	th.ended = true
}

// Sequencer implements machine.Observer: it closes the current region and
// opens the next. A spawn sequencer additionally completes the parked
// child's clock with the parent's — taken *before* the parent ticks for
// its next region, so the parent's post-spawn regions stay concurrent
// with the child while everything up to the spawn happens-before it.
func (o *Online) Sequencer(tid int, idx uint64, ts uint64, op isa.Op, sysNum int64) {
	th := o.threads[tid]
	if th == nil || th.ended {
		return
	}
	th.cur.end = ts
	if child, ok := o.pendingSpawn[ts]; ok && child.tid != tid {
		child.cur.vc = child.cur.vc.Join(th.cur.vc)
		delete(o.pendingSpawn, ts)
	}
	vc := th.cur.vc.Clone().Tick(tid)
	th.cur = &onlineRegion{tid: tid, start: ts, vc: vc}
	o.seqs++
	if o.seqs%sweepEvery == 0 {
		o.sweep()
	}
}

// Load implements machine.Observer.
func (o *Online) Load(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	o.access(tid, pc, addr, atomic, false)
}

// Store implements machine.Observer.
func (o *Online) Store(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	o.access(tid, pc, addr, atomic, true)
}

// SyscallRet implements machine.Observer.
func (o *Online) SyscallRet(tid int, idx uint64, res uint64) {}

// StopRequested implements machine.Stopper.
func (o *Online) StopRequested() bool { return o.stop }

// Raced reports whether any race has been observed so far. Safe to call
// mid-run (e.g. by a down-sampling key-frame recorder).
func (o *Online) Raced() bool { return len(o.races) > 0 }

func (o *Online) access(tid, pc int, addr uint64, atomic, isWrite bool) {
	if pc >= 0 && pc < len(o.pcSeen) && !o.pcSeen[pc] {
		o.pcSeen[pc] = true
		o.pcCount++
	}
	if atomic {
		// Lock-prefixed accesses never participate in a race; they also
		// need no record, since the region test ignores them entirely.
		return
	}
	th := o.threads[tid]
	if th == nil {
		return
	}
	cur := th.cur
	recs := o.window[addr]
	for i := range recs {
		rec := &recs[i]
		if rec.reg.tid == tid {
			continue
		}
		if !isWrite && !rec.isWrite {
			continue
		}
		o.checked++
		// Sound prune: an HB-ordered pair cannot overlap (the edge chain
		// only exists because the earlier region closed first).
		if rec.reg.vc.HappensBefore(cur.vc) {
			o.hbPruned++
			continue
		}
		// The decisive interval test. rec's region is either still open
		// (trivial overlap: both are running now) or closed at rec.end;
		// the current region began at cur.start and has no end yet, so
		// overlap reduces to cur.start < rec.end.
		if rec.reg.end != 0 && cur.start >= rec.reg.end {
			continue
		}
		o.foundRace(rec.pc, pc)
	}
	// Record this access unless an identical one from the same region is
	// already present: same region+pc+write-ness screens the same future
	// pairs, so duplicates add nothing.
	for i := range recs {
		rec := &recs[i]
		if rec.reg == cur && rec.pc == pc && rec.isWrite == isWrite {
			return
		}
	}
	o.window[addr] = append(recs, onlineRec{reg: cur, pc: pc, isWrite: isWrite})
	o.recs++
	if o.recs > o.windowPeak {
		o.windowPeak = o.recs
	}
}

func (o *Online) foundRace(pcA, pcB int) {
	sites := MakeSitePair(o.table.site(pcA), o.table.site(pcB))
	if _, ok := o.races[sites]; ok {
		return
	}
	if len(o.races) >= maxOnlineRaces {
		return
	}
	o.races[sites] = struct{}{}
	o.raceOrder = append(o.raceOrder, sites)
	if o.stopOnRace {
		o.stop = true
	}
	if o.reg != nil {
		o.reg.EmitLabeled("detect.online.race", sites.A+" <-> "+sites.B, uint64(len(o.races)))
	}
}

// sweep evicts records no future access can overlap: once a region's end
// is at or below every live thread's open-region start, any region that
// ever checks against it will start at or above that end.
func (o *Online) sweep() {
	o.sweeps++
	watermark := ^uint64(0)
	live := false
	for _, th := range o.threads {
		if th.ended {
			continue
		}
		live = true
		if th.cur.start < watermark {
			watermark = th.cur.start
		}
	}
	if !live {
		watermark = ^uint64(0)
	}
	for addr, recs := range o.window {
		kept := recs[:0]
		for _, rec := range recs {
			if rec.reg.end != 0 && rec.reg.end <= watermark {
				o.evicted++
				o.recs--
				continue
			}
			kept = append(kept, rec)
		}
		if len(kept) == 0 {
			delete(o.window, addr)
		} else {
			o.window[addr] = kept
		}
	}
}

// OnlineReport is the detector's summary after the run.
type OnlineReport struct {
	RaceFree bool
	Races    []SitePair // distinct racy site pairs, in discovery order
	Stopped  bool       // StopOnFirstRace truncated the run
	Checked  uint64     // candidate pairs screened
	HBPruned uint64     // pairs skipped by the vector-clock prune
}

// ObservedPCs returns the sorted code indices that performed data
// accesses, for trace.OnlineInfo.
func (o *Online) ObservedPCs() []int {
	pcs := make([]int, 0, o.pcCount)
	for pc, seen := range o.pcSeen {
		if seen {
			pcs = append(pcs, pc)
		}
	}
	sort.Ints(pcs)
	return pcs
}

// Report finalizes the run: it publishes the detect.online.* metrics and
// returns the verdict. stopped says whether the machine actually ended
// early (the stop request is only polled at quantum boundaries).
func (o *Online) Report(stopped bool) *OnlineReport {
	rep := &OnlineReport{
		RaceFree: len(o.races) == 0,
		Races:    o.raceOrder,
		Stopped:  stopped,
		Checked:  o.checked,
		HBPruned: o.hbPruned,
	}
	if r := o.reg; r != nil {
		r.Counter("detect.online.executions").Inc()
		r.Counter("detect.online.races").Add(uint64(len(o.races)))
		if rep.RaceFree {
			r.Counter("detect.online.race_free").Inc()
		}
		r.Counter("detect.online.pairs_checked").Add(o.checked)
		r.Counter("detect.online.hb_pruned").Add(o.hbPruned)
		r.Counter("detect.online.evicted").Add(o.evicted)
		r.Counter("detect.online.sweeps").Add(o.sweeps)
		r.Gauge("detect.online.window_peak").Set(float64(o.windowPeak))
		if stopped {
			r.Counter("detect.online.stopped").Inc()
		}
		r.Emit("detect.online.verdict", uint64(len(o.races)))
	}
	return rep
}

// Info converts the report into the trace.Log annotation consumed by the
// analysis fast path.
func (o *Online) Info(stopped bool) *trace.OnlineInfo {
	return &trace.OnlineInfo{
		RaceFree: len(o.races) == 0,
		Races:    len(o.races),
		Stopped:  stopped,
		ObservedPCs: func() []int {
			if len(o.races) > 0 {
				// The full offline pass runs anyway; skip the copy.
				return nil
			}
			return o.ObservedPCs()
		}(),
	}
}
