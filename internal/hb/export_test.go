package hb

// Test hooks for the bounded site-string cache (sites.go).

func ResetSiteCacheForTest()    { resetSiteCache() }
func SiteCacheSizeForTest() int { return siteCacheSize() }
func MaxSitePrograms() int      { return maxSitePrograms }
