package hb_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/replay"
	"repro/internal/trace"
)

func analyze(t *testing.T, src string, seed int64) (*replay.Execution, *hb.Report) {
	t.Helper()
	prog, err := asm.Assemble("hb", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exec, hb.Detect(exec)
}

const twoWorkers = `
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

func TestDetectsRacyCounter(t *testing.T) {
	src := `
.entry main
.word n 0
worker:
  ldi r2, 20
wloop:
  ldi r4, n
rread:
  ld r5, [r4+0]
  addi r5, r5, 1
rwrite:
  st [r4+0], r5
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + twoWorkers
	found := false
	for seed := int64(1); seed <= 8 && !found; seed++ {
		_, rep := analyze(t, src, seed)
		for _, race := range rep.Races {
			s := race.Sites.String()
			if strings.Contains(s, "rread") || strings.Contains(s, "rwrite") {
				found = true
				if len(race.Instances) == 0 {
					t.Error("race with no instances")
				}
			}
		}
	}
	if !found {
		t.Error("racy counter not detected on any seed")
	}
}

func TestNoRacesUnderLock(t *testing.T) {
	src := `
.entry main
.word mu 0
.word n 0
worker:
  ldi r2, 25
wloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + twoWorkers
	for seed := int64(1); seed <= 10; seed++ {
		_, rep := analyze(t, src, seed)
		if len(rep.Races) != 0 {
			t.Fatalf("seed %d: locked counter reported %d races: %v",
				seed, len(rep.Races), rep.Races[0].Sites)
		}
	}
}

func TestAtomicAccessesAreNotDataRaces(t *testing.T) {
	src := `
.entry main
.word n 0
worker:
  ldi r2, 25
  ldi r6, 1
wloop:
  ldi r4, n
  xadd r5, [r4+0], r6
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + twoWorkers
	for seed := int64(1); seed <= 10; seed++ {
		_, rep := analyze(t, src, seed)
		if len(rep.Races) != 0 {
			t.Fatalf("seed %d: atomic counter reported races", seed)
		}
	}
}

func TestSingleThreadNeverRaces(t *testing.T) {
	src := `
.word g 0
main:
  ldi r2, g
  ldi r1, 50
loop:
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  fence
  addi r1, r1, -1
  bne r1, r0, loop
  halt
`
	_, rep := analyze(t, src, 1)
	if len(rep.Races) != 0 {
		t.Fatalf("single-threaded program reported %d races", len(rep.Races))
	}
}

func TestSpawnJoinOrderSuppressesRaces(t *testing.T) {
	// Parent writes before spawn and reads after join; child writes in
	// between. Fully ordered: no races.
	src := `
.entry main
.word g 0
child:
  ldi r2, g
  ld r3, [r2+0]
  addi r3, r3, 5
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r2, g
  ldi r3, 1
  st [r2+0], r3     ; before spawn
  ldi r1, child
  ldi r2, 0
  sys spawn
  sys join
  ldi r2, g
  ld r4, [r2+0]     ; after join
  halt
`
	for seed := int64(1); seed <= 10; seed++ {
		_, rep := analyze(t, src, seed)
		if len(rep.Races) != 0 {
			t.Fatalf("seed %d: spawn/join ordered program reported races: %v",
				seed, rep.Races[0].Sites)
		}
	}
}

func TestUnjoinedChildRacesWithParent(t *testing.T) {
	// Parent writes g concurrently with the child reading it — no join
	// before the parent's write.
	src := `
.entry main
.word g 0
.word hold 0
child:
  ldi r2, g
creread:
  ld r3, [r2+0]
  ldi r1, 0
  sys exit
main:
  ldi r1, child
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r2, g
  ldi r3, 9
mwrite:
  st [r2+0], r3
  mov r1, r6
  sys join
  halt
`
	found := false
	for seed := int64(1); seed <= 12 && !found; seed++ {
		_, rep := analyze(t, src, seed)
		for _, race := range rep.Races {
			s := race.Sites.String()
			if strings.Contains(s, "creread") && strings.Contains(s, "mwrite") {
				found = true
			}
		}
	}
	if !found {
		t.Error("parent/child race not detected on any seed")
	}
}

func TestInstanceDedupAndSitePairs(t *testing.T) {
	if hb.MakeSitePair("b", "a") != (hb.SitePair{A: "a", B: "b"}) {
		t.Error("hb.MakeSitePair should sort")
	}
	if hb.MakeSitePair("a", "b") != hb.MakeSitePair("b", "a") {
		t.Error("site pairs must be unordered")
	}
}

func TestVCDetectorAgreesOnOrderedPrograms(t *testing.T) {
	src := `
.entry main
.word mu 0
.word n 0
worker:
  ldi r2, 10
wloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + twoWorkers
	for seed := int64(1); seed <= 6; seed++ {
		exec, rep := analyze(t, src, seed)
		vcRep, err := hb.DetectVC(exec)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Races) != 0 || len(vcRep.Races) != 0 {
			t.Fatalf("seed %d: locked program raced (interval %d, vc %d)",
				seed, len(rep.Races), len(vcRep.Races))
		}
	}
}

func TestVCDetectorSupersetsIntervalDetector(t *testing.T) {
	// An unjoined child's store is unsynchronized with the parent's late
	// load, but the parent burns many sequencers first, so on most seeds
	// the child's region interval closes before the parent's load region
	// opens — the interval test misses the race, vector clocks keep it.
	src := `
.entry main
.word g 0
child:
  ldi r2, g
  ldi r3, 7
cwrite:
  st [r2+0], r3
  ldi r1, 0
  sys exit
main:
  ldi r1, child
  ldi r2, 0
  sys spawn
  fence
  fence
  fence
  fence
  fence
  fence
  fence
  fence
  ldi r2, g
mread:
  ld r4, [r2+0]
  halt
`
	foundGap := false
	for seed := int64(1); seed <= 40 && !foundGap; seed++ {
		exec, rep := analyze(t, src, seed)
		vcRep, err := hb.DetectVC(exec)
		if err != nil {
			t.Fatal(err)
		}
		// VC must always find at least what the interval test finds.
		if vcRep.TotalInstances < rep.TotalInstances {
			t.Fatalf("seed %d: vc (%d) < interval (%d)", seed, vcRep.TotalInstances, rep.TotalInstances)
		}
		has := func(r *hb.Report) bool {
			for _, race := range r.Races {
				s := race.Sites.String()
				if strings.Contains(s, "cwrite") && strings.Contains(s, "mread") {
					return true
				}
			}
			return false
		}
		if !has(vcRep) {
			t.Fatalf("seed %d: vc detector missed the unsynchronized pair", seed)
		}
		if !has(rep) {
			foundGap = true // interval test missed it: the ablation gap
		}
	}
	if !foundGap {
		t.Error("no seed demonstrated the interval-vs-vc coverage gap")
	}
}

func TestReportRaceLookup(t *testing.T) {
	rep := &hb.Report{Races: []*hb.Race{{Sites: hb.SitePair{A: "x", B: "y"}}}}
	if rep.Race(hb.SitePair{A: "x", B: "y"}) == nil {
		t.Error("lookup failed")
	}
	if rep.Race(hb.SitePair{A: "q", B: "z"}) != nil {
		t.Error("phantom race")
	}
}

// TestDetectionDeterministic: the detector's output (race order, instance
// order, counts) must be identical across repeated runs — no map-iteration
// order may leak into results.
func TestDetectionDeterministic(t *testing.T) {
	src := `
.entry main
.word a 0
.word b 0
worker:
  ldi r2, a
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  ldi r2, b
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  ldi r1, 0
  sys exit
` + twoWorkers
	prog, err := asm.Assemble("det", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := hb.Detect(exec)
	for round := 0; round < 5; round++ {
		again := hb.Detect(exec)
		if len(again.Races) != len(first.Races) || again.TotalInstances != first.TotalInstances {
			t.Fatalf("round %d: race/instance counts changed", round)
		}
		for i := range first.Races {
			a, b := first.Races[i], again.Races[i]
			if a.Sites != b.Sites || len(a.Instances) != len(b.Instances) {
				t.Fatalf("round %d: race %d differs", round, i)
			}
			for j := range a.Instances {
				x, y := a.Instances[j], b.Instances[j]
				if x.Addr != y.Addr || x.First != y.First || x.Second != y.Second {
					t.Fatalf("round %d: instance %d/%d differs", round, i, j)
				}
			}
		}
	}
}

// TestDetectionSurvivesSerialization: detecting races on a log that went
// through the binary format must give exactly the in-memory result.
func TestDetectionSurvivesSerialization(t *testing.T) {
	src := `
.entry main
.word n 0
worker:
  ldi r2, 12
wloop:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  sys sysnop
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
` + twoWorkers
	prog, err := asm.Assemble("ser", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	log2, err := trace.Unmarshal(trace.Marshal(log))
	if err != nil {
		t.Fatal(err)
	}
	execA, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	execB, err := replay.Run(log2, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := hb.Detect(execA), hb.Detect(execB)
	if len(a.Races) != len(b.Races) || a.TotalInstances != b.TotalInstances {
		t.Fatalf("serialization changed detection: %d/%d vs %d/%d",
			len(a.Races), a.TotalInstances, len(b.Races), b.TotalInstances)
	}
	for i := range a.Races {
		if a.Races[i].Sites != b.Races[i].Sites {
			t.Fatalf("race %d sites differ", i)
		}
	}
}

// TestDetectInstrumentedPublishesCounters pins the detect.* counter
// contract: an instrumented run on a racy program must publish every
// stage counter with values consistent with the report. (Guards the
// registry parameter against being shadowed inside the detector.)
func TestDetectInstrumentedPublishesCounters(t *testing.T) {
	src := `
.entry main
.word n 0
worker:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  ldi r1, 0
  sys exit
` + twoWorkers
	prog, err := asm.Assemble("hb", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep := hb.DetectInstrumented(exec, reg)
	snap := reg.Snapshot()
	if got := snap.Counters["detect.executions"]; got != 1 {
		t.Errorf("detect.executions = %d, want 1", got)
	}
	if got := snap.Counters["detect.races"]; got != uint64(len(rep.Races)) {
		t.Errorf("detect.races = %d, want %d", got, len(rep.Races))
	}
	if got := snap.Counters["detect.instances"]; got != uint64(rep.TotalInstances) {
		t.Errorf("detect.instances = %d, want %d", got, rep.TotalInstances)
	}
	if snap.Counters["detect.addresses_indexed"] == 0 {
		t.Error("detect.addresses_indexed not published")
	}
	if snap.Counters["detect.region_pairs_examined"] == 0 {
		t.Error("detect.region_pairs_examined not published")
	}
	// The same counters accumulate across the VC ablation.
	if _, err := hb.DetectVCInstrumented(exec, reg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["detect.executions"]; got != 2 {
		t.Errorf("detect.executions after VC pass = %d, want 2", got)
	}
}
