package hb_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/replay"
)

// TestPaperFigure1Structure mirrors the paper's Figure 1: three threads
// whose sequencers partition their executions into regions, where region
// overlap — not thread identity — decides which memory operations race.
//
// T1 writes g inside one sequencing region; T2 reads g in a region that
// overlaps it (unordered: race) and T3 reads g in a region that starts
// only after T1's region closed (ordered by the sequencer order: no
// race), even though neither T2 nor T3 synchronizes with T1 via locks.
func TestPaperFigure1Structure(t *testing.T) {
	// Round-robin with quantum 1 makes the interleaving exact: threads
	// advance one instruction at a time in spawn order.
	src := `
.entry main
.word g 0
.word gate 0
t1:
  fence              ; S: opens T1's writing region
  ldi r2, g
  ldi r3, 9
t1w:
  st [r2+0], r3
  fence              ; S: closes the writing region
  ldi r2, gate       ; signal t3 that the region is over
  ldi r3, 1
  st [r2+0], r3
  ldi r1, 0
  sys exit
t2:
  ldi r2, g
t2r:
  ld r4, [r2+0]      ; in a region overlapping T1's write region
  ldi r1, 0
  sys exit
t3:
  ldi r2, gate
t3wait:
  ld r5, [r2+0]
  beq r5, r0, t3wait ; wait until T1's write region has closed...
  fence              ; ...then open a fresh region
  ldi r2, g
t3r:
  ld r6, [r2+0]      ; this region starts after T1's closed: ordered
  ldi r1, 0
  sys exit
main:
  ldi r1, t1
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, t2
  ldi r2, 0
  sys spawn
  mov r9, r1
  ldi r1, t3
  ldi r2, 0
  sys spawn
  mov r10, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  mov r1, r10
  sys join
  halt
`
	prog, err := asm.Assemble("fig1", src)
	if err != nil {
		t.Fatal(err)
	}
	// Scan seeds for a recording where T2's read physically overlapped
	// T1's write region — the configuration Figure 1 draws.
	for seed := int64(1); seed <= 40; seed++ {
		log, _, err := record.Run(prog, machine.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		exec, err := replay.Run(log, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := hb.Detect(exec)
		var t2Races, t3Races bool
		for _, race := range rep.Races {
			s := race.Sites.String()
			if containsAll(s, "t1w", "t2r") {
				t2Races = true
			}
			if containsAll(s, "t1w", "t3r") {
				t3Races = true
			}
		}
		// The gate handshake also races (benign user-sync); only the
		// g-accesses matter here.
		if t3Races {
			t.Fatalf("seed %d: T3's read raced with T1's write despite the sequencer order", seed)
		}
		if t2Races {
			// Also confirm the region intervals say what the paper says:
			// the racing pair sits in overlapping regions, and T3's read
			// region starts at or after T1's write region ended.
			race := findRace(rep, "t1w", "t2r")
			inst := race.Instances[0]
			if !inst.RegionA.Overlaps(inst.RegionB) {
				t.Fatal("racing regions do not overlap")
			}
			t3reg := findRegionReading(exec, "fig1:t3r")
			t1reg := inst.RegionA
			if t1reg.TID != 1 {
				t1reg = inst.RegionB
			}
			if t3reg != nil && t3reg.StartTS < t1reg.EndTS {
				t.Fatal("T3's read region began before T1's write region closed")
			}
			return // Figure 1 structure confirmed
		}
	}
	t.Fatal("no seed produced the Figure 1 overlap configuration")
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

func findRace(rep *hb.Report, subA, subB string) *hb.Race {
	for _, race := range rep.Races {
		if containsAll(race.Sites.String(), subA, subB) {
			return race
		}
	}
	return nil
}

func findRegionReading(exec *replay.Execution, site string) *replay.Region {
	for _, reg := range exec.Regions {
		for _, acc := range reg.Accesses {
			if acc.Site(exec.Prog) == site {
				return reg
			}
		}
	}
	return nil
}
