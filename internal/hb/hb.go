// Package hb finds data races in a replayed execution.
//
// The primary detector (Detect) is the paper's algorithm: two memory
// operations race when they execute in overlapping sequencing regions of
// different threads, touch the same address, at least one is a write, and
// neither is a lock-prefixed access. Region overlap is exactly "no
// sequencer orders the two operations", so the detector reports no false
// positives with respect to the recorded execution.
//
// DetectVC is the vector-clock ablation: it tracks the true happens-before
// partial order induced by spawn/join, lock release→acquire, and atomic
// operations, and flags conflicting accesses in concurrent regions. It can
// report races between regions whose timestamp intervals happen to be
// disjoint even though no synchronization separates them — pairs the
// interval test misses (DESIGN.md, ablation A1).
package hb

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// SitePair is the unordered static identity of a race: the two instruction
// sites, ordered lexicographically so the same race keys identically in
// every scenario.
type SitePair struct {
	A, B string
}

// MakeSitePair normalizes the order of two sites.
func MakeSitePair(x, y string) SitePair {
	if y < x {
		x, y = y, x
	}
	return SitePair{A: x, B: y}
}

func (p SitePair) String() string { return p.A + " <-> " + p.B }

// Instance is one dynamic occurrence of a race: a specific pair of
// conflicting accesses in a specific pair of overlapping regions. First is
// the access from the region scheduled earlier; the recorded ("original")
// order is approximated as First-then-Second, and the classifier replays
// both orders regardless.
type Instance struct {
	First, Second    replay.Access
	RegionA, RegionB *replay.Region // regions of First and Second respectively
	Addr             uint64
}

// Race is a unique static data race with all its observed instances.
type Race struct {
	Sites     SitePair
	Instances []Instance
}

// Report is the detector output for one execution.
type Report struct {
	Races          []*Race
	TotalInstances int

	// index maps sites to races, built by the detector (or lazily on the
	// first Race call for hand-assembled reports) so per-candidate joins —
	// the static cross-validation calls Race once per candidate — cost one
	// map lookup instead of a linear scan over every race.
	index map[SitePair]*Race
}

// Race returns the race with the given site pair, or nil. The first call
// on a report whose index is unbuilt builds it, so Race is not safe for
// concurrent first use with hand-assembled reports (detector-built
// reports come pre-indexed).
func (r *Report) Race(sites SitePair) *Race {
	if r.index == nil {
		r.index = make(map[SitePair]*Race, len(r.Races))
		for _, race := range r.Races {
			r.index[race.Sites] = race
		}
	}
	return r.index[sites]
}

// accessRef ties an access to its region for the per-address index.
type accessRef struct {
	acc replay.Access
	reg *replay.Region
}

// Detect runs the paper's region-overlap detector over exec.
func Detect(exec *replay.Execution) *Report {
	return DetectInstrumented(exec, nil)
}

// DetectInstrumented is Detect with stage metrics: reg receives the
// detect.* counters (addresses indexed, region pairs examined vs.
// conflicting, races and instances found). Nil reg is free.
func DetectInstrumented(exec *replay.Execution, reg *obs.Registry) *Report {
	return detect(exec, func(a, b *replay.Region) bool { return a.Overlaps(b) }, reg)
}

// addrScreen is the per-address screening summary plus the address's
// cursor into the shared reference buffer once it survives the screen.
type addrScreen struct {
	tid         int32 // first thread observed touching the address
	refs        int32 // non-atomic accesses (for exact buffer sizing)
	start, next int32 // range into the shared ref buffer (pass 2)
	multiThread bool  // a second thread touched it
	hasWrite    bool  // at least one non-atomic write
	keep        bool  // survived the screen
}

// detect is the shared conflict search, parameterized by the concurrency
// test on region pairs.
//
// The search runs in two passes over the recorded accesses. Pass 1
// screens every address down to a constant-size summary (slot in a flat
// slice; the only per-access map op is the address→slot lookup); only
// addresses touched by two or more threads with at least one write go
// any further — the single-thread-address fast path filters everything
// else, which on real workloads is almost every address. Pass 2 copies
// the surviving addresses' references into one exactly-sized shared
// buffer, each address a contiguous range, in region schedule order. So
// grouping by region is run-splitting over a sorted slice (references
// in a range arrive already sorted by Region.Global), and instance
// dedup is a linear scan over the handful of site pairs one region pair
// can emit (no global map churn).
func detect(exec *replay.Execution, concurrent func(a, b *replay.Region) bool, reg *obs.Registry) *Report {
	// Pass 1: screen addresses. Atomic (lock-prefixed) accesses are
	// synchronization, not data: skip them in both passes.
	slotOf := make(map[uint64]int32)
	var screens []addrScreen
	for _, region := range exec.Regions {
		for _, acc := range region.Accesses {
			if acc.Atomic {
				continue
			}
			slot, ok := slotOf[acc.Addr]
			if !ok {
				slot = int32(len(screens))
				screens = append(screens, addrScreen{tid: int32(region.TID)})
				slotOf[acc.Addr] = slot
			}
			s := &screens[slot]
			if s.tid != int32(region.TID) {
				s.multiThread = true
			}
			s.hasWrite = s.hasWrite || acc.IsWrite
			s.refs++
		}
	}

	// Lay out one contiguous range per surviving address in a shared
	// buffer, and list the survivors in ascending address order (the
	// emission order golden outputs depend on).
	var screenedOut uint64
	var addrs []uint64
	totalKept := int32(0)
	for addr, slot := range slotOf {
		s := &screens[slot]
		if s.multiThread && s.hasWrite {
			s.keep = true
			addrs = append(addrs, addr)
		} else {
			screenedOut++
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		s := &screens[slotOf[addr]]
		s.start, s.next = totalKept, totalKept
		totalKept += s.refs
	}

	// Pass 2: copy the survivors' references into their ranges, walking
	// regions in schedule order so each range is sorted by Region.Global.
	refBuf := make([]accessRef, totalKept)
	if totalKept > 0 {
		for _, region := range exec.Regions {
			for _, acc := range region.Accesses {
				if acc.Atomic {
					continue
				}
				s := &screens[slotOf[acc.Addr]]
				if s.keep {
					refBuf[s.next] = accessRef{acc: acc, reg: region}
					s.next++
				}
			}
		}
	}

	races := make(map[SitePair]*Race)
	total := 0
	var pairsExamined, pairsConflicting uint64

	// Scratch reused across addresses: per-region access runs (reads and
	// writes separated into shared backing buffers, preserving access
	// order) and the per-region-pair site dedup list.
	type group struct {
		reg      *replay.Region
		rLo, rHi int // range into readsBuf
		wLo, wHi int // range into writesBuf
	}
	var groups []group
	var readsBuf, writesBuf []replay.Access
	var emitted []SitePair

	// Site strings are pure functions of the PC; the bounded package-level
	// table (sites.go) formats each program's sites once and shares them
	// across detector passes, seeds, and the online observer, keeping the
	// hot pair loops free of fmt work.
	siteOf := sitesFor(exec.Prog).site

	for _, addr := range addrs {
		s := &screens[slotOf[addr]]
		refs := refBuf[s.start:s.next]

		// Run-split by region: within the range, references are in region
		// schedule order, and one region's accesses are contiguous.
		groups = groups[:0]
		readsBuf = readsBuf[:0]
		writesBuf = writesBuf[:0]
		for i := 0; i < len(refs); {
			j := i
			g := group{reg: refs[i].reg, rLo: len(readsBuf), wLo: len(writesBuf)}
			for j < len(refs) && refs[j].reg == g.reg {
				if acc := refs[j].acc; acc.IsWrite {
					writesBuf = append(writesBuf, acc)
				} else {
					readsBuf = append(readsBuf, acc)
				}
				j++
			}
			g.rHi, g.wHi = len(readsBuf), len(writesBuf)
			groups = append(groups, g)
			i = j
		}

		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				ga, gb := &groups[i], &groups[j]
				pairsExamined++
				if ga.reg.TID == gb.reg.TID || !concurrent(ga.reg, gb.reg) {
					continue
				}
				pairsConflicting++
				// Conflicting pairs: write/write, write/read, read/write.
				// One instance per (site pair, region pair, address):
				// emitted holds this pair's site pairs for the dedup scan.
				emitted = emitted[:0]
				emit := func(a, b replay.Access) {
					sites := MakeSitePair(siteOf(a.PC), siteOf(b.PC))
					for _, e := range emitted {
						if e == sites {
							return
						}
					}
					emitted = append(emitted, sites)
					race := races[sites]
					if race == nil {
						race = &Race{Sites: sites}
						races[sites] = race
					}
					race.Instances = append(race.Instances, Instance{
						First:   a,
						Second:  b,
						RegionA: ga.reg,
						RegionB: gb.reg,
						Addr:    addr,
					})
					total++
				}
				for _, w := range writesBuf[ga.wLo:ga.wHi] {
					for _, x := range writesBuf[gb.wLo:gb.wHi] {
						emit(w, x)
					}
					for _, r := range readsBuf[gb.rLo:gb.rHi] {
						emit(w, r)
					}
				}
				for _, r := range readsBuf[ga.rLo:ga.rHi] {
					for _, w := range writesBuf[gb.wLo:gb.wHi] {
						emit(r, w)
					}
				}
			}
		}
	}

	if reg != nil {
		reg.Counter("detect.executions").Inc()
		reg.Counter("detect.addresses_indexed").Add(uint64(len(screens)))
		reg.Counter("detect.addresses_screened_out").Add(screenedOut)
		reg.Counter("detect.region_pairs_examined").Add(pairsExamined)
		reg.Counter("detect.region_pairs_conflicting").Add(pairsConflicting)
		reg.Counter("detect.races").Add(uint64(len(races)))
		reg.Counter("detect.instances").Add(uint64(total))
		reg.Emit("detect.races", uint64(len(races)))
	}
	rep := &Report{TotalInstances: total, index: races}
	for _, race := range races {
		rep.Races = append(rep.Races, race)
	}
	sort.Slice(rep.Races, func(i, j int) bool {
		a, b := rep.Races[i].Sites, rep.Races[j].Sites
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return rep
}

// DetectVC runs the vector-clock variant: regions get clocks from the
// synchronization structure, and conflicting accesses in VC-concurrent
// regions race.
func DetectVC(exec *replay.Execution) (*Report, error) {
	return DetectVCInstrumented(exec, nil)
}

// DetectVCInstrumented is DetectVC with the same detect.* counters as
// DetectInstrumented.
func DetectVCInstrumented(exec *replay.Execution, reg *obs.Registry) (*Report, error) {
	clocks, err := RegionClocks(exec)
	if err != nil {
		return nil, err
	}
	return detect(exec, func(a, b *replay.Region) bool {
		return clocks[a.Global].Concurrent(clocks[b.Global])
	}, reg), nil
}

// RegionClocks computes one vector clock per region (indexed by
// Region.Global) from the synchronization events the replay annotated:
// thread program order, spawn → child start, child end → join, unlock →
// later lock of the same address, and atomics on the same address in
// timestamp order.
func RegionClocks(exec *replay.Execution) ([]vclock.VC, error) {
	nThreads := len(exec.Threads)
	clocks := make([]vclock.VC, len(exec.Regions))
	threadVC := make(map[int]vclock.VC, nThreads)
	releaseVC := make(map[uint64]vclock.VC) // lock addr -> release clock
	atomicVC := make(map[uint64]vclock.VC)  // atomic addr -> last clock
	endVC := make(map[int]vclock.VC)        // tid -> final clock

	// Map child tid -> parent's clock at spawn time. Fill lazily: the
	// schedule guarantees the parent's pre-spawn region is processed
	// before the child's first region, so threadVC[parent] is exactly the
	// pre-spawn clock when the child's SeqStart region comes up. Identify
	// the parent by matching the child's StartTS against spawn sequencers.
	spawnParent := make(map[int]int)
	for _, tl := range exec.Log.Threads {
		for _, s := range tl.Seqs {
			if s.Kind == trace.SeqSyscall && s.Aux == isa.SysSpawn {
				for _, child := range exec.Log.Threads {
					if child.TID != tl.TID && child.StartTS == s.TS {
						spawnParent[child.TID] = tl.TID
					}
				}
			}
		}
	}

	for _, reg := range exec.Regions {
		tid := reg.TID
		vc, started := threadVC[tid]
		if !started {
			vc = vclock.New(nThreads)
		}
		switch reg.StartKind {
		case trace.SeqStart:
			if parent, ok := spawnParent[tid]; ok {
				vc = vc.Join(threadVC[parent])
			}
		case trace.SeqLock:
			if rel, ok := releaseVC[reg.SyncAddr]; ok {
				vc = vc.Join(rel)
			}
		case trace.SeqUnlock:
			// The release carries everything before the unlock.
			releaseVC[reg.SyncAddr] = vc.Clone()
		case trace.SeqAtomic:
			// Acquire-release on the atomic's address.
			if prev, ok := atomicVC[reg.SyncAddr]; ok {
				vc = vc.Join(prev)
			}
		case trace.SeqSyscall:
			if reg.JoinTarget >= 0 {
				child, ok := endVC[reg.JoinTarget]
				if !ok {
					return nil, fmt.Errorf("hb: join of thread %d before its regions were processed", reg.JoinTarget)
				}
				vc = vc.Join(child)
			}
		}
		vc = vc.Tick(tid)
		if reg.StartKind == trace.SeqAtomic {
			atomicVC[reg.SyncAddr] = vc.Clone()
		}
		clocks[reg.Global] = vc.Clone()
		threadVC[tid] = vc
		if reg.EndKind == trace.SeqEnd {
			endVC[tid] = vc.Clone()
		}
	}
	return clocks, nil
}
