// Package hb finds data races in a replayed execution.
//
// The primary detector (Detect) is the paper's algorithm: two memory
// operations race when they execute in overlapping sequencing regions of
// different threads, touch the same address, at least one is a write, and
// neither is a lock-prefixed access. Region overlap is exactly "no
// sequencer orders the two operations", so the detector reports no false
// positives with respect to the recorded execution.
//
// DetectVC is the vector-clock ablation: it tracks the true happens-before
// partial order induced by spawn/join, lock release→acquire, and atomic
// operations, and flags conflicting accesses in concurrent regions. It can
// report races between regions whose timestamp intervals happen to be
// disjoint even though no synchronization separates them — pairs the
// interval test misses (DESIGN.md, ablation A1).
package hb

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// SitePair is the unordered static identity of a race: the two instruction
// sites, ordered lexicographically so the same race keys identically in
// every scenario.
type SitePair struct {
	A, B string
}

// MakeSitePair normalizes the order of two sites.
func MakeSitePair(x, y string) SitePair {
	if y < x {
		x, y = y, x
	}
	return SitePair{A: x, B: y}
}

func (p SitePair) String() string { return p.A + " <-> " + p.B }

// Instance is one dynamic occurrence of a race: a specific pair of
// conflicting accesses in a specific pair of overlapping regions. First is
// the access from the region scheduled earlier; the recorded ("original")
// order is approximated as First-then-Second, and the classifier replays
// both orders regardless.
type Instance struct {
	First, Second    replay.Access
	RegionA, RegionB *replay.Region // regions of First and Second respectively
	Addr             uint64
}

// Race is a unique static data race with all its observed instances.
type Race struct {
	Sites     SitePair
	Instances []Instance
}

// Report is the detector output for one execution.
type Report struct {
	Races          []*Race
	TotalInstances int
}

// Race returns the race with the given site pair, or nil.
func (r *Report) Race(sites SitePair) *Race {
	for _, race := range r.Races {
		if race.Sites == sites {
			return race
		}
	}
	return nil
}

// accessRef ties an access to its region for the per-address index.
type accessRef struct {
	acc replay.Access
	reg *replay.Region
}

// Detect runs the paper's region-overlap detector over exec.
func Detect(exec *replay.Execution) *Report {
	return DetectInstrumented(exec, nil)
}

// DetectInstrumented is Detect with stage metrics: reg receives the
// detect.* counters (addresses indexed, region pairs examined vs.
// conflicting, races and instances found). Nil reg is free.
func DetectInstrumented(exec *replay.Execution, reg *obs.Registry) *Report {
	return detect(exec, func(a, b *replay.Region) bool { return a.Overlaps(b) }, reg)
}

// detect is the shared conflict search, parameterized by the concurrency
// test on region pairs.
func detect(exec *replay.Execution, concurrent func(a, b *replay.Region) bool, reg *obs.Registry) *Report {
	// Index data accesses by address. Atomic (lock-prefixed) accesses are
	// synchronization, not data: skip them here.
	byAddr := make(map[uint64][]accessRef)
	for _, region := range exec.Regions {
		for _, acc := range region.Accesses {
			if acc.Atomic {
				continue
			}
			byAddr[acc.Addr] = append(byAddr[acc.Addr], accessRef{acc: acc, reg: region})
		}
	}

	races := make(map[SitePair]*Race)
	total := 0
	var pairsExamined, pairsConflicting uint64
	// seen dedupes instances: one per (site pair, region pair, address).
	type instKey struct {
		sites  SitePair
		ga, gb int
		addr   uint64
	}
	seen := make(map[instKey]bool)

	addrs := make([]uint64, 0, len(byAddr))
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, addr := range addrs {
		refs := byAddr[addr]
		// Group by region, preserving schedule order.
		type group struct {
			reg    *replay.Region
			reads  []replay.Access
			writes []replay.Access
		}
		var groups []*group
		idx := make(map[int]*group)
		for _, ref := range refs {
			g := idx[ref.reg.Global]
			if g == nil {
				g = &group{reg: ref.reg}
				idx[ref.reg.Global] = g
				groups = append(groups, g)
			}
			if ref.acc.IsWrite {
				g.writes = append(g.writes, ref.acc)
			} else {
				g.reads = append(g.reads, ref.acc)
			}
		}
		sort.Slice(groups, func(i, j int) bool { return groups[i].reg.Global < groups[j].reg.Global })

		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				ga, gb := groups[i], groups[j]
				pairsExamined++
				if ga.reg.TID == gb.reg.TID || !concurrent(ga.reg, gb.reg) {
					continue
				}
				pairsConflicting++
				// Conflicting pairs: write/write, write/read, read/write.
				emit := func(a, b replay.Access) {
					sites := MakeSitePair(a.Site(exec.Prog), b.Site(exec.Prog))
					k := instKey{sites: sites, ga: ga.reg.Global, gb: gb.reg.Global, addr: addr}
					if seen[k] {
						return
					}
					seen[k] = true
					race := races[sites]
					if race == nil {
						race = &Race{Sites: sites}
						races[sites] = race
					}
					race.Instances = append(race.Instances, Instance{
						First:   a,
						Second:  b,
						RegionA: ga.reg,
						RegionB: gb.reg,
						Addr:    addr,
					})
					total++
				}
				for _, w := range ga.writes {
					for _, x := range gb.writes {
						emit(w, x)
					}
					for _, r := range gb.reads {
						emit(w, r)
					}
				}
				for _, r := range ga.reads {
					for _, w := range gb.writes {
						emit(r, w)
					}
				}
			}
		}
	}

	if reg != nil {
		reg.Counter("detect.executions").Inc()
		reg.Counter("detect.addresses_indexed").Add(uint64(len(byAddr)))
		reg.Counter("detect.region_pairs_examined").Add(pairsExamined)
		reg.Counter("detect.region_pairs_conflicting").Add(pairsConflicting)
		reg.Counter("detect.races").Add(uint64(len(races)))
		reg.Counter("detect.instances").Add(uint64(total))
	}
	rep := &Report{TotalInstances: total}
	for _, race := range races {
		rep.Races = append(rep.Races, race)
	}
	sort.Slice(rep.Races, func(i, j int) bool {
		a, b := rep.Races[i].Sites, rep.Races[j].Sites
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return rep
}

// DetectVC runs the vector-clock variant: regions get clocks from the
// synchronization structure, and conflicting accesses in VC-concurrent
// regions race.
func DetectVC(exec *replay.Execution) (*Report, error) {
	return DetectVCInstrumented(exec, nil)
}

// DetectVCInstrumented is DetectVC with the same detect.* counters as
// DetectInstrumented.
func DetectVCInstrumented(exec *replay.Execution, reg *obs.Registry) (*Report, error) {
	clocks, err := RegionClocks(exec)
	if err != nil {
		return nil, err
	}
	return detect(exec, func(a, b *replay.Region) bool {
		return clocks[a.Global].Concurrent(clocks[b.Global])
	}, reg), nil
}

// RegionClocks computes one vector clock per region (indexed by
// Region.Global) from the synchronization events the replay annotated:
// thread program order, spawn → child start, child end → join, unlock →
// later lock of the same address, and atomics on the same address in
// timestamp order.
func RegionClocks(exec *replay.Execution) ([]vclock.VC, error) {
	nThreads := len(exec.Threads)
	clocks := make([]vclock.VC, len(exec.Regions))
	threadVC := make(map[int]vclock.VC, nThreads)
	releaseVC := make(map[uint64]vclock.VC) // lock addr -> release clock
	atomicVC := make(map[uint64]vclock.VC)  // atomic addr -> last clock
	endVC := make(map[int]vclock.VC)        // tid -> final clock

	// Map child tid -> parent's clock at spawn time. Fill lazily: the
	// schedule guarantees the parent's pre-spawn region is processed
	// before the child's first region, so threadVC[parent] is exactly the
	// pre-spawn clock when the child's SeqStart region comes up. Identify
	// the parent by matching the child's StartTS against spawn sequencers.
	spawnParent := make(map[int]int)
	for _, tl := range exec.Log.Threads {
		for _, s := range tl.Seqs {
			if s.Kind == trace.SeqSyscall && s.Aux == isa.SysSpawn {
				for _, child := range exec.Log.Threads {
					if child.TID != tl.TID && child.StartTS == s.TS {
						spawnParent[child.TID] = tl.TID
					}
				}
			}
		}
	}

	for _, reg := range exec.Regions {
		tid := reg.TID
		vc, started := threadVC[tid]
		if !started {
			vc = vclock.New(nThreads)
		}
		switch reg.StartKind {
		case trace.SeqStart:
			if parent, ok := spawnParent[tid]; ok {
				vc = vc.Join(threadVC[parent])
			}
		case trace.SeqLock:
			if rel, ok := releaseVC[reg.SyncAddr]; ok {
				vc = vc.Join(rel)
			}
		case trace.SeqUnlock:
			// The release carries everything before the unlock.
			releaseVC[reg.SyncAddr] = vc.Clone()
		case trace.SeqAtomic:
			// Acquire-release on the atomic's address.
			if prev, ok := atomicVC[reg.SyncAddr]; ok {
				vc = vc.Join(prev)
			}
		case trace.SeqSyscall:
			if reg.JoinTarget >= 0 {
				child, ok := endVC[reg.JoinTarget]
				if !ok {
					return nil, fmt.Errorf("hb: join of thread %d before its regions were processed", reg.JoinTarget)
				}
				vc = vc.Join(child)
			}
		}
		vc = vc.Tick(tid)
		if reg.StartKind == trace.SeqAtomic {
			atomicVC[reg.SyncAddr] = vc.Clone()
		}
		clocks[reg.Global] = vc.Clone()
		threadVC[tid] = vc
		if reg.EndKind == trace.SeqEnd {
			endVC[tid] = vc.Clone()
		}
	}
	return clocks, nil
}
