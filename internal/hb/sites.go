package hb

import (
	"sync"

	"repro/internal/isa"
)

// maxSitePrograms bounds the package-level site-string cache. A long-lived
// process (racer serve/profile, the suite runner) analyzes many executions
// but only a handful of distinct programs at a time; 32 comfortably covers
// the whole workload suite plus fuzz/chaos churn while keeping the cache
// from growing without limit across a long lifetime.
const maxSitePrograms = 32

// siteTable holds the formatted "prog:label+off" site string for every
// code index of one program. Site strings are pure functions of the PC,
// so the table is immutable once built and safe to share across detector
// passes and goroutines.
type siteTable struct {
	prog  *isa.Program
	sites []string
}

// site returns the site string for pc, falling back to direct formatting
// for out-of-range PCs (which SiteOf renders as a raw index).
func (t *siteTable) site(pc int) string {
	if pc >= 0 && pc < len(t.sites) {
		return t.sites[pc]
	}
	return t.prog.SiteOf(pc)
}

// siteCache is the bounded per-program cache, keyed by program identity.
// Entries are evicted FIFO once maxSitePrograms distinct programs have
// been seen, so repeated analysis of fresh programs (fuzzing, chaos
// corpora, serve/profile lifetimes) cannot leak memory, while the common
// case — many seeds or repeated passes over the same program — reuses one
// eagerly-built table.
var siteCache = struct {
	sync.Mutex
	m     map[*isa.Program]*siteTable
	order []*isa.Program // insertion order, for FIFO eviction
}{m: make(map[*isa.Program]*siteTable)}

// sitesFor returns the (possibly cached) site table for prog.
func sitesFor(prog *isa.Program) *siteTable {
	siteCache.Lock()
	defer siteCache.Unlock()
	if t, ok := siteCache.m[prog]; ok {
		return t
	}
	t := &siteTable{prog: prog, sites: make([]string, len(prog.Code))}
	for pc := range t.sites {
		t.sites[pc] = prog.SiteOf(pc)
	}
	for len(siteCache.order) >= maxSitePrograms {
		evict := siteCache.order[0]
		siteCache.order = siteCache.order[1:]
		delete(siteCache.m, evict)
	}
	siteCache.m[prog] = t
	siteCache.order = append(siteCache.order, prog)
	return t
}

// siteCacheSize reports the number of cached programs (test hook).
func siteCacheSize() int {
	siteCache.Lock()
	defer siteCache.Unlock()
	return len(siteCache.m)
}

// resetSiteCache empties the cache (test hook).
func resetSiteCache() {
	siteCache.Lock()
	defer siteCache.Unlock()
	siteCache.m = make(map[*isa.Program]*siteTable)
	siteCache.order = nil
}
