package hb_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/asm"
	"repro/internal/hb"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/progen"
	"repro/internal/record"
	"repro/internal/replay"
)

// offlineSitePairs returns the offline detector's race identities for one
// recorded execution, sorted for set comparison.
func offlineSitePairs(t *testing.T, rep *hb.Report) []hb.SitePair {
	t.Helper()
	pairs := make([]hb.SitePair, 0, len(rep.Races))
	for _, race := range rep.Races {
		pairs = append(pairs, race.Sites)
	}
	sortPairs(pairs)
	return pairs
}

func sortPairs(pairs []hb.SitePair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
}

// recordBoth records src once with the online detector attached and runs
// the offline detector over the same log.
func recordBoth(t *testing.T, src string, seed int64) (*hb.OnlineReport, *hb.Report) {
	t.Helper()
	prog, err := asm.Assemble("online", src)
	if err != nil {
		t.Fatal(err)
	}
	log, _, rep, err := record.RunOnline(prog, machine.Config{Seed: seed}, record.OnlineConfig{Detect: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("Detect:true returned a nil online report")
	}
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep, hb.Detect(exec)
}

// assertAgreement checks the online verdict — and the exact racy
// site-pair set — against the offline detector's report.
func assertAgreement(t *testing.T, label string, online *hb.OnlineReport, offline *hb.Report) {
	t.Helper()
	if online.RaceFree != (len(offline.Races) == 0) {
		t.Fatalf("%s: online race_free=%v but offline found %d races",
			label, online.RaceFree, len(offline.Races))
	}
	got := append([]hb.SitePair(nil), online.Races...)
	sortPairs(got)
	want := offlineSitePairs(t, offline)
	if len(got) != len(want) {
		t.Fatalf("%s: online saw %d racy site pairs, offline %d\nonline:  %v\noffline: %v",
			label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: site pair %d differs: online %v offline %v", label, i, got[i], want[i])
		}
	}
}

const racyCounterSrc = `
.entry main
.word g 0
worker:
  ldi r2, g
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  sys exit
main:
  ldi r1, worker
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

const lockedCounterSrc = `
.entry main
.word g 0
.word mu 0
worker:
  ldi r2, mu
  lock [r2+0]
  ldi r4, g
  ld r3, [r4+0]
  addi r3, r3, 1
  st [r4+0], r3
  unlock [r2+0]
  sys exit
main:
  ldi r1, worker
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

const joinOrderedSrc = `
.entry main
.word g 0
worker:
  ldi r2, g
  ldi r3, 7
  st [r2+0], r3
  sys exit
main:
  ldi r1, worker
  sys spawn
  sys join
  ldi r2, g
  ld r3, [r2+0]
  halt
`

// TestOnlineAgreesWithOfflineHandwritten pins the verdict and the racy
// site-pair set on the canonical shapes: a racy counter, the same
// counter under a lock, and a spawn/join-ordered handoff.
func TestOnlineAgreesWithOfflineHandwritten(t *testing.T) {
	cases := []struct {
		name string
		src  string
		racy bool
	}{
		{"racy-counter", racyCounterSrc, true},
		{"locked-counter", lockedCounterSrc, false},
		{"join-ordered", joinOrderedSrc, false},
	}
	for _, tc := range cases {
		raced := false
		for seed := int64(1); seed <= 20; seed++ {
			online, offline := recordBoth(t, tc.src, seed)
			assertAgreement(t, tc.name, online, offline)
			raced = raced || !online.RaceFree
		}
		if raced != tc.racy {
			// Non-vacuousness: the racy counter must race under some
			// seed, and the synchronized shapes under none.
			t.Fatalf("%s: raced=%v across 20 seeds, want %v", tc.name, raced, tc.racy)
		}
	}
}

// TestOnlineAgreesWithOfflineGenerated sweeps progen-generated programs —
// every combination of workers/globals/locks/atomics the fuzz harness
// uses — and requires verdict and site-pair agreement on each.
func TestOnlineAgreesWithOfflineGenerated(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	raced, clean := 0, 0
	for trial := 0; trial < 64; trial++ {
		cfg := progen.BitsConfig(uint8(trial*4+1), r)
		src := progen.Generate(r, cfg)
		prog, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seed := int64(trial + 1)
		log, _, rep, err := record.RunOnline(prog, machine.Config{Seed: seed}, record.OnlineConfig{Detect: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exec, err := replay.Run(log, replay.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		offline := hb.Detect(exec)
		assertAgreement(t, src, rep, offline)
		if rep.RaceFree {
			clean++
		} else {
			raced++
		}
	}
	if raced == 0 || clean == 0 {
		t.Fatalf("sweep is vacuous: %d raced, %d race-free", raced, clean)
	}
}

// TestOnlineStopOnFirstRace checks the early-exit policy: the truncated
// log is valid, the offline detector confirms a race on it, and the
// machine stopped before retiring the full run.
func TestOnlineStopOnFirstRace(t *testing.T) {
	prog, err := asm.Assemble("stop", racyCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	var full uint64
	for seed := int64(1); seed <= 50; seed++ {
		_, res, rep, err := record.RunOnline(prog, machine.Config{Seed: seed}, record.OnlineConfig{Detect: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.RaceFree {
			continue
		}
		full = res.TotalSteps
		slog, sres, srep, err := record.RunOnline(prog, machine.Config{Seed: seed},
			record.OnlineConfig{Detect: true, StopOnFirstRace: true})
		if err != nil {
			t.Fatalf("seed %d: stop-on-race recording failed validation: %v", seed, err)
		}
		if srep.RaceFree {
			t.Fatalf("seed %d: stop-on-race run missed the race the full run saw", seed)
		}
		if !sres.Stopped || !srep.Stopped {
			t.Fatalf("seed %d: stop requested but machine did not report stopping (res=%v rep=%v)",
				seed, sres.Stopped, srep.Stopped)
		}
		if sres.TotalSteps > full {
			t.Fatalf("seed %d: stopped run retired %d > full run %d", seed, sres.TotalSteps, full)
		}
		if slog.Online == nil || slog.Online.RaceFree {
			t.Fatalf("seed %d: truncated log should carry a raced online annotation", seed)
		}
		exec, err := replay.Run(slog, replay.Options{})
		if err != nil {
			t.Fatalf("seed %d: truncated log failed to replay: %v", seed, err)
		}
		if len(hb.Detect(exec).Races) == 0 {
			t.Fatalf("seed %d: offline pass found no race in the stop-on-race log", seed)
		}
		return
	}
	t.Fatal("no seed raced; stop-on-race never exercised")
}

// TestOnlineMetricsPublished pins the detect.online.* counter names the
// docs and dashboards rely on.
func TestOnlineMetricsPublished(t *testing.T) {
	prog, err := asm.Assemble("metrics", racyCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	_, _, rep, err := record.RunOnlineInstrumented(prog, machine.Config{Seed: 1}, record.OnlineConfig{Detect: true}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Counter("detect.online.executions").Value() != 1 {
		t.Error("detect.online.executions not incremented")
	}
	if rep.RaceFree {
		t.Skip("seed 1 did not race; counter pinning below assumes a race")
	}
	if reg.Counter("detect.online.races").Value() == 0 {
		t.Error("detect.online.races not incremented on a racy run")
	}
	if reg.Counter("detect.online.pairs_checked").Value() == 0 {
		t.Error("detect.online.pairs_checked stayed zero")
	}
	if reg.Counter("detect.online.race_free").Value() != 0 {
		t.Error("detect.online.race_free incremented on a racy run")
	}
}

// TestSiteCacheBounded drives more distinct programs through the
// detector than the cache admits and checks it never exceeds its cap —
// the leak the bounded table replaced — while same-program reuse stays
// cached.
func TestSiteCacheBounded(t *testing.T) {
	hb.ResetSiteCacheForTest()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3*hb.MaxSitePrograms(); i++ {
		src := progen.Generate(r, progen.BitsConfig(uint8(i), r))
		prog, err := asm.Assemble("cache", src)
		if err != nil {
			t.Fatal(err)
		}
		log, _, err := record.Run(prog, machine.Config{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		exec, err := replay.Run(log, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hb.Detect(exec)
		if got := hb.SiteCacheSizeForTest(); got > hb.MaxSitePrograms() {
			t.Fatalf("after %d programs the site cache holds %d > cap %d", i+1, got, hb.MaxSitePrograms())
		}
	}
	if got := hb.SiteCacheSizeForTest(); got != hb.MaxSitePrograms() {
		t.Fatalf("cache should sit at its cap after churn, holds %d", got)
	}
	// Reuse: analyzing the same program again must not grow the cache.
	before := hb.SiteCacheSizeForTest()
	prog, err := asm.Assemble("cache-reuse", racyCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		log, _, err := record.Run(prog, machine.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		exec, err := replay.Run(log, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hb.Detect(exec)
	}
	if got := hb.SiteCacheSizeForTest(); got != before {
		t.Fatalf("same-program reuse changed the cache size: %d -> %d", before, got)
	}
	hb.ResetSiteCacheForTest()
}
