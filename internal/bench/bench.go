// Package bench is the machine-readable benchmark harness behind
// `paperbench -bench-out` and `racer suite -bench-out`: a minimal
// go-test-style measurement loop (ns/op, bytes/op, allocs/op, custom
// metrics like the memo hit rate) that serializes to a small, versioned
// JSON schema CI can validate and diff tooling can consume.
//
// The harness exists next to the ordinary `go test -bench` benchmarks,
// not instead of them: testing.B stays the precision instrument, this
// package is the export format — one command, one JSON file, no output
// parsing.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"
)

// SchemaID identifies the JSON layout; bump on incompatible change.
const SchemaID = "racereplay-bench/v1"

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	// Samples holds the per-round ns/op measurements when the runner
	// took more than one round; NsPerOp is then their median, which is
	// what regression comparisons use.
	Samples []float64 `json:"samples,omitempty"`
	// Metrics carries benchmark-specific values (e.g. "hitrate" for the
	// memoized classification benchmarks), mirroring b.ReportMetric.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Median returns the benchmark's representative ns/op: the median of
// the recorded samples, or NsPerOp when only one round was taken.
func (r Result) Median() float64 {
	if len(r.Samples) == 0 {
		return r.NsPerOp
	}
	s := append([]float64(nil), r.Samples...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 0 {
		return (s[mid-1] + s[mid]) / 2
	}
	return s[mid]
}

// File is the versioned envelope written to disk.
type File struct {
	Schema     string   `json:"schema"`
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Benchmarks []Result `json:"benchmarks"`
}

// NewFile returns an empty envelope stamped with the running platform.
func NewFile() *File {
	return &File{
		Schema: SchemaID,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
}

// Runner measures benchmarks: each Run iterates its function until the
// accumulated wall time reaches BenchTime (testing.B's -benchtime), with
// allocation counts taken from runtime.MemStats deltas.
type Runner struct {
	// BenchTime is the per-benchmark measurement budget; values <= 0
	// mean one iteration (the CI smoke configuration, -benchtime=1x).
	BenchTime time.Duration
	// Rounds repeats the measurement after the iteration count settles
	// and records per-round samples; NsPerOp becomes their median, which
	// damps scheduler noise for regression gating. Values <= 1 keep the
	// single-round behavior.
	Rounds int
}

// Run measures f and appends the result to file. f receives the
// iteration count and must perform exactly that many operations.
// The returned pointer addresses the appended Result, so callers can
// attach custom metrics after measurement.
func (r Runner) Run(file *File, name string, f func(n int)) *Result {
	f(1) // warmup: page in code and caches, trigger lazy init
	n := 1
	var elapsed time.Duration
	var mallocs, bytes uint64
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		f(n)
		elapsed = time.Since(start)
		runtime.ReadMemStats(&after)
		mallocs = after.Mallocs - before.Mallocs
		bytes = after.TotalAlloc - before.TotalAlloc
		if elapsed >= r.BenchTime || n >= 1<<20 {
			break
		}
		// Grow toward the budget like testing.B: predict from the observed
		// rate with 20% headroom, but at least +1 and at most 10x.
		next := n + 1
		if elapsed > 0 {
			predicted := int(float64(n) * 1.2 * float64(r.BenchTime) / float64(elapsed))
			if predicted > next {
				next = predicted
			}
		}
		if next > 10*n {
			next = 10 * n
		}
		n = next
	}
	res := Result{
		Name:        name,
		N:           n,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		BytesPerOp:  bytes / uint64(n),
		AllocsPerOp: mallocs / uint64(n),
	}
	if r.Rounds > 1 {
		// The iteration count is settled; re-run it Rounds-1 more times
		// and let the median speak for the benchmark.
		res.Samples = append(res.Samples, res.NsPerOp)
		for round := 1; round < r.Rounds; round++ {
			runtime.GC()
			start := time.Now()
			f(n)
			res.Samples = append(res.Samples, float64(time.Since(start).Nanoseconds())/float64(n))
		}
		res.NsPerOp = res.Median()
	}
	file.Benchmarks = append(file.Benchmarks, res)
	return &file.Benchmarks[len(file.Benchmarks)-1]
}

// Regression is one benchmark that slowed past the comparison tolerance.
type Regression struct {
	Name          string
	Base, Current float64 // median ns/op
	Ratio         float64 // Current / Base
}

// Comparison is the outcome of diffing a current bench file against a
// baseline: the regressions past tolerance, how many benchmarks were
// actually compared, and which current benchmarks had no usable baseline.
type Comparison struct {
	Regressions []Regression
	Compared    int
	// New lists current benchmarks with no usable baseline median —
	// absent from the baseline file, or present with a zero/NaN/Inf
	// median. They are reported, not failed: a freshly added benchmark
	// must read as "new entry" against an older BENCH_*.json, never as a
	// division-by-zero ratio or a spurious regression.
	New []string
}

// Compare diffs cur against base by median ns/op and returns every
// benchmark whose slowdown exceeds tolerance (0.25 = fail above +25%),
// the number of benchmarks present and comparable in both files, and the
// current benchmarks that are new (no usable baseline). Benchmarks that
// exist only in the baseline are skipped — renames must not fail the
// gate — but an empty comparable intersection is an error, since it
// means the gate compared nothing.
func Compare(base, cur *File, tolerance float64) (*Comparison, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := cur.Validate(); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	baseline := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	usable := func(m float64) bool {
		return m > 0 && !math.IsNaN(m) && !math.IsInf(m, 0)
	}
	cmp := &Comparison{}
	for _, c := range cur.Benchmarks {
		b, ok := baseline[c.Name]
		bm := 0.0
		if ok {
			bm = b.Median()
		}
		if !ok || !usable(bm) {
			cmp.New = append(cmp.New, c.Name)
			continue
		}
		cmp.Compared++
		if cm := c.Median(); cm > bm*(1+tolerance) {
			cmp.Regressions = append(cmp.Regressions, Regression{
				Name: c.Name, Base: bm, Current: cm, Ratio: cm / bm,
			})
		}
	}
	if cmp.Compared == 0 {
		return nil, fmt.Errorf("no comparable benchmarks between baseline and current file (%d new)", len(cmp.New))
	}
	return cmp, nil
}

// Validate checks the envelope against the schema CI enforces: right
// schema id, a stamped platform, and at least one benchmark with sane,
// finite numbers under a unique name.
func (f *File) Validate() error {
	if f.Schema != SchemaID {
		return fmt.Errorf("schema %q, want %q", f.Schema, SchemaID)
	}
	if f.GoOS == "" || f.GoArch == "" {
		return fmt.Errorf("missing goos/goarch platform stamp")
	}
	if f.CPUs < 1 {
		return fmt.Errorf("cpus = %d, want >= 1", f.CPUs)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks recorded")
	}
	seen := make(map[string]bool, len(f.Benchmarks))
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark %d has no name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.N < 1 {
			return fmt.Errorf("%s: n = %d, want >= 1", b.Name, b.N)
		}
		if b.NsPerOp <= 0 || math.IsNaN(b.NsPerOp) || math.IsInf(b.NsPerOp, 0) {
			return fmt.Errorf("%s: ns_per_op = %v, want finite > 0", b.Name, b.NsPerOp)
		}
		for j, s := range b.Samples {
			if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return fmt.Errorf("%s: sample %d = %v, want finite > 0", b.Name, j, s)
			}
		}
		for k, v := range b.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%s: metric %q = %v, want finite", b.Name, k, v)
			}
		}
	}
	return nil
}

// WriteFile validates the envelope and writes it as indented JSON.
func (f *File) WriteFile(path string) error {
	if err := f.Validate(); err != nil {
		return fmt.Errorf("bench: refusing to write invalid %s: %w", path, err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a benchmark file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &f, nil
}
