package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunnerMeasures: the harness must honor the budget loop, count at
// least the iterations it asked for, and produce sane per-op numbers.
func TestRunnerMeasures(t *testing.T) {
	r := Runner{BenchTime: 5 * time.Millisecond}
	file := NewFile()
	total := 0
	res := r.Run(file, "spin", func(n int) {
		total += n
		for i := 0; i < n; i++ {
			time.Sleep(50 * time.Microsecond)
		}
	})
	if res.Name != "spin" || res.N < 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.NsPerOp < float64(50*time.Microsecond) {
		t.Errorf("ns/op = %v, want >= sleep duration", res.NsPerOp)
	}
	if total < res.N {
		t.Errorf("f ran %d iterations, result claims %d", total, res.N)
	}
	if err := file.Validate(); err != nil {
		t.Errorf("measured file invalid: %v", err)
	}
}

// TestValidateRejects walks the schema checks CI relies on.
func TestValidateRejects(t *testing.T) {
	good := func() *File {
		f := NewFile()
		f.Benchmarks = []Result{{Name: "x", N: 1, NsPerOp: 10}}
		return f
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good file rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*File)
		want string
	}{
		{"wrong schema", func(f *File) { f.Schema = "other/v9" }, "schema"},
		{"no platform", func(f *File) { f.GoOS = "" }, "goos"},
		{"no cpus", func(f *File) { f.CPUs = 0 }, "cpus"},
		{"empty", func(f *File) { f.Benchmarks = nil }, "no benchmarks"},
		{"unnamed", func(f *File) { f.Benchmarks[0].Name = "" }, "no name"},
		{"dup name", func(f *File) { f.Benchmarks = append(f.Benchmarks, f.Benchmarks[0]) }, "duplicate"},
		{"zero n", func(f *File) { f.Benchmarks[0].N = 0 }, "n ="},
		{"zero ns", func(f *File) { f.Benchmarks[0].NsPerOp = 0 }, "ns_per_op"},
		{"nan metric", func(f *File) { f.Benchmarks[0].Metrics = map[string]float64{"hitrate": math.NaN()} }, "metric"},
		{"bad sample", func(f *File) { f.Benchmarks[0].Samples = []float64{10, -1} }, "sample"},
	}
	for _, c := range cases {
		f := good()
		c.mut(f)
		err := f.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestRunnerRounds: multi-round runs record one sample per round and
// report the median, so one noisy round cannot move the headline number.
func TestRunnerRounds(t *testing.T) {
	r := Runner{BenchTime: time.Millisecond, Rounds: 5}
	file := NewFile()
	res := r.Run(file, "spin", func(n int) {
		for i := 0; i < n; i++ {
			time.Sleep(50 * time.Microsecond)
		}
	})
	if len(res.Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(res.Samples))
	}
	if res.NsPerOp != res.Median() {
		t.Errorf("NsPerOp %v != median %v", res.NsPerOp, res.Median())
	}
	if err := file.Validate(); err != nil {
		t.Errorf("multi-round file invalid: %v", err)
	}
}

func TestMedian(t *testing.T) {
	if got := (Result{NsPerOp: 7}).Median(); got != 7 {
		t.Errorf("sampleless median = %v, want NsPerOp", got)
	}
	if got := (Result{Samples: []float64{9, 1, 5}}).Median(); got != 5 {
		t.Errorf("odd median = %v, want 5", got)
	}
	if got := (Result{Samples: []float64{1, 9, 3, 5}}).Median(); got != 4 {
		t.Errorf("even median = %v, want 4", got)
	}
}

// TestCompare: the regression gate trips only past the tolerance, uses
// medians, tolerates renames, and refuses an empty intersection.
func TestCompare(t *testing.T) {
	mk := func(results ...Result) *File {
		f := NewFile()
		f.Benchmarks = results
		return f
	}
	base := mk(
		Result{Name: "a", N: 1, NsPerOp: 100, Samples: []float64{90, 100, 110}},
		Result{Name: "b", N: 1, NsPerOp: 100},
		Result{Name: "gone", N: 1, NsPerOp: 100},
	)
	cur := mk(
		// Median 120: within +25% of baseline median 100 even though one
		// sample spiked to 500.
		Result{Name: "a", N: 1, NsPerOp: 120, Samples: []float64{110, 120, 500}},
		Result{Name: "b", N: 1, NsPerOp: 130},
		Result{Name: "new", N: 1, NsPerOp: 100},
	)
	cmp, err := Compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Compared != 2 {
		t.Errorf("compared = %d, want 2 (renames skipped)", cmp.Compared)
	}
	if len(cmp.Regressions) != 1 || cmp.Regressions[0].Name != "b" {
		t.Fatalf("regressions = %+v, want just b", cmp.Regressions)
	}
	if r := cmp.Regressions[0]; r.Base != 100 || r.Current != 130 || r.Ratio != 1.3 {
		t.Errorf("regression record = %+v", r)
	}
	if len(cmp.New) != 1 || cmp.New[0] != "new" {
		t.Errorf("new entries = %v, want [new]", cmp.New)
	}

	if cmp, err := Compare(base, cur, 0.5); err != nil {
		t.Fatal(err)
	} else if len(cmp.Regressions) != 0 {
		t.Errorf("tolerance 0.5 still flagged %+v", cmp.Regressions)
	}

	if _, err := Compare(base, mk(Result{Name: "other", N: 1, NsPerOp: 1}), 0.25); err == nil {
		t.Error("empty intersection accepted")
	}
	if _, err := Compare(&File{}, cur, 0.25); err == nil {
		t.Error("invalid baseline accepted")
	}
}

// TestCompareNewEntryNoDivideByZero: a benchmark whose baseline median is
// zero or non-finite must land in New — never produce a NaN/Inf ratio or
// a spurious regression. Files like that cannot pass Validate, so this
// exercises the defensive guard through a baseline constructed after
// validation would have run.
func TestCompareNewEntryNoDivideByZero(t *testing.T) {
	mk := func(results ...Result) *File {
		f := NewFile()
		f.Benchmarks = results
		return f
	}
	// "zeroed" passes validation via NsPerOp but its samples drive the
	// median: Median prefers Samples when present. Samples must each be
	// finite and positive to validate, so impose the zero through the
	// only validated-reachable route — a baseline missing the name
	// entirely — and the guard route via a handcrafted Result below.
	base := mk(
		Result{Name: "a", N: 1, NsPerOp: 100},
	)
	cur := mk(
		Result{Name: "a", N: 1, NsPerOp: 100},
		Result{Name: "fresh", N: 1, NsPerOp: 42},
	)
	cmp, err := Compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 0 {
		t.Fatalf("fresh benchmark flagged as regression: %+v", cmp.Regressions)
	}
	if len(cmp.New) != 1 || cmp.New[0] != "fresh" {
		t.Fatalf("new entries = %v, want [fresh]", cmp.New)
	}
	for _, r := range cmp.Regressions {
		if math.IsNaN(r.Ratio) || math.IsInf(r.Ratio, 0) {
			t.Fatalf("non-finite ratio leaked: %+v", r)
		}
	}
	// All-new current file: the gate compared nothing and must say so.
	if _, err := Compare(base, mk(Result{Name: "fresh", N: 1, NsPerOp: 42}), 0.25); err == nil {
		t.Error("all-new current file should be an empty-intersection error")
	}
}

// TestWriteReadRoundTrip: WriteFile refuses invalid envelopes and
// ReadFile re-validates what it loads.
func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	f := NewFile()
	f.Benchmarks = []Result{{Name: "a", N: 3, NsPerOp: 1.5, Metrics: map[string]float64{"hitrate": 0.75}}}
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].Metrics["hitrate"] != 0.75 {
		t.Errorf("round trip lost metrics: %+v", got.Benchmarks[0])
	}

	bad := NewFile()
	if err := bad.WriteFile(path); err == nil {
		t.Error("WriteFile accepted an empty envelope")
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted malformed JSON")
	}
}
