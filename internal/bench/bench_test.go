package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunnerMeasures: the harness must honor the budget loop, count at
// least the iterations it asked for, and produce sane per-op numbers.
func TestRunnerMeasures(t *testing.T) {
	r := Runner{BenchTime: 5 * time.Millisecond}
	file := NewFile()
	total := 0
	res := r.Run(file, "spin", func(n int) {
		total += n
		for i := 0; i < n; i++ {
			time.Sleep(50 * time.Microsecond)
		}
	})
	if res.Name != "spin" || res.N < 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.NsPerOp < float64(50*time.Microsecond) {
		t.Errorf("ns/op = %v, want >= sleep duration", res.NsPerOp)
	}
	if total < res.N {
		t.Errorf("f ran %d iterations, result claims %d", total, res.N)
	}
	if err := file.Validate(); err != nil {
		t.Errorf("measured file invalid: %v", err)
	}
}

// TestValidateRejects walks the schema checks CI relies on.
func TestValidateRejects(t *testing.T) {
	good := func() *File {
		f := NewFile()
		f.Benchmarks = []Result{{Name: "x", N: 1, NsPerOp: 10}}
		return f
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good file rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*File)
		want string
	}{
		{"wrong schema", func(f *File) { f.Schema = "other/v9" }, "schema"},
		{"no platform", func(f *File) { f.GoOS = "" }, "goos"},
		{"no cpus", func(f *File) { f.CPUs = 0 }, "cpus"},
		{"empty", func(f *File) { f.Benchmarks = nil }, "no benchmarks"},
		{"unnamed", func(f *File) { f.Benchmarks[0].Name = "" }, "no name"},
		{"dup name", func(f *File) { f.Benchmarks = append(f.Benchmarks, f.Benchmarks[0]) }, "duplicate"},
		{"zero n", func(f *File) { f.Benchmarks[0].N = 0 }, "n ="},
		{"zero ns", func(f *File) { f.Benchmarks[0].NsPerOp = 0 }, "ns_per_op"},
		{"nan metric", func(f *File) { f.Benchmarks[0].Metrics = map[string]float64{"hitrate": math.NaN()} }, "metric"},
	}
	for _, c := range cases {
		f := good()
		c.mut(f)
		err := f.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestWriteReadRoundTrip: WriteFile refuses invalid envelopes and
// ReadFile re-validates what it loads.
func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	f := NewFile()
	f.Benchmarks = []Result{{Name: "a", N: 3, NsPerOp: 1.5, Metrics: map[string]float64{"hitrate": 0.75}}}
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].Metrics["hitrate"] != 0.75 {
		t.Errorf("round trip lost metrics: %+v", got.Benchmarks[0])
	}

	bad := NewFile()
	if err := bad.WriteFile(path); err == nil {
		t.Error("WriteFile accepted an empty envelope")
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted malformed JSON")
	}
}
