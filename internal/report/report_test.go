package report

import (
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/hb"
	"repro/internal/workloads"
)

// suiteOnce caches the full suite analysis across the package's tests.
var suiteCache *workloads.SuiteRun

func suite(t *testing.T) *workloads.SuiteRun {
	t.Helper()
	if suiteCache == nil {
		run, err := workloads.RunSuite(nil)
		if err != nil {
			t.Fatal(err)
		}
		suiteCache = run
	}
	return suiteCache
}

func TestTable1MatchesPaper(t *testing.T) {
	run := suite(t)
	t1 := BuildTable1(run.Merged, SuiteTruth)
	if t1.Total() != 68 {
		t.Errorf("total races = %d, want 68", t1.Total())
	}
	if t1.Unknown != 0 {
		t.Errorf("unknown races = %d", t1.Unknown)
	}
	if rb := t1.RB[classify.GroupNoStateChange]; rb != 32 {
		t.Errorf("NSC real-benign = %d, want 32", rb)
	}
	if rh := t1.RH[classify.GroupNoStateChange]; rh != 0 {
		t.Errorf("NSC real-harmful = %d, want 0", rh)
	}
	if rb, rh := t1.RB[classify.GroupStateChange], t1.RH[classify.GroupStateChange]; rb != 15 || rh != 2 {
		t.Errorf("SC = %d/%d, want 15/2", rb, rh)
	}
	if rb, rh := t1.RB[classify.GroupReplayFailure], t1.RH[classify.GroupReplayFailure]; rb != 14 || rh != 5 {
		t.Errorf("RF = %d/%d, want 14/5", rb, rh)
	}
	pbRB, pbRH := t1.PotentiallyBenign()
	phRB, phRH := t1.PotentiallyHarmful()
	if pbRB != 32 || pbRH != 0 || phRB != 29 || phRH != 7 {
		t.Errorf("columns = PB %d/%d PH %d/%d, want 32/0 29/7", pbRB, pbRH, phRB, phRH)
	}
	out := t1.Render()
	for _, want := range []string{"Table 1", "No State Change", "State Change", "Replay Failure", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 render missing %q", want)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	run := suite(t)
	t2 := BuildTable2(run.Merged, SuiteTruth)
	want := map[workloads.Category]int{
		workloads.CatUserSync:       8,
		workloads.CatDoubleCheck:    3,
		workloads.CatBothValid:      5,
		workloads.CatRedundantWrite: 13,
		workloads.CatDisjointBits:   9,
		workloads.CatApprox:         23,
	}
	for cat, n := range want {
		if t2.Counts[cat] != n {
			t.Errorf("%v = %d, want %d", cat, t2.Counts[cat], n)
		}
	}
	out := t2.Render()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Total") {
		t.Error("Table 2 render incomplete")
	}
	if !strings.Contains(out, "61") {
		t.Errorf("Table 2 total should be 61:\n%s", out)
	}
}

func TestFigure3OnlyBenignNoStateChange(t *testing.T) {
	run := suite(t)
	f := BuildFigure3(run.Merged, SuiteTruth)
	if len(f.Rows) != 32 {
		t.Errorf("figure 3 rows = %d, want 32", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.Harmful {
			t.Errorf("%s: harmful race in figure 3", r.Sites)
		}
		if r.Exposing != 0 {
			t.Errorf("%s: exposing instances in a potentially-benign race", r.Sites)
		}
		if r.Total < 1 {
			t.Errorf("%s: no instances", r.Sites)
		}
	}
	// Sorted descending by instance count.
	for i := 1; i < len(f.Rows); i++ {
		if f.Rows[i].Total > f.Rows[i-1].Total {
			t.Error("figure rows not sorted")
		}
	}
}

func TestFigure4HarmfulShape(t *testing.T) {
	run := suite(t)
	f := BuildFigure4(run.Merged, SuiteTruth)
	if len(f.Rows) != 7 {
		t.Fatalf("figure 4 rows = %d, want 7", len(f.Rows))
	}
	for _, r := range f.Rows {
		if !r.Harmful {
			t.Errorf("%s: benign race in figure 4", r.Sites)
		}
		if r.Exposing == 0 {
			t.Errorf("%s: harmful race with no exposing instance", r.Sites)
		}
		// The paper's key observation: only a fraction of instances
		// expose the bug.
		if r.Exposing > r.Total {
			t.Errorf("%s: exposing > total", r.Sites)
		}
	}
	// At least one harmful race should have non-exposing instances (the
	// "must see the race many times" effect).
	some := false
	for _, r := range f.Rows {
		if r.Exposing < r.Total {
			some = true
		}
	}
	if !some {
		t.Error("no harmful race had non-exposing instances")
	}
}

func TestFigure5Misclassified(t *testing.T) {
	run := suite(t)
	f := BuildFigure5(run.Merged, SuiteTruth)
	if len(f.Rows) != 29 {
		t.Errorf("figure 5 rows = %d, want 29", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.Harmful {
			t.Errorf("%s: harmful race in figure 5", r.Sites)
		}
		if r.Exposing == 0 {
			t.Errorf("%s: potentially-harmful race with no exposing instances", r.Sites)
		}
	}
}

func TestFigureRender(t *testing.T) {
	run := suite(t)
	for _, f := range []Figure{
		BuildFigure3(run.Merged, SuiteTruth),
		BuildFigure4(run.Merged, SuiteTruth),
		BuildFigure5(run.Merged, SuiteTruth),
	} {
		out := f.Render()
		if !strings.Contains(out, "Figure") || !strings.Contains(out, "#") {
			t.Errorf("figure render incomplete:\n%s", out)
		}
	}
	empty := Figure{Title: "Figure X"}
	if !strings.Contains(empty.Render(), "(no races)") {
		t.Error("empty figure should say so")
	}
}

func TestRaceReportContents(t *testing.T) {
	run := suite(t)
	var harmful *classify.RaceResult
	for _, r := range run.Merged.Races {
		if h, _, ok := SuiteTruth(r.Sites.A); ok && h {
			harmful = r
			break
		}
	}
	if harmful == nil {
		t.Fatal("no harmful race found")
	}
	out := RaceReport(harmful, SuiteTruth)
	for _, want := range []string{"race ", "verdict: potentially-harmful", "ground truth: HARMFUL", "instances:", "reproduce: racer scenario -name"} {
		if !strings.Contains(out, want) {
			t.Errorf("race report missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryHeadlines(t *testing.T) {
	run := suite(t)
	out := Summary(run.Merged, SuiteTruth)
	for _, want := range []string{
		"unique races: 68",
		"potentially benign: 32 (47% of all races)",
		"benign races filtered from triage: 32 of 61 (52%)",
		"reported for triage: 36 (7 real bugs among them)",
		"every real-harmful race was classified potentially harmful",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSuppressionFlowsIntoSummary(t *testing.T) {
	// Marking every potentially-harmful real-benign race as triaged-benign
	// leaves only the 7 real bugs reported.
	run := suite(t)
	db := classify.NewDB()
	for _, r := range run.Merged.Races {
		if h, _, ok := SuiteTruth(r.Sites.A); ok && !h && r.Verdict == classify.PotentiallyHarmful {
			db.MarkBenign(r.Sites, "triaged")
		}
	}
	run2, err := workloads.RunSuite(db)
	if err != nil {
		t.Fatal(err)
	}
	benign, harmful := run2.Merged.CountByVerdict()
	if harmful != 7 {
		t.Errorf("harmful after suppression = %d, want 7", harmful)
	}
	if benign != 32 {
		t.Errorf("benign = %d, want 32", benign)
	}
}

func TestTruthOracleUnknownSite(t *testing.T) {
	if _, _, known := SuiteTruth("otherprog:main"); known {
		t.Error("unknown site should not resolve")
	}
	t1 := BuildTable1(&classify.Classification{Races: []*classify.RaceResult{
		{Sites: hb.MakeSitePair("x:a", "x:b")},
	}}, SuiteTruth)
	if t1.Unknown != 1 {
		t.Error("unknown race not counted")
	}
}

func TestSummaryWarnsOnFilteredHarmfulRace(t *testing.T) {
	// Synthetic classification where a real-harmful race was classified
	// potentially benign: the summary must warn loudly.
	cls := &classify.Classification{Races: []*classify.RaceResult{
		{Sites: hb.MakeSitePair("suite:hrefc_rcld", "suite:hrefc_rcst"), Total: 2, NSC: 2},
	}}
	for _, r := range cls.Races {
		// recompute is unexported; build the verdict via counts.
		if r.SC == 0 && r.RF == 0 {
			r.Group = classify.GroupNoStateChange
			r.Verdict = classify.PotentiallyBenign
		}
	}
	out := Summary(cls, SuiteTruth)
	if !strings.Contains(out, "WARNING: 1 real-harmful races were filtered") {
		t.Errorf("summary missing warning:\n%s", out)
	}
}

func TestRaceReportSuppressedAndConfidence(t *testing.T) {
	r := &classify.RaceResult{
		Sites: hb.MakeSitePair("suite:red01_store", "suite:red01_store"),
		Total: 12, NSC: 12,
		Verdict: classify.PotentiallyBenign, Suppressed: true,
	}
	out := RaceReport(r, SuiteTruth)
	if !strings.Contains(out, "suppressed") {
		t.Error("suppressed note missing")
	}
	if !strings.Contains(out, "confidence: high") {
		t.Errorf("confidence missing:\n%s", out)
	}
}

func TestReproduceLineActuallyResolves(t *testing.T) {
	// Every reproduce line in every harmful race's report must name a
	// scenario FindScenario can resolve — otherwise the paper's "give the
	// developer a reproducible scenario" promise is broken.
	run := suite(t)
	for _, r := range run.Merged.Races {
		for _, s := range r.Samples {
			base := scenarioBase(s.Scenario)
			if _, err := workloads.FindScenario(base); err != nil {
				t.Fatalf("race %v sample names unresolvable scenario %q", r.Sites, s.Scenario)
			}
		}
	}
}

func TestTable1RenderShowsUnknowns(t *testing.T) {
	t1 := BuildTable1(&classify.Classification{Races: []*classify.RaceResult{
		{Sites: hb.MakeSitePair("other:a", "other:b")},
	}}, SuiteTruth)
	if !strings.Contains(t1.Render(), "no ground-truth label") {
		t.Error("unknown races not surfaced in render")
	}
}

func TestMarkdownReport(t *testing.T) {
	run := suite(t)
	out := Markdown(run.Merged, SuiteTruth)
	for _, want := range []string{
		"68 unique races",
		"## Table 1", "| No state change (potentially benign) | 32 | 0 | 32 |",
		"## Table 2", "| Approximate Computation | 23 |",
		"## Figure 3", "## Figure 4", "## Figure 5",
		"instances per race:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
