package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// OverheadLadder renders the §5.1 per-stage overhead ladder from a
// metrics snapshot instead of ad-hoc stopwatch calls: each rung is the
// accumulated span time of one pipeline stage, expressed as a multiple
// of the native (uninstrumented) baseline span. Offline stages are
// cumulative, mirroring the paper's presentation — "happens-before
// analysis" includes the replay it runs on, and "replay classification"
// includes both. Stages without samples are omitted; with no native
// span the multiples are omitted and absolute times remain.
func OverheadLadder(snap obs.Snapshot) string {
	native := snap.SpanNanos("native")
	record := snap.SpanNanos("record")
	replay := snap.SpanNanos("replay")
	detect := snap.SpanNanos("detect")
	classify := snap.SpanNanos("classify")

	var b strings.Builder
	fmt.Fprintf(&b, "Per-stage overhead ladder (from spans; cf. paper section 5.1)\n")
	if n := snap.Counters["native.executions"]; n > 0 {
		fmt.Fprintf(&b, "  baseline over %d native execution(s), %d instructions\n",
			n, snap.Counters["native.instructions"])
	}
	rung := func(label string, nanos int64, paper string) {
		if nanos == 0 {
			return
		}
		d := time.Duration(nanos).Round(time.Microsecond)
		if native > 0 && label != "native execution" {
			fmt.Fprintf(&b, "  %-26s %v (%.1fx native; paper %s)\n",
				label+":", d, float64(nanos)/float64(native), paper)
		} else {
			fmt.Fprintf(&b, "  %-26s %v\n", label+":", d)
		}
	}
	rung("native execution", native, "")
	rung("recording", record, "~6x on x86")
	rung("replay", replay, "~10x")
	rung("happens-before analysis", replay+detect, "~45x")
	rung("replay classification", replay+detect+classify, "~280x")
	if ratio, ok := snap.Gauges["record.bits_per_instr_compressed"]; ok {
		fmt.Fprintf(&b, "  log size: %.3f bits/instruction compressed (paper: ~0.5)\n", ratio)
	}
	return b.String()
}
