// Package report renders the paper's evaluation artifacts — Table 1
// (classification matrix), Table 2 (benign-race census), Figures 3–5
// (per-race instance statistics) — and the per-race reproduction reports
// the tool hands to developers (§4.4, §5).
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/classify"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Truth resolves a race to its ground-truth verdict and benign category.
// The workload suite provides one; a deployment on unknown programs would
// not have it (the paper needed manual triage to build theirs).
type Truth func(sites string) (realHarmful bool, category workloads.Category, known bool)

// SuiteTruth is the Truth oracle for the built-in workload suite.
func SuiteTruth(site string) (bool, workloads.Category, bool) {
	tm := workloads.TemplateOfSite(site)
	if tm == nil {
		return false, 0, false
	}
	return tm.RealHarmful, tm.Category, true
}

// Table1 is the classification matrix of §5.2.2.
type Table1 struct {
	// Rows indexed by classify.Group; columns split by ground truth.
	RB, RH [3]int // real-benign / real-harmful counts per group
	// Unknown counts races the truth oracle cannot label.
	Unknown int
}

// BuildTable1 folds a merged classification into the Table 1 matrix.
func BuildTable1(c *classify.Classification, truth Truth) Table1 {
	var t Table1
	for _, r := range c.Races {
		harmful, _, known := truth(r.Sites.A)
		if !known {
			t.Unknown++
			continue
		}
		if harmful {
			t.RH[r.Group]++
		} else {
			t.RB[r.Group]++
		}
	}
	return t
}

// PotentiallyBenign returns the potentially-benign column totals.
func (t Table1) PotentiallyBenign() (rb, rh int) {
	return t.RB[classify.GroupNoStateChange], t.RH[classify.GroupNoStateChange]
}

// PotentiallyHarmful returns the potentially-harmful column totals.
func (t Table1) PotentiallyHarmful() (rb, rh int) {
	rb = t.RB[classify.GroupStateChange] + t.RB[classify.GroupReplayFailure]
	rh = t.RH[classify.GroupStateChange] + t.RH[classify.GroupReplayFailure]
	return
}

// Total is the number of classified races.
func (t Table1) Total() int {
	n := t.Unknown
	for g := 0; g < 3; g++ {
		n += t.RB[g] + t.RH[g]
	}
	return n
}

// Render prints the matrix in the paper's layout.
func (t Table1) Render() string {
	var b strings.Builder
	b.WriteString("Table 1. Data Race Classification\n")
	b.WriteString("                      | Potentially Benign | Potentially Harmful |\n")
	b.WriteString("                      | RealBenign RealHarm| RealBenign RealHarm | Total\n")
	row := func(name string, g classify.Group) {
		rb, rh := t.RB[g], t.RH[g]
		if g == classify.GroupNoStateChange {
			fmt.Fprintf(&b, "  %-18s  | %10d %8d | %10s %8s | %5d\n", name, rb, rh, "-", "-", rb+rh)
		} else {
			fmt.Fprintf(&b, "  %-18s  | %10s %8s | %10d %8d | %5d\n", name, "-", "-", rb, rh, rb+rh)
		}
	}
	row("No State Change", classify.GroupNoStateChange)
	row("State Change", classify.GroupStateChange)
	row("Replay Failure", classify.GroupReplayFailure)
	pbRB, pbRH := t.PotentiallyBenign()
	phRB, phRH := t.PotentiallyHarmful()
	fmt.Fprintf(&b, "  %-18s  | %10d %8d | %10d %8d | %5d\n",
		"Total", pbRB, pbRH, phRB, phRH, t.Total())
	if t.Unknown > 0 {
		fmt.Fprintf(&b, "  (%d races have no ground-truth label and are excluded from the rows)\n", t.Unknown)
	}
	return b.String()
}

// Table2 is the benign-race census by category (§5.4).
type Table2 struct {
	Counts map[workloads.Category]int
}

// BuildTable2 counts real-benign races per category.
func BuildTable2(c *classify.Classification, truth Truth) Table2 {
	t := Table2{Counts: make(map[workloads.Category]int)}
	for _, r := range c.Races {
		harmful, cat, known := truth(r.Sites.A)
		if !known || harmful {
			continue
		}
		t.Counts[cat]++
	}
	return t
}

// Render prints the census in the paper's order.
func (t Table2) Render() string {
	order := []workloads.Category{
		workloads.CatUserSync, workloads.CatDoubleCheck, workloads.CatBothValid,
		workloads.CatRedundantWrite, workloads.CatDisjointBits, workloads.CatApprox,
	}
	var b strings.Builder
	b.WriteString("Table 2. Benign Data Races\n")
	total := 0
	for _, cat := range order {
		fmt.Fprintf(&b, "  %-34s %4d\n", cat.String(), t.Counts[cat])
		total += t.Counts[cat]
	}
	fmt.Fprintf(&b, "  %-34s %4d\n", "Total", total)
	return b.String()
}

// FigureRow is one bar of Figures 3–5: a race with its instance counts.
type FigureRow struct {
	Sites     string
	Total     int
	Exposing  int // State-Change or Replay-Failure instances
	SC, RF    int
	Harmful   bool
	Category  workloads.Category
	HasTruth  bool
	Verdict   classify.Verdict
	GroupName string
}

// Figure is a per-race instance-count series.
type Figure struct {
	Title string
	Rows  []FigureRow
}

// BuildFigure3 collects the potentially-benign races (every instance
// No-State-Change) with their instance counts.
func BuildFigure3(c *classify.Classification, truth Truth) Figure {
	return buildFigure(c, truth, "Figure 3. Instances of races classified Potentially-Benign",
		func(r *classify.RaceResult, harmful bool) bool {
			return r.Verdict == classify.PotentiallyBenign
		})
}

// BuildFigure4 collects the potentially-harmful races that are really
// harmful, with total and exposing instance counts.
func BuildFigure4(c *classify.Classification, truth Truth) Figure {
	return buildFigure(c, truth, "Figure 4. Instances of Potentially-Harmful races that are Real-Harmful",
		func(r *classify.RaceResult, harmful bool) bool {
			return r.Verdict == classify.PotentiallyHarmful && harmful
		})
}

// BuildFigure5 collects the misclassified races: potentially harmful but
// actually benign (§5.2.4).
func BuildFigure5(c *classify.Classification, truth Truth) Figure {
	return buildFigure(c, truth, "Figure 5. Instances of Potentially-Harmful races that are Real-Benign",
		func(r *classify.RaceResult, harmful bool) bool {
			return r.Verdict == classify.PotentiallyHarmful && !harmful
		})
}

func buildFigure(c *classify.Classification, truth Truth, title string,
	include func(*classify.RaceResult, bool) bool) Figure {
	fig := Figure{Title: title}
	for _, r := range c.Races {
		harmful, cat, known := truth(r.Sites.A)
		if !include(r, harmful && known) {
			continue
		}
		fig.Rows = append(fig.Rows, FigureRow{
			Sites:     r.Sites.String(),
			Total:     r.Total,
			Exposing:  r.Exposing(),
			SC:        r.SC,
			RF:        r.RF,
			Harmful:   harmful,
			Category:  cat,
			HasTruth:  known,
			Verdict:   r.Verdict,
			GroupName: r.Group.String(),
		})
	}
	sort.Slice(fig.Rows, func(i, j int) bool {
		if fig.Rows[i].Total != fig.Rows[j].Total {
			return fig.Rows[i].Total > fig.Rows[j].Total
		}
		return fig.Rows[i].Sites < fig.Rows[j].Sites
	})
	return fig
}

// InstanceStats summarizes the per-race instance counts of the figure.
func (f Figure) InstanceStats() stats.Summary {
	xs := make([]int, len(f.Rows))
	for i, r := range f.Rows {
		xs[i] = r.Total
	}
	return stats.Summarize(xs)
}

// Render prints the figure as an ASCII bar series (instances per race).
func (f Figure) Render() string {
	var b strings.Builder
	b.WriteString(f.Title + "\n")
	if len(f.Rows) > 0 {
		b.WriteString("  instances per race: " + f.InstanceStats().String() + "\n")
	}
	maxN := 1
	for _, r := range f.Rows {
		if r.Total > maxN {
			maxN = r.Total
		}
	}
	for i, r := range f.Rows {
		bar := strings.Repeat("#", scale(r.Total, maxN, 40))
		exp := ""
		if r.Exposing > 0 && r.Exposing != r.Total {
			exp = fmt.Sprintf("  (exposing %d: %d sc, %d rf)", r.Exposing, r.SC, r.RF)
		}
		fmt.Fprintf(&b, "  %2d %-46s %5d %-40s%s\n", i+1, r.Sites, r.Total, bar, exp)
	}
	if len(f.Rows) == 0 {
		b.WriteString("  (no races)\n")
	}
	return b.String()
}

func scale(v, max, width int) int {
	if max == 0 {
		return 0
	}
	n := v * width / max
	if n == 0 && v > 0 {
		n = 1
	}
	return n
}

// RaceReport renders the developer-facing report for one race: verdict,
// instance statistics, and a reproducible scenario per retained sample —
// the "two replays" information of §4.4.
func RaceReport(r *classify.RaceResult, truth Truth) string {
	var b strings.Builder
	fmt.Fprintf(&b, "race %s\n", r.Sites)
	fmt.Fprintf(&b, "  verdict: %v (group %v)\n", r.Verdict, r.Group)
	if r.Suppressed {
		b.WriteString("  suppressed: marked benign by a developer in the race database\n")
	}
	if truth != nil {
		if harmful, cat, known := truth(r.Sites.A); known {
			verdictStr := "benign"
			if harmful {
				verdictStr = "HARMFUL"
			}
			fmt.Fprintf(&b, "  ground truth: %s (%v)\n", verdictStr, cat)
		}
	}
	fmt.Fprintf(&b, "  instances: %d total = %d no-state-change, %d state-change, %d replay-failure\n",
		r.Total, r.NSC, r.SC, r.RF)
	if r.Verdict == classify.PotentiallyBenign {
		fmt.Fprintf(&b, "  confidence: %s (%d supporting instances; see more scenarios to raise it)\n",
			r.Confidence(), r.Total)
	}
	for i, s := range r.Samples {
		fmt.Fprintf(&b, "  sample %d: scenario %s (seed %d), threads %d/%d, addr 0x%x, outcome %v\n",
			i+1, s.Scenario, s.Seed, s.TIDA, s.TIDB, s.Addr, s.Outcome)
		fmt.Fprintf(&b, "    racing ops: tid %d idx %d pc %d (write=%v)  <->  tid %d idx %d pc %d (write=%v)\n",
			s.TIDA, s.IdxA, s.PCA, s.FirstIsWrite, s.TIDB, s.IdxB, s.PCB, s.SecondWrite)
		if s.FailReason != "" {
			fmt.Fprintf(&b, "    failure: %s\n", s.FailReason)
		}
		for _, d := range s.Diffs {
			fmt.Fprintf(&b, "    diff: %s\n", d)
		}
		fmt.Fprintf(&b, "    reproduce: racer scenario -name %s -seed %d -race '%s'\n",
			scenarioBase(s.Scenario), s.Seed, r.Sites)
	}
	return b.String()
}

// Summary is the one-paragraph wrap-up the paper's conclusion gives:
// how many races were filtered and whether every harmful race survived.
func Summary(c *classify.Classification, truth Truth) string {
	t1 := BuildTable1(c, truth)
	pbRB, pbRH := t1.PotentiallyBenign()
	phRB, phRH := t1.PotentiallyHarmful()
	totBenign := pbRB + phRB
	var b strings.Builder
	fmt.Fprintf(&b, "unique races: %d (%d instances analyzed)\n", t1.Total(), c.TotalInstances())
	fmt.Fprintf(&b, "potentially benign: %d (%.0f%% of all races)\n",
		pbRB+pbRH, pct(pbRB+pbRH, t1.Total()))
	if totBenign > 0 {
		fmt.Fprintf(&b, "benign races filtered from triage: %d of %d (%.0f%%)\n",
			pbRB, totBenign, pct(pbRB, totBenign))
	}
	suppressed := 0
	for _, r := range c.Races {
		if r.Suppressed {
			suppressed++
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(&b, "suppressed by the race database: %d (triaged benign by a developer)\n", suppressed)
	}
	_, reported := c.CountByVerdict()
	fmt.Fprintf(&b, "reported for triage: %d (%d real bugs among them)\n", reported, phRH)
	if pbRH == 0 {
		b.WriteString("every real-harmful race was classified potentially harmful\n")
	} else {
		fmt.Fprintf(&b, "WARNING: %d real-harmful races were filtered as potentially benign\n", pbRH)
	}
	return b.String()
}

// scenarioBase strips the "#k" seed suffix RunSuiteSeeds appends, so the
// reproduce command line resolves to a real scenario name.
func scenarioBase(name string) string {
	if i := strings.IndexByte(name, '#'); i > 0 {
		return name[:i]
	}
	return name
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
